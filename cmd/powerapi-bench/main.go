// Command powerapi-bench measures the steady-state cost of a sampling round
// across a matrix of monitored-target counts and shard-pool sizes, and writes
// the result as a JSON benchmark report (BENCH_PR6.json at the repo root is
// the checked-in trajectory). Unlike `go test -bench`, which averages the
// warm-up into the figures, this harness warms each cell first and then
// meters only steady-state rounds, so allocs/round reflects the pooled hot
// path rather than first-round map growth.
//
// With -budget the run additionally enforces a checked-in regression budget:
// any measured cell whose allocs/round — or steady-state round-latency p99,
// when the entry carries maxRoundP99Seconds — exceeds its budget entry fails
// the run, which is how CI pins the allocation and latency behaviour of the
// pipeline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	powerapi "powerapi"
)

// Cell is one measured point of the matrix.
type Cell struct {
	// Targets and Shards identify the cell.
	Targets int `json:"targets"`
	Shards  int `json:"shards"`
	// Rounds is how many steady-state rounds were metered (after warm-up).
	Rounds int `json:"rounds"`
	// RoundsPerSec is the sampling-round throughput.
	RoundsPerSec float64 `json:"roundsPerSec"`
	// NsPerTarget is the per-target share of one round's wall time.
	NsPerTarget float64 `json:"nsPerTarget"`
	// AllocsPerRound / BytesPerRound are the heap allocation count and volume
	// of one steady-state round, whole-process (pipeline goroutines included).
	AllocsPerRound float64 `json:"allocsPerRound"`
	BytesPerRound  float64 `json:"bytesPerRound"`
	// RoundP99Seconds is the 99th-percentile wall time of one steady-state
	// round — the same quantity /metrics exposes as
	// powerapi_round_duration_seconds, but restricted to the metered rounds.
	RoundP99Seconds float64 `json:"roundP99Seconds"`
}

// Report is the file layout of BENCH_PR6.json / BENCH_PR8.json. Pipeline runs
// fill Cells; -fleet runs fill FleetCells and Codec instead.
type Report struct {
	PR         string       `json:"pr"`
	GoVersion  string       `json:"goVersion"`
	CPUs       int          `json:"cpus"`
	Cells      []Cell       `json:"cells,omitempty"`
	FleetCells []FleetCell  `json:"fleetCells,omitempty"`
	Codec      *CodecReport `json:"codec,omitempty"`
}

// BudgetEntry caps the allocs/round and round-latency p99 of one cell. Cells
// without an entry are reported but not enforced; a zero MaxRoundP99Seconds
// leaves the latency unenforced for that cell. Pipeline entries carry
// targets/shards; fleet entries carry nodes/targetsPerNode instead — giving
// every fleet scale the same caps is how the budget pins allocs/fleet-round
// to be independent of the node count.
type BudgetEntry struct {
	Targets            int     `json:"targets,omitempty"`
	Shards             int     `json:"shards,omitempty"`
	Nodes              int     `json:"nodes,omitempty"`
	TargetsPerNode     int     `json:"targetsPerNode,omitempty"`
	Subscribers        int     `json:"subscribers,omitempty"`
	MaxAllocsPerRound  float64 `json:"maxAllocsPerRound"`
	MaxRoundP99Seconds float64 `json:"maxRoundP99Seconds,omitempty"`
}

func main() {
	var (
		scalesFlag = flag.String("scales", "1000,10000,100000", "comma-separated monitored-target counts")
		shardsFlag = flag.String("shards", "1,4,8", "comma-separated shard-pool sizes")
		rounds     = flag.Int("rounds", 50, "steady-state rounds metered per cell")
		warmup     = flag.Int("warmup", 20, "warm-up rounds per cell (excluded from the figures)")
		out        = flag.String("out", "", "write the JSON report to this file (default: stdout)")
		budgetPath = flag.String("budget", "", "enforce the allocs/round budget file (JSON array of {targets,shards,maxAllocsPerRound})")
		pr         = flag.String("pr", "PR6", "label recorded in the report")

		fleet         = flag.Bool("fleet", false, "meter the fleet collector (nodes × targets-per-node ingest + rollup) instead of the daemon pipeline")
		fleetNodes    = flag.String("fleet-nodes", "10,100,1000", "comma-separated node counts for the fleet matrix")
		fleetTargets  = flag.Int("fleet-targets", 1000, "route keys per node frame in the fleet matrix")
		fleetShards   = flag.Int("fleet-shards", 4, "rollup fan-out width of the fleet collector")
		fleetRounds   = flag.Int("fleet-rounds", 25, "steady-state fleet rounds metered per cell")
		fleetWarmup   = flag.Int("fleet-warmup", 20, "fleet warm-up rounds per cell (must outlast history ring growth)")
		fleetSubs     = flag.String("fleet-subscribers", "0", "comma-separated fanout subscriber counts crossed with -fleet-nodes (0 allowed; fanout cost must stay sub-linear)")
		minCodecRatio = flag.Float64("min-codec-ratio", 0, "fail unless binary ingests rows at least this many times faster than JSON (0 reports only)")
	)
	flag.Parse()

	scales, err := parseInts(*scalesFlag)
	if err != nil {
		fatalf("parse -scales: %v", err)
	}
	shardCounts, err := parseInts(*shardsFlag)
	if err != nil {
		fatalf("parse -shards: %v", err)
	}
	var budget []BudgetEntry
	if *budgetPath != "" {
		raw, err := os.ReadFile(*budgetPath)
		if err != nil {
			fatalf("read budget: %v", err)
		}
		if err := json.Unmarshal(raw, &budget); err != nil {
			fatalf("parse budget: %v", err)
		}
	}

	report := Report{PR: *pr, GoVersion: runtime.Version(), CPUs: runtime.NumCPU()}
	failed := false
	if *fleet {
		nodeScales, err := parseInts(*fleetNodes)
		if err != nil {
			fatalf("parse -fleet-nodes: %v", err)
		}
		subScales, err := parseCounts(*fleetSubs)
		if err != nil {
			fatalf("parse -fleet-subscribers: %v", err)
		}
		for _, nodes := range nodeScales {
			for _, subscribers := range subScales {
				cell, err := measureFleet(nodes, *fleetTargets, *fleetShards, subscribers, *fleetWarmup, *fleetRounds)
				if err != nil {
					fatalf("measure fleet nodes=%d targets/node=%d subscribers=%d: %v", nodes, *fleetTargets, subscribers, err)
				}
				fmt.Fprintf(os.Stderr, "nodes=%-5d targets/node=%-5d shards=%d subs=%-3d  %7.2f rounds/s  %7.1f ns/row  %10.1f allocs/round  %12.0f B/round  %8.1f ms p99  %8.1f MB/s ingest\n",
					cell.Nodes, cell.TargetsPerNode, cell.Shards, cell.Subscribers, cell.RoundsPerSec, cell.NsPerTarget, cell.AllocsPerRound, cell.BytesPerRound, cell.RoundP99Seconds*1e3, cell.IngestMBPerSec)
				report.FleetCells = append(report.FleetCells, cell)
			}
		}
		codec, err := measureCodecs(32, 250, 5, 30)
		if err != nil {
			fatalf("measure codecs: %v", err)
		}
		fmt.Fprintf(os.Stderr, "codec: binary %.0f rows/s (%.1f MB/s, %.1f B/row)  json %.0f rows/s (%.1f MB/s, %.1f B/row)  ratio %.2fx\n",
			codec.BinaryRowsPerSec, codec.BinaryMBPerSec, codec.BinaryBytesPerRow,
			codec.JSONRowsPerSec, codec.JSONMBPerSec, codec.JSONBytesPerRow, codec.RowRateRatio)
		report.Codec = &codec
		failed = checkFleetBudget(report.FleetCells, budget)
		if *minCodecRatio > 0 && codec.RowRateRatio < *minCodecRatio {
			fmt.Fprintf(os.Stderr, "BUDGET EXCEEDED: binary/JSON row-rate ratio %.2f < required %.2f\n", codec.RowRateRatio, *minCodecRatio)
			failed = true
		}
	} else {
		for _, targets := range scales {
			for _, shards := range shardCounts {
				cell, err := measure(targets, shards, *warmup, *rounds)
				if err != nil {
					fatalf("measure targets=%d shards=%d: %v", targets, shards, err)
				}
				fmt.Fprintf(os.Stderr, "targets=%-7d shards=%d  %8.1f rounds/s  %8.1f ns/target  %10.1f allocs/round  %12.0f B/round  %8.1f ms p99\n",
					cell.Targets, cell.Shards, cell.RoundsPerSec, cell.NsPerTarget, cell.AllocsPerRound, cell.BytesPerRound, cell.RoundP99Seconds*1e3)
				report.Cells = append(report.Cells, cell)
			}
		}
		failed = checkBudget(report.Cells, budget)
	}

	encoded, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("encode report: %v", err)
	}
	encoded = append(encoded, '\n')
	if *out == "" {
		os.Stdout.Write(encoded)
	} else if err := os.WriteFile(*out, encoded, 0o644); err != nil {
		fatalf("write report: %v", err)
	}

	if failed {
		os.Exit(1)
	}
}

// measure builds one simulated machine with the given number of monitored
// processes, attaches them to a monitor with the given shard-pool size, warms
// the pipeline up and meters steady-state rounds.
func measure(targets, shards, warmup, rounds int) (Cell, error) {
	cfg := powerapi.DefaultMachineConfig()
	cfg.Governor = powerapi.GovernorPerformance
	m, err := powerapi.NewMachine(cfg)
	if err != nil {
		return Cell{}, err
	}
	pids := make([]int, 0, targets)
	for i := 0; i < targets; i++ {
		// Vary the demand so shards don't all carry identical work (the same
		// population BenchmarkMonitorShards uses).
		gen, err := powerapi.CPUStress(0.1+0.8*float64(i%9)/8, 0)
		if err != nil {
			return Cell{}, err
		}
		p, err := m.Spawn(gen)
		if err != nil {
			return Cell{}, err
		}
		pids = append(pids, p.PID())
	}
	monitor, err := powerapi.NewMonitor(m, powerapi.PaperReferenceModel(), powerapi.WithShards(shards))
	if err != nil {
		return Cell{}, err
	}
	defer monitor.Shutdown()
	if err := monitor.Attach(pids...); err != nil {
		return Cell{}, err
	}

	tick := func() error {
		if _, err := m.Run(m.Tick()); err != nil {
			return err
		}
		report, err := monitor.Collect()
		if err != nil {
			return err
		}
		if len(report.PerPID) != targets {
			return fmt.Errorf("round attributed %d targets, want %d", len(report.PerPID), targets)
		}
		return nil
	}
	for i := 0; i < warmup; i++ {
		if err := tick(); err != nil {
			return Cell{}, err
		}
	}

	// Per-round wall times feed the p99; the slice is allocated up front so
	// metering itself adds nothing to the allocs/round figure.
	durations := make([]float64, 0, rounds)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		roundStart := time.Now()
		if err := tick(); err != nil {
			return Cell{}, err
		}
		durations = append(durations, time.Since(roundStart).Seconds())
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	perRound := elapsed.Seconds() / float64(rounds)
	return Cell{
		Targets:         targets,
		Shards:          shards,
		Rounds:          rounds,
		RoundsPerSec:    1 / perRound,
		NsPerTarget:     perRound * 1e9 / float64(targets),
		AllocsPerRound:  float64(after.Mallocs-before.Mallocs) / float64(rounds),
		BytesPerRound:   float64(after.TotalAlloc-before.TotalAlloc) / float64(rounds),
		RoundP99Seconds: percentile(durations, 0.99),
	}, nil
}

// percentile returns the q-quantile of the values (nearest-rank method).
func percentile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// checkBudget reports whether any measured cell blew its budget entry; fleet
// entries (nodes > 0) belong to checkFleetBudget and are skipped here.
func checkBudget(cells []Cell, budget []BudgetEntry) bool {
	failed := false
	for _, b := range budget {
		if b.Nodes > 0 {
			continue
		}
		for _, c := range cells {
			if c.Targets != b.Targets || c.Shards != b.Shards {
				continue
			}
			if c.AllocsPerRound > b.MaxAllocsPerRound {
				fmt.Fprintf(os.Stderr, "BUDGET EXCEEDED: targets=%d shards=%d allocs/round %.1f > budget %.1f\n",
					c.Targets, c.Shards, c.AllocsPerRound, b.MaxAllocsPerRound)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "budget ok: targets=%d shards=%d allocs/round %.1f <= %.1f\n",
					c.Targets, c.Shards, c.AllocsPerRound, b.MaxAllocsPerRound)
			}
			if b.MaxRoundP99Seconds <= 0 {
				continue
			}
			if c.RoundP99Seconds > b.MaxRoundP99Seconds {
				fmt.Fprintf(os.Stderr, "BUDGET EXCEEDED: targets=%d shards=%d round p99 %.3fs > budget %.3fs\n",
					c.Targets, c.Shards, c.RoundP99Seconds, b.MaxRoundP99Seconds)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "budget ok: targets=%d shards=%d round p99 %.3fs <= %.3fs\n",
					c.Targets, c.Shards, c.RoundP99Seconds, b.MaxRoundP99Seconds)
			}
		}
	}
	return failed
}

// parseCounts parses a comma-separated list like parseInts but admits zero
// (a subscriber count of 0 is a legitimate cell).
func parseCounts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("value %d must be non-negative", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("value %d must be positive", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "powerapi-bench: "+format+"\n", args...)
	os.Exit(1)
}
