package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"powerapi/internal/collector"
	"powerapi/internal/core"
	"powerapi/internal/vmbridge"
)

// The fleet mode meters the collector instead of the daemon pipeline: N
// passive in-process nodes feed pre-encoded wire payloads straight into the
// ingest queues (collector.FeedPayload — the exact worker/commit path a socket
// reader drives, minus the socket), and every fleet round is one synchronous
// Rollup over the committed contributions. The claim under test is twofold:
// steady-state allocations per fleet round must not grow with the node count,
// and the binary codec must ingest rows at least twice as fast as JSON-lines.

// FleetCell is one measured point of the fleet matrix.
type FleetCell struct {
	// Nodes and TargetsPerNode identify the cell; Shards is the rollup width.
	Nodes          int `json:"nodes"`
	TargetsPerNode int `json:"targetsPerNode"`
	Shards         int `json:"shards"`
	// Subscribers is how many draining fanout subscribers rode the rounds —
	// the axis whose scaling must stay sub-linear (fanout is one retain +
	// channel offer per subscriber, not a re-rollup).
	Subscribers int `json:"subscribers,omitempty"`
	// Rounds is how many steady-state fleet rounds were metered.
	Rounds int `json:"rounds"`
	// RoundsPerSec is the fleet-round throughput: ingest of every node's
	// payload, commit, and the cross-node rollup.
	RoundsPerSec float64 `json:"roundsPerSec"`
	// NsPerTarget is the per-row share of one round (nodes × targetsPerNode
	// rows flow per round).
	NsPerTarget float64 `json:"nsPerTarget"`
	// AllocsPerRound / BytesPerRound are whole-process heap figures of one
	// steady-state round; flatness across the Nodes scales is the point.
	AllocsPerRound float64 `json:"allocsPerRound"`
	BytesPerRound  float64 `json:"bytesPerRound"`
	// RoundP99Seconds is the 99th-percentile wall time of one fleet round.
	RoundP99Seconds float64 `json:"roundP99Seconds"`
	// IngestMBPerSec is the wire-payload volume decoded per second.
	IngestMBPerSec float64 `json:"ingestMBPerSec"`
}

// CodecReport compares ingest throughput of the two wire codecs over the same
// logical frames on identical collectors.
type CodecReport struct {
	Nodes             int     `json:"nodes"`
	TargetsPerNode    int     `json:"targetsPerNode"`
	Rounds            int     `json:"rounds"`
	BinaryRowsPerSec  float64 `json:"binaryRowsPerSec"`
	JSONRowsPerSec    float64 `json:"jsonRowsPerSec"`
	BinaryMBPerSec    float64 `json:"binaryMBPerSec"`
	JSONMBPerSec      float64 `json:"jsonMBPerSec"`
	BinaryBytesPerRow float64 `json:"binaryBytesPerRow"`
	JSONBytesPerRow   float64 `json:"jsonBytesPerRow"`
	// RowRateRatio is binary over JSON rows/sec — the ≥2× claim.
	RowRateRatio float64 `json:"rowRateRatio"`
}

// benchCollector builds one passive collector sized for the cell. Rounds are
// driven manually (Interval 0); history capacity is kept small so its lazy
// ring growth finishes inside the warm-up and steady state stays clean.
func benchCollector(nodes, shards int, codec vmbridge.Codec) (*collector.Collector, []string, error) {
	addrs := make([]string, nodes)
	names := make([]string, nodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("bench://node-%04d", i)
		names[i] = fmt.Sprintf("node-%04d", i)
	}
	col, err := collector.New(collector.Config{
		Nodes:           addrs,
		Passive:         true,
		Shards:          shards,
		StaleAfter:      time.Hour,
		Codec:           codec,
		HistoryCapacity: 16,
	})
	return col, names, err
}

// benchRows builds the shared per-node row set: the same service cgroups
// deployed fleet-wide, so the rollup genuinely merges across nodes.
func benchRows(targetsPerNode int) []vmbridge.TargetRow {
	rows := make([]vmbridge.TargetRow, targetsPerNode)
	for j := range rows {
		rows[j] = vmbridge.TargetRow{Key: fmt.Sprintf("cgroup:svc-%04d", j), Watts: float64(j%40) + 0.5}
	}
	return rows
}

// measureFleet meters one fleet cell on the binary codec. Frames carry full
// version-2 provenance stamps, so the metered path includes offset tracking,
// the per-round health pass and the e2e latency histogram — the claim is
// allocation-flat rounds with the whole observability layer live. With
// subscribers > 0, that many Conflate subscribers drain the fanout while the
// rounds run.
func measureFleet(nodes, targetsPerNode, shards, subscribers, warmup, rounds int) (FleetCell, error) {
	col, names, err := benchCollector(nodes, shards, vmbridge.CodecBinary)
	if err != nil {
		return FleetCell{}, err
	}
	defer col.Close()

	var subWG sync.WaitGroup
	subs := make([]*collector.Subscription, 0, subscribers)
	for s := 0; s < subscribers; s++ {
		sub, serr := col.Subscribe(collector.SubscribeOptions{
			Name:   fmt.Sprintf("bench-sub-%03d", s),
			Policy: core.Conflate,
		})
		if serr != nil {
			return FleetCell{}, serr
		}
		subs = append(subs, sub)
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			for rep := range sub.C() {
				// Touch the report the way a real consumer would before
				// releasing, so the fanout cost is not optimised away.
				_ = rep.TotalWatts
				rep.Release()
			}
		}()
	}
	defer func() {
		for _, s := range subs {
			s.Close()
		}
		subWG.Wait()
	}()

	batch := []vmbridge.VMPowerFrame{{
		Watts:          float64(targetsPerNode),
		HostTotalWatts: float64(targetsPerNode),
		SourceMode:     "bench",
		Rows:           benchRows(targetsPerNode),
	}}
	var scratch []byte
	var seq uint64
	var wireBytes uint64
	tick := func() error {
		seq++
		emit := time.Duration(time.Now().UnixNano())
		for i := 0; i < nodes; i++ {
			// Encode into the reused scratch (allocation-free once grown) and
			// feed the whole wire message, header included.
			batch[0].VM = names[i]
			batch[0].Seq = seq
			batch[0].EmitMono = emit
			batch[0].Round = seq
			batch[0].TraceID = vmbridge.FrameTraceID(names[i], seq)
			scratch = vmbridge.AppendBinaryBatchVersion(scratch[:0], batch, vmbridge.BinaryVersionProvenance)
			wireBytes += uint64(len(scratch))
			if err := col.FeedPayload(i, scratch); err != nil {
				return err
			}
		}
		for i := 0; i < nodes; i++ {
			for col.NodeLastSeq(i) < seq {
				runtime.Gosched()
			}
		}
		rep := col.Rollup()
		live, keys := rep.Nodes, len(rep.PerTarget)
		rep.Release()
		if live != nodes {
			return fmt.Errorf("round %d rolled up %d live nodes, want %d", seq, live, nodes)
		}
		if keys != targetsPerNode {
			return fmt.Errorf("round %d rolled up %d fleet keys, want %d", seq, keys, targetsPerNode)
		}
		return nil
	}
	for i := 0; i < warmup; i++ {
		if err := tick(); err != nil {
			return FleetCell{}, err
		}
	}

	durations := make([]float64, 0, rounds)
	wireBytes = 0
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		roundStart := time.Now()
		if err := tick(); err != nil {
			return FleetCell{}, err
		}
		durations = append(durations, time.Since(roundStart).Seconds())
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	perRound := elapsed.Seconds() / float64(rounds)
	return FleetCell{
		Nodes:           nodes,
		TargetsPerNode:  targetsPerNode,
		Shards:          shards,
		Subscribers:     subscribers,
		Rounds:          rounds,
		RoundsPerSec:    1 / perRound,
		NsPerTarget:     perRound * 1e9 / float64(nodes*targetsPerNode),
		AllocsPerRound:  float64(after.Mallocs-before.Mallocs) / float64(rounds),
		BytesPerRound:   float64(after.TotalAlloc-before.TotalAlloc) / float64(rounds),
		RoundP99Seconds: percentile(durations, 0.99),
		IngestMBPerSec:  float64(wireBytes) / 1e6 / elapsed.Seconds(),
	}, nil
}

// measureCodecRate meters pure ingest throughput for one codec: payloads for
// every (round, node) are pre-encoded, so the metered loop is feed → decode →
// commit with no encoding cost inside. Returns rows/sec and wire bytes/sec.
func measureCodecRate(codec vmbridge.Codec, nodes, targetsPerNode, warmup, rounds int, encode func(frame vmbridge.VMPowerFrame) []byte) (rowsPerSec, bytesPerSec float64, err error) {
	col, names, err := benchCollector(nodes, 2, codec)
	if err != nil {
		return 0, 0, err
	}
	defer col.Close()

	rows := benchRows(targetsPerNode)
	total := warmup + rounds
	payloads := make([][][]byte, total)
	for r := 0; r < total; r++ {
		payloads[r] = make([][]byte, nodes)
		for i := 0; i < nodes; i++ {
			payloads[r][i] = encode(vmbridge.VMPowerFrame{
				VM:             names[i],
				Seq:            uint64(r + 1),
				Watts:          float64(targetsPerNode),
				HostTotalWatts: float64(targetsPerNode),
				SourceMode:     "bench",
				Rows:           rows,
			})
		}
	}

	feed := func(r int) error {
		seq := uint64(r + 1)
		for i := 0; i < nodes; i++ {
			if err := col.FeedPayload(i, payloads[r][i]); err != nil {
				return err
			}
		}
		for i := 0; i < nodes; i++ {
			for col.NodeLastSeq(i) < seq {
				runtime.Gosched()
			}
		}
		return nil
	}
	for r := 0; r < warmup; r++ {
		if err := feed(r); err != nil {
			return 0, 0, err
		}
	}
	var wireBytes uint64
	for r := warmup; r < total; r++ {
		for i := 0; i < nodes; i++ {
			wireBytes += uint64(len(payloads[r][i]))
		}
	}
	start := time.Now()
	for r := warmup; r < total; r++ {
		if err := feed(r); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start).Seconds()

	// One rollup as an end-to-end sanity check of what was ingested.
	rep := col.Rollup()
	live, keys := rep.Nodes, len(rep.PerTarget)
	rep.Release()
	if live != nodes || keys != targetsPerNode {
		return 0, 0, fmt.Errorf("codec %s ingested %d live nodes / %d keys, want %d / %d", codec, live, keys, nodes, targetsPerNode)
	}
	totalRows := float64(rounds) * float64(nodes) * float64(targetsPerNode)
	return totalRows / elapsed, float64(wireBytes) / elapsed, nil
}

// measureCodecs runs the binary-vs-JSON ingest comparison.
func measureCodecs(nodes, targetsPerNode, warmup, rounds int) (CodecReport, error) {
	binRows, binBytes, err := measureCodecRate(vmbridge.CodecBinary, nodes, targetsPerNode, warmup, rounds,
		func(frame vmbridge.VMPowerFrame) []byte {
			// FeedPayload takes the whole message; version-2 framing so the
			// measured decode includes the provenance fields.
			frame.EmitMono = time.Duration(frame.Seq)
			frame.Round = frame.Seq
			frame.TraceID = vmbridge.FrameTraceID(frame.VM, frame.Seq)
			return vmbridge.AppendBinaryBatchVersion(nil, []vmbridge.VMPowerFrame{frame}, vmbridge.BinaryVersionProvenance)
		})
	if err != nil {
		return CodecReport{}, fmt.Errorf("binary: %w", err)
	}
	jsonRows, jsonBytes, err := measureCodecRate(vmbridge.CodecJSON, nodes, targetsPerNode, warmup, rounds,
		func(frame vmbridge.VMPowerFrame) []byte {
			line, merr := json.Marshal(frame)
			if merr != nil {
				panic(merr)
			}
			return line
		})
	if err != nil {
		return CodecReport{}, fmt.Errorf("json: %w", err)
	}
	return CodecReport{
		Nodes:             nodes,
		TargetsPerNode:    targetsPerNode,
		Rounds:            rounds,
		BinaryRowsPerSec:  binRows,
		JSONRowsPerSec:    jsonRows,
		BinaryMBPerSec:    binBytes / 1e6,
		JSONMBPerSec:      jsonBytes / 1e6,
		BinaryBytesPerRow: binBytes / binRows,
		JSONBytesPerRow:   jsonBytes / jsonRows,
		RowRateRatio:      binRows / jsonRows,
	}, nil
}

// checkFleetBudget enforces fleet budget entries (Nodes > 0) against the
// measured fleet cells; pipeline entries are ignored here. An entry matches
// on nodes, targets/node and subscriber count, so the subscriber axis is
// pinned independently of the no-fanout cells.
func checkFleetBudget(cells []FleetCell, budget []BudgetEntry) bool {
	failed := false
	for _, b := range budget {
		if b.Nodes <= 0 {
			continue
		}
		for _, c := range cells {
			if c.Nodes != b.Nodes || c.TargetsPerNode != b.TargetsPerNode || c.Subscribers != b.Subscribers {
				continue
			}
			label := fmt.Sprintf("nodes=%d targets/node=%d subscribers=%d", c.Nodes, c.TargetsPerNode, c.Subscribers)
			if c.AllocsPerRound > b.MaxAllocsPerRound {
				fmt.Fprintf(os.Stderr, "BUDGET EXCEEDED: %s allocs/round %.1f > budget %.1f\n",
					label, c.AllocsPerRound, b.MaxAllocsPerRound)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "budget ok: %s allocs/round %.1f <= %.1f\n",
					label, c.AllocsPerRound, b.MaxAllocsPerRound)
			}
			if b.MaxRoundP99Seconds <= 0 {
				continue
			}
			if c.RoundP99Seconds > b.MaxRoundP99Seconds {
				fmt.Fprintf(os.Stderr, "BUDGET EXCEEDED: %s round p99 %.3fs > budget %.3fs\n",
					label, c.RoundP99Seconds, b.MaxRoundP99Seconds)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "budget ok: %s round p99 %.3fs <= %.3fs\n",
					label, c.RoundP99Seconds, b.MaxRoundP99Seconds)
			}
		}
	}
	return failed
}
