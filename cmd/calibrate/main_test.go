package main

import (
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-spec", "not-a-cpu"}); err == nil {
		t.Fatal("unknown spec should fail")
	}
	if err := run([]string{"-selection", "bogus"}); err == nil {
		t.Fatal("unknown selection strategy should fail")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Fatal("unknown flag should fail")
	}
}

func TestRunQuickCalibrationWritesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is too slow for -short")
	}
	out := filepath.Join(t.TempDir(), "model.json")
	if err := run([]string{"-quick", "-spec", "core2duo-e6600", "-out", out}); err != nil {
		t.Fatalf("quick calibration failed: %v", err)
	}
}
