// Command calibrate runs the paper's Figure 1 power-model learning process on
// a simulated processor and writes the learned energy profile to a JSON file.
//
// Usage:
//
//	calibrate -spec i3-2120 -out model.json
//	calibrate -spec core2duo-e6600 -quick -selection spearman
package main

import (
	"flag"
	"fmt"
	"os"

	"powerapi/internal/calibration"
	"powerapi/internal/cpu"
	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/report"
	"powerapi/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("calibrate", flag.ContinueOnError)
	var (
		specName  = fs.String("spec", "i3-2120", "processor to profile (see -list)")
		list      = fs.Bool("list", false, "list available processor specs and exit")
		out       = fs.String("out", "model.json", "output path for the learned model (JSON)")
		quick     = fs.Bool("quick", false, "use the reduced calibration sweep")
		selection = fs.String("selection", "paper", "counter selection: paper, pearson or spearman")
		topK      = fs.Int("topk", 3, "number of counters kept by pearson/spearman selection")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		table := report.NewTable("Available processor specs", "Name", "Description")
		for name, spec := range cpu.Catalog() {
			table.AddRow(name, spec.String())
		}
		return table.Render(os.Stdout)
	}
	spec, err := cpu.LookupSpec(*specName)
	if err != nil {
		return err
	}
	opts := calibration.DefaultOptions()
	if *quick {
		opts = calibration.QuickOptions()
	}
	switch *selection {
	case "paper":
		opts.FixedEvents = hpc.PaperEvents()
	case "pearson":
		opts.SelectionMethod = stats.MethodPearson
		opts.TopK = *topK
	case "spearman":
		opts.SelectionMethod = stats.MethodSpearman
		opts.TopK = *topK
	default:
		return fmt.Errorf("unknown selection strategy %q", *selection)
	}

	cfg := machine.DefaultConfig()
	cfg.Spec = spec
	cal, err := calibration.New(cfg, opts)
	if err != nil {
		return err
	}
	fmt.Printf("Learning the energy profile of %s (%d frequencies, %d repetitions)...\n",
		spec.String(), len(spec.FrequenciesMHz()), opts.Repetitions)
	powerModel, calReport, err := cal.Run()
	if err != nil {
		return err
	}

	fmt.Printf("\nIdle power constant: %.2f W\n", calReport.IdleWatts)
	fmt.Printf("Selected counters (%s): %v\n", calReport.SelectionMethod, calReport.SelectedNames)
	fmt.Printf("Calibration samples: %d (%.0f simulated seconds)\n\n",
		calReport.TotalSamples, calReport.SimulatedSeconds)
	fmt.Println(powerModel.Equation())

	fits := report.NewTable("Per-frequency fit", "Frequency (MHz)", "R2", "Samples")
	for _, fit := range calReport.PerFrequency {
		fits.AddRow(fmt.Sprintf("%d", fit.FrequencyMHz), fmt.Sprintf("%.3f", fit.R2), fmt.Sprintf("%d", fit.Samples))
	}
	if err := fits.Render(os.Stdout); err != nil {
		return err
	}

	if err := powerModel.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("\nModel written to %s\n", *out)
	return nil
}
