package main

import (
	"testing"
	"time"

	"powerapi/internal/vmbridge"
)

func TestRunRejectsBadVMBridgeFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"publish without vms", []string{"-vm-publish", "127.0.0.1:0"}},
		{"publish and delegate", []string{"-vms", "vma=1", "-vm-publish", "127.0.0.1:0", "-vm-delegate", "127.0.0.1:1"}},
		{"delegate without name", []string{"-vm-delegate", "127.0.0.1:1"}},
		{"delegate with source", []string{"-vm-delegate", "127.0.0.1:1", "-vm-name", "vma", "-source", "blended"}},
		{"bad stale policy", []string{"-vm-delegate", "127.0.0.1:1", "-vm-name", "vma", "-vm-stale", "freeze"}},
		{"malformed vms spec", []string{"-vms", "vma"}},
		{"nested vm name", []string{"-vms", "vma/inner=1", "-duration", "1s", "-interval", "1s"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err == nil {
				t.Fatalf("args %v should fail", tc.args)
			}
		})
	}
}

// TestRunHostWithVMPublish runs the host side end to end: pid-set VMs over
// the workload mix, per-VM rows in every round and a live TCP frame stream a
// guest could dial.
func TestRunHostWithVMPublish(t *testing.T) {
	if testing.Short() {
		t.Skip("quick calibration plus monitoring is too slow for -short")
	}
	args := []string{"-duration", "3s", "-interval", "1s", "-source", "blended",
		"-vms", "vma=1,3;vmb=2", "-vm-publish", "127.0.0.1:0"}
	if err := run(args); err != nil {
		t.Fatalf("daemon run with -vm-publish failed: %v", err)
	}
	// An out-of-range workload index fails after spawn, like -cgroups.
	if err := run([]string{"-duration", "2s", "-interval", "1s", "-vms", "vma=99"}); err == nil {
		t.Fatal("out-of-range workload index should fail")
	}
}

// TestRunGuestWithVMDelegate runs the guest side end to end against a
// synthetic host: the test publishes frames over a real TCP bridge and the
// daemon consumes them as its machine power.
func TestRunGuestWithVMDelegate(t *testing.T) {
	if testing.Short() {
		t.Skip("quick calibration plus monitoring is too slow for -short")
	}
	host, err := vmbridge.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	// A steady trickle of frames stands in for the host daemon's rounds; the
	// guest's sampling rounds pick up whichever figure is freshest.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		seq := uint64(0)
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				seq++
				_ = host.Send(vmbridge.VMPowerFrame{VM: "vma", Seq: seq, Watts: 12.5, Timestamp: time.Duration(seq) * time.Second})
			}
		}
	}()
	defer func() { close(stop); <-done }()

	args := []string{"-duration", "3s", "-interval", "1s",
		"-vm-delegate", host.Addr().String(), "-vm-name", "vma", "-vm-stale", "hold"}
	if err := run(args); err != nil {
		t.Fatalf("daemon run with -vm-delegate failed: %v", err)
	}
}
