package main

import "testing"

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-spec", "not-a-cpu"}); err == nil {
		t.Fatal("unknown spec should fail")
	}
	if err := run([]string{"-model", "/does/not/exist.json"}); err == nil {
		t.Fatal("missing model file should fail")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Fatal("unknown flag should fail")
	}
}

func TestRunShortMonitoringSession(t *testing.T) {
	if testing.Short() {
		t.Skip("quick calibration plus monitoring is too slow for -short")
	}
	if err := run([]string{"-duration", "3s", "-interval", "1s"}); err != nil {
		t.Fatalf("daemon run failed: %v", err)
	}
}
