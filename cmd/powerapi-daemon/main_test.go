package main

import "testing"

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-spec", "not-a-cpu"}); err == nil {
		t.Fatal("unknown spec should fail")
	}
	if err := run([]string{"-model", "/does/not/exist.json"}); err == nil {
		t.Fatal("missing model file should fail")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Fatal("unknown flag should fail")
	}
	if err := run([]string{"-source", "not-a-backend"}); err == nil {
		t.Fatal("unknown source mode should fail")
	}
	if err := run([]string{"-collect-timeout", "-1s"}); err == nil {
		t.Fatal("negative collect timeout should fail")
	}
	if err := run([]string{"-cgroups", "web"}); err == nil {
		t.Fatal("malformed cgroup spec should fail")
	}
	if err := run([]string{"-cgroups", "web=1;web=2"}); err == nil {
		t.Fatal("duplicate cgroup should fail")
	}
}

func TestRunShortMonitoringSession(t *testing.T) {
	if testing.Short() {
		t.Skip("quick calibration plus monitoring is too slow for -short")
	}
	if err := run([]string{"-duration", "3s", "-interval", "1s"}); err != nil {
		t.Fatalf("daemon run failed: %v", err)
	}
}

func TestRunSourceModes(t *testing.T) {
	if testing.Short() {
		t.Skip("quick calibration plus monitoring is too slow for -short")
	}
	for _, mode := range []string{"blended", "rapl", "procfs"} {
		if err := run([]string{"-duration", "2s", "-interval", "1s", "-source", mode}); err != nil {
			t.Fatalf("daemon run with -source %s failed: %v", mode, err)
		}
	}
}

func TestRunWithCgroups(t *testing.T) {
	if testing.Short() {
		t.Skip("quick calibration plus monitoring is too slow for -short")
	}
	args := []string{"-duration", "2s", "-interval", "1s", "-source", "blended",
		"-cgroups", "web=1,3;web/api=4;db=2"}
	if err := run(args); err != nil {
		t.Fatalf("daemon run with -cgroups failed: %v", err)
	}
	// A workload index outside the spawned mix fails after spawn, not silently.
	if err := run([]string{"-duration", "2s", "-interval", "1s", "-cgroups", "web=99"}); err == nil {
		t.Fatal("out-of-range workload index should fail")
	}
}
