// Command powerapi-daemon runs the PowerAPI middleware against a simulated
// host: it spawns a mix of workloads, attaches the Sensor → Formula →
// Aggregator → Reporter pipeline to every process and prints per-process
// power estimations in real time, the way the real PowerAPI daemon reports
// the consumption of PIDs.
//
// SIGINT/SIGTERM stop the monitoring loop early; the pipeline is then drained
// through System.Shutdown and the CSV/JSONL outputs are flushed, so a file is
// never truncated mid-round.
//
// Usage:
//
//	powerapi-daemon -duration 60s -interval 1s
//	powerapi-daemon -model model.json -spec i3-2120
//	powerapi-daemon -shards 8 -csv power.csv -jsonl power.jsonl
//	powerapi-daemon -source blended          # RAPL total, counter-keyed split
//	powerapi-daemon -source procfs           # no-counters fallback
//	powerapi-daemon -cgroups "web=1,4;db=2"  # container-level rollup over the
//	                                         # 1-based workload indices
//	powerapi-daemon -listen 127.0.0.1:9090   # Prometheus /metrics + JSON API
//	powerapi-daemon -debug-addr 127.0.0.1:6060
//	                                         # net/http/pprof profiling surface
//	powerapi-daemon -log-level debug -log-format json
//	powerapi-daemon -self-power=false        # drop the powerapi-self row
//	powerapi-daemon -vms "vma=1,2;vmb=3" -vm-publish 127.0.0.1:9191
//	                                         # host side of the VM bridge
//	powerapi-daemon -vm-delegate 127.0.0.1:9191 -vm-name vma
//	                                         # guest side: nested instance
//	powerapi-daemon -fleet-publish 127.0.0.1:9292 -node-name node-a
//	                                         # one node of a collector fleet
//
// With -cgroups the daemon groups the spawned workloads into a control-group
// hierarchy (nested paths like "web/api" are allowed), reports each group's
// power next to the per-process rows and switches the CSV schema to the
// target layout carrying the kind and hierarchy path of every row.
//
// With -listen the daemon mounts the HTTP serving layer: Prometheus-style
// text exposition on /metrics and the JSON API under /api/v1 (target
// listing, windowed history queries over the -history retention window,
// dynamic attach/detach, and the /api/v1/debug observability surface: the
// per-round stage timeline and the stats snapshot). Once the monitoring run
// completes the daemon keeps serving the retained figures until
// SIGINT/SIGTERM (disable with -linger=false).
//
// Observability: the daemon attributes its own consumption as a
// "powerapi-self" row by default (-self-power=false disables it), logs
// structured events through log/slog (-log-level, -log-format) and exposes
// Go's pprof profiling endpoints on a separate -debug-addr listener, kept
// apart from -listen so profiling is never reachable from the scrape port.
//
// The VM bridge connects two daemons across the host/guest boundary. On the
// host, -vms designates named VMs over the workload indices and -vm-publish
// streams each VM's per-round power as JSON lines over TCP (the virtio-serial
// stand-in). On the guest, -vm-delegate dials that address and -vm-name picks
// the VM: the guest daemon's machine power is then whatever the host
// delegated, re-attributed across the guest's own workloads — the nested
// PowerAPI instance of the paper. -vm-stale selects what the guest reports
// when frames stop arriving (zero|hold).
//
// With -fleet-publish the daemon becomes one node of a fleet: every completed
// round streams one frame carrying the node total and its per-cgroup rows for
// a powerapi-collector to gather. The collector negotiates the compact binary
// codec per connection; legacy JSON receivers on the same socket keep their
// JSON-lines stream.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // -debug-addr serves the default mux's /debug/pprof
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"powerapi"
	"powerapi/internal/actor"
	"powerapi/internal/advisor"
	"powerapi/internal/calibration"
	"powerapi/internal/cgroup"
	"powerapi/internal/core"
	"powerapi/internal/cpu"
	"powerapi/internal/hpc"
	"powerapi/internal/httpapi"
	"powerapi/internal/machine"
	"powerapi/internal/model"
	"powerapi/internal/source"
	"powerapi/internal/vmbridge"
	"powerapi/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "powerapi-daemon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("powerapi-daemon", flag.ContinueOnError)
	var (
		specName  = fs.String("spec", "i3-2120", "processor to simulate")
		modelPath = fs.String("model", "", "learned power model (JSON); empty runs a quick calibration first")
		duration  = fs.Duration("duration", 30*time.Second, "simulated monitoring duration")
		interval  = fs.Duration("interval", time.Second, "sampling interval")
		shards    = fs.Int("shards", 1, "number of Sensor/Formula shards in the pipeline")
		srcName   = fs.String("source", "hpc", "sensing backend: hpc|procfs|rapl|blended")
		timeout   = fs.Duration("collect-timeout", core.DefaultCollectTimeout, "wall-clock budget of one sampling round")
		csvPath   = fs.String("csv", "", "write per-process rounds to this CSV file")
		jsonlPath = fs.String("jsonl", "", "write one JSON object per round to this file")
		cgroups   = fs.String("cgroups", "", `group workloads into control groups, e.g. "web=1,2;web/api=3;db=4" (1-based workload indices)`)
		listen    = fs.String("listen", "", `serve Prometheus /metrics and the JSON /api/v1 endpoints on this address (e.g. "127.0.0.1:9090")`)
		debugAddr = fs.String("debug-addr", "", `serve Go's net/http/pprof profiling endpoints on this address (e.g. "127.0.0.1:6060"); kept separate from -listen`)
		logLevel  = fs.String("log-level", "info", "minimum structured-log level: debug|info|warn|error")
		logFormat = fs.String("log-format", "text", "structured-log output format: text|json")
		selfPower = fs.Bool("self-power", true, "attribute the daemon's own consumption as a powerapi-self target row")
		linger    = fs.Bool("linger", true, "with -listen or -debug-addr, keep serving after the monitoring run completes until SIGINT/SIGTERM")
		histCap   = fs.Int("history", 1024, "retained samples per target for /api/v1/query; only effective with -listen (0 disables the history store)")
		retention = fs.Int("retention", 300, "most recent rounds RunMonitored keeps in memory (0 keeps all)")
		fleetPub  = fs.String("fleet-publish", "", `fleet side of the bridge: stream this node's per-round power (total plus per-cgroup rows) over TCP on this address for a powerapi-collector to gather`)
		nodeName  = fs.String("node-name", "", "with -fleet-publish, this node's name in the fleet rollup (default: the hostname)")
		fleetProv = fs.Bool("fleet-provenance", true, "with -fleet-publish, stamp frames with emit time, round and trace id (off emulates a pre-provenance daemon)")
		vms       = fs.String("vms", "", `designate named VMs over the workloads, e.g. "vma=1,2;vmb=3" (1-based workload indices)`)
		vmPublish = fs.String("vm-publish", "", `host side of the VM bridge: stream per-VM power frames as JSON lines over TCP on this address (requires -vms)`)
		vmDial    = fs.String("vm-delegate", "", `guest side of the VM bridge: dial a host's -vm-publish address and use the delegated figure as this instance's machine power`)
		vmName    = fs.String("vm-name", "", "with -vm-delegate, the VM whose frames this guest consumes")
		vmStale   = fs.String("vm-stale", "zero", "with -vm-delegate, what to report once frames stop arriving: zero|hold")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval <= 0 || *interval > *duration {
		return fmt.Errorf("interval must be positive and no longer than the duration")
	}
	if *timeout <= 0 {
		return fmt.Errorf("collect-timeout must be positive, got %v", *timeout)
	}
	if *histCap < 0 {
		return fmt.Errorf("history must not be negative, got %d", *histCap)
	}
	if *retention < 0 {
		return fmt.Errorf("retention must not be negative, got %d", *retention)
	}
	if *vmPublish != "" && *vmDial != "" {
		return fmt.Errorf("-vm-publish and -vm-delegate are mutually exclusive (one daemon is host or guest, not both)")
	}
	if *vmPublish != "" && *vms == "" {
		return fmt.Errorf("-vm-publish requires -vms to designate which workloads form each VM")
	}
	if *vmDial != "" && *vmName == "" {
		return fmt.Errorf("-vm-delegate requires -vm-name")
	}
	if *nodeName == "" {
		host, herr := os.Hostname()
		if herr != nil {
			host = "localhost"
		}
		*nodeName = host
	}
	if *vmDial != "" && *srcName != "hpc" {
		return fmt.Errorf("-vm-delegate selects the delegated sensing mode; leave -source at its default")
	}
	stalePolicy, err := vmbridge.ParseStalePolicy(*vmStale)
	if err != nil {
		return err
	}
	// Structured logging is configured before anything can emit an event; the
	// pipeline, the actor runtime and the subscription registry all route
	// through this logger.
	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	actor.SetLogger(logger)
	// Like -cgroups, the -vms layout parses before the slow calibration; VM
	// names reuse the spec syntax with single-segment paths.
	var vmSpec *cgroup.Spec
	if *vms != "" {
		var verr error
		vmSpec, verr = cgroup.ParseSpec(*vms)
		if verr != nil {
			return verr
		}
	}
	// Claim the serving socket before the (slow) calibration so a taken port
	// or malformed address fails fast, and so a supervisor (or the CI smoke
	// test) can poll the endpoint while calibration is still running.
	var listener net.Listener
	if *listen != "" {
		var lerr error
		listener, lerr = net.Listen("tcp", *listen)
		if lerr != nil {
			return fmt.Errorf("listen on %s: %w", *listen, lerr)
		}
		defer listener.Close()
	}
	// The pprof surface gets its own socket so profiling endpoints are never
	// reachable through the scrape/API port. It serves from claim time on:
	// profiling the calibration phase is exactly what the flag is for.
	var debugListener net.Listener
	if *debugAddr != "" {
		var derr error
		debugListener, derr = net.Listen("tcp", *debugAddr)
		if derr != nil {
			return fmt.Errorf("listen on %s: %w", *debugAddr, derr)
		}
		defer debugListener.Close()
		debugSrv := &http.Server{Handler: http.DefaultServeMux}
		defer debugSrv.Close()
		go func() {
			if serveErr := debugSrv.Serve(debugListener); serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
				logger.Error("pprof server failed", "addr", *debugAddr, "err", serveErr)
			}
		}()
		fmt.Printf("Serving pprof on http://%s/debug/pprof/\n", debugListener.Addr())
	}
	// The bridge socket is claimed before calibration for the same reasons —
	// and so a guest daemon can already connect while this host calibrates,
	// instead of burning its dial-retry budget against a closed port.
	var bridgeTransport *vmbridge.TCPPublisher
	if *vmPublish != "" {
		var berr error
		bridgeTransport, berr = vmbridge.ListenTCP(*vmPublish)
		if berr != nil {
			return berr
		}
		defer bridgeTransport.Close()
		fmt.Printf("Publishing VM power frames on %s once monitoring starts\n", bridgeTransport.Addr())
	}
	// Same early claim for the fleet socket: a collector may already be
	// dialing while this node calibrates.
	var fleetTransport *vmbridge.TCPPublisher
	if *fleetPub != "" {
		var ferr error
		fleetTransport, ferr = vmbridge.ListenTCP(*fleetPub)
		if ferr != nil {
			return ferr
		}
		defer fleetTransport.Close()
		fmt.Printf("Publishing node power frames on %s once monitoring starts (node %q)\n", fleetTransport.Addr(), *nodeName)
	}
	mode, err := source.ParseMode(*srcName)
	if err != nil {
		return err
	}
	// Parse the cgroup layout before the (slow) calibration so a typo'd spec
	// fails fast; it is materialised over the workload PIDs after spawn.
	var cgroupSpec *cgroup.Spec
	if *cgroups != "" {
		cgroupSpec, err = cgroup.ParseSpec(*cgroups)
		if err != nil {
			return err
		}
	}
	spec, err := cpu.LookupSpec(*specName)
	if err != nil {
		return err
	}

	powerModel, err := loadOrCalibrate(*modelPath, spec)
	if err != nil {
		return err
	}

	cfg := machine.DefaultConfig()
	cfg.Spec = spec
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}

	// A representative mix of tenants: a memory-heavy service, a CPU-bound
	// batch job, a bursty cron-like task and an idle shell.
	type tenant struct {
		name string
		gen  func() (workload.Generator, error)
	}
	tenants := []tenant{
		{name: "web-backend", gen: func() (workload.Generator, error) { return workload.MemoryStress(0.7, 0) }},
		{name: "batch-encoder", gen: func() (workload.Generator, error) { return workload.CPUStress(0.9, 0) }},
		{name: "cron-task", gen: func() (workload.Generator, error) {
			return workload.NewBurst("cron-task", workload.CPUBoundProfile().Demand(0.8), 10*time.Second, 0.3, 0)
		}},
		{name: "idle-shell", gen: func() (workload.Generator, error) { return workload.Idle(0), nil }},
	}
	names := make(map[int]string, len(tenants))
	tenantPIDs := make([]int, 0, len(tenants))
	for _, tn := range tenants {
		gen, err := tn.gen()
		if err != nil {
			return err
		}
		p, err := m.Spawn(gen)
		if err != nil {
			return err
		}
		names[p.PID()] = tn.name
		tenantPIDs = append(tenantPIDs, p.PID())
	}

	// -cgroups groups the spawned workloads into a control-group hierarchy;
	// the Aggregator then rolls the per-process estimates up the tree, so
	// each group's power appears next to the per-process rows.
	var hierarchy *cgroup.Hierarchy
	if cgroupSpec != nil {
		hierarchy, err = cgroupSpec.Build(func(id int) (int, error) {
			if id < 1 || id > len(tenantPIDs) {
				return 0, fmt.Errorf("workload index %d out of range 1..%d", id, len(tenantPIDs))
			}
			return tenantPIDs[id-1], nil
		})
		if err != nil {
			return err
		}
	}

	// -vms designates named VMs over the spawned workloads (pid sets); the
	// Aggregator rolls each VM's power up per round and -vm-publish streams
	// the figures to nested guest daemons.
	var vmDefs []core.VMDef
	if vmSpec != nil {
		for _, name := range vmSpec.Paths {
			def := core.VMDef{Name: name}
			for _, id := range vmSpec.Members[name] {
				if id < 1 || id > len(tenantPIDs) {
					return fmt.Errorf("vm %q: workload index %d out of range 1..%d", name, id, len(tenantPIDs))
				}
				def.PIDs = append(def.PIDs, tenantPIDs[id-1])
			}
			vmDefs = append(vmDefs, def)
		}
	}

	// File reporters run as their own actors inside the pipeline; the
	// buffered writers are flushed after Shutdown has drained the mailboxes —
	// on error paths too, so a failed run still leaves complete rounds on
	// disk.
	// The advisor consumes every round as an internal subscriber of the
	// report fanout; observation failures surface via ErrorCount/LastError.
	adv, err := advisor.New(advisor.DefaultThresholds())
	if err != nil {
		return err
	}
	opts := []core.Option{
		core.WithShards(*shards),
		core.WithSources(mode),
		core.WithCollectTimeout(*timeout),
		core.WithReportRetention(*retention),
		core.WithLogger(logger),
		powerapi.WithAdvisorFeed(adv, *interval),
	}
	// The daemon's own consumption becomes a first-class row by default — the
	// paper's low-overhead claim, continuously measured instead of asserted.
	if *selfPower {
		opts = append(opts, core.WithSelfPower())
	}
	// The store only pays off when something can read it: /api/v1/query.
	// Without -listen the recording work and ring memory would be dead
	// weight, so history stays off.
	if *histCap > 0 && listener != nil {
		opts = append(opts, core.WithHistory(*histCap))
	}
	if hierarchy != nil {
		opts = append(opts, core.WithCgroups(hierarchy))
	}
	if len(vmDefs) > 0 {
		opts = append(opts, core.WithVMs(vmDefs...))
	}
	// -vm-delegate makes this daemon a guest: its machine power is whatever
	// the host publishes for -vm-name, so the per-process rows below conserve
	// to the host-delegated figure instead of a local measurement.
	var delegated *vmbridge.DelegatedSource
	var guestRecv *vmbridge.TCPReceiver
	if *vmDial != "" {
		recv, derr := vmbridge.DialTCPWithRetry(*vmDial, 20, 250*time.Millisecond)
		if derr != nil {
			return derr
		}
		delegated, derr = vmbridge.NewDelegatedSource(recv, *vmName, vmbridge.WithStalePolicy(stalePolicy))
		if derr != nil {
			recv.Close()
			return derr
		}
		guestRecv = recv
		opts = append(opts, core.WithVMBridge(delegated))
		fmt.Printf("Delegating machine power from %s (vm %q, %s stale policy)\n", *vmDial, *vmName, stalePolicy)
	}
	var flushers []func() error
	flushed := false
	flushAll := func() error {
		if flushed {
			return nil
		}
		flushed = true
		// Flush every reporter even when an earlier one fails, so one full
		// disk cannot truncate the others' output.
		var firstErr error
		for _, flush := range flushers {
			if err := flush(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	defer flushAll()
	resolveName := func(pid int) string { return names[pid] }
	if *csvPath != "" {
		// With -cgroups the CSV switches to the target schema so every row
		// carries the target kind and the cgroup rows their hierarchy path.
		csvOpts := []core.ReporterOption{core.WithBufferedWrites()}
		if hierarchy != nil {
			csvOpts = append(csvOpts, core.WithTargetRows())
		}
		opt, flush, err := fileReporter(*csvPath, func(w io.Writer) (core.Option, func() error, error) {
			rep, err := core.NewCSVReporter(w, resolveName, csvOpts...)
			if err != nil {
				return nil, nil, err
			}
			return core.WithFlushingReporter("csv", rep.Report, rep.Flush), rep.Flush, nil
		})
		if err != nil {
			return err
		}
		opts = append(opts, opt)
		flushers = append(flushers, flush)
	}
	if *jsonlPath != "" {
		opt, flush, err := fileReporter(*jsonlPath, func(w io.Writer) (core.Option, func() error, error) {
			rep, err := core.NewJSONLinesReporter(w, core.WithBufferedWrites())
			if err != nil {
				return nil, nil, err
			}
			return core.WithFlushingReporter("jsonl", rep.Report, rep.Flush), rep.Flush, nil
		})
		if err != nil {
			return err
		}
		opts = append(opts, opt)
		flushers = append(flushers, flush)
	}

	// The pipeline owns the delegated source either way: Shutdown closes it
	// after a successful construction, core.New's failure path closes it too.
	api, err := core.New(m, powerModel, opts...)
	if err != nil {
		return err
	}
	defer api.Shutdown()
	if err := api.AttachAllRunnable(); err != nil {
		return err
	}

	// A guest's simulated rounds outpace the wall-clock link by orders of
	// magnitude; without a bounded wait for the first delegated frame every
	// round of a short run would attribute zero watts while the link warms
	// up. Link loss during the wait falls through to the staleness policy.
	if delegated != nil {
		waitDeadline := time.Now().Add(10 * time.Second)
		for delegated.FrameCount() == 0 && !delegated.LinkDown() && time.Now().Before(waitDeadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if delegated.FrameCount() == 0 {
			fmt.Fprintln(os.Stderr, "powerapi-daemon: no delegated frame received yet; starting anyway")
		}
	}

	// -vm-publish turns this daemon into the host side of the bridge: every
	// completed round streams one frame per VM over the pre-claimed socket
	// to the connected guests.
	if bridgeTransport != nil {
		pub, perr := vmbridge.NewPublisher(api, bridgeTransport)
		if perr != nil {
			return perr
		}
		defer pub.Close()
		fmt.Printf("Publishing VM power frames on %s (%d VM(s))\n", bridgeTransport.Addr(), len(vmDefs))
	}

	// -fleet-publish makes this daemon one node of a fleet: every completed
	// round streams one frame carrying the node total and its per-cgroup rows,
	// batched so a connected collector reads one wire message per round.
	if fleetTransport != nil {
		np, nerr := vmbridge.NewNodePublisher(api, fleetTransport, *nodeName)
		if nerr != nil {
			return nerr
		}
		np.SetProvenance(*fleetProv)
		defer np.Close()
		fmt.Printf("Publishing node power frames on %s (node %q)\n", fleetTransport.Addr(), *nodeName)
	}

	// Trap SIGINT/SIGTERM so an interrupted run still drains the pipeline and
	// flushes its reporters instead of dying with half-written output.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -listen mounts the HTTP serving layer over the pre-claimed socket:
	// Prometheus /metrics plus the JSON target/query/attach API.
	if listener != nil {
		srv, serr := httpapi.New(api)
		if serr != nil {
			return serr
		}
		defer srv.Close()
		// Bridge transports surface their per-connection counters on /metrics:
		// frames sent and batches dropped per downstream link, decode errors
		// per upstream link.
		srv.RegisterBridgePublisher("vm-publish", bridgeTransport)
		srv.RegisterBridgePublisher("fleet-publish", fleetTransport)
		srv.RegisterBridgeReceiver("vm-delegate", guestRecv)
		httpSrv := &http.Server{Handler: srv.Handler()}
		defer httpSrv.Close()
		go func() {
			if serveErr := httpSrv.Serve(listener); serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "powerapi-daemon: http:", serveErr)
			}
		}()
		fmt.Printf("Serving http://%s/metrics and http://%s/api/v1 endpoints\n", listener.Addr(), listener.Addr())
	}

	fmt.Printf("Monitoring %d processes on %s for %v (sampling every %v, %d shard(s), %s source)\n\n",
		len(names), spec.String(), *duration, *interval, *shards, mode)
	fmt.Printf("%-10s %-14s %10s %12s\n", "TIME", "PROCESS", "PID", "POWER (W)")
	_, err = api.RunMonitoredContext(ctx, *duration, *interval, func(r core.AggregatedReport) {
		pids := make([]int, 0, len(r.PerPID))
		for pid := range r.PerPID {
			pids = append(pids, pid)
		}
		sort.Slice(pids, func(i, j int) bool { return r.PerPID[pids[i]] > r.PerPID[pids[j]] })
		for _, pid := range pids {
			fmt.Printf("%-10s %-14s %10d %12.2f\n",
				r.Timestamp.Truncate(time.Second), names[pid], pid, r.PerPID[pid])
		}
		if r.SelfWatts > 0 {
			// The meter metering itself: the daemon process's real CPU cost,
			// scaled to the simulated machine's TDP.
			fmt.Printf("%-10s %-14s %10s %12.2f\n",
				r.Timestamp.Truncate(time.Second), "powerapi-self", "-", r.SelfWatts)
		}
		if len(r.PerCgroup) > 0 {
			paths := make([]string, 0, len(r.PerCgroup))
			for path := range r.PerCgroup {
				paths = append(paths, path)
			}
			sort.Strings(paths)
			for _, path := range paths {
				fmt.Printf("%-10s %-14s %10s %12.2f\n",
					r.Timestamp.Truncate(time.Second), "cgroup:"+path, "-", r.PerCgroup[path])
			}
		}
		if len(r.PerVM) > 0 {
			names := make([]string, 0, len(r.PerVM))
			for name := range r.PerVM {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Printf("%-10s %-14s %10s %12.2f\n",
					r.Timestamp.Truncate(time.Second), "vm:"+name, "-", r.PerVM[name])
			}
		}
		fmt.Printf("%-10s %-14s %10s %12.2f  (idle %.2f + active %.2f)\n\n",
			r.Timestamp.Truncate(time.Second), "TOTAL", "-", r.TotalWatts, r.IdleWatts, r.ActiveWatts)
	})
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "powerapi-daemon: interrupted, draining pipeline")
	case err != nil:
		return err
	}

	// With -listen or -debug-addr the daemon lingers once the run completes:
	// the retained history and the latest round keep serving /metrics and
	// /api/v1, and the pprof surface stays up for post-run profiling, until a
	// signal arrives. A simulated run finishes in wall-clock milliseconds, so
	// without the linger the profiling socket would close before anyone could
	// reach it.
	if (listener != nil || debugListener != nil) && *linger && ctx.Err() == nil {
		if listener != nil {
			fmt.Printf("Monitoring run complete; serving http://%s until interrupted (SIGINT/SIGTERM)\n", listener.Addr())
		} else {
			fmt.Printf("Monitoring run complete; serving pprof on http://%s/debug/pprof/ until interrupted (SIGINT/SIGTERM)\n", debugListener.Addr())
		}
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "powerapi-daemon: interrupted, draining pipeline")
	}

	// Drain the pipeline before flushing: Shutdown waits for every reporter
	// subscriber to finish the rounds already buffered in its channel.
	api.Shutdown()
	// Subscriber and stage failures (a failing advisor observation, a shard
	// panic) accumulate in the pipeline's error counter; a clean-looking run
	// must not hide them.
	if count := api.ErrorCount(); count > 0 {
		fmt.Fprintf(os.Stderr, "powerapi-daemon: %d pipeline error(s), last: %v\n", count, api.LastError())
	}
	if err := flushAll(); err != nil {
		return err
	}

	findings := adv.Findings()
	if len(findings) == 0 {
		fmt.Println("Advisor: no energy leaks detected over this run.")
		return nil
	}
	fmt.Println("Advisor findings (largest consumers and suspected energy leaks):")
	for _, f := range findings {
		fmt.Printf("  [%s] %s (%s)\n", f.Severity, f.Message, names[f.PID])
	}
	return nil
}

// fileReporter opens path and builds a reporter option over the file; the
// reporters buffer internally and are flushed by the pipeline's Shutdown
// (WithFlushingReporter). The returned function flushes once more and closes
// the file; call it after the pipeline has been shut down.
func fileReporter(path string, build func(w io.Writer) (core.Option, func() error, error)) (core.Option, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	opt, flush, err := build(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	closeFile := func() error {
		if err := flush(); err != nil {
			f.Close()
			return fmt.Errorf("flush %s: %w", path, err)
		}
		return f.Close()
	}
	return opt, closeFile, nil
}

// buildLogger maps the -log-level/-log-format flags onto a slog logger
// writing to stderr (stdout stays reserved for the report table).
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("invalid log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("invalid log-format %q (want text|json)", format)
	}
}

func loadOrCalibrate(path string, spec cpu.Spec) (*model.CPUPowerModel, error) {
	if path != "" {
		return model.LoadFile(path)
	}
	fmt.Println("No model provided: running a quick calibration first (use cmd/calibrate for the full sweep).")
	opts := calibration.QuickOptions()
	opts.FixedEvents = hpc.PaperEvents()
	cfg := machine.DefaultConfig()
	cfg.Spec = spec
	cal, err := calibration.New(cfg, opts)
	if err != nil {
		return nil, err
	}
	powerModel, _, err := cal.Run()
	if err != nil {
		return nil, err
	}
	return powerModel, nil
}
