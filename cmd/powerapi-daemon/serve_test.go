package main

import (
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunRejectsBadServingFlags(t *testing.T) {
	if err := run([]string{"-listen", "not-an-address"}); err == nil {
		t.Fatal("malformed listen address should fail")
	}
	if err := run([]string{"-history", "-1"}); err == nil {
		t.Fatal("negative history should fail")
	}
	if err := run([]string{"-retention", "-1"}); err == nil {
		t.Fatal("negative retention should fail")
	}
}

// TestRunServesHTTP boots the daemon with -listen, scrapes /metrics and
// /api/v1/query while it lingers after the monitoring run, then stops it
// with SIGINT the way an operator would.
func TestRunServesHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("quick calibration plus serving is too slow for -short")
	}
	// Reserve a free port, then hand it to the daemon. The tiny window
	// between Close and the daemon's Listen is an acceptable test race.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{"-duration", "5s", "-interval", "1s", "-listen", addr,
			"-cgroups", "web=1,3;db=2"})
	}()
	defer func() {
		// Always interrupt the lingering daemon, even on failed assertions.
		_ = syscall.Kill(syscall.Getpid(), syscall.SIGINT)
		select {
		case err := <-runErr:
			if err != nil {
				t.Errorf("daemon run returned %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("daemon did not stop after SIGINT")
		}
	}()

	base := "http://" + addr
	client := &http.Client{Timeout: 2 * time.Second}
	fetch := func(url string) (int, string, error) {
		resp, err := client.Get(url)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), err
	}

	// Wait out calibration + the monitoring run; the daemon lingers after it.
	var metrics string
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body, err := fetch(base + "/metrics")
		if err == nil && code == http.StatusOK {
			metrics = body
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no /metrics after 60s (last: code %d, err %v)", code, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	for _, want := range []string{
		`powerapi_target_watts{kind="process"`,
		`powerapi_target_watts{kind="cgroup",id="web"}`,
		"powerapi_total_watts ",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	code, body, err := fetch(base + "/api/v1/query")
	if err != nil || code != http.StatusOK {
		t.Fatalf("/api/v1/query code %d err %v", code, err)
	}
	if !strings.Contains(body, `"samples":`) || !strings.Contains(body, "cgroup:web") {
		t.Fatalf("/api/v1/query lacks per-target samples: %s", body)
	}

	code, body, err = fetch(base + "/api/v1/targets")
	if err != nil || code != http.StatusOK {
		t.Fatalf("/api/v1/targets code %d err %v", code, err)
	}
	if !strings.Contains(body, `"monitoredPids"`) {
		t.Fatalf("/api/v1/targets body: %s", body)
	}
}
