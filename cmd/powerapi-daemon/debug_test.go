package main

import (
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunRejectsBadObservabilityFlags(t *testing.T) {
	if err := run([]string{"-log-level", "loud"}); err == nil {
		t.Fatal("unknown log level should fail")
	}
	if err := run([]string{"-log-format", "xml"}); err == nil {
		t.Fatal("unknown log format should fail")
	}
	if err := run([]string{"-debug-addr", "not-an-address"}); err == nil {
		t.Fatal("malformed debug address should fail")
	}
}

func TestBuildLogger(t *testing.T) {
	for _, level := range []string{"debug", "info", "warn", "error"} {
		for _, format := range []string{"text", "json"} {
			if _, err := buildLogger(level, format); err != nil {
				t.Fatalf("buildLogger(%s, %s): %v", level, format, err)
			}
		}
	}
	if _, err := buildLogger("info", "yaml"); err == nil {
		t.Fatal("invalid format should fail")
	}
}

// TestRunWithDebugSurface boots the daemon with the pprof listener and JSON
// logging, polls /debug/pprof/ while the run is live, and checks the report
// table carries the powerapi-self row of the default -self-power.
func TestRunWithDebugSurface(t *testing.T) {
	if testing.Short() {
		t.Skip("quick calibration plus monitoring is too slow for -short")
	}
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	// The pprof socket serves from claim time — before run() installs its
	// signal handler — so a SIGINT sent right after the first successful poll
	// could hit the default disposition and kill the test binary. Holding our
	// own registration keeps SIGINT non-fatal for the whole process.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT)
	defer signal.Stop(sigs)

	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{"-duration", "3s", "-interval", "1s",
			"-debug-addr", addr, "-log-level", "debug", "-log-format", "json"})
	}()
	defer func() {
		// The simulated run finishes in milliseconds and the daemon then
		// lingers on the debug listener; interrupt it like an operator would,
		// re-sending in case the first SIGINT lands before the daemon's
		// handler is up.
		deadline := time.Now().Add(30 * time.Second)
		for {
			_ = syscall.Kill(syscall.Getpid(), syscall.SIGINT)
			select {
			case err := <-runErr:
				if err != nil {
					t.Errorf("daemon run returned %v", err)
				}
				return
			case <-time.After(200 * time.Millisecond):
			}
			if time.Now().After(deadline) {
				t.Error("daemon did not stop after SIGINT")
				return
			}
		}
	}()

	// The pprof surface serves from socket-claim time through the post-run
	// linger, so the poll cannot race the (fast, simulated) monitoring run.
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, ferr := client.Get("http://" + addr + "/debug/pprof/")
		if ferr == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
				t.Fatalf("/debug/pprof/ status %d body %s", resp.StatusCode, body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pprof endpoint never came up: %v", ferr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
