// Command powerapi-collector is the fleet tier of the middleware: it gathers
// the per-node power frames of N powerapi-daemon instances (their
// -fleet-publish sockets), rolls them up into cluster-wide figures every
// interval and serves the fleet over HTTP — per-node watts, per-cgroup watts
// summed across nodes, whole-fleet totals, gather-link health and rollup
// latency.
//
// Usage:
//
//	powerapi-collector -nodes 127.0.0.1:9292,127.0.0.1:9293
//	powerapi-collector -nodes ... -listen 127.0.0.1:9090
//	                                    # Prometheus /metrics + JSON /api/v1
//	powerapi-collector -nodes ... -codec json
//	                                    # legacy JSON-lines ingest
//	powerapi-collector -nodes ... -debug-addr 127.0.0.1:6060
//	                                    # net/http/pprof profiling surface
//	powerapi-collector -nodes ... -interval 500ms -stale-after 5s -shards 8
//	powerapi-collector -nodes ... -output-jsonl 127.0.0.1:5170
//	                                    # push rounds + events as JSON lines
//	                                    # (file:PATH appends to a file)
//	powerapi-collector -nodes ... -output-webhook http://alerts/hook
//	                                    # POST batched JSON arrays, retried
//	                                    # with capped backoff while the
//	                                    # receiver is down
//
// Each node link dials with capped exponential backoff and reconnects for as
// long as the collector runs; a silent node's last contribution is used until
// -stale-after, then the node is skipped and accounted as stale. By default
// the collector negotiates the compact binary frame codec with every node —
// one length-prefixed message per node round — and its steady-state ingest
// allocates nothing per frame.
//
// The collector meters its own consumption (the -self-ref-watts model of one
// busy core) and reports it as a self row next to the fleet it rolls up, the
// same continuously-verified overhead claim the daemon makes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // -debug-addr serves the default mux's /debug/pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"powerapi/internal/collector"
	"powerapi/internal/core"
	"powerapi/internal/httpapi"
	"powerapi/internal/vmbridge"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "powerapi-collector:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("powerapi-collector", flag.ContinueOnError)
	var (
		nodes      = fs.String("nodes", "", `comma-separated daemon -fleet-publish addresses to gather from (e.g. "127.0.0.1:9292,127.0.0.1:9293")`)
		listen     = fs.String("listen", "", `serve Prometheus /metrics and the JSON /api/v1 fleet endpoints on this address`)
		debugAddr  = fs.String("debug-addr", "", `serve Go's net/http/pprof profiling endpoints on this address; kept separate from -listen`)
		interval   = fs.Duration("interval", time.Second, "fleet rollup period")
		duration   = fs.Duration("duration", 0, "stop after this long (0 runs until SIGINT/SIGTERM)")
		staleAfter = fs.Duration("stale-after", 5*time.Second, "how long a node's last frame stays eligible for rollup before the node is skipped")
		codecName  = fs.String("codec", "binary", "wire encoding negotiated with each node: binary|json")
		shardCount = fs.Int("shards", 4, "rollup fan-out width")
		workers    = fs.Int("workers", 0, "ingest worker pool size (0 picks min(8, GOMAXPROCS))")
		histCap    = fs.Int("history", 1024, "retained samples per fleet target for /api/v1/query (0 disables)")
		selfRef    = fs.Float64("self-ref-watts", 65, "reference watts of one fully busy core for the collector's self-power row (0 disables)")
		lagAfter   = fs.Duration("lag-after", 0, "health model: contribution age or ingest lag beyond which a node turns lagging (0 picks 2x interval)")
		goneAfter  = fs.Duration("gone-after", 0, "health model: how long past staleness a node stays stale before it is declared gone (0 picks 4x stale-after)")
		spike      = fs.Float64("spike-factor", 4, "health model: flag a node total more than this multiple of its previous value as a power step spike")
		journalCap = fs.Int("journal", collector.DefaultJournalCapacity, "event journal ring capacity (/api/v1/events)")
		outputTCP  = fs.String("output-jsonl", "", `push JSON-lines fleet rounds and events to this sink ("host:port" dials TCP, "file:PATH" appends to a file)`)
		outputURL  = fs.String("output-webhook", "", "POST batched fleet rounds and events as JSON arrays to this URL")
		outBatch   = fs.Int("output-batch", 64, "documents per push-output batch")
		outFlush   = fs.Duration("output-flush", time.Second, "how long a partial push-output batch waits before pushing")
		outQueue   = fs.Int("output-queue", 4096, "pending documents a push output buffers before shedding oldest")
		quiet      = fs.Bool("quiet", false, "suppress the per-round summary lines on stdout")
		logLevel   = fs.String("log-level", "info", "minimum structured-log level: debug|info|warn|error")
		logFormat  = fs.String("log-format", "text", "structured-log output format: text|json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes == "" {
		return errors.New("-nodes is required (comma-separated daemon -fleet-publish addresses)")
	}
	if *interval <= 0 {
		return fmt.Errorf("interval must be positive, got %v", *interval)
	}
	var codec vmbridge.Codec
	switch *codecName {
	case "binary":
		codec = vmbridge.CodecBinary
	case "json":
		codec = vmbridge.CodecJSON
	default:
		return fmt.Errorf("invalid codec %q (want binary or json)", *codecName)
	}
	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)

	addrs := make([]string, 0, 8)
	for _, a := range strings.Split(*nodes, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}

	// Claim the serving sockets before the collector starts so a taken port
	// fails fast and a supervisor can poll the endpoints immediately.
	var listener net.Listener
	if *listen != "" {
		listener, err = net.Listen("tcp", *listen)
		if err != nil {
			return fmt.Errorf("listen on %s: %w", *listen, err)
		}
		defer listener.Close()
	}
	// The pprof surface gets its own socket, kept apart from the scrape port.
	if *debugAddr != "" {
		debugListener, derr := net.Listen("tcp", *debugAddr)
		if derr != nil {
			return fmt.Errorf("listen on %s: %w", *debugAddr, derr)
		}
		defer debugListener.Close()
		debugSrv := &http.Server{Handler: http.DefaultServeMux}
		defer debugSrv.Close()
		go func() {
			if serveErr := debugSrv.Serve(debugListener); serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
				logger.Error("pprof server failed", "addr", *debugAddr, "err", serveErr)
			}
		}()
		fmt.Printf("Serving pprof on http://%s/debug/pprof/\n", debugListener.Addr())
	}

	col, err := collector.New(collector.Config{
		Nodes:           addrs,
		Shards:          *shardCount,
		Workers:         *workers,
		Interval:        *interval,
		StaleAfter:      *staleAfter,
		LagAfter:        *lagAfter,
		GoneAfter:       *goneAfter,
		SpikeFactor:     *spike,
		JournalCapacity: *journalCap,
		Codec:           codec,
		HistoryCapacity: *histCap,
		SelfRefWatts:    *selfRef,
		Logger:          logger,
	})
	if err != nil {
		return err
	}
	defer col.Close()

	outCfg := collector.OutputConfig{
		BatchSize:  *outBatch,
		FlushEvery: *outFlush,
		QueueDocs:  *outQueue,
		Rounds:     true,
		Events:     true,
	}
	if *outputTCP != "" {
		var sink collector.Sink
		if path, ok := strings.CutPrefix(*outputTCP, "file:"); ok {
			sink = collector.NewJSONLFileSink(path)
		} else {
			sink = collector.NewJSONLTCPSink(*outputTCP)
		}
		if _, oerr := col.AddOutput(sink, outCfg); oerr != nil {
			return oerr
		}
		fmt.Printf("Pushing JSON lines to %s\n", *outputTCP)
	}
	if *outputURL != "" {
		if _, oerr := col.AddOutput(collector.NewWebhookSink(*outputURL, 0), outCfg); oerr != nil {
			return oerr
		}
		fmt.Printf("Pushing webhook batches to %s\n", *outputURL)
	}

	if listener != nil {
		srv, serr := httpapi.NewFleet(col)
		if serr != nil {
			return serr
		}
		defer srv.Close()
		httpSrv := &http.Server{Handler: srv.Handler()}
		defer httpSrv.Close()
		go func() {
			if serveErr := httpSrv.Serve(listener); serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "powerapi-collector: http:", serveErr)
			}
		}()
		fmt.Printf("Serving http://%s/metrics and http://%s/api/v1 fleet endpoints\n", listener.Addr(), listener.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	fmt.Printf("Gathering %d node(s) every %v (%s codec, %d shard(s), stale after %v)\n",
		len(addrs), *interval, codec, *shardCount, *staleAfter)

	// The per-round summary consumes the same fanout every other subscriber
	// uses; Conflate keeps a slow terminal from ever stalling the rollup.
	sub, err := col.Subscribe(collector.SubscribeOptions{Name: "stdout", Policy: core.Conflate})
	if err != nil {
		return err
	}
	defer sub.Close()
	for {
		select {
		case <-ctx.Done():
			printFinalStats(col)
			return nil
		case rep, ok := <-sub.C():
			if !ok {
				printFinalStats(col)
				return nil
			}
			if !*quiet {
				self := ""
				if rep.SelfWatts > 0 {
					self = fmt.Sprintf("  powerapi-self %.2f W", rep.SelfWatts)
				}
				fmt.Printf("round %-6d nodes %d live / %d stale   fleet %.2f W   keys %d%s\n",
					rep.Seq, rep.Nodes, rep.StaleNodes, rep.TotalWatts, len(rep.PerTarget), self)
			}
			rep.Release()
		}
	}
}

// printFinalStats summarises the run once the loop stops.
func printFinalStats(col *collector.Collector) {
	stats := col.Stats()
	fmt.Printf("collector stopping: %d round(s), %d node(s), %d route key(s), last fleet total %.2f W\n",
		stats.Rounds, len(stats.Nodes), stats.Keys, stats.TotalWatts)
	for _, n := range stats.Nodes {
		fmt.Printf("  node %-20s %-12s frames %-8d bytes %-10d reconnects %-4d decode errors %-4d dropped payloads %d\n",
			n.Addr, "("+n.Name+")", n.Frames, n.Bytes, n.Reconnects, n.DecodeErrors, n.DroppedPayloads)
	}
}

// buildLogger maps the -log-level/-log-format flags onto a slog logger
// writing to stderr (stdout stays reserved for the round summary).
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("invalid log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("invalid log-format %q (want text|json)", format)
	}
}
