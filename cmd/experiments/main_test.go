package main

import "testing"

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "bogus", "-quick"}); err == nil {
		t.Fatal("unknown experiment name should fail")
	}
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("unknown flag should fail")
	}
}

func TestRunTable1Only(t *testing.T) {
	if err := run([]string{"-run", "table1", "-quick"}); err != nil {
		t.Fatalf("table1 experiment failed: %v", err)
	}
}
