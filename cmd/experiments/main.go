// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
// recorded results).
//
// Usage:
//
//	experiments -run all -quick
//	experiments -run fig3 -csv figure3.csv
//	experiments -run table1|model|fig3|comparison|ablation
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"powerapi/internal/experiments"
	"powerapi/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		which   = fs.String("run", "all", "experiment to run: all, table1, model, fig3, comparison, ablation")
		quick   = fs.Bool("quick", false, "use the reduced experiment scale")
		csvPath = fs.String("csv", "", "write the Figure 3 time series to this CSV file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale := experiments.DefaultScale()
	if *quick {
		scale = experiments.QuickScale()
	}

	selected := strings.ToLower(*which)
	runAll := selected == "all"

	if runAll || selected == "table1" {
		if err := runTable1(scale); err != nil {
			return err
		}
	}

	var fig3 *experiments.Figure3Result
	if runAll || selected == "model" || selected == "fig3" || selected == "comparison" {
		modelRes, err := runModel(scale, runAll || selected == "model")
		if err != nil {
			return err
		}
		if runAll || selected == "fig3" || selected == "comparison" {
			res, err := runFigure3(scale, modelRes, *csvPath)
			if err != nil {
				return err
			}
			fig3 = res
		}
	}

	if runAll || selected == "comparison" {
		if err := runComparison(scale, fig3); err != nil {
			return err
		}
	}

	if runAll || selected == "ablation" {
		if err := runAblation(scale); err != nil {
			return err
		}
	}

	if !runAll {
		switch selected {
		case "table1", "model", "fig3", "comparison", "ablation":
		default:
			return fmt.Errorf("unknown experiment %q", *which)
		}
	}
	return nil
}

func runTable1(scale experiments.Scale) error {
	res, err := experiments.Table1(scale.Spec)
	if err != nil {
		return err
	}
	if err := res.Table().Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func runModel(scale experiments.Scale, printDetail bool) (*experiments.ModelResult, error) {
	fmt.Println("Running the Figure 1 calibration sweep...")
	res, err := experiments.LearnModel(scale)
	if err != nil {
		return nil, err
	}
	fmt.Println()
	fmt.Println("Learned power model (paper's §4 equations):")
	fmt.Println(res.Equation)
	if printDetail {
		if err := res.Table().Render(os.Stdout); err != nil {
			return nil, err
		}
		cmpTable := report.NewTable("Top-frequency coefficients vs paper",
			"Counter", "Learned (W per event/s)", "Paper", "Ratio")
		for _, c := range res.Comparisons {
			cmpTable.AddRow(c.Event,
				fmt.Sprintf("%.3g", c.LearnedWatts),
				fmt.Sprintf("%.3g", c.PaperWatts),
				fmt.Sprintf("%.2fx", c.Ratio))
		}
		if err := cmpTable.Render(os.Stdout); err != nil {
			return nil, err
		}
		fmt.Println()
	}
	return &res, nil
}

func runFigure3(scale experiments.Scale, modelRes *experiments.ModelResult, csvPath string) (*experiments.Figure3Result, error) {
	fmt.Println("Running the Figure 3 SPECjbb evaluation...")
	res, err := experiments.Figure3(scale, modelRes.Model)
	if err != nil {
		return nil, err
	}
	if err := res.Table().Render(os.Stdout); err != nil {
		return nil, err
	}
	measured := make([]float64, len(res.Points))
	estimated := make([]float64, len(res.Points))
	for i, p := range res.Points {
		measured[i] = p.Measured
		estimated[i] = p.Estimated
	}
	fmt.Println()
	fmt.Println("PowerSpy :", report.Sparkline(measured, 80))
	fmt.Println("PowerAPI :", report.Sparkline(estimated, 80))
	fmt.Println()
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return nil, fmt.Errorf("create %s: %w", csvPath, err)
		}
		defer f.Close()
		if err := report.WriteTimeSeriesCSV(f, res.Points); err != nil {
			return nil, err
		}
		fmt.Printf("Figure 3 series written to %s\n\n", csvPath)
	}
	return &res, nil
}

func runComparison(scale experiments.Scale, fig3 *experiments.Figure3Result) error {
	fmt.Println("Running the Section 4 comparison...")
	res, err := experiments.Comparison(scale, fig3)
	if err != nil {
		return err
	}
	if err := res.Table().Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func runAblation(scale experiments.Scale) error {
	fmt.Println("Running the counter-selection ablation...")
	res, err := experiments.Ablation(scale)
	if err != nil {
		return err
	}
	if err := res.Table().Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}
