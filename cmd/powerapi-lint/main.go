// Command powerapi-lint runs the repo's invariant analyzers — leasecheck,
// hotpath, atomichygiene, locklint — over the module. It works in two modes:
//
// Standalone, whole-module (preferred: the Finish hooks see every package, so
// cross-package lock cycles and atomic/plain mixes cannot hide):
//
//	powerapi-lint ./...
//
// As a go vet tool, speaking vet's package-at-a-time driver protocol
// (-V=full / -flags / vet.cfg), with facts exchanged through vetx files:
//
//	go vet -vettool=$(which powerapi-lint) ./...
//
// Individual analyzers toggle off with -leasecheck=false etc. Exit status is
// 2 when diagnostics were reported, 1 on operational errors, 0 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"powerapi/internal/analysis/atomichygiene"
	"powerapi/internal/analysis/framework"
	"powerapi/internal/analysis/hotpath"
	"powerapi/internal/analysis/leasecheck"
	"powerapi/internal/analysis/load"
	"powerapi/internal/analysis/locklint"
)

// version participates in go vet's action cache key: bump it when analyzer
// behavior changes so stale cached results are not replayed.
const version = "v1.0.0"

var all = []*framework.Analyzer{
	leasecheck.Analyzer,
	hotpath.Analyzer,
	atomichygiene.Analyzer,
	locklint.Analyzer,
}

func main() {
	progName := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// go vet's probes come first and take no other flags.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full") {
		fmt.Printf("%s version %s\n", progName, version)
		return
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		printFlagDefs()
		return
	}

	fs := flag.NewFlagSet(progName, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: %s [flags] [package pattern ...]\n\nAnalyzers:\n", progName)
		for _, a := range all {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" analyzer")
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(1)
	}
	var analyzers []*framework.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	rest := fs.Args()

	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(vetMode(rest[0], analyzers))
	}
	os.Exit(standalone(rest, analyzers))
}

// printFlagDefs answers vet's -flags probe: the JSON flag inventory the
// driver forwards user-provided flags through.
func printFlagDefs() {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	defs := make([]flagDef, 0, len(all))
	for _, a := range all {
		defs = append(defs, flagDef{Name: a.Name, Bool: true, Usage: "run the " + a.Name + " analyzer"})
	}
	out, _ := json.Marshal(defs)
	fmt.Println(string(out))
}

// standalone is the whole-module mode: load every matched package, run the
// analyzers in dependency order, fire the Finish hooks.
func standalone(patterns []string, analyzers []*framework.Analyzer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := load.GoList("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	findings, err := load.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// vetConfig is vet's per-package work unit, as the driver writes it.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetImporter resolves imports for one vet unit: source import paths go
// through ImportMap (vendoring), then to the export data files the driver
// listed in PackageFile.
type vetImporter struct {
	cfg *vetConfig
	gc  types.ImporterFrom
}

func newVetImporter(fset *token.FileSet, cfg *vetConfig) *vetImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	return &vetImporter{cfg: cfg, gc: importer.ForCompiler(fset, compiler, lookup).(types.ImporterFrom)}
}

func (v *vetImporter) Import(path string) (*types.Package, error) {
	return v.ImportFrom(path, "", 0)
}

func (v *vetImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := v.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return v.gc.ImportFrom(path, dir, mode)
}

// vetMode analyzes one package per vet's driver protocol and returns the
// process exit code.
func vetMode(cfgPath string, analyzers []*framework.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "%s: parsing vet config: %v\n", cfgPath, err)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(&cfg, framework.NewStore())
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	conf := types.Config{
		Importer: newVetImporter(fset, &cfg),
		Sizes:    types.SizesFor("gc", envOr("GOARCH", runtime.GOARCH)),
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(&cfg, framework.NewStore())
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// Facts of the dependencies, written by their own vet invocations.
	store := framework.NewStore()
	for path, vetxFile := range cfg.PackageVetx {
		payload, err := os.ReadFile(vetxFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reading facts of %s: %v\n", path, err)
			return 1
		}
		if err := store.DecodeAll(payload); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	allows := make(framework.AllowSet)
	ownFiles := make(map[string]bool, len(files))
	for _, f := range files {
		allows.CollectAllows(fset, f)
		ownFiles[fset.Position(f.Pos()).Filename] = true
	}
	isModulePkg := func(path string) bool {
		return cfg.ModulePath != "" &&
			(path == cfg.ModulePath || strings.HasPrefix(path, cfg.ModulePath+"/"))
	}

	var findings []load.Finding
	report := func(name string) func(framework.Diagnostic) {
		return func(d framework.Diagnostic) {
			p := fset.Position(d.Pos)
			// Only positions in this unit's files are reportable here; facts
			// carry positions from other vet processes, which do not resolve
			// in this FileSet.
			if !ownFiles[p.Filename] || strings.HasSuffix(p.Filename, "_test.go") {
				return
			}
			if allows.Allowed(fset, name, d.Pos) {
				return
			}
			findings = append(findings, load.Finding{Analyzer: name, Pos: p, Message: d.Message})
		}
	}
	for _, a := range analyzers {
		pass := &framework.Pass{
			Analyzer:    a,
			Fset:        fset,
			Files:       files,
			Pkg:         tpkg,
			TypesInfo:   info,
			Deferred:    false,
			IsModulePkg: isModulePkg,
			Report:      report(a.Name),
		}
		pass.SetStore(store)
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "%s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
	}

	if code := writeVetx(&cfg, store); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Pos, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// writeVetx persists the unit's fact store where the driver asked for it.
// The driver treats a missing output as a tool failure, so this runs even
// when type-checking failed.
func writeVetx(cfg *vetConfig, store *framework.Store) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	payload, err := store.EncodeAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}
