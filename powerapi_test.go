package powerapi

import (
	"path/filepath"
	"testing"
	"time"
)

func TestSpecCatalogExposesTestbed(t *testing.T) {
	catalog := SpecCatalog()
	if len(catalog) < 4 {
		t.Fatalf("catalog has %d entries, want at least 4", len(catalog))
	}
	spec, err := LookupSpec("i3-2120")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Model != "2120" || spec.LogicalCPUs() != 4 {
		t.Fatalf("unexpected testbed spec %+v", spec)
	}
	if IntelCorei3_2120().Model != "2120" {
		t.Fatal("IntelCorei3_2120 mismatch")
	}
	if IntelCore2DuoE6600().HasSMT {
		t.Fatal("Core 2 Duo should not have SMT")
	}
	if !IntelXeonE5_2650().HasTurbo {
		t.Fatal("Xeon should have TurboBoost")
	}
	if AMDOpteron6172().Vendor != "AMD" {
		t.Fatal("Opteron vendor mismatch")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	// A compact version of the quickstart example: build a machine, monitor
	// a process with the paper's reference model, check power flows.
	cfg := DefaultMachineConfig()
	cfg.Governor = GovernorPerformance
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := MemoryStress(0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Spawn(gen)
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := NewMonitor(m, PaperReferenceModel())
	if err != nil {
		t.Fatal(err)
	}
	defer monitor.Shutdown()
	if err := monitor.Attach(p.PID()); err != nil {
		t.Fatal(err)
	}
	reports, err := monitor.RunMonitored(2*time.Second, 500*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("got %d reports, want 4", len(reports))
	}
	for _, r := range reports {
		if r.PerPID[p.PID()] <= 0 {
			t.Fatalf("no power attributed to the busy process at %v", r.Timestamp)
		}
		if r.TotalWatts <= r.IdleWatts {
			t.Fatalf("total %v should exceed idle %v under load", r.TotalWatts, r.IdleWatts)
		}
	}
}

func TestFacadeCalibrationAndPersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is too slow for -short")
	}
	cfg := DefaultMachineConfig()
	spec := IntelCorei3_2120()
	spec.MinFrequencyMHz = 2700
	spec.FrequencyStepMHz = 600
	cfg.Spec = spec
	powerModel, calReport, err := Calibrate(cfg, QuickCalibrationOptions())
	if err != nil {
		t.Fatal(err)
	}
	if calReport.TotalSamples == 0 {
		t.Fatal("calibration produced no samples")
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := powerModel.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.IdleWatts != powerModel.IdleWatts {
		t.Fatal("persistence round trip lost the idle constant")
	}
}

func TestFacadeWorkloadsAndMeters(t *testing.T) {
	m, err := NewMachine(DefaultMachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	spy, err := NewPowerSpy(m, DefaultPowerSpyConfig())
	if err != nil {
		t.Fatal(err)
	}
	jbb, err := SPECjbb(DefaultSPECjbbConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(jbb); err != nil {
		t.Fatal(err)
	}
	mixed, err := MixedStress(0.5, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(mixed); err != nil {
		t.Fatal(err)
	}
	cpuGen, err := CPUStress(0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(cpuGen); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if spy.Sample().Watts <= 0 {
		t.Fatal("power meter reported non-positive power")
	}
}

func TestFacadeSchedulers(t *testing.T) {
	if NewPackingScheduler().Name() != "packing" {
		t.Fatal("unexpected packing scheduler")
	}
	if NewLoadBalancingScheduler().Name() != "load-balance" {
		t.Fatal("unexpected load balancer")
	}
	cfg := DefaultMachineConfig()
	cfg.Scheduler = NewPackingScheduler()
	if _, err := NewMachine(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentScales(t *testing.T) {
	if err := DefaultExperimentScale().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := QuickExperimentScale().Validate(); err != nil {
		t.Fatal(err)
	}
}
