module powerapi

go 1.24
