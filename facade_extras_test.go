package powerapi

import (
	"strings"
	"testing"
	"time"
)

func TestFacadeReportersAndEnergyAccounting(t *testing.T) {
	cfg := DefaultMachineConfig()
	cfg.Governor = GovernorPerformance
	host, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heavy, _ := MemoryStress(0.9, 0)
	light, _ := CPUStress(0.2, 0)
	p1, _ := host.Spawn(heavy)
	p2, _ := host.Spawn(light)

	var csvBuf, jsonBuf strings.Builder
	csvOpt, err := WithCSVReporter(&csvBuf, host)
	if err != nil {
		t.Fatal(err)
	}
	jsonOpt, err := WithJSONReporter(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	acc, energyOpt := WithEnergyAccounting()

	monitor, err := NewMonitor(host, PaperReferenceModel(),
		WithProcessNameGrouping(host), csvOpt, jsonOpt, energyOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := monitor.Attach(p1.PID(), p2.PID()); err != nil {
		t.Fatal(err)
	}
	reports, err := monitor.RunMonitored(4*time.Second, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	monitor.Shutdown()

	if len(reports) != 4 {
		t.Fatalf("got %d reports, want 4", len(reports))
	}
	last := reports[len(reports)-1]
	if len(last.PerGroup) == 0 {
		t.Fatal("grouping dimension missing from reports")
	}
	if !strings.Contains(csvBuf.String(), "seconds,pid,group,watts,total_watts") {
		t.Fatal("csv reporter produced no header")
	}
	if strings.Count(jsonBuf.String(), "\n") != 4 {
		t.Fatalf("json reporter wrote %d lines, want 4", strings.Count(jsonBuf.String(), "\n"))
	}
	energy := acc.EnergyByPID()
	if energy[p1.PID()] <= energy[p2.PID()] {
		t.Fatalf("heavy process energy (%.1f J) should exceed light process (%.1f J)",
			energy[p1.PID()], energy[p2.PID()])
	}
	if _, err := WithCSVReporter(nil, host); err == nil {
		t.Fatal("nil writer should fail")
	}
	if _, err := WithJSONReporter(nil); err == nil {
		t.Fatal("nil writer should fail")
	}
}

func TestFacadeBlendedSourceMode(t *testing.T) {
	mode, err := ParseSourceMode("blended")
	if err != nil || mode != SourceBlended {
		t.Fatalf("ParseSourceMode(blended) = %v, %v", mode, err)
	}
	if _, err := ParseSourceMode("powertop"); err == nil {
		t.Fatal("unknown source mode should fail")
	}

	cfg := DefaultMachineConfig()
	cfg.Governor = GovernorPerformance
	cfg.PowerNoiseStdDevWatts = 0
	host, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := CPUStress(0.8, 0)
	p, _ := host.Spawn(gen)
	monitor, err := NewMonitor(host, PaperReferenceModel(),
		WithSources(SourceBlended), WithCollectTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer monitor.Shutdown()
	if err := monitor.Attach(p.PID()); err != nil {
		t.Fatal(err)
	}
	reports, err := monitor.RunMonitored(2*time.Second, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := reports[len(reports)-1]
	if last.SourceMode != "blended" {
		t.Fatalf("SourceMode = %q, want blended", last.SourceMode)
	}
	if last.MeasuredWatts <= 0 {
		t.Fatalf("MeasuredWatts = %v, want > 0", last.MeasuredWatts)
	}
	var sum float64
	for _, watts := range last.PerPID {
		sum += watts
	}
	if diff := sum - last.MeasuredWatts; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("per-PID sum %.9f != measured RAPL power %.9f", sum, last.MeasuredWatts)
	}
}

func TestFacadeAdvisorFindsEnergyLeaks(t *testing.T) {
	cfg := DefaultMachineConfig()
	cfg.Governor = GovernorPerformance
	host, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hog, _ := MemoryStress(1.0, 0)
	idle, _ := CPUStress(0.05, 0)
	p1, _ := host.Spawn(hog)
	p2, _ := host.Spawn(idle)

	monitor, err := NewMonitor(host, PaperReferenceModel())
	if err != nil {
		t.Fatal(err)
	}
	defer monitor.Shutdown()
	if err := monitor.Attach(p1.PID(), p2.PID()); err != nil {
		t.Fatal(err)
	}
	adv, err := NewAdvisor()
	if err != nil {
		t.Fatal(err)
	}
	_, err = monitor.RunMonitored(5*time.Second, time.Second, func(r MonitorReport) {
		if err := adv.ObserveReport(r, time.Second); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ranking := adv.Ranking()
	if len(ranking) != 2 {
		t.Fatalf("ranking has %d entries, want 2", len(ranking))
	}
	if ranking[0].PID != p1.PID() {
		t.Fatalf("largest consumer should be the memory hog, got pid %d", ranking[0].PID)
	}
	findings := adv.Findings()
	var topConsumer bool
	for _, f := range findings {
		if f.PID == p1.PID() && f.Rule == "top-consumer" {
			topConsumer = true
		}
	}
	if !topConsumer {
		t.Fatalf("memory hog not identified as top consumer: %+v", findings)
	}
}
