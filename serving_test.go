package powerapi

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestFacadeSubscribeQueryAndServe drives the serving surface end to end
// through the public facade: a runtime subscription, the retained-history
// query API, the advisor feed and the HTTP layer mounted on a live monitor.
func TestFacadeSubscribeQueryAndServe(t *testing.T) {
	cfg := DefaultMachineConfig()
	cfg.Governor = GovernorPerformance
	host, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	busy, _ := CPUStress(0.9, 0)
	lazy, _ := CPUStress(0.2, 0)
	p1, _ := host.Spawn(busy)
	p2, _ := host.Spawn(lazy)

	adv, err := NewAdvisor()
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := NewMonitor(host, PaperReferenceModel(),
		WithHistory(64), WithAdvisorFeed(adv, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if err := monitor.Attach(p1.PID(), p2.PID()); err != nil {
		t.Fatal(err)
	}

	sub, err := monitor.Subscribe(SubscribeOptions{Name: "test", Policy: Block, Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	received := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.C() {
			received++
		}
	}()

	srv, err := NewAPIServer(monitor)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Read the advisor concurrently with the feed, the live-dashboard
	// pattern the serving layer encourages (exercised under -race in CI).
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for i := 0; i < 50; i++ {
			_ = adv.Findings()
			_ = adv.MeanWatts(p1.PID())
			time.Sleep(time.Millisecond)
		}
	}()

	const rounds = 5
	if _, err := monitor.RunMonitored(rounds*time.Second, time.Second, nil); err != nil {
		t.Fatal(err)
	}
	<-pollDone
	monitor.Shutdown()
	<-done

	if received != rounds {
		t.Fatalf("Block subscription received %d rounds, want %d", received, rounds)
	}
	if sub.Delivered() != rounds || sub.Dropped() != 0 {
		t.Fatalf("counters delivered=%d dropped=%d", sub.Delivered(), sub.Dropped())
	}

	stats, err := monitor.Query(QueryOptions{Kinds: []TargetKind{TargetProcess}})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("Query returned %d process rows, want 2", len(stats))
	}
	for _, st := range stats {
		if st.Samples != rounds {
			t.Fatalf("target %v retained %d samples, want %d", st.Target, st.Samples, rounds)
		}
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "powerapi_target_watts") {
		t.Fatalf("/metrics body missing target gauges:\n%s", body)
	}

	parsed, err := ParseTarget("cgroup:web/api")
	if err != nil || parsed != CgroupTarget("web/api") {
		t.Fatalf("ParseTarget = %v, %v", parsed, err)
	}
}
