package powerapi_test

import (
	"math"
	"testing"
	"time"

	"powerapi"
)

// spawnStress spawns CPU workloads at the given levels and returns the PIDs.
func spawnStress(t *testing.T, m *powerapi.Machine, levels ...float64) []int {
	t.Helper()
	pids := make([]int, 0, len(levels))
	for _, level := range levels {
		gen, err := powerapi.CPUStress(level, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.Spawn(gen)
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, p.PID())
	}
	return pids
}

func waitFrames(t *testing.T, src *powerapi.DelegatedSource, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for src.FrameCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for frame %d of %s", n, src.VMName())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestVMBridgeFacadeEndToEnd exercises the exported host↔guest delegation
// surface: WithVMs + NewVMPublisher on the host, NewDelegatedSource +
// WithVMBridge on two guests over the loopback bridge, per-round conservation
// of the delegated figure, and both staleness policies after link loss.
func TestVMBridgeFacadeEndToEnd(t *testing.T) {
	model := powerapi.PaperReferenceModel()
	host, err := powerapi.NewMachine(powerapi.DefaultMachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	pids := spawnStress(t, host, 1.0, 0.6, 0.4, 0.2)
	hostMon, err := powerapi.NewMonitor(host, model,
		powerapi.WithShards(4),
		powerapi.WithSources(powerapi.SourceBlended),
		powerapi.WithVMs(
			powerapi.VMDef{Name: "vm-a", PIDs: pids[:2]},
			powerapi.VMDef{Name: "vm-b", PIDs: pids[2:]},
		))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hostMon.Shutdown)
	if err := hostMon.AttachAllRunnable(); err != nil {
		t.Fatal(err)
	}
	if got := hostMon.VMs(); len(got) != 2 || got[0].Name != "vm-a" {
		t.Fatalf("VMs() = %v", got)
	}

	bridge := powerapi.NewLoopbackBridge()
	publisher, err := powerapi.NewVMPublisher(hostMon, bridge)
	if err != nil {
		t.Fatal(err)
	}

	type guestEnd struct {
		vm  string
		m   *powerapi.Machine
		mon *powerapi.Monitor
		src *powerapi.DelegatedSource
	}
	newGuest := func(vm string, levels []float64, opts ...powerapi.DelegatedSourceOption) *guestEnd {
		gm, err := powerapi.NewMachine(powerapi.DefaultMachineConfig())
		if err != nil {
			t.Fatal(err)
		}
		spawnStress(t, gm, levels...)
		src, err := powerapi.NewDelegatedSource(bridge.NewReceiver(), vm, opts...)
		if err != nil {
			t.Fatal(err)
		}
		mon, err := powerapi.NewMonitor(gm, model, powerapi.WithVMBridge(src))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(mon.Shutdown)
		if mon.SourceMode() != powerapi.SourceDelegated {
			t.Fatalf("guest mode %v", mon.SourceMode())
		}
		if err := mon.AttachAllRunnable(); err != nil {
			t.Fatal(err)
		}
		return &guestEnd{vm: vm, m: gm, mon: mon, src: src}
	}
	guestA := newGuest("vm-a", []float64{0.8, 0.3})
	guestB := newGuest("vm-b", []float64{0.7, 0.5}, powerapi.WithStalePolicy(powerapi.StaleHold))

	collect := func(g *guestEnd) powerapi.MonitorReport {
		t.Helper()
		if _, err := g.m.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		r, err := g.mon.Collect()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	sum := func(r powerapi.MonitorReport) float64 {
		var s float64
		for _, watts := range r.PerPID {
			s += watts
		}
		return s
	}

	var lastHost powerapi.MonitorReport
	for round := 1; round <= 3; round++ {
		if _, err := host.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		lastHost, err = hostMon.Collect()
		if err != nil {
			t.Fatal(err)
		}
		vmSum := lastHost.PerVM["vm-a"] + lastHost.PerVM["vm-b"]
		if math.Abs(vmSum-lastHost.ActiveWatts) > 1e-6 {
			t.Fatalf("round %d: host VM rows %.9f != active %.9f", round, vmSum, lastHost.ActiveWatts)
		}
		for _, g := range []*guestEnd{guestA, guestB} {
			waitFrames(t, g.src, uint64(round))
			r := collect(g)
			if delta := math.Abs(sum(r) - lastHost.PerVM[g.vm]); delta > 1e-6 {
				t.Fatalf("round %d %s: guest sum off by %.2e", round, g.vm, delta)
			}
		}
	}

	// Link loss: after the grace round, vm-a (zero) collapses, vm-b (hold)
	// keeps the last delegated figure.
	if err := publisher.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !guestA.src.LinkDown() || !guestB.src.LinkDown() {
		if time.Now().After(deadline) {
			t.Fatal("guests never observed link loss")
		}
		time.Sleep(time.Millisecond)
	}
	collect(guestA) // grace round
	collect(guestB)
	staleA, staleB := collect(guestA), collect(guestB)
	if got := sum(staleA); got != 0 {
		t.Fatalf("zero policy after link loss: got %.9f W", got)
	}
	if got := sum(staleB); math.Abs(got-lastHost.PerVM["vm-b"]) > 1e-6 {
		t.Fatalf("hold policy after link loss: got %.9f want %.9f", got, lastHost.PerVM["vm-b"])
	}
}
