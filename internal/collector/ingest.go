package collector

import (
	"bufio"
	"encoding/json"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"powerapi/internal/core"
	"powerapi/internal/obs"
	"powerapi/internal/target"
	"powerapi/internal/vmbridge"
)

// Ingest is the gather half of the collector: per-node reader goroutines that
// do nothing but blocking socket reads, per-node drop-oldest payload rings
// with pooled buffers, and a bounded worker pool that decodes payloads into
// each node's retained contribution. The split keeps the expensive work (the
// decode) on a fixed number of goroutines however many nodes are connected,
// and the ring keeps one slow decode from backing a socket up: a node that
// outpaces its drainage sheds whole payloads, oldest first — the same
// load-shedding contract the VM bridge transports make.

// payloadRingSize is the per-node ring depth. A node publishes one payload
// per daemon round, so a backlog deeper than a few rounds means the workers
// are saturated and older rounds are worthless anyway.
const payloadRingSize = 4

// maxReconnectBackoff caps the exponential climb of a node link's redial
// pause.
const maxReconnectBackoff = 5 * time.Second

// bufPool recycles payload buffers across all node links. Buffers travel as
// *[]byte end to end — pool to ring to worker and back — so returning one
// re-uses its box instead of allocating a fresh one per payload (the classic
// sync.Pool re-boxing leak, which would cost one heap allocation per node per
// round and break the allocation-flat ingest claim).
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { *b = (*b)[:0]; bufPool.Put(b) }

// payloadRing is one node's pending-payload queue: push never blocks, evicting
// the oldest payload (whose buffer the pusher recycles) when full.
type payloadRing struct {
	mu      sync.Mutex
	items   [payloadRingSize]*[]byte
	head, n int
	dropped atomic.Uint64
}

// push enqueues a payload, returning the evicted oldest one (nil if none).
//
//powerapi:hotpath
func (r *payloadRing) push(p *[]byte) (evicted *[]byte) {
	r.mu.Lock()
	if r.n == payloadRingSize {
		evicted = r.items[r.head]
		r.items[r.head] = nil
		r.head = (r.head + 1) % payloadRingSize
		r.n--
		r.dropped.Add(1)
	}
	r.items[(r.head+r.n)%payloadRingSize] = p
	r.n++
	r.mu.Unlock()
	return evicted
}

// pop dequeues the oldest pending payload.
//
//powerapi:hotpath
func (r *payloadRing) pop() (*[]byte, bool) {
	r.mu.Lock()
	if r.n == 0 {
		r.mu.Unlock()
		return nil, false
	}
	p := r.items[r.head]
	r.items[r.head] = nil
	r.head = (r.head + 1) % payloadRingSize
	r.n--
	r.mu.Unlock()
	return p, true
}

// nodeConn is one gathered daemon link: the dial/read goroutine's state, the
// ingest queue, and the node's retained contribution the rollup sweeps.
type nodeConn struct {
	addr string

	// Link state, guarded by connMu so retire can interrupt a blocked read.
	connMu  sync.Mutex
	conn    net.Conn
	retired bool

	// Ingest queue.
	ring   payloadRing
	queued atomic.Bool

	// Decode scratch, guarded by drainMu (one worker drains a node at a
	// time). building ping-pongs with the retained slices at commit, so the
	// steady state allocates neither. frameCB/rowCB are the decode callbacks,
	// built once on the node's first binary payload and reused for every
	// later message so the per-message ingest path stays allocation-free.
	drainMu  sync.Mutex
	building rowBuf
	pending  pendingFrame
	frameCB  func(h vmbridge.FrameHeader) bool
	rowCB    func(key []byte, watts float64)

	// Retained contribution, guarded by mu; the rollup reads it.
	mu       sync.Mutex
	name     string
	source   string
	lastSeq  uint64
	lastTS   time.Duration
	lastWall int64 // tracer-monotonic commit stamp; 0 = never
	total    float64
	slots    []int32
	watts    []float64

	connected  atomic.Bool
	frames     atomic.Uint64
	bytes      atomic.Uint64
	decodeErrs atomic.Uint64
	reconnects atomic.Uint64
	staleSkips atomic.Uint64
}

type rowBuf struct {
	slots []int32
	watts []float64
}

// pendingFrame is the header of the frame currently being decoded; its byte
// fields alias the payload under decode.
type pendingFrame struct {
	valid  bool
	vm     []byte
	source []byte
	seq    uint64
	ts     time.Duration
	watts  float64
}

func (n *nodeConn) retire() {
	n.connMu.Lock()
	n.retired = true
	if n.conn != nil {
		n.conn.Close()
	}
	n.connMu.Unlock()
}

func (n *nodeConn) isRetired() bool {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	return n.retired
}

// setConn installs (or clears) the live connection, closing it instead if the
// node was retired meanwhile.
func (n *nodeConn) setConn(conn net.Conn) bool {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if n.retired && conn != nil {
		conn.Close()
		return false
	}
	n.conn = conn
	return true
}

// nodeLoop owns one link: dial with capped exponential backoff and jitter,
// read until link loss, reset and redial — forever, until the node is retired
// or the collector closes.
func (c *Collector) nodeLoop(n *nodeConn) {
	defer c.wg.Done()
	backoff := c.cfg.DialBackoff
	for attempt := 1; ; attempt++ {
		if c.closed() || n.isRetired() {
			return
		}
		conn, err := net.Dial("tcp", n.addr)
		if err == nil && c.cfg.Codec == vmbridge.CodecBinary {
			if herr := vmbridge.RequestBinary(conn); herr != nil {
				conn.Close()
				err = herr
			}
		}
		if err != nil {
			c.log.Warn("collector: node dial failed, backing off",
				"addr", n.addr, "attempt", attempt, "backoff", backoff, "err", err)
			select {
			case <-c.done:
				return
			case <-time.After(jitter(backoff)):
			}
			if backoff *= 2; backoff > maxReconnectBackoff {
				backoff = maxReconnectBackoff
			}
			continue
		}
		if !n.setConn(conn) {
			return
		}
		if attempt > 1 {
			c.log.Info("collector: node connected after retries", "addr", n.addr, "attempt", attempt)
		}
		backoff, attempt = c.cfg.DialBackoff, 0
		n.connected.Store(true)
		c.readConn(n, conn)
		n.connected.Store(false)
		n.setConn(nil)
		conn.Close()
		n.reconnects.Add(1)
		// The daemon restarts its sequence from 1 on reconnect; forget the
		// old numbering so the fresh stream is accepted.
		n.mu.Lock()
		n.lastSeq = 0
		n.mu.Unlock()
	}
}

// jitter spreads a backoff pause uniformly over ±25% of its nominal value.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	spread := d / 2
	return d - spread/2 + time.Duration(rand.Int63n(int64(spread)+1))
}

// readConn pumps one live connection's payloads into the node's ring until
// link loss. On the binary codec a payload is one length-prefixed message; on
// JSON-lines it is one line. Buffers come from the shared pool and return to
// it when evicted or drained.
func (c *Collector) readConn(n *nodeConn, conn net.Conn) {
	if c.cfg.Codec == vmbridge.CodecBinary {
		br := bufio.NewReaderSize(conn, 64*1024)
		for {
			pb := getBuf()
			payload, err := vmbridge.ReadBinaryMessage(br, *pb)
			if err != nil {
				putBuf(pb)
				return
			}
			*pb = payload // ReadBinaryMessage may have grown the backing array
			n.bytes.Add(uint64(len(payload)) + vmbridge.BinaryMessageHeader)
			c.enqueue(n, pb)
		}
	}
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 4096), 1<<20)
	for scanner.Scan() {
		line := scanner.Bytes()
		n.bytes.Add(uint64(len(line)) + 1)
		pb := getBuf()
		*pb = append(*pb, line...)
		c.enqueue(n, pb)
	}
}

// enqueue hands one payload to the worker pool, shedding the node's oldest
// pending payload if its ring is full.
//
//powerapi:hotpath
func (c *Collector) enqueue(n *nodeConn, payload *[]byte) {
	if evicted := n.ring.push(payload); evicted != nil {
		putBuf(evicted)
	}
	if n.queued.CompareAndSwap(false, true) {
		select {
		case c.notify <- n:
		default:
			// Queue saturated (cannot happen while nodes <= cap): unmark so
			// the next payload retries rather than stranding the ring.
			n.queued.Store(false)
		}
	}
}

// worker is one ingest worker: it drains whole node rings, decoding each
// payload into the node's retained contribution.
func (c *Collector) worker() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case n := <-c.notify:
			n.queued.Store(false)
			n.drainMu.Lock()
			for {
				payload, ok := n.ring.pop()
				if !ok {
					break
				}
				c.ingest(n, *payload)
				putBuf(payload)
			}
			n.drainMu.Unlock()
		}
	}
}

// ingest decodes one payload and commits its frames. Caller holds n.drainMu.
// The span is recorded against timestamp 0 — ingest happens between fleet
// rounds, so it feeds the stage histogram without joining a round trace.
func (c *Collector) ingest(n *nodeConn, payload []byte) {
	start := c.tracer.Now()
	if c.cfg.Codec == vmbridge.CodecBinary {
		c.ingestBinary(n, payload)
	} else {
		c.ingestJSON(n, payload)
	}
	c.tracer.Record(0, obs.StageIngest, 0, start, c.tracer.Now())
}

// ingestBinary folds a binary batch allocation-free: row keys resolve to
// fleet-global slots through the byte-keyed lookup, rows append into the
// node's reusable building buffers, and commit swaps them into place.
//
//powerapi:hotpath
func (c *Collector) ingestBinary(n *nodeConn, payload []byte) {
	n.pending.valid = false
	n.building.reset()
	if n.frameCB == nil {
		//powerapi:allow hotpath closures built once per node on first payload, reused for every later message
		n.frameCB = func(h vmbridge.FrameHeader) bool {
			c.commit(n) // frame boundary: land the previous one
			n.pending = pendingFrame{valid: true, vm: h.VM, source: h.SourceMode, seq: h.Seq, ts: h.Timestamp, watts: h.Watts}
			return true
		}
		//powerapi:allow hotpath closures built once per node on first payload, reused for every later message
		n.rowCB = func(key []byte, watts float64) {
			n.building.slots = append(n.building.slots, c.keys.slotBytes(key))
			n.building.watts = append(n.building.watts, watts)
		}
	}
	err := vmbridge.DecodeBinaryBatch(payload, n.frameCB, n.rowCB)
	if err != nil {
		n.pending.valid = false
		n.building.reset()
		n.decodeErrs.Add(1)
		return
	}
	c.commit(n)
}

// ingestJSON folds one JSON-lines frame — the compatibility path, which pays
// per-frame allocation the way any JSON decode does.
func (c *Collector) ingestJSON(n *nodeConn, payload []byte) {
	var frame vmbridge.VMPowerFrame
	if err := json.Unmarshal(payload, &frame); err != nil {
		n.decodeErrs.Add(1)
		return
	}
	n.building.reset()
	for _, row := range frame.Rows {
		n.building.slots = append(n.building.slots, c.keys.slot(row.Key))
		n.building.watts = append(n.building.watts, row.Watts)
	}
	n.pending = pendingFrame{valid: true, vm: []byte(frame.VM), source: []byte(frame.SourceMode), seq: frame.Seq, ts: frame.Timestamp, watts: frame.Watts}
	c.commit(n)
}

func (b *rowBuf) reset() {
	b.slots = b.slots[:0]
	b.watts = b.watts[:0]
}

// commit lands the pending frame as the node's retained contribution, unless
// its sequence number is stale (a replay or reorder). The building buffers
// swap with the retained ones, so both ping-pong without reallocating.
//
//powerapi:hotpath
func (c *Collector) commit(n *nodeConn) {
	if !n.pending.valid {
		return
	}
	n.pending.valid = false
	n.mu.Lock()
	if n.pending.seq <= n.lastSeq {
		n.mu.Unlock()
		n.building.reset()
		return
	}
	n.lastSeq = n.pending.seq
	if n.name != string(n.pending.vm) { // comparison converts without allocating
		//powerapi:allow hotpath name changes only on the node's first frame or a rename
		n.name = string(n.pending.vm)
	}
	if n.source != string(n.pending.source) {
		//powerapi:allow hotpath source mode changes only on the node's first frame or a reconfigure
		n.source = string(n.pending.source)
	}
	n.lastTS = n.pending.ts
	n.total = n.pending.watts
	n.lastWall = c.tracer.Now()
	n.slots, n.building.slots = n.building.slots, n.slots
	n.watts, n.building.watts = n.building.watts, n.watts
	n.mu.Unlock()
	n.building.reset()
	n.frames.Add(1)
}

// keyTable is the fleet-global route-key interner: string key ↔ dense slot,
// with a parsed target per slot for history recording. Reads take the shared
// lock and allocate nothing; only a never-seen key takes the exclusive lock.
type keyTable struct {
	mu      sync.RWMutex
	ks      core.KeySlots
	targets []target.Target
}

//powerapi:hotpath
func (t *keyTable) slotBytes(key []byte) int32 {
	t.mu.RLock()
	s, ok := t.ks.LookupBytes(key)
	t.mu.RUnlock()
	if ok {
		return s
	}
	//powerapi:allow hotpath miss path: a never-seen key interns once, every later round hits the byte-keyed lookup
	return t.assign(string(key))
}

//powerapi:hotpath
func (t *keyTable) slot(key string) int32 {
	t.mu.RLock()
	s, ok := t.ks.Lookup(key)
	t.mu.RUnlock()
	if ok {
		return s
	}
	//powerapi:allow hotpath miss path: a never-seen key interns once, every later round hits the lookup
	return t.assign(key)
}

func (t *keyTable) assign(key string) int32 {
	t.mu.Lock()
	s := t.ks.Assign(key)
	for len(t.targets) < t.ks.Len() {
		tg, err := target.Parse(t.ks.Key(int32(len(t.targets))))
		if err != nil {
			tg = target.Target{}
		}
		t.targets = append(t.targets, tg)
	}
	t.mu.Unlock()
	return s
}

func (t *keyTable) key(slot int32) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ks.Key(slot)
}

func (t *keyTable) target(slot int32) target.Target {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.targets[slot]
}

func (t *keyTable) len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ks.Len()
}
