package collector

import (
	"bufio"
	"encoding/json"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"powerapi/internal/core"
	"powerapi/internal/obs"
	"powerapi/internal/target"
	"powerapi/internal/vmbridge"
)

// Ingest is the gather half of the collector: per-node reader goroutines that
// do nothing but blocking socket reads, per-node drop-oldest payload rings
// with pooled buffers, and a bounded worker pool that decodes payloads into
// each node's retained contribution. The split keeps the expensive work (the
// decode) on a fixed number of goroutines however many nodes are connected,
// and the ring keeps one slow decode from backing a socket up: a node that
// outpaces its drainage sheds whole payloads, oldest first — the same
// load-shedding contract the VM bridge transports make.

// payloadRingSize is the per-node ring depth. A node publishes one payload
// per daemon round, so a backlog deeper than a few rounds means the workers
// are saturated and older rounds are worthless anyway.
const payloadRingSize = 4

// maxReconnectBackoff caps the exponential climb of a node link's redial
// pause.
const maxReconnectBackoff = 5 * time.Second

// bufPool recycles payload buffers across all node links. Buffers travel as
// *[]byte end to end — pool to ring to worker and back — so returning one
// re-uses its box instead of allocating a fresh one per payload (the classic
// sync.Pool re-boxing leak, which would cost one heap allocation per node per
// round and break the allocation-flat ingest claim).
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { *b = (*b)[:0]; bufPool.Put(b) }

// payloadItem is one queued wire payload plus the binary wire version its
// message header declared (0 on JSON-lines) — the version must travel with the
// bytes because the decode worker never sees the stripped message header.
type payloadItem struct {
	buf  *[]byte
	wire uint8
}

// payloadRing is one node's pending-payload queue: push never blocks, evicting
// the oldest payload (whose buffer the pusher recycles) when full.
type payloadRing struct {
	mu      sync.Mutex
	items   [payloadRingSize]payloadItem
	head, n int
	dropped atomic.Uint64
}

// push enqueues a payload, returning the evicted oldest buffer (nil if none).
//
//powerapi:hotpath
func (r *payloadRing) push(p payloadItem) (evicted *[]byte) {
	r.mu.Lock()
	if r.n == payloadRingSize {
		evicted = r.items[r.head].buf
		r.items[r.head] = payloadItem{}
		r.head = (r.head + 1) % payloadRingSize
		r.n--
		r.dropped.Add(1)
	}
	r.items[(r.head+r.n)%payloadRingSize] = p
	r.n++
	r.mu.Unlock()
	return evicted
}

// pop dequeues the oldest pending payload.
//
//powerapi:hotpath
func (r *payloadRing) pop() (payloadItem, bool) {
	r.mu.Lock()
	if r.n == 0 {
		r.mu.Unlock()
		return payloadItem{}, false
	}
	p := r.items[r.head]
	r.items[r.head] = payloadItem{}
	r.head = (r.head + 1) % payloadRingSize
	r.n--
	r.mu.Unlock()
	return p, true
}

// nodeConn is one gathered daemon link: the dial/read goroutine's state, the
// ingest queue, and the node's retained contribution the rollup sweeps.
type nodeConn struct {
	addr string

	// Link state, guarded by connMu so retire can interrupt a blocked read.
	connMu  sync.Mutex
	conn    net.Conn
	retired bool

	// Ingest queue.
	ring   payloadRing
	queued atomic.Bool

	// Decode scratch, guarded by drainMu (one worker drains a node at a
	// time). building ping-pongs with the retained slices at commit, so the
	// steady state allocates neither. frameCB/rowCB are the decode callbacks,
	// built once on the node's first binary payload and reused for every
	// later message so the per-message ingest path stays allocation-free.
	drainMu  sync.Mutex
	building rowBuf
	pending  pendingFrame
	frameCB  func(h vmbridge.FrameHeader) bool
	rowCB    func(key []byte, watts float64)

	// Retained contribution, guarded by mu; the rollup reads it.
	mu       sync.Mutex
	name     string
	source   string
	lastSeq  uint64
	lastTS   time.Duration
	lastWall int64 // tracer-monotonic commit stamp; 0 = never
	total    float64
	slots    []int32
	watts    []float64
	// Contract bookkeeping carried with the contribution: the sum of its
	// top-level cgroup rows (the disjoint subset whose total must not exceed
	// the node total — nested rows double-count by design) and how many rows
	// carried non-finite or negative watts.
	topWatts float64
	badRows  int
	// Provenance-derived link quality, meaningful only while lastEmit != 0
	// (a version-1 peer never stamps). Offsets are arrival−emit deltas in
	// nanoseconds across two unrelated monotonic clocks: only their movement
	// means anything. minOffset approximates the true clock offset (the
	// least-queued delivery ever seen), so lastOffset−minOffset estimates
	// ingest lag and the EWMA's drift from baseOffset estimates clock skew.
	lastEmit   time.Duration
	lastRound  uint64
	lastTrace  uint64
	seqGaps    uint64
	hasOffset  bool
	baseOffset int64
	minOffset  int64
	lastOffset int64
	ewmaOffset float64

	// Health-pass state, touched only under the collector's roundMu (one
	// health evaluation at a time); state itself is atomic for cheap reads
	// from Stats and the HTTP surface.
	state       atomic.Int32 // NodeState
	violations  atomic.Uint64
	violMask    uint32
	prevSeq     uint64
	prevSeqGaps uint64
	prevRecon   uint64
	prevTotal   float64
	v1Noted     bool

	connected  atomic.Bool
	sawV1      atomic.Bool // binary wire version 1 seen while provenance was requested
	frames     atomic.Uint64
	bytes      atomic.Uint64
	decodeErrs atomic.Uint64
	reconnects atomic.Uint64
	staleSkips atomic.Uint64
}

type rowBuf struct {
	slots    []int32
	watts    []float64
	topWatts float64
	badRows  int
}

// pendingFrame is the header of the frame currently being decoded; its byte
// fields alias the payload under decode.
type pendingFrame struct {
	valid  bool
	vm     []byte
	source []byte
	seq    uint64
	ts     time.Duration
	watts  float64
	emit   time.Duration
	round  uint64
	trace  uint64
}

func (n *nodeConn) retire() {
	n.connMu.Lock()
	n.retired = true
	if n.conn != nil {
		n.conn.Close()
	}
	n.connMu.Unlock()
}

func (n *nodeConn) isRetired() bool {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	return n.retired
}

// setConn installs (or clears) the live connection, closing it instead if the
// node was retired meanwhile.
func (n *nodeConn) setConn(conn net.Conn) bool {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if n.retired && conn != nil {
		conn.Close()
		return false
	}
	n.conn = conn
	return true
}

// nodeLoop owns one link: dial with capped exponential backoff and jitter,
// read until link loss, reset and redial — forever, until the node is retired
// or the collector closes.
func (c *Collector) nodeLoop(n *nodeConn) {
	defer c.wg.Done()
	backoff := c.cfg.DialBackoff
	for attempt := 1; ; attempt++ {
		if c.closed() || n.isRetired() {
			return
		}
		conn, err := net.Dial("tcp", n.addr)
		if err == nil && c.cfg.Codec == vmbridge.CodecBinary {
			if herr := vmbridge.RequestBinaryProvenance(conn); herr != nil {
				conn.Close()
				err = herr
			}
		}
		if err != nil {
			c.log.Warn("collector: node dial failed, backing off",
				"addr", n.addr, "attempt", attempt, "backoff", backoff, "err", err)
			select {
			case <-c.done:
				return
			case <-time.After(jitter(backoff)):
			}
			if backoff *= 2; backoff > maxReconnectBackoff {
				backoff = maxReconnectBackoff
			}
			continue
		}
		if !n.setConn(conn) {
			return
		}
		if attempt > 1 {
			c.log.Info("collector: node connected after retries", "addr", n.addr, "attempt", attempt)
		}
		backoff, attempt = c.cfg.DialBackoff, 0
		n.connected.Store(true)
		c.readConn(n, conn)
		n.connected.Store(false)
		n.setConn(nil)
		conn.Close()
		n.reconnects.Add(1)
		// The daemon restarts its sequence from 1 on reconnect; forget the
		// old numbering so the fresh stream is accepted. Its monotonic clock
		// restarted too, so the offset baseline resets with it.
		n.sawV1.Store(false)
		n.mu.Lock()
		n.lastSeq = 0
		n.lastEmit = 0
		n.hasOffset = false
		n.v1Noted = false
		n.mu.Unlock()
	}
}

// jitter spreads a backoff pause uniformly over ±25% of its nominal value.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	spread := d / 2
	return d - spread/2 + time.Duration(rand.Int63n(int64(spread)+1))
}

// readConn pumps one live connection's payloads into the node's ring until
// link loss. On the binary codec a payload is one length-prefixed message; on
// JSON-lines it is one line. Buffers come from the shared pool and return to
// it when evicted or drained.
func (c *Collector) readConn(n *nodeConn, conn net.Conn) {
	if c.cfg.Codec == vmbridge.CodecBinary {
		br := bufio.NewReaderSize(conn, 64*1024)
		for {
			pb := getBuf()
			payload, wire, err := vmbridge.ReadBinaryMessageVersion(br, *pb)
			if err != nil {
				putBuf(pb)
				return
			}
			*pb = payload // ReadBinaryMessageVersion may have grown the backing array
			n.bytes.Add(uint64(len(payload)) + vmbridge.BinaryMessageHeader)
			if wire == vmbridge.BinaryVersionBase {
				// Provenance was requested; a version-1 answer marks an old
				// peer. The health pass turns this into a codec_fallback event.
				n.sawV1.Store(true)
			}
			c.enqueue(n, payloadItem{buf: pb, wire: uint8(wire)})
		}
	}
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 4096), 1<<20)
	for scanner.Scan() {
		line := scanner.Bytes()
		n.bytes.Add(uint64(len(line)) + 1)
		pb := getBuf()
		*pb = append(*pb, line...)
		c.enqueue(n, payloadItem{buf: pb})
	}
}

// enqueue hands one payload to the worker pool, shedding the node's oldest
// pending payload if its ring is full.
//
//powerapi:hotpath
func (c *Collector) enqueue(n *nodeConn, item payloadItem) {
	if evicted := n.ring.push(item); evicted != nil {
		putBuf(evicted)
	}
	if n.queued.CompareAndSwap(false, true) {
		select {
		case c.notify <- n:
		default:
			// Queue saturated (cannot happen while nodes <= cap): unmark so
			// the next payload retries rather than stranding the ring.
			n.queued.Store(false)
		}
	}
}

// worker is one ingest worker: it drains whole node rings, decoding each
// payload into the node's retained contribution.
func (c *Collector) worker() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case n := <-c.notify:
			n.queued.Store(false)
			n.drainMu.Lock()
			for {
				item, ok := n.ring.pop()
				if !ok {
					break
				}
				c.ingest(n, *item.buf, int(item.wire))
				putBuf(item.buf)
			}
			n.drainMu.Unlock()
		}
	}
}

// ingest decodes one payload and commits its frames. Caller holds n.drainMu.
// The span is recorded against timestamp 0 — ingest happens between fleet
// rounds, so it feeds the stage histogram without joining a round trace.
func (c *Collector) ingest(n *nodeConn, payload []byte, wire int) {
	start := c.tracer.Now()
	if c.cfg.Codec == vmbridge.CodecBinary {
		c.ingestBinary(n, payload, wire)
	} else {
		c.ingestJSON(n, payload)
	}
	c.tracer.Record(0, obs.StageIngest, 0, start, c.tracer.Now())
}

// ingestBinary folds a binary batch allocation-free: row keys resolve to
// fleet-global slots through the byte-keyed lookup, rows append into the
// node's reusable building buffers (accumulating the top-level-row sum the
// conservation contract checks), and commit swaps them into place. wire is
// the message's declared version — provenance stamps land on version 2,
// version 1 frames commit with zero stamps exactly as an old peer sent them.
//
//powerapi:hotpath
func (c *Collector) ingestBinary(n *nodeConn, payload []byte, wire int) {
	n.pending.valid = false
	n.building.reset()
	if n.frameCB == nil {
		//powerapi:allow hotpath closures built once per node on first payload, reused for every later message
		n.frameCB = func(h vmbridge.FrameHeader) bool {
			c.commit(n) // frame boundary: land the previous one
			n.pending = pendingFrame{
				valid: true, vm: h.VM, source: h.SourceMode, seq: h.Seq, ts: h.Timestamp, watts: h.Watts,
				emit: h.EmitMono, round: h.Round, trace: h.TraceID,
			}
			return true
		}
		//powerapi:allow hotpath closures built once per node on first payload, reused for every later message
		n.rowCB = func(key []byte, watts float64) {
			slot, top := c.keys.slotBytesTop(key)
			n.building.slots = append(n.building.slots, slot)
			n.building.watts = append(n.building.watts, watts)
			n.building.note(top, watts)
		}
	}
	err := vmbridge.DecodeBinaryBatchVersion(payload, wire, n.frameCB, n.rowCB)
	if err != nil {
		n.pending.valid = false
		n.building.reset()
		n.decodeErrs.Add(1)
		return
	}
	c.commit(n)
}

// ingestJSON folds one JSON-lines frame — the compatibility path, which pays
// per-frame allocation the way any JSON decode does. Provenance fields decode
// when the peer stamps them and stay zero otherwise (an old daemon's lines
// simply lack the keys).
func (c *Collector) ingestJSON(n *nodeConn, payload []byte) {
	var frame vmbridge.VMPowerFrame
	if err := json.Unmarshal(payload, &frame); err != nil {
		n.decodeErrs.Add(1)
		return
	}
	n.building.reset()
	for _, row := range frame.Rows {
		slot, top := c.keys.slotTop(row.Key)
		n.building.slots = append(n.building.slots, slot)
		n.building.watts = append(n.building.watts, row.Watts)
		n.building.note(top, row.Watts)
	}
	n.pending = pendingFrame{
		valid: true, vm: []byte(frame.VM), source: []byte(frame.SourceMode), seq: frame.Seq, ts: frame.Timestamp, watts: frame.Watts,
		emit: frame.EmitMono, round: frame.Round, trace: frame.TraceID,
	}
	c.commit(n)
}

func (b *rowBuf) reset() {
	b.slots = b.slots[:0]
	b.watts = b.watts[:0]
	b.topWatts = 0
	b.badRows = 0
}

// note folds one row into the contract accumulators: the top-level sum the
// conservation check compares against the node total, and the bad-row count
// (NaN, negative or absurd watts — `w >= 0` is false for NaN).
//
//powerapi:hotpath
func (b *rowBuf) note(top bool, w float64) {
	if !(w >= 0 && w <= maxSaneRowWatts) {
		b.badRows++
		return
	}
	if top {
		b.topWatts += w
	}
}

// offsetAlpha is the EWMA weight of one fresh arrival−emit delta. At one
// frame per 250ms round the estimate settles in a few seconds and a
// steady clock drift shows as the EWMA walking away from the baseline.
const offsetAlpha = 0.1

// commit lands the pending frame as the node's retained contribution, unless
// its sequence number is stale (a replay or reorder). The building buffers
// swap with the retained ones, so both ping-pong without reallocating. The
// arrival stamp is taken before the lock — provenance math under the lock is
// pure arithmetic.
//
//powerapi:hotpath
func (c *Collector) commit(n *nodeConn) {
	if !n.pending.valid {
		return
	}
	n.pending.valid = false
	now := c.tracer.Now()
	n.mu.Lock()
	if n.pending.seq <= n.lastSeq {
		n.mu.Unlock()
		n.building.reset()
		return
	}
	if n.lastSeq != 0 && n.pending.seq > n.lastSeq+1 {
		// Frames went missing between the last accepted sequence and this
		// one (publisher shed load, or the wire dropped a round).
		n.seqGaps += n.pending.seq - n.lastSeq - 1
	}
	n.lastSeq = n.pending.seq
	if n.name != string(n.pending.vm) { // comparison converts without allocating
		//powerapi:allow hotpath name changes only on the node's first frame or a rename
		n.name = string(n.pending.vm)
	}
	if n.source != string(n.pending.source) {
		//powerapi:allow hotpath source mode changes only on the node's first frame or a reconfigure
		n.source = string(n.pending.source)
	}
	n.lastTS = n.pending.ts
	n.total = n.pending.watts
	n.lastWall = now
	n.lastEmit = n.pending.emit
	n.lastRound = n.pending.round
	n.lastTrace = n.pending.trace
	if n.pending.emit != 0 {
		off := now - int64(n.pending.emit)
		n.lastOffset = off
		if !n.hasOffset {
			n.hasOffset = true
			n.baseOffset, n.minOffset, n.ewmaOffset = off, off, float64(off)
		} else {
			if off < n.minOffset {
				n.minOffset = off
			}
			n.ewmaOffset += offsetAlpha * (float64(off) - n.ewmaOffset)
		}
	}
	n.topWatts = n.building.topWatts
	n.badRows = n.building.badRows
	n.slots, n.building.slots = n.building.slots, n.slots
	n.watts, n.building.watts = n.building.watts, n.watts
	n.mu.Unlock()
	n.building.reset()
	n.frames.Add(1)
}

// maxSaneRowWatts bounds a single row's plausible power draw; `w >= 0 &&
// w <= maxSaneRowWatts` is false for NaN, negatives and absurd values alike,
// so one comparison pair classifies a row as bad.
const maxSaneRowWatts = 1e9

// keyTable is the fleet-global route-key interner: string key ↔ dense slot,
// with a parsed target per slot for history recording and a top-level flag
// per slot for the conservation contract (only rows like "cgroup:x" — no
// nested path — sum against the node total; "cgroup:x/y" double-counts its
// parent by design). Reads take the shared lock and allocate nothing; only a
// never-seen key takes the exclusive lock.
type keyTable struct {
	mu       sync.RWMutex
	ks       core.KeySlots
	targets  []target.Target
	topLevel []bool
}

//powerapi:hotpath
func (t *keyTable) slotBytes(key []byte) int32 {
	t.mu.RLock()
	s, ok := t.ks.LookupBytes(key)
	t.mu.RUnlock()
	if ok {
		return s
	}
	//powerapi:allow hotpath miss path: a never-seen key interns once, every later round hits the byte-keyed lookup
	return t.assign(string(key))
}

//powerapi:hotpath
func (t *keyTable) slot(key string) int32 {
	t.mu.RLock()
	s, ok := t.ks.Lookup(key)
	t.mu.RUnlock()
	if ok {
		return s
	}
	//powerapi:allow hotpath miss path: a never-seen key interns once, every later round hits the lookup
	return t.assign(key)
}

// slotBytesTop is slotBytes plus the slot's top-level flag, resolved under
// the same shared-lock acquisition so the ingest row callback pays one lock
// round-trip per row, not two.
//
//powerapi:hotpath
func (t *keyTable) slotBytesTop(key []byte) (int32, bool) {
	t.mu.RLock()
	s, ok := t.ks.LookupBytes(key)
	if ok {
		top := t.topLevel[s]
		t.mu.RUnlock()
		return s, top
	}
	t.mu.RUnlock()
	//powerapi:allow hotpath miss path: a never-seen key interns once, every later round hits the byte-keyed lookup
	s = t.assign(string(key))
	return s, t.top(s)
}

//powerapi:hotpath
func (t *keyTable) slotTop(key string) (int32, bool) {
	t.mu.RLock()
	s, ok := t.ks.Lookup(key)
	if ok {
		top := t.topLevel[s]
		t.mu.RUnlock()
		return s, top
	}
	t.mu.RUnlock()
	//powerapi:allow hotpath miss path: a never-seen key interns once, every later round hits the lookup
	s = t.assign(key)
	return s, t.top(s)
}

func (t *keyTable) top(slot int32) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.topLevel[slot]
}

func (t *keyTable) assign(key string) int32 {
	t.mu.Lock()
	s := t.ks.Assign(key)
	for len(t.targets) < t.ks.Len() {
		k := t.ks.Key(int32(len(t.targets)))
		tg, err := target.Parse(k)
		if err != nil {
			tg = target.Target{}
		}
		t.targets = append(t.targets, tg)
		t.topLevel = append(t.topLevel, isTopLevelKey(k))
	}
	t.mu.Unlock()
	return s
}

// isTopLevelKey reports whether a route key names a top-level cgroup — the
// rows whose watts are mutually exclusive and so must sum to at most the node
// total under the conservation contract.
func isTopLevelKey(key string) bool {
	const p = "cgroup:"
	return strings.HasPrefix(key, p) && !strings.Contains(key[len(p):], "/")
}

func (t *keyTable) key(slot int32) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ks.Key(slot)
}

func (t *keyTable) target(slot int32) target.Target {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.targets[slot]
}

func (t *keyTable) len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ks.Len()
}
