package collector

import (
	"sync"
	"sync/atomic"
	"time"
)

// The event journal is the fleet's flight recorder: a bounded in-memory ring
// of notable moments — membership changes, health transitions, contract
// violations, reconnects, codec fallbacks — each stamped with a global
// sequence number so pollers (and the push-output layer) can resume from
// where they left off. The ring is preallocated and events are value-only
// with static detail strings, so appending from the health pass costs no
// allocation however stormy the fleet gets; under overflow the oldest events
// fall off and a dropped counter says how many.

// EventType classifies one journal event.
type EventType int32

const (
	// EventNodeJoin records AddNode admitting a daemon address.
	EventNodeJoin EventType = iota
	// EventNodeLeave records RemoveNode retiring a daemon address.
	EventNodeLeave
	// EventNodeStateChange records a health-state transition (Old → New).
	EventNodeStateChange
	// EventContractViolation records a per-round invariant failure:
	// conservation drift, a power step spike, or malformed row watts.
	EventContractViolation
	// EventReconnect records a node link re-establishing after loss.
	EventReconnect
	// EventCodecFallback records a peer answering a provenance-capable
	// binary negotiation with version-1 messages (an old daemon).
	EventCodecFallback

	numEventTypes
)

var eventTypeNames = [numEventTypes]string{
	"node_join",
	"node_leave",
	"node_state_change",
	"contract_violation",
	"reconnect",
	"codec_fallback",
}

func (t EventType) String() string {
	if t < 0 || t >= numEventTypes {
		return "unknown"
	}
	return eventTypeNames[t]
}

// EventTypeNames lists every event type's snake_case name — the stable label
// set the metrics surface emits for powerapi_fleet_events_total.
func EventTypeNames() []string { return eventTypeNames[:] }

// Event is one journal entry. Value-only on purpose: appending copies it into
// the preallocated ring, and Node/Detail are strings that already exist
// (interned node names, static detail text), so the append allocates nothing.
type Event struct {
	// Seq numbers events globally from 1; it only ever grows, so a poller
	// holding the last seq it saw asks for everything after it.
	Seq uint64 `json:"seq"`
	// Wall is the event instant as Unix nanoseconds.
	Wall int64 `json:"wall"`
	// Type classifies the event; it marshals as the type's snake_case name.
	Type EventType `json:"-"`
	// Node is the node name (or dial address before a name is learned).
	Node string `json:"node,omitempty"`
	// Old and New carry the states of a node_state_change.
	Old NodeState `json:"-"`
	New NodeState `json:"-"`
	// Detail is a short static description of what happened.
	Detail string `json:"detail,omitempty"`
	// Value is the event's numeric context: drift watts for a conservation
	// violation, the step factor for a spike, missing frames for a gap.
	Value float64 `json:"value,omitempty"`
}

// EventView is the JSON shape of one event, with enums spelled out.
type EventView struct {
	Seq    uint64  `json:"seq"`
	Wall   string  `json:"wall"`
	Type   string  `json:"type"`
	Node   string  `json:"node,omitempty"`
	Old    string  `json:"old,omitempty"`
	New    string  `json:"new,omitempty"`
	Detail string  `json:"detail,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

// View renders the event for the HTTP surface. Cold path.
func (e Event) View() EventView {
	v := EventView{
		Seq:    e.Seq,
		Wall:   time.Unix(0, e.Wall).UTC().Format(time.RFC3339Nano),
		Type:   e.Type.String(),
		Node:   e.Node,
		Detail: e.Detail,
		Value:  e.Value,
	}
	if e.Type == EventNodeStateChange {
		v.Old, v.New = e.Old.String(), e.New.String()
	}
	return v
}

// Journal is the bounded event ring. The zero value is unusable; newJournal
// preallocates the ring so appends never grow anything.
type Journal struct {
	mu      sync.Mutex
	ring    []Event
	head, n int
	seq     uint64

	dropped atomic.Uint64
	counts  [numEventTypes]atomic.Uint64
}

// DefaultJournalCapacity bounds the journal when the config leaves it zero.
const DefaultJournalCapacity = 1024

func newJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{ring: make([]Event, capacity)}
}

// append stamps seq and wall time onto the event and lands it in the ring,
// evicting the oldest entry when full. Safe from any goroutine; alloc-free.
//
//powerapi:hotpath
func (j *Journal) append(e Event) {
	if j == nil {
		return
	}
	e.Wall = time.Now().UnixNano()
	if e.Type >= 0 && e.Type < numEventTypes {
		j.counts[e.Type].Add(1)
	}
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	if j.n == len(j.ring) {
		j.ring[j.head] = e
		j.head = (j.head + 1) % len(j.ring)
		j.dropped.Add(1)
	} else {
		j.ring[(j.head+j.n)%len(j.ring)] = e
		j.n++
	}
	j.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// LastSeq returns the newest event's sequence number (0 when none yet).
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Dropped reports how many events overflowed out of the ring.
func (j *Journal) Dropped() uint64 { return j.dropped.Load() }

// Counts returns the per-type append totals (including dropped events), in
// EventType order.
func (j *Journal) Counts() [numEventTypes]uint64 {
	var out [numEventTypes]uint64
	for i := range j.counts {
		out[i] = j.counts[i].Load()
	}
	return out
}

// Since copies out up to limit events with Seq > after, oldest first
// (limit <= 0 means no bound). Cold path; allocates the result.
func (j *Journal) Since(after uint64, limit int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.n)
	for i := 0; i < j.n; i++ {
		e := j.ring[(j.head+i)%len(j.ring)]
		if e.Seq <= after {
			continue
		}
		out = append(out, e)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out
}
