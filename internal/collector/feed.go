package collector

import (
	"fmt"

	"powerapi/internal/vmbridge"
)

// In-process feeding: with Config.Passive the collector dials nothing and the
// embedding process plays the daemons itself, pushing encoded wire payloads
// straight into the ingest queues. powerapi-bench drives its fleet-scale
// cells through these hooks, so the metered path — pooled buffer, drop-oldest
// ring, worker decode, seq-strict commit — is exactly the one a socket reader
// feeds, minus the socket.

// FeedPayload hands one encoded wire message — a complete binary message
// (header included, so the declared version travels with the bytes), or one
// JSON frame line, matching the collector's configured codec — to node i's
// ingest queue exactly as the link reader would. The message is copied into a
// pooled buffer, so the caller may reuse it immediately. Nodes are indexed in
// Config.Nodes order.
func (c *Collector) FeedPayload(node int, msg []byte) error {
	n, err := c.nodeAt(node)
	if err != nil {
		return err
	}
	item := payloadItem{buf: getBuf()}
	if c.cfg.Codec == vmbridge.CodecBinary {
		payload, wire, err := vmbridge.SplitBinaryMessage(msg)
		if err != nil {
			putBuf(item.buf)
			return fmt.Errorf("collector: feed node %d: %w", node, err)
		}
		item.wire = uint8(wire)
		msg = payload
	}
	n.bytes.Add(uint64(len(msg)))
	*item.buf = append(*item.buf, msg...)
	c.enqueue(n, item)
	return nil
}

// NodeLastSeq returns node i's last committed frame sequence — the cheap poll
// a feeder uses to wait for its payloads to land (Stats snapshots every node
// and allocates; this does neither).
func (c *Collector) NodeLastSeq(node int) uint64 {
	n, err := c.nodeAt(node)
	if err != nil {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastSeq
}

func (c *Collector) nodeAt(i int) (*nodeConn, error) {
	c.nodesMu.Lock()
	defer c.nodesMu.Unlock()
	if i < 0 || i >= len(c.nodes) {
		return nil, fmt.Errorf("collector: node index %d out of range 0..%d", i, len(c.nodes)-1)
	}
	return c.nodes[i], nil
}
