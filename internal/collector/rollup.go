package collector

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"powerapi/internal/core"
	"powerapi/internal/history"
	"powerapi/internal/obs"
	"powerapi/internal/target"
)

// Rollup is the fleet round: S persistent shard workers each sweep their
// subset of nodes — skipping contributions older than StaleAfter — into an
// epoch-reset SparseSet plus flat scratch, and the driver merges the shards
// into one pooled FleetReport. Everything a round touches is retained across
// rounds (shard sets, scratch slices, report maps with warm buckets), so the
// steady-state allocation count depends on the shard count alone: growing the
// fleet from 10 nodes to 1000 changes the work per round, not the garbage.

// FleetReport is one fleet round's rollup. Reports delivered through Rollup
// or a subscription are pooled: each holder owns one reference and must call
// Release when done (or Clone to keep the data) — the same retention contract
// core.AggregatedReport makes.
type FleetReport struct {
	// Seq numbers fleet rounds from 1.
	Seq uint64 `json:"seq"`
	// Timestamp is the round's instant measured since the collector started
	// (the fleet history timebase); Wall is the same instant on the wall
	// clock.
	Timestamp time.Duration `json:"timestamp"`
	Wall      time.Time     `json:"wall"`
	// TotalWatts is the fleet-wide total: the sum of live node totals.
	TotalWatts float64 `json:"totalWatts"`
	// Nodes counts the nodes contributing to this round; StaleNodes counts
	// the known nodes skipped because their last frame was too old — the
	// round's partial-success accounting.
	Nodes      int `json:"nodes"`
	StaleNodes int `json:"staleNodes"`
	// PerNode is each contributing node's total watts by node name.
	PerNode map[string]float64 `json:"perNode,omitempty"`
	// PerTarget is the fleet-wide per-route-key rollup ("cgroup:web/api"
	// summed across every node reporting that cgroup).
	PerTarget map[string]float64 `json:"perTarget,omitempty"`
	// SelfWatts is the collector's own draw at rollup time (0 when self
	// metering is off).
	SelfWatts float64 `json:"selfWatts,omitempty"`

	lease *fleetLease
	gen   uint64
}

// fleetLease mirrors the core report lease: refs counts holders, gen expires
// stale copies when the buffer is recycled.
type fleetLease struct {
	refs atomic.Int32
	gen  atomic.Uint64
	home *pooledFleet
}

type pooledFleet struct {
	report    FleetReport
	lease     fleetLease
	perNode   map[string]float64
	perTarget map[string]float64
}

var fleetPool = sync.Pool{New: func() any {
	p := &pooledFleet{}
	p.lease.home = p
	return p
}}

func getPooledFleet() *pooledFleet {
	p := fleetPool.Get().(*pooledFleet)
	p.lease.refs.Store(1)
	p.report = FleetReport{lease: &p.lease, gen: p.lease.gen.Load()}
	if p.perNode == nil {
		p.perNode = make(map[string]float64)
	} else {
		clear(p.perNode)
	}
	if p.perTarget == nil {
		p.perTarget = make(map[string]float64)
	} else {
		clear(p.perTarget)
	}
	p.report.PerNode = p.perNode
	p.report.PerTarget = p.perTarget
	return p
}

func (r *FleetReport) retain() {
	if r.lease != nil {
		r.lease.refs.Add(1)
	}
}

// Release hands this reference back; the last release recycles the buffer for
// a future round. A holder must not touch the report's maps afterwards.
// No-op on clones.
func (r *FleetReport) Release() {
	l := r.lease
	if l == nil || l.gen.Load() != r.gen {
		return
	}
	if l.refs.Add(-1) == 0 {
		l.gen.Add(1)
		fleetPool.Put(l.home)
	}
}

// Expired reports whether this reference's round has been recycled.
func (r *FleetReport) Expired() bool {
	return r.lease != nil && r.lease.gen.Load() != r.gen
}

// Clone returns a deep copy safe to retain forever.
func (r *FleetReport) Clone() *FleetReport {
	out := *r
	out.lease, out.gen = nil, 0
	out.PerNode = make(map[string]float64, len(r.PerNode))
	for k, v := range r.PerNode {
		out.PerNode[k] = v
	}
	out.PerTarget = make(map[string]float64, len(r.PerTarget))
	for k, v := range r.PerTarget {
		out.PerTarget[k] = v
	}
	return &out
}

// nodeEntry is one live node's row in a shard's scratch.
type nodeEntry struct {
	name  string
	watts float64
}

// rollupShard is one persistent rollup worker's state. Only its own goroutine
// touches the accumulators; wake/done synchronise with the driver.
type rollupShard struct {
	idx   int
	wake  chan struct{}
	set   core.SparseSet
	nodes []nodeEntry
	total float64
	live  int
	stale int
}

func (c *Collector) shardLoop(sh *rollupShard) {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case <-sh.wake:
			c.runShard(sh)
			c.shardDone <- struct{}{}
		}
	}
}

// runShard sweeps the shard's node subset (round-robin by index) into its
// accumulators. A node's contribution is read under its mutex, so a commit
// landing mid-round is seen whole or not at all.
func (c *Collector) runShard(sh *rollupShard) {
	sh.set.Reset()
	sh.nodes = sh.nodes[:0]
	sh.total, sh.live, sh.stale = 0, 0, 0
	cutoff := c.tracer.Now() - int64(c.cfg.StaleAfter)
	for i := sh.idx; i < len(c.roundNodes); i += len(c.shards) {
		n := c.roundNodes[i]
		n.mu.Lock()
		if n.lastWall == 0 || n.lastWall < cutoff {
			n.mu.Unlock()
			n.staleSkips.Add(1)
			sh.stale++
			continue
		}
		sh.live++
		sh.total += n.total
		sh.nodes = append(sh.nodes, nodeEntry{name: n.name, watts: n.total})
		for j, slot := range n.slots {
			sh.set.Add(slot, n.watts[j])
		}
		n.mu.Unlock()
	}
}

// Rollup runs one fleet round synchronously: shards sweep, the driver merges,
// the round is recorded to fleet history and fanned out to subscribers. The
// returned report carries one reference owned by the caller — Release it.
func (c *Collector) Rollup() *FleetReport {
	c.roundMu.Lock()
	defer c.roundMu.Unlock()

	seq := c.seq.Add(1)
	ts := time.Since(c.start)
	c.tracer.Begin(ts)
	rollupStart := c.tracer.Now()

	c.nodesMu.Lock()
	c.roundNodes = append(c.roundNodes[:0], c.nodes...)
	c.nodesMu.Unlock()

	for _, sh := range c.shards {
		sh.wake <- struct{}{}
	}
	for range c.shards {
		<-c.shardDone
	}

	p := getPooledFleet()
	rep := &p.report
	rep.Seq, rep.Timestamp, rep.Wall = seq, ts, time.Now()
	for _, sh := range c.shards {
		rep.TotalWatts += sh.total
		rep.Nodes += sh.live
		rep.StaleNodes += sh.stale
		for _, e := range sh.nodes {
			p.perNode[e.name] = e.watts
		}
	}
	// Merge the shard accumulators into one dedup set first — a route key
	// reported by nodes in different shards must land as one figure — then
	// materialise the map under one read lock on the key table, so the
	// per-slot key lookups are plain slice reads.
	c.merged.Reset()
	for _, sh := range c.shards {
		for _, slot := range sh.set.Touched() {
			c.merged.Add(slot, sh.set.Value(slot))
		}
	}
	c.keys.mu.RLock()
	for _, slot := range c.merged.Touched() {
		p.perTarget[c.keys.ks.Key(slot)] = c.merged.Value(slot)
	}
	c.keys.mu.RUnlock()
	if c.self != nil {
		c.self.Sample()
		rep.SelfWatts = c.self.Watts()
	}
	// The anomaly pass rides the round while roundNodes is still this round's
	// snapshot: health states, contract checks and the e2e latency histogram
	// all describe exactly the contributions the rollup just swept.
	c.evaluateHealth(c.tracer.Now())
	c.lastLive.Store(int64(rep.Nodes))
	c.lastStale.Store(int64(rep.StaleNodes))
	c.lastTotal.Store(math.Float64bits(rep.TotalWatts))
	c.tracer.Record(ts, obs.StageRollup, 0, rollupStart, c.tracer.Now())

	c.recordHistory(rep)

	fanoutStart := c.tracer.Now()
	c.subs.publish(rep)
	c.tracer.Record(ts, obs.StageFanout, 0, fanoutStart, c.tracer.Now())
	c.tracer.FinishRound(ts)
	return rep
}

// recordHistory lands one fleet round in the history store: the fleet total
// as the machine target, one node row per contributing node, one row per
// fleet route key. The samples slice is reused across rounds.
func (c *Collector) recordHistory(rep *FleetReport) {
	start := c.tracer.Now()
	c.samples = c.samples[:0]
	c.samples = append(c.samples, history.TargetSample{Target: target.Machine(), Watts: rep.TotalWatts})
	for name, w := range rep.PerNode {
		c.samples = append(c.samples, history.TargetSample{Target: target.Node(name), Watts: w})
	}
	c.keys.mu.RLock()
	for _, slot := range c.merged.Touched() {
		if tg := c.keys.targets[slot]; tg.Valid() {
			c.samples = append(c.samples, history.TargetSample{Target: tg, Watts: c.merged.Value(slot)})
		}
	}
	c.keys.mu.RUnlock()
	c.hist.RecordBatch(rep.Timestamp, c.samples)
	c.tracer.Record(rep.Timestamp, obs.StageHistory, 0, start, c.tracer.Now())
}

func loadFloat(v *atomic.Uint64) float64 { return math.Float64frombits(v.Load()) }
