package collector

import (
	"powerapi/internal/obs"
)

// The node health model turns raw link ages and provenance offsets into a
// small state machine every operator tool can read the same way:
//
//	unknown → healthy → lagging → stale → gone
//
// evaluateHealth runs once per fleet round, under the round lock, over the
// same node snapshot the rollup swept. It is pure arithmetic over fields
// already maintained by the ingest path — no I/O, no allocation — and every
// transition or contract violation it detects lands in the event journal
// exactly once (edge-triggered), so an alert storm from one flapping node is
// a stream of state changes, not a per-round repeat of the same complaint.

// NodeState is a node's health as of the last fleet round.
type NodeState int32

const (
	// StateUnknown means no frame has ever been committed for the node.
	StateUnknown NodeState = iota
	// StateHealthy means the node's contribution is fresh and its ingest lag
	// is within bounds.
	StateHealthy
	// StateLagging means the node still contributes but its frames arrive
	// late: the contribution's age or the provenance-derived ingest lag
	// crossed the lag threshold.
	StateLagging
	// StateStale means the contribution aged past StaleAfter — the rollup is
	// skipping the node.
	StateStale
	// StateGone means the node stayed stale past GoneAfter; treat it as
	// departed until it speaks again.
	StateGone

	numNodeStates
)

var nodeStateNames = [numNodeStates]string{"unknown", "healthy", "lagging", "stale", "gone"}

func (s NodeState) String() string {
	if s < 0 || s >= numNodeStates {
		return "invalid"
	}
	return nodeStateNames[s]
}

// NodeStateNames lists every health state in severity order — the label set
// the metrics surface emits for each node.
func NodeStateNames() []string { return nodeStateNames[:] }

// Violation mask bits, one per contract class, edge-triggered: the journal
// hears about a violation when its bit rises and again only after it cleared.
const (
	violConservation uint32 = 1 << iota
	violSpike
	violBadRows
	violSeqGap
)

// conservationEps is the relative drift the conservation contract tolerates:
// the sum of a node's top-level cgroup rows may exceed its reported total by
// at most one part in a million (floats summed in different orders drift at
// ~1e-16 per op; a real double-count shows up thousands of times larger).
const conservationEps = 1e-6

// lagThresholds resolves the health thresholds from config: nodes turn
// lagging after lagAfter, gone after goneAfter beyond staleness.
func (c *Collector) lagThresholds() (lagAfter, goneAfter int64) {
	la := c.cfg.LagAfter
	if la <= 0 {
		if c.cfg.Interval > 0 {
			la = 2 * c.cfg.Interval
		} else {
			la = c.cfg.StaleAfter / 2
		}
	}
	if la > c.cfg.StaleAfter {
		la = c.cfg.StaleAfter
	}
	ga := c.cfg.GoneAfter
	if ga <= 0 {
		ga = 4 * c.cfg.StaleAfter
	}
	if ga < c.cfg.StaleAfter {
		ga = c.cfg.StaleAfter
	}
	return int64(la), int64(ga)
}

// evaluateHealth is the per-round anomaly pass: classify every node, observe
// end-to-end latency for fresh provenance-stamped frames, and journal each
// transition, violation edge, seq gap, reconnect and codec fallback. Called
// under roundMu with the round's node snapshot; per-node fields are read
// under that node's mutex, atomics outside it.
//
//powerapi:hotpath
func (c *Collector) evaluateHealth(now int64) {
	lagAfter, goneAfter := c.lagThresholds()
	staleAfter := int64(c.cfg.StaleAfter)
	spike := c.cfg.SpikeFactor
	if spike <= 1 {
		spike = defaultSpikeFactor
	}
	for _, n := range c.roundNodes {
		recon := n.reconnects.Load()
		sawV1 := n.sawV1.Load()

		n.mu.Lock()
		name := n.name
		if name == "" {
			name = n.addr
		}
		lastWall := n.lastWall
		lastSeq := n.lastSeq
		seqGaps := n.seqGaps
		total := n.total
		topWatts := n.topWatts
		badRows := n.badRows
		hasProv := n.lastEmit != 0 && n.hasOffset
		lagNs := int64(0)
		if hasProv {
			lagNs = n.lastOffset - n.minOffset
		}
		fresh := lastSeq != n.prevSeq
		gapDelta := seqGaps - n.prevSeqGaps
		prevTotal := n.prevTotal
		v1Edge := sawV1 && !n.v1Noted
		if v1Edge {
			n.v1Noted = true
		}
		n.prevSeq = lastSeq
		n.prevSeqGaps = seqGaps
		if fresh {
			n.prevTotal = total
		}
		n.mu.Unlock()

		// Classify. Age rules strictly order the degraded states; provenance
		// lag can demote a fresh node to lagging but never promote one.
		var state NodeState
		age := now - lastWall
		switch {
		case lastWall == 0:
			state = StateUnknown
		case age > goneAfter:
			state = StateGone
		case age > staleAfter:
			state = StateStale
		case age > lagAfter || (hasProv && lagNs > lagAfter):
			state = StateLagging
		default:
			state = StateHealthy
		}

		prev := NodeState(n.state.Swap(int32(state)))
		if state != prev {
			c.journal.append(Event{
				Type: EventNodeStateChange, Node: name, Old: prev, New: state,
				Detail: "health state changed", Value: float64(age) / 1e9,
			})
		}

		// End-to-end fleet latency: emit at the daemon to this rollup pass,
		// estimated as the contribution's age plus its ingest lag. Only fresh
		// frames observe — a silent node must not replay its last latency.
		if fresh && hasProv {
			c.e2eHist.Observe(age + lagNs)
		}

		// Contract checks ride on fresh frames only; a quiet node keeps
		// whatever mask it had without re-raising events.
		if fresh {
			var mask uint32
			drift := topWatts - total
			if topWatts > 0 && drift > conservationEps*max(total, 1) {
				mask |= violConservation
				if n.violMask&violConservation == 0 {
					c.journal.append(Event{
						Type: EventContractViolation, Node: name,
						Detail: "conservation drift: top-level cgroup rows exceed node total", Value: drift,
					})
				}
			}
			if prevTotal > 1 && total > spike*prevTotal {
				mask |= violSpike
				if n.violMask&violSpike == 0 {
					c.journal.append(Event{
						Type: EventContractViolation, Node: name,
						Detail: "power step spike: node total jumped", Value: total / prevTotal,
					})
				}
			}
			if badRows > 0 {
				mask |= violBadRows
				if n.violMask&violBadRows == 0 {
					c.journal.append(Event{
						Type: EventContractViolation, Node: name,
						Detail: "malformed rows: non-finite or absurd watts", Value: float64(badRows),
					})
				}
			}
			// Seq gaps are edge-triggered like the other contract classes: a
			// link shedding under overload loses frames every round, and that
			// must read as one journal entry per episode, not a per-round
			// storm. The raw gap count stays on the health/metrics surfaces.
			if gapDelta > 0 {
				mask |= violSeqGap
				if n.violMask&violSeqGap == 0 {
					c.journal.append(Event{
						Type: EventContractViolation, Node: name,
						Detail: "sequence gap: frames lost between rounds", Value: float64(gapDelta),
					})
				}
			}
			if raised := mask &^ n.violMask; raised != 0 {
				n.violations.Add(uint64(popcount(raised)))
			}
			n.violMask = mask
		}
		if d := recon - n.prevRecon; d > 0 {
			n.prevRecon = recon
			c.journal.append(Event{
				Type: EventReconnect, Node: name,
				Detail: "link re-established", Value: float64(d),
			})
		}
		if v1Edge {
			c.journal.append(Event{
				Type: EventCodecFallback, Node: name,
				Detail: "peer answered provenance negotiation with version-1 frames",
			})
		}
	}
}

// defaultSpikeFactor flags a node total more than 4x its previous fresh value
// as a step spike.
const defaultSpikeFactor = 4.0

func popcount(v uint32) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// NodeHealth is one node's health row on the /api/v1/health surface.
type NodeHealth struct {
	// Addr and Name identify the node (Name empty before its first frame).
	Addr string `json:"addr"`
	Name string `json:"name,omitempty"`
	// State is the health classification as of the last round.
	State string `json:"state"`
	// AgeSeconds is the contribution's age (-1 before the first frame).
	AgeSeconds float64 `json:"ageSeconds"`
	// LagSeconds estimates ingest lag from provenance offsets: how much later
	// than the best-ever delivery the last frame arrived. Zero without
	// provenance.
	LagSeconds float64 `json:"lagSeconds"`
	// SkewSeconds estimates relative clock drift since connect: the EWMA of
	// arrival−emit offsets minus the first offset. Meaningful only in trend.
	SkewSeconds float64 `json:"skewSeconds"`
	// Round and TraceID are the last committed frame's provenance stamps.
	Round   uint64 `json:"round,omitempty"`
	TraceID uint64 `json:"traceId,omitempty"`
	// SeqGaps counts frames lost to gaps; Violations counts contract
	// violation edges; Reconnects counts link re-establishments.
	SeqGaps    uint64 `json:"seqGaps"`
	Violations uint64 `json:"violations"`
	Reconnects uint64 `json:"reconnects"`
	// WireV1 reports an old peer answering provenance negotiation with
	// version-1 messages.
	WireV1 bool `json:"wireV1,omitempty"`
}

// HealthView is the /api/v1/health document: the fleet round clock, the
// per-state node tally, and every node's health row.
type HealthView struct {
	Rounds uint64         `json:"rounds"`
	States map[string]int `json:"states"`
	Nodes  []NodeHealth   `json:"nodes"`
	// E2ELatency is the end-to-end fleet latency distribution (daemon emit to
	// collector rollup) across provenance-stamped frames; absent until the
	// first stamped frame lands.
	E2ELatency *obs.StageStats `json:"e2eLatency,omitempty"`
}

// Health snapshots the fleet health model. Cold path; allocates freely.
func (c *Collector) Health() HealthView {
	now := c.tracer.Now()
	view := HealthView{
		Rounds: c.seq.Load(),
		States: make(map[string]int, int(numNodeStates)),
	}
	c.nodesMu.Lock()
	nodes := append([]*nodeConn(nil), c.nodes...)
	c.nodesMu.Unlock()
	for _, n := range nodes {
		h := NodeHealth{Addr: n.addr, AgeSeconds: -1}
		h.State = NodeState(n.state.Load()).String()
		h.Violations = n.violations.Load()
		h.Reconnects = n.reconnects.Load()
		h.WireV1 = n.sawV1.Load()
		n.mu.Lock()
		h.Name = n.name
		if n.lastWall != 0 {
			h.AgeSeconds = float64(now-n.lastWall) / 1e9
		}
		if n.lastEmit != 0 && n.hasOffset {
			h.LagSeconds = float64(n.lastOffset-n.minOffset) / 1e9
			h.SkewSeconds = (n.ewmaOffset - float64(n.baseOffset)) / 1e9
		}
		h.Round = n.lastRound
		h.TraceID = n.lastTrace
		h.SeqGaps = n.seqGaps
		n.mu.Unlock()
		view.States[h.State]++
		view.Nodes = append(view.Nodes, h)
	}
	if hs := c.e2eHist.Snapshot(); hs.Count > 0 {
		st := obs.StatsFromHistogram("fleet_e2e", c.e2eHist)
		view.E2ELatency = &st
	}
	return view
}

// Journal returns the collector's event journal.
func (c *Collector) Journal() *Journal { return c.journal }

// E2EStats summarises the end-to-end fleet latency histogram (daemon emit to
// collector rollup, provenance-stamped frames only).
func (c *Collector) E2EStats() obs.StageStats {
	return obs.StatsFromHistogram("fleet_e2e", c.e2eHist)
}
