package collector

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"powerapi/internal/core"
)

// The fleet fanout mirrors the monitor's subscription machinery in compact
// form: the same three backpressure policies (core.BackpressurePolicy), the
// same per-subscription counters, the same pooled-report retention contract —
// every report placed in a channel carries one reference the consumer must
// Release (or Clone past).

// SubscribeOptions shapes one fleet subscription.
type SubscribeOptions struct {
	// Name labels the subscription in Stats (may be empty).
	Name string
	// Policy is the backpressure policy (Conflate by default).
	Policy core.BackpressurePolicy
	// Buffer is the channel depth for DropOldest/Block (1 when <= 0;
	// Conflate always uses 1).
	Buffer int
}

// Subscription is one fleet-report stream.
type Subscription struct {
	id     uint64
	name   string
	policy core.BackpressurePolicy
	ch     chan *FleetReport
	done   chan struct{}
	reg    *fleetRegistry

	sendMu    sync.Mutex
	closeOnce sync.Once

	delivered atomic.Uint64
	dropped   atomic.Uint64
}

// C returns the report stream. Each received report carries one reference the
// consumer owns: Release it when done (Clone first to keep the data). The
// channel closes when the subscription or the collector closes.
func (s *Subscription) C() <-chan *FleetReport { return s.ch }

// Close detaches the subscription; pending unread reports are released.
func (s *Subscription) Close() {
	s.reg.remove(s.id)
	s.shut()
}

// shut closes the channel (race-free against a publish in flight) and drops
// the references queued in it.
func (s *Subscription) shut() {
	s.closeOnce.Do(func() {
		close(s.done)
		s.sendMu.Lock()
		close(s.ch)
		s.sendMu.Unlock()
		for rep := range s.ch {
			rep.Release()
		}
	})
}

// offer delivers one report reference according to the policy. The reference
// is already retained for this subscription; a report evicted or refused is
// released here.
func (s *Subscription) offer(rep *FleetReport) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	select {
	case <-s.done:
		rep.Release()
		return
	default:
	}
	switch s.policy {
	case core.Block:
		s.ch <- rep
		s.delivered.Add(1)
	default: // Conflate and DropOldest differ only in channel depth
		for {
			select {
			case s.ch <- rep:
				s.delivered.Add(1)
				return
			default:
			}
			select {
			case old := <-s.ch:
				old.Release()
				s.dropped.Add(1)
			default:
			}
		}
	}
}

// fleetRegistry tracks live subscriptions and publishes rounds to them.
type fleetRegistry struct {
	mu       sync.Mutex
	subs     map[uint64]*Subscription
	nextID   uint64
	closed   bool
	snapshot []*Subscription // publish scratch, reused across rounds
}

// Subscribe attaches a fleet-report stream to the collector.
func (c *Collector) Subscribe(opts SubscribeOptions) (*Subscription, error) {
	return c.subs.add(opts)
}

func (r *fleetRegistry) add(opts SubscribeOptions) (*Subscription, error) {
	buffer := opts.Buffer
	if buffer <= 0 || opts.Policy == core.Conflate {
		buffer = 1
	}
	s := &Subscription{
		name:   opts.Name,
		policy: opts.Policy,
		ch:     make(chan *FleetReport, buffer),
		done:   make(chan struct{}),
		reg:    r,
	}
	r.mu.Lock()
	if r.subs == nil {
		r.subs = make(map[uint64]*Subscription)
	}
	if r.closed {
		r.mu.Unlock()
		return nil, errors.New("collector: closed")
	}
	r.nextID++
	s.id = r.nextID
	r.subs[s.id] = s
	r.mu.Unlock()
	return s, nil
}

func (r *fleetRegistry) remove(id uint64) {
	r.mu.Lock()
	delete(r.subs, id)
	r.mu.Unlock()
}

// publish fans one round out: one reference retained per subscription, handed
// to its offer. The snapshot slice is reused, so a steady-state publish
// allocates nothing.
func (r *fleetRegistry) publish(rep *FleetReport) {
	r.mu.Lock()
	r.snapshot = r.snapshot[:0]
	for _, s := range r.subs {
		r.snapshot = append(r.snapshot, s)
	}
	r.mu.Unlock()
	for _, s := range r.snapshot {
		rep.retain()
		s.offer(rep)
	}
}

func (r *fleetRegistry) closeAll() {
	r.mu.Lock()
	r.closed = true
	subs := make([]*Subscription, 0, len(r.subs))
	for _, s := range r.subs {
		subs = append(subs, s)
	}
	r.subs = nil
	r.mu.Unlock()
	for _, s := range subs {
		s.shut()
	}
}

func (r *fleetRegistry) stats() []core.SubscriptionInfo {
	r.mu.Lock()
	out := make([]core.SubscriptionInfo, 0, len(r.subs))
	for _, s := range r.subs {
		out = append(out, core.SubscriptionInfo{
			ID:        s.id,
			Name:      s.name,
			Policy:    s.policy,
			Delivered: s.delivered.Load(),
			Dropped:   s.dropped.Load(),
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
