package collector

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"powerapi/internal/vmbridge"
)

// provFrame is nodeFrame with emit-time provenance stamped the way the
// daemon's NodePublisher does.
func provFrame(node string, seq uint64, total float64, rows []vmbridge.TargetRow) vmbridge.VMPowerFrame {
	f := nodeFrame(node, seq, total, rows)
	f.EmitMono = time.Duration(seq) * time.Millisecond
	f.Round = seq
	f.TraceID = vmbridge.FrameTraceID(node, seq)
	return f
}

// feedV2 pushes one provenance-stamped binary frame through FeedPayload.
func feedV2(t *testing.T, c *Collector, node int, f vmbridge.VMPowerFrame) {
	t.Helper()
	msg := vmbridge.AppendBinaryBatchVersion(nil, []vmbridge.VMPowerFrame{f}, vmbridge.BinaryVersionProvenance)
	if err := c.FeedPayload(node, msg); err != nil {
		t.Fatal(err)
	}
}

// TestHealthTransitions drives one node through the whole state machine by
// silence alone: a fresh frame makes it healthy, then lag, staleness and
// departure thresholds fire in order as the contribution ages, each
// transition journaled exactly once.
func TestHealthTransitions(t *testing.T) {
	c, err := New(Config{
		Nodes:      []string{"bench://n"},
		Passive:    true,
		Codec:      vmbridge.CodecBinary,
		LagAfter:   250 * time.Millisecond,
		StaleAfter: 750 * time.Millisecond,
		GoneAfter:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stateOf := func() string {
		rep := c.Rollup()
		rep.Release()
		return c.Stats().Nodes[0].State
	}

	if got := stateOf(); got != "unknown" {
		t.Fatalf("state before any frame = %q, want unknown", got)
	}

	// Emit stamps track the wall clock so provenance lag stays near zero —
	// only the contribution's age should drive the transitions here.
	liveFrame := func(seq uint64) vmbridge.VMPowerFrame {
		f := provFrame("n", seq, 20, []vmbridge.TargetRow{{Key: "cgroup:app", Watts: 20}})
		f.EmitMono = time.Duration(time.Now().UnixNano())
		return f
	}

	feedV2(t, c, 0, liveFrame(1))
	waitUntil(t, "frame committed", func() bool { return c.NodeLastSeq(0) >= 1 })
	if got := stateOf(); got != "healthy" {
		t.Fatalf("state after fresh frame = %q, want healthy", got)
	}

	// Silence walks the node down the ladder; each waitUntil keeps rolling up
	// so the health pass re-evaluates the growing age.
	for _, want := range []string{"lagging", "stale", "gone"} {
		waitUntil(t, "state "+want, func() bool { return stateOf() == want })
	}

	// The journal saw each transition exactly once, in order.
	var trans []string
	for _, e := range c.Journal().Since(0, 0) {
		if e.Type == EventNodeStateChange {
			trans = append(trans, e.Old.String()+">"+e.New.String())
		}
	}
	want := []string{"unknown>healthy", "healthy>lagging", "lagging>stale", "stale>gone"}
	if len(trans) != len(want) {
		t.Fatalf("state transitions journaled: %v, want %v", trans, want)
	}
	for i := range want {
		if trans[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (all: %v)", i, trans[i], want[i], trans)
		}
	}

	// A provenance-stamped fresh frame observed end-to-end latency, and the
	// health view agrees with the stats surface.
	if st := c.E2EStats(); st.Count < 1 {
		t.Fatalf("e2e latency observations = %d, want >= 1", st.Count)
	}
	hv := c.Health()
	if hv.States["gone"] != 1 || len(hv.Nodes) != 1 || hv.Nodes[0].State != "gone" {
		t.Fatalf("health view = %+v, want one gone node", hv)
	}
	if hv.Nodes[0].Round != 1 || hv.Nodes[0].TraceID != vmbridge.FrameTraceID("n", 1) {
		t.Fatalf("health provenance row = %+v, want round 1 and the node's trace id", hv.Nodes[0])
	}

	// A new frame resurrects the node; the journal hears gone>healthy.
	feedV2(t, c, 0, liveFrame(2))
	waitUntil(t, "resurrection committed", func() bool { return c.NodeLastSeq(0) >= 2 })
	waitUntil(t, "state healthy again", func() bool { return stateOf() == "healthy" })
	events := c.Journal().Since(0, 0)
	last := events[len(events)-1]
	if last.Type != EventNodeStateChange || last.Old != StateGone || last.New != StateHealthy {
		t.Fatalf("last journal event = %+v, want gone>healthy", last)
	}
}

// TestJournalBounded pins the flight recorder's bounds: a storm far past
// capacity keeps the ring at capacity, counts every eviction, and Since still
// walks oldest-first with resume and limit semantics intact.
func TestJournalBounded(t *testing.T) {
	j := newJournal(8)
	for i := 0; i < 100; i++ {
		j.append(Event{Type: EventType(i % int(numEventTypes)), Detail: "storm"})
	}
	if got := j.Len(); got != 8 {
		t.Fatalf("ring holds %d events, want capacity 8", got)
	}
	if got := j.LastSeq(); got != 100 {
		t.Fatalf("last seq = %d, want 100", got)
	}
	if got := j.Dropped(); got != 92 {
		t.Fatalf("dropped = %d, want 92", got)
	}
	var total uint64
	for _, n := range j.Counts() {
		total += n
	}
	if total != 100 {
		t.Fatalf("per-type counts sum to %d, want 100 (dropped events still count)", total)
	}

	all := j.Since(0, 0)
	if len(all) != 8 {
		t.Fatalf("Since(0) returned %d events, want the 8 surviving", len(all))
	}
	for i, e := range all {
		if want := uint64(93 + i); e.Seq != want {
			t.Fatalf("surviving event %d has seq %d, want %d (oldest first)", i, e.Seq, want)
		}
	}
	if got := j.Since(95, 2); len(got) != 2 || got[0].Seq != 96 || got[1].Seq != 97 {
		t.Fatalf("Since(95, 2) = %+v, want seqs 96,97", got)
	}
	if got := j.Since(200, 0); len(got) != 0 {
		t.Fatalf("Since past the end returned %d events, want 0", len(got))
	}
}

// scriptSink is a Sink whose behaviour the test flips at runtime: refuse
// everything (outage), accept one document per call and fail the rest
// (partial success), or accept whole batches. Every accepted document is
// recorded, so the test can assert exactly-once, in-order delivery.
type scriptSink struct {
	mode atomic.Int32 // 0 refuse, 1 partial, 2 accept

	mu    sync.Mutex
	calls int
	got   [][]byte
}

const (
	sinkRefuse int32 = iota
	sinkPartial
	sinkAccept
)

func (s *scriptSink) Name() string { return "script" }

func (s *scriptSink) WriteBatch(docs [][]byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	switch s.mode.Load() {
	case sinkRefuse:
		return 0, errors.New("sink down")
	case sinkPartial:
		s.got = append(s.got, append([]byte(nil), docs[0]...))
		return 1, errors.New("sink flaky")
	default:
		for _, d := range docs {
			s.got = append(s.got, append([]byte(nil), d...))
		}
		return len(docs), nil
	}
}

func (s *scriptSink) Close() error { return nil }

func (s *scriptSink) snapshot() (int, [][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls, append([][]byte(nil), s.got...)
}

// TestOutputRetryNoDuplicates is the push-output delivery contract end to
// end: an outage queues documents without losing them, partial success
// retries only the unacked suffix, and once the sink recovers everything
// drains exactly once, oldest first.
func TestOutputRetryNoDuplicates(t *testing.T) {
	c, err := New(Config{
		Nodes:      []string{"bench://n"},
		Passive:    true,
		Codec:      vmbridge.CodecBinary,
		StaleAfter: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sink := &scriptSink{} // starts refusing: the outage is on before any doc exists
	out, err := c.AddOutput(sink, OutputConfig{
		BatchSize:  4,
		FlushEvery: 20 * time.Millisecond,
		RetryBase:  2 * time.Millisecond,
		RetryCap:   10 * time.Millisecond,
		Rounds:     true,
		Events:     true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Generate traffic during the outage: rounds plus the node_join event the
	// constructor already journaled.
	const rounds = 6
	for i := 1; i <= rounds; i++ {
		feedV2(t, c, 0, provFrame("n", uint64(i), 20, []vmbridge.TargetRow{{Key: "cgroup:app", Watts: 20}}))
		waitUntil(t, "feed committed", func() bool { return c.NodeLastSeq(0) >= uint64(i) })
		rep := c.Rollup()
		rep.Release()
	}

	waitUntil(t, "sink seeing retries", func() bool {
		calls, _ := sink.snapshot()
		return calls >= 3 && out.Stats().Retries >= 3
	})
	if _, got := sink.snapshot(); len(got) != 0 {
		t.Fatalf("refusing sink recorded %d documents", len(got))
	}
	if st := out.Stats(); st.Docs != 0 || st.Queued == 0 {
		t.Fatalf("outage stats = %+v, want zero delivered and a backlog", st)
	}

	// Flaky recovery: one document per call. Some progress must happen, and
	// only via single-doc acceptance.
	sink.mode.Store(sinkPartial)
	waitUntil(t, "partial progress", func() bool { return out.Stats().Docs >= 2 })

	// Full recovery drains the backlog.
	sink.mode.Store(sinkAccept)
	waitUntil(t, "queue drained", func() bool {
		st := out.Stats()
		return st.Queued == 0 && st.LastError == ""
	})
	// One more round after recovery proves the output is still live.
	feedV2(t, c, 0, provFrame("n", rounds+1, 20, []vmbridge.TargetRow{{Key: "cgroup:app", Watts: 20}}))
	waitUntil(t, "post-recovery feed", func() bool { return c.NodeLastSeq(0) >= rounds+1 })
	rep := c.Rollup()
	rep.Release()
	lastRound := rep.Seq
	waitUntil(t, "post-recovery round delivered", func() bool {
		_, got := sink.snapshot()
		for _, d := range got {
			var doc struct {
				Kind string `json:"kind"`
				Seq  uint64 `json:"seq"`
			}
			if json.Unmarshal(d, &doc) == nil && doc.Kind == "fleet_round" && doc.Seq == lastRound {
				return true
			}
		}
		return false
	})
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}

	// Exactly-once, in order: every delivered document is unique, and each
	// kind's sequence numbers only ever grow.
	_, got := sink.snapshot()
	if st := out.Stats(); uint64(len(got)) != st.Docs {
		t.Fatalf("sink recorded %d documents, output claims %d delivered", len(got), st.Docs)
	}
	if st := out.Stats(); st.ShedDocs != 0 {
		t.Fatalf("queue shed %d documents with a bound far above the load", st.ShedDocs)
	}
	seen := make(map[string]bool, len(got))
	lastSeq := map[string]uint64{}
	var eventDocs, roundDocs int
	for _, d := range got {
		var doc struct {
			Kind  string `json:"kind"`
			Seq   uint64 `json:"seq"`
			Event struct {
				Seq uint64 `json:"seq"`
			} `json:"event"`
		}
		if err := json.Unmarshal(d, &doc); err != nil {
			t.Fatalf("undecodable pushed document %q: %v", d, err)
		}
		seq := doc.Seq
		if doc.Kind == "event" {
			seq = doc.Event.Seq
			eventDocs++
		} else {
			roundDocs++
		}
		key := fmt.Sprintf("%s/%d", doc.Kind, seq)
		if seen[key] {
			t.Fatalf("document %s delivered twice", key)
		}
		seen[key] = true
		if seq <= lastSeq[doc.Kind] {
			t.Fatalf("kind %s went backwards: seq %d after %d", doc.Kind, seq, lastSeq[doc.Kind])
		}
		lastSeq[doc.Kind] = seq
	}
	if eventDocs == 0 || roundDocs == 0 {
		t.Fatalf("delivered %d event and %d round documents, want both kinds", eventDocs, roundDocs)
	}
	// Every journal event that existed reached the sink — the bounded queue
	// never had to shed under this load.
	if want := c.Journal().LastSeq(); lastSeq["event"] != want {
		t.Fatalf("last delivered event seq = %d, journal is at %d", lastSeq["event"], want)
	}
}

// TestMixedVersionFleetConservation is the mixed-fleet invariant: one node
// still on wire version 1 and two on version 2 must conserve power to 1e-6
// through the same rollup, with provenance populated only where the wire
// carried it.
func TestMixedVersionFleetConservation(t *testing.T) {
	c, err := New(Config{
		Nodes:      []string{"bench://v1", "bench://v2a", "bench://v2b"},
		Passive:    true,
		Codec:      vmbridge.CodecBinary,
		StaleAfter: time.Hour,
		Shards:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wantTotal float64
	for i, name := range []string{"v1", "v2a", "v2b"} {
		total := 10.0 + float64(i)
		wantTotal += total
		rows := []vmbridge.TargetRow{
			{Key: "cgroup:web", Watts: 4.0 + float64(i)},
			{Key: fmt.Sprintf("cgroup:own-%d", i), Watts: total - 4.0 - float64(i)},
		}
		if i == 0 {
			// The old peer: version-1 message, no stamps possible.
			msg := vmbridge.AppendBinaryBatch(nil, []vmbridge.VMPowerFrame{nodeFrame(name, 1, total, rows)})
			if err := c.FeedPayload(i, msg); err != nil {
				t.Fatal(err)
			}
		} else {
			feedV2(t, c, i, provFrame(name, 1, total, rows))
		}
	}
	waitUntil(t, "all three nodes committed", func() bool {
		return c.NodeLastSeq(0) >= 1 && c.NodeLastSeq(1) >= 1 && c.NodeLastSeq(2) >= 1
	})

	rep := c.Rollup()
	defer rep.Release()
	if rep.Nodes != 3 || rep.StaleNodes != 0 {
		t.Fatalf("nodes=%d stale=%d, want 3 live", rep.Nodes, rep.StaleNodes)
	}
	if math.Abs(rep.TotalWatts-wantTotal) > 1e-6 {
		t.Fatalf("mixed-fleet total %.9f, want %.9f", rep.TotalWatts, wantTotal)
	}
	var targetSum float64
	for _, w := range rep.PerTarget {
		targetSum += w
	}
	if math.Abs(targetSum-wantTotal) > 1e-6 {
		t.Fatalf("per-target sum %.9f, want %.9f", targetSum, wantTotal)
	}

	for _, n := range c.Stats().Nodes {
		switch n.Name {
		case "v1":
			if n.Round != 0 || n.LagSeconds != 0 {
				t.Fatalf("v1 node carries provenance it never sent: %+v", n)
			}
		case "v2a", "v2b":
			if n.Round != 1 {
				t.Fatalf("v2 node %s lost its round stamp: %+v", n.Name, n)
			}
		}
		if n.State != "healthy" {
			t.Fatalf("node %s state %q, want healthy", n.Name, n.State)
		}
	}
}

// TestCodecFallbackEvent wires a fake old daemon — a listener that ignores
// the provenance capability and answers in version-1 messages — and asserts
// the collector both ingests the frames and journals exactly one
// codec_fallback event for the node.
func TestCodecFallbackEvent(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// An old publisher never looks past the hello; this one reads nothing
		// at all and pushes version-1 messages.
		frame := nodeFrame("old-node", 1, 30, []vmbridge.TargetRow{{Key: "cgroup:app", Watts: 30}})
		for seq := uint64(1); ; seq++ {
			frame.Seq = seq
			msg := vmbridge.AppendBinaryBatch(nil, []vmbridge.VMPowerFrame{frame})
			if _, err := conn.Write(msg); err != nil {
				return
			}
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
	}()

	c, err := New(Config{
		Nodes:      []string{ln.Addr().String()},
		Codec:      vmbridge.CodecBinary,
		StaleAfter: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	waitUntil(t, "frames from the old peer", func() bool { return frames(c, "old-node") >= 1 })
	rep := c.Rollup()
	rep.Release()

	var fallbacks int
	for _, e := range c.Journal().Since(0, 0) {
		if e.Type == EventCodecFallback {
			fallbacks++
			if e.Node != "old-node" {
				t.Fatalf("codec_fallback names %q, want old-node", e.Node)
			}
		}
	}
	if fallbacks != 1 {
		t.Fatalf("journal holds %d codec_fallback events, want exactly 1", fallbacks)
	}
	// The edge stays down on later rounds.
	rep = c.Rollup()
	rep.Release()
	if got := c.Journal().Counts()[EventCodecFallback]; got != 1 {
		t.Fatalf("codec_fallback count grew to %d on a quiet edge", got)
	}
	if hv := c.Health(); len(hv.Nodes) != 1 || !hv.Nodes[0].WireV1 {
		t.Fatalf("health view does not mark the old peer: %+v", hv.Nodes)
	}
}
