// Package collector is the fleet tier of the middleware: one service that
// gathers the per-node power frames of N daemons and rolls them up into
// cluster-wide figures — per-node watts, per-cgroup watts across nodes, and
// whole-fleet totals — behind the same Subscribe/Query/metrics surfaces a
// single daemon offers for its own pipeline.
//
// The design carries the single-host pipeline's hot-path discipline one level
// up. Ingest is a bounded concurrent-gather pool (the telegraf input model):
// one cheap reader goroutine per node link feeds a small per-node drop-oldest
// payload ring, and a fixed pool of workers decodes payloads into each node's
// retained contribution — route keys resolved to dense fleet-global slots
// (core.KeySlots) so the binary-codec steady state allocates nothing per
// frame. Rollup is sharded: S shard workers sweep their subset of nodes into
// epoch-reset accumulators (core.SparseSet) and the driver merges them into a
// pooled, refcounted FleetReport whose maps are cleared, never reallocated —
// steady-state allocations per fleet round depend on the shard count, not on
// how many nodes or targets the fleet carries. A slow or silent node never
// stalls a round: its last contribution is used until it goes stale
// (Config.StaleAfter), then it is skipped and accounted as such.
package collector

import (
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"powerapi/internal/core"
	"powerapi/internal/history"
	"powerapi/internal/obs"
	"powerapi/internal/target"
	"powerapi/internal/vmbridge"
)

// Config shapes a Collector. The zero value is usable: no nodes yet (AddNode
// joins them later), defaults everywhere else.
type Config struct {
	// Nodes are the daemon fleet-publish addresses to gather from.
	Nodes []string
	// Shards is the rollup fan-out width (default 4).
	Shards int
	// Workers bounds the ingest worker pool (default min(8, GOMAXPROCS)).
	Workers int
	// Interval is the fleet round period. Zero disables the internal ticker;
	// rounds then happen only when Rollup is called (tests, benches).
	Interval time.Duration
	// StaleAfter is how long a node's last contribution stays eligible for
	// rollup; beyond it the node is skipped (default 5s).
	StaleAfter time.Duration
	// LagAfter is the health model's lag threshold: a node whose contribution
	// age or provenance ingest lag exceeds it turns lagging (default
	// 2×Interval, or StaleAfter/2 when rounds are driven manually; clamped to
	// StaleAfter).
	LagAfter time.Duration
	// GoneAfter is how long past staleness a node stays "stale" before the
	// health model declares it gone (default 4×StaleAfter).
	GoneAfter time.Duration
	// SpikeFactor flags a node total more than this multiple of its previous
	// fresh value as a power step spike (default 4; values <= 1 mean default).
	SpikeFactor float64
	// JournalCapacity bounds the event journal ring
	// (DefaultJournalCapacity when zero).
	JournalCapacity int
	// Codec selects the wire encoding negotiated with each node
	// (vmbridge.CodecJSON by default; CodecBinary for fleet-scale ingest).
	Codec vmbridge.Codec
	// DialBackoff is the base reconnect pause, growing exponentially with
	// jitter up to an internal cap (default 100ms).
	DialBackoff time.Duration
	// HistoryCapacity is the per-target ring capacity of the fleet history
	// store (history.DefaultCapacity when zero).
	HistoryCapacity int
	// TraceRing is the round-trace ring size (obs.DefaultTraceRing when zero).
	TraceRing int
	// SelfRefWatts is the reference power of one fully-busy core for the
	// collector's own self-power meter; zero disables self metering.
	SelfRefWatts float64
	// Passive disables dialing entirely: node addresses name ingest queues an
	// embedding process feeds itself through FeedPayload (benchmarks, tests).
	Passive bool
	// Logger receives connection lifecycle events (slog.Default when nil).
	Logger *slog.Logger
}

// Collector gathers node frames and periodically rolls the fleet up.
type Collector struct {
	cfg     Config
	log     *slog.Logger
	tracer  *obs.Tracer
	self    *obs.SelfMeter
	hist    *history.Store
	keys    keyTable
	subs    fleetRegistry
	journal *Journal
	e2eHist *obs.Histogram

	outputsMu sync.Mutex
	outputs   []*Output

	nodesMu sync.Mutex
	nodes   []*nodeConn
	byAddr  map[string]*nodeConn

	notify chan *nodeConn // ingest work queue; a node appears at most once

	// Rollup machinery: persistent shard workers plus the driver's reusable
	// scratch, all sized once at start so a round allocates nothing here.
	roundMu    sync.Mutex
	shards     []*rollupShard
	shardDone  chan struct{}
	roundNodes []*nodeConn
	merged     core.SparseSet
	samples    []history.TargetSample
	seq        atomic.Uint64
	lastLive   atomic.Int64
	lastStale  atomic.Int64
	lastTotal  atomic.Uint64 // math.Float64bits

	start     time.Time
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New starts a collector: node links begin dialing immediately, and with a
// non-zero Interval fleet rounds begin ticking.
func New(cfg Config) (*Collector, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Workers <= 0 {
		cfg.Workers = min(8, runtime.GOMAXPROCS(0))
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 5 * time.Second
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 100 * time.Millisecond
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	c := &Collector{
		cfg:       cfg,
		log:       cfg.Logger,
		tracer:    obs.NewTracer(cfg.TraceRing),
		hist:      history.NewStore(cfg.HistoryCapacity),
		byAddr:    make(map[string]*nodeConn),
		notify:    make(chan *nodeConn, 8192),
		shardDone: make(chan struct{}, cfg.Shards),
		journal:   newJournal(cfg.JournalCapacity),
		e2eHist:   &obs.Histogram{},
		start:     time.Now(),
		done:      make(chan struct{}),
	}
	c.tracer.SetRequiredStages(obs.StageRollup, obs.StageFanout)
	if cfg.SelfRefWatts > 0 {
		c.self = obs.NewSelfMeter(cfg.SelfRefWatts, runtime.NumCPU())
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &rollupShard{idx: i, wake: make(chan struct{}, 1)}
		c.shards = append(c.shards, sh)
		c.wg.Add(1)
		go c.shardLoop(sh)
	}
	for i := 0; i < cfg.Workers; i++ {
		c.wg.Add(1)
		go c.worker()
	}
	for _, addr := range cfg.Nodes {
		if err := c.AddNode(addr); err != nil {
			c.Close()
			return nil, err
		}
	}
	if cfg.Interval > 0 {
		c.wg.Add(1)
		go c.tickLoop()
	}
	return c, nil
}

func (c *Collector) tickLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
			c.Rollup().Release()
		}
	}
}

// AddNode joins one daemon address to the gather set; its link dials (and
// keeps redialing) in the background — unless the collector is passive, in
// which case the node only names an ingest queue for FeedPayload. Adding an
// address twice is an error.
func (c *Collector) AddNode(addr string) error {
	n := &nodeConn{addr: addr}
	c.nodesMu.Lock()
	if _, dup := c.byAddr[addr]; dup {
		c.nodesMu.Unlock()
		return fmt.Errorf("collector: node %s already added", addr)
	}
	c.byAddr[addr] = n
	c.nodes = append(c.nodes, n)
	c.nodesMu.Unlock()
	c.journal.append(Event{Type: EventNodeJoin, Node: addr, Detail: "node added to gather set"})
	if !c.cfg.Passive {
		c.wg.Add(1)
		go c.nodeLoop(n)
	}
	return nil
}

// RemoveNode detaches one daemon address: its link closes, its loop exits,
// and its watts leave the rollup at the next fleet round.
func (c *Collector) RemoveNode(addr string) error {
	c.nodesMu.Lock()
	n, ok := c.byAddr[addr]
	if ok {
		delete(c.byAddr, addr)
		for i, cand := range c.nodes {
			if cand == n {
				c.nodes = append(c.nodes[:i], c.nodes[i+1:]...)
				break
			}
		}
	}
	c.nodesMu.Unlock()
	if !ok {
		return fmt.Errorf("collector: node %s not found", addr)
	}
	n.retire()
	name := addr
	n.mu.Lock()
	if n.name != "" {
		name = n.name
	}
	n.mu.Unlock()
	c.journal.append(Event{Type: EventNodeLeave, Node: name, Detail: "node removed from gather set"})
	return nil
}

// Tracer returns the collector's round tracer (rollup/fanout spans, ingest
// histogram).
func (c *Collector) Tracer() *obs.Tracer { return c.tracer }

// Self returns the collector's self-power meter (nil when disabled).
func (c *Collector) Self() *obs.SelfMeter { return c.self }

// Query runs a fleet history query: node, cgroup and machine targets recorded
// once per fleet round, with timestamps measured since the collector started.
func (c *Collector) Query(q history.Query) ([]history.Stats, error) {
	return c.hist.Query(q)
}

// NodeStats is the observable state of one gathered node link.
type NodeStats struct {
	// Addr is the dialed fleet-publish address.
	Addr string `json:"addr"`
	// Name is the node name learned from its frames ("" before the first).
	Name string `json:"name,omitempty"`
	// Connected reports whether the link is currently up.
	Connected bool `json:"connected"`
	// Watts is the node's last committed total.
	Watts float64 `json:"watts"`
	// AgeSeconds is how long ago the last contribution was committed (-1
	// before the first).
	AgeSeconds float64 `json:"ageSeconds"`
	// Stale reports whether the rollup is currently skipping the node.
	Stale bool `json:"stale"`
	// LastSeq is the last accepted frame sequence number.
	LastSeq uint64 `json:"lastSeq"`
	// Frames counts accepted frame commits; Bytes counts wire bytes read.
	Frames uint64 `json:"frames"`
	Bytes  uint64 `json:"bytes"`
	// DecodeErrors counts undecodable payloads; DroppedPayloads counts
	// payloads shed by the node's drop-oldest ring; Reconnects counts link
	// re-establishments; StaleSkips counts rounds that skipped the node.
	DecodeErrors    uint64 `json:"decodeErrors"`
	DroppedPayloads uint64 `json:"droppedPayloads"`
	Reconnects      uint64 `json:"reconnects"`
	StaleSkips      uint64 `json:"staleSkips"`
	// State is the node's health classification as of the last round.
	State string `json:"state"`
	// LagSeconds/SkewSeconds are the provenance-derived link estimates (zero
	// without provenance-stamped frames); Round is the node's last frame
	// round number; SeqGaps counts frames lost to sequence gaps; Violations
	// counts contract violation edges.
	LagSeconds  float64 `json:"lagSeconds"`
	SkewSeconds float64 `json:"skewSeconds"`
	Round       uint64  `json:"round,omitempty"`
	SeqGaps     uint64  `json:"seqGaps"`
	Violations  uint64  `json:"violations"`
}

// Stats is the one-call observability snapshot of a collector.
type Stats struct {
	// Rounds counts completed fleet rounds.
	Rounds uint64 `json:"rounds"`
	// LiveNodes/StaleNodes are the last round's partial-success accounting.
	LiveNodes  int `json:"liveNodes"`
	StaleNodes int `json:"staleNodes"`
	// TotalWatts is the last round's fleet total.
	TotalWatts float64 `json:"totalWatts"`
	// Keys is how many distinct route keys the fleet has ever reported.
	Keys int `json:"keys"`
	// Nodes is the per-link state, in join order.
	Nodes []NodeStats `json:"nodes"`
	// Subscriptions mirrors the monitor's per-subscription counters.
	Subscriptions []core.SubscriptionInfo `json:"subscriptions,omitempty"`
	// Self is the collector's own measured power draw.
	Self core.SelfStats `json:"self"`
	// Events is the per-type journal append tally; EventsDropped counts
	// events the bounded ring overflowed away.
	Events        map[string]uint64 `json:"events,omitempty"`
	EventsDropped uint64            `json:"eventsDropped"`
	// Outputs is the push-output layer's per-sink state.
	Outputs []OutputStats `json:"outputs,omitempty"`
}

// Stats snapshots the collector. Cold path; allocates freely.
func (c *Collector) Stats() Stats {
	s := Stats{
		Rounds:        c.seq.Load(),
		LiveNodes:     int(c.lastLive.Load()),
		StaleNodes:    int(c.lastStale.Load()),
		TotalWatts:    loadFloat(&c.lastTotal),
		Keys:          c.keys.len(),
		Subscriptions: c.subs.stats(),
		EventsDropped: c.journal.Dropped(),
	}
	counts := c.journal.Counts()
	for t, n := range counts {
		if n > 0 {
			if s.Events == nil {
				s.Events = make(map[string]uint64, len(counts))
			}
			s.Events[EventType(t).String()] = n
		}
	}
	c.outputsMu.Lock()
	for _, o := range c.outputs {
		s.Outputs = append(s.Outputs, o.Stats())
	}
	c.outputsMu.Unlock()
	if c.self != nil {
		c.self.Sample()
		s.Self = core.SelfStats{Enabled: c.self.Supported(), Watts: c.self.Watts(), CPUSeconds: c.self.CPUSeconds()}
	}
	now := c.tracer.Now()
	stale := int64(c.cfg.StaleAfter)
	c.nodesMu.Lock()
	nodes := append([]*nodeConn(nil), c.nodes...)
	c.nodesMu.Unlock()
	for _, n := range nodes {
		n.mu.Lock()
		ns := NodeStats{
			Addr:       n.addr,
			Name:       n.name,
			Watts:      n.total,
			AgeSeconds: -1,
			Stale:      n.lastWall == 0 || now-n.lastWall > stale,
			LastSeq:    n.lastSeq,
		}
		if n.lastWall != 0 {
			ns.AgeSeconds = float64(now-n.lastWall) / 1e9
		}
		if n.lastEmit != 0 && n.hasOffset {
			ns.LagSeconds = float64(n.lastOffset-n.minOffset) / 1e9
			ns.SkewSeconds = (n.ewmaOffset - float64(n.baseOffset)) / 1e9
		}
		ns.Round = n.lastRound
		ns.SeqGaps = n.seqGaps
		n.mu.Unlock()
		ns.State = NodeState(n.state.Load()).String()
		ns.Violations = n.violations.Load()
		ns.Connected = n.connected.Load()
		ns.Frames = n.frames.Load()
		ns.Bytes = n.bytes.Load()
		ns.DecodeErrors = n.decodeErrs.Load()
		ns.DroppedPayloads = n.ring.dropped.Load()
		ns.Reconnects = n.reconnects.Load()
		ns.StaleSkips = n.staleSkips.Load()
		s.Nodes = append(s.Nodes, ns)
	}
	return s
}

// Close tears the collector down: links close, workers drain, subscriptions
// close. Idempotent.
func (c *Collector) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		c.nodesMu.Lock()
		nodes := append([]*nodeConn(nil), c.nodes...)
		c.nodesMu.Unlock()
		for _, n := range nodes {
			n.retire()
		}
		c.wg.Wait()
		c.outputsMu.Lock()
		outs := append([]*Output(nil), c.outputs...)
		c.outputsMu.Unlock()
		for _, o := range outs {
			o.Close()
		}
		c.subs.closeAll()
	})
	return nil
}

func (c *Collector) closed() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// fleetTarget resolves a route-key slot to the target recorded in fleet
// history.
func (c *Collector) fleetTarget(slot int32) target.Target { return c.keys.target(slot) }
