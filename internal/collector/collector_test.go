package collector

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"
	"time"

	"powerapi/internal/core"
	"powerapi/internal/vmbridge"
)

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// nodeFrame builds one node frame the way the daemon's NodePublisher does.
func nodeFrame(node string, seq uint64, total float64, rows []vmbridge.TargetRow) vmbridge.VMPowerFrame {
	return vmbridge.VMPowerFrame{
		VM:             node,
		Seq:            seq,
		Timestamp:      time.Duration(seq) * time.Second,
		Watts:          total,
		HostTotalWatts: total,
		SourceMode:     "simulated",
		Rows:           rows,
	}
}

// frames returns how many frame commits the collector has accepted from the
// named node.
func frames(c *Collector, name string) uint64 {
	for _, n := range c.Stats().Nodes {
		if n.Name == name {
			return n.Frames
		}
	}
	return 0
}

func TestFleetConservation(t *testing.T) {
	for _, codec := range []vmbridge.Codec{vmbridge.CodecJSON, vmbridge.CodecBinary} {
		t.Run(codec.String(), func(t *testing.T) {
			const nodes = 3
			pubs := make([]*vmbridge.TCPPublisher, nodes)
			addrs := make([]string, nodes)
			for i := range pubs {
				pub, err := vmbridge.ListenTCP("127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				defer pub.Close()
				pubs[i], addrs[i] = pub, pub.Addr().String()
			}
			c, err := New(Config{Nodes: addrs, Codec: codec, Shards: 2, StaleAfter: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for _, pub := range pubs {
				p := pub
				waitUntil(t, "collector connected", func() bool { return p.Connections() == 1 })
			}

			// Each node reports a shared cgroup ("cgroup:web") plus one of its
			// own, so the fleet rollup must both sum across nodes and keep
			// per-node keys apart.
			var wantTotal float64
			for i, pub := range pubs {
				total := 10.0 + float64(i)
				wantTotal += total
				rows := []vmbridge.TargetRow{
					{Key: "cgroup:web", Watts: 4.0 + float64(i)},
					{Key: fmt.Sprintf("cgroup:own-%d", i), Watts: total - 4.0 - float64(i)},
				}
				if err := pub.SendBatch([]vmbridge.VMPowerFrame{nodeFrame(fmt.Sprintf("node-%d", i), 1, total, rows)}); err != nil {
					t.Fatal(err)
				}
			}
			for i := range pubs {
				name := fmt.Sprintf("node-%d", i)
				waitUntil(t, "frame from "+name, func() bool { return frames(c, name) >= 1 })
			}

			rep := c.Rollup()
			defer rep.Release()
			if rep.Nodes != nodes || rep.StaleNodes != 0 {
				t.Fatalf("nodes = %d stale = %d, want %d live", rep.Nodes, rep.StaleNodes, nodes)
			}
			if math.Abs(rep.TotalWatts-wantTotal) > 1e-6 {
				t.Fatalf("fleet total %.9f, want %.9f", rep.TotalWatts, wantTotal)
			}
			var nodeSum float64
			for _, w := range rep.PerNode {
				nodeSum += w
			}
			if math.Abs(nodeSum-wantTotal) > 1e-6 {
				t.Fatalf("per-node sum %.9f, want %.9f", nodeSum, wantTotal)
			}
			if got, want := rep.PerTarget["cgroup:web"], 4.0+5.0+6.0; math.Abs(got-want) > 1e-6 {
				t.Fatalf("cgroup:web across nodes = %.9f, want %.9f", got, want)
			}
			var targetSum float64
			for _, w := range rep.PerTarget {
				targetSum += w
			}
			if math.Abs(targetSum-wantTotal) > 1e-6 {
				t.Fatalf("per-target sum %.9f, want %.9f (rows must conserve the node totals)", targetSum, wantTotal)
			}
		})
	}
}

func TestNodeChurn(t *testing.T) {
	pubA, err := vmbridge.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pubA.Close()
	pubB, err := vmbridge.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := pubB.Addr().String()

	c, err := New(Config{
		Nodes:      []string{pubA.Addr().String(), addrB},
		Codec:      vmbridge.CodecBinary,
		StaleAfter: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitUntil(t, "both nodes connected", func() bool { return pubA.Connections() == 1 && pubB.Connections() == 1 })

	send := func(pub *vmbridge.TCPPublisher, node string, seq uint64, watts float64) {
		t.Helper()
		rows := []vmbridge.TargetRow{{Key: "cgroup:app", Watts: watts}}
		if err := pub.SendBatch([]vmbridge.VMPowerFrame{nodeFrame(node, seq, watts, rows)}); err != nil {
			t.Fatal(err)
		}
	}
	send(pubA, "alpha", 1, 30)
	send(pubB, "beta", 1, 20)
	waitUntil(t, "both frames", func() bool { return frames(c, "alpha") >= 1 && frames(c, "beta") >= 1 })

	rep := c.Rollup()
	if rep.Nodes != 2 || math.Abs(rep.TotalWatts-50) > 1e-6 {
		t.Fatalf("round 1: nodes=%d total=%.3f, want 2 nodes 50 W", rep.Nodes, rep.TotalWatts)
	}
	rep.Release()

	// beta leaves: its publisher dies, its last contribution ages out, and
	// the fleet total must shed its watts — no stale node watts.
	if err := pubB.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // past StaleAfter
	send(pubA, "alpha", 2, 31)
	waitUntil(t, "fresh alpha frame", func() bool { return frames(c, "alpha") >= 2 })
	rep = c.Rollup()
	if rep.Nodes != 1 || rep.StaleNodes != 1 {
		t.Fatalf("after leave: live=%d stale=%d, want 1/1", rep.Nodes, rep.StaleNodes)
	}
	if math.Abs(rep.TotalWatts-31) > 1e-6 {
		t.Fatalf("after leave: total=%.3f, want 31 (beta's watts must not linger)", rep.TotalWatts)
	}
	if _, ok := rep.PerNode["beta"]; ok {
		t.Fatal("stale node beta still present in PerNode")
	}
	rep.Release()

	// beta rejoins on the same address with a restarted sequence; the
	// collector must reconnect and accept the fresh numbering.
	pubB, err = vmbridge.ListenTCP(addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer pubB.Close()
	waitUntil(t, "beta reconnect", func() bool { return pubB.Connections() == 1 })
	before := frames(c, "beta")
	send(pubB, "beta", 1, 22)
	waitUntil(t, "beta frame after rejoin", func() bool { return frames(c, "beta") > before })
	send(pubA, "alpha", 3, 31)
	waitUntil(t, "alpha frame", func() bool { return frames(c, "alpha") >= 3 })
	rep = c.Rollup()
	if rep.Nodes != 2 || math.Abs(rep.TotalWatts-53) > 1e-6 {
		t.Fatalf("after rejoin: nodes=%d total=%.3f, want 2 nodes 53 W", rep.Nodes, rep.TotalWatts)
	}
	rep.Release()

	// Explicit membership removal takes the node out of the very next round,
	// stale or not.
	if err := c.RemoveNode(pubA.Addr().String()); err != nil {
		t.Fatal(err)
	}
	rep = c.Rollup()
	if rep.Nodes != 1 {
		t.Fatalf("after RemoveNode: nodes=%d, want 1", rep.Nodes)
	}
	if _, ok := rep.PerNode["alpha"]; ok {
		t.Fatal("removed node alpha still present in PerNode")
	}
	rep.Release()
}

func TestSubscribeFanout(t *testing.T) {
	c, err := New(Config{Codec: vmbridge.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe(SubscribeOptions{Name: "test", Policy: core.Block})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	rep := c.Rollup()
	rep.Release()
	got := <-sub.C()
	if got.Seq != rep.Seq {
		t.Fatalf("subscriber saw round %d, want %d", got.Seq, rep.Seq)
	}
	clone := got.Clone()
	got.Release()
	if clone.Seq != rep.Seq {
		t.Fatalf("clone seq = %d, want %d", clone.Seq, rep.Seq)
	}
}

// TestPassiveFeed exercises the in-process feeding hooks the fleet bench is
// built on: a passive collector dials nothing, FeedPayload pushes encoded wire
// payloads through the real queue/worker/commit path, and NodeLastSeq is the
// poll that tells the feeder its frames have landed.
func TestPassiveFeed(t *testing.T) {
	for _, codec := range []vmbridge.Codec{vmbridge.CodecBinary, vmbridge.CodecJSON} {
		t.Run(codec.String(), func(t *testing.T) {
			c, err := New(Config{
				Nodes:      []string{"bench://a", "bench://b"},
				Passive:    true,
				Codec:      codec,
				StaleAfter: time.Hour,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			encode := func(node string, seq uint64, watts float64) []byte {
				frame := nodeFrame(node, seq, watts, []vmbridge.TargetRow{{Key: "cgroup:app", Watts: watts}})
				if codec == vmbridge.CodecBinary {
					// FeedPayload wants the whole wire message, header included.
					return vmbridge.AppendBinaryBatch(nil, []vmbridge.VMPowerFrame{frame})
				}
				line, err := json.Marshal(frame)
				if err != nil {
					t.Fatal(err)
				}
				return append(line, '\n')
			}
			if err := c.FeedPayload(0, encode("a", 1, 12)); err != nil {
				t.Fatal(err)
			}
			if err := c.FeedPayload(1, encode("b", 1, 30)); err != nil {
				t.Fatal(err)
			}
			waitUntil(t, "both feeds committed", func() bool {
				return c.NodeLastSeq(0) >= 1 && c.NodeLastSeq(1) >= 1
			})

			rep := c.Rollup()
			defer rep.Release()
			if rep.Nodes != 2 || math.Abs(rep.TotalWatts-42) > 1e-6 {
				t.Fatalf("nodes=%d total=%.3f, want 2 nodes 42 W", rep.Nodes, rep.TotalWatts)
			}
			if got := rep.PerTarget["cgroup:app"]; math.Abs(got-42) > 1e-6 {
				t.Fatalf("cgroup:app = %.3f, want 42 (summed across fed nodes)", got)
			}

			if err := c.FeedPayload(2, nil); err == nil {
				t.Fatal("FeedPayload(2) on a 2-node collector should fail")
			}
			if got := c.NodeLastSeq(-1); got != 0 {
				t.Fatalf("NodeLastSeq(-1) = %d, want 0", got)
			}
		})
	}
}

// TestIngestAllocationFlat drives the binary ingest path directly and asserts
// the steady state allocates nothing per payload: keys interned, buffers
// ping-ponging, map probes on byte slices.
func TestIngestAllocationFlat(t *testing.T) {
	c, err := New(Config{Codec: vmbridge.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := &nodeConn{addr: "direct"}

	const rows = 256
	frame := nodeFrame("bench-node", 0, 100, make([]vmbridge.TargetRow, rows))
	for i := range frame.Rows {
		frame.Rows[i] = vmbridge.TargetRow{Key: fmt.Sprintf("cgroup:svc-%03d", i), Watts: 100.0 / rows}
	}
	batch := []vmbridge.VMPowerFrame{frame}
	var scratch []byte
	var seq uint64
	ingestOnce := func() {
		seq++
		batch[0].Seq = seq
		// Provenance-stamped version-2 frames: the steady-state claim must
		// hold with the new fields decoded and the offset tracking live.
		batch[0].EmitMono = time.Duration(seq) * time.Millisecond
		batch[0].Round = seq
		batch[0].TraceID = vmbridge.FrameTraceID("bench-node", seq)
		scratch = vmbridge.AppendBinaryBatchVersion(scratch[:0], batch, vmbridge.BinaryVersionProvenance)
		// Skip magic + length: the wire framing ReadBinaryMessageVersion strips.
		c.ingestBinary(n, scratch[vmbridge.BinaryMessageHeader:], vmbridge.BinaryVersionProvenance)
	}
	for i := 0; i < 10; i++ {
		ingestOnce() // warm: intern keys, grow buffers
	}
	avg := testing.AllocsPerRun(200, ingestOnce)
	if avg > 0.5 {
		t.Fatalf("binary ingest allocates %.2f allocs/payload in steady state, want 0", avg)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.lastSeq != seq || len(n.slots) != rows {
		t.Fatalf("ingest state: lastSeq=%d (want %d), %d slots (want %d)", n.lastSeq, seq, len(n.slots), rows)
	}
}

// TestRollupAllocationFlat asserts steady-state allocations per fleet round
// do not grow with the node count — the tentpole's core claim.
func TestRollupAllocationFlat(t *testing.T) {
	measure := func(nodes int) float64 {
		// Small history capacity so the per-target rings fill during warm-up;
		// their lazy growth is a warm-up cost, not steady state.
		c, err := New(Config{Codec: vmbridge.CodecBinary, Shards: 4, StaleAfter: time.Hour, HistoryCapacity: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := 0; i < nodes; i++ {
			n := &nodeConn{addr: fmt.Sprintf("fake-%d", i)}
			frame := nodeFrame(fmt.Sprintf("node-%04d", i), 1, 50, []vmbridge.TargetRow{
				{Key: "cgroup:web", Watts: 30},
				{Key: fmt.Sprintf("cgroup:own-%04d", i), Watts: 20},
			})
			frame.EmitMono = time.Millisecond
			frame.Round = 1
			frame.TraceID = vmbridge.FrameTraceID(frame.VM, 1)
			scratch := vmbridge.AppendBinaryBatchVersion(nil, []vmbridge.VMPowerFrame{frame}, vmbridge.BinaryVersionProvenance)
			c.ingestBinary(n, scratch[vmbridge.BinaryMessageHeader:], vmbridge.BinaryVersionProvenance)
			c.nodesMu.Lock()
			c.nodes = append(c.nodes, n)
			c.nodesMu.Unlock()
		}
		for i := 0; i < 12; i++ {
			c.Rollup().Release() // warm the pooled report, scratch, history rings
		}
		return testing.AllocsPerRun(50, func() { c.Rollup().Release() })
	}
	small, large := measure(16), measure(256)
	t.Logf("allocs/round: 16 nodes %.1f, 256 nodes %.1f", small, large)
	if large > small+8 {
		t.Fatalf("allocs/round grew with node count: %.1f at 16 nodes vs %.1f at 256", small, large)
	}
}
