package collector

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"powerapi/internal/core"
)

// The push-output layer turns the collector from a poll-only surface into a
// publisher: each configured output tails the fleet — one JSON document per
// fleet round plus one per journal event — batches documents, and pushes the
// batches into a pluggable Sink with bounded queuing and capped-backoff
// retry. The layer makes the same load-shedding promise as every other stage
// here: a slow or dead sink never blocks a fleet round; it costs queued
// batches, oldest first, and a counter says how many were lost. Delivery is
// at-least-once per surviving batch — a sink that accepts a prefix of a batch
// slice (partial success) only sees the unacked suffix again, never a
// re-send of what it acknowledged.

// Sink is one push destination. WriteBatch receives a slice of encoded
// documents (each one JSON object, no trailing newline) and reports how many
// leading documents it durably accepted: on error the output retries the
// unacked suffix, so a sink must never claim documents it may have lost.
// Sinks are driven by a single goroutine; they need no internal locking.
type Sink interface {
	Name() string
	WriteBatch(docs [][]byte) (accepted int, err error)
	Close() error
}

// OutputConfig shapes one push output.
type OutputConfig struct {
	// BatchSize caps documents per WriteBatch call (default 64).
	BatchSize int
	// FlushEvery bounds how long a partial batch waits before pushing
	// (default 1s).
	FlushEvery time.Duration
	// QueueDocs bounds the pending-document queue; beyond it the oldest
	// documents are shed (default 4096).
	QueueDocs int
	// RetryBase is the first retry pause, doubling per consecutive failure up
	// to RetryCap (defaults 200ms and 10s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Events includes journal events in the stream (on by default through
	// the constructor; set by AddOutput callers).
	Events bool
	// Rounds includes fleet-round summaries in the stream.
	Rounds bool
}

func (c *OutputConfig) fill() {
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = time.Second
	}
	if c.QueueDocs <= 0 {
		c.QueueDocs = 4096
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 200 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 10 * time.Second
	}
}

// OutputStats is one push output's observable state.
type OutputStats struct {
	// Sink is the sink's self-reported name.
	Sink string `json:"sink"`
	// Batches and Docs count successfully acknowledged pushes.
	Batches uint64 `json:"batches"`
	Docs    uint64 `json:"docs"`
	// Retries counts WriteBatch errors; ShedDocs counts documents dropped by
	// the bounded queue while the sink was down or slow.
	Retries  uint64 `json:"retries"`
	ShedDocs uint64 `json:"shedDocs"`
	// Queued is the current pending-document depth.
	Queued int `json:"queued"`
	// LastError is the most recent sink error ("" if the last push worked).
	LastError string `json:"lastError,omitempty"`
}

// Output is one running push output: a subscription-fed encoder goroutine
// and a sink-driving delivery goroutine joined by a bounded queue.
type Output struct {
	sink Sink
	cfg  OutputConfig
	c    *Collector
	sub  *Subscription

	mu    sync.Mutex
	queue [][]byte
	wake  chan struct{}
	done  chan struct{}

	batches  atomic.Uint64
	docs     atomic.Uint64
	retries  atomic.Uint64
	shed     atomic.Uint64
	lastErr  atomic.Value // string
	wg       sync.WaitGroup
	closeOne sync.Once
}

// AddOutput attaches a sink to the collector's push-output layer and starts
// delivering. The output owns the sink: closing the output (or the collector)
// closes it.
func (c *Collector) AddOutput(sink Sink, cfg OutputConfig) (*Output, error) {
	if sink == nil {
		return nil, errors.New("collector: nil sink")
	}
	cfg.fill()
	if !cfg.Rounds && !cfg.Events {
		cfg.Rounds, cfg.Events = true, true
	}
	o := &Output{
		sink: sink,
		cfg:  cfg,
		c:    c,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if cfg.Rounds {
		sub, err := c.Subscribe(SubscribeOptions{
			Name:   "output:" + sink.Name(),
			Policy: core.DropOldest,
			Buffer: 4,
		})
		if err != nil {
			return nil, err
		}
		o.sub = sub
	}
	c.outputsMu.Lock()
	c.outputs = append(c.outputs, o)
	c.outputsMu.Unlock()
	o.wg.Add(2)
	go o.feedLoop()
	go o.pushLoop()
	return o, nil
}

// roundDoc is the JSON document one fleet round becomes on a push output.
type roundDoc struct {
	Kind       string             `json:"kind"`
	Seq        uint64             `json:"seq"`
	Wall       time.Time          `json:"wall"`
	TotalWatts float64            `json:"totalWatts"`
	Nodes      int                `json:"nodes"`
	StaleNodes int                `json:"staleNodes"`
	PerNode    map[string]float64 `json:"perNode,omitempty"`
}

// eventDoc wraps one journal event for a push output.
type eventDoc struct {
	Kind  string    `json:"kind"`
	Event EventView `json:"event"`
}

// feedLoop encodes rounds and journal events into queue documents. Journal
// events are tailed by cursor on every round tick (and on a flush-interval
// ticker when rounds are off), so events reach sinks even between rounds.
func (o *Output) feedLoop() {
	defer o.wg.Done()
	var cursor uint64
	ticker := time.NewTicker(o.cfg.FlushEvery)
	defer ticker.Stop()
	var roundCh <-chan *FleetReport
	if o.sub != nil {
		roundCh = o.sub.C()
	}
	for {
		select {
		case <-o.done:
			return
		case rep, ok := <-roundCh:
			if !ok {
				return
			}
			doc, err := json.Marshal(roundDoc{
				Kind: "fleet_round", Seq: rep.Seq, Wall: rep.Wall,
				TotalWatts: rep.TotalWatts, Nodes: rep.Nodes, StaleNodes: rep.StaleNodes,
				PerNode: rep.PerNode,
			})
			rep.Release()
			if err == nil {
				o.enqueue(doc)
			}
			cursor = o.drainJournal(cursor)
		case <-ticker.C:
			cursor = o.drainJournal(cursor)
		}
	}
}

func (o *Output) drainJournal(cursor uint64) uint64 {
	if !o.cfg.Events {
		return cursor
	}
	for _, e := range o.c.journal.Since(cursor, 0) {
		cursor = e.Seq
		if doc, err := json.Marshal(eventDoc{Kind: "event", Event: e.View()}); err == nil {
			o.enqueue(doc)
		}
	}
	return cursor
}

// enqueue appends one document, shedding the oldest beyond the bound.
func (o *Output) enqueue(doc []byte) {
	o.mu.Lock()
	if len(o.queue) >= o.cfg.QueueDocs {
		drop := len(o.queue) - o.cfg.QueueDocs + 1
		o.queue = o.queue[:copy(o.queue, o.queue[drop:])]
		o.shed.Add(uint64(drop))
	}
	o.queue = append(o.queue, doc)
	o.mu.Unlock()
	select {
	case o.wake <- struct{}{}:
	default:
	}
}

// take moves up to BatchSize oldest documents out of the queue.
func (o *Output) take(into [][]byte) [][]byte {
	o.mu.Lock()
	n := min(len(o.queue), o.cfg.BatchSize)
	into = append(into[:0], o.queue[:n]...)
	o.queue = o.queue[:copy(o.queue, o.queue[n:])]
	o.mu.Unlock()
	return into
}

// requeue returns unacknowledged documents to the queue front, so retry order
// stays oldest-first. Documents beyond the bound shed from the *returned*
// batch (they are the oldest data present).
func (o *Output) requeue(batch [][]byte) {
	o.mu.Lock()
	room := o.cfg.QueueDocs - len(o.queue)
	if room < len(batch) {
		o.shed.Add(uint64(len(batch) - room))
		batch = batch[len(batch)-room:]
	}
	if len(batch) > 0 {
		o.queue = append(o.queue, batch...)
		copy(o.queue[len(batch):], o.queue[:len(o.queue)-len(batch)])
		copy(o.queue, batch)
	}
	o.mu.Unlock()
}

// pushLoop drives the sink: batch, write, retry the unacked suffix with
// capped exponential backoff. One goroutine per output, so a dead sink costs
// its own queue only.
func (o *Output) pushLoop() {
	defer o.wg.Done()
	backoff := o.cfg.RetryBase
	var batch [][]byte
	for {
		batch = o.take(batch)
		if len(batch) == 0 {
			select {
			case <-o.done:
				// Drain: one final take so documents enqueued since the last
				// pass still push before the sink closes.
				if batch = o.take(batch); len(batch) == 0 {
					return
				}
			case <-o.wake:
				continue
			}
		}
		for len(batch) > 0 {
			accepted, err := o.sink.WriteBatch(batch)
			if accepted < 0 {
				accepted = 0
			}
			if accepted > len(batch) {
				accepted = len(batch)
			}
			if accepted > 0 {
				o.batches.Add(1)
				o.docs.Add(uint64(accepted))
				batch = batch[accepted:]
			}
			if err == nil && len(batch) == 0 {
				o.lastErr.Store("")
				backoff = o.cfg.RetryBase
				break
			}
			// Partial success or error: retry the unacked suffix after a
			// pause, unless the output is closing — then requeue and exit so
			// Close never spins on a dead sink.
			o.retries.Add(1)
			if err != nil {
				o.lastErr.Store(err.Error())
			}
			select {
			case <-o.done:
				o.requeue(batch)
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > o.cfg.RetryCap {
				backoff = o.cfg.RetryCap
			}
		}
	}
}

// Stats snapshots the output.
func (o *Output) Stats() OutputStats {
	o.mu.Lock()
	queued := len(o.queue)
	o.mu.Unlock()
	st := OutputStats{
		Sink:     o.sink.Name(),
		Batches:  o.batches.Load(),
		Docs:     o.docs.Load(),
		Retries:  o.retries.Load(),
		ShedDocs: o.shed.Load(),
		Queued:   queued,
	}
	if v, _ := o.lastErr.Load().(string); v != "" {
		st.LastError = v
	}
	return st
}

// Close stops the output — pending documents get one final push attempt, no
// retry loop — and closes the sink. Idempotent.
func (o *Output) Close() error {
	var err error
	o.closeOne.Do(func() {
		if o.sub != nil {
			o.sub.Close()
		}
		close(o.done)
		o.wg.Wait()
		err = o.sink.Close()
		o.c.outputsMu.Lock()
		for i, cand := range o.c.outputs {
			if cand == o {
				o.c.outputs = append(o.c.outputs[:i], o.c.outputs[i+1:]...)
				break
			}
		}
		o.c.outputsMu.Unlock()
	})
	return err
}

// JSONLSink streams documents as JSON lines to a TCP endpoint or an
// append-only file. The TCP flavour redials lazily: a write failure closes
// the connection, reports zero accepted, and the next attempt reconnects —
// the output's retry loop supplies the pacing.
type JSONLSink struct {
	name string
	addr string // "tcp" scheme when set
	path string // file path when set

	conn net.Conn
	file *os.File
	buf  bytes.Buffer
}

// NewJSONLTCPSink pushes JSON lines over TCP to addr ("host:port").
func NewJSONLTCPSink(addr string) *JSONLSink {
	return &JSONLSink{name: "jsonl+tcp://" + addr, addr: addr}
}

// NewJSONLFileSink appends JSON lines to the file at path, creating it if
// missing. The file opens lazily on first write.
func NewJSONLFileSink(path string) *JSONLSink {
	return &JSONLSink{name: "jsonl+file://" + path, path: path}
}

func (s *JSONLSink) Name() string { return s.name }

func (s *JSONLSink) writer() (io.Writer, error) {
	if s.path != "" {
		if s.file == nil {
			f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			s.file = f
		}
		return s.file, nil
	}
	if s.conn == nil {
		conn, err := net.DialTimeout("tcp", s.addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		s.conn = conn
	}
	return s.conn, nil
}

// WriteBatch writes each document as one line. Lines are written one syscall
// per batch (buffered), but acceptance is all-or-nothing per batch: a broken
// pipe mid-buffer cannot tell which lines landed, so the sink claims none and
// the retry re-sends the whole batch — at-least-once, never silently lossy.
func (s *JSONLSink) WriteBatch(docs [][]byte) (int, error) {
	w, err := s.writer()
	if err != nil {
		return 0, err
	}
	s.buf.Reset()
	for _, d := range docs {
		s.buf.Write(d)
		s.buf.WriteByte('\n')
	}
	if _, err := w.Write(s.buf.Bytes()); err != nil {
		if s.conn != nil {
			s.conn.Close()
			s.conn = nil
		}
		return 0, err
	}
	return len(docs), nil
}

func (s *JSONLSink) Close() error {
	if s.conn != nil {
		return s.conn.Close()
	}
	if s.file != nil {
		return s.file.Close()
	}
	return nil
}

// WebhookSink POSTs each batch as one JSON array to a fixed URL. Any 2xx
// response acknowledges the whole batch; anything else (or a transport
// error) acknowledges nothing.
type WebhookSink struct {
	url    string
	client *http.Client
}

// NewWebhookSink pushes batches to url with a per-request timeout.
func NewWebhookSink(url string, timeout time.Duration) *WebhookSink {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &WebhookSink{url: url, client: &http.Client{Timeout: timeout}}
}

func (s *WebhookSink) Name() string { return "webhook " + s.url }

func (s *WebhookSink) WriteBatch(docs [][]byte) (int, error) {
	var body bytes.Buffer
	body.WriteByte('[')
	for i, d := range docs {
		if i > 0 {
			body.WriteByte(',')
		}
		body.Write(d)
	}
	body.WriteByte(']')
	resp, err := s.client.Post(s.url, "application/json", &body)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return 0, fmt.Errorf("webhook: status %s", resp.Status)
	}
	return len(docs), nil
}

func (s *WebhookSink) Close() error { return nil }
