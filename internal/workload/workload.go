// Package workload defines the synthetic workloads that drive the machine
// simulator. Two roles mirror the paper:
//
//   - calibration workloads (CPU-intensive and memory-intensive stress at
//     several utilisation levels), used by the Figure 1 learning process to
//     expose the relationship between the executed operation mix and power;
//   - evaluation workloads, chiefly a SPECjbb2013-like phased, memory
//     intensive benchmark used for the Figure 3 preliminary experiment.
//
// A workload is a Generator that, asked at a simulated instant, answers with
// a Demand: how much CPU it wants and with which micro-architectural mix
// (instructions per cycle, cache references, cache misses, memory-bound
// stalls). The machine engine turns demands into executed work and hardware
// counter increments.
package workload

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Demand describes what a process asks of the CPU over one scheduling tick.
type Demand struct {
	// Utilization is the fraction of one logical CPU the process wants, in
	// [0, 1].
	Utilization float64
	// IPC is the instructions-per-cycle the workload would achieve when it
	// runs alone on a core at nominal frequency.
	IPC float64
	// CacheRefsPerKiloInstr is the number of last-level-cache references per
	// 1000 retired instructions.
	CacheRefsPerKiloInstr float64
	// CacheMissRatio is the fraction of cache references that miss, in [0,1].
	CacheMissRatio float64
	// MemoryBoundFraction is the fraction of cycles stalled on memory, in
	// [0, 1]; it lowers the effective IPC and raises backend-stall counters.
	MemoryBoundFraction float64
	// BranchesPerKiloInstr is the number of branch instructions per 1000
	// retired instructions.
	BranchesPerKiloInstr float64
	// BranchMissRatio is the fraction of branches mispredicted, in [0, 1].
	BranchMissRatio float64
}

// Validate checks that every field lies in its admissible range.
func (d Demand) Validate() error {
	switch {
	case d.Utilization < 0 || d.Utilization > 1:
		return fmt.Errorf("workload: utilization %v out of [0,1]", d.Utilization)
	case d.IPC < 0 || d.IPC > 8:
		return fmt.Errorf("workload: IPC %v out of [0,8]", d.IPC)
	case d.CacheRefsPerKiloInstr < 0:
		return fmt.Errorf("workload: cache refs per kilo-instruction %v negative", d.CacheRefsPerKiloInstr)
	case d.CacheMissRatio < 0 || d.CacheMissRatio > 1:
		return fmt.Errorf("workload: cache miss ratio %v out of [0,1]", d.CacheMissRatio)
	case d.MemoryBoundFraction < 0 || d.MemoryBoundFraction > 1:
		return fmt.Errorf("workload: memory-bound fraction %v out of [0,1]", d.MemoryBoundFraction)
	case d.BranchesPerKiloInstr < 0:
		return fmt.Errorf("workload: branches per kilo-instruction %v negative", d.BranchesPerKiloInstr)
	case d.BranchMissRatio < 0 || d.BranchMissRatio > 1:
		return fmt.Errorf("workload: branch miss ratio %v out of [0,1]", d.BranchMissRatio)
	}
	return nil
}

// Scale returns a copy of the demand with utilisation multiplied by factor
// and clamped to [0, 1].
func (d Demand) Scale(factor float64) Demand {
	out := d
	out.Utilization = clamp01(d.Utilization * factor)
	return out
}

// IsIdle reports whether the demand asks for no CPU at all.
func (d Demand) IsIdle() bool { return d.Utilization <= 0 }

func clamp01(v float64) float64 {
	return math.Max(0, math.Min(1, v))
}

// Generator produces the demand of a workload over simulated time.
type Generator interface {
	// Name identifies the workload (used in reports and process names).
	Name() string
	// Demand returns the resource demand at simulated instant at.
	Demand(at time.Duration) Demand
	// Done reports whether the workload has finished at instant at. Finished
	// workloads are reaped by the machine.
	Done(at time.Duration) bool
}

// Profile bundles the micro-architectural mix of a steady workload.
type Profile struct {
	IPC                   float64
	CacheRefsPerKiloInstr float64
	CacheMissRatio        float64
	MemoryBoundFraction   float64
	BranchesPerKiloInstr  float64
	BranchMissRatio       float64
}

// Demand materialises the profile at a given utilisation level.
func (p Profile) Demand(utilization float64) Demand {
	return Demand{
		Utilization:           clamp01(utilization),
		IPC:                   p.IPC,
		CacheRefsPerKiloInstr: p.CacheRefsPerKiloInstr,
		CacheMissRatio:        p.CacheMissRatio,
		MemoryBoundFraction:   p.MemoryBoundFraction,
		BranchesPerKiloInstr:  p.BranchesPerKiloInstr,
		BranchMissRatio:       p.BranchMissRatio,
	}
}

// Reference profiles. The CPU-bound profile mirrors a tight arithmetic loop
// (high IPC, almost no LLC traffic); the memory-bound profile mirrors a
// pointer-chasing / large-working-set loop (low IPC, heavy LLC traffic, high
// miss ratio), the two dimensions the paper stresses during calibration.
var (
	cpuBoundProfile = Profile{
		IPC:                   2.4,
		CacheRefsPerKiloInstr: 1.5,
		CacheMissRatio:        0.05,
		MemoryBoundFraction:   0.02,
		BranchesPerKiloInstr:  180,
		BranchMissRatio:       0.01,
	}
	memoryBoundProfile = Profile{
		IPC:                   0.7,
		CacheRefsPerKiloInstr: 65,
		CacheMissRatio:        0.45,
		MemoryBoundFraction:   0.55,
		BranchesPerKiloInstr:  90,
		BranchMissRatio:       0.03,
	}
	jbbProfile = Profile{
		IPC:                   1.3,
		CacheRefsPerKiloInstr: 38,
		CacheMissRatio:        0.28,
		MemoryBoundFraction:   0.30,
		BranchesPerKiloInstr:  140,
		BranchMissRatio:       0.04,
	}
)

// CPUBoundProfile returns the reference CPU-intensive mix.
func CPUBoundProfile() Profile { return cpuBoundProfile }

// MemoryBoundProfile returns the reference memory-intensive mix.
func MemoryBoundProfile() Profile { return memoryBoundProfile }

// steady is a Generator with a constant demand and optional deadline.
type steady struct {
	name     string
	demand   Demand
	duration time.Duration // zero means forever
}

var _ Generator = (*steady)(nil)

func (s *steady) Name() string { return s.name }

func (s *steady) Demand(at time.Duration) Demand {
	if s.Done(at) {
		return Demand{}
	}
	return s.demand
}

func (s *steady) Done(at time.Duration) bool {
	return s.duration > 0 && at >= s.duration
}

// NewSteady builds a constant-demand generator. A zero duration runs forever.
func NewSteady(name string, demand Demand, duration time.Duration) (Generator, error) {
	if name == "" {
		return nil, errors.New("workload: steady generator needs a name")
	}
	if err := demand.Validate(); err != nil {
		return nil, err
	}
	if duration < 0 {
		return nil, fmt.Errorf("workload: negative duration %v", duration)
	}
	return &steady{name: name, demand: demand, duration: duration}, nil
}

// CPUStress returns a CPU-intensive stress workload at the given utilisation
// level (the simulated analogue of the stress utility of Figure 1).
func CPUStress(level float64, duration time.Duration) (Generator, error) {
	return NewSteady(fmt.Sprintf("cpu-stress-%d", int(level*100)), cpuBoundProfile.Demand(level), duration)
}

// MemoryStress returns a memory-intensive stress workload at the given
// utilisation level.
func MemoryStress(level float64, duration time.Duration) (Generator, error) {
	return NewSteady(fmt.Sprintf("mem-stress-%d", int(level*100)), memoryBoundProfile.Demand(level), duration)
}

// MixedStress blends the CPU and memory bound profiles with cpuWeight in
// [0,1] at the given utilisation level.
func MixedStress(cpuWeight, level float64, duration time.Duration) (Generator, error) {
	if cpuWeight < 0 || cpuWeight > 1 {
		return nil, fmt.Errorf("workload: cpu weight %v out of [0,1]", cpuWeight)
	}
	w := cpuWeight
	blend := Profile{
		IPC:                   w*cpuBoundProfile.IPC + (1-w)*memoryBoundProfile.IPC,
		CacheRefsPerKiloInstr: w*cpuBoundProfile.CacheRefsPerKiloInstr + (1-w)*memoryBoundProfile.CacheRefsPerKiloInstr,
		CacheMissRatio:        w*cpuBoundProfile.CacheMissRatio + (1-w)*memoryBoundProfile.CacheMissRatio,
		MemoryBoundFraction:   w*cpuBoundProfile.MemoryBoundFraction + (1-w)*memoryBoundProfile.MemoryBoundFraction,
		BranchesPerKiloInstr:  w*cpuBoundProfile.BranchesPerKiloInstr + (1-w)*memoryBoundProfile.BranchesPerKiloInstr,
		BranchMissRatio:       w*cpuBoundProfile.BranchMissRatio + (1-w)*memoryBoundProfile.BranchMissRatio,
	}
	return NewSteady(fmt.Sprintf("mixed-stress-%d-%d", int(cpuWeight*100), int(level*100)), blend.Demand(level), duration)
}

// Idle returns a workload that never asks for CPU. It is useful to keep a
// process alive (so its PID remains monitorable) without activity.
func Idle(duration time.Duration) Generator {
	return &steady{name: "idle", demand: Demand{}, duration: duration}
}
