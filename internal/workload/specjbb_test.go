package workload

import (
	"testing"
	"time"
)

func TestSPECjbbConfigValidate(t *testing.T) {
	valid := DefaultSPECjbbConfig()
	if err := valid.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*SPECjbbConfig)
	}{
		{name: "zero duration", mutate: func(c *SPECjbbConfig) { c.Duration = 0 }},
		{name: "warmup >= 1", mutate: func(c *SPECjbbConfig) { c.WarmupFraction = 1 }},
		{name: "negative warmup", mutate: func(c *SPECjbbConfig) { c.WarmupFraction = -0.1 }},
		{name: "zero steps", mutate: func(c *SPECjbbConfig) { c.Steps = 0 }},
		{name: "zero peak", mutate: func(c *SPECjbbConfig) { c.PeakUtilization = 0 }},
		{name: "peak above 1", mutate: func(c *SPECjbbConfig) { c.PeakUtilization = 1.2 }},
		{name: "negative idle", mutate: func(c *SPECjbbConfig) { c.InterPhaseIdle = -time.Second }},
		{name: "oscillation too large", mutate: func(c *SPECjbbConfig) { c.OscillationAmplitude = 0.9 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultSPECjbbConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
			if _, err := NewSPECjbb(cfg); err == nil {
				t.Fatal("NewSPECjbb should reject an invalid config")
			}
		})
	}
}

func TestSPECjbbEnvelope(t *testing.T) {
	cfg := DefaultSPECjbbConfig()
	cfg.Duration = 1000 * time.Second
	jbb, err := NewSPECjbb(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if jbb.Name() != "specjbb" {
		t.Fatalf("Name() = %q", jbb.Name())
	}
	// Every demand over the run must be valid and the workload must be busy
	// most of the time.
	busy := 0
	total := 0
	var maxUtil float64
	for at := time.Duration(0); at < cfg.Duration; at += time.Second {
		d := jbb.Demand(at)
		if err := d.Validate(); err != nil {
			t.Fatalf("demand at %v invalid: %v", at, err)
		}
		total++
		if !d.IsIdle() {
			busy++
		}
		if d.Utilization > maxUtil {
			maxUtil = d.Utilization
		}
	}
	if float64(busy)/float64(total) < 0.8 {
		t.Fatalf("SPECjbb busy only %d/%d samples", busy, total)
	}
	if maxUtil < 0.8*cfg.PeakUtilization {
		t.Fatalf("peak utilisation %v never approached configured peak %v", maxUtil, cfg.PeakUtilization)
	}
	if !jbb.Done(cfg.Duration) || jbb.Done(cfg.Duration-time.Second) {
		t.Fatal("Done boundary incorrect")
	}
	if !jbb.Demand(cfg.Duration + time.Second).IsIdle() {
		t.Fatal("demand after the end should be idle")
	}
	if !jbb.Demand(-time.Second).IsIdle() {
		t.Fatal("demand before the start should be idle")
	}
}

func TestSPECjbbRampIncreasesAcrossPlateaus(t *testing.T) {
	cfg := DefaultSPECjbbConfig()
	cfg.Duration = 800 * time.Second
	cfg.OscillationAmplitude = 0 // make plateau levels exact
	cfg.InterPhaseIdle = 0
	jbb, err := NewSPECjbb(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warmup := time.Duration(float64(cfg.Duration) * cfg.WarmupFraction)
	stepSpan := (cfg.Duration - warmup) / time.Duration(cfg.Steps)
	var prev float64
	for step := 0; step < cfg.Steps; step++ {
		mid := warmup + time.Duration(step)*stepSpan + stepSpan/2
		u := jbb.Demand(mid).Utilization
		if u <= prev {
			t.Fatalf("plateau %d utilisation %v not above previous %v", step, u, prev)
		}
		prev = u
	}
}

func TestSPECjbbMemoryPressureGrowsWithLoad(t *testing.T) {
	cfg := DefaultSPECjbbConfig()
	cfg.Duration = 1000 * time.Second
	cfg.InterPhaseIdle = 0
	jbb, _ := NewSPECjbb(cfg)
	early := jbb.Demand(time.Duration(float64(cfg.Duration) * 0.2))
	late := jbb.Demand(time.Duration(float64(cfg.Duration) * 0.95))
	if late.CacheMissRatio <= early.CacheMissRatio {
		t.Fatalf("miss ratio should grow with load: early %v late %v", early.CacheMissRatio, late.CacheMissRatio)
	}
}

func TestSPECjbbPhases(t *testing.T) {
	jbb, _ := NewSPECjbb(DefaultSPECjbbConfig())
	phases := jbb.Phases()
	if len(phases) != DefaultSPECjbbConfig().Steps+1 {
		t.Fatalf("Phases() returned %d entries, want %d", len(phases), DefaultSPECjbbConfig().Steps+1)
	}
}

func TestBurstGenerator(t *testing.T) {
	busy := CPUBoundProfile().Demand(0.9)
	if _, err := NewBurst("", busy, time.Second, 0.5, 0); err == nil {
		t.Fatal("empty name should fail")
	}
	if _, err := NewBurst("b", busy, 0, 0.5, 0); err == nil {
		t.Fatal("zero period should fail")
	}
	if _, err := NewBurst("b", busy, time.Second, 1.5, 0); err == nil {
		t.Fatal("duty > 1 should fail")
	}
	if _, err := NewBurst("b", busy, time.Second, 0.5, -time.Second); err == nil {
		t.Fatal("negative duration should fail")
	}
	if _, err := NewBurst("b", Demand{Utilization: 3}, time.Second, 0.5, 0); err == nil {
		t.Fatal("invalid demand should fail")
	}

	b, err := NewBurst("bursty", busy, 10*time.Second, 0.3, 25*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "bursty" {
		t.Fatalf("Name() = %q", b.Name())
	}
	if b.Demand(time.Second).IsIdle() {
		t.Fatal("should be busy during the duty window")
	}
	if !b.Demand(5 * time.Second).IsIdle() {
		t.Fatal("should be idle outside the duty window")
	}
	if !b.Done(25*time.Second) || b.Done(24*time.Second) {
		t.Fatal("Done boundary incorrect")
	}
	if !b.Demand(30 * time.Second).IsIdle() {
		t.Fatal("demand after the end should be idle")
	}
}

func TestTraceGenerator(t *testing.T) {
	samples := []Demand{
		CPUBoundProfile().Demand(0.2),
		CPUBoundProfile().Demand(0.8),
		MemoryBoundProfile().Demand(0.5),
	}
	if _, err := NewTrace("", time.Second, samples); err == nil {
		t.Fatal("empty name should fail")
	}
	if _, err := NewTrace("t", 0, samples); err == nil {
		t.Fatal("zero interval should fail")
	}
	if _, err := NewTrace("t", time.Second, nil); err == nil {
		t.Fatal("empty samples should fail")
	}
	if _, err := NewTrace("t", time.Second, []Demand{{Utilization: 9}}); err == nil {
		t.Fatal("invalid sample should fail")
	}

	tr, err := NewTrace("trace", time.Second, samples)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Demand(0).Utilization; !almostEqual(got, 0.2, 1e-9) {
		t.Fatalf("sample 0 utilization = %v", got)
	}
	if got := tr.Demand(1500 * time.Millisecond).Utilization; !almostEqual(got, 0.8, 1e-9) {
		t.Fatalf("sample 1 utilization = %v", got)
	}
	if !tr.Done(3*time.Second) || tr.Done(2*time.Second) {
		t.Fatal("Done boundary incorrect")
	}
	if !tr.Demand(10 * time.Second).IsIdle() {
		t.Fatal("demand after the end should be idle")
	}
	// The trace must have copied its samples.
	samples[0].Utilization = 0.99
	if got := tr.Demand(0).Utilization; !almostEqual(got, 0.2, 1e-9) {
		t.Fatal("trace aliased the caller's samples")
	}
}
