package workload

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDemandValidate(t *testing.T) {
	valid := CPUBoundProfile().Demand(0.5)
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid demand rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Demand)
	}{
		{name: "utilization above 1", mutate: func(d *Demand) { d.Utilization = 1.5 }},
		{name: "negative utilization", mutate: func(d *Demand) { d.Utilization = -0.1 }},
		{name: "absurd IPC", mutate: func(d *Demand) { d.IPC = 20 }},
		{name: "negative cache refs", mutate: func(d *Demand) { d.CacheRefsPerKiloInstr = -1 }},
		{name: "miss ratio above 1", mutate: func(d *Demand) { d.CacheMissRatio = 1.2 }},
		{name: "memory bound above 1", mutate: func(d *Demand) { d.MemoryBoundFraction = 1.1 }},
		{name: "negative branches", mutate: func(d *Demand) { d.BranchesPerKiloInstr = -5 }},
		{name: "branch miss above 1", mutate: func(d *Demand) { d.BranchMissRatio = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := valid
			tt.mutate(&d)
			if err := d.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestDemandScaleAndIdle(t *testing.T) {
	d := CPUBoundProfile().Demand(0.8)
	scaled := d.Scale(0.5)
	if !almostEqual(scaled.Utilization, 0.4, 1e-9) {
		t.Fatalf("Scale(0.5) utilization = %v, want 0.4", scaled.Utilization)
	}
	over := d.Scale(10)
	if over.Utilization != 1 {
		t.Fatalf("Scale should clamp to 1, got %v", over.Utilization)
	}
	if d.IsIdle() {
		t.Fatal("busy demand reported idle")
	}
	if !(Demand{}).IsIdle() {
		t.Fatal("zero demand should be idle")
	}
}

func TestProfilesAreDistinct(t *testing.T) {
	cpu := CPUBoundProfile()
	mem := MemoryBoundProfile()
	if cpu.IPC <= mem.IPC {
		t.Fatal("CPU-bound profile must have higher IPC than memory-bound")
	}
	if cpu.CacheRefsPerKiloInstr >= mem.CacheRefsPerKiloInstr {
		t.Fatal("memory-bound profile must have more cache references")
	}
	if cpu.CacheMissRatio >= mem.CacheMissRatio {
		t.Fatal("memory-bound profile must have a higher miss ratio")
	}
}

func TestNewSteadyValidation(t *testing.T) {
	if _, err := NewSteady("", Demand{}, 0); err == nil {
		t.Fatal("empty name should fail")
	}
	if _, err := NewSteady("x", Demand{Utilization: 2}, 0); err == nil {
		t.Fatal("invalid demand should fail")
	}
	if _, err := NewSteady("x", Demand{}, -time.Second); err == nil {
		t.Fatal("negative duration should fail")
	}
}

func TestSteadyLifetime(t *testing.T) {
	g, err := CPUStress(0.75, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if g.Done(0) {
		t.Fatal("workload done at t=0")
	}
	d := g.Demand(5 * time.Second)
	if !almostEqual(d.Utilization, 0.75, 1e-9) {
		t.Fatalf("utilization = %v, want 0.75", d.Utilization)
	}
	if !g.Done(10 * time.Second) {
		t.Fatal("workload should be done at its deadline")
	}
	if !g.Demand(11 * time.Second).IsIdle() {
		t.Fatal("done workload should demand nothing")
	}
}

func TestSteadyForever(t *testing.T) {
	g, err := MemoryStress(0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Done(1000 * time.Hour) {
		t.Fatal("zero-duration workload should never finish")
	}
	if g.Demand(1000 * time.Hour).IsIdle() {
		t.Fatal("forever workload should stay busy")
	}
}

func TestCPUvsMemoryStressProfiles(t *testing.T) {
	cpuGen, _ := CPUStress(1.0, 0)
	memGen, _ := MemoryStress(1.0, 0)
	dc := cpuGen.Demand(0)
	dm := memGen.Demand(0)
	if dc.CacheRefsPerKiloInstr >= dm.CacheRefsPerKiloInstr {
		t.Fatal("memory stress should generate more cache references")
	}
	if dc.IPC <= dm.IPC {
		t.Fatal("cpu stress should have higher IPC")
	}
}

func TestMixedStress(t *testing.T) {
	if _, err := MixedStress(1.5, 0.5, 0); err == nil {
		t.Fatal("cpu weight above 1 should fail")
	}
	g, err := MixedStress(0.5, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Demand(0)
	cpu := CPUBoundProfile()
	mem := MemoryBoundProfile()
	if d.IPC <= mem.IPC || d.IPC >= cpu.IPC {
		t.Fatalf("blended IPC %v should sit between %v and %v", d.IPC, mem.IPC, cpu.IPC)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("blended demand invalid: %v", err)
	}
}

func TestIdleGenerator(t *testing.T) {
	g := Idle(5 * time.Second)
	if !g.Demand(time.Second).IsIdle() {
		t.Fatal("idle workload should demand nothing")
	}
	if !g.Done(6 * time.Second) {
		t.Fatal("idle workload with deadline should finish")
	}
	if g.Name() != "idle" {
		t.Fatalf("Name() = %q", g.Name())
	}
}

func TestStressLevelsProperty(t *testing.T) {
	f := func(raw float64) bool {
		level := clamp01(raw)
		g, err := CPUStress(level, 0)
		if err != nil {
			return false
		}
		d := g.Demand(0)
		return d.Validate() == nil && almostEqual(d.Utilization, level, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func almostEqual(a, b, tol float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff <= tol
}
