package workload

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// SPECjbbConfig parameterises the SPECjbb2013-like evaluation workload used
// by the paper's preliminary experiment (Figure 3).
//
// The real benchmark ramps the transaction injection rate in steps while
// backend worker threads process memory-heavy business transactions; the
// power drawn follows the injection ramp with short idle valleys between
// phases. This generator reproduces that envelope.
type SPECjbbConfig struct {
	// Duration is the total run length (the paper's trace spans roughly
	// 2 500 seconds).
	Duration time.Duration
	// WarmupFraction is the fraction of the run spent in the initial ramp-up.
	WarmupFraction float64
	// Steps is the number of injection-rate plateaus after warmup.
	Steps int
	// PeakUtilization is the per-process utilisation reached at the highest
	// injection plateau, in [0, 1].
	PeakUtilization float64
	// InterPhaseIdle is the pause between plateaus.
	InterPhaseIdle time.Duration
	// OscillationAmplitude adds a deterministic within-plateau oscillation
	// (fraction of the plateau level) mimicking GC pauses and batch effects.
	OscillationAmplitude float64
	// OscillationPeriod is the period of that oscillation.
	OscillationPeriod time.Duration
}

// DefaultSPECjbbConfig mirrors the shape of the paper's Figure 3 run.
func DefaultSPECjbbConfig() SPECjbbConfig {
	return SPECjbbConfig{
		Duration:             2500 * time.Second,
		WarmupFraction:       0.12,
		Steps:                8,
		PeakUtilization:      0.95,
		InterPhaseIdle:       8 * time.Second,
		OscillationAmplitude: 0.12,
		OscillationPeriod:    40 * time.Second,
	}
}

// Validate checks the configuration.
func (c SPECjbbConfig) Validate() error {
	switch {
	case c.Duration <= 0:
		return errors.New("workload: SPECjbb duration must be positive")
	case c.WarmupFraction < 0 || c.WarmupFraction >= 1:
		return fmt.Errorf("workload: warmup fraction %v out of [0,1)", c.WarmupFraction)
	case c.Steps <= 0:
		return errors.New("workload: SPECjbb needs at least one step")
	case c.PeakUtilization <= 0 || c.PeakUtilization > 1:
		return fmt.Errorf("workload: peak utilization %v out of (0,1]", c.PeakUtilization)
	case c.InterPhaseIdle < 0:
		return errors.New("workload: inter-phase idle must be non-negative")
	case c.OscillationAmplitude < 0 || c.OscillationAmplitude > 0.5:
		return fmt.Errorf("workload: oscillation amplitude %v out of [0,0.5]", c.OscillationAmplitude)
	}
	return nil
}

// SPECjbb is the phased, memory-intensive benchmark generator.
type SPECjbb struct {
	cfg    SPECjbbConfig
	warmup time.Duration
}

var _ Generator = (*SPECjbb)(nil)

// NewSPECjbb builds the generator from cfg.
func NewSPECjbb(cfg SPECjbbConfig) (*SPECjbb, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SPECjbb{
		cfg:    cfg,
		warmup: time.Duration(float64(cfg.Duration) * cfg.WarmupFraction),
	}, nil
}

// Name implements Generator.
func (s *SPECjbb) Name() string { return "specjbb" }

// Done implements Generator.
func (s *SPECjbb) Done(at time.Duration) bool { return at >= s.cfg.Duration }

// Demand implements Generator.
func (s *SPECjbb) Demand(at time.Duration) Demand {
	if at < 0 || s.Done(at) {
		return Demand{}
	}
	level := s.levelAt(at)
	if level <= 0 {
		return Demand{}
	}
	d := jbbProfile.Demand(level)
	// Memory pressure rises with the injection rate: the working set grows
	// and the LLC miss ratio with it.
	d.CacheMissRatio = clamp01(jbbProfile.CacheMissRatio * (0.7 + 0.6*level))
	d.MemoryBoundFraction = clamp01(jbbProfile.MemoryBoundFraction * (0.7 + 0.5*level))
	return d
}

// levelAt returns the injection level (utilisation fraction) at instant at.
func (s *SPECjbb) levelAt(at time.Duration) float64 {
	cfg := s.cfg
	if at < s.warmup {
		// Linear ramp from 10% to 60% of the peak during warmup.
		frac := float64(at) / float64(s.warmup)
		return cfg.PeakUtilization * (0.1 + 0.5*frac)
	}
	rest := cfg.Duration - s.warmup
	stepSpan := rest / time.Duration(cfg.Steps)
	if stepSpan <= 0 {
		return cfg.PeakUtilization
	}
	into := at - s.warmup
	step := int(into / stepSpan)
	if step >= cfg.Steps {
		step = cfg.Steps - 1
	}
	// Idle valley at the start of each plateau (the benchmark's
	// inter-phase pause).
	offsetInStep := into - time.Duration(step)*stepSpan
	if offsetInStep < cfg.InterPhaseIdle {
		return 0
	}
	// Plateau level rises with the step index: from 35% to 100% of peak.
	frac := 0.35 + 0.65*float64(step+1)/float64(cfg.Steps)
	level := cfg.PeakUtilization * frac
	// Within-plateau oscillation (GC pauses, batch boundaries).
	if cfg.OscillationAmplitude > 0 && cfg.OscillationPeriod > 0 {
		phase := 2 * math.Pi * float64(offsetInStep) / float64(cfg.OscillationPeriod)
		level *= 1 + cfg.OscillationAmplitude*math.Sin(phase)
	}
	return clamp01(level)
}

// Phases returns human-readable phase boundaries, mostly for reports.
func (s *SPECjbb) Phases() []string {
	out := []string{fmt.Sprintf("warmup: 0s - %v", s.warmup)}
	rest := s.cfg.Duration - s.warmup
	stepSpan := rest / time.Duration(s.cfg.Steps)
	for i := 0; i < s.cfg.Steps; i++ {
		start := s.warmup + time.Duration(i)*stepSpan
		out = append(out, fmt.Sprintf("plateau %d: %v - %v", i+1, start, start+stepSpan))
	}
	return out
}

// Burst is a generator alternating between busy and idle periods, useful for
// DVFS/C-state exercises and the energy-aware scheduling example.
type Burst struct {
	name     string
	busy     Demand
	period   time.Duration
	dutyFrac float64
	duration time.Duration
}

var _ Generator = (*Burst)(nil)

// NewBurst creates a workload that is busy for dutyFrac of every period and
// idle for the rest. A zero duration runs forever.
func NewBurst(name string, busy Demand, period time.Duration, dutyFrac float64, duration time.Duration) (*Burst, error) {
	if name == "" {
		return nil, errors.New("workload: burst generator needs a name")
	}
	if err := busy.Validate(); err != nil {
		return nil, err
	}
	if period <= 0 {
		return nil, errors.New("workload: burst period must be positive")
	}
	if dutyFrac < 0 || dutyFrac > 1 {
		return nil, fmt.Errorf("workload: duty fraction %v out of [0,1]", dutyFrac)
	}
	if duration < 0 {
		return nil, errors.New("workload: negative duration")
	}
	return &Burst{name: name, busy: busy, period: period, dutyFrac: dutyFrac, duration: duration}, nil
}

// Name implements Generator.
func (b *Burst) Name() string { return b.name }

// Done implements Generator.
func (b *Burst) Done(at time.Duration) bool {
	return b.duration > 0 && at >= b.duration
}

// Demand implements Generator.
func (b *Burst) Demand(at time.Duration) Demand {
	if b.Done(at) {
		return Demand{}
	}
	offset := at % b.period
	if float64(offset) < b.dutyFrac*float64(b.period) {
		return b.busy
	}
	return Demand{}
}

// Trace replays a recorded sequence of demands at a fixed sample interval,
// which is how recorded production traces can be fed to the simulator.
type Trace struct {
	name     string
	interval time.Duration
	samples  []Demand
}

var _ Generator = (*Trace)(nil)

// NewTrace creates a trace generator. The trace ends after
// len(samples)*interval of simulated time.
func NewTrace(name string, interval time.Duration, samples []Demand) (*Trace, error) {
	if name == "" {
		return nil, errors.New("workload: trace generator needs a name")
	}
	if interval <= 0 {
		return nil, errors.New("workload: trace interval must be positive")
	}
	if len(samples) == 0 {
		return nil, errors.New("workload: trace needs at least one sample")
	}
	for i, d := range samples {
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("workload: trace sample %d: %w", i, err)
		}
	}
	return &Trace{name: name, interval: interval, samples: append([]Demand(nil), samples...)}, nil
}

// Name implements Generator.
func (t *Trace) Name() string { return t.name }

// Done implements Generator.
func (t *Trace) Done(at time.Duration) bool {
	return at >= time.Duration(len(t.samples))*t.interval
}

// Demand implements Generator.
func (t *Trace) Demand(at time.Duration) Demand {
	if at < 0 || t.Done(at) {
		return Demand{}
	}
	idx := int(at / t.interval)
	if idx >= len(t.samples) {
		idx = len(t.samples) - 1
	}
	return t.samples[idx]
}
