package report

import (
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Specs", "Attribute", "Value")
	if err := tbl.AddRow("Vendor", "Intel"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("TDP", "65 W"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("only-one-cell"); err != nil {
		t.Fatalf("missing cells are padded, not an error: %v", err)
	}
	if tbl.Rows() != 3 {
		t.Fatalf("Rows() = %d, want 3", tbl.Rows())
	}
	out := tbl.String()
	for _, want := range []string{"Specs", "Attribute", "Vendor", "Intel", "65 W", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + separator + 3 rows
		t.Fatalf("table has %d lines, want 6:\n%s", len(lines), out)
	}
	if err := tbl.Render(nil); err == nil {
		t.Fatal("nil writer should fail")
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tbl := NewTable("", "A", "B")
	if tbl.DroppedCells() != 0 {
		t.Fatalf("fresh table reports %d dropped cells", tbl.DroppedCells())
	}
	err := tbl.AddRow("1", "2", "3", "4")
	if err == nil {
		t.Fatal("a row with extra cells must report an error")
	}
	if !strings.Contains(err.Error(), "2 dropped") {
		t.Fatalf("error %q does not name the dropped count", err)
	}
	out := tbl.String()
	if strings.Contains(out, "3") || strings.Contains(out, "4") {
		t.Fatalf("extra cells should be dropped:\n%s", out)
	}
	if tbl.Rows() != 1 {
		t.Fatalf("the malformed row's leading cells are still kept: Rows() = %d", tbl.Rows())
	}
	if err := tbl.AddRow("5", "6", "7"); err == nil {
		t.Fatal("second malformed row must also report an error")
	}
	if tbl.DroppedCells() != 3 {
		t.Fatalf("DroppedCells() = %d, want 3 accumulated", tbl.DroppedCells())
	}
}

func TestWriteTimeSeriesCSV(t *testing.T) {
	points := []TimePoint{
		{Time: 0, Measured: 31.5, Estimated: 30.9},
		{Time: time.Second, Measured: 35.2, Estimated: 36.1},
	}
	var b strings.Builder
	if err := WriteTimeSeriesCSV(&b, points); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want 3:\n%s", len(lines), out)
	}
	if lines[0] != "seconds,powerspy_watts,powerapi_watts" {
		t.Fatalf("unexpected header %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "1.000,35.200,36.100") {
		t.Fatalf("unexpected row %q", lines[2])
	}
	if err := WriteTimeSeriesCSV(nil, points); err == nil {
		t.Fatal("nil writer should fail")
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, map[string]int{"answer": 42}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "\"answer\": 42") {
		t.Fatalf("unexpected json %q", b.String())
	}
	if err := WriteJSON(nil, 1); err == nil {
		t.Fatal("nil writer should fail")
	}
	if err := WriteJSON(&strings.Builder{}, func() {}); err == nil {
		t.Fatal("unencodable value should fail")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty input should render empty sparkline")
	}
	if Sparkline([]float64{1, 2}, 0) != "" {
		t.Fatal("zero width should render empty sparkline")
	}
	s := Sparkline([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 8)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("sparkline has %d runes, want 8: %q", utf8.RuneCountInString(s), s)
	}
	// Monotonic input must produce a non-decreasing ramp.
	runes := []rune(s)
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("sparkline not monotone: %q", s)
		}
	}
	// Downsampling path.
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i)
	}
	down := Sparkline(long, 20)
	if utf8.RuneCountInString(down) != 20 {
		t.Fatalf("downsampled sparkline has %d runes, want 20", utf8.RuneCountInString(down))
	}
	// Constant input renders the lowest glyph everywhere.
	flat := Sparkline([]float64{5, 5, 5, 5}, 4)
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("flat sparkline should use the lowest glyph: %q", flat)
		}
	}
}
