// Package report renders experiment results — tables, CSV series, JSON — the
// way the Reporter component of the paper's architecture "converts the power
// estimations produced by the library into a suitable format".
package report

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Table is a simple column-aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	dropped int
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; missing cells are filled with empty strings. A row
// with more cells than the table has columns is malformed: the extra cells
// are dropped from the rendered table, the incident is recorded (see
// DroppedCells) and an error is returned so callers that care can detect it.
func (t *Table) AddRow(cells ...string) error {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
	if extra := len(cells) - len(t.headers); extra > 0 {
		t.dropped += extra
		return fmt.Errorf("report: row %d has %d cells for %d columns (%d dropped)",
			len(t.rows), len(cells), len(t.headers), extra)
	}
	return nil
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// DroppedCells returns how many extra cells AddRow has dropped over the
// table's lifetime — non-zero means some caller produced malformed rows.
func (t *Table) DroppedCells() int { return t.dropped }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	if w == nil {
		return errors.New("report: nil writer")
	}
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			b.WriteString(fmt.Sprintf("%-*s", widths[i], cell))
			if i < len(cells)-1 {
				b.WriteString("  ")
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// TimePoint is one (time, measured, estimated) triple of a power trace, the
// unit of Figure 3's two curves.
type TimePoint struct {
	Time      time.Duration `json:"time"`
	Measured  float64       `json:"measuredWatts"`
	Estimated float64       `json:"estimatedWatts"`
}

// WriteTimeSeriesCSV writes a Figure 3-style series (seconds, measured watts,
// estimated watts) as CSV, directly consumable by gnuplot or a spreadsheet.
func WriteTimeSeriesCSV(w io.Writer, points []TimePoint) error {
	if w == nil {
		return errors.New("report: nil writer")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seconds", "powerspy_watts", "powerapi_watts"}); err != nil {
		return fmt.Errorf("report: write csv header: %w", err)
	}
	for _, p := range points {
		record := []string{
			strconv.FormatFloat(p.Time.Seconds(), 'f', 3, 64),
			strconv.FormatFloat(p.Measured, 'f', 3, 64),
			strconv.FormatFloat(p.Estimated, 'f', 3, 64),
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("report: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes any value as indented JSON.
func WriteJSON(w io.Writer, v any) error {
	if w == nil {
		return errors.New("report: nil writer")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("report: encode json: %w", err)
	}
	return nil
}

// Sparkline renders values as a coarse ASCII sparkline, handy to eyeball the
// shape of a power trace in a terminal.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	// Downsample to width buckets by averaging.
	buckets := make([]float64, 0, width)
	if len(values) <= width {
		buckets = append(buckets, values...)
	} else {
		per := float64(len(values)) / float64(width)
		for b := 0; b < width; b++ {
			start := int(float64(b) * per)
			end := int(float64(b+1) * per)
			if end > len(values) {
				end = len(values)
			}
			if start >= end {
				start = end - 1
			}
			var sum float64
			for _, v := range values[start:end] {
				sum += v
			}
			buckets = append(buckets, sum/float64(end-start))
		}
	}
	lo, hi := buckets[0], buckets[0]
	for _, v := range buckets {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range buckets {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
		}
		b.WriteRune(ramp[idx])
	}
	return b.String()
}
