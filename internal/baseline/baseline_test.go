package baseline

import (
	"testing"
	"time"

	"powerapi/internal/cpu"
	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/workload"
)

func quietConfig(spec cpu.Spec) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Spec = spec
	cfg.PowerNoiseStdDevWatts = 0
	cfg.Governor = cpu.GovernorPerformance
	return cfg
}

func TestCPULoadModelEstimate(t *testing.T) {
	m := &CPULoadModel{IdleWatts: 30, FullLoadWatts: 60}
	tests := []struct {
		util float64
		want float64
	}{
		{util: 0, want: 30},
		{util: 0.5, want: 45},
		{util: 1, want: 60},
	}
	for _, tt := range tests {
		got, err := m.EstimateWatts(tt.util)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Fatalf("EstimateWatts(%v) = %v, want %v", tt.util, got, tt.want)
		}
	}
	if _, err := m.EstimateWatts(1.5); err == nil {
		t.Fatal("utilization above 1 should fail")
	}
	if _, err := m.EstimateWatts(-0.1); err == nil {
		t.Fatal("negative utilization should fail")
	}
}

func TestCalibrateCPULoadModel(t *testing.T) {
	cfg := quietConfig(cpu.IntelCorei3_2120())
	m, err := CalibrateCPULoadModel(cfg, 300*time.Millisecond, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.IdleWatts < 28 || m.IdleWatts > 36 {
		t.Fatalf("idle anchor %.2f W outside plausible band", m.IdleWatts)
	}
	if m.FullLoadWatts <= m.IdleWatts {
		t.Fatal("full-load anchor must exceed idle anchor")
	}
	if _, err := CalibrateCPULoadModel(cfg, -time.Second, time.Second); err == nil {
		t.Fatal("negative settle should fail")
	}
	if _, err := CalibrateCPULoadModel(cfg, 0, 0); err == nil {
		t.Fatal("zero window should fail")
	}
}

func TestRAPLWallModel(t *testing.T) {
	cfg := quietConfig(cpu.IntelCorei3_2120())
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRAPLWallModel(m, -1); err == nil {
		t.Fatal("negative platform constant should fail")
	}
	wall, err := NewRAPLWallModel(m, 30)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.CPUStress(1.0, 0)
	if _, err := m.Spawn(gen); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	est, err := wall.EstimateWatts()
	if err != nil {
		t.Fatal(err)
	}
	truth := m.TruePowerWatts()
	if est < truth*0.7 || est > truth*1.3 {
		t.Fatalf("RAPL wall estimate %.1f W far from truth %.1f W", est, truth)
	}
}

func TestRAPLWallModelRejectsUnsupportedSpec(t *testing.T) {
	cfg := quietConfig(cpu.IntelCore2DuoE6600())
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRAPLWallModel(m, 30); err == nil {
		t.Fatal("RAPL model on a non-RAPL spec should fail")
	}
}

func TestBertranModelEstimateValidation(t *testing.T) {
	b := &BertranModel{
		Events:       []hpc.Event{hpc.Instructions},
		Intercept:    30,
		Coefficients: []float64{1e-9},
	}
	if _, err := b.EstimateTotalWatts(hpc.Counts{}, 0); err == nil {
		t.Fatal("zero window should fail")
	}
	got, err := b.EstimateTotalWatts(hpc.Counts{hpc.Instructions: 2e9}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Fatalf("EstimateTotalWatts = %v, want 32", got)
	}
	broken := &BertranModel{Events: []hpc.Event{hpc.Instructions}, Coefficients: nil}
	if _, err := broken.EstimateTotalWatts(hpc.Counts{}, time.Second); err == nil {
		t.Fatal("mismatched model should fail")
	}
}

func TestCalibrateBertranModelOnSimpleArchitecture(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is too slow for -short")
	}
	cfg := quietConfig(cpu.IntelCore2DuoE6600())
	opts := DefaultBertranOptions()
	opts.Levels = []float64{0.5, 1.0}
	opts.StepDuration = 1500 * time.Millisecond
	b, err := CalibrateBertranModel(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if b.R2 < 0.8 {
		t.Fatalf("Bertran fit R2 = %.3f, want >= 0.8 on a simple architecture", b.R2)
	}
	if b.Intercept <= 0 {
		t.Fatalf("intercept %.2f should absorb the idle power", b.Intercept)
	}

	// The model must track power on a held-out mixed workload.
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.PinAllFrequencies(m.Spec().BaseFrequencyMHz); err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.MixedStress(0.7, 0.8, 0)
	if _, err := m.Spawn(gen); err != nil {
		t.Fatal(err)
	}
	set, err := hpc.OpenCounterSet(m.Registry(), b.Events, hpc.AllPIDs, hpc.AllCPUs)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Enable(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	deltas, err := set.ReadDelta()
	if err != nil {
		t.Fatal(err)
	}
	est, err := b.EstimateTotalWatts(deltas, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	truth := m.TruePowerWatts()
	relErr := est/truth - 1
	if relErr < 0 {
		relErr = -relErr
	}
	if relErr > 0.25 {
		t.Fatalf("Bertran estimate %.1f W deviates %.0f%% from truth %.1f W", est, relErr*100, truth)
	}
}

func TestCalibrateBertranModelValidation(t *testing.T) {
	cfg := quietConfig(cpu.IntelCore2DuoE6600())
	if _, err := CalibrateBertranModel(cfg, BertranCalibrationOptions{}); err == nil {
		t.Fatal("empty options should fail")
	}
}
