// Package baseline implements the comparator power models discussed in the
// paper's related-work and evaluation sections:
//
//   - a CPU-load model (Versick et al.): power is a linear function of the
//     global CPU utilisation, the "coarse" alternative the paper argues is
//     inferior to hardware-counter models;
//   - a RAPL-based wall model: the Intel package-energy counter plus a
//     platform constant — accurate but architecture dependent and unable to
//     attribute power to processes;
//   - a Bertran-style decomposable model: a single-frequency multivariate
//     model over the full set of generic counters, representative of the
//     comparator that reports 4.63 % average error on a simple
//     (no-SMT / no-Turbo) architecture.
package baseline

import (
	"errors"
	"fmt"
	"time"

	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/powermeter"
	"powerapi/internal/stats"
	"powerapi/internal/workload"
)

// CPULoadModel estimates wall power from global CPU utilisation only.
type CPULoadModel struct {
	// IdleWatts is the wall power at zero utilisation.
	IdleWatts float64 `json:"idleWatts"`
	// FullLoadWatts is the wall power at 100 % utilisation.
	FullLoadWatts float64 `json:"fullLoadWatts"`
}

// EstimateWatts returns the power estimate for a utilisation in [0, 1].
func (m *CPULoadModel) EstimateWatts(utilization float64) (float64, error) {
	if utilization < 0 || utilization > 1 {
		return 0, fmt.Errorf("baseline: utilization %v out of [0,1]", utilization)
	}
	return m.IdleWatts + (m.FullLoadWatts-m.IdleWatts)*utilization, nil
}

// CalibrateCPULoadModel measures the two anchor points (idle and full load)
// of the load model on a fresh machine built from template.
func CalibrateCPULoadModel(template machine.Config, settle, window time.Duration) (*CPULoadModel, error) {
	if settle < 0 || window <= 0 {
		return nil, errors.New("baseline: invalid calibration windows")
	}
	measure := func(loaded bool) (float64, error) {
		m, err := machine.New(template)
		if err != nil {
			return 0, err
		}
		spy, err := powermeter.NewPowerSpy(m, powermeter.DefaultPowerSpyConfig())
		if err != nil {
			return 0, err
		}
		if loaded {
			for i := 0; i < m.Topology().NumLogical(); i++ {
				gen, err := workload.CPUStress(1.0, 0)
				if err != nil {
					return 0, err
				}
				if _, err := m.Spawn(gen); err != nil {
					return 0, err
				}
			}
		}
		if _, err := m.Run(settle); err != nil {
			return 0, err
		}
		steps := int(window / (250 * time.Millisecond))
		if steps < 2 {
			steps = 2
		}
		for i := 0; i < steps; i++ {
			if _, err := m.Run(250 * time.Millisecond); err != nil {
				return 0, err
			}
			spy.Sample()
		}
		return spy.History().MeanWatts(), nil
	}
	idle, err := measure(false)
	if err != nil {
		return nil, fmt.Errorf("baseline: measure idle: %w", err)
	}
	full, err := measure(true)
	if err != nil {
		return nil, fmt.Errorf("baseline: measure full load: %w", err)
	}
	if full <= idle {
		return nil, fmt.Errorf("baseline: full-load power %.2f not above idle %.2f", full, idle)
	}
	return &CPULoadModel{IdleWatts: idle, FullLoadWatts: full}, nil
}

// RAPLWallModel estimates wall power as the RAPL package power plus a
// platform constant learned at idle. It only works on RAPL-capable specs.
type RAPLWallModel struct {
	rapl *powermeter.RAPL
	// PlatformWatts is the non-CPU share of the wall power.
	PlatformWatts float64 `json:"platformWatts"`
}

// NewRAPLWallModel attaches the model to a machine, learning the platform
// constant from the machine's current (assumed idle) state.
func NewRAPLWallModel(m *machine.Machine, platformWatts float64) (*RAPLWallModel, error) {
	rapl, err := powermeter.NewRAPL(m)
	if err != nil {
		return nil, err
	}
	if platformWatts < 0 {
		return nil, errors.New("baseline: negative platform constant")
	}
	return &RAPLWallModel{rapl: rapl, PlatformWatts: platformWatts}, nil
}

// EstimateWatts returns the wall-power estimate for the interval since the
// previous call.
func (m *RAPLWallModel) EstimateWatts() (float64, error) {
	pkg, err := m.rapl.PowerWatts()
	if err != nil {
		return 0, err
	}
	return m.PlatformWatts + pkg, nil
}

// BertranModel is a single-frequency decomposable counter model: one linear
// formula (with intercept) over the full generic counter set, as used by
// Bertran et al. on a fixed-frequency Core 2 Duo.
type BertranModel struct {
	// Events are the predictors in column order.
	Events []hpc.Event `json:"-"`
	// Intercept absorbs idle and uncore power.
	Intercept float64 `json:"intercept"`
	// Coefficients are watts per event per second, aligned with Events.
	Coefficients []float64 `json:"coefficients"`
	// R2 is the training goodness of fit.
	R2 float64 `json:"r2"`
}

// EstimateTotalWatts evaluates the model on system-wide counter deltas
// observed over window.
func (b *BertranModel) EstimateTotalWatts(deltas hpc.Counts, window time.Duration) (float64, error) {
	if window <= 0 {
		return 0, errors.New("baseline: non-positive window")
	}
	if len(b.Events) != len(b.Coefficients) {
		return 0, errors.New("baseline: model events/coefficients mismatch")
	}
	watts := b.Intercept
	for i, e := range b.Events {
		watts += b.Coefficients[i] * float64(deltas.Get(e)) / window.Seconds()
	}
	if watts < 0 {
		watts = 0
	}
	return watts, nil
}

// BertranCalibrationOptions tunes the single-frequency sweep.
type BertranCalibrationOptions struct {
	Levels         []float64
	StepDuration   time.Duration
	SettleDuration time.Duration
	SampleInterval time.Duration
	Events         []hpc.Event
}

// DefaultBertranOptions mirrors the scale of the package's quick calibration.
func DefaultBertranOptions() BertranCalibrationOptions {
	return BertranCalibrationOptions{
		Levels:         []float64{0.25, 0.5, 0.75, 1.0},
		StepDuration:   2 * time.Second,
		SettleDuration: 500 * time.Millisecond,
		SampleInterval: 250 * time.Millisecond,
		Events:         hpc.GenericEvents(),
	}
}

// CalibrateBertranModel learns the decomposable model at the machine's
// nominal (base) frequency, mirroring the fixed-frequency methodology of the
// comparator paper.
func CalibrateBertranModel(template machine.Config, opts BertranCalibrationOptions) (*BertranModel, error) {
	if len(opts.Levels) == 0 || opts.StepDuration <= 0 || opts.SampleInterval <= 0 {
		return nil, errors.New("baseline: invalid Bertran calibration options")
	}
	if len(opts.Events) == 0 {
		opts.Events = hpc.GenericEvents()
	}
	m, err := machine.New(template)
	if err != nil {
		return nil, err
	}
	if err := m.PinAllFrequencies(m.Spec().BaseFrequencyMHz); err != nil {
		return nil, err
	}
	spy, err := powermeter.NewPowerSpy(m, powermeter.DefaultPowerSpyConfig())
	if err != nil {
		return nil, err
	}

	kinds := []func(level float64) (workload.Generator, error){
		func(level float64) (workload.Generator, error) { return workload.CPUStress(level, 0) },
		func(level float64) (workload.Generator, error) { return workload.MemoryStress(level, 0) },
		func(level float64) (workload.Generator, error) { return workload.MixedStress(0.5, level, 0) },
	}
	var x [][]float64
	var y []float64
	for _, mk := range kinds {
		for _, level := range opts.Levels {
			pids := make([]int, 0, m.Topology().NumLogical())
			for i := 0; i < m.Topology().NumLogical(); i++ {
				gen, err := mk(level)
				if err != nil {
					return nil, err
				}
				p, err := m.Spawn(gen)
				if err != nil {
					return nil, err
				}
				pids = append(pids, p.PID())
			}
			if _, err := m.Run(opts.SettleDuration); err != nil {
				return nil, err
			}
			set, err := hpc.OpenCounterSet(m.Registry(), opts.Events, hpc.AllPIDs, hpc.AllCPUs)
			if err != nil {
				return nil, err
			}
			if err := set.Enable(); err != nil {
				return nil, err
			}
			steps := int(opts.StepDuration / opts.SampleInterval)
			for s := 0; s < steps; s++ {
				if _, err := m.Run(opts.SampleInterval); err != nil {
					return nil, err
				}
				deltas, err := set.ReadDelta()
				if err != nil {
					return nil, err
				}
				row := make([]float64, len(opts.Events))
				for j, e := range opts.Events {
					row[j] = float64(deltas.Get(e)) / opts.SampleInterval.Seconds()
				}
				x = append(x, row)
				y = append(y, spy.Sample().Watts)
			}
			if err := set.Close(); err != nil {
				return nil, err
			}
			for _, pid := range pids {
				if err := m.Kill(pid); err != nil {
					return nil, err
				}
			}
		}
	}
	fit, err := stats.NonNegativeOLS(x, y, stats.OLSOptions{FitIntercept: true, Ridge: 1e-6})
	if err != nil {
		return nil, fmt.Errorf("baseline: fit Bertran model: %w", err)
	}
	return &BertranModel{
		Events:       append([]hpc.Event(nil), opts.Events...),
		Intercept:    fit.Intercept,
		Coefficients: fit.Coefficients,
		R2:           fit.R2,
	}, nil
}
