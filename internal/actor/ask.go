package actor

import (
	"errors"
	"fmt"
	"time"
)

// ErrAskTimeout is returned when an Ask receives no reply within its timeout.
var ErrAskTimeout = errors.New("actor: ask timed out")

// DefaultAskTimeout bounds Ask calls made with a non-positive timeout.
const DefaultAskTimeout = 5 * time.Second

// Ask implements the request/reply pattern over the one-way mailbox: it
// creates a buffered reply channel, lets build wrap it into a request message,
// enqueues the request and waits for the reply. The behaviour answers by
// sending exactly one message on the channel it finds in the request.
//
// Ask returns ErrStopped when the target has been shut down and ErrAskTimeout
// when no reply arrives in time (for example because the behaviour panicked
// mid-request and was restarted by its supervisor).
func Ask(ref *Ref, build func(reply chan<- Message) Message, timeout time.Duration) (Message, error) {
	if ref == nil {
		return nil, errors.New("actor: ask needs a target")
	}
	if build == nil {
		return nil, errors.New("actor: ask needs a request builder")
	}
	if timeout <= 0 {
		timeout = DefaultAskTimeout
	}
	reply := make(chan Message, 1)
	if err := ref.Tell(build(reply)); err != nil {
		return nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case msg := <-reply:
		return msg, nil
	case <-timer.C:
		return nil, fmt.Errorf("ask %s: %w", ref.name, ErrAskTimeout)
	}
}
