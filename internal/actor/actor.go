// Package actor provides the lightweight actor runtime PowerAPI is built on.
// The paper's implementation relies on Akka actors ("an actor is a
// lightweight entity that runs concurrently and processes messages using an
// event-driven model"); this package reproduces the properties the paper
// depends on — concurrent actors with private state, asynchronous mailboxes,
// and a publish/subscribe event bus connecting the Sensor, Formula,
// Aggregator and Reporter components — using plain goroutines and channels.
package actor

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Message is any value exchanged between actors.
type Message any

// ErrStopped is returned when sending to an actor or system that has been
// shut down.
var ErrStopped = errors.New("actor: stopped")

// Behavior processes the messages of one actor. Receive is always invoked
// from a single goroutine, so the behaviour may keep unguarded private state.
type Behavior interface {
	Receive(ctx *Context, msg Message)
}

// BehaviorFunc adapts a function to the Behavior interface.
type BehaviorFunc func(ctx *Context, msg Message)

// Receive implements Behavior.
func (f BehaviorFunc) Receive(ctx *Context, msg Message) { f(ctx, msg) }

// Context is handed to a behaviour on every message.
type Context struct {
	system *System
	self   *Ref
}

// Self returns the reference of the actor processing the message.
func (c *Context) Self() *Ref { return c.self }

// System returns the actor system.
func (c *Context) System() *System { return c.system }

// Publish publishes a message on the system's event bus.
func (c *Context) Publish(topic string, msg Message) int {
	return c.system.Bus().Publish(topic, msg)
}

// Ref addresses one actor.
type Ref struct {
	name    string
	mailbox chan Message

	mu       sync.Mutex
	stopped  bool
	senders  sync.WaitGroup
	done     chan struct{}
	restarts atomic.Int64
	// rejecting is set by the supervision layer when the actor's restart
	// budget is exhausted: the goroutine keeps draining the mailbox (so
	// Shutdown never deadlocks) but new Tells fail fast with ErrStopped
	// instead of vanishing into a dead actor.
	rejecting atomic.Bool
}

// Name returns the actor's name.
func (r *Ref) Name() string { return r.name }

// Restarts returns how many Receive panics the supervision layer has
// recovered for this actor.
func (r *Ref) Restarts() int { return int(r.restarts.Load()) }

// Tell enqueues a message in the actor's mailbox. It blocks when the mailbox
// is full (backpressure) and returns ErrStopped once the actor has been shut
// down.
func (r *Ref) Tell(msg Message) error {
	if r.rejecting.Load() {
		return fmt.Errorf("tell %s: %w", r.name, ErrStopped)
	}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return fmt.Errorf("tell %s: %w", r.name, ErrStopped)
	}
	// Register as an in-flight sender before releasing the lock so stop()
	// cannot close the mailbox while the send below is pending.
	r.senders.Add(1)
	r.mu.Unlock()
	defer r.senders.Done()
	r.mailbox <- msg
	return nil
}

// stop marks the actor stopped so no further Tell can enqueue work, waits for
// in-flight sends to land, then closes the mailbox so the actor drains and
// exits.
func (r *Ref) stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	// The actor goroutine keeps consuming until the mailbox is closed, so
	// pending senders are guaranteed to make progress.
	r.senders.Wait()
	close(r.mailbox)
}

// System owns a set of actors and their event bus.
type System struct {
	name string
	bus  *EventBus

	mu      sync.Mutex
	actors  map[string]*Ref
	stopped bool
	wg      sync.WaitGroup
}

// NewSystem creates an actor system.
func NewSystem(name string) *System {
	return &System{
		name:   name,
		bus:    newEventBus(),
		actors: make(map[string]*Ref),
	}
}

// Name returns the system name.
func (s *System) Name() string { return s.name }

// Bus returns the system's event bus.
func (s *System) Bus() *EventBus { return s.bus }

// DefaultMailboxSize is used when Spawn is given a non-positive mailbox size.
// PowerAPI pipelines monitor many processes per tick; a small buffer absorbs
// the resulting bursts without blocking the Sensor.
const DefaultMailboxSize = 256

// Spawn starts a new actor. Names must be unique within the system. Receive
// panics are recovered and the actor keeps running with the same behaviour
// instance (state preserved); use SpawnSupervised to rebuild the behaviour
// from a factory or to bound the restart budget.
func (s *System) Spawn(name string, behavior Behavior, mailboxSize int) (*Ref, error) {
	if behavior == nil {
		return nil, errors.New("actor: spawn needs a behavior")
	}
	return s.spawn(name, behavior, func() Behavior { return behavior }, mailboxSize, UnlimitedRestarts())
}

// spawn registers the actor and starts its supervised receive loop.
func (s *System) spawn(name string, behavior Behavior, factory func() Behavior, mailboxSize int, policy RestartPolicy) (*Ref, error) {
	if name == "" {
		return nil, errors.New("actor: spawn needs a name")
	}
	if mailboxSize <= 0 {
		mailboxSize = DefaultMailboxSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return nil, fmt.Errorf("spawn %s: %w", name, ErrStopped)
	}
	if _, exists := s.actors[name]; exists {
		return nil, fmt.Errorf("actor: actor %q already exists", name)
	}
	ref := &Ref{
		name:    name,
		mailbox: make(chan Message, mailboxSize),
		done:    make(chan struct{}),
	}
	s.actors[name] = ref
	ctx := &Context{system: s, self: ref}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(ref.done)
		supervise(ref, ctx, behavior, factory, policy)
	}()
	return ref, nil
}

// Lookup returns the actor with the given name.
func (s *System) Lookup(name string) (*Ref, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.actors[name]
	if !ok {
		return nil, fmt.Errorf("actor: no actor named %q", name)
	}
	return ref, nil
}

// ActorNames returns the names of all spawned actors, sorted.
func (s *System) ActorNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.actors))
	for name := range s.actors {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Shutdown stops every actor and waits for their mailboxes to drain. It is
// idempotent.
func (s *System) Shutdown() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.stopped = true
	refs := make([]*Ref, 0, len(s.actors))
	for _, ref := range s.actors {
		refs = append(refs, ref)
	}
	s.mu.Unlock()

	for _, ref := range refs {
		ref.stop()
	}
	s.wg.Wait()
}

// EventBus is a topic-based publish/subscribe router between actors: the
// "event bus" of the paper's Figure 2 through which Sensor messages reach the
// Formula and power estimations reach the Aggregator and Reporter.
type EventBus struct {
	mu     sync.RWMutex
	topics map[string][]*Ref
}

func newEventBus() *EventBus {
	return &EventBus{topics: make(map[string][]*Ref)}
}

// Subscribe registers ref to receive every message published on topic.
func (b *EventBus) Subscribe(topic string, ref *Ref) error {
	if topic == "" {
		return errors.New("actor: empty topic")
	}
	if ref == nil {
		return errors.New("actor: nil subscriber")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, existing := range b.topics[topic] {
		if existing == ref {
			return nil
		}
	}
	b.topics[topic] = append(b.topics[topic], ref)
	return nil
}

// Unsubscribe removes ref from topic.
func (b *EventBus) Unsubscribe(topic string, ref *Ref) {
	b.mu.Lock()
	defer b.mu.Unlock()
	subs := b.topics[topic]
	for i, existing := range subs {
		if existing == ref {
			b.topics[topic] = append(subs[:i:i], subs[i+1:]...)
			return
		}
	}
}

// Publish delivers msg to every subscriber of topic and returns the number of
// actors the message was delivered to. Subscribers that have been stopped are
// skipped.
func (b *EventBus) Publish(topic string, msg Message) int {
	b.mu.RLock()
	subs := append([]*Ref(nil), b.topics[topic]...)
	b.mu.RUnlock()
	delivered := 0
	for _, ref := range subs {
		if err := ref.Tell(msg); err == nil {
			delivered++
		}
	}
	return delivered
}

// Subscribers returns how many actors listen on topic.
func (b *EventBus) Subscribers(topic string) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.topics[topic])
}
