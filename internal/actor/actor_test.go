package actor

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collector is a behaviour that records every message it receives.
type collector struct {
	mu   sync.Mutex
	msgs []Message
	wg   *sync.WaitGroup
}

func (c *collector) Receive(_ *Context, msg Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, msg)
	c.mu.Unlock()
	if c.wg != nil {
		c.wg.Done()
	}
}

func (c *collector) messages() []Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Message(nil), c.msgs...)
}

func TestSpawnValidation(t *testing.T) {
	s := NewSystem("test")
	defer s.Shutdown()
	if _, err := s.Spawn("", BehaviorFunc(func(*Context, Message) {}), 0); err == nil {
		t.Fatal("empty name should fail")
	}
	if _, err := s.Spawn("a", nil, 0); err == nil {
		t.Fatal("nil behavior should fail")
	}
	if _, err := s.Spawn("a", BehaviorFunc(func(*Context, Message) {}), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Spawn("a", BehaviorFunc(func(*Context, Message) {}), 0); err == nil {
		t.Fatal("duplicate name should fail")
	}
}

func TestTellDeliversInOrder(t *testing.T) {
	s := NewSystem("test")
	defer s.Shutdown()
	var wg sync.WaitGroup
	wg.Add(100)
	c := &collector{wg: &wg}
	ref, err := s.Spawn("collector", c, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := ref.Tell(i); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	msgs := c.messages()
	if len(msgs) != 100 {
		t.Fatalf("received %d messages, want 100", len(msgs))
	}
	for i, m := range msgs {
		if m != i {
			t.Fatalf("message %d = %v, want %d (FIFO order violated)", i, m, i)
		}
	}
}

func TestShutdownDrainsMailboxes(t *testing.T) {
	s := NewSystem("test")
	var processed atomic.Int64
	ref, err := s.Spawn("slow", BehaviorFunc(func(_ *Context, _ Message) {
		time.Sleep(time.Millisecond)
		processed.Add(1)
	}), 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := ref.Tell(i); err != nil {
			t.Fatal(err)
		}
	}
	s.Shutdown()
	if got := processed.Load(); got != n {
		t.Fatalf("processed %d messages before shutdown returned, want %d", got, n)
	}
	// After shutdown every Tell fails with ErrStopped.
	if err := ref.Tell("late"); !errors.Is(err, ErrStopped) {
		t.Fatalf("Tell after shutdown = %v, want ErrStopped", err)
	}
	// Shutdown is idempotent.
	s.Shutdown()
	// Spawning after shutdown fails.
	if _, err := s.Spawn("x", BehaviorFunc(func(*Context, Message) {}), 0); !errors.Is(err, ErrStopped) {
		t.Fatalf("Spawn after shutdown = %v, want ErrStopped", err)
	}
}

func TestLookupAndActorNames(t *testing.T) {
	s := NewSystem("test")
	defer s.Shutdown()
	_, _ = s.Spawn("b", BehaviorFunc(func(*Context, Message) {}), 0)
	_, _ = s.Spawn("a", BehaviorFunc(func(*Context, Message) {}), 0)
	names := s.ActorNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("ActorNames = %v", names)
	}
	if _, err := s.Lookup("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup("zzz"); err == nil {
		t.Fatal("lookup of unknown actor should fail")
	}
	if s.Name() != "test" {
		t.Fatalf("Name() = %q", s.Name())
	}
}

func TestEventBusPublishSubscribe(t *testing.T) {
	s := NewSystem("test")
	defer s.Shutdown()
	var wg sync.WaitGroup
	wg.Add(2)
	c1 := &collector{wg: &wg}
	c2 := &collector{wg: &wg}
	r1, _ := s.Spawn("sub1", c1, 0)
	r2, _ := s.Spawn("sub2", c2, 0)
	if err := s.Bus().Subscribe("power", r1); err != nil {
		t.Fatal(err)
	}
	if err := s.Bus().Subscribe("power", r2); err != nil {
		t.Fatal(err)
	}
	// Subscribing twice is a no-op.
	if err := s.Bus().Subscribe("power", r1); err != nil {
		t.Fatal(err)
	}
	if got := s.Bus().Subscribers("power"); got != 2 {
		t.Fatalf("Subscribers = %d, want 2", got)
	}
	if delivered := s.Bus().Publish("power", "hello"); delivered != 2 {
		t.Fatalf("Publish delivered to %d actors, want 2", delivered)
	}
	wg.Wait()
	if len(c1.messages()) != 1 || len(c2.messages()) != 1 {
		t.Fatal("both subscribers should have received the message")
	}
	// Publishing on an unknown topic delivers to nobody.
	if delivered := s.Bus().Publish("unknown", "x"); delivered != 0 {
		t.Fatalf("Publish on unknown topic delivered to %d actors", delivered)
	}
}

func TestEventBusSubscribeValidation(t *testing.T) {
	s := NewSystem("test")
	defer s.Shutdown()
	ref, _ := s.Spawn("a", BehaviorFunc(func(*Context, Message) {}), 0)
	if err := s.Bus().Subscribe("", ref); err == nil {
		t.Fatal("empty topic should fail")
	}
	if err := s.Bus().Subscribe("t", nil); err == nil {
		t.Fatal("nil subscriber should fail")
	}
}

func TestEventBusUnsubscribe(t *testing.T) {
	s := NewSystem("test")
	defer s.Shutdown()
	c := &collector{}
	ref, _ := s.Spawn("sub", c, 0)
	_ = s.Bus().Subscribe("topic", ref)
	s.Bus().Unsubscribe("topic", ref)
	if got := s.Bus().Subscribers("topic"); got != 0 {
		t.Fatalf("Subscribers after unsubscribe = %d", got)
	}
	if delivered := s.Bus().Publish("topic", "x"); delivered != 0 {
		t.Fatalf("Publish after unsubscribe delivered to %d actors", delivered)
	}
	// Unsubscribing an actor that is not subscribed is a no-op.
	s.Bus().Unsubscribe("topic", ref)
}

func TestContextPublishPipeline(t *testing.T) {
	// A two-stage pipeline: "doubler" doubles integers and republishes them
	// on another topic consumed by a collector, mimicking the
	// Sensor -> Formula -> Aggregator flow.
	s := NewSystem("pipeline")
	defer s.Shutdown()
	var wg sync.WaitGroup
	wg.Add(5)
	sink := &collector{wg: &wg}
	sinkRef, _ := s.Spawn("sink", sink, 0)
	_ = s.Bus().Subscribe("stage2", sinkRef)

	doubler, _ := s.Spawn("doubler", BehaviorFunc(func(ctx *Context, msg Message) {
		if v, ok := msg.(int); ok {
			ctx.Publish("stage2", v*2)
		}
	}), 0)
	_ = s.Bus().Subscribe("stage1", doubler)

	for i := 1; i <= 5; i++ {
		s.Bus().Publish("stage1", i)
	}
	wg.Wait()
	got := sink.messages()
	sum := 0
	for _, m := range got {
		v, ok := m.(int)
		if !ok {
			t.Fatalf("unexpected message type %T", m)
		}
		sum += v
	}
	if sum != 2*(1+2+3+4+5) {
		t.Fatalf("pipeline sum = %d, want 30", sum)
	}
}

func TestPublishSkipsStoppedSubscribers(t *testing.T) {
	s := NewSystem("test")
	c := &collector{}
	ref, _ := s.Spawn("sub", c, 0)
	_ = s.Bus().Subscribe("topic", ref)
	s.Shutdown()
	if delivered := s.Bus().Publish("topic", "x"); delivered != 0 {
		t.Fatalf("Publish delivered to stopped actor: %d", delivered)
	}
}

func TestConcurrentTell(t *testing.T) {
	s := NewSystem("test")
	var count atomic.Int64
	ref, _ := s.Spawn("counter", BehaviorFunc(func(_ *Context, _ Message) {
		count.Add(1)
	}), 128)
	var wg sync.WaitGroup
	const senders = 8
	const perSender = 500
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				_ = ref.Tell(j)
			}
		}()
	}
	wg.Wait()
	s.Shutdown()
	if got := count.Load(); got != senders*perSender {
		t.Fatalf("processed %d messages, want %d", got, senders*perSender)
	}
}
