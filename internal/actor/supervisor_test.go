package actor

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// panicky panics on the string "boom" and counts everything else.
type panicky struct {
	processed atomic.Int64
}

func (p *panicky) Receive(_ *Context, msg Message) {
	if msg == "boom" {
		panic("kaboom")
	}
	p.processed.Add(1)
}

func TestSpawnRecoversPanics(t *testing.T) {
	s := NewSystem("test")
	b := &panicky{}
	ref, err := s.Spawn("fragile", b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range []Message{1, "boom", 2, "boom", 3} {
		if err := ref.Tell(msg); err != nil {
			t.Fatal(err)
		}
	}
	// Shutdown drains the mailbox; with an unsupervised seed runtime the
	// first panic would have killed the process (or deadlocked this call).
	s.Shutdown()
	if got := b.processed.Load(); got != 3 {
		t.Fatalf("processed %d messages across panics, want 3", got)
	}
	if got := ref.Restarts(); got != 2 {
		t.Fatalf("Restarts() = %d, want 2", got)
	}
}

func TestSupervisedRestartRebuildsBehavior(t *testing.T) {
	s := NewSystem("test")
	var built atomic.Int64
	var panics []PanicInfo
	var mu sync.Mutex
	policy := RestartPolicy{
		MaxRestarts: -1,
		OnPanic: func(info PanicInfo) {
			mu.Lock()
			panics = append(panics, info)
			mu.Unlock()
		},
	}
	ref, err := s.SpawnSupervised("fresh", func() Behavior {
		built.Add(1)
		return &panicky{}
	}, 0, policy)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range []Message{"boom", 1, "boom", 2} {
		if err := ref.Tell(msg); err != nil {
			t.Fatal(err)
		}
	}
	s.Shutdown()
	// Initial build plus one rebuild per panic.
	if got := built.Load(); got != 3 {
		t.Fatalf("factory invoked %d times, want 3", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(panics) != 2 {
		t.Fatalf("OnPanic called %d times, want 2", len(panics))
	}
	for i, info := range panics {
		if info.Actor != "fresh" || info.Value != "kaboom" || info.Restarts != i+1 {
			t.Fatalf("PanicInfo[%d] = %+v", i, info)
		}
		if len(info.Stack) == 0 {
			t.Fatalf("PanicInfo[%d] has no stack", i)
		}
	}
}

func TestRestartBudgetExhaustionKeepsDraining(t *testing.T) {
	s := NewSystem("test")
	b := &panicky{}
	ref, err := s.SpawnSupervised("doomed", func() Behavior { return b }, 4, RestartPolicy{MaxRestarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Two panics exceed the budget of one restart; the actor must then drop
	// messages instead of blocking its senders.
	for _, msg := range []Message{"boom", "boom", 1, 2, 3} {
		if err := ref.Tell(msg); err != nil {
			t.Fatal(err)
		}
	}
	// Once the budget is exhausted, new Tells must fail fast with ErrStopped
	// instead of feeding a dead actor.
	var tellErr error
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(time.Millisecond) {
		if tellErr = ref.Tell(99); errors.Is(tellErr, ErrStopped) {
			break
		}
	}
	if !errors.Is(tellErr, ErrStopped) {
		t.Fatalf("Tell to a budget-exhausted actor = %v, want ErrStopped", tellErr)
	}
	done := make(chan struct{})
	go func() {
		s.Shutdown() // must not deadlock on the dead child
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown deadlocked on an actor whose restart budget was exhausted")
	}
	if got := b.processed.Load(); got != 0 {
		t.Fatalf("dead actor processed %d messages, want 0", got)
	}
	if got := ref.Restarts(); got != 2 {
		t.Fatalf("Restarts() = %d, want 2", got)
	}
}

func TestSpawnSupervisedValidation(t *testing.T) {
	s := NewSystem("test")
	defer s.Shutdown()
	if _, err := s.SpawnSupervised("a", nil, 0, UnlimitedRestarts()); err == nil {
		t.Fatal("nil factory should fail")
	}
	if _, err := s.SpawnSupervised("a", func() Behavior { return nil }, 0, UnlimitedRestarts()); err == nil {
		t.Fatal("nil initial behavior should fail")
	}
}

func TestAskReplies(t *testing.T) {
	s := NewSystem("test")
	defer s.Shutdown()
	ref, err := s.Spawn("doubler", BehaviorFunc(func(_ *Context, msg Message) {
		if req, ok := msg.(askReq); ok {
			req.reply <- 42
		}
	}), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Ask(ref, func(reply chan<- Message) Message { return askReq{reply: reply} }, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("Ask reply = %v, want 42", got)
	}
}

func TestAskTimeout(t *testing.T) {
	s := NewSystem("test")
	defer s.Shutdown()
	ref, err := s.Spawn("mute", BehaviorFunc(func(*Context, Message) {}), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Ask(ref, func(reply chan<- Message) Message { return askReq{reply: reply} }, 20*time.Millisecond)
	if !errors.Is(err, ErrAskTimeout) {
		t.Fatalf("Ask to a mute actor = %v, want ErrAskTimeout", err)
	}
}

func TestAskValidationAndStopped(t *testing.T) {
	if _, err := Ask(nil, func(chan<- Message) Message { return nil }, 0); err == nil {
		t.Fatal("nil target should fail")
	}
	s := NewSystem("test")
	ref, _ := s.Spawn("a", BehaviorFunc(func(*Context, Message) {}), 0)
	if _, err := Ask(ref, nil, 0); err == nil {
		t.Fatal("nil builder should fail")
	}
	s.Shutdown()
	_, err := Ask(ref, func(reply chan<- Message) Message { return askReq{reply: reply} }, time.Second)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Ask to stopped actor = %v, want ErrStopped", err)
	}
}

// TestEventBusConcurrentSubscribeUnsubscribe exercises the bus under -race:
// subscribers come and go while publishers fan out messages.
func TestEventBusConcurrentSubscribeUnsubscribe(t *testing.T) {
	s := NewSystem("test")
	defer s.Shutdown()
	const topics = 4
	const actorsPerTopic = 8
	refs := make([]*Ref, topics*actorsPerTopic)
	for i := range refs {
		ref, err := s.Spawn(fmt.Sprintf("sub-%d", i), BehaviorFunc(func(*Context, Message) {}), 64)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churners subscribe/unsubscribe their actor in a loop.
	for i, ref := range refs {
		wg.Add(1)
		go func(i int, ref *Ref) {
			defer wg.Done()
			topic := fmt.Sprintf("topic-%d", i%topics)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.Bus().Subscribe(topic, ref)
				s.Bus().Unsubscribe(topic, ref)
			}
		}(i, ref)
	}
	// Publishers hammer every topic concurrently.
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Bus().Publish(fmt.Sprintf("topic-%d", i%topics), i)
				s.Bus().Subscribers(fmt.Sprintf("topic-%d", i%topics))
			}
		}(p)
	}
	// Let publishers finish, then stop the churners.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("bus churn test wedged")
	}
}
