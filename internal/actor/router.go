package actor

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"
)

// RouterStrategy selects how a Router picks the child for a keyed message.
type RouterStrategy int

const (
	// RoundRobin cycles through the pool, ignoring routing keys. Suited to
	// stateless children (e.g. pure Formula shards).
	RoundRobin RouterStrategy = iota
	// ConsistentHash places the children on a hash ring with virtual nodes
	// and maps every routing key to the nearest child clockwise. The same key
	// always reaches the same child for a fixed pool, which is what lets
	// stateful Sensor shards own a stable partition of the monitored PIDs.
	ConsistentHash
)

// virtualNodes is how many ring points each child contributes. Enough points
// smooth the key distribution across small pools without making ring
// construction noticeable.
const virtualNodes = 97

type ringPoint struct {
	hash  uint64
	child int
}

// Router dispatches messages over a fixed pool of child actors — the
// actor-level primitive behind the sharded PowerAPI pipeline, mirroring how
// Akka routers fan work out to a pool of routees.
type Router struct {
	strategy RouterStrategy
	children []*Ref
	ring     []ringPoint
	next     atomic.Uint64
}

// NewRouter builds a router over the given children.
func NewRouter(strategy RouterStrategy, children ...*Ref) (*Router, error) {
	if len(children) == 0 {
		return nil, errors.New("actor: router needs at least one child")
	}
	for i, child := range children {
		if child == nil {
			return nil, fmt.Errorf("actor: router child %d is nil", i)
		}
	}
	r := &Router{
		strategy: strategy,
		children: append([]*Ref(nil), children...),
	}
	if strategy == ConsistentHash {
		r.ring = make([]ringPoint, 0, len(children)*virtualNodes)
		for i, child := range r.children {
			for v := 0; v < virtualNodes; v++ {
				r.ring = append(r.ring, ringPoint{hash: hashString(fmt.Sprintf("%s#%d", child.Name(), v)), child: i})
			}
		}
		sort.Slice(r.ring, func(a, b int) bool {
			if r.ring[a].hash != r.ring[b].hash {
				return r.ring[a].hash < r.ring[b].hash
			}
			return r.ring[a].child < r.ring[b].child
		})
	}
	return r, nil
}

// Children returns the pool (a copy).
func (r *Router) Children() []*Ref {
	return append([]*Ref(nil), r.children...)
}

// Size returns the number of children in the pool.
func (r *Router) Size() int { return len(r.children) }

// IndexFor returns the pool index a routing key maps to. Under RoundRobin
// the key is reduced modulo the pool size (still deterministic per key).
func (r *Router) IndexFor(key uint64) int {
	if r.strategy != ConsistentHash {
		return int(key % uint64(len(r.children)))
	}
	h := hashUint64(key)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0 // wrap around the ring
	}
	return r.ring[i].child
}

// ShardFor returns the child a routing key maps to.
func (r *Router) ShardFor(key uint64) *Ref {
	return r.children[r.IndexFor(key)]
}

// Route delivers a keyed message to the child owning the key.
func (r *Router) Route(key uint64, msg Message) error {
	return r.ShardFor(key).Tell(msg)
}

// Tell delivers an unkeyed message to the next child in round-robin order.
func (r *Router) Tell(msg Message) error {
	i := (r.next.Add(1) - 1) % uint64(len(r.children))
	return r.children[i].Tell(msg)
}

// Broadcast delivers the message to every child and returns how many accepted
// it (stopped children are skipped, like EventBus.Publish).
func (r *Router) Broadcast(msg Message) int {
	delivered := 0
	for _, child := range r.children {
		if err := child.Tell(msg); err == nil {
			delivered++
		}
	}
	return delivered
}

// Ask performs a request/reply exchange with the child owning the key.
func (r *Router) Ask(key uint64, build func(reply chan<- Message) Message, timeout time.Duration) (Message, error) {
	return Ask(r.ShardFor(key), build, timeout)
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// hashUint64 is FNV-1a over the key's 8 little-endian bytes, inlined so the
// per-message routing path does not allocate a hasher.
func hashUint64(key uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= key & 0xff
		h *= prime64
		key >>= 8
	}
	return h
}
