package actor

import (
	"fmt"
	"sync"
	"testing"
)

// spawnPool spawns n collectors and returns their refs alongside the
// collectors, so tests can see which child received which message.
func spawnPool(t *testing.T, s *System, n int) ([]*Ref, []*collector) {
	t.Helper()
	refs := make([]*Ref, n)
	cols := make([]*collector, n)
	for i := 0; i < n; i++ {
		cols[i] = &collector{}
		ref, err := s.Spawn(fmt.Sprintf("child-%d", i), cols[i], 0)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	return refs, cols
}

func TestRouterValidation(t *testing.T) {
	s := NewSystem("test")
	defer s.Shutdown()
	if _, err := NewRouter(ConsistentHash); err == nil {
		t.Fatal("empty pool should fail")
	}
	if _, err := NewRouter(ConsistentHash, nil); err == nil {
		t.Fatal("nil child should fail")
	}
	refs, _ := spawnPool(t, s, 2)
	r, err := NewRouter(ConsistentHash, refs...)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 2 || len(r.Children()) != 2 {
		t.Fatalf("Size = %d, Children = %d", r.Size(), len(r.Children()))
	}
}

func TestConsistentHashRoutingIsStable(t *testing.T) {
	s := NewSystem("test")
	defer s.Shutdown()
	refs, _ := spawnPool(t, s, 8)
	r, err := NewRouter(ConsistentHash, refs...)
	if err != nil {
		t.Fatal(err)
	}
	// The same key must always map to the same shard — the property that
	// lets a PID's counter state live on exactly one Sensor shard.
	first := make(map[uint64]*Ref)
	for key := uint64(0); key < 2000; key++ {
		first[key] = r.ShardFor(key)
	}
	for round := 0; round < 3; round++ {
		for key := uint64(0); key < 2000; key++ {
			if got := r.ShardFor(key); got != first[key] {
				t.Fatalf("key %d moved from %s to %s between calls", key, first[key].Name(), got.Name())
			}
		}
	}
	// A second router over the same pool must agree (the mapping is a pure
	// function of names and key, not construction order randomness).
	r2, err := NewRouter(ConsistentHash, refs...)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 2000; key++ {
		if r2.ShardFor(key) != first[key] {
			t.Fatalf("key %d routed differently by an identical router", key)
		}
	}
}

func TestConsistentHashSpreadsKeys(t *testing.T) {
	s := NewSystem("test")
	defer s.Shutdown()
	refs, _ := spawnPool(t, s, 8)
	r, err := NewRouter(ConsistentHash, refs...)
	if err != nil {
		t.Fatal(err)
	}
	perShard := make(map[*Ref]int)
	const keys = 8000
	for key := uint64(0); key < keys; key++ {
		perShard[r.ShardFor(key)]++
	}
	if len(perShard) != len(refs) {
		t.Fatalf("only %d of %d shards received keys", len(perShard), len(refs))
	}
	// Virtual nodes should keep the imbalance moderate: no shard may own
	// more than 3x its fair share.
	fair := keys / len(refs)
	for ref, n := range perShard {
		if n > 3*fair {
			t.Fatalf("shard %s owns %d of %d keys (fair share %d)", ref.Name(), n, keys, fair)
		}
	}
}

func TestRouterRouteDelivers(t *testing.T) {
	s := NewSystem("test")
	refs, cols := spawnPool(t, s, 4)
	r, err := NewRouter(ConsistentHash, refs...)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 100
	for key := uint64(0); key < keys; key++ {
		if err := r.Route(key, key); err != nil {
			t.Fatal(err)
		}
	}
	s.Shutdown()
	total := 0
	for i, col := range cols {
		msgs := col.messages()
		total += len(msgs)
		// Every message must have been routed to the shard that owns it.
		for _, m := range msgs {
			if r.ShardFor(m.(uint64)) != refs[i] {
				t.Fatalf("key %v delivered to %s, not its owner", m, refs[i].Name())
			}
		}
	}
	if total != keys {
		t.Fatalf("delivered %d messages, want %d", total, keys)
	}
}

func TestRoundRobinCyclesEvenly(t *testing.T) {
	s := NewSystem("test")
	refs, cols := spawnPool(t, s, 4)
	r, err := NewRouter(RoundRobin, refs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := r.Tell(i); err != nil {
			t.Fatal(err)
		}
	}
	s.Shutdown()
	for i, col := range cols {
		if got := len(col.messages()); got != 25 {
			t.Fatalf("round-robin child %d received %d messages, want 25", i, got)
		}
	}
}

func TestRouterBroadcast(t *testing.T) {
	s := NewSystem("test")
	refs, cols := spawnPool(t, s, 3)
	r, err := NewRouter(ConsistentHash, refs...)
	if err != nil {
		t.Fatal(err)
	}
	if delivered := r.Broadcast("tick"); delivered != 3 {
		t.Fatalf("Broadcast delivered to %d children, want 3", delivered)
	}
	s.Shutdown()
	for i, col := range cols {
		if len(col.messages()) != 1 {
			t.Fatalf("child %d missed the broadcast", i)
		}
	}
	// After shutdown nothing is deliverable.
	if delivered := r.Broadcast("tick"); delivered != 0 {
		t.Fatalf("Broadcast after shutdown delivered to %d children", delivered)
	}
}

func TestRouterAskRoutesToOwner(t *testing.T) {
	s := NewSystem("test")
	defer s.Shutdown()
	refs := make([]*Ref, 4)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("echo-%d", i)
		ref, err := s.Spawn(name, BehaviorFunc(func(_ *Context, msg Message) {
			if req, ok := msg.(askReq); ok {
				req.reply <- name
			}
		}), 0)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	r, err := NewRouter(ConsistentHash, refs...)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	owners := make(map[uint64]string)
	for key := uint64(0); key < 50; key++ {
		reply, err := r.Ask(key, func(reply chan<- Message) Message {
			return askReq{reply: reply}
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		owners[key] = reply.(string)
		mu.Unlock()
		if want := r.ShardFor(key).Name(); reply.(string) != want {
			t.Fatalf("key %d answered by %v, want %s", key, reply, want)
		}
	}
}

type askReq struct {
	reply chan<- Message
}
