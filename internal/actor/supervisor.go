package actor

import (
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync/atomic"
)

// This file implements the supervision layer of the actor runtime. Akka — the
// runtime the paper builds on — never lets a misbehaving child take the whole
// hierarchy down: a supervisor catches the failure and applies a restart
// strategy. The seed runtime instead let a panicking Behavior kill its
// goroutine (and, being an unrecovered panic, the whole process); even a
// hypothetical recovery would have left the mailbox undrained, deadlocking
// pending senders and Shutdown. Here every actor goroutine recovers Receive
// panics and consults a RestartPolicy.

// PanicInfo describes one recovered Receive panic, as passed to
// RestartPolicy.OnPanic.
type PanicInfo struct {
	// Actor is the name of the panicking actor.
	Actor string
	// Restarts is the total number of panics this actor has recovered from,
	// including this one.
	Restarts int
	// Value is the value the behaviour panicked with.
	Value any
	// Stack is the goroutine stack captured at recovery time.
	Stack []byte
}

// RestartPolicy governs what the supervision layer does after a Behavior
// panics while processing a message.
type RestartPolicy struct {
	// MaxRestarts bounds how many times the actor is restarted. Negative
	// means unlimited. Once the budget is exhausted the actor stops
	// processing but keeps draining (and discarding) its mailbox, so pending
	// senders and System.Shutdown never deadlock on a dead child.
	MaxRestarts int
	// OnPanic, when non-nil, is invoked from the actor's own goroutine after
	// every recovered panic — the hook the PowerAPI pipeline uses to route
	// failures to its error topic.
	OnPanic func(info PanicInfo)
}

// UnlimitedRestarts is the default policy: always recover, always restart.
func UnlimitedRestarts() RestartPolicy { return RestartPolicy{MaxRestarts: -1} }

// SpawnSupervised starts an actor whose behaviour is (re)built by factory.
// After a recovered panic the policy decides whether the child is restarted;
// a restart replaces the behaviour with a fresh factory() instance, so any
// state corrupted by the failure is discarded. A factory may also return the
// same instance every time when the state must survive restarts (this is what
// the plain Spawn does).
func (s *System) SpawnSupervised(name string, factory func() Behavior, mailboxSize int, policy RestartPolicy) (*Ref, error) {
	if factory == nil {
		return nil, errors.New("actor: spawn needs a behavior factory")
	}
	behavior := factory()
	if behavior == nil {
		return nil, fmt.Errorf("actor: factory for %q returned a nil behavior", name)
	}
	return s.spawn(name, behavior, factory, mailboxSize, policy)
}

// supervise runs one actor's receive loop under the restart policy. It only
// returns when the mailbox has been closed and drained.
func supervise(ref *Ref, ctx *Context, behavior Behavior, factory func() Behavior, policy RestartPolicy) {
	alive := true
	for msg := range ref.mailbox {
		if !alive {
			// Restart budget exhausted: keep draining so senders already
			// blocked in Tell and System.Shutdown still make progress (new
			// Tells fail fast via the rejecting flag).
			continue
		}
		value, stack, panicked := deliver(ctx, behavior, msg)
		if !panicked {
			continue
		}
		restarts := int(ref.restarts.Add(1))
		notify(ref.name, restarts, value, stack, policy)
		if policy.MaxRestarts >= 0 && restarts > policy.MaxRestarts {
			alive = false
			ref.rejecting.Store(true)
			continue
		}
		if behavior = factory(); behavior == nil {
			alive = false
			ref.rejecting.Store(true)
		}
	}
}

// pkgLogger is the package's structured logger (SetLogger); nil falls back to
// slog.Default(), whose handler and level the application controls — the
// runtime never writes to stderr unconditionally.
var pkgLogger atomic.Pointer[slog.Logger]

// SetLogger routes the runtime's log events (recovered panics, restart
// decisions) through the given slog logger. Pass nil to revert to
// slog.Default(). Safe to call concurrently with running actors.
func SetLogger(l *slog.Logger) { pkgLogger.Store(l) }

func logger() *slog.Logger {
	if l := pkgLogger.Load(); l != nil {
		return l
	}
	return slog.Default()
}

// notify reports a recovered panic through the policy's hook, or through the
// package logger when no hook is installed — a recovery must never be
// completely silent.
func notify(name string, restarts int, value any, stack []byte, policy RestartPolicy) {
	if policy.OnPanic == nil {
		logger().Error("actor panicked, restarting",
			"actor", name, "restarts", restarts, "panic", value, "stack", string(stack))
		return
	}
	// A hook is installed: it owns the reporting, the runtime only traces the
	// restart event at debug level for pipelines that want the full timeline.
	logger().Debug("actor panicked, invoking supervision hook",
		"actor", name, "restarts", restarts, "panic", value)
	// The hook runs under its own recover: a panicking hook must not take
	// down the supervision loop it reports for.
	defer func() { _ = recover() }()
	policy.OnPanic(PanicInfo{Actor: name, Restarts: restarts, Value: value, Stack: stack})
}

// deliver invokes Receive for one message, converting a panic into a value.
func deliver(ctx *Context, behavior Behavior, msg Message) (value any, stack []byte, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			value, stack, panicked = r, debug.Stack(), true
		}
	}()
	behavior.Receive(ctx, msg)
	return nil, nil, false
}
