package source

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"powerapi/internal/cpu"
	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/rapl"
	"powerapi/internal/target"
	"powerapi/internal/workload"
)

func newTestMachine(t *testing.T) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Governor = cpu.GovernorPerformance
	cfg.PowerNoiseStdDevWatts = 0
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func spawn(t *testing.T, m *machine.Machine, level float64) int {
	t.Helper()
	gen, err := workload.CPUStress(level, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Spawn(gen)
	if err != nil {
		t.Fatal(err)
	}
	return p.PID()
}

func TestParseMode(t *testing.T) {
	for _, m := range Modes() {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if got, err := ParseMode("RAPL"); err != nil || got != ModeRAPL {
		t.Fatalf("ParseMode is not case-insensitive: %v, %v", got, err)
	}
	if _, err := ParseMode("powertop"); err == nil {
		t.Fatal("unknown mode should fail")
	}
	if Mode(0).Valid() || !ModeBlended.Valid() {
		t.Fatal("Valid() broken")
	}
	if ModeHPC.Attributed() || !ModeRAPL.Attributed() || !ModeProcfs.Attributed() || !ModeBlended.Attributed() {
		t.Fatal("Attributed() broken")
	}
}

func TestHPCSourceReadsCounterDeltas(t *testing.T) {
	m := newTestMachine(t)
	pid := spawn(t, m, 0.8)
	src, err := NewHPC(m, hpc.PaperEvents())
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "hpc" || src.Scope() != ScopeProcess {
		t.Fatal("hpc source identity broken")
	}
	if err := src.Open([]target.Target{target.Process(pid)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	sample, err := src.Sample(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sample.FrequencyMHz <= 0 {
		t.Fatalf("frequency %d", sample.FrequencyMHz)
	}
	if len(sample.Targets) != 1 || sample.Targets[0].Target != target.Process(pid) {
		t.Fatalf("samples = %+v", sample.Targets)
	}
	if sample.Targets[0].Deltas.Get(hpc.Instructions) == 0 {
		t.Fatal("busy process retired no instructions")
	}
	// Deltas reset between samples: a second immediate sample is near zero.
	again, err := src.Sample(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Targets[0].Deltas.Get(hpc.Instructions); got != 0 {
		t.Fatalf("second sample without elapsed time has %d instructions, want 0", got)
	}
	if err := src.Remove(target.Process(pid)); err != nil {
		t.Fatal(err)
	}
	if err := src.Remove(target.Process(pid)); err == nil {
		t.Fatal("removing twice should fail")
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Sample(context.Background()); err == nil {
		t.Fatal("sampling a closed source should fail")
	}
}

func TestHPCSourceValidation(t *testing.T) {
	m := newTestMachine(t)
	if _, err := NewHPC(nil, hpc.PaperEvents()); err == nil {
		t.Fatal("nil machine should fail")
	}
	if _, err := NewHPC(m, nil); err == nil {
		t.Fatal("no events should fail")
	}
	src, err := NewHPC(m, hpc.PaperEvents())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Add(target.Process(424242)); err == nil {
		t.Fatal("adding an unknown pid should fail")
	}
	pid := spawn(t, m, 0.5)
	if err := src.Add(target.Process(pid)); err != nil {
		t.Fatal(err)
	}
	if err := src.Add(target.Process(pid)); err != nil {
		t.Fatalf("adding twice should be idempotent: %v", err)
	}
}

func TestProcfsSourceWeighsByCPUTime(t *testing.T) {
	m := newTestMachine(t)
	heavy := spawn(t, m, 1.0)
	light := spawn(t, m, 0.2)
	src, err := NewProcfs(m)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "procfs" || src.Scope() != ScopeProcess {
		t.Fatal("procfs source identity broken")
	}
	if err := src.Open([]target.Target{target.Process(heavy), target.Process(light)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	sample, err := src.Sample(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	weights := make(map[int]float64, len(sample.Targets))
	for _, ts := range sample.Targets {
		weights[ts.Target.PID] = ts.Weight
	}
	if weights[heavy] <= weights[light] {
		t.Fatalf("heavy weight %v not above light weight %v", weights[heavy], weights[light])
	}
	// Weights are CPU seconds: bounded by the window times the CPU count.
	limit := 2.0 * float64(m.Spec().LogicalCPUs())
	if weights[heavy] <= 0 || weights[heavy] > limit {
		t.Fatalf("heavy weight %v outside (0, %v]", weights[heavy], limit)
	}
	// The second sample covers a fresh window.
	again, err := src.Sample(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range again.Targets {
		if ts.Weight != 0 {
			t.Fatalf("no simulated time elapsed but %v has weight %v", ts.Target, ts.Weight)
		}
	}
}

func TestUtilizationTotalTracksLoad(t *testing.T) {
	m := newTestMachine(t)
	src, err := NewUtilizationTotal(m)
	if err != nil {
		t.Fatal(err)
	}
	if src.Scope() != ScopeMachine {
		t.Fatal("util source must be machine scope")
	}
	if err := src.Open(nil); err != nil {
		t.Fatal(err)
	}
	// No elapsed time yet: no measurement rather than a division by zero.
	if zero, err := src.Sample(context.Background()); err != nil || zero.HasMeasured {
		t.Fatalf("zero-window sample = %+v, %v", zero, err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	idle, err := src.Sample(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !idle.HasMeasured {
		t.Fatal("util source should measure after elapsed time")
	}
	spawn(t, m, 1.0)
	spawn(t, m, 1.0)
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	busy, err := src.Sample(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if busy.MeasuredWatts <= idle.MeasuredWatts {
		t.Fatalf("busy estimate %v W not above idle estimate %v W", busy.MeasuredWatts, idle.MeasuredWatts)
	}
	if busy.MeasuredWatts > m.Spec().TDPWatts {
		t.Fatalf("estimate %v W above TDP %v W", busy.MeasuredWatts, m.Spec().TDPWatts)
	}
	// The utilisation is integrated over the window, not the final tick:
	// two flat-out processes on this spec imply roughly half the logical
	// CPUs busy for the whole second.
	if busy.MeasuredWatts < 0.2*m.Spec().TDPWatts {
		t.Fatalf("window-integrated estimate %v W implausibly low", busy.MeasuredWatts)
	}
}

func TestRAPLSourceMeasuresPackagePower(t *testing.T) {
	m := newTestMachine(t)
	spawn(t, m, 0.9)
	src, err := NewMachineRAPL(m, rapl.DomainPackage)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "rapl" || src.Scope() != ScopeMachine {
		t.Fatal("rapl source identity broken")
	}
	if err := src.Open(nil); err != nil {
		t.Fatal(err)
	}
	start := m.CPUEnergyJoules()
	if _, err := m.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	sample, err := src.Sample(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !sample.HasMeasured {
		t.Fatal("rapl sample has no measurement after elapsed time")
	}
	truth := (m.CPUEnergyJoules() - start) / 2.0
	if math.Abs(sample.MeasuredWatts-truth) > 0.05 {
		t.Fatalf("rapl power %v W, ground truth %v W", sample.MeasuredWatts, truth)
	}
	// No elapsed time -> no measurement, not an infinity.
	empty, err := src.Sample(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if empty.HasMeasured {
		t.Fatalf("zero-window sample claims %v W", empty.MeasuredWatts)
	}
}

// flakyReader is a rapl.Reader whose DRAM domain can be made to fail,
// exercising the partial-failure energy accounting of the RAPL source.
type flakyReader struct {
	now     time.Duration
	pkgJ    float64
	dramJ   float64
	dramErr error
}

func (f *flakyReader) CumulativeJoules(_ int, domain rapl.Domain) (float64, error) {
	if domain == rapl.DomainDRAM {
		if f.dramErr != nil {
			return 0, f.dramErr
		}
		return f.dramJ, nil
	}
	return f.pkgJ, nil
}

func (f *flakyReader) Now() time.Duration { return f.now }

func TestRAPLSourcePartialFailureLosesNoEnergy(t *testing.T) {
	r := &flakyReader{}
	meter, err := rapl.NewMeter(r, rapl.Config{Sockets: 1, EnergyUnitJoules: 1, UpdatePeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewRAPL(meter, func() time.Duration { return r.now }, rapl.DomainPackage, rapl.DomainDRAM)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Open(nil); err != nil {
		t.Fatal(err)
	}
	// First interval: 100 J package + 10 J DRAM over 1 s, but the DRAM read
	// fails. The package counter has already advanced its baseline.
	r.now = time.Second
	r.pkgJ, r.dramJ = 100, 10
	r.dramErr = fmt.Errorf("msr read stalled")
	if _, err := src.Sample(context.Background()); err == nil {
		t.Fatal("partial read failure must surface")
	}
	// Second interval: another 100 J + 10 J over 1 s, DRAM recovered. The
	// measurement must cover BOTH intervals: 220 J over 2 s.
	r.now = 2 * time.Second
	r.pkgJ, r.dramJ = 200, 20
	r.dramErr = nil
	sample, err := src.Sample(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !sample.HasMeasured {
		t.Fatal("recovered sample has no measurement")
	}
	if math.Abs(sample.MeasuredWatts-110) > 1e-9 {
		t.Fatalf("recovered measurement %v W, want 110 (no energy lost across the failure)", sample.MeasuredWatts)
	}
}

func TestRAPLSourceValidation(t *testing.T) {
	m := newTestMachine(t)
	meter, err := rapl.NewMachineMeter(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRAPL(nil, m.Now, rapl.DomainPackage); err == nil {
		t.Fatal("nil meter should fail")
	}
	if _, err := NewRAPL(meter, nil, rapl.DomainPackage); err == nil {
		t.Fatal("nil clock should fail")
	}
	if _, err := NewRAPL(meter, m.Now); err == nil {
		t.Fatal("no domains should fail")
	}
	if _, err := NewRAPL(meter, m.Now, rapl.Domain(99)); err == nil {
		t.Fatal("invalid domain should fail")
	}
	if _, err := NewRAPL(meter, m.Now, rapl.DomainPackage, rapl.DomainPackage); err == nil {
		t.Fatal("duplicate domain should fail")
	}
	src, err := NewRAPL(meter, m.Now, rapl.DomainPackage, rapl.DomainDRAM)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Sample(context.Background()); err == nil {
		t.Fatal("sampling before open should fail")
	}
	if err := src.Open(nil); err != nil {
		t.Fatal(err)
	}
	if err := src.Open(nil); err != nil {
		t.Fatalf("reopening should be idempotent: %v", err)
	}
	if len(src.Domains()) != 2 {
		t.Fatalf("Domains() = %v", src.Domains())
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Sample(context.Background()); err == nil {
		t.Fatal("sampling a closed source should fail")
	}
}
