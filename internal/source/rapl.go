package source

import (
	"context"
	"errors"
	"fmt"
	"time"

	"powerapi/internal/machine"
	"powerapi/internal/rapl"
	"powerapi/internal/target"
)

// RAPL is the energy-counter backend: it reads the simulated RAPL MSRs of
// every socket for a set of domains and reports the machine power implied by
// the energy consumed over each sampling window. The 32-bit wraparound and
// the update-period latching of the underlying registers are handled here,
// the way telegraf's intel_powerstat input does it on real hardware.
type RAPL struct {
	meter    *rapl.Meter
	now      func() time.Duration
	domains  []rapl.Domain
	counters []*rapl.Counter
	lastAt   time.Duration
	// pendingJ carries the joules of counters already consumed by a Sample
	// that then failed on a later counter: their baselines have advanced, so
	// dropping the partial sum would lose that energy for good. The next
	// successful Sample folds it back in over the combined window.
	pendingJ float64
	opened   bool
	closed   bool
}

// NewRAPL creates an energy source over a RAPL meter covering the given
// domains. The clock must be the simulated clock of the machine the meter
// observes.
func NewRAPL(meter *rapl.Meter, now func() time.Duration, domains ...rapl.Domain) (*RAPL, error) {
	if meter == nil {
		return nil, errors.New("source: nil rapl meter")
	}
	if now == nil {
		return nil, errors.New("source: nil clock")
	}
	if len(domains) == 0 {
		return nil, errors.New("source: rapl source needs at least one domain")
	}
	seen := make(map[rapl.Domain]bool, len(domains))
	for _, d := range domains {
		if !d.Valid() {
			return nil, fmt.Errorf("source: invalid rapl domain %v", d)
		}
		if seen[d] {
			return nil, fmt.Errorf("source: duplicate rapl domain %v", d)
		}
		seen[d] = true
	}
	return &RAPL{meter: meter, now: now, domains: append([]rapl.Domain(nil), domains...)}, nil
}

// NewMachineRAPL builds the standard RAPL source of a simulated machine.
func NewMachineRAPL(m *machine.Machine, domains ...rapl.Domain) (*RAPL, error) {
	meter, err := rapl.NewMachineMeter(m)
	if err != nil {
		return nil, err
	}
	return NewRAPL(meter, m.Now, domains...)
}

// Name implements Source.
func (s *RAPL) Name() string { return "rapl" }

// Scope implements Source.
func (s *RAPL) Scope() Scope { return ScopeMachine }

// Domains returns the RAPL domains the source integrates.
func (s *RAPL) Domains() []rapl.Domain { return append([]rapl.Domain(nil), s.domains...) }

// Open implements Source (machine scope: targets are ignored). It baselines
// one wraparound-tracking counter per (socket, domain).
func (s *RAPL) Open([]target.Target) error {
	if s.closed {
		return errors.New("source: rapl source is closed")
	}
	if s.opened {
		return nil
	}
	for socket := 0; socket < s.meter.Sockets(); socket++ {
		for _, d := range s.domains {
			c, err := s.meter.OpenCounter(socket, d)
			if err != nil {
				return fmt.Errorf("source: open rapl counter: %w", err)
			}
			s.counters = append(s.counters, c)
		}
	}
	s.lastAt = s.now()
	s.opened = true
	return nil
}

// Sample implements Source: the measured power is the energy all counters
// accumulated since the previous successful sample divided by the elapsed
// simulated time. A zero-length window yields no measurement (HasMeasured
// false) rather than an infinity. On a partial read failure the energy of
// the counters already consumed is retained and folded into the next
// successful sample, so no joules are silently dropped.
func (s *RAPL) Sample(_ context.Context) (Sample, error) {
	if s.closed {
		return Sample{}, errors.New("source: rapl source is closed")
	}
	if !s.opened {
		return Sample{}, errors.New("source: rapl source is not open")
	}
	now := s.now()
	window := now - s.lastAt
	joules := s.pendingJ
	for _, c := range s.counters {
		d, err := c.DeltaJoules()
		if err != nil {
			// lastAt deliberately stays put: the retained joules belong to
			// the window that started there.
			s.pendingJ = joules
			return Sample{}, fmt.Errorf("source: sample rapl: %w", err)
		}
		joules += d
	}
	if window <= 0 {
		// No simulated time elapsed: nothing to measure yet. Whatever was
		// read stays pending (it can only be non-zero after an earlier
		// partial failure).
		s.pendingJ = joules
		return Sample{}, nil
	}
	s.pendingJ = 0
	s.lastAt = now
	return Sample{
		MeasuredWatts: joules / window.Seconds(),
		HasMeasured:   true,
	}, nil
}

// Close implements Source.
func (s *RAPL) Close() error {
	s.closed = true
	s.counters = nil
	return nil
}
