package source

import (
	"context"
	"errors"
	"fmt"
	"time"

	"powerapi/internal/machine"
	"powerapi/internal/target"
)

// Procfs is the counters-unavailable fallback backend: it attributes power
// by per-PID CPU-time share, the only signal /proc/<pid>/stat offers when
// perf_event_open is off the table. Weights are the CPU seconds each process
// consumed during the window; the pipeline normalizes them per round.
type Procfs struct {
	machine *machine.Machine
	lastCPU map[target.Target]time.Duration
	closed  bool
}

// NewProcfs creates a CPU-time-share source over the machine's process
// table.
func NewProcfs(m *machine.Machine) (*Procfs, error) {
	if m == nil {
		return nil, errors.New("source: nil machine")
	}
	return &Procfs{machine: m, lastCPU: make(map[target.Target]time.Duration)}, nil
}

// Name implements Source.
func (s *Procfs) Name() string { return "procfs" }

// Scope implements Source.
func (s *Procfs) Scope() Scope { return ScopeProcess }

// Open implements Source.
func (s *Procfs) Open(targets []target.Target) error {
	for _, t := range targets {
		if err := s.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// Add implements Dynamic: it baselines the process's cumulative CPU time so
// the first sample only covers time from now on.
func (s *Procfs) Add(t target.Target) error {
	if s.closed {
		return errors.New("source: procfs source is closed")
	}
	if t.Kind != target.KindProcess {
		return fmt.Errorf("source: procfs source cannot sample %v targets", t.Kind)
	}
	if _, exists := s.lastCPU[t]; exists {
		return nil
	}
	p, err := s.machine.Processes().Get(t.PID)
	if err != nil {
		return fmt.Errorf("source: attach: %w", err)
	}
	s.lastCPU[t] = p.CPUTime()
	return nil
}

// Remove implements Dynamic.
func (s *Procfs) Remove(t target.Target) error {
	if s.closed {
		return errors.New("source: procfs source is closed")
	}
	if _, exists := s.lastCPU[t]; !exists {
		return fmt.Errorf("source: detach: %v is not monitored", t)
	}
	delete(s.lastCPU, t)
	return nil
}

// Sample implements Source: every attached target's weight is the CPU time
// it consumed since the previous sample. A PID that vanished from the
// process table contributes zero weight with a joined error.
func (s *Procfs) Sample(_ context.Context) (Sample, error) {
	if s.closed {
		return Sample{}, errors.New("source: procfs source is closed")
	}
	out := Sample{FrequencyMHz: s.machine.DominantFrequencyMHz()}
	if len(s.lastCPU) == 0 {
		return out, nil
	}
	out.Targets = make([]TargetSample, 0, len(s.lastCPU))
	var errs []error
	for t, last := range s.lastCPU {
		var weight float64
		p, err := s.machine.Processes().Get(t.PID)
		if err != nil {
			errs = append(errs, fmt.Errorf("source: read cpu time of %v: %w", t, err))
		} else {
			now := p.CPUTime()
			if now > last {
				weight = (now - last).Seconds()
			}
			s.lastCPU[t] = now
		}
		out.Targets = append(out.Targets, TargetSample{Target: t, Weight: weight})
	}
	return out, errors.Join(errs...)
}

// Close implements Source.
func (s *Procfs) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.lastCPU = nil
	return nil
}

// UtilizationTotal is the machine-scope companion of Procfs: a coarse power
// proxy derived from machine-wide utilisation (active ≈ TDP × utilisation),
// the kind of estimate powertop-style tools fall back to when no energy
// counters exist. The utilisation is integrated over the sampling window —
// total CPU time consumed divided by the window's CPU capacity — so bursty
// loads that happen to be idle at a sample boundary are still charged. It
// deliberately measures only *active* power; the model's idle constant still
// covers the floor.
type UtilizationTotal struct {
	machine *machine.Machine
	lastAt  time.Duration
	lastCPU time.Duration
	opened  bool
	closed  bool
}

// NewUtilizationTotal creates the utilisation-based machine power proxy.
func NewUtilizationTotal(m *machine.Machine) (*UtilizationTotal, error) {
	if m == nil {
		return nil, errors.New("source: nil machine")
	}
	return &UtilizationTotal{machine: m}, nil
}

// Name implements Source.
func (s *UtilizationTotal) Name() string { return "util" }

// Scope implements Source.
func (s *UtilizationTotal) Scope() Scope { return ScopeMachine }

// totalCPUTime sums the cumulative CPU time of every process the machine has
// ever run (exited ones keep their tally, like /proc accounting until reap).
func (s *UtilizationTotal) totalCPUTime() time.Duration {
	var total time.Duration
	for _, p := range s.machine.Processes().List() {
		total += p.CPUTime()
	}
	return total
}

// Open implements Source (machine scope: targets are ignored). It baselines
// the machine-wide CPU-time accounting.
func (s *UtilizationTotal) Open([]target.Target) error {
	if s.closed {
		return errors.New("source: util source is closed")
	}
	if s.opened {
		return nil
	}
	s.lastAt = s.machine.Now()
	s.lastCPU = s.totalCPUTime()
	s.opened = true
	return nil
}

// Sample implements Source. A zero-length window yields no measurement
// (HasMeasured false) rather than a division by zero.
func (s *UtilizationTotal) Sample(_ context.Context) (Sample, error) {
	if s.closed {
		return Sample{}, errors.New("source: util source is closed")
	}
	if !s.opened {
		return Sample{}, errors.New("source: util source is not open")
	}
	now := s.machine.Now()
	cpu := s.totalCPUTime()
	window := now - s.lastAt
	used := cpu - s.lastCPU
	s.lastAt = now
	s.lastCPU = cpu
	out := Sample{FrequencyMHz: s.machine.DominantFrequencyMHz()}
	if window <= 0 {
		return out, nil
	}
	capacity := window.Seconds() * float64(s.machine.Spec().LogicalCPUs())
	util := used.Seconds() / capacity
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	out.MeasuredWatts = s.machine.Spec().TDPWatts * util
	out.HasMeasured = true
	return out, nil
}

// Close implements Source.
func (s *UtilizationTotal) Close() error {
	s.closed = true
	return nil
}
