// Package source defines the pluggable sensing backends of the monitoring
// pipeline — the paper's swappable Sensor modules. A Source produces one
// Sample per round; the pipeline's Sensor shards are oblivious to what kind
// of backend they sample:
//
//	hpc     per-PID hardware-counter deltas (the original Sensor path);
//	rapl    machine-level package/DRAM energy from the simulated RAPL MSRs;
//	procfs  per-PID CPU-time shares, the fallback when counters are
//	        unavailable (containers, locked-down perf_event_paranoid);
//	util    a coarse machine-level power proxy from /proc/stat utilisation.
//
// Sources come in three scopes. Process-scope sources sample every attached
// process target and yield either counter deltas or attribution weights;
// cgroup-scope sources do the same for whole control groups; machine-scope
// sources yield one measured machine power. A sensing Mode pairs an
// attribution scope with a machine scope — e.g. ModeBlended attributes the
// RAPL package total across targets keyed by their counter activity, the
// Kepler-style split.
package source

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"powerapi/internal/hpc"
	"powerapi/internal/target"
)

// Scope classifies what a source measures.
type Scope int

// Source scopes.
const (
	// ScopeProcess marks sources that sample each attached process target.
	ScopeProcess Scope = iota + 1
	// ScopeMachine marks sources that measure one machine-level power.
	ScopeMachine
	// ScopeCgroup marks sources that sample each attached cgroup target as
	// one unit (container-level sensing without per-PID detail).
	ScopeCgroup
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	switch s {
	case ScopeProcess:
		return "process"
	case ScopeMachine:
		return "machine"
	case ScopeCgroup:
		return "cgroup"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// TargetSample is one attached target within a Sample.
type TargetSample struct {
	// Target identifies the monitored target (process or cgroup).
	Target target.Target `json:"target"`
	// Slot is the dense round-slot index the pipeline assigned to the target
	// at attach time, encoded as slot+1 so the zero value means "no slot"
	// (the sensor shard stamps it). It lets the aggregator accumulate into
	// slice-backed sparse sets instead of rebuilding maps every round.
	// Sources leave it alone.
	Slot int32 `json:"-"`
	// Deltas are the hardware-counter increments since the previous sample
	// (counter-backed sources; zero otherwise). The dense vector form keeps
	// per-round sampling allocation-free.
	Deltas hpc.CountsVec `json:"-"`
	// Weight is the attribution weight of the target for the window
	// (share-based sources; the pipeline normalizes weights per round).
	Weight float64 `json:"weight,omitempty"`
}

// targetSlicePool recycles the per-round Targets slices that sources hand
// over to the pipeline. The pipeline returns a round's slice through
// PutTargetSlice once the formula stage has consumed it, so steady-state
// rounds allocate no sample batches at all.
var targetSlicePool = sync.Pool{New: func() any { return new([]TargetSample) }}

// GetTargetSlice returns an empty slice with at least the given capacity,
// reusing a pooled backing array when one is available.
func GetTargetSlice(capacity int) []TargetSample {
	s := *targetSlicePool.Get().(*[]TargetSample)
	if cap(s) < capacity {
		return make([]TargetSample, 0, capacity)
	}
	return s[:0]
}

// PutTargetSlice hands a sample slice back for reuse. The caller must not
// touch the slice afterwards.
func PutTargetSlice(s []TargetSample) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	targetSlicePool.Put(&s)
}

// Sample is one sampling round's output from a Source.
type Sample struct {
	// FrequencyMHz is the dominant core frequency observed during the round
	// (0 when the source cannot tell).
	FrequencyMHz int
	// MeasuredWatts is the machine-level power measured over the window.
	// Only meaningful when HasMeasured is true.
	MeasuredWatts float64
	// HasMeasured reports whether MeasuredWatts carries a measurement.
	// Machine-scope sources leave it false when no simulated time has
	// elapsed since the previous sample (a zero-length window has no
	// well-defined power).
	HasMeasured bool
	// Targets holds one entry per attached target (process- and
	// cgroup-scope sources). The slice is handed over to the caller: the
	// source must not reuse it for a later Sample, because the pipeline
	// ships it downstream as part of an in-flight message.
	Targets []TargetSample
}

// Source is a pluggable sensing backend. Implementations must be safe for
// use from a single sampling goroutine; Open/Close bracket the lifetime.
type Source interface {
	// Name identifies the backend ("hpc", "rapl", "procfs", …).
	Name() string
	// Scope reports whether the source samples processes, cgroups or the
	// machine.
	Scope() Scope
	// Open prepares the source for the given monitoring targets
	// (machine-scope sources ignore them).
	Open(targets []target.Target) error
	// Sample reads one round of measurements covering the window since the
	// previous Sample (or since Open). A source may return both a usable
	// Sample and a non-nil error describing partial per-target failures.
	Sample(ctx context.Context) (Sample, error)
	// Close releases the source's resources. Further calls fail.
	Close() error
}

// Dynamic is implemented by attribution sources whose target set can change
// after Open, which is how the pipeline serves attach/detach without
// reopening the backend.
type Dynamic interface {
	Source
	// Add starts sampling a target. Adding a target twice is idempotent.
	// Sources reject targets outside their scope (a process-scope source
	// cannot sample a cgroup as one unit).
	Add(t target.Target) error
	// Remove stops sampling a target; removing an unknown target fails.
	Remove(t target.Target) error
}

// Mode selects how the pipeline combines sources into per-PID power.
type Mode int

// Sensing modes.
const (
	// ModeHPC is the paper's original path: per-PID counter deltas run
	// through the learned formula; the machine total is idle + sum.
	ModeHPC Mode = iota + 1
	// ModeProcfs is the no-counters fallback: a coarse utilisation-based
	// machine estimate attributed by per-PID CPU-time share.
	ModeProcfs
	// ModeRAPL measures the machine total with the RAPL package+DRAM
	// domains and attributes it by per-PID CPU-time share.
	ModeRAPL
	// ModeBlended measures the total with the RAPL package domain and
	// attributes it by per-PID counter activity through the learned formula
	// — the Kepler-style ratio split.
	ModeBlended
	// ModeDelegated is the guest side of the VM bridge: the machine total is
	// whatever the host-side PowerAPI instance delegated for this VM (a
	// vmbridge.DelegatedSource), attributed across the guest's processes by
	// their counter activity through the learned formula. The guest's
	// per-process estimates therefore sum exactly to the host-delegated VM
	// power — the nested instance conserves the host's attribution.
	ModeDelegated
)

// Modes lists every sensing mode in declaration order.
func Modes() []Mode {
	return []Mode{ModeHPC, ModeProcfs, ModeRAPL, ModeBlended, ModeDelegated}
}

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeHPC:
		return "hpc"
	case ModeProcfs:
		return "procfs"
	case ModeRAPL:
		return "rapl"
	case ModeBlended:
		return "blended"
	case ModeDelegated:
		return "delegated"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Valid reports whether m is a known sensing mode.
func (m Mode) Valid() bool {
	switch m {
	case ModeHPC, ModeProcfs, ModeRAPL, ModeBlended, ModeDelegated:
		return true
	default:
		return false
	}
}

// Attributed reports whether the mode distributes a measured machine total
// across PIDs by normalized weights (every mode except the formula-driven
// ModeHPC).
func (m Mode) Attributed() bool { return m.Valid() && m != ModeHPC }

// ParseMode resolves a mode name such as "rapl" (case-insensitive).
func ParseMode(s string) (Mode, error) {
	for _, m := range Modes() {
		if strings.EqualFold(s, m.String()) {
			return m, nil
		}
	}
	names := make([]string, 0, len(Modes()))
	for _, m := range Modes() {
		names = append(names, m.String())
	}
	return 0, fmt.Errorf("source: unknown mode %q (want one of %s)", s, strings.Join(names, "|"))
}
