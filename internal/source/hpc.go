package source

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/target"
)

// hpcEntry pairs an attached target with its open counter set. Entries live
// in a dense slice so the per-round sample loop walks contiguous memory
// instead of iterating a map.
type hpcEntry struct {
	target target.Target
	set    *hpc.CounterSet
}

// HPC is the hardware-performance-counter backend, the paper's original
// Sensor path: one perf-style counter set per attached process target,
// sampled as deltas each round.
type HPC struct {
	machine *machine.Machine
	events  []hpc.Event
	entries []hpcEntry
	index   map[target.Target]int // target -> entries position
	closed  bool
}

// NewHPC creates a counter-backed source monitoring the given events.
func NewHPC(m *machine.Machine, events []hpc.Event) (*HPC, error) {
	if m == nil {
		return nil, errors.New("source: nil machine")
	}
	if len(events) == 0 {
		return nil, errors.New("source: hpc source needs at least one event")
	}
	return &HPC{
		machine: m,
		events:  append([]hpc.Event(nil), events...),
		index:   make(map[target.Target]int),
	}, nil
}

// Name implements Source.
func (s *HPC) Name() string { return "hpc" }

// Scope implements Source.
func (s *HPC) Scope() Scope { return ScopeProcess }

// Open implements Source.
func (s *HPC) Open(targets []target.Target) error {
	for _, t := range targets {
		if err := s.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// Add implements Dynamic: it validates the process and opens an enabled
// counter set for it. Only process targets can be sampled — a cgroup has no
// counter set of its own; the pipeline monitors its member processes and
// rolls them up instead.
func (s *HPC) Add(t target.Target) error {
	if s.closed {
		return errors.New("source: hpc source is closed")
	}
	if t.Kind != target.KindProcess {
		return fmt.Errorf("source: hpc source cannot sample %v targets", t.Kind)
	}
	if _, exists := s.index[t]; exists {
		return nil
	}
	if _, err := s.machine.Processes().Get(t.PID); err != nil {
		return fmt.Errorf("source: attach: %w", err)
	}
	set, err := hpc.OpenCounterSet(s.machine.Registry(), s.events, t.PID, hpc.AllCPUs)
	if err != nil {
		return fmt.Errorf("source: attach pid %d: %w", t.PID, err)
	}
	if err := set.Enable(); err != nil {
		return fmt.Errorf("source: enable counters for pid %d: %w", t.PID, err)
	}
	s.index[t] = len(s.entries)
	s.entries = append(s.entries, hpcEntry{target: t, set: set})
	return nil
}

// Remove implements Dynamic. The vacated entry is filled by swapping the last
// one in, keeping the slice dense.
func (s *HPC) Remove(t target.Target) error {
	if s.closed {
		return errors.New("source: hpc source is closed")
	}
	pos, exists := s.index[t]
	if !exists {
		return fmt.Errorf("source: detach: %v is not monitored", t)
	}
	set := s.entries[pos].set
	last := len(s.entries) - 1
	if pos != last {
		s.entries[pos] = s.entries[last]
		s.index[s.entries[pos].target] = pos
	}
	s.entries[last] = hpcEntry{}
	s.entries = s.entries[:last]
	delete(s.index, t)
	if err := set.Close(); err != nil {
		return fmt.Errorf("source: detach %v: %w", t, err)
	}
	return nil
}

// Sample implements Source: it reads the counter deltas of every attached
// target into a pooled batch. A failing target contributes zero deltas and
// its error is joined into the returned error; the sample stays usable either
// way.
func (s *HPC) Sample(_ context.Context) (Sample, error) {
	if s.closed {
		return Sample{}, errors.New("source: hpc source is closed")
	}
	out := Sample{FrequencyMHz: s.machine.DominantFrequencyMHz()}
	if len(s.entries) == 0 {
		return out, nil
	}
	out.Targets = GetTargetSlice(len(s.entries))
	var errs []error
	for i := range s.entries {
		e := &s.entries[i]
		out.Targets = append(out.Targets, TargetSample{Target: e.target})
		ts := &out.Targets[len(out.Targets)-1]
		if err := e.set.ReadDeltaVec(&ts.Deltas); err != nil {
			errs = append(errs, fmt.Errorf("source: read counters for %v: %w", e.target, err))
			ts.Deltas.Zero()
		}
	}
	return out, errors.Join(errs...)
}

// Close implements Source.
func (s *HPC) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	entries := append([]hpcEntry(nil), s.entries...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].target.PID < entries[j].target.PID })
	var errs []error
	for _, e := range entries {
		if err := e.set.Close(); err != nil {
			errs = append(errs, fmt.Errorf("source: close counters of %v: %w", e.target, err))
		}
	}
	s.entries = nil
	s.index = nil
	return errors.Join(errs...)
}
