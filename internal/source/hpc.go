package source

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/target"
)

// HPC is the hardware-performance-counter backend, the paper's original
// Sensor path: one perf-style counter set per attached process target,
// sampled as deltas each round.
type HPC struct {
	machine *machine.Machine
	events  []hpc.Event
	sets    map[target.Target]*hpc.CounterSet
	closed  bool
}

// NewHPC creates a counter-backed source monitoring the given events.
func NewHPC(m *machine.Machine, events []hpc.Event) (*HPC, error) {
	if m == nil {
		return nil, errors.New("source: nil machine")
	}
	if len(events) == 0 {
		return nil, errors.New("source: hpc source needs at least one event")
	}
	return &HPC{
		machine: m,
		events:  append([]hpc.Event(nil), events...),
		sets:    make(map[target.Target]*hpc.CounterSet),
	}, nil
}

// Name implements Source.
func (s *HPC) Name() string { return "hpc" }

// Scope implements Source.
func (s *HPC) Scope() Scope { return ScopeProcess }

// Open implements Source.
func (s *HPC) Open(targets []target.Target) error {
	for _, t := range targets {
		if err := s.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// Add implements Dynamic: it validates the process and opens an enabled
// counter set for it. Only process targets can be sampled — a cgroup has no
// counter set of its own; the pipeline monitors its member processes and
// rolls them up instead.
func (s *HPC) Add(t target.Target) error {
	if s.closed {
		return errors.New("source: hpc source is closed")
	}
	if t.Kind != target.KindProcess {
		return fmt.Errorf("source: hpc source cannot sample %v targets", t.Kind)
	}
	if _, exists := s.sets[t]; exists {
		return nil
	}
	if _, err := s.machine.Processes().Get(t.PID); err != nil {
		return fmt.Errorf("source: attach: %w", err)
	}
	set, err := hpc.OpenCounterSet(s.machine.Registry(), s.events, t.PID, hpc.AllCPUs)
	if err != nil {
		return fmt.Errorf("source: attach pid %d: %w", t.PID, err)
	}
	if err := set.Enable(); err != nil {
		return fmt.Errorf("source: enable counters for pid %d: %w", t.PID, err)
	}
	s.sets[t] = set
	return nil
}

// Remove implements Dynamic.
func (s *HPC) Remove(t target.Target) error {
	if s.closed {
		return errors.New("source: hpc source is closed")
	}
	set, exists := s.sets[t]
	if !exists {
		return fmt.Errorf("source: detach: %v is not monitored", t)
	}
	delete(s.sets, t)
	if err := set.Close(); err != nil {
		return fmt.Errorf("source: detach %v: %w", t, err)
	}
	return nil
}

// Sample implements Source: it reads the counter deltas of every attached
// target. A failing target contributes zero deltas and its error is joined
// into the returned error; the sample stays usable either way.
func (s *HPC) Sample(_ context.Context) (Sample, error) {
	if s.closed {
		return Sample{}, errors.New("source: hpc source is closed")
	}
	out := Sample{FrequencyMHz: s.machine.DominantFrequencyMHz()}
	if len(s.sets) == 0 {
		return out, nil
	}
	out.Targets = make([]TargetSample, 0, len(s.sets))
	var errs []error
	for t, set := range s.sets {
		deltas, err := set.ReadDelta()
		if err != nil {
			errs = append(errs, fmt.Errorf("source: read counters for %v: %w", t, err))
			deltas = hpc.Counts{}
		}
		out.Targets = append(out.Targets, TargetSample{Target: t, Deltas: deltas})
	}
	return out, errors.Join(errs...)
}

// Close implements Source.
func (s *HPC) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	targets := make([]target.Target, 0, len(s.sets))
	for t := range s.sets {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].PID < targets[j].PID })
	var errs []error
	for _, t := range targets {
		if err := s.sets[t].Close(); err != nil {
			errs = append(errs, fmt.Errorf("source: close counters of %v: %w", t, err))
		}
	}
	s.sets = nil
	return errors.Join(errs...)
}
