package source

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"powerapi/internal/hpc"
	"powerapi/internal/machine"
)

// HPC is the hardware-performance-counter backend, the paper's original
// Sensor path: one perf-style counter set per attached PID, sampled as
// deltas each round.
type HPC struct {
	machine *machine.Machine
	events  []hpc.Event
	sets    map[int]*hpc.CounterSet
	closed  bool
}

// NewHPC creates a counter-backed source monitoring the given events.
func NewHPC(m *machine.Machine, events []hpc.Event) (*HPC, error) {
	if m == nil {
		return nil, errors.New("source: nil machine")
	}
	if len(events) == 0 {
		return nil, errors.New("source: hpc source needs at least one event")
	}
	return &HPC{
		machine: m,
		events:  append([]hpc.Event(nil), events...),
		sets:    make(map[int]*hpc.CounterSet),
	}, nil
}

// Name implements Source.
func (s *HPC) Name() string { return "hpc" }

// Scope implements Source.
func (s *HPC) Scope() Scope { return ScopeProcess }

// Open implements Source.
func (s *HPC) Open(targets []int) error {
	for _, pid := range targets {
		if err := s.Add(pid); err != nil {
			return err
		}
	}
	return nil
}

// Add implements Dynamic: it validates the process and opens an enabled
// counter set for it.
func (s *HPC) Add(pid int) error {
	if s.closed {
		return errors.New("source: hpc source is closed")
	}
	if _, exists := s.sets[pid]; exists {
		return nil
	}
	if _, err := s.machine.Processes().Get(pid); err != nil {
		return fmt.Errorf("source: attach: %w", err)
	}
	set, err := hpc.OpenCounterSet(s.machine.Registry(), s.events, pid, hpc.AllCPUs)
	if err != nil {
		return fmt.Errorf("source: attach pid %d: %w", pid, err)
	}
	if err := set.Enable(); err != nil {
		return fmt.Errorf("source: enable counters for pid %d: %w", pid, err)
	}
	s.sets[pid] = set
	return nil
}

// Remove implements Dynamic.
func (s *HPC) Remove(pid int) error {
	if s.closed {
		return errors.New("source: hpc source is closed")
	}
	set, exists := s.sets[pid]
	if !exists {
		return fmt.Errorf("source: detach: pid %d is not monitored", pid)
	}
	delete(s.sets, pid)
	if err := set.Close(); err != nil {
		return fmt.Errorf("source: detach pid %d: %w", pid, err)
	}
	return nil
}

// Sample implements Source: it reads the counter deltas of every attached
// PID. A failing PID contributes zero deltas and its error is joined into
// the returned error; the sample stays usable either way.
func (s *HPC) Sample(_ context.Context) (Sample, error) {
	if s.closed {
		return Sample{}, errors.New("source: hpc source is closed")
	}
	out := Sample{FrequencyMHz: s.machine.DominantFrequencyMHz()}
	if len(s.sets) == 0 {
		return out, nil
	}
	out.PIDs = make([]PIDSample, 0, len(s.sets))
	var errs []error
	for pid, set := range s.sets {
		deltas, err := set.ReadDelta()
		if err != nil {
			errs = append(errs, fmt.Errorf("source: read counters for pid %d: %w", pid, err))
			deltas = hpc.Counts{}
		}
		out.PIDs = append(out.PIDs, PIDSample{PID: pid, Deltas: deltas})
	}
	return out, errors.Join(errs...)
}

// Close implements Source.
func (s *HPC) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	pids := make([]int, 0, len(s.sets))
	for pid := range s.sets {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	var errs []error
	for _, pid := range pids {
		if err := s.sets[pid].Close(); err != nil {
			errs = append(errs, fmt.Errorf("source: close counters of pid %d: %w", pid, err))
		}
	}
	s.sets = nil
	return errors.Join(errs...)
}
