package source

import (
	"context"
	"errors"
	"fmt"
	"time"

	"powerapi/internal/cgroup"
	"powerapi/internal/machine"
	"powerapi/internal/target"
)

// Cgroups is the container-level counterpart of Procfs: it samples each
// attached cgroup target as one unit, weighting it by the CPU time its
// member processes (descendants included) consumed during the window — the
// signal cpuacct.usage / cpu.stat exposes per control group. Use it through
// WithSourceFactories when per-PID detail is not needed; the pipeline then
// attributes the measured machine total directly across groups.
type Cgroups struct {
	machine   *machine.Machine
	hierarchy *cgroup.Hierarchy
	// lastCPU tracks, per attached group, the cumulative CPU time of each
	// member seen so far; per-member baselines keep a membership change
	// mid-window from charging a joiner's whole history to the group.
	lastCPU map[target.Target]map[int]time.Duration
	closed  bool
}

// NewCgroups creates a cgroup-scope CPU-time-share source over a hierarchy.
func NewCgroups(m *machine.Machine, h *cgroup.Hierarchy) (*Cgroups, error) {
	if m == nil {
		return nil, errors.New("source: nil machine")
	}
	if h == nil {
		return nil, errors.New("source: nil cgroup hierarchy")
	}
	return &Cgroups{
		machine:   m,
		hierarchy: h,
		lastCPU:   make(map[target.Target]map[int]time.Duration),
	}, nil
}

// Name implements Source.
func (s *Cgroups) Name() string { return "cgroups" }

// Scope implements Source.
func (s *Cgroups) Scope() Scope { return ScopeCgroup }

// Open implements Source.
func (s *Cgroups) Open(targets []target.Target) error {
	for _, t := range targets {
		if err := s.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// Add implements Dynamic: it baselines the CPU time of the group's current
// members so the first sample only covers time from now on.
func (s *Cgroups) Add(t target.Target) error {
	if s.closed {
		return errors.New("source: cgroups source is closed")
	}
	if t.Kind != target.KindCgroup {
		return fmt.Errorf("source: cgroups source cannot sample %v targets", t.Kind)
	}
	if _, exists := s.lastCPU[t]; exists {
		return nil
	}
	if !s.hierarchy.Exists(t.Path) {
		return fmt.Errorf("source: attach: no such cgroup %q", t.Path)
	}
	baselines := make(map[int]time.Duration)
	for _, pid := range s.hierarchy.MembersRecursive(t.Path) {
		if p, err := s.machine.Processes().Get(pid); err == nil {
			baselines[pid] = p.CPUTime()
		}
	}
	s.lastCPU[t] = baselines
	return nil
}

// Remove implements Dynamic.
func (s *Cgroups) Remove(t target.Target) error {
	if s.closed {
		return errors.New("source: cgroups source is closed")
	}
	if _, exists := s.lastCPU[t]; !exists {
		return fmt.Errorf("source: detach: %v is not monitored", t)
	}
	delete(s.lastCPU, t)
	return nil
}

// Sample implements Source: each attached group's weight is the CPU time its
// current recursive members consumed since the previous sample. Members that
// left (or exited and were pruned) stop contributing; members that joined
// contribute from their join-time baseline onward.
func (s *Cgroups) Sample(_ context.Context) (Sample, error) {
	if s.closed {
		return Sample{}, errors.New("source: cgroups source is closed")
	}
	out := Sample{FrequencyMHz: s.machine.DominantFrequencyMHz()}
	if len(s.lastCPU) == 0 {
		return out, nil
	}
	out.Targets = make([]TargetSample, 0, len(s.lastCPU))
	var errs []error
	for t, baselines := range s.lastCPU {
		var weight float64
		current := make(map[int]time.Duration, len(baselines))
		for _, pid := range s.hierarchy.MembersRecursive(t.Path) {
			p, err := s.machine.Processes().Get(pid)
			if err != nil {
				errs = append(errs, fmt.Errorf("source: read cpu time of pid %d in %v: %w", pid, t, err))
				continue
			}
			now := p.CPUTime()
			if last, seen := baselines[pid]; seen && now > last {
				weight += (now - last).Seconds()
			}
			current[pid] = now
		}
		s.lastCPU[t] = current
		out.Targets = append(out.Targets, TargetSample{Target: t, Weight: weight})
	}
	return out, errors.Join(errs...)
}

// Close implements Source.
func (s *Cgroups) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.lastCPU = nil
	return nil
}
