// Package leasefix is the leasecheck fixture: Report mirrors the pooled
// AggregatedReport shape (Release + Clone + Expired), Pool mirrors the
// producers. `want` comments mark the true positives; every uncommented line
// is a negative case the analyzer must stay silent on.
package leasefix

type Report struct {
	PerPID map[int]float64
	Total  float64
}

func (Report) Release()      {}
func (Report) Clone() Report { return Report{} }
func (Report) Expired() bool { return false }

type Pool struct{ C chan Report }

func (Pool) Rollup() Report           { return Report{} }
func (Pool) Collect() (Report, error) { return Report{}, nil }

var sink Report

// --- true positives -------------------------------------------------------

func leakFromProducer(p Pool) float64 {
	r := p.Rollup() // want `neither Released, Cloned, nor handed off`
	return r.Total  // a projection is a read, not a hand-off
}

func leakFromChannel(p Pool) {
	r := <-p.C // want `neither Released, Cloned, nor handed off`
	_ = r.Total
}

func leakFromRange(p Pool) {
	for r := range p.C { // want `neither Released, Cloned, nor handed off`
		_ = r.PerPID
	}
}

func discardedResult(p Pool) {
	p.Rollup() // want `discarded`
}

func discardedToBlank(p Pool) {
	_ = p.Rollup() // want `discarded`
}

func useAfterRelease(p Pool) float64 {
	r := p.Rollup()
	r.Release()
	return r.Total // want `use of leased "r" after its Release`
}

func useAfterReleaseMap(p Pool) float64 {
	r := <-p.C
	r.Release()
	w := r.PerPID[1] // want `use of leased "r" after its Release`
	return w
}

// --- negative cases -------------------------------------------------------

func releases(p Pool) float64 {
	r := p.Rollup()
	total := r.Total
	r.Release()
	return total
}

func deferredRelease(p Pool) float64 {
	r := p.Rollup()
	defer r.Release()
	return r.Total
}

func clones(p Pool) Report {
	r := <-p.C
	keep := r.Clone()
	r.Release()
	return keep
}

func drainLoop(p Pool) {
	for r := range p.C {
		sink.Total += r.Total
		r.Release()
	}
}

func handsOffToCall(p Pool, consume func(Report)) {
	r := p.Rollup()
	consume(r)
}

func handsOffByReturn(p Pool) Report {
	r := p.Rollup()
	return r
}

func handsOffBySend(p Pool, out chan Report) {
	r := p.Rollup()
	out <- r
}

func handsOffToField(p Pool) {
	r := p.Rollup()
	sink = r
}

func handsOffToClosure(p Pool) func() float64 {
	r := p.Rollup()
	return func() float64 { return r.Total }
}

func collectIsExempt(p Pool) float64 {
	r, err := p.Collect() // pipeline-managed lease: released at next Collect
	if err != nil {
		return 0
	}
	return r.Total
}

func cloneIsExempt(r Report) float64 {
	c := r.Clone() // owned copy, no obligation
	return c.Total
}

func expiredProbeAllowed(p Pool) bool {
	r := p.Rollup()
	r.Release()
	return r.Expired() // the sanctioned post-release check
}

func selectReceive(p Pool, done chan struct{}) {
	select {
	case r := <-p.C:
		r.Release()
	case <-done:
	}
}

func selectReceiveLeaks(p Pool, done chan struct{}) {
	select {
	case r := <-p.C: // want `neither Released, Cloned, nor handed off`
		_ = r.Total
	case <-done:
	}
}

func reassignmentResets(p Pool) float64 {
	r := p.Rollup()
	r.Release()
	r = p.Rollup()
	total := r.Total
	r.Release()
	return total
}

func allowComment(p Pool) float64 {
	//powerapi:allow leasecheck fixture: proves the suppression path
	r := p.Rollup()
	return r.Total
}
