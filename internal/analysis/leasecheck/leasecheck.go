// Package leasecheck mechanizes the pooled-report retention contract
// (AggregatedReport / FleetReport leases): a leased value obtained from a
// producer call or received from a subscription channel must be Released,
// Cloned, or explicitly handed off before its scope ends, and must never be
// used again after this holder Released it.
//
// A type is "leased" when its method set (value or pointer) has both
// Release() and Clone... — exactly the shape internal/core's pooled
// AggregatedReport and internal/collector's *FleetReport expose. Obligations
// arise intra-procedurally from:
//
//   - a receive from, or range over, a channel of leased type (every report
//     placed in a subscription channel carries one reference the consumer
//     owns), and
//   - a call whose result is leased — except methods named Clone (the result
//     is an owned deep copy, never pooled) and Collect (its lease is
//     pipeline-managed: the reference is released at the caller's next
//     Collect, per the documented contract).
//
// An obligation is discharged by calling Release or Clone on the value
// (directly or deferred), or by any hand-off that moves the lease out of the
// function's hands: passing it to a call, returning it, sending it on a
// channel, storing it in a field, map, slice or package variable, capturing
// it in a closure, or copying it to another variable. A leased producer
// result that is discarded outright is reported too.
//
// Use-after-release is flagged flow-sensitively within a block: after a
// statement `v.Release()`, any later use of v in that block is an error
// except v.Expired() (the sanctioned post-release probe) and reassignment,
// which starts a fresh value.
package leasecheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"powerapi/internal/analysis/framework"
)

// Analyzer is the leasecheck analyzer.
var Analyzer = &framework.Analyzer{
	Name: "leasecheck",
	Doc: "check that pooled report leases (Release/Clone method pairs) are released, " +
		"cloned or handed off before scope exit and never used after Release",
	Run: run,
}

// exemptProducers are methods whose leased results carry no caller-side
// obligation: Clone results are owned copies; Collect leases are released by
// the pipeline at the caller's next Collect (the documented retention
// contract in internal/core).
var exemptProducers = map[string]bool{"Clone": true, "Collect": true}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body)
				}
				return false
			}
			return true
		})
	}
	return nil
}

// isLeased reports whether t is (a pointer to) a named type whose method set
// contains both Release() and Clone.
func isLeased(t types.Type) bool {
	if t == nil {
		return false
	}
	return hasMethod(t, "Release") && hasMethod(t, "Clone")
}

func hasMethod(t types.Type, name string) bool {
	// Look through the pointer method set so value-typed leases (core's
	// AggregatedReport) and pointer leases (*collector.FleetReport) both hit.
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(derefType(t)), true, nil, name)
	_, isFunc := obj.(*types.Func)
	return isFunc
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// obligation is one leased value the current function must account for.
type obligation struct {
	obj   types.Object // the variable holding the lease (nil: discarded result)
	pos   token.Pos    // acquisition site
	what  string       // human description of the source
	scope []ast.Stmt   // statements in which discharge may happen
}

// checkBody analyzes one function body: it collects acquisition sites with
// their discharge scopes, then scans each scope for a discharging use, and
// separately walks blocks for use-after-release.
func checkBody(pass *framework.Pass, body *ast.BlockStmt) {
	var obls []obligation
	collectObligations(pass, body.List, &obls)
	for _, o := range obls {
		if o.obj == nil {
			pass.Reportf(o.pos, "leased %s is discarded: Release it, Clone it, or hand it off", o.what)
			continue
		}
		if !discharged(pass, o.obj, o.scope) {
			pass.Reportf(o.pos, "leased %s %q is neither Released, Cloned, nor handed off before scope exit", o.what, o.obj.Name())
		}
	}
	checkUseAfterRelease(pass, body)
}

// collectObligations finds lease acquisitions in stmts (recursively), binding
// each to the statement list in which its variable is scoped.
func collectObligations(pass *framework.Pass, stmts []ast.Stmt, out *[]obligation) {
	for i, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			scope := stmts[i+1:]
			for vi, rhs := range s.Rhs {
				if what, ok := leaseSource(pass, rhs); ok {
					// Match RHS position to LHS: single call with multi-value
					// results maps all LHS to index 0's call.
					var lhs ast.Expr
					if len(s.Lhs) == len(s.Rhs) {
						lhs = s.Lhs[vi]
					} else if leasedResultIndex(pass, rhs) >= 0 && leasedResultIndex(pass, rhs) < len(s.Lhs) {
						lhs = s.Lhs[leasedResultIndex(pass, rhs)]
					}
					obj := lhsObject(pass, lhs)
					if obj == nil {
						// Assigned to blank, a field, or an index expression:
						// blank discards; the others are hand-offs by storage.
						if id, isIdent := lhs.(*ast.Ident); isIdent && id.Name == "_" {
							*out = append(*out, obligation{pos: rhs.Pos(), what: what})
						}
						continue
					}
					*out = append(*out, obligation{obj: obj, pos: rhs.Pos(), what: what, scope: scope})
				}
			}
		case *ast.ExprStmt:
			// A leased producer result evaluated and dropped on the floor.
			if call, isCall := s.X.(*ast.CallExpr); isCall {
				if what, ok := leaseSource(pass, call); ok {
					*out = append(*out, obligation{pos: call.Pos(), what: what})
				}
			}
		case *ast.RangeStmt:
			// Ranging a leased-element channel: one obligation per iteration,
			// scoped to the loop body.
			if t, isChan := pass.TypesInfo.Types[s.X].Type.(*types.Chan); isChan && isLeased(t.Elem()) && s.Key != nil && s.Body != nil {
				if obj := lhsObject(pass, s.Key); obj != nil {
					*out = append(*out, obligation{obj: obj, pos: s.Key.Pos(), what: "report received from channel range", scope: s.Body.List})
				}
			}
			if s.Body != nil {
				collectObligations(pass, s.Body.List, out)
			}
			continue
		}
		// Recurse into nested statement lists (blocks, switch/select clause
		// bodies); the cases above handled this statement itself.
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch b := n.(type) {
			case *ast.BlockStmt:
				if !containsStmtList(stmts, b) {
					collectObligations(pass, b.List, out)
					return false
				}
			case *ast.CaseClause:
				collectObligations(pass, b.Body, out)
				return false
			case *ast.CommClause:
				// `case v := <-ch:` scopes v to the clause body.
				if as, isAssign := b.Comm.(*ast.AssignStmt); isAssign && len(as.Rhs) == 1 {
					if what, ok := leaseSource(pass, as.Rhs[0]); ok && len(as.Lhs) > 0 {
						if obj := lhsObject(pass, as.Lhs[0]); obj != nil {
							*out = append(*out, obligation{obj: obj, pos: as.Rhs[0].Pos(), what: what, scope: b.Body})
						}
					}
				}
				collectObligations(pass, b.Body, out)
				return false
			case *ast.FuncLit:
				checkBody(pass, b.Body)
				return false
			}
			return true
		})
	}
}

// lhsObject resolves an assignment target to its variable object; nil for
// blank, field, index or other non-identifier targets.
func lhsObject(pass *framework.Pass, lhs ast.Expr) types.Object {
	id, isIdent := lhs.(*ast.Ident)
	if !isIdent || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// containsStmtList reports whether block is literally one of the statements
// (to avoid re-walking the list the caller is already iterating).
func containsStmtList(stmts []ast.Stmt, block *ast.BlockStmt) bool {
	for _, s := range stmts {
		if s == block {
			return true
		}
	}
	return false
}

// leaseSource reports whether expr acquires a lease: a channel receive of a
// leased element, or a non-exempt call returning a leased value.
func leaseSource(pass *framework.Pass, expr ast.Expr) (string, bool) {
	switch e := expr.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			if t, ok := pass.TypesInfo.Types[e.X].Type.(*types.Chan); ok && isLeased(t.Elem()) {
				return "report received from channel", true
			}
		}
	case *ast.CallExpr:
		tv, ok := pass.TypesInfo.Types[e]
		if !ok {
			return "", false
		}
		if _, exempt := callName(pass, e); exempt {
			return "", false
		}
		if isLeased(tv.Type) {
			return "result of " + callLabel(pass, e), true
		}
		if tuple, isTuple := tv.Type.(*types.Tuple); isTuple {
			for i := 0; i < tuple.Len(); i++ {
				if isLeased(tuple.At(i).Type()) {
					return "result of " + callLabel(pass, e), true
				}
			}
		}
	}
	return "", false
}

// leasedResultIndex returns which result of a multi-value call is leased.
func leasedResultIndex(pass *framework.Pass, expr ast.Expr) int {
	call, isCall := expr.(*ast.CallExpr)
	if !isCall {
		return -1
	}
	if tuple, isTuple := pass.TypesInfo.Types[call].Type.(*types.Tuple); isTuple {
		for i := 0; i < tuple.Len(); i++ {
			if isLeased(tuple.At(i).Type()) {
				return i
			}
		}
	}
	return -1
}

// callName resolves the called function's bare name; the bool reports whether
// it is an exempt producer (or a type conversion, never a producer).
func callName(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	if pass.TypesInfo.Types[call.Fun].IsType() {
		return "", true // conversion: the operand's obligations already exist
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name, exemptProducers[fun.Name]
	case *ast.SelectorExpr:
		return fun.Sel.Name, exemptProducers[fun.Sel.Name]
	}
	return "", false
}

func callLabel(pass *framework.Pass, call *ast.CallExpr) string {
	name, _ := callName(pass, call)
	if name == "" {
		return "call"
	}
	return name + "()"
}

// discharged scans the scope for any statement that settles the obligation on
// obj: Release/Clone (incl. deferred), or a hand-off. A hand-off must move
// the lease ITSELF — the bare identifier (or its address) passed, returned,
// sent, stored or captured. Projections (v.PerPID, v.Total) are plain reads
// and settle nothing; that is the point of the contract.
func discharged(pass *framework.Pass, obj types.Object, scope []ast.Stmt) bool {
	found := false
	for _, stmt := range scope {
		if found {
			break
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			switch e := n.(type) {
			case *ast.CallExpr:
				// v.Release() / v.Clone() settle; v as an argument hands off.
				if sel, isSel := e.Fun.(*ast.SelectorExpr); isSel {
					if isIdentOf(pass, sel.X, obj) && (sel.Sel.Name == "Release" || sel.Sel.Name == "Clone") {
						found = true
						return false
					}
				}
				for _, arg := range e.Args {
					if isIdentOf(pass, arg, obj) {
						found = true
						return false
					}
				}
			case *ast.ReturnStmt:
				for _, r := range e.Results {
					if isIdentOf(pass, r, obj) {
						found = true
						return false
					}
				}
			case *ast.SendStmt:
				if isIdentOf(pass, e.Value, obj) {
					found = true
					return false
				}
			case *ast.AssignStmt:
				// Storing the value itself anywhere (another variable, field,
				// map or slice element, package var) moves the lease.
				for _, rhs := range e.Rhs {
					if isIdentOf(pass, rhs, obj) {
						found = true
						return false
					}
				}
			case *ast.CompositeLit:
				for _, el := range e.Elts {
					if kv, isKV := el.(*ast.KeyValueExpr); isKV {
						el = kv.Value
					}
					if isIdentOf(pass, el, obj) {
						found = true
						return false
					}
				}
			case *ast.FuncLit:
				// Captured by a closure: the closure inherits the lease.
				if identUsedIn(pass, e.Body, obj) {
					found = true
				}
				return false
			}
			return true
		})
	}
	return found
}

// isIdentOf reports whether expr is exactly the identifier bound to obj, or
// its address.
func isIdentOf(pass *framework.Pass, expr ast.Expr, obj types.Object) bool {
	if u, isUnary := expr.(*ast.UnaryExpr); isUnary && u.Op == token.AND {
		expr = u.X
	}
	id, isIdent := expr.(*ast.Ident)
	return isIdent && pass.TypesInfo.Uses[id] == obj
}

func identUsedIn(pass *framework.Pass, node ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, isIdent := n.(*ast.Ident); isIdent && pass.TypesInfo.Uses[id] == obj {
			used = true
			return false
		}
		return !used
	})
	return used
}

// checkUseAfterRelease walks every block: a statement `v.Release()` poisons v
// for the rest of that block; later uses (except v.Expired() and
// reassignment) are reported. Nested function literals get their own walk.
func checkUseAfterRelease(pass *framework.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // closures get their own checkBody walk
		}
		block, isBlock := n.(*ast.BlockStmt)
		if !isBlock {
			return true
		}
		released := make(map[types.Object]token.Pos)
		for _, stmt := range block.List {
			// Reassignment of a poisoned variable starts a fresh value.
			if as, isAssign := stmt.(*ast.AssignStmt); isAssign {
				for _, lhs := range as.Lhs {
					if id, isIdent := lhs.(*ast.Ident); isIdent {
						if obj := pass.TypesInfo.Uses[id]; obj != nil {
							delete(released, obj)
						}
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							delete(released, obj)
						}
					}
				}
			}
			if len(released) > 0 {
				reportPoisonedUses(pass, stmt, released)
			}
			if obj := releaseStmtTarget(pass, stmt); obj != nil {
				released[obj] = stmt.Pos()
			}
		}
		return true
	})
}

// releaseStmtTarget returns the leased local variable v when stmt is exactly
// `v.Release()`.
func releaseStmtTarget(pass *framework.Pass, stmt ast.Stmt) types.Object {
	expr, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return nil
	}
	call, isCall := expr.X.(*ast.CallExpr)
	if !isCall {
		return nil
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Release" {
		return nil
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || !isLeased(obj.Type()) {
		return nil
	}
	return obj
}

// reportPoisonedUses flags uses of released variables inside stmt.
func reportPoisonedUses(pass *framework.Pass, stmt ast.Stmt, released map[types.Object]token.Pos) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		// v.Expired() is the sanctioned post-release probe.
		if call, isCall := n.(*ast.CallExpr); isCall {
			if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Expired" {
				if id, isIdent := sel.X.(*ast.Ident); isIdent {
					if _, poisoned := released[pass.TypesInfo.Uses[id]]; poisoned {
						return false
					}
				}
			}
		}
		if id, isIdent := n.(*ast.Ident); isIdent {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				if relPos, poisoned := released[obj]; poisoned {
					rel := pass.Fset.Position(relPos)
					pass.Reportf(id.Pos(), "use of leased %q after its Release at line %d: the pooled round may already be recycled (Clone before releasing to keep it)", id.Name, rel.Line)
				}
			}
		}
		return true
	})
}
