package leasecheck_test

import (
	"testing"

	"powerapi/internal/analysis/analysistest"
	"powerapi/internal/analysis/leasecheck"
)

func TestLeaseCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), leasecheck.Analyzer, "leasefix")
}
