// Package load turns Go packages into framework passes without any
// dependency beyond the standard library and the go command itself. Two
// loaders share one type-checking core:
//
//   - GoList shells out to `go list -deps -export -json`, source-parses the
//     module packages matched by the patterns, and resolves every import from
//     the compiler export data the go command just built — fully offline, no
//     module proxy, no golang.org/x/tools.
//   - Testdata loads GOPATH-style fixture trees (testdata/src/<pkg>/*.go) for
//     analysistest, resolving fixture-internal imports from source and
//     everything else from export data.
//
// Run then drives a set of analyzers over the loaded packages in dependency
// order, wiring the shared fact store, the allow-comment suppression set and
// the whole-module Finish hooks.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"powerapi/internal/analysis/framework"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a set of packages to analyze plus the context they share.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // in dependency order: a package follows its imports
	// moduleOf reports whether an import path is "ours" for the purpose of
	// same-module propagation (the module under analysis, or the fixture
	// tree in testdata mode).
	moduleOf func(path string) bool
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` on the patterns and returns the
// decoded stream. dir is the working directory ("" for the current one).
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decode go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data files.
type exportImporter struct {
	exports map[string]string
	gc      types.ImporterFrom
	// source maps import paths to already source-checked packages (testdata
	// fixtures importing each other); consulted before export data.
	source map[string]*types.Package
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	e := &exportImporter{exports: exports, source: make(map[string]*types.Package)}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := e.exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	}
	e.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return e
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := e.source[path]; ok {
		return p, nil
	}
	return e.gc.ImportFrom(path, dir, mode)
}

// newInfo allocates the full types.Info the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// check parses files and type-checks one package.
func check(fset *token.FileSet, imp types.ImporterFrom, path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: parse %s: %w", full, err)
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := newInfo()
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Files: files, Types: tpkg, Info: info}, nil
}

// GoList loads the module packages matched by the patterns, ready to analyze.
// dir is the directory to run the go command from ("" for the current one).
func GoList(dir string, patterns []string) (*Program, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	modulePaths := make(map[string]bool)
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil {
			modulePaths[p.ImportPath] = true
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	prog := &Program{
		Fset:     fset,
		moduleOf: func(path string) bool { return modulePaths[path] },
	}
	// go list -deps emits packages after their dependencies, so analyzing in
	// listed order guarantees facts exist before their importers run.
	for _, t := range targets {
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// Testdata loads fixture packages from a GOPATH-style tree: srcDir/<pkg>/*.go
// for each named package, plus any fixture packages they import. Imports that
// are not fixture directories resolve from compiler export data (the
// standard library, typically).
func Testdata(srcDir string, pkgs []string) (*Program, error) {
	fset := token.NewFileSet()
	parsed := make(map[string][]*ast.File)
	order := make([]string, 0, len(pkgs))
	fixture := func(path string) bool {
		st, err := os.Stat(filepath.Join(srcDir, path))
		return err == nil && st.IsDir()
	}

	// Parse the requested packages and, transitively, the fixture packages
	// they import, recording a dependency-respecting order.
	var external []string
	var visit func(path string) error
	visiting := make(map[string]bool)
	visit = func(path string) error {
		if _, done := parsed[path]; done || visiting[path] {
			return nil
		}
		visiting[path] = true
		defer delete(visiting, path)
		dir := filepath.Join(srcDir, path)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("load: fixture package %s: %w", path, err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("load: parse fixture %s: %w", e.Name(), err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			return fmt.Errorf("load: fixture package %s has no Go files", path)
		}
		for _, f := range files {
			for _, spec := range f.Imports {
				ipath := strings.Trim(spec.Path.Value, `"`)
				if fixture(ipath) {
					if err := visit(ipath); err != nil {
						return err
					}
				} else {
					external = append(external, ipath)
				}
			}
		}
		parsed[path] = files
		order = append(order, path)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	// Resolve external (standard library) imports through one go list run.
	exports := make(map[string]string)
	if len(external) > 0 {
		sort.Strings(external)
		external = uniq(external)
		listed, err := goList("", append([]string{"--"}, external...))
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	imp := newExportImporter(fset, exports)
	prog := &Program{Fset: fset, moduleOf: func(path string) bool {
		_, ok := parsed[path]
		return ok
	}}
	for _, path := range order {
		pkg, err := checkFiles(fset, imp, path, parsed[path])
		if err != nil {
			return nil, err
		}
		imp.source[path] = pkg.Types
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

func checkFiles(fset *token.FileSet, imp types.ImporterFrom, path string, files []*ast.File) (*Package, error) {
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	info := newInfo()
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Files: files, Types: tpkg, Info: info}, nil
}

func uniq(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Finding is one diagnostic with its position resolved, as Run returns them.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run drives the analyzers over every package of the program in dependency
// order, fires their Finish hooks, and returns the surviving findings sorted
// by position. This is the whole-module mode: Pass.Deferred is true.
func Run(prog *Program, analyzers []*framework.Analyzer) ([]Finding, error) {
	store := framework.NewStore()
	allows := make(framework.AllowSet)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			allows.CollectAllows(prog.Fset, f)
		}
	}
	var findings []Finding
	report := func(name string) func(framework.Diagnostic) {
		return func(d framework.Diagnostic) {
			if allows.Allowed(prog.Fset, name, d.Pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: name, Pos: prog.Fset.Position(d.Pos), Message: d.Message})
		}
	}
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			pass := &framework.Pass{
				Analyzer:    a,
				Fset:        prog.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.Info,
				Deferred:    true,
				IsModulePkg: prog.moduleOf,
				Report:      report(a.Name),
			}
			pass.SetStore(store)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("load: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		a.Finish(&framework.FinishContext{Fset: prog.Fset, Store: store, Report: report(a.Name)})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return findings, nil
}
