package hotpath_test

import (
	"testing"

	"powerapi/internal/analysis/analysistest"
	"powerapi/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotpath.Analyzer, "hot/sub", "hot")
}
