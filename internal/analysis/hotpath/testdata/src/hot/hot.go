// Package hot is the hotpath fixture: annotated roots with allocating
// constructs (positives), clean hot functions and unannotated allocators
// (negatives), and propagation into the same-module callee package hot/sub.
package hot

import (
	"fmt"

	"hot/sub"
)

type state struct {
	vals  []float64
	byKey map[string]float64
	total float64
}

//powerapi:hotpath
func allocatesDirectly(s *state) {
	s.vals = make([]float64, 8) // want `make\(\.\.\.\) allocates`
	m := map[string]int{}       // want `map literal allocates`
	_ = m
}

//powerapi:hotpath
func allocatesLiteral() []int {
	return []int{1, 2, 3} // want `slice literal allocates`
}

//powerapi:hotpath
func allocatesClosure(s *state) func() {
	return func() { s.total++ } // want `closure literal allocates`
}

//powerapi:hotpath
func allocatesFmt(s *state) {
	fmt.Println(s.total) // want `fmt\.Println call allocates` `argument boxes into interface parameter`
}

//powerapi:hotpath
func allocatesConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//powerapi:hotpath
func allocatesConversion(b []byte) string {
	return string(b) // want `string conversion allocates`
}

//powerapi:hotpath
func callsLocalAllocator(s *state) {
	localAllocator(s) // want `call from hot path callsLocalAllocator reaches make`
}

func localAllocator(s *state) {
	s.vals = make([]float64, 4)
}

//powerapi:hotpath
func callsAcrossPackages(c *sub.Counter) {
	c.Bump() // want `call from hot path callsAcrossPackages reaches slice literal allocates .* via Bump -> grow`
}

//powerapi:hotpath
func transitiveLocal(s *state) {
	hop(s) // want `call from hot path transitiveLocal reaches map literal allocates .* via hop -> landing`
}

func hop(s *state) { landing(s) }

func landing(s *state) {
	s.byKey = map[string]float64{}
}

// --- negative cases -------------------------------------------------------

//powerapi:hotpath
func cleanHot(s *state, key string) {
	// Reads, arithmetic, map lookups, appends into retained buffers and
	// optimized conversions are all allocation-free.
	s.total += s.byKey[key]
	s.vals = append(s.vals, s.total)
	for i := range s.vals {
		s.vals[i] *= 2
	}
}

//powerapi:hotpath
func comparisonConversionOK(b []byte, s string) bool {
	return string(b) == s // compiler-optimized: no allocation
}

//powerapi:hotpath
func mapIndexConversionOK(m map[string]int, b []byte) int {
	return m[string(b)] // compiler-optimized: no allocation
}

//powerapi:hotpath
func allowedGrowth(s *state, n int) {
	if cap(s.vals) < n {
		//powerapi:allow hotpath amortized growth, same argument as append
		s.vals = make([]float64, 0, n)
	}
}

//powerapi:hotpath
func callsCleanCallee(s *state) {
	cleanCallee(s)
	sub.Clean(1)
}

func cleanCallee(s *state) { s.total++ }

// Unannotated: allocates freely without diagnostics.
func coldPath() []int {
	return []int{1, 2, 3}
}
