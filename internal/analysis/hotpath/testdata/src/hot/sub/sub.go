// Package sub proves hotpath propagation across package boundaries: hot's
// annotated roots reach Bump -> grow, whose allocation is reported back at
// the call edge in package hot.
package sub

type Counter struct {
	buf []int
	n   int
}

// Bump is called from an annotated root in package hot.
func (c *Counter) Bump() {
	c.n++
	c.grow()
}

func (c *Counter) grow() {
	c.buf = []int{c.n}
}

// Clean is allocation-free all the way down.
func Clean(n int) int { return n * 2 }
