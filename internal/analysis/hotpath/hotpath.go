// Package hotpath turns the BENCH_BUDGET allocs/round caps from an
// after-the-fact bench gate into a compile-time diagnostic. A function
// annotated
//
//	//powerapi:hotpath
//
// in its doc comment — and, transitively, every same-module function it
// statically calls — must contain no allocating construct:
//
//   - map, slice and function literals (closures), &T{...}
//   - new(...) and make(...)
//   - string concatenation and string<->[]byte/[]rune conversions (except
//     the compiler-optimized comparison and map-index forms)
//   - calls into the fmt package
//   - interface boxing: a concrete value passed where an interface parameter
//     is expected, or explicitly converted to an interface type
//   - method values and go statements
//
// append is allowed: the hot path appends into retained, pre-sized buffers,
// and growth amortizes to zero — the same argument that admits the guarded
// `make` growth sites, which are instead suppressed one by one with
// `//powerapi:allow hotpath <why amortized>` so each exception carries its
// justification in the source.
//
// The analyzer computes an allocation summary for every function of every
// package (sites + same-module static callees), exports the summaries as
// facts, and reports from each annotated root: its own sites at their exact
// positions, and reachable callee sites at the call edge that pulls them in.
// Dynamic calls (function values, interface methods) and calls out of the
// module are not followed — the check covers the static same-module call
// graph, which is where the pipeline's hot rounds live.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"powerapi/internal/analysis/framework"
)

// Annotation marks a function whose static call graph must be allocation-free.
const Annotation = "//powerapi:hotpath"

// Name is the analyzer's name, shared by fact keys and allow directives.
const Name = "hotpath"

// Analyzer is the hotpath analyzer.
var Analyzer = &framework.Analyzer{
	Name: Name,
	Doc: "check that //powerapi:hotpath functions and their same-module callees " +
		"contain no allocating constructs",
	Run: run,
}

// AllocSite is one allocating construct inside a function.
type AllocSite struct {
	Pos  token.Pos `json:"-"`    // valid in-process only
	Site string    `json:"site"` // rendered file:line:col, stable across processes
	What string    `json:"what"`
}

// Callee is one static same-module call edge.
type Callee struct {
	Pkg  string    `json:"pkg"`
	Key  string    `json:"key"`
	Name string    `json:"name"`
	Pos  token.Pos `json:"-"`
	Site string    `json:"site"`
}

// Summary is the exported per-function fact.
type Summary struct {
	Allocs  []AllocSite `json:"allocs,omitempty"`
	Callees []Callee    `json:"callees,omitempty"`
}

func run(pass *framework.Pass) error {
	// Allow directives are honoured at the allocation SITE during
	// summarization (not at report time): a callee's alloc reports at the
	// call edge in the annotated function, so driver-level line suppression
	// would never see the site's own line, and a suppressed site must also
	// stay out of the exported facts.
	allows := make(framework.AllowSet)
	for _, file := range pass.Files {
		allows.CollectAllows(pass.Fset, file)
	}

	// Pass 1: summarize every function in this package.
	local := make(map[types.Object]*Summary)
	var roots []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fn.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				continue
			}
			sum := summarize(pass, fn, allows)
			local[obj] = sum
			pass.ExportObjectFact(obj, sum)
			if annotated(fn) {
				roots = append(roots, fn)
			}
		}
	}

	// Pass 2: walk each annotated root's reachable call graph.
	for _, fn := range roots {
		obj := pass.TypesInfo.Defs[fn.Name]
		sum := local[obj]
		// Own sites report at their exact positions.
		for _, a := range sum.Allocs {
			pass.Reportf(a.Pos, "%s in hot path %s (annotated %s)", a.What, fn.Name.Name, Annotation)
		}
		// Callee sites report at the call edge that reaches them.
		seen := map[string]bool{keyOf(pass, obj): true}
		for _, c := range sum.Callees {
			walkCallee(pass, fn.Name.Name, c, []string{}, seen, local)
		}
	}
	return nil
}

func keyOf(pass *framework.Pass, obj types.Object) string {
	pkg, key, ok := pass.Store().ObjectKey(obj)
	if !ok {
		return ""
	}
	return pkg + "." + key
}

// walkCallee reports allocation sites reachable through one call edge,
// following same-module static calls depth-first.
func walkCallee(pass *framework.Pass, root string, c Callee, path []string, seen map[string]bool, local map[types.Object]*Summary) {
	id := c.Pkg + "." + c.Key
	if id == "" || seen[id] {
		return
	}
	seen[id] = true
	var sum Summary
	if !lookupSummary(pass, c, local, &sum) {
		return // no body in this module (external, assembly, interface)
	}
	chain := strings.Join(append(path, c.Name), " -> ")
	if chain != "" {
		chain = " via " + chain
	}
	for _, a := range sum.Allocs {
		pass.Reportf(c.Pos, "call from hot path %s reaches %s at %s%s", root, a.What, a.Site, chain)
	}
	for _, next := range sum.Callees {
		// Deeper edges keep reporting at the original call site in the
		// annotated function, with the chain spelling out the route.
		next.Pos = c.Pos
		walkCallee(pass, root, next, append(path, c.Name), seen, local)
	}
}

// lookupSummary finds a callee's summary: same-package summaries from the
// local map (object identity), cross-package ones from the fact store.
func lookupSummary(pass *framework.Pass, c Callee, local map[types.Object]*Summary, out *Summary) bool {
	if c.Pkg == pass.Pkg.Path() {
		for obj, sum := range local {
			pkg, key, ok := pass.Store().ObjectKey(obj)
			if ok && pkg == c.Pkg && key == c.Key {
				*out = *sum
				return true
			}
		}
		return false
	}
	return pass.Store().Get(Name, c.Pkg, c.Key, out)
}

// annotated reports whether the function's doc comment carries the hotpath
// annotation.
func annotated(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, Annotation) {
			return true
		}
	}
	return false
}

// summarize walks one function body recording allocation sites and static
// same-module callees. Nested function literals are recorded as a single
// closure-allocation site and not descended into (their body runs only if
// called, and creating them already allocates).
func summarize(pass *framework.Pass, fn *ast.FuncDecl, allows framework.AllowSet) *Summary {
	sum := &Summary{}
	add := func(pos token.Pos, what string) {
		if allows.Allowed(pass.Fset, Name, pos) {
			return
		}
		sum.Allocs = append(sum.Allocs, AllocSite{Pos: pos, Site: pass.Fset.Position(pos).String(), What: what})
	}
	var walk func(n ast.Node, parent ast.Node)
	walk = func(n ast.Node, parent ast.Node) {
		switch e := n.(type) {
		case *ast.FuncLit:
			add(e.Pos(), "closure literal allocates")
			return
		case *ast.GoStmt:
			add(e.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			switch pass.TypesInfo.Types[e].Type.Underlying().(type) {
			case *types.Slice:
				add(e.Pos(), "slice literal allocates")
			case *types.Map:
				add(e.Pos(), "map literal allocates")
			default:
				if u, isUnary := parent.(*ast.UnaryExpr); isUnary && u.Op == token.AND {
					add(u.Pos(), "&composite literal allocates")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, e, parent, add, sum)
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value == nil && isString(tv.Type) {
					add(e.Pos(), "string concatenation allocates")
				}
			}
		case *ast.SelectorExpr:
			// A method used as a value (not called) allocates its binding.
			if sel := pass.TypesInfo.Selections[e]; sel != nil && sel.Kind() == types.MethodVal {
				if call, isCall := parent.(*ast.CallExpr); !isCall || call.Fun != ast.Expr(e) {
					add(e.Pos(), "method value allocates")
				}
			}
		}
		// Manual descent so every child knows its parent.
		children(n, func(child ast.Node) { walk(child, n) })
	}
	walk(fn.Body, fn)
	return sum
}

// checkCall classifies one call expression: builtin allocators, conversions,
// fmt calls, interface boxing of arguments, and same-module static callees.
func checkCall(pass *framework.Pass, call *ast.CallExpr, parent ast.Node, add func(token.Pos, string), sum *Summary) {
	// Conversions: string<->[]byte/[]rune allocate unless the compiler
	// optimizes the form (comparison operand, map-index key).
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if allocatingConversion(pass, call, tv.Type) && !optimizedConversionContext(parent) {
			add(call.Pos(), "string conversion allocates")
		}
		if isInterface(tv.Type) && len(call.Args) == 1 {
			if atv, aok := pass.TypesInfo.Types[call.Args[0]]; aok && !isInterface(atv.Type) && !atv.IsNil() && !pointerShaped(atv.Type) {
				add(call.Pos(), "conversion to interface boxes its operand")
			}
		}
		return
	}

	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch pass.TypesInfo.Uses[fun] {
		case types.Universe.Lookup("new"):
			add(call.Pos(), "new(...) allocates")
			return
		case types.Universe.Lookup("make"):
			add(call.Pos(), "make(...) allocates")
			return
		case types.Universe.Lookup("append"), types.Universe.Lookup("len"), types.Universe.Lookup("cap"),
			types.Universe.Lookup("copy"), types.Universe.Lookup("delete"), types.Universe.Lookup("clear"),
			types.Universe.Lookup("min"), types.Universe.Lookup("max"), types.Universe.Lookup("panic"),
			types.Universe.Lookup("recover"), types.Universe.Lookup("print"), types.Universe.Lookup("println"):
			return
		}
	case *ast.SelectorExpr:
		if obj := pass.TypesInfo.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			// Fall through: the arguments still box into ...any.
			add(call.Pos(), "fmt."+fun.Sel.Name+" call allocates")
		}
	}

	// Interface boxing at the call site: a concrete argument bound to an
	// interface parameter.
	if sig, ok := calleeSignature(pass, call); ok {
		checkBoxing(pass, call, sig, add)
	}

	// Static same-module callee?
	if callee := staticCallee(pass, call); callee != nil {
		pkgPath := callee.Pkg().Path()
		if pass.IsModulePkg(pkgPath) {
			if pkg, key, ok := pass.Store().ObjectKey(callee); ok {
				sum.Callees = append(sum.Callees, Callee{
					Pkg: pkg, Key: key, Name: callee.Name(),
					Pos: call.Pos(), Site: pass.Fset.Position(call.Pos()).String(),
				})
			}
		}
	}
}

// staticCallee resolves a call to its *types.Func when the callee is a
// package function or a concrete method (not an interface method or a
// function value).
func staticCallee(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, isFunc := pass.TypesInfo.Uses[fun].(*types.Func); isFunc {
			return f
		}
	case *ast.SelectorExpr:
		sel := pass.TypesInfo.Selections[fun]
		if sel == nil {
			// Package-qualified call: pkg.F.
			if f, isFunc := pass.TypesInfo.Uses[fun.Sel].(*types.Func); isFunc {
				return f
			}
			return nil
		}
		if sel.Kind() != types.MethodVal {
			return nil
		}
		if isInterface(sel.Recv()) {
			return nil // dynamic dispatch: not followed
		}
		if f, isFunc := sel.Obj().(*types.Func); isFunc {
			return f
		}
	}
	return nil
}

func calleeSignature(pass *framework.Pass, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return nil, false
	}
	sig, isSig := tv.Type.Underlying().(*types.Signature)
	return sig, isSig
}

// checkBoxing flags concrete arguments bound to interface parameters.
func checkBoxing(pass *framework.Pass, call *ast.CallExpr, sig *types.Signature, add func(token.Pos, string)) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if s, isSlice := last.(*types.Slice); isSlice {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !isInterface(pt) {
			continue
		}
		atv, ok := pass.TypesInfo.Types[arg]
		if !ok || atv.IsNil() || isInterface(atv.Type) || pointerShaped(atv.Type) {
			continue
		}
		add(arg.Pos(), "argument boxes into interface parameter")
	}
}

// allocatingConversion reports string<->[]byte/[]rune conversions.
func allocatingConversion(pass *framework.Pass, call *ast.CallExpr, to types.Type) bool {
	if len(call.Args) != 1 {
		return false
	}
	fromTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || fromTV.Value != nil { // constant-folded: no runtime conversion
		return false
	}
	from := fromTV.Type
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

// optimizedConversionContext recognizes the forms the compiler does not
// allocate for: `string(b) == s` comparisons and `m[string(b)]` lookups.
func optimizedConversionContext(parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.BinaryExpr:
		return p.Op == token.EQL || p.Op == token.NEQ || p.Op == token.LSS ||
			p.Op == token.LEQ || p.Op == token.GTR || p.Op == token.GEQ
	case *ast.IndexExpr:
		return true
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, isBasic := s.Elem().Underlying().(*types.Basic)
	return isBasic && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// pointerShaped reports types whose interface representation is the value
// itself — boxing them does not allocate.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// children invokes fn for each direct child node of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(child ast.Node) bool {
		if first {
			first = false
			return true
		}
		if child != nil {
			fn(child)
		}
		return false
	})
}
