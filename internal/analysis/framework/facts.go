package framework

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
	"sync"
)

// Facts are how analyzers pass knowledge across package boundaries: hotpath
// exports per-function allocation summaries, atomichygiene marks struct
// fields as atomically accessed, locklint exports its acquisition-order
// edges. Facts are JSON documents keyed by (package path, object key,
// analyzer name) — string-keyed rather than types.Object-keyed so the same
// fact survives both a whole-module in-process run (where dependency objects
// are shared) and vet's package-at-a-time protocol (where each process
// re-imports dependencies from export data and object identity is lost).

// Store is the fact database of one run.
type Store struct {
	mu    sync.Mutex
	facts map[storeKey]json.RawMessage
	// fieldKeys caches the struct-field → "(Type).field" resolution per
	// package, built lazily by scanning the package scope.
	fieldKeys map[*types.Package]map[*types.Var]string
}

type storeKey struct {
	pkg, obj, analyzer string
}

// NewStore returns an empty fact store.
func NewStore() *Store {
	return &Store{facts: make(map[storeKey]json.RawMessage)}
}

// Entry is one stored fact, as Facts enumerates them.
type Entry struct {
	Pkg string
	Obj string
	Raw json.RawMessage
}

// Set records a fact document, replacing any previous one under the same key.
func (s *Store) Set(analyzer, pkg, obj string, fact any) error {
	raw, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("framework: marshal %s fact for %s.%s: %w", analyzer, pkg, obj, err)
	}
	s.mu.Lock()
	s.facts[storeKey{pkg, obj, analyzer}] = raw
	s.mu.Unlock()
	return nil
}

// Get decodes the fact stored under the key into fact, reporting whether one
// existed.
func (s *Store) Get(analyzer, pkg, obj string, fact any) bool {
	s.mu.Lock()
	raw, ok := s.facts[storeKey{pkg, obj, analyzer}]
	s.mu.Unlock()
	if !ok {
		return false
	}
	return json.Unmarshal(raw, fact) == nil
}

// Facts enumerates every fact of one analyzer, in deterministic order.
func (s *Store) Facts(analyzer string) []Entry {
	s.mu.Lock()
	out := make([]Entry, 0, len(s.facts))
	for k, raw := range s.facts {
		if k.analyzer == analyzer {
			out = append(out, Entry{Pkg: k.pkg, Obj: k.obj, Raw: raw})
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Obj < out[j].Obj
	})
	return out
}

// vetxFile is the serialized form of one package's facts — powerapi-lint's
// equivalent of unitchecker's .vetx files, exchanged between per-package vet
// invocations.
type vetxFile struct {
	Facts []vetxFact `json:"facts"`
}

type vetxFact struct {
	Obj      string          `json:"obj"`
	Analyzer string          `json:"analyzer"`
	Fact     json.RawMessage `json:"fact"`
}

// EncodePackage serializes every fact attached to one package.
func (s *Store) EncodePackage(pkg string) ([]byte, error) {
	var f vetxFile
	s.mu.Lock()
	for k, raw := range s.facts {
		if k.pkg == pkg {
			f.Facts = append(f.Facts, vetxFact{Obj: k.obj, Analyzer: k.analyzer, Fact: raw})
		}
	}
	s.mu.Unlock()
	sort.Slice(f.Facts, func(i, j int) bool {
		if f.Facts[i].Obj != f.Facts[j].Obj {
			return f.Facts[i].Obj < f.Facts[j].Obj
		}
		return f.Facts[i].Analyzer < f.Facts[j].Analyzer
	})
	return json.Marshal(f)
}

// vetxAllFile is the multi-package serialization one vet invocation hands the
// next: its own package's new facts plus every dependency fact it saw, so
// facts propagate transitively without re-reading every ancestor's file.
type vetxAllFile struct {
	Facts []vetxAllFact `json:"facts"`
}

type vetxAllFact struct {
	Pkg      string          `json:"pkg"`
	Obj      string          `json:"obj"`
	Analyzer string          `json:"analyzer"`
	Fact     json.RawMessage `json:"fact"`
}

// EncodeAll serializes the entire store — the vetx payload of one vet-mode
// invocation.
func (s *Store) EncodeAll() ([]byte, error) {
	var f vetxAllFile
	s.mu.Lock()
	for k, raw := range s.facts {
		f.Facts = append(f.Facts, vetxAllFact{Pkg: k.pkg, Obj: k.obj, Analyzer: k.analyzer, Fact: raw})
	}
	s.mu.Unlock()
	sort.Slice(f.Facts, func(i, j int) bool {
		a, b := f.Facts[i], f.Facts[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return a.Analyzer < b.Analyzer
	})
	return json.Marshal(f)
}

// DecodeAll merges a multi-package vetx payload into the store.
func (s *Store) DecodeAll(data []byte) error {
	var f vetxAllFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("framework: decode vetx payload: %w", err)
	}
	s.mu.Lock()
	for _, ft := range f.Facts {
		s.facts[storeKey{ft.Pkg, ft.Obj, ft.Analyzer}] = ft.Fact
	}
	s.mu.Unlock()
	return nil
}

// DecodePackage loads facts previously encoded for pkg into the store.
func (s *Store) DecodePackage(pkg string, data []byte) error {
	var f vetxFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("framework: decode facts for %s: %w", pkg, err)
	}
	s.mu.Lock()
	for _, ft := range f.Facts {
		s.facts[storeKey{pkg, ft.Obj, ft.Analyzer}] = ft.Fact
	}
	s.mu.Unlock()
	return nil
}

// ObjectKey derives the stable string key of an object facts attach to:
// "F" for a package-level function, "(T).M" for a method (pointerness of the
// receiver erased), "var V" for a package-level variable, "type T" for a type
// name, and "(T).f" for a field of a package-level named struct type. Objects
// without a stable cross-process name (locals, fields of anonymous structs)
// report ok=false.
func (s *Store) ObjectKey(obj types.Object) (pkg, key string, ok bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	pkg = obj.Pkg().Path()
	switch o := obj.(type) {
	case *types.Func:
		sig, _ := o.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			name, found := receiverTypeName(sig.Recv().Type())
			if !found {
				return "", "", false
			}
			return pkg, "(" + name + ")." + o.Name(), true
		}
		return pkg, o.Name(), true
	case *types.TypeName:
		return pkg, "type " + o.Name(), true
	case *types.Var:
		if !o.IsField() {
			if o.Parent() == o.Pkg().Scope() {
				return pkg, "var " + o.Name(), true
			}
			return "", "", false
		}
		if k := s.fieldKey(o); k != "" {
			return pkg, k, true
		}
		return "", "", false
	}
	return "", "", false
}

// fieldKey resolves a struct field to "(OwnerType).field" by scanning the
// owning package's scope once and caching the result.
func (s *Store) fieldKey(v *types.Var) string {
	p := v.Pkg()
	s.mu.Lock()
	if s.fieldKeys == nil {
		s.fieldKeys = make(map[*types.Package]map[*types.Var]string)
	}
	m, ok := s.fieldKeys[p]
	s.mu.Unlock()
	if !ok {
		m = make(map[*types.Var]string)
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, isType := scope.Lookup(name).(*types.TypeName)
			if !isType {
				continue
			}
			st, isStruct := tn.Type().Underlying().(*types.Struct)
			if !isStruct {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				m[st.Field(i)] = "(" + name + ")." + st.Field(i).Name()
			}
		}
		s.mu.Lock()
		s.fieldKeys[p] = m
		s.mu.Unlock()
	}
	return m[v]
}

// receiverTypeName unwraps a method receiver type to its named type's name.
func receiverTypeName(t types.Type) (string, bool) {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if n, isNamed := t.(*types.Named); isNamed {
		return n.Obj().Name(), true
	}
	return "", false
}

// ExportObjectFact attaches a fact to obj for dependent packages. Objects
// without a stable key are silently skipped (nothing downstream could name
// them anyway).
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	pkg, key, ok := p.store.ObjectKey(obj)
	if !ok {
		return
	}
	_ = p.store.Set(p.Analyzer.Name, pkg, key, fact)
}

// ImportObjectFact decodes the fact attached to obj into fact, reporting
// whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact any) bool {
	pkg, key, ok := p.store.ObjectKey(obj)
	if !ok {
		return false
	}
	return p.store.Get(p.Analyzer.Name, pkg, key, fact)
}

// ExportPackageFact attaches a fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact any) {
	_ = p.store.Set(p.Analyzer.Name, p.Pkg.Path(), "", fact)
}

// ImportPackageFact decodes the package fact of path into fact.
func (p *Pass) ImportPackageFact(path string, fact any) bool {
	return p.store.Get(p.Analyzer.Name, path, "", fact)
}

// Store exposes the run's fact store (the driver wires it; analyzers should
// prefer the typed Pass methods).
func (p *Pass) Store() *Store { return p.store }

// SetStore wires the fact store into a pass; the driver calls it once per
// package.
func (p *Pass) SetStore(s *Store) { p.store = s }
