package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Suppression: a comment of the form
//
//	//powerapi:allow <analyzer> <reason>
//
// on the same line as a diagnostic, or on the line immediately above it,
// silences that analyzer there. The reason is mandatory by convention (the
// point is to document WHY the invariant does not apply — "amortized growth",
// "init path, no concurrent readers yet") but not enforced mechanically.

const allowPrefix = "//powerapi:allow "

// AllowSet records which (analyzer, file, line) triples are suppressed.
type AllowSet map[string]map[allowLine]bool

type allowLine struct {
	file string
	line int
}

// CollectAllows scans a file's comments for allow directives. A directive
// suppresses its own line and the line below it, so it works both as a
// trailing comment and as a lead-in line above the excepted statement.
func (a AllowSet) CollectAllows(fset *token.FileSet, file *ast.File) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			name, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
			if name == "" {
				continue
			}
			pos := fset.Position(c.Pos())
			if a[name] == nil {
				a[name] = make(map[allowLine]bool)
			}
			a[name][allowLine{pos.Filename, pos.Line}] = true
			a[name][allowLine{pos.Filename, pos.Line + 1}] = true
		}
	}
}

// Allowed reports whether a diagnostic of the analyzer at pos is suppressed.
func (a AllowSet) Allowed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	lines := a[analyzer]
	if lines == nil {
		return false
	}
	p := fset.Position(pos)
	return lines[allowLine{p.Filename, p.Line}]
}

func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
