// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface the powerapi-lint analyzers need.
// The container this module builds in has no module proxy access, so the
// vendorable upstream framework is out of reach; this package keeps the same
// shape (Analyzer, Pass, Diagnostic, object facts) over nothing but the
// standard library's go/ast, go/types and go/token, plus two extensions the
// upstream deliberately does not have:
//
//   - a Finish hook that runs once after every package of a whole-module run,
//     for invariants that are only checkable module-wide (lock-order cycles,
//     fields that are atomic in one package and plain in another), and
//   - a uniform suppression comment, `//powerapi:allow <analyzer> <reason>`,
//     honoured on the diagnostic's line or the line above it, so deliberate
//     exceptions are spelled out in the code they except.
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string
	// Doc is the one-paragraph description multichecker help prints.
	Doc string
	// Run analyzes one package. Diagnostics go through Pass.Report; facts
	// for dependent packages through Pass.ExportObjectFact and
	// Pass.ExportPackageFact.
	Run func(*Pass) error
	// Finish, if set, runs once after every package of a whole-module run
	// (never in vet's package-at-a-time mode — Pass.Deferred tells Run which
	// mode it is in). It sees the accumulated fact store.
	Finish func(*FinishContext)
}

// Diagnostic is one finding, positioned in the package under analysis.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Deferred is true in whole-module runs, where Finish will fire:
	// analyzers that defer cross-package reporting to Finish should report
	// immediately instead when it is false.
	Deferred bool

	// IsModulePkg reports whether an import path belongs to the module under
	// analysis (same-module call-graph propagation stops at its boundary).
	IsModulePkg func(path string) bool

	// Report emits a diagnostic. The driver drops diagnostics on lines
	// suppressed by an allow comment and, in vet mode, in _test.go files.
	Report func(Diagnostic)

	store *Store
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: sprintf(format, args...)})
}

// FinishContext is what a Finish hook sees: the module-wide fact store and a
// position-aware reporter.
type FinishContext struct {
	Fset   *token.FileSet
	Store  *Store
	Report func(Diagnostic)
}

// Posn renders a token.Pos of the current run for inclusion in messages.
func (f *FinishContext) Posn(pos token.Pos) string {
	return f.Fset.Position(pos).String()
}
