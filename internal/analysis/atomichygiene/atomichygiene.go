// Package atomichygiene enforces all-or-nothing atomicity: a variable or
// struct field that is accessed through sync/atomic's raw functions anywhere
// in the module must be accessed atomically everywhere — one plain read of a
// counter that other goroutines Add to is a data race the race detector only
// catches when the interleaving happens to occur, and a torn read on 32-bit
// targets even when it does not.
//
// The analyzer records, for every field or package-level variable passed as
// `&x` to a sync/atomic function, an "atomic" mark; every other reference to
// the same object is a plain access. In a whole-module run the join happens
// in the Finish hook, so the order packages are analyzed in cannot hide a
// mixed access (atomic in one package, plain in a sibling). In vet's
// package-at-a-time mode the join uses the facts of the dependencies
// available to the current package.
//
// Fields of the typed sync/atomic wrappers (atomic.Int64 & co) are exempt by
// construction — their API admits no plain access — which is also why they
// are the repo's preferred form. For raw 64-bit atomics the analyzer
// additionally checks 32-bit alignment: atomic.AddInt64(&s.f, ...) faults on
// GOARCH=386/arm unless f's offset is 8-byte aligned; the typed wrappers
// carry an align64 guarantee instead.
//
// Initialization inside a composite literal is exempt (the value is not yet
// shared). Everything else goes through `//powerapi:allow atomichygiene
// <reason>` if it is genuinely safe, so the exception documents itself.
package atomichygiene

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"powerapi/internal/analysis/framework"
)

// Name is the analyzer's name, shared by fact keys and allow directives.
const Name = "atomichygiene"

// Analyzer is the atomichygiene analyzer.
var Analyzer = &framework.Analyzer{
	Name: Name,
	Doc: "check that fields touched by sync/atomic are accessed atomically everywhere, " +
		"and that raw 64-bit atomic fields are aligned for 32-bit targets",
	Run:    run,
	Finish: finish,
}

// SiteRef is one source position, process-local and rendered.
type SiteRef struct {
	Pos  token.Pos `json:"pos"` // meaningful within one process's FileSet
	Site string    `json:"site"`
}

// Fact is the per-object hygiene record: where it was seen atomically, and
// where it was seen plainly.
type Fact struct {
	Atomic *SiteRef  `json:"atomic,omitempty"`
	Bits64 bool      `json:"bits64,omitempty"`
	Plain  []SiteRef `json:"plain,omitempty"`
}

func run(pass *framework.Pass) error {
	// Phase 1: find raw atomic accesses and the idents they sanction.
	sanctioned := make(map[*ast.Ident]bool)
	localAtomic := make(map[types.Object]SiteRef)
	aligned64Checked := make(map[types.Object]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			fn, is64 := atomicRawCall(pass, call)
			if fn == "" || len(call.Args) == 0 {
				return true
			}
			obj, id := addressedObject(pass, call.Args[0])
			if obj == nil {
				return true
			}
			sanctioned[id] = true
			if _, seen := localAtomic[obj]; !seen {
				localAtomic[obj] = SiteRef{Pos: call.Pos(), Site: pass.Fset.Position(call.Pos()).String()}
			}
			if is64 && !aligned64Checked[obj] {
				aligned64Checked[obj] = true
				checkAlignment(pass, call.Args[0], obj)
			}
			return true
		})
	}

	// Merge local atomic marks into the facts.
	for obj, site := range localAtomic {
		var fact Fact
		pass.ImportObjectFact(obj, &fact)
		if fact.Atomic == nil {
			s := site
			fact.Atomic = &s
		}
		pass.ExportObjectFact(obj, fact)
	}

	// Phase 2: record plain accesses of every atomic-eligible object.
	for _, file := range pass.Files {
		var inComposite int
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CompositeLit:
				// Keyed initialization is pre-publication and exempt.
				inComposite++
				for _, el := range e.Elts {
					ast.Inspect(el, walk)
				}
				inComposite--
				return false
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[e]
				if obj == nil || sanctioned[e] || inComposite > 0 {
					return true
				}
				if !atomicEligible(obj) {
					return true
				}
				var fact Fact
				pass.ImportObjectFact(obj, &fact)
				fact.Plain = append(fact.Plain, SiteRef{Pos: e.Pos(), Site: pass.Fset.Position(e.Pos()).String()})
				pass.ExportObjectFact(obj, fact)
				if !pass.Deferred && fact.Atomic != nil {
					if _, key, keyed := pass.Store().ObjectKey(obj); keyed {
						reportPlain(pass.Report, e.Pos(), key, *fact.Atomic)
					}
				}
			}
			return true
		}
		ast.Inspect(file, walk)
	}
	return nil
}

// finish joins atomic marks and plain accesses module-wide.
func finish(ctx *framework.FinishContext) {
	for _, entry := range ctx.Store.Facts(Name) {
		var fact Fact
		if !ctx.Store.Get(Name, entry.Pkg, entry.Obj, &fact) {
			continue
		}
		if fact.Atomic == nil {
			continue
		}
		for _, p := range fact.Plain {
			reportPlain(ctx.Report, p.Pos, entry.Obj, *fact.Atomic)
		}
	}
}

func reportPlain(report func(framework.Diagnostic), pos token.Pos, label string, atomic SiteRef) {
	report(framework.Diagnostic{
		Pos: pos,
		Message: "plain access to " + label + ", which is accessed atomically at " + atomic.Site +
			": every access to an atomic variable must go through sync/atomic",
	})
}

// atomicRawCall recognizes calls to sync/atomic's raw functions (not the
// typed wrappers' methods), returning the function name and whether it is a
// 64-bit operation.
func atomicRawCall(pass *framework.Pass, call *ast.CallExpr) (name string, is64 bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	fn, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFunc || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
		return "", false // typed wrapper method: hygienic by construction
	}
	return fn.Name(), strings.Contains(fn.Name(), "64")
}

// addressedObject resolves `&x` / `&s.f` to the variable object and the
// identifier naming it.
func addressedObject(pass *framework.Pass, arg ast.Expr) (types.Object, *ast.Ident) {
	unary, isUnary := ast.Unparen(arg).(*ast.UnaryExpr)
	if !isUnary || unary.Op != token.AND {
		return nil, nil
	}
	switch x := ast.Unparen(unary.X).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[x]; obj != nil {
			return obj, x
		}
	case *ast.SelectorExpr:
		if obj := pass.TypesInfo.Uses[x.Sel]; obj != nil {
			return obj, x.Sel
		}
	}
	return nil, nil
}

// atomicEligible limits plain-access recording to objects raw atomics can
// target: fields and package-level variables of 32/64-bit integer, uintptr
// or unsafe.Pointer type. (Typed atomic.XXX fields are named structs and
// fall out here.)
func atomicEligible(obj types.Object) bool {
	v, isVar := obj.(*types.Var)
	if !isVar {
		return false
	}
	if !v.IsField() && (v.Pkg() == nil || v.Parent() != v.Pkg().Scope()) {
		return false
	}
	b, isBasic := v.Type().Underlying().(*types.Basic)
	if !isBasic {
		return false
	}
	switch b.Kind() {
	case types.Int32, types.Uint32, types.Int64, types.Uint64, types.Uintptr, types.UnsafePointer:
		return true
	}
	return false
}

// checkAlignment flags raw 64-bit atomic fields whose offset is not 8-byte
// aligned under 32-bit struct layout (GOARCH=386/arm fault on such access).
func checkAlignment(pass *framework.Pass, arg ast.Expr, obj types.Object) {
	v, isVar := obj.(*types.Var)
	if !isVar || !v.IsField() {
		return // package vars and locals are allocator-aligned
	}
	unary, _ := ast.Unparen(arg).(*ast.UnaryExpr)
	if unary == nil {
		return
	}
	sel, isSel := ast.Unparen(unary.X).(*ast.SelectorExpr)
	if !isSel {
		return
	}
	recv := pass.TypesInfo.Types[sel.X].Type
	if ptr, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	st, isStruct := recv.Underlying().(*types.Struct)
	if !isStruct {
		return
	}
	sizes := types.SizesFor("gc", "386")
	fields := make([]*types.Var, st.NumFields())
	idx := -1
	for i := 0; i < st.NumFields(); i++ {
		fields[i] = st.Field(i)
		if st.Field(i) == v {
			idx = i
		}
	}
	if idx < 0 {
		return
	}
	offsets := sizes.Offsetsof(fields)
	if offsets[idx]%8 != 0 {
		pass.Reportf(arg.Pos(),
			"64-bit atomic access to field %s at 32-bit offset %d: not 8-byte aligned on 386/arm — move it first in the struct or use atomic.%s",
			v.Name(), offsets[idx], typedWrapperFor(v.Type()))
	}
}

func typedWrapperFor(t types.Type) string {
	if b, isBasic := t.Underlying().(*types.Basic); isBasic {
		switch b.Kind() {
		case types.Int64:
			return "Int64"
		case types.Uint64:
			return "Uint64"
		}
	}
	return "Int64"
}
