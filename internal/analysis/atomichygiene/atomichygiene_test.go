package atomichygiene_test

import (
	"testing"

	"powerapi/internal/analysis/analysistest"
	"powerapi/internal/analysis/atomichygiene"
)

func TestAtomicHygiene(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomichygiene.Analyzer, "atomix", "atomix/ext")
}
