// Package atomix is the atomichygiene fixture: fields and package variables
// mixing sync/atomic and plain access (positives), all-atomic and
// typed-atomic usage (negatives), and a 64-bit field misaligned under 32-bit
// struct layout.
package atomix

import "sync/atomic"

// Counter.n is accessed atomically in bumpAtomic, so every other access must
// be atomic too. cold is never touched atomically and stays unchecked.
type Counter struct {
	n    int64
	cold int64
}

// Stats.hits sits at offset 4 under 386 layout: raw 64-bit atomics fault.
type Stats struct {
	pad  int32
	hits int64
}

// Aligned.hits leads the struct, so its offset is 0 on every target.
type Aligned struct {
	hits int64
	pad  int32
}

// Typed uses the sync/atomic wrapper types, which cannot be accessed plainly.
type Typed struct {
	n atomic.Int64
}

// Shared is read plainly from the ext fixture package.
type Shared struct {
	Flag int32
}

var total int64

func bumpAtomic(c *Counter) {
	atomic.AddInt64(&c.n, 1)
}

func readAtomic(c *Counter) int64 {
	return atomic.LoadInt64(&c.n)
}

// SetFlag makes Shared.Flag atomic module-wide.
func SetFlag(s *Shared) {
	atomic.StoreInt32(&s.Flag, 1)
}

func bumpTotal() {
	atomic.AddInt64(&total, 1)
}

// --- positive cases -------------------------------------------------------

func readPlain(c *Counter) int64 {
	return c.n // want `plain access to \(Counter\)\.n, which is accessed atomically at`
}

func writePlain(c *Counter) {
	c.n = 0 // want `plain access to \(Counter\)\.n`
}

func readTotalPlain() int64 {
	return total // want `plain access to var total`
}

func misaligned(s *Stats) {
	atomic.AddInt64(&s.hits, 1) // want `64-bit atomic access to field hits at 32-bit offset 4: not 8-byte aligned`
}

// --- negative cases -------------------------------------------------------

func allAtomic(c *Counter) int64 {
	atomic.StoreInt64(&c.n, 7)
	return atomic.LoadInt64(&c.n)
}

func coldIsUnchecked(c *Counter) {
	c.cold++
}

func typedWrapperOK(t *Typed) int64 {
	t.n.Add(1)
	return t.n.Load()
}

func compositeInitOK() *Counter {
	return &Counter{n: 5}
}

func alignedOK(a *Aligned) {
	atomic.AddInt64(&a.hits, 1)
}

func allowedPlain(c *Counter) int64 {
	//powerapi:allow atomichygiene read before the counter is published
	return c.n
}
