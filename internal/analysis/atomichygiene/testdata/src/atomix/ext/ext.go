// Package ext proves the module-wide join: atomix.Shared.Flag is written
// atomically in package atomix, so this package's plain read is flagged even
// though ext itself never imports sync/atomic.
package ext

import "atomix"

func Peek(s *atomix.Shared) int32 {
	return s.Flag // want `plain access to \(Shared\)\.Flag, which is accessed atomically at`
}

func PokeAllowed(s *atomix.Shared) {
	//powerapi:allow atomichygiene test-only reset, no concurrent readers
	s.Flag = 0
}
