// Package analysistest runs an analyzer over GOPATH-style fixture packages
// and checks its diagnostics against `// want` comments, the same fixture
// convention as golang.org/x/tools/go/analysis/analysistest (reimplemented
// here over the standard library because the container has no module proxy).
//
// A want comment annotates the line the diagnostic lands on:
//
//	leak := src.Get() // want `neither Released`
//	ok := src.Get()   // no comment: a diagnostic here fails the test
//
// Each backquoted string is a regular expression; every expectation on a line
// must be matched by a distinct diagnostic on that line, and every diagnostic
// must match an expectation. Lines without wants must produce nothing — the
// negative cases are as load-bearing as the positive ones.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"regexp"
	"strings"
	"testing"

	"powerapi/internal/analysis/framework"
	"powerapi/internal/analysis/load"
)

// TestData returns the testdata/src root of the calling test's package.
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatalf("analysistest: getwd: %v", err)
	}
	return wd + "/testdata/src"
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture packages, applies the analyzer (including its Finish
// hook), and diffs diagnostics against want comments.
func Run(t *testing.T, srcDir string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	prog, err := load.Testdata(srcDir, pkgs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	findings, err := load.Run(prog, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	wants := make(map[string][]*expectation) // "file:line" -> expectations
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					idx := strings.Index(text, "want ")
					if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					exps, perr := parseWants(text[idx+len("want "):])
					if perr != nil {
						t.Fatalf("analysistest: %s: %v", key, perr)
					}
					wants[key] = append(wants[key], exps...)
				}
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.re.MatchString(f.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", posRel(f.Pos), f.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("no diagnostic at %s matching %q", key, exp.re)
			}
		}
	}
}

// parseWants splits a want payload into backquoted regexps.
func parseWants(s string) ([]*expectation, error) {
	var out []*expectation
	rest := strings.TrimSpace(s)
	for rest != "" {
		if rest[0] != '`' {
			return nil, fmt.Errorf("want expectations must be backquoted regexps, got %q", rest)
		}
		end := strings.IndexByte(rest[1:], '`')
		if end < 0 {
			return nil, fmt.Errorf("unterminated want expectation %q", rest)
		}
		re, err := regexp.Compile(rest[1 : 1+end])
		if err != nil {
			return nil, fmt.Errorf("bad want regexp: %w", err)
		}
		out = append(out, &expectation{re: re})
		rest = strings.TrimSpace(rest[end+2:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}

func posRel(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
