// Package locklint checks the two locking invariants the pipeline's sharded
// design depends on:
//
//  1. Consistent acquisition order. Every function contributes "A was held
//     while B was acquired" edges to a module-wide graph, with mutexes
//     identified by their declaration — "(nodeConn).mu", "var registryMu" —
//     so all shards of a sharded lock form one class and indices do not
//     matter. A cycle in the graph is a latent deadlock: two goroutines
//     taking the same pair of locks in opposite orders need only the wrong
//     interleaving. The join runs in the Finish hook of a whole-module run
//     (order of analysis cannot hide a cross-package inversion) and against
//     the dependencies' facts in vet's package-at-a-time mode.
//
//  2. No dynamic calls under a lock. Calling a func-valued struct field
//     (subscriber callback, commit hook) or a module-defined interface
//     method while holding a mutex hands control to code that may block, or
//     take the same lock and self-deadlock — the repo's subscription
//     registries copy the callback list and release before fanout for
//     exactly this reason. Standard-library interfaces (net.Conn, io.Writer)
//     are exempt: they are leaf I/O, not re-entrant module code.
//
// The held-set tracking is intra-procedural and branch-local: control-flow
// bodies get a copy of the held set, `defer mu.Unlock()` keeps the lock held
// to the end of the walk, and closures are skipped (they run elsewhere).
// Deliberate exceptions use `//powerapi:allow locklint <reason>`.
package locklint

import (
	"go/ast"
	"go/token"
	"go/types"

	"powerapi/internal/analysis/framework"
)

// Name is the analyzer's name, shared by fact keys and allow directives.
const Name = "locklint"

// Analyzer is the locklint analyzer.
var Analyzer = &framework.Analyzer{
	Name: Name,
	Doc: "check consistent mutex acquisition order across the module and " +
		"forbid calls into callbacks or module interfaces while a lock is held",
	Run:    run,
	Finish: finish,
}

// Edge is one observed acquisition order: To was locked while From was held.
type Edge struct {
	From string    `json:"from"`
	To   string    `json:"to"`
	Pos  token.Pos `json:"pos"` // process-local
	Site string    `json:"site"`
}

// PackageFact is a package's contribution to the module lock-order graph.
type PackageFact struct {
	Edges []Edge `json:"edges"`
}

// heldLock is one mutex currently held during the walk.
type heldLock struct {
	class string // "" when the mutex has no stable cross-package key (locals)
	site  string
	pos   token.Pos
}

type checker struct {
	pass  *framework.Pass
	edges []Edge
	seen  map[[2]string]bool
}

func run(pass *framework.Pass) error {
	c := &checker{pass: pass, seen: make(map[[2]string]bool)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fn.Body == nil {
				continue
			}
			c.walkStmts(fn.Body.List, make(map[types.Object]heldLock))
		}
	}
	pass.ExportPackageFact(PackageFact{Edges: c.edges})
	if !pass.Deferred {
		// vet mode: no Finish will fire; join this package's edges against
		// the facts of its dependencies. Only edges positioned here are
		// reported — dependency inversions were reported when the dependency
		// itself was vetted.
		detectInversions(pass.Store(), pass.Pkg.Path(), pass.Report)
	}
	return nil
}

func finish(ctx *framework.FinishContext) {
	detectInversions(ctx.Store, "", ctx.Report)
}

// walkStmts tracks the held set through one statement list. Control-flow
// bodies get their own copy so a branch-local Lock/Unlock pair does not leak.
func (c *checker) walkStmts(stmts []ast.Stmt, held map[types.Object]heldLock) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			c.walkStmts(s.List, copyHeld(held))
		case *ast.IfStmt:
			if s.Init != nil {
				c.walkStmts([]ast.Stmt{s.Init}, held)
			}
			c.scanExpr(s.Cond, held)
			c.walkStmts(s.Body.List, copyHeld(held))
			if s.Else != nil {
				c.walkStmts([]ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			c.walkStmts(s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			c.scanExpr(s.X, held)
			c.walkStmts(s.Body.List, copyHeld(held))
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			for _, clause := range clauseBodies(s) {
				c.walkStmts(clause, copyHeld(held))
			}
		case *ast.LabeledStmt:
			c.walkStmts([]ast.Stmt{s.Stmt}, held)
		case *ast.GoStmt:
			// The goroutine runs without this goroutine's locks.
		case *ast.DeferStmt:
			if op, obj, _ := c.mutexOp(s.Call); obj != nil && isRelease(op) {
				// defer mu.Unlock(): held to the end of the function, which
				// the linear walk models by simply not releasing.
				continue
			}
		default:
			c.scanStmt(stmt, held)
		}
	}
}

// scanStmt handles straight-line statements: every call is inspected in
// source order for lock operations and for dynamic calls under a lock.
func (c *checker) scanStmt(stmt ast.Stmt, held map[types.Object]heldLock) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false // runs elsewhere, with its own held set
		case *ast.CallExpr:
			c.handleCall(e, held)
		}
		return true
	})
}

func (c *checker) scanExpr(expr ast.Expr, held map[types.Object]heldLock) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.handleCall(e, held)
		}
		return true
	})
}

func (c *checker) handleCall(call *ast.CallExpr, held map[types.Object]heldLock) {
	op, obj, pos := c.mutexOp(call)
	switch {
	case obj != nil && isAcquire(op):
		class, site := c.classOf(obj), c.pass.Fset.Position(pos).String()
		for _, h := range held {
			if h.class != "" && class != "" && h.class != class {
				c.edges = append(c.edges, Edge{From: h.class, To: class, Pos: pos, Site: site})
			}
		}
		held[obj] = heldLock{class: class, site: site, pos: pos}
	case obj != nil && isRelease(op):
		delete(held, obj)
	case obj == nil && op == "":
		if len(held) > 0 {
			c.checkDynamicCall(call, held)
		}
	}
}

// mutexOp recognizes sync.Mutex/RWMutex method calls, resolving the mutex to
// its declaring variable or field.
func (c *checker) mutexOp(call *ast.CallExpr) (op string, obj types.Object, pos token.Pos) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", nil, token.NoPos
	}
	fn, isFunc := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFunc || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil, token.NoPos
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", nil, token.NoPos
	}
	return fn.Name(), c.mutexObject(sel.X), call.Pos()
}

// mutexObject unwraps `s.shards[i].mu` / `(&reg).mu` / `mu` down to the
// identifier declaring the mutex, erasing indices so every shard of a sharded
// lock is one class.
func (c *checker) mutexObject(expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return c.pass.TypesInfo.Uses[e]
		case *ast.SelectorExpr:
			return c.pass.TypesInfo.Uses[e.Sel]
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// classOf maps a mutex's declaring object to its module-wide class name, or
// "" for objects with no stable key (locals).
func (c *checker) classOf(obj types.Object) string {
	pkg, key, keyed := c.pass.Store().ObjectKey(obj)
	if !keyed {
		return ""
	}
	return pkg + "." + key
}

// checkDynamicCall flags calls that hand control to module code while a lock
// is held: func-valued struct fields (callbacks) and methods of interfaces
// defined in this module.
func (c *checker) checkDynamicCall(call *ast.CallExpr, held map[types.Object]heldLock) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return
	}
	var what string
	switch obj := c.pass.TypesInfo.Uses[sel.Sel].(type) {
	case *types.Var:
		if !obj.IsField() {
			return
		}
		if _, isFunc := obj.Type().Underlying().(*types.Signature); !isFunc {
			return
		}
		what = "func-valued field " + obj.Name()
	case *types.Func:
		selection := c.pass.TypesInfo.Selections[sel]
		if selection == nil {
			return
		}
		recv := selection.Recv()
		if _, isIface := recv.Underlying().(*types.Interface); !isIface {
			return
		}
		named, isNamed := recv.(*types.Named)
		if !isNamed || named.Obj().Pkg() == nil {
			return
		}
		if c.pass.IsModulePkg == nil || !c.pass.IsModulePkg(named.Obj().Pkg().Path()) {
			return // stdlib interfaces (net.Conn, io.Writer) are leaf I/O
		}
		what = "method " + named.Obj().Name() + "." + obj.Name() + " of a module interface"
	default:
		return
	}
	h := anyHeld(held)
	c.pass.Reportf(call.Pos(),
		"calls %s while holding %s (locked at %s): callbacks must not run under a lock",
		what, describe(h), h.site)
}

// anyHeld picks the held lock with the smallest position, for deterministic
// diagnostics.
func anyHeld(held map[types.Object]heldLock) heldLock {
	var best heldLock
	first := true
	for _, h := range held {
		if first || h.pos < best.pos {
			best, first = h, false
		}
	}
	return best
}

func describe(h heldLock) string {
	if h.class != "" {
		return h.class
	}
	return "a mutex"
}

func isAcquire(op string) bool { return op == "Lock" || op == "RLock" }
func isRelease(op string) bool { return op == "Unlock" || op == "RUnlock" }

// clauseBodies extracts the statement lists of a switch or select statement's
// clauses.
func clauseBodies(stmt ast.Stmt) [][]ast.Stmt {
	var bodies [][]ast.Stmt
	var list []ast.Stmt
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		list = s.Body.List
	case *ast.TypeSwitchStmt:
		list = s.Body.List
	case *ast.SelectStmt:
		list = s.Body.List
	}
	for _, clause := range list {
		switch cl := clause.(type) {
		case *ast.CaseClause:
			bodies = append(bodies, cl.Body)
		case *ast.CommClause:
			bodies = append(bodies, cl.Body)
		}
	}
	return bodies
}

func copyHeld(held map[types.Object]heldLock) map[types.Object]heldLock {
	out := make(map[types.Object]heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// detectInversions joins every package's edges into one graph and reports
// each edge that completes a cycle: acquiring B while holding A when B is
// already ordered before A somewhere in the module. When onlyPkg is set,
// only edges contributed by that package are eligible to be reported (the
// graph itself is always module-wide).
func detectInversions(store *framework.Store, onlyPkg string, report func(framework.Diagnostic)) {
	adj := make(map[string][]Edge)
	var candidates []Edge
	for _, entry := range store.Facts(Name) {
		var fact PackageFact
		if !store.Get(Name, entry.Pkg, entry.Obj, &fact) {
			continue
		}
		for _, e := range fact.Edges {
			adj[e.From] = append(adj[e.From], e)
			if onlyPkg == "" || entry.Pkg == onlyPkg {
				candidates = append(candidates, e)
			}
		}
	}
	for _, e := range candidates {
		if back := pathEdge(adj, e.To, e.From); back != nil {
			report(framework.Diagnostic{
				Pos: e.Pos,
				Message: "lock order inversion: " + e.To + " acquired while holding " + e.From +
					", but " + back.To + " is acquired while holding " + back.From +
					" at " + back.Site + " — a concurrent pair of these paths deadlocks",
			})
		}
	}
}

// pathEdge reports whether to is reachable from from in the edge graph,
// returning the last edge of one such path (the direct witness of the
// opposite order).
func pathEdge(adj map[string][]Edge, from, to string) *Edge {
	visited := make(map[string]bool)
	var dfs func(node string) *Edge
	dfs = func(node string) *Edge {
		if visited[node] {
			return nil
		}
		visited[node] = true
		for i := range adj[node] {
			e := &adj[node][i]
			if e.To == to {
				return e
			}
			if w := dfs(e.To); w != nil {
				return w
			}
		}
		return nil
	}
	return dfs(from)
}
