package locklint_test

import (
	"testing"

	"powerapi/internal/analysis/analysistest"
	"powerapi/internal/analysis/locklint"
)

func TestLockLint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), locklint.Analyzer, "lockfix", "lockfix/peer")
}
