// Package peer completes the cross-package lock-order cycle: lockfix takes
// C before D, this package takes D before C. Neither package alone has a
// cycle — only the module-wide join sees it.
package peer

import "lockfix"

func OrderDC(c *lockfix.C, d *lockfix.D) {
	d.Mu.Lock()
	defer d.Mu.Unlock()
	c.Mu.Lock() // want `lock order inversion: lockfix\.\(C\)\.Mu acquired while holding lockfix\.\(D\)\.Mu`
	c.Mu.Unlock()
}
