// Package lockfix is the locklint fixture: opposite acquisition orders in
// one package (A/B), one half of a cross-package inversion (C/D, completed
// by lockfix/peer), callbacks invoked under a lock, and the negative idioms
// the analyzer must accept — copy-then-publish, branch-local locking,
// ordered sharded locks, stdlib interfaces.
package lockfix

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// C and D export their mutexes so package peer can lock them in the
// opposite order.
type C struct{ Mu sync.Mutex }
type D struct{ Mu sync.Mutex }

// Notifier is a module interface: calling it under a lock is flagged.
type Notifier interface{ Notify(int) }

type Registry struct {
	mu      sync.Mutex
	subs    []func(int)
	onEvent func(int)
	sink    Notifier
}

type shard struct{ mu sync.Mutex }

func cond() bool { return false }

// --- positive cases -------------------------------------------------------

// orderAB and orderBA take the same pair of locks in opposite orders: both
// closing edges of the cycle are reported.
func orderAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock order inversion: lockfix\.\(B\)\.mu acquired while holding lockfix\.\(A\)\.mu`
	b.mu.Unlock()
}

func orderBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock order inversion: lockfix\.\(A\)\.mu acquired while holding lockfix\.\(B\)\.mu`
	a.mu.Unlock()
}

// OrderCD is inverted by peer.OrderDC in the peer package.
func OrderCD(c *C, d *D) {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	d.Mu.Lock() // want `lock order inversion: lockfix\.\(D\)\.Mu acquired while holding lockfix\.\(C\)\.Mu`
	d.Mu.Unlock()
}

func (r *Registry) publishBad(v int) {
	r.mu.Lock()
	r.onEvent(v) // want `calls func-valued field onEvent while holding lockfix\.\(Registry\)\.mu`
	r.mu.Unlock()
}

func (r *Registry) notifyBad(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink.Notify(v) // want `calls method Notifier\.Notify of a module interface while holding lockfix\.\(Registry\)\.mu`
}

// --- negative cases -------------------------------------------------------

// copyThenPublish is the repo's fanout idiom: snapshot under the lock,
// release, then call.
func (r *Registry) copyThenPublish(v int) {
	r.mu.Lock()
	fns := make([]func(int), len(r.subs))
	copy(fns, r.subs)
	r.mu.Unlock()
	for _, fn := range fns {
		fn(v)
	}
}

// notifyGood releases before handing control to the callback.
func (r *Registry) notifyGood(v int) {
	r.mu.Lock()
	v++
	r.mu.Unlock()
	r.sink.Notify(v)
}

// asyncNotify hands off to a goroutine, which runs without this goroutine's
// locks.
func (r *Registry) asyncNotify(v int) {
	r.mu.Lock()
	go r.sink.Notify(v)
	r.mu.Unlock()
}

// branchLocal: a lock taken and released inside a branch is not held after
// it.
func branchLocal(a *A, b *B) {
	if cond() {
		a.mu.Lock()
		a.mu.Unlock()
	}
	b.mu.Lock()
	b.mu.Unlock()
}

// shardedOK: shards of one lock class taken in index order are one class —
// no self-edges, no inversion.
func shardedOK(shards []shard, i, j int) {
	shards[i].mu.Lock()
	shards[j].mu.Lock()
	shards[j].mu.Unlock()
	shards[i].mu.Unlock()
}

// stdlibIfaceOK: stdlib/universe interfaces are leaf calls, not module
// callbacks.
func stdlibIfaceOK(r *Registry, err error) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return err.Error()
}

// allowedCallback documents a deliberate exception.
func (r *Registry) allowedCallback(v int) {
	r.mu.Lock()
	//powerapi:allow locklint callback is nonblocking by contract
	r.onEvent(v)
	r.mu.Unlock()
}
