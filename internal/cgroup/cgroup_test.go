package cgroup

import (
	"errors"
	"reflect"
	"testing"

	"powerapi/internal/target"
)

func TestValidatePath(t *testing.T) {
	for _, ok := range []string{"web", "web/api", "web/api/v2", "a-b_c.9"} {
		if err := ValidatePath(ok); err != nil {
			t.Fatalf("ValidatePath(%q) = %v", ok, err)
		}
	}
	for _, bad := range []string{"", "/web", "web/", "web//api", "web api", "web;db"} {
		if err := ValidatePath(bad); err == nil {
			t.Fatalf("ValidatePath(%q) should fail", bad)
		}
	}
}

func TestAncestors(t *testing.T) {
	if got := Ancestors("web"); got != nil {
		t.Fatalf("Ancestors(web) = %v, want nil", got)
	}
	if got := Ancestors("web/api/v2"); !reflect.DeepEqual(got, []string{"web", "web/api"}) {
		t.Fatalf("Ancestors(web/api/v2) = %v", got)
	}
}

func TestCreateBuildsMissingAncestors(t *testing.T) {
	h := NewHierarchy()
	if err := h.Create("web/api/v2"); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"web", "web/api", "web/api/v2"} {
		if !h.Exists(path) {
			t.Fatalf("missing ancestor %q", path)
		}
	}
	if err := h.Create("web/api/v2"); err != nil {
		t.Fatalf("creating twice should be idempotent: %v", err)
	}
	if h.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", h.Len())
	}
	if err := h.Create("web//api"); err == nil {
		t.Fatal("invalid path should fail")
	}
}

func TestAddMovesBetweenLeaves(t *testing.T) {
	h := NewHierarchy()
	if err := h.Add("web", 1); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("web", 1); err != nil {
		t.Fatalf("re-adding to the same group should be idempotent: %v", err)
	}
	if leaf, ok := h.LeafOf(1); !ok || leaf != "web" {
		t.Fatalf("LeafOf(1) = %q, %v", leaf, ok)
	}
	// The cgroup-v2 rule: adding a PID to another group moves it.
	if err := h.Add("db", 1); err != nil {
		t.Fatal(err)
	}
	if got := h.Members("web"); len(got) != 0 {
		t.Fatalf("pid 1 still a member of web: %v", got)
	}
	if got := h.Members("db"); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Members(db) = %v", got)
	}
	if err := h.Add("web", 0); err == nil {
		t.Fatal("non-positive pid should fail")
	}
}

func TestMembersRecursive(t *testing.T) {
	h := NewHierarchy()
	for pid, path := range map[int]string{1: "web", 2: "web", 3: "web/api", 4: "web/api/v2", 5: "db"} {
		if err := h.Add(path, pid); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.MembersRecursive("web"); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("MembersRecursive(web) = %v", got)
	}
	if got := h.MembersRecursive("web/api"); !reflect.DeepEqual(got, []int{3, 4}) {
		t.Fatalf("MembersRecursive(web/api) = %v", got)
	}
	if got := h.MembersRecursive("nope"); got != nil {
		t.Fatalf("MembersRecursive(nope) = %v", got)
	}
	if got := h.Paths(); !reflect.DeepEqual(got, []string{"db", "web", "web/api", "web/api/v2"}) {
		t.Fatalf("Paths() = %v", got)
	}
	targets := h.Targets()
	if len(targets) != 4 || targets[1] != target.Cgroup("web") {
		t.Fatalf("Targets() = %v", targets)
	}
}

func TestLeaveAndPrune(t *testing.T) {
	h := NewHierarchy()
	for pid, path := range map[int]string{1: "web", 2: "web", 3: "web/api"} {
		if err := h.Add(path, pid); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Leave(2); err != nil {
		t.Fatal(err)
	}
	if err := h.Leave(2); err == nil {
		t.Fatal("leaving twice should fail")
	}
	removed := h.Prune(func(pid int) bool { return pid != 3 })
	if !reflect.DeepEqual(removed, []int{3}) {
		t.Fatalf("Prune removed %v, want [3]", removed)
	}
	// Groups outlive their tasks, like a cgroup directory.
	if !h.Exists("web/api") {
		t.Fatal("emptied group should still exist")
	}
	if got := h.MembersRecursive("web"); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("MembersRecursive(web) = %v", got)
	}
}

func TestDelete(t *testing.T) {
	h := NewHierarchy()
	if err := h.Add("web/api", 1); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete("web"); err == nil {
		t.Fatal("deleting a group with children should fail")
	}
	if err := h.Delete("web/api"); err == nil {
		t.Fatal("deleting a group with members should fail")
	}
	if err := h.Leave(1); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete("web/api"); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete("web"); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete("web"); err == nil {
		t.Fatal("deleting an unknown group should fail")
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("web=1,2; web/api = 3 ;db=4;cache=")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec.Paths, []string{"web", "web/api", "db", "cache"}) {
		t.Fatalf("Paths = %v", spec.Paths)
	}
	if !reflect.DeepEqual(spec.Members["web"], []int{1, 2}) || len(spec.Members["cache"]) != 0 {
		t.Fatalf("Members = %v", spec.Members)
	}
	for _, bad := range []string{"", "  ", ";;", "web", "web=1;web=2", "web=x", "w eb=1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestSpecBuild(t *testing.T) {
	spec, err := ParseSpec("web=1,2;web/api=3")
	if err != nil {
		t.Fatal(err)
	}
	h, err := spec.Build(func(id int) (int, error) { return 1000 + id, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := h.MembersRecursive("web"); !reflect.DeepEqual(got, []int{1001, 1002, 1003}) {
		t.Fatalf("MembersRecursive(web) = %v", got)
	}
	// The identity mapping uses raw ids as PIDs.
	h2, err := spec.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := h2.Members("web"); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("identity Members(web) = %v", got)
	}
	// Mapping failures surface with the group context.
	if _, err := spec.Build(func(int) (int, error) { return 0, errors.New("boom") }); err == nil {
		t.Fatal("mapping error should fail the build")
	}
	// A member declared in two groups is a contradiction, not a silent move.
	contradiction, err := ParseSpec("web=1,2;db=2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := contradiction.Build(nil); err == nil {
		t.Fatal("member declared in two groups should fail the build")
	}
}
