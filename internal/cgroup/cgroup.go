// Package cgroup models a hierarchy of control groups over the simulated
// machine's processes, the way Linux cgroups group PIDs under nested paths
// ("web", "web/api"). The PowerAPI pipeline uses the hierarchy to monitor
// container-level targets: a cgroup's power is the power of its member
// processes, descendants included, so nested groups roll up to their parents
// and the per-target attribution stays conserved against the machine total.
//
// Membership follows the cgroup-v2 rule: a PID belongs to at most one group
// at a time (its leaf); adding it to another group moves it. Ancestors
// observe the PID through recursive membership, not through a second entry,
// which is what makes the aggregation double-count free.
package cgroup

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"powerapi/internal/target"
)

// Separator joins path segments of nested groups.
const Separator = "/"

// group is one node of the hierarchy.
type group struct {
	path     string
	children map[string]*group
	members  map[int]bool
}

// Hierarchy is a tree of control groups over process IDs. It is safe for
// concurrent use: the monitoring pipeline reads memberships from the
// aggregator goroutine while the driver mutates them between rounds.
type Hierarchy struct {
	mu     sync.RWMutex
	groups map[string]*group
	leaf   map[int]string // pid → the one group that directly holds it
}

// NewHierarchy creates an empty hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		groups: make(map[string]*group),
		leaf:   make(map[int]string),
	}
}

// ValidatePath checks a hierarchy path: one or more "/"-separated segments of
// letters, digits, '.', '_' and '-'.
func ValidatePath(path string) error {
	if path == "" {
		return errors.New("cgroup: empty path")
	}
	for _, seg := range strings.Split(path, Separator) {
		if seg == "" {
			return fmt.Errorf("cgroup: path %q has an empty segment", path)
		}
		for _, r := range seg {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
				r == '.', r == '_', r == '-':
			default:
				return fmt.Errorf("cgroup: path %q contains invalid character %q", path, r)
			}
		}
	}
	return nil
}

// Ancestors returns the proper ancestors of a path, outermost first
// ("web/api/v2" → ["web", "web/api"]).
func Ancestors(path string) []string {
	segs := strings.Split(path, Separator)
	if len(segs) <= 1 {
		return nil
	}
	out := make([]string, 0, len(segs)-1)
	for i := 1; i < len(segs); i++ {
		out = append(out, strings.Join(segs[:i], Separator))
	}
	return out
}

// InSubtree reports whether path is root itself or nested anywhere below it
// ("web/api" is in the "web" subtree; "webapp" is not).
func InSubtree(path, root string) bool {
	return path == root || strings.HasPrefix(path, root+Separator)
}

// Create adds a group (and any missing ancestors) to the hierarchy. Creating
// an existing group is idempotent.
func (h *Hierarchy) Create(path string) error {
	if err := ValidatePath(path); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.create(path)
	return nil
}

func (h *Hierarchy) create(path string) *group {
	if g, ok := h.groups[path]; ok {
		return g
	}
	g := &group{path: path, children: make(map[string]*group), members: make(map[int]bool)}
	h.groups[path] = g
	if anc := Ancestors(path); len(anc) > 0 {
		parent := h.create(anc[len(anc)-1])
		parent.children[path] = g
	}
	return g
}

// Delete removes a group. The group must be empty: no member PIDs (anywhere
// in its subtree) and no child groups.
func (h *Hierarchy) Delete(path string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	g, ok := h.groups[path]
	if !ok {
		return fmt.Errorf("cgroup: no such group %q", path)
	}
	if len(g.children) > 0 {
		return fmt.Errorf("cgroup: group %q still has child groups", path)
	}
	if len(g.members) > 0 {
		return fmt.Errorf("cgroup: group %q still has member processes", path)
	}
	delete(h.groups, path)
	if anc := Ancestors(path); len(anc) > 0 {
		if parent, ok := h.groups[anc[len(anc)-1]]; ok {
			delete(parent.children, path)
		}
	}
	return nil
}

// Exists reports whether a group is part of the hierarchy.
func (h *Hierarchy) Exists(path string) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	_, ok := h.groups[path]
	return ok
}

// Add places a PID in a group, creating the group if needed. A PID lives in
// exactly one group at a time: adding it to a second group moves it there,
// mirroring a write to cgroup.procs.
func (h *Hierarchy) Add(path string, pid int) error {
	if err := ValidatePath(path); err != nil {
		return err
	}
	if pid <= 0 {
		return fmt.Errorf("cgroup: invalid pid %d", pid)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if prev, ok := h.leaf[pid]; ok {
		if prev == path {
			return nil
		}
		delete(h.groups[prev].members, pid)
	}
	h.create(path).members[pid] = true
	h.leaf[pid] = path
	return nil
}

// Leave removes a PID from the hierarchy entirely.
func (h *Hierarchy) Leave(pid int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	path, ok := h.leaf[pid]
	if !ok {
		return fmt.Errorf("cgroup: pid %d is not in any group", pid)
	}
	delete(h.groups[path].members, pid)
	delete(h.leaf, pid)
	return nil
}

// LeafOf returns the group that directly holds a PID.
func (h *Hierarchy) LeafOf(pid int) (string, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	path, ok := h.leaf[pid]
	return path, ok
}

// Members returns the PIDs held directly by a group, sorted.
func (h *Hierarchy) Members(path string) []int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	g, ok := h.groups[path]
	if !ok {
		return nil
	}
	out := make([]int, 0, len(g.members))
	for pid := range g.members {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

// MembersRecursive returns the PIDs of a group's whole subtree, sorted — the
// membership a container runtime reports for a slice.
func (h *Hierarchy) MembersRecursive(path string) []int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	g, ok := h.groups[path]
	if !ok {
		return nil
	}
	var out []int
	var walk func(*group)
	walk = func(g *group) {
		for pid := range g.members {
			out = append(out, pid)
		}
		for _, child := range g.children {
			walk(child)
		}
	}
	walk(g)
	sort.Ints(out)
	return out
}

// Paths returns every group path, sorted; parents precede their children.
func (h *Hierarchy) Paths() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.groups))
	for path := range h.groups {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// Targets returns one cgroup target per group, in Paths order.
func (h *Hierarchy) Targets() []target.Target {
	paths := h.Paths()
	out := make([]target.Target, 0, len(paths))
	for _, path := range paths {
		out = append(out, target.Cgroup(path))
	}
	return out
}

// Len returns the number of groups.
func (h *Hierarchy) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.groups)
}

// Prune removes every member PID for which alive returns false — the
// lifecycle step dropping processes that exited — and returns the removed
// PIDs, sorted. Groups stay in place even when emptied, like a cgroup
// directory outliving its tasks.
func (h *Hierarchy) Prune(alive func(pid int) bool) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	var removed []int
	for pid, path := range h.leaf {
		if alive(pid) {
			continue
		}
		delete(h.groups[path].members, pid)
		delete(h.leaf, pid)
		removed = append(removed, pid)
	}
	sort.Ints(removed)
	return removed
}

// Spec is a parsed -cgroups style specification: group path → member ids in
// declaration order.
type Spec struct {
	// Paths lists the group paths in declaration order.
	Paths []string
	// Members maps each path to its declared member ids.
	Members map[string][]int
}

// ParseSpec parses a specification like "web=1,2,3;db=4" (nested paths such
// as "web/api=1,2" are allowed; "db=" declares an empty group). The member
// numbers are opaque ids the caller maps to PIDs — the daemon uses 1-based
// workload indices.
func ParseSpec(spec string) (*Spec, error) {
	out := &Spec{Members: make(map[string][]int)}
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("cgroup: empty spec")
	}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		path, list, found := strings.Cut(entry, "=")
		if !found {
			return nil, fmt.Errorf("cgroup: spec entry %q is not path=members", entry)
		}
		path = strings.TrimSpace(path)
		if err := ValidatePath(path); err != nil {
			return nil, err
		}
		if _, dup := out.Members[path]; dup {
			return nil, fmt.Errorf("cgroup: group %q declared twice", path)
		}
		var members []int
		for _, field := range strings.Split(list, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			id, err := strconv.Atoi(field)
			if err != nil {
				return nil, fmt.Errorf("cgroup: member %q of group %q is not a number", field, path)
			}
			members = append(members, id)
		}
		out.Paths = append(out.Paths, path)
		out.Members[path] = members
	}
	if len(out.Paths) == 0 {
		return nil, errors.New("cgroup: empty spec")
	}
	return out, nil
}

// Build materialises a parsed spec into a hierarchy. mapID translates the
// spec's member ids to PIDs (pass the identity to use raw PIDs). A member
// declared in two different groups is a contradiction — Add's move semantics
// would silently relocate it to the later group — so Build rejects it.
func (s *Spec) Build(mapID func(id int) (int, error)) (*Hierarchy, error) {
	h := NewHierarchy()
	owner := make(map[int]string)
	for _, path := range s.Paths {
		if err := h.Create(path); err != nil {
			return nil, err
		}
		for _, id := range s.Members[path] {
			if prev, dup := owner[id]; dup {
				return nil, fmt.Errorf("cgroup: member %d declared in both %q and %q", id, prev, path)
			}
			owner[id] = path
			pid := id
			if mapID != nil {
				mapped, err := mapID(id)
				if err != nil {
					return nil, fmt.Errorf("cgroup: group %q: %w", path, err)
				}
				pid = mapped
			}
			if err := h.Add(path, pid); err != nil {
				return nil, err
			}
		}
	}
	return h, nil
}
