package model

import (
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"powerapi/internal/hpc"
)

func referenceFrequencyModel() FrequencyModel {
	return FrequencyModel{
		FrequencyMHz: 3300,
		Terms: []Term{
			{Event: "instructions", WattsPerEventPerSecond: 2.22e-9},
			{Event: "cache-references", WattsPerEventPerSecond: 2.48e-8},
			{Event: "cache-misses", WattsPerEventPerSecond: 1.87e-7},
		},
		R2:      0.95,
		Samples: 100,
	}
}

func TestFrequencyModelEstimateWatts(t *testing.T) {
	fm := referenceFrequencyModel()
	// 1e9 instr/s, 1e8 refs/s, 1e7 misses/s over one second gives the
	// canonical 2.22 + 2.48 + 1.87 = 6.57 W of the paper's formula.
	deltas := hpc.Counts{
		hpc.Instructions:    1e9,
		hpc.CacheReferences: 1e8,
		hpc.CacheMisses:     1e7,
	}
	got, err := fm.EstimateWatts(deltas, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-6.57) > 1e-9 {
		t.Fatalf("EstimateWatts = %v, want 6.57", got)
	}
	// Half the window doubles the rate and the power.
	got2, err := fm.EstimateWatts(deltas, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got2-13.14) > 1e-9 {
		t.Fatalf("EstimateWatts over 0.5s = %v, want 13.14", got2)
	}
}

func TestFrequencyModelEstimateErrors(t *testing.T) {
	fm := referenceFrequencyModel()
	if _, err := fm.EstimateWatts(hpc.Counts{}, 0); err == nil {
		t.Fatal("zero window should fail")
	}
	bad := fm
	bad.Terms = []Term{{Event: "bogus", WattsPerEventPerSecond: 1}}
	if _, err := bad.EstimateWatts(hpc.Counts{}, time.Second); err == nil {
		t.Fatal("unknown event should fail")
	}
	if _, err := bad.Events(); err == nil {
		t.Fatal("Events with unknown event should fail")
	}
}

func TestFrequencyModelNegativeClamped(t *testing.T) {
	fm := FrequencyModel{
		FrequencyMHz: 1600,
		Terms:        []Term{{Event: "instructions", WattsPerEventPerSecond: -1e-9}},
	}
	got, err := fm.EstimateWatts(hpc.Counts{hpc.Instructions: 1e9}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("negative estimate should clamp to zero, got %v", got)
	}
}

func TestFrequencyModelEquation(t *testing.T) {
	eq := referenceFrequencyModel().Equation()
	for _, want := range []string{"Power_3.30", "instructions", "cache-references", "cache-misses"} {
		if !strings.Contains(eq, want) {
			t.Fatalf("Equation() = %q, missing %q", eq, want)
		}
	}
	empty := FrequencyModel{FrequencyMHz: 1600}
	if !strings.Contains(empty.Equation(), "= 0") {
		t.Fatalf("empty equation = %q", empty.Equation())
	}
}

func TestCPUPowerModelValidate(t *testing.T) {
	valid := PaperReferenceModel()
	if err := valid.Validate(); err != nil {
		t.Fatalf("paper reference model invalid: %v", err)
	}
	var nilModel *CPUPowerModel
	if err := nilModel.Validate(); err == nil {
		t.Fatal("nil model should fail")
	}
	tests := []struct {
		name   string
		mutate func(*CPUPowerModel)
	}{
		{name: "no frequencies", mutate: func(m *CPUPowerModel) { m.Frequencies = nil }},
		{name: "negative idle", mutate: func(m *CPUPowerModel) { m.IdleWatts = -1 }},
		{name: "zero frequency", mutate: func(m *CPUPowerModel) { m.Frequencies[0].FrequencyMHz = 0 }},
		{name: "no terms", mutate: func(m *CPUPowerModel) { m.Frequencies[0].Terms = nil }},
		{name: "bad event", mutate: func(m *CPUPowerModel) { m.Frequencies[0].Terms[0].Event = "bogus" }},
		{name: "nan coefficient", mutate: func(m *CPUPowerModel) {
			m.Frequencies[0].Terms[0].WattsPerEventPerSecond = math.NaN()
		}},
		{name: "duplicate frequency", mutate: func(m *CPUPowerModel) {
			m.Frequencies = append(m.Frequencies, m.Frequencies[0])
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := PaperReferenceModel()
			tt.mutate(m)
			if err := m.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestAddFrequencyModelKeepsOrderAndReplaces(t *testing.T) {
	m := &CPUPowerModel{IdleWatts: 30}
	m.AddFrequencyModel(FrequencyModel{FrequencyMHz: 3300, Terms: []Term{{Event: "instructions", WattsPerEventPerSecond: 1e-9}}})
	m.AddFrequencyModel(FrequencyModel{FrequencyMHz: 1600, Terms: []Term{{Event: "instructions", WattsPerEventPerSecond: 2e-9}}})
	m.AddFrequencyModel(FrequencyModel{FrequencyMHz: 2400, Terms: []Term{{Event: "instructions", WattsPerEventPerSecond: 3e-9}}})
	if len(m.Frequencies) != 3 {
		t.Fatalf("frequencies = %d, want 3", len(m.Frequencies))
	}
	for i, want := range []int{1600, 2400, 3300} {
		if m.Frequencies[i].FrequencyMHz != want {
			t.Fatalf("frequency %d = %d, want %d", i, m.Frequencies[i].FrequencyMHz, want)
		}
	}
	// Replacing an existing frequency does not grow the list.
	m.AddFrequencyModel(FrequencyModel{FrequencyMHz: 2400, Terms: []Term{{Event: "cycles", WattsPerEventPerSecond: 9e-9}}})
	if len(m.Frequencies) != 3 {
		t.Fatalf("replace grew the list to %d", len(m.Frequencies))
	}
	if m.Frequencies[1].Terms[0].Event != "cycles" {
		t.Fatal("replace did not update the formula")
	}
}

func TestModelForFrequencyNearest(t *testing.T) {
	m := &CPUPowerModel{}
	if _, err := m.ModelForFrequency(3300); !errors.Is(err, ErrNoModels) {
		t.Fatalf("expected ErrNoModels, got %v", err)
	}
	m.AddFrequencyModel(FrequencyModel{FrequencyMHz: 1600, Terms: []Term{{Event: "instructions", WattsPerEventPerSecond: 1}}})
	m.AddFrequencyModel(FrequencyModel{FrequencyMHz: 3300, Terms: []Term{{Event: "instructions", WattsPerEventPerSecond: 2}}})
	tests := []struct {
		ask  int
		want int
	}{
		{ask: 1600, want: 1600},
		{ask: 3300, want: 3300},
		{ask: 1700, want: 1600},
		{ask: 3000, want: 3300},
		{ask: 5000, want: 3300},
		{ask: 100, want: 1600},
	}
	for _, tt := range tests {
		fm, err := m.ModelForFrequency(tt.ask)
		if err != nil {
			t.Fatal(err)
		}
		if fm.FrequencyMHz != tt.want {
			t.Fatalf("ModelForFrequency(%d) = %d, want %d", tt.ask, fm.FrequencyMHz, tt.want)
		}
	}
}

func TestEstimateTotalWatts(t *testing.T) {
	m := PaperReferenceModel()
	deltas := hpc.Counts{
		hpc.Instructions:    1e9,
		hpc.CacheReferences: 1e8,
		hpc.CacheMisses:     1e7,
	}
	total, err := m.EstimateTotalWatts(3300, deltas, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := 31.48 + 6.57
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("EstimateTotalWatts = %v, want %v", total, want)
	}
	active, err := m.EstimateActiveWatts(3300, deltas, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(active-6.57) > 1e-9 {
		t.Fatalf("EstimateActiveWatts = %v, want 6.57", active)
	}
}

func TestCPUPowerModelEvents(t *testing.T) {
	m := PaperReferenceModel()
	events, err := m.Events()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("Events() = %v, want 3 events", events)
	}
	bad := PaperReferenceModel()
	bad.Frequencies[0].Terms[0].Event = "bogus"
	if _, err := bad.Events(); err == nil {
		t.Fatal("Events with invalid term should fail")
	}
}

func TestEquationRendersPaperShape(t *testing.T) {
	eq := PaperReferenceModel().Equation()
	for _, want := range []string{"Power = 31.48", "sum(Power_f", "Power_3.30"} {
		if !strings.Contains(eq, want) {
			t.Fatalf("Equation() = %q, missing %q", eq, want)
		}
	}
	empty := &CPUPowerModel{IdleWatts: 10}
	if !strings.Contains(empty.Equation(), "Power = 10.00") {
		t.Fatalf("empty model equation = %q", empty.Equation())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := PaperReferenceModel()
	data, err := m.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.IdleWatts != m.IdleWatts || len(back.Frequencies) != len(m.Frequencies) {
		t.Fatal("round trip lost data")
	}
	if back.Frequencies[0].Terms[2].WattsPerEventPerSecond != 1.87e-7 {
		t.Fatal("coefficient lost in round trip")
	}
	if _, err := FromJSON([]byte("not json")); err == nil {
		t.Fatal("invalid JSON should fail")
	}
	if _, err := FromJSON([]byte(`{"idleWatts": -1}`)); err == nil {
		t.Fatal("invalid model should fail validation")
	}
	invalid := &CPUPowerModel{IdleWatts: -5}
	if _, err := invalid.MarshalJSONIndent(); err == nil {
		t.Fatal("marshalling an invalid model should fail")
	}
}

func TestSaveAndLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	m := PaperReferenceModel()
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.SpecName != m.SpecName {
		t.Fatal("loaded model differs")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("loading a missing file should fail")
	}
	bad := &CPUPowerModel{IdleWatts: -1}
	if err := bad.SaveFile(path); err == nil {
		t.Fatal("saving an invalid model should fail")
	}
}
