// Package model defines the CPU power models the paper learns and applies:
// one multivariate linear formula per DVFS frequency, expressed over hardware
// performance counter rates, plus a constant isolating the machine's idle
// power. The package also handles persistence (JSON) and pretty-printing of
// the formulas in the exact shape the paper publishes:
//
//	Power = 31.48 + Σ_f Power_f
//	Power_3.30 = 2.22·i/10⁹ + 2.48·r/10⁸ + 1.87·m/10⁷
package model

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"powerapi/internal/hpc"
)

// ErrNoModels is returned when a CPUPowerModel has no per-frequency entries.
var ErrNoModels = errors.New("model: power model has no per-frequency formulas")

// Term is one coefficient of a per-frequency formula: the power contribution
// (in watts) of one event occurring once per second.
type Term struct {
	// Event is the perf-style event name.
	Event string `json:"event"`
	// WattsPerEventPerSecond is the slope of the linear model.
	WattsPerEventPerSecond float64 `json:"wattsPerEventPerSecond"`
}

// FrequencyModel is the linear power formula learned for one DVFS frequency.
type FrequencyModel struct {
	// FrequencyMHz identifies the DVFS step the formula applies to.
	FrequencyMHz int `json:"frequencyMHz"`
	// Terms holds one coefficient per selected hardware event.
	Terms []Term `json:"terms"`
	// R2 is the goodness of fit reported by the calibration regression.
	R2 float64 `json:"r2"`
	// Samples is the number of calibration samples behind the fit.
	Samples int `json:"samples"`
}

// Events returns the events used by the formula, in term order.
func (f FrequencyModel) Events() ([]hpc.Event, error) {
	events := make([]hpc.Event, len(f.Terms))
	for i, term := range f.Terms {
		e, err := hpc.ParseEvent(term.Event)
		if err != nil {
			return nil, fmt.Errorf("model: term %d: %w", i, err)
		}
		events[i] = e
	}
	return events, nil
}

// EstimateWatts evaluates the formula on counter deltas observed over window.
// The result is the *active* power attributed to that activity (idle power is
// handled by the enclosing CPUPowerModel).
func (f FrequencyModel) EstimateWatts(deltas hpc.Counts, window time.Duration) (float64, error) {
	if window <= 0 {
		return 0, fmt.Errorf("model: non-positive estimation window %v", window)
	}
	seconds := window.Seconds()
	var watts float64
	for _, term := range f.Terms {
		e, err := hpc.ParseEvent(term.Event)
		if err != nil {
			return 0, fmt.Errorf("model: %w", err)
		}
		rate := float64(deltas.Get(e)) / seconds
		watts += term.WattsPerEventPerSecond * rate
	}
	if watts < 0 {
		watts = 0
	}
	return watts, nil
}

// Equation renders the formula in the paper's style, e.g.
// "Power_3.30 = 2.22e-09*instructions/s + 2.48e-08*cache-references/s + ...".
func (f FrequencyModel) Equation() string {
	ghz := float64(f.FrequencyMHz) / 1000
	parts := make([]string, 0, len(f.Terms))
	for _, term := range f.Terms {
		parts = append(parts, fmt.Sprintf("%.3g*%s/s", term.WattsPerEventPerSecond, term.Event))
	}
	if len(parts) == 0 {
		return fmt.Sprintf("Power_%.2f = 0", ghz)
	}
	return fmt.Sprintf("Power_%.2f = %s", ghz, strings.Join(parts, " + "))
}

// CPUPowerModel is the complete learned energy profile of one processor: the
// idle constant plus one FrequencyModel per DVFS step.
type CPUPowerModel struct {
	// SpecName identifies the processor the model was learned on.
	SpecName string `json:"specName"`
	// IdleWatts is the constant isolating the idle power of the machine
	// (31.48 W in the paper's experiment).
	IdleWatts float64 `json:"idleWatts"`
	// Frequencies holds the per-frequency formulas, ascending by frequency.
	Frequencies []FrequencyModel `json:"frequencies"`
	// SelectionMethod records how the counters were chosen (pearson,
	// spearman, fixed).
	SelectionMethod string `json:"selectionMethod"`
	// TrainedAtSimSeconds records the simulated timestamp of calibration.
	TrainedAtSimSeconds float64 `json:"trainedAtSimSeconds"`
}

// Validate checks structural consistency.
func (m *CPUPowerModel) Validate() error {
	if m == nil {
		return errors.New("model: nil power model")
	}
	if len(m.Frequencies) == 0 {
		return ErrNoModels
	}
	if m.IdleWatts < 0 {
		return fmt.Errorf("model: negative idle power %v", m.IdleWatts)
	}
	seen := make(map[int]bool, len(m.Frequencies))
	for _, fm := range m.Frequencies {
		if fm.FrequencyMHz <= 0 {
			return fmt.Errorf("model: invalid frequency %d", fm.FrequencyMHz)
		}
		if seen[fm.FrequencyMHz] {
			return fmt.Errorf("model: duplicate frequency %d", fm.FrequencyMHz)
		}
		seen[fm.FrequencyMHz] = true
		if len(fm.Terms) == 0 {
			return fmt.Errorf("model: frequency %d has no terms", fm.FrequencyMHz)
		}
		for _, term := range fm.Terms {
			if _, err := hpc.ParseEvent(term.Event); err != nil {
				return fmt.Errorf("model: frequency %d: %w", fm.FrequencyMHz, err)
			}
			if math.IsNaN(term.WattsPerEventPerSecond) || math.IsInf(term.WattsPerEventPerSecond, 0) {
				return fmt.Errorf("model: frequency %d: non-finite coefficient for %s", fm.FrequencyMHz, term.Event)
			}
		}
	}
	return nil
}

// sortFrequencies keeps the per-frequency formulas ordered.
func (m *CPUPowerModel) sortFrequencies() {
	sort.Slice(m.Frequencies, func(i, j int) bool {
		return m.Frequencies[i].FrequencyMHz < m.Frequencies[j].FrequencyMHz
	})
}

// AddFrequencyModel inserts (or replaces) the formula for one frequency.
func (m *CPUPowerModel) AddFrequencyModel(fm FrequencyModel) {
	for i, existing := range m.Frequencies {
		if existing.FrequencyMHz == fm.FrequencyMHz {
			m.Frequencies[i] = fm
			return
		}
	}
	m.Frequencies = append(m.Frequencies, fm)
	m.sortFrequencies()
}

// ModelForFrequency returns the formula for freqMHz, falling back to the
// nearest known frequency (the way the runtime copes with turbo or
// intermediate P-states it was not calibrated on).
func (m *CPUPowerModel) ModelForFrequency(freqMHz int) (FrequencyModel, error) {
	if len(m.Frequencies) == 0 {
		return FrequencyModel{}, ErrNoModels
	}
	best := m.Frequencies[0]
	bestDist := math.Abs(float64(best.FrequencyMHz - freqMHz))
	for _, fm := range m.Frequencies[1:] {
		if d := math.Abs(float64(fm.FrequencyMHz - freqMHz)); d < bestDist {
			best, bestDist = fm, d
		}
	}
	return best, nil
}

// EstimateActiveWatts estimates the active (above-idle) power of the activity
// described by deltas observed over window while running at freqMHz.
func (m *CPUPowerModel) EstimateActiveWatts(freqMHz int, deltas hpc.Counts, window time.Duration) (float64, error) {
	fm, err := m.ModelForFrequency(freqMHz)
	if err != nil {
		return 0, err
	}
	return fm.EstimateWatts(deltas, window)
}

// EstimateTotalWatts estimates the machine's wall power: idle constant plus
// the active power of the observed activity.
func (m *CPUPowerModel) EstimateTotalWatts(freqMHz int, deltas hpc.Counts, window time.Duration) (float64, error) {
	active, err := m.EstimateActiveWatts(freqMHz, deltas, window)
	if err != nil {
		return 0, err
	}
	return m.IdleWatts + active, nil
}

// Events returns the union of events used across all frequencies, sorted.
func (m *CPUPowerModel) Events() ([]hpc.Event, error) {
	set := make(map[hpc.Event]bool)
	for _, fm := range m.Frequencies {
		events, err := fm.Events()
		if err != nil {
			return nil, err
		}
		for _, e := range events {
			set[e] = true
		}
	}
	out := make([]hpc.Event, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// compiledTerm is one pre-resolved coefficient: the event name has been
// parsed once, so evaluation is an array index instead of a string parse.
type compiledTerm struct {
	event hpc.Event
	coeff float64
}

// CompiledFrequency is the pre-resolved formula of one DVFS step.
type CompiledFrequency struct {
	freqMHz int
	terms   []compiledTerm
}

// FrequencyMHz returns the DVFS step the compiled formula applies to.
func (cf *CompiledFrequency) FrequencyMHz() int { return cf.freqMHz }

// EstimateActiveWatts evaluates the pre-resolved formula on a dense counter
// vector. This is the per-target per-round hot path: no string parsing, no
// map lookups, no allocations.
func (cf *CompiledFrequency) EstimateActiveWatts(deltas *hpc.CountsVec, window time.Duration) (float64, error) {
	if window <= 0 {
		return 0, fmt.Errorf("model: non-positive estimation window %v", window)
	}
	seconds := window.Seconds()
	var watts float64
	for _, term := range cf.terms {
		watts += term.coeff * (float64(deltas[term.event]) / seconds)
	}
	if watts < 0 {
		watts = 0
	}
	return watts, nil
}

// Compiled is an immutable, pre-resolved form of a CPUPowerModel built for
// the estimation hot path. The original model parses every term's event name
// on every evaluation; a Compiled model resolves them once. A Compiled model
// is safe for concurrent use.
type Compiled struct {
	idleWatts float64
	freqs     []CompiledFrequency // ascending by frequency
}

// Compile validates the model and pre-resolves every term.
func (m *CPUPowerModel) Compile() (*Compiled, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{idleWatts: m.IdleWatts, freqs: make([]CompiledFrequency, 0, len(m.Frequencies))}
	for _, fm := range m.Frequencies {
		cf := CompiledFrequency{freqMHz: fm.FrequencyMHz, terms: make([]compiledTerm, 0, len(fm.Terms))}
		for _, term := range fm.Terms {
			e, err := hpc.ParseEvent(term.Event)
			if err != nil {
				return nil, fmt.Errorf("model: frequency %d: %w", fm.FrequencyMHz, err)
			}
			cf.terms = append(cf.terms, compiledTerm{event: e, coeff: term.WattsPerEventPerSecond})
		}
		c.freqs = append(c.freqs, cf)
	}
	sort.Slice(c.freqs, func(i, j int) bool { return c.freqs[i].freqMHz < c.freqs[j].freqMHz })
	return c, nil
}

// IdleWatts returns the idle constant of the compiled model.
func (c *Compiled) IdleWatts() float64 { return c.idleWatts }

// ForFrequency returns the compiled formula nearest to freqMHz (same
// fallback semantics as ModelForFrequency). Rounds resolve the frequency once
// per batch and reuse the returned formula for every target in it.
func (c *Compiled) ForFrequency(freqMHz int) (*CompiledFrequency, error) {
	if len(c.freqs) == 0 {
		return nil, ErrNoModels
	}
	best := &c.freqs[0]
	bestDist := math.Abs(float64(best.freqMHz - freqMHz))
	for i := 1; i < len(c.freqs); i++ {
		if d := math.Abs(float64(c.freqs[i].freqMHz - freqMHz)); d < bestDist {
			best, bestDist = &c.freqs[i], d
		}
	}
	return best, nil
}

// EstimateActiveWatts estimates the active power of the activity described by
// the dense counter vector observed over window at freqMHz.
func (c *Compiled) EstimateActiveWatts(freqMHz int, deltas *hpc.CountsVec, window time.Duration) (float64, error) {
	cf, err := c.ForFrequency(freqMHz)
	if err != nil {
		return 0, err
	}
	return cf.EstimateActiveWatts(deltas, window)
}

// Equation renders the whole model in the paper's two-level style.
func (m *CPUPowerModel) Equation() string {
	var b strings.Builder
	if len(m.Frequencies) == 0 {
		fmt.Fprintf(&b, "Power = %.2f", m.IdleWatts)
		return b.String()
	}
	lo := float64(m.Frequencies[0].FrequencyMHz) / 1000
	hi := float64(m.Frequencies[len(m.Frequencies)-1].FrequencyMHz) / 1000
	fmt.Fprintf(&b, "Power = %.2f + sum(Power_f, f = %.2f .. %.2f GHz)\n", m.IdleWatts, lo, hi)
	for _, fm := range m.Frequencies {
		b.WriteString("  ")
		b.WriteString(fm.Equation())
		b.WriteString("\n")
	}
	return b.String()
}

// MarshalJSONIndent serialises the model for storage.
func (m *CPUPowerModel) MarshalJSONIndent() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(m, "", "  ")
}

// FromJSON parses and validates a serialised model.
func FromJSON(data []byte) (*CPUPowerModel, error) {
	var m CPUPowerModel
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("model: parse: %w", err)
	}
	m.sortFrequencies()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// SaveFile writes the model to path as JSON.
func (m *CPUPowerModel) SaveFile(path string) error {
	data, err := m.MarshalJSONIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("model: save %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a model previously written by SaveFile.
func LoadFile(path string) (*CPUPowerModel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("model: load %s: %w", path, err)
	}
	return FromJSON(data)
}

// PaperReferenceModel returns the exact model published in the paper for the
// Intel Core i3-2120 at its maximum frequency. It is used by tests and by the
// experiments to compare learned coefficients against the published ones.
func PaperReferenceModel() *CPUPowerModel {
	return &CPUPowerModel{
		SpecName:        "Intel i3 2120",
		IdleWatts:       31.48,
		SelectionMethod: "paper",
		Frequencies: []FrequencyModel{
			{
				FrequencyMHz: 3300,
				Terms: []Term{
					{Event: hpc.Instructions.String(), WattsPerEventPerSecond: 2.22e-9},
					{Event: hpc.CacheReferences.String(), WattsPerEventPerSecond: 2.48e-8},
					{Event: hpc.CacheMisses.String(), WattsPerEventPerSecond: 1.87e-7},
				},
			},
		},
	}
}
