package cpu

import (
	"fmt"
	"sync"
)

// Governor selects the DVFS frequency-scaling policy, mirroring the Linux
// cpufreq governors.
type Governor int

// Supported governors.
const (
	// GovernorPerformance pins every core at the maximum frequency.
	GovernorPerformance Governor = iota + 1
	// GovernorPowersave pins every core at the minimum frequency.
	GovernorPowersave
	// GovernorOndemand raises the frequency with utilisation and lowers it
	// when cores are under-used — the behaviour the paper's motivation
	// section describes ("reduce the frequency of under-used cores").
	GovernorOndemand
	// GovernorUserspace lets the calibration pipeline pin an explicit
	// frequency, which is how the learning process sweeps the ladder.
	GovernorUserspace
)

// String implements fmt.Stringer.
func (g Governor) String() string {
	switch g {
	case GovernorPerformance:
		return "performance"
	case GovernorPowersave:
		return "powersave"
	case GovernorOndemand:
		return "ondemand"
	case GovernorUserspace:
		return "userspace"
	default:
		return fmt.Sprintf("Governor(%d)", int(g))
	}
}

// ParseGovernor resolves a cpufreq-style governor name.
func ParseGovernor(name string) (Governor, error) {
	switch name {
	case "performance":
		return GovernorPerformance, nil
	case "powersave":
		return GovernorPowersave, nil
	case "ondemand":
		return GovernorOndemand, nil
	case "userspace":
		return GovernorUserspace, nil
	default:
		return 0, fmt.Errorf("cpu: unknown governor %q", name)
	}
}

// ondemand thresholds (fractions of utilisation) mirroring the Linux
// governor's up/down thresholds.
const (
	ondemandUpThreshold   = 0.80
	ondemandDownThreshold = 0.30
)

// DVFS manages the per-core frequency of a processor according to the active
// governor. Frequencies are per physical core (hyperthreads share their
// core's clock), as on real SpeedStep hardware.
type DVFS struct {
	mu        sync.RWMutex
	spec      Spec
	ladder    []int
	governor  Governor
	coreFreqs []int // index: physical core, value: frequency MHz
}

// NewDVFS creates the frequency manager for spec with the given governor.
func NewDVFS(spec Spec, governor Governor) (*DVFS, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if governor < GovernorPerformance || governor > GovernorUserspace {
		return nil, fmt.Errorf("cpu: invalid governor %v", governor)
	}
	d := &DVFS{
		spec:      spec,
		ladder:    spec.FrequenciesMHz(),
		governor:  governor,
		coreFreqs: make([]int, spec.PhysicalCores()),
	}
	initial := spec.BaseFrequencyMHz
	if governor == GovernorPowersave {
		initial = d.ladder[0]
	}
	if governor == GovernorPerformance {
		initial = spec.MaxFrequencyMHz()
	}
	for i := range d.coreFreqs {
		d.coreFreqs[i] = initial
	}
	return d, nil
}

// Governor returns the active governor.
func (d *DVFS) Governor() Governor {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.governor
}

// SetGovernor switches the scaling policy.
func (d *DVFS) SetGovernor(g Governor) error {
	if g < GovernorPerformance || g > GovernorUserspace {
		return fmt.Errorf("cpu: invalid governor %v", g)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.governor = g
	switch g {
	case GovernorPerformance:
		for i := range d.coreFreqs {
			d.coreFreqs[i] = d.spec.MaxFrequencyMHz()
		}
	case GovernorPowersave:
		for i := range d.coreFreqs {
			d.coreFreqs[i] = d.ladder[0]
		}
	case GovernorOndemand, GovernorUserspace:
		// Keep current frequencies; they will adjust on the next tick or
		// explicit SetFrequency call.
	}
	return nil
}

// Ladder returns the available frequencies in ascending order.
func (d *DVFS) Ladder() []int {
	return append([]int(nil), d.ladder...)
}

// FrequencyOfCore returns the current frequency of a physical core.
func (d *DVFS) FrequencyOfCore(core int) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if core < 0 || core >= len(d.coreFreqs) {
		return 0, fmt.Errorf("cpu: unknown core %d", core)
	}
	return d.coreFreqs[core], nil
}

// SetFrequency pins a core to an explicit ladder frequency. Only valid under
// the userspace governor (mirroring cpufreq's scaling_setspeed).
func (d *DVFS) SetFrequency(core, freqMHz int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.governor != GovernorUserspace {
		return fmt.Errorf("cpu: SetFrequency requires the userspace governor, current is %v", d.governor)
	}
	if core < 0 || core >= len(d.coreFreqs) {
		return fmt.Errorf("cpu: unknown core %d", core)
	}
	for _, f := range d.ladder {
		if f == freqMHz {
			d.coreFreqs[core] = freqMHz
			return nil
		}
	}
	return fmt.Errorf("cpu: frequency %d MHz is not on the ladder %v", freqMHz, d.ladder)
}

// SetAllFrequencies pins every core to the same ladder frequency (userspace
// governor only). This is what the calibration sweep uses.
func (d *DVFS) SetAllFrequencies(freqMHz int) error {
	for core := 0; core < len(d.coreFreqs); core++ {
		if err := d.SetFrequency(core, freqMHz); err != nil {
			return err
		}
	}
	return nil
}

// Adjust updates a core's frequency from its observed utilisation (a value
// in [0, 1]) according to the active governor. It returns the frequency in
// effect after the adjustment.
func (d *DVFS) Adjust(core int, utilization float64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if core < 0 || core >= len(d.coreFreqs) {
		return 0, fmt.Errorf("cpu: unknown core %d", core)
	}
	switch d.governor {
	case GovernorPerformance:
		d.coreFreqs[core] = d.spec.MaxFrequencyMHz()
	case GovernorPowersave:
		d.coreFreqs[core] = d.ladder[0]
	case GovernorUserspace:
		// Pinned: nothing to do.
	case GovernorOndemand:
		current := d.coreFreqs[core]
		idx := d.ladderIndex(current)
		switch {
		case utilization >= ondemandUpThreshold:
			// Jump straight to the top like the Linux ondemand governor.
			idx = len(d.ladder) - 1
		case utilization <= ondemandDownThreshold && idx > 0:
			idx--
		}
		d.coreFreqs[core] = d.ladder[idx]
	}
	return d.coreFreqs[core], nil
}

func (d *DVFS) ladderIndex(freq int) int {
	for i, f := range d.ladder {
		if f == freq {
			return i
		}
	}
	return 0
}
