package cpu

import "testing"

func TestNewTopologyI3(t *testing.T) {
	topo, err := NewTopology(IntelCorei3_2120())
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumLogical() != 4 {
		t.Fatalf("logical cpus = %d, want 4", topo.NumLogical())
	}
	if topo.NumCores() != 2 {
		t.Fatalf("cores = %d, want 2", topo.NumCores())
	}
	// Linux-style numbering: cpu0 and cpu2 share core 0.
	c0, err := topo.CoreOf(0)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := topo.CoreOf(2)
	if err != nil {
		t.Fatal(err)
	}
	if c0 != c2 {
		t.Fatalf("cpu0 on core %d, cpu2 on core %d; want same core", c0, c2)
	}
	sib, err := topo.SiblingsOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sib) != 1 || sib[0] != 2 {
		t.Fatalf("SiblingsOf(0) = %v, want [2]", sib)
	}
}

func TestNewTopologyInvalidSpec(t *testing.T) {
	bad := IntelCorei3_2120()
	bad.Sockets = 0
	if _, err := NewTopology(bad); err == nil {
		t.Fatal("invalid spec should be rejected")
	}
}

func TestTopologyNoSMT(t *testing.T) {
	topo, err := NewTopology(IntelCore2DuoE6600())
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumLogical() != 2 {
		t.Fatalf("logical cpus = %d, want 2", topo.NumLogical())
	}
	sib, err := topo.SiblingsOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sib) != 0 {
		t.Fatalf("SiblingsOf(0) = %v, want none without SMT", sib)
	}
}

func TestTopologyErrors(t *testing.T) {
	topo, _ := NewTopology(IntelCorei3_2120())
	if _, err := topo.CoreOf(99); err == nil {
		t.Fatal("CoreOf unknown cpu should fail")
	}
	if _, err := topo.SiblingsOf(99); err == nil {
		t.Fatal("SiblingsOf unknown cpu should fail")
	}
	if _, err := topo.ThreadsOfCore(99); err == nil {
		t.Fatal("ThreadsOfCore unknown core should fail")
	}
}

func TestTopologyThreadsOfCore(t *testing.T) {
	topo, _ := NewTopology(IntelCorei3_2120())
	threads, err := topo.ThreadsOfCore(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(threads) != 2 {
		t.Fatalf("ThreadsOfCore(1) = %v, want 2 threads", threads)
	}
	for _, id := range threads {
		core, err := topo.CoreOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if core != 1 {
			t.Fatalf("thread %d maps to core %d, want 1", id, core)
		}
	}
}

func TestTopologyLogicalCPUsCopy(t *testing.T) {
	topo, _ := NewTopology(IntelCorei3_2120())
	cpus := topo.LogicalCPUs()
	cpus[0].ID = 999
	if topo.LogicalCPUs()[0].ID == 999 {
		t.Fatal("LogicalCPUs must return a copy")
	}
}

func TestTopologyXeonLayout(t *testing.T) {
	topo, err := NewTopology(IntelXeonE5_2650())
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumLogical() != 16 || topo.NumCores() != 8 {
		t.Fatalf("xeon topology %d logical / %d cores, want 16 / 8", topo.NumLogical(), topo.NumCores())
	}
	// All logical cpus must map to a valid core.
	for _, lc := range topo.LogicalCPUs() {
		if lc.CoreID < 0 || lc.CoreID >= 8 {
			t.Fatalf("logical cpu %d has invalid core %d", lc.ID, lc.CoreID)
		}
	}
}
