package cpu

import (
	"fmt"
)

// LogicalCPU identifies one schedulable hardware thread.
type LogicalCPU struct {
	// ID is the OS-visible logical CPU index.
	ID int `json:"id"`
	// SocketID is the package the thread belongs to.
	SocketID int `json:"socketId"`
	// CoreID is the physical core within the socket.
	CoreID int `json:"coreId"`
	// ThreadID is the hyperthread slot within the core (0 or 1 on the
	// paper's i3-2120).
	ThreadID int `json:"threadId"`
}

// Topology enumerates the logical CPUs of a spec, mirroring the layout the
// Linux kernel would expose under /sys/devices/system/cpu.
type Topology struct {
	spec     Spec
	logical  []LogicalCPU
	byCore   map[int][]int // physical core index -> logical cpu ids
	coreOf   []int         // logical cpu id -> physical core index (ids are dense)
	socketOf map[int]int   // logical cpu id -> socket index
}

// NewTopology builds the topology for spec. Logical CPUs are numbered the
// way Linux numbers them: first thread of every core, then the second thread
// of every core (so cpu0/cpu2 share a core on a 2-core/4-thread part).
func NewTopology(spec Spec) (*Topology, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{
		spec:     spec,
		byCore:   make(map[int][]int),
		coreOf:   make([]int, spec.LogicalCPUs()),
		socketOf: make(map[int]int),
	}
	cores := spec.PhysicalCores()
	id := 0
	for thread := 0; thread < spec.ThreadsPerCor; thread++ {
		for core := 0; core < cores; core++ {
			socket := core / spec.CoresPerCPU
			lcpu := LogicalCPU{ID: id, SocketID: socket, CoreID: core, ThreadID: thread}
			t.logical = append(t.logical, lcpu)
			t.byCore[core] = append(t.byCore[core], id)
			t.coreOf[id] = core
			t.socketOf[id] = socket
			id++
		}
	}
	return t, nil
}

// Spec returns the spec the topology was built from.
func (t *Topology) Spec() Spec { return t.spec }

// LogicalCPUs returns every logical CPU in id order.
func (t *Topology) LogicalCPUs() []LogicalCPU {
	return append([]LogicalCPU(nil), t.logical...)
}

// NumLogical returns the number of logical CPUs.
func (t *Topology) NumLogical() int { return len(t.logical) }

// NumCores returns the number of physical cores.
func (t *Topology) NumCores() int { return t.spec.PhysicalCores() }

// CoreOf returns the physical core a logical CPU belongs to.
func (t *Topology) CoreOf(logicalID int) (int, error) {
	if logicalID < 0 || logicalID >= len(t.coreOf) {
		return 0, fmt.Errorf("cpu: unknown logical cpu %d", logicalID)
	}
	return t.coreOf[logicalID], nil
}

// CoreMap returns the dense logical-cpu -> physical-core mapping. The
// returned slice is the topology's own immutable storage: callers must not
// mutate it. Schedulers use it on the per-tick hot path to avoid per-lookup
// error handling and per-call copies.
func (t *Topology) CoreMap() []int { return t.coreOf }

// SiblingsOf returns the logical CPUs sharing a physical core with
// logicalID, excluding logicalID itself.
func (t *Topology) SiblingsOf(logicalID int) ([]int, error) {
	core, err := t.CoreOf(logicalID)
	if err != nil {
		return nil, err
	}
	var siblings []int
	for _, id := range t.byCore[core] {
		if id != logicalID {
			siblings = append(siblings, id)
		}
	}
	return siblings, nil
}

// ThreadsOfCore returns the logical CPUs of a physical core.
func (t *Topology) ThreadsOfCore(core int) ([]int, error) {
	ids, ok := t.byCore[core]
	if !ok {
		return nil, fmt.Errorf("cpu: unknown core %d", core)
	}
	return append([]int(nil), ids...), nil
}
