package cpu

import (
	"fmt"
	"time"
)

// CState is a processor idle state. Deeper states gate more of the core and
// therefore leak less power, at the price of a longer exit latency — exactly
// the trade-off the paper's motivation section describes.
type CState int

// Idle states, shallowest to deepest.
const (
	// C0 is the active state (the core is executing instructions).
	C0 CState = iota
	// C1 is the halt state entered on short idle periods.
	C1
	// C3 gates the core clocks.
	C3
	// C6 power-gates the core entirely.
	C6
)

// String implements fmt.Stringer.
func (c CState) String() string {
	switch c {
	case C0:
		return "C0"
	case C1:
		return "C1"
	case C3:
		return "C3"
	case C6:
		return "C6"
	default:
		return fmt.Sprintf("CState(%d)", int(c))
	}
}

// CStateInfo describes the residency behaviour of an idle state.
type CStateInfo struct {
	State CState
	// PowerFraction is the fraction of the core's idle (C0, clock-running)
	// power still drawn in this state.
	PowerFraction float64
	// ExitLatency is the time needed to resume execution from this state.
	ExitLatency time.Duration
	// TargetResidency is the minimum idle period for which entering the
	// state is worthwhile.
	TargetResidency time.Duration
}

// CStateTable returns the idle-state table used by the simulator. When the
// spec has no C-state support only C0 and C1 (halt) are available and C1
// saves very little power.
func CStateTable(spec Spec) []CStateInfo {
	if !spec.HasCStates {
		return []CStateInfo{
			{State: C0, PowerFraction: 1, ExitLatency: 0, TargetResidency: 0},
			{State: C1, PowerFraction: 0.9, ExitLatency: 2 * time.Microsecond, TargetResidency: 4 * time.Microsecond},
		}
	}
	return []CStateInfo{
		{State: C0, PowerFraction: 1, ExitLatency: 0, TargetResidency: 0},
		{State: C1, PowerFraction: 0.55, ExitLatency: 2 * time.Microsecond, TargetResidency: 4 * time.Microsecond},
		{State: C3, PowerFraction: 0.25, ExitLatency: 80 * time.Microsecond, TargetResidency: 200 * time.Microsecond},
		{State: C6, PowerFraction: 0.05, ExitLatency: 800 * time.Microsecond, TargetResidency: 2 * time.Millisecond},
	}
}

// DeepestUsableCState picks the deepest state whose target residency fits an
// expected idle period, which is how the menu idle governor behaves.
func DeepestUsableCState(spec Spec, expectedIdle time.Duration) CStateInfo {
	table := CStateTable(spec)
	best := table[0]
	for _, info := range table {
		if expectedIdle >= info.TargetResidency {
			best = info
		}
	}
	return best
}

// IdlePowerFraction returns the fraction of active idle power drawn by a core
// that is idle for expectedIdle, accounting for the deepest usable C-state.
// Cores on specs without C-states barely save anything when idle.
func IdlePowerFraction(spec Spec, expectedIdle time.Duration) float64 {
	return DeepestUsableCState(spec, expectedIdle).PowerFraction
}
