// Package cpu models the processor the rest of the simulation runs on:
// static specifications (the paper's Table 1), core/thread topology,
// SpeedStep-style DVFS frequency ladders and governors, HyperThreading and
// C-state idle behaviour.
//
// The package is purely descriptive and mechanical — it knows nothing about
// power. Power is derived by the machine engine (internal/machine) so that
// the calibration pipeline cannot "cheat" by inspecting the CPU model.
package cpu

import (
	"errors"
	"fmt"
	"sort"
)

// Feature flags as rendered in the paper's Table 1.
const (
	featureYes = "yes"
	featureNo  = "no"
)

// Spec describes a processor family, mirroring the specification rows of the
// paper's Table 1.
type Spec struct {
	Vendor        string `json:"vendor"`
	Family        string `json:"family"`
	Model         string `json:"model"`
	Sockets       int    `json:"sockets"`
	CoresPerCPU   int    `json:"coresPerCpu"`
	ThreadsPerCor int    `json:"threadsPerCore"`

	// MinFrequencyMHz and BaseFrequencyMHz bound the SpeedStep ladder.
	MinFrequencyMHz  int `json:"minFrequencyMHz"`
	BaseFrequencyMHz int `json:"baseFrequencyMHz"`
	// FrequencyStepMHz is the DVFS ladder granularity.
	FrequencyStepMHz int `json:"frequencyStepMHz"`
	// TurboFrequenciesMHz lists opportunistic frequencies above base (empty
	// when TurboBoost is absent, as on the paper's i3-2120).
	TurboFrequenciesMHz []int `json:"turboFrequenciesMHz,omitempty"`

	TDPWatts float64 `json:"tdpWatts"`

	HasDVFS    bool `json:"hasDvfs"`    // SpeedStep
	HasSMT     bool `json:"hasSmt"`     // HyperThreading
	HasTurbo   bool `json:"hasTurbo"`   // TurboBoost
	HasCStates bool `json:"hasCstates"` // idle states
	HasRAPL    bool `json:"hasRapl"`    // Running Average Power Limit MSRs

	L1DataKBPerCore int `json:"l1DataKbPerCore"`
	L2KBPerCore     int `json:"l2KbPerCore"`
	L3KB            int `json:"l3Kb"`
}

// Validate checks the structural consistency of the spec.
func (s Spec) Validate() error {
	switch {
	case s.Model == "":
		return errors.New("cpu: spec has no model name")
	case s.Sockets <= 0:
		return fmt.Errorf("cpu: spec %s: sockets must be positive", s.Model)
	case s.CoresPerCPU <= 0:
		return fmt.Errorf("cpu: spec %s: cores must be positive", s.Model)
	case s.ThreadsPerCor <= 0:
		return fmt.Errorf("cpu: spec %s: threads per core must be positive", s.Model)
	case s.ThreadsPerCor > 1 && !s.HasSMT:
		return fmt.Errorf("cpu: spec %s: multiple threads per core require SMT", s.Model)
	case s.BaseFrequencyMHz <= 0:
		return fmt.Errorf("cpu: spec %s: base frequency must be positive", s.Model)
	case s.MinFrequencyMHz <= 0 || s.MinFrequencyMHz > s.BaseFrequencyMHz:
		return fmt.Errorf("cpu: spec %s: min frequency %d out of range", s.Model, s.MinFrequencyMHz)
	case s.HasDVFS && s.FrequencyStepMHz <= 0:
		return fmt.Errorf("cpu: spec %s: DVFS requires a positive frequency step", s.Model)
	case s.TDPWatts <= 0:
		return fmt.Errorf("cpu: spec %s: TDP must be positive", s.Model)
	case s.HasTurbo && len(s.TurboFrequenciesMHz) == 0:
		return fmt.Errorf("cpu: spec %s: TurboBoost requires turbo frequencies", s.Model)
	case !s.HasTurbo && len(s.TurboFrequenciesMHz) > 0:
		return fmt.Errorf("cpu: spec %s: turbo frequencies present but TurboBoost disabled", s.Model)
	}
	for _, f := range s.TurboFrequenciesMHz {
		if f <= s.BaseFrequencyMHz {
			return fmt.Errorf("cpu: spec %s: turbo frequency %d MHz not above base", s.Model, f)
		}
	}
	return nil
}

// PhysicalCores returns the total number of physical cores.
func (s Spec) PhysicalCores() int { return s.Sockets * s.CoresPerCPU }

// LogicalCPUs returns the number of schedulable hardware threads.
func (s Spec) LogicalCPUs() int { return s.PhysicalCores() * s.ThreadsPerCor }

// FrequenciesMHz returns the full DVFS ladder in ascending order, including
// turbo frequencies when present. Without DVFS the ladder collapses to the
// base frequency only.
func (s Spec) FrequenciesMHz() []int {
	if !s.HasDVFS {
		ladder := []int{s.BaseFrequencyMHz}
		ladder = append(ladder, s.TurboFrequenciesMHz...)
		sort.Ints(ladder)
		return ladder
	}
	var ladder []int
	for f := s.MinFrequencyMHz; f < s.BaseFrequencyMHz; f += s.FrequencyStepMHz {
		ladder = append(ladder, f)
	}
	ladder = append(ladder, s.BaseFrequencyMHz)
	ladder = append(ladder, s.TurboFrequenciesMHz...)
	sort.Ints(ladder)
	// Deduplicate, the base frequency may coincide with a ladder step.
	out := ladder[:0]
	for i, f := range ladder {
		if i == 0 || f != ladder[i-1] {
			out = append(out, f)
		}
	}
	return out
}

// MaxFrequencyMHz returns the highest reachable frequency (turbo included).
func (s Spec) MaxFrequencyMHz() int {
	freqs := s.FrequenciesMHz()
	return freqs[len(freqs)-1]
}

// String identifies the spec.
func (s Spec) String() string {
	return fmt.Sprintf("%s %s %s (%d cores / %d threads, %.2f GHz, TDP %gW)",
		s.Vendor, s.Family, s.Model, s.PhysicalCores(), s.LogicalCPUs(),
		float64(s.BaseFrequencyMHz)/1000, s.TDPWatts)
}

// SpecTableRow is one "attribute / value" row of the paper's Table 1.
type SpecTableRow struct {
	Attribute string `json:"attribute"`
	Value     string `json:"value"`
}

func yesNo(b bool) string {
	if b {
		return featureYes
	}
	return featureNo
}

// TableRows renders the spec in the exact shape of the paper's Table 1
// ("Intel Core i3 2120 specifications").
func (s Spec) TableRows() []SpecTableRow {
	return []SpecTableRow{
		{Attribute: "Vendor", Value: s.Vendor},
		{Attribute: "Processor", Value: s.Family},
		{Attribute: "Model", Value: s.Model},
		{Attribute: "Design", Value: fmt.Sprintf("%d threads", s.LogicalCPUs())},
		{Attribute: "Frequency", Value: fmt.Sprintf("%.2f GHz", float64(s.BaseFrequencyMHz)/1000)},
		{Attribute: "TDP", Value: fmt.Sprintf("%g W", s.TDPWatts)},
		{Attribute: "SpeedStep (DVFS)", Value: yesNo(s.HasDVFS)},
		{Attribute: "HyperThreading (SMT)", Value: yesNo(s.HasSMT)},
		{Attribute: "TurboBoost (Overclocking)", Value: yesNo(s.HasTurbo)},
		{Attribute: "C-states (Idle states)", Value: yesNo(s.HasCStates)},
		{Attribute: "L1 cache", Value: fmt.Sprintf("%d KB / core", s.L1DataKBPerCore)},
		{Attribute: "L2 cache", Value: fmt.Sprintf("%d KB / core", s.L2KBPerCore)},
		{Attribute: "L3 cache", Value: fmt.Sprintf("%d MB", s.L3KB/1024)},
	}
}

// IntelCorei3_2120 is the processor used by the paper's preliminary
// experiment (Table 1): 2 cores / 4 threads at 3.30 GHz, SpeedStep and
// HyperThreading and C-states but no TurboBoost, 65 W TDP, Sandy Bridge
// generation (hence RAPL-capable).
func IntelCorei3_2120() Spec {
	return Spec{
		Vendor:           "Intel",
		Family:           "i3",
		Model:            "2120",
		Sockets:          1,
		CoresPerCPU:      2,
		ThreadsPerCor:    2,
		MinFrequencyMHz:  1600,
		BaseFrequencyMHz: 3300,
		FrequencyStepMHz: 200,
		TDPWatts:         65,
		HasDVFS:          true,
		HasSMT:           true,
		HasTurbo:         false,
		HasCStates:       true,
		HasRAPL:          true,
		L1DataKBPerCore:  64,
		L2KBPerCore:      256,
		L3KB:             3 * 1024,
	}
}

// IntelCore2DuoE6600 approximates the "simple architecture" used by Bertran
// et al. for their comparator results: two cores, no HyperThreading, no
// TurboBoost, pre-RAPL generation.
func IntelCore2DuoE6600() Spec {
	return Spec{
		Vendor:           "Intel",
		Family:           "Core 2 Duo",
		Model:            "E6600",
		Sockets:          1,
		CoresPerCPU:      2,
		ThreadsPerCor:    1,
		MinFrequencyMHz:  1600,
		BaseFrequencyMHz: 2400,
		FrequencyStepMHz: 400,
		TDPWatts:         65,
		HasDVFS:          true,
		HasSMT:           false,
		HasTurbo:         false,
		HasCStates:       true,
		HasRAPL:          false,
		L1DataKBPerCore:  32,
		L2KBPerCore:      2048,
		L3KB:             0,
	}
}

// IntelXeonE5_2650 is a larger server-class part used to exercise the
// "any modern architecture" claim: 8 cores / 16 threads, TurboBoost, RAPL.
func IntelXeonE5_2650() Spec {
	return Spec{
		Vendor:              "Intel",
		Family:              "Xeon E5",
		Model:               "2650",
		Sockets:             1,
		CoresPerCPU:         8,
		ThreadsPerCor:       2,
		MinFrequencyMHz:     1200,
		BaseFrequencyMHz:    2000,
		FrequencyStepMHz:    200,
		TurboFrequenciesMHz: []int{2400, 2800},
		TDPWatts:            95,
		HasDVFS:             true,
		HasSMT:              true,
		HasTurbo:            true,
		HasCStates:          true,
		HasRAPL:             true,
		L1DataKBPerCore:     32,
		L2KBPerCore:         256,
		L3KB:                20 * 1024,
	}
}

// AMDOpteron6172 is a non-Intel part (no SMT, no RAPL) exercising the
// architecture-independence claim of the paper.
func AMDOpteron6172() Spec {
	return Spec{
		Vendor:           "AMD",
		Family:           "Opteron",
		Model:            "6172",
		Sockets:          1,
		CoresPerCPU:      12,
		ThreadsPerCor:    1,
		MinFrequencyMHz:  800,
		BaseFrequencyMHz: 2100,
		FrequencyStepMHz: 300,
		TDPWatts:         80,
		HasDVFS:          true,
		HasSMT:           false,
		HasTurbo:         false,
		HasCStates:       true,
		HasRAPL:          false,
		L1DataKBPerCore:  64,
		L2KBPerCore:      512,
		L3KB:             12 * 1024,
	}
}

// Catalog returns every predefined spec keyed by a short identifier.
func Catalog() map[string]Spec {
	return map[string]Spec{
		"i3-2120":        IntelCorei3_2120(),
		"core2duo-e6600": IntelCore2DuoE6600(),
		"xeon-e5-2650":   IntelXeonE5_2650(),
		"opteron-6172":   AMDOpteron6172(),
	}
}

// LookupSpec resolves a catalog identifier.
func LookupSpec(name string) (Spec, error) {
	spec, ok := Catalog()[name]
	if !ok {
		return Spec{}, fmt.Errorf("cpu: unknown spec %q", name)
	}
	return spec, nil
}
