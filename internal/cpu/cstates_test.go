package cpu

import (
	"testing"
	"time"
)

func TestCStateString(t *testing.T) {
	tests := []struct {
		state CState
		want  string
	}{
		{C0, "C0"}, {C1, "C1"}, {C3, "C3"}, {C6, "C6"},
	}
	for _, tt := range tests {
		if got := tt.state.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", tt.state, got, tt.want)
		}
	}
	if CState(42).String() != "CState(42)" {
		t.Error("unknown state should render as CState(N)")
	}
}

func TestCStateTableWithSupport(t *testing.T) {
	table := CStateTable(IntelCorei3_2120())
	if len(table) != 4 {
		t.Fatalf("table has %d states, want 4", len(table))
	}
	// Deeper states must draw less power and exit more slowly.
	for i := 1; i < len(table); i++ {
		if table[i].PowerFraction >= table[i-1].PowerFraction {
			t.Fatalf("state %v does not reduce power over %v", table[i].State, table[i-1].State)
		}
		if table[i].ExitLatency <= table[i-1].ExitLatency {
			t.Fatalf("state %v does not increase exit latency over %v", table[i].State, table[i-1].State)
		}
	}
	if table[0].State != C0 || table[0].PowerFraction != 1 {
		t.Fatal("first state must be C0 at full power")
	}
}

func TestCStateTableWithoutSupport(t *testing.T) {
	spec := IntelCorei3_2120()
	spec.HasCStates = false
	table := CStateTable(spec)
	if len(table) != 2 {
		t.Fatalf("no-C-state table has %d states, want 2", len(table))
	}
	if table[1].PowerFraction < 0.8 {
		t.Fatalf("halt-only idle saves too much power: %v", table[1].PowerFraction)
	}
}

func TestDeepestUsableCState(t *testing.T) {
	spec := IntelCorei3_2120()
	tests := []struct {
		idle time.Duration
		want CState
	}{
		{idle: 0, want: C0},
		{idle: 5 * time.Microsecond, want: C1},
		{idle: 500 * time.Microsecond, want: C3},
		{idle: 10 * time.Millisecond, want: C6},
	}
	for _, tt := range tests {
		if got := DeepestUsableCState(spec, tt.idle).State; got != tt.want {
			t.Errorf("DeepestUsableCState(%v) = %v, want %v", tt.idle, got, tt.want)
		}
	}
}

func TestIdlePowerFraction(t *testing.T) {
	spec := IntelCorei3_2120()
	long := IdlePowerFraction(spec, 50*time.Millisecond)
	short := IdlePowerFraction(spec, 3*time.Microsecond)
	if long >= short {
		t.Fatalf("long idle (%v) should save more power than short idle (%v)", long, short)
	}
	noCStates := spec
	noCStates.HasCStates = false
	if IdlePowerFraction(noCStates, 50*time.Millisecond) < 0.8 {
		t.Fatal("spec without C-states should not save deep-idle power")
	}
}
