package cpu

import (
	"strings"
	"testing"
)

func TestPredefinedSpecsAreValid(t *testing.T) {
	for name, spec := range Catalog() {
		t.Run(name, func(t *testing.T) {
			if err := spec.Validate(); err != nil {
				t.Fatalf("spec %s invalid: %v", name, err)
			}
		})
	}
}

func TestSpecValidateRejectsBadSpecs(t *testing.T) {
	base := IntelCorei3_2120()
	tests := []struct {
		name   string
		mutate func(*Spec)
	}{
		{name: "no model", mutate: func(s *Spec) { s.Model = "" }},
		{name: "zero sockets", mutate: func(s *Spec) { s.Sockets = 0 }},
		{name: "zero cores", mutate: func(s *Spec) { s.CoresPerCPU = 0 }},
		{name: "zero threads", mutate: func(s *Spec) { s.ThreadsPerCor = 0 }},
		{name: "smt flag mismatch", mutate: func(s *Spec) { s.HasSMT = false }},
		{name: "zero base freq", mutate: func(s *Spec) { s.BaseFrequencyMHz = 0 }},
		{name: "min above base", mutate: func(s *Spec) { s.MinFrequencyMHz = 4000 }},
		{name: "dvfs without step", mutate: func(s *Spec) { s.FrequencyStepMHz = 0 }},
		{name: "zero tdp", mutate: func(s *Spec) { s.TDPWatts = 0 }},
		{name: "turbo without freqs", mutate: func(s *Spec) { s.HasTurbo = true }},
		{name: "turbo freqs without flag", mutate: func(s *Spec) { s.TurboFrequenciesMHz = []int{3500} }},
		{name: "turbo below base", mutate: func(s *Spec) {
			s.HasTurbo = true
			s.TurboFrequenciesMHz = []int{1000}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := base
			tt.mutate(&spec)
			if err := spec.Validate(); err == nil {
				t.Fatalf("expected validation error for %q", tt.name)
			}
		})
	}
}

func TestI3SpecMatchesTable1(t *testing.T) {
	spec := IntelCorei3_2120()
	if spec.LogicalCPUs() != 4 {
		t.Fatalf("logical cpus = %d, want 4", spec.LogicalCPUs())
	}
	if spec.PhysicalCores() != 2 {
		t.Fatalf("cores = %d, want 2", spec.PhysicalCores())
	}
	if spec.BaseFrequencyMHz != 3300 {
		t.Fatalf("base frequency = %d, want 3300", spec.BaseFrequencyMHz)
	}
	if spec.TDPWatts != 65 {
		t.Fatalf("TDP = %v, want 65", spec.TDPWatts)
	}
	if !spec.HasDVFS || !spec.HasSMT || !spec.HasCStates {
		t.Fatal("i3-2120 must have SpeedStep, HyperThreading and C-states")
	}
	if spec.HasTurbo {
		t.Fatal("i3-2120 must not have TurboBoost")
	}
	if spec.L3KB != 3*1024 {
		t.Fatalf("L3 = %d KB, want 3072", spec.L3KB)
	}
}

func TestTableRowsMatchPaperShape(t *testing.T) {
	rows := IntelCorei3_2120().TableRows()
	if len(rows) != 13 {
		t.Fatalf("Table 1 has %d rows, want 13", len(rows))
	}
	byAttr := make(map[string]string, len(rows))
	for _, r := range rows {
		byAttr[r.Attribute] = r.Value
	}
	checks := map[string]string{
		"Vendor":                    "Intel",
		"Processor":                 "i3",
		"Model":                     "2120",
		"Design":                    "4 threads",
		"Frequency":                 "3.30 GHz",
		"TDP":                       "65 W",
		"SpeedStep (DVFS)":          "yes",
		"HyperThreading (SMT)":      "yes",
		"TurboBoost (Overclocking)": "no",
		"C-states (Idle states)":    "yes",
		"L1 cache":                  "64 KB / core",
		"L2 cache":                  "256 KB / core",
		"L3 cache":                  "3 MB",
	}
	for attr, want := range checks {
		if got := byAttr[attr]; got != want {
			t.Errorf("Table row %q = %q, want %q", attr, got, want)
		}
	}
}

func TestFrequencyLadder(t *testing.T) {
	spec := IntelCorei3_2120()
	ladder := spec.FrequenciesMHz()
	if ladder[0] != 1600 {
		t.Fatalf("ladder starts at %d, want 1600", ladder[0])
	}
	if ladder[len(ladder)-1] != 3300 {
		t.Fatalf("ladder ends at %d, want 3300", ladder[len(ladder)-1])
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i] <= ladder[i-1] {
			t.Fatalf("ladder not strictly increasing: %v", ladder)
		}
	}
	if spec.MaxFrequencyMHz() != 3300 {
		t.Fatalf("max frequency = %d, want 3300", spec.MaxFrequencyMHz())
	}
}

func TestFrequencyLadderWithTurbo(t *testing.T) {
	spec := IntelXeonE5_2650()
	ladder := spec.FrequenciesMHz()
	if spec.MaxFrequencyMHz() != 2800 {
		t.Fatalf("max = %d, want turbo 2800", spec.MaxFrequencyMHz())
	}
	found := false
	for _, f := range ladder {
		if f == 2400 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ladder %v missing turbo step 2400", ladder)
	}
}

func TestFrequencyLadderNoDVFS(t *testing.T) {
	spec := IntelCorei3_2120()
	spec.HasDVFS = false
	spec.FrequencyStepMHz = 0
	ladder := spec.FrequenciesMHz()
	if len(ladder) != 1 || ladder[0] != spec.BaseFrequencyMHz {
		t.Fatalf("no-DVFS ladder = %v, want just base", ladder)
	}
}

func TestLookupSpec(t *testing.T) {
	spec, err := LookupSpec("i3-2120")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Model != "2120" {
		t.Fatalf("unexpected spec %v", spec.Model)
	}
	if _, err := LookupSpec("unknown-cpu"); err == nil {
		t.Fatal("unknown spec should fail")
	}
}

func TestSpecString(t *testing.T) {
	s := IntelCorei3_2120().String()
	for _, want := range []string{"Intel", "2120", "2 cores", "4 threads", "3.30 GHz", "65"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}
