package cpu

import "testing"

func TestNewDVFSInitialFrequencies(t *testing.T) {
	spec := IntelCorei3_2120()
	tests := []struct {
		name     string
		governor Governor
		want     int
	}{
		{name: "performance", governor: GovernorPerformance, want: 3300},
		{name: "powersave", governor: GovernorPowersave, want: 1600},
		{name: "ondemand", governor: GovernorOndemand, want: 3300},
		{name: "userspace", governor: GovernorUserspace, want: 3300},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, err := NewDVFS(spec, tt.governor)
			if err != nil {
				t.Fatal(err)
			}
			f, err := d.FrequencyOfCore(0)
			if err != nil {
				t.Fatal(err)
			}
			if f != tt.want {
				t.Fatalf("initial frequency = %d, want %d", f, tt.want)
			}
		})
	}
}

func TestNewDVFSValidation(t *testing.T) {
	bad := IntelCorei3_2120()
	bad.TDPWatts = 0
	if _, err := NewDVFS(bad, GovernorOndemand); err == nil {
		t.Fatal("invalid spec should fail")
	}
	if _, err := NewDVFS(IntelCorei3_2120(), Governor(99)); err == nil {
		t.Fatal("invalid governor should fail")
	}
}

func TestSetFrequencyUserspace(t *testing.T) {
	d, err := NewDVFS(IntelCorei3_2120(), GovernorUserspace)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetFrequency(0, 2000); err != nil {
		t.Fatal(err)
	}
	f, _ := d.FrequencyOfCore(0)
	if f != 2000 {
		t.Fatalf("frequency = %d, want 2000", f)
	}
	if err := d.SetFrequency(0, 1234); err == nil {
		t.Fatal("off-ladder frequency should fail")
	}
	if err := d.SetFrequency(9, 2000); err == nil {
		t.Fatal("unknown core should fail")
	}
	if err := d.SetAllFrequencies(1600); err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 2; core++ {
		f, _ := d.FrequencyOfCore(core)
		if f != 1600 {
			t.Fatalf("core %d frequency = %d, want 1600", core, f)
		}
	}
}

func TestSetFrequencyRequiresUserspace(t *testing.T) {
	d, _ := NewDVFS(IntelCorei3_2120(), GovernorOndemand)
	if err := d.SetFrequency(0, 2000); err == nil {
		t.Fatal("SetFrequency under ondemand should fail")
	}
}

func TestOndemandAdjust(t *testing.T) {
	d, _ := NewDVFS(IntelCorei3_2120(), GovernorOndemand)
	// Drive utilisation low: frequency steps down one ladder notch per call.
	f1, err := d.Adjust(0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if f1 >= 3300 {
		t.Fatalf("frequency after low utilisation = %d, want below 3300", f1)
	}
	for i := 0; i < 50; i++ {
		_, _ = d.Adjust(0, 0.0)
	}
	fMin, _ := d.FrequencyOfCore(0)
	if fMin != 1600 {
		t.Fatalf("sustained idle frequency = %d, want 1600", fMin)
	}
	// High utilisation jumps straight to max.
	fMax, _ := d.Adjust(0, 0.95)
	if fMax != 3300 {
		t.Fatalf("high utilisation frequency = %d, want 3300", fMax)
	}
}

func TestAdjustPinnedGovernors(t *testing.T) {
	perf, _ := NewDVFS(IntelCorei3_2120(), GovernorPerformance)
	if f, _ := perf.Adjust(0, 0.0); f != 3300 {
		t.Fatalf("performance governor moved off max: %d", f)
	}
	save, _ := NewDVFS(IntelCorei3_2120(), GovernorPowersave)
	if f, _ := save.Adjust(0, 1.0); f != 1600 {
		t.Fatalf("powersave governor moved off min: %d", f)
	}
	user, _ := NewDVFS(IntelCorei3_2120(), GovernorUserspace)
	_ = user.SetFrequency(0, 2400)
	if f, _ := user.Adjust(0, 1.0); f != 2400 {
		t.Fatalf("userspace governor moved off pinned frequency: %d", f)
	}
}

func TestAdjustUnknownCore(t *testing.T) {
	d, _ := NewDVFS(IntelCorei3_2120(), GovernorOndemand)
	if _, err := d.Adjust(5, 0.5); err == nil {
		t.Fatal("unknown core should fail")
	}
	if _, err := d.FrequencyOfCore(-1); err == nil {
		t.Fatal("negative core should fail")
	}
}

func TestSetGovernor(t *testing.T) {
	d, _ := NewDVFS(IntelCorei3_2120(), GovernorOndemand)
	if err := d.SetGovernor(GovernorPowersave); err != nil {
		t.Fatal(err)
	}
	if d.Governor() != GovernorPowersave {
		t.Fatalf("governor = %v, want powersave", d.Governor())
	}
	f, _ := d.FrequencyOfCore(0)
	if f != 1600 {
		t.Fatalf("powersave switch left frequency at %d", f)
	}
	if err := d.SetGovernor(Governor(42)); err == nil {
		t.Fatal("invalid governor should fail")
	}
}

func TestGovernorStringParse(t *testing.T) {
	for _, g := range []Governor{GovernorPerformance, GovernorPowersave, GovernorOndemand, GovernorUserspace} {
		parsed, err := ParseGovernor(g.String())
		if err != nil {
			t.Fatalf("ParseGovernor(%q): %v", g.String(), err)
		}
		if parsed != g {
			t.Fatalf("round trip %v -> %v", g, parsed)
		}
	}
	if _, err := ParseGovernor("bogus"); err == nil {
		t.Fatal("unknown governor name should fail")
	}
	if Governor(77).String() == "" {
		t.Fatal("unknown governor should still render")
	}
}

func TestLadderIsCopy(t *testing.T) {
	d, _ := NewDVFS(IntelCorei3_2120(), GovernorOndemand)
	ladder := d.Ladder()
	ladder[0] = 1
	if d.Ladder()[0] == 1 {
		t.Fatal("Ladder must return a copy")
	}
}
