//go:build !linux && !darwin

package obs

const selfMeterSupported = false

// rusageBuf is empty on platforms without getrusage.
type rusageBuf = struct{}

func processCPUNs(*rusageBuf) (int64, bool) { return 0, false }
