package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count of every latency histogram. Bucket i
// holds durations whose nanosecond value has bit-length i+1, i.e. durations in
// [2^i, 2^(i+1)) ns, except bucket 0 which also absorbs sub-nanosecond values
// and the last bucket which absorbs everything above ~34s (2^35 ns). Log2
// bucketing keeps Observe to a bits.Len64 plus one atomic add — no floats, no
// branches on configuration — at the cost of coarse (2x) resolution, which is
// plenty for stage latencies spanning nanoseconds to seconds.
const histBuckets = 36

// Histogram is a lock-free, fixed-size, log2-bucketed latency histogram.
// Observe is wait-free (one atomic add per field) and allocation-free, so it
// can sit on the per-round hot path. The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Int64
}

// Observe records one duration in nanoseconds. Negative durations (clock
// anomalies) are clamped to zero rather than dropped, so count and sum stay
// consistent with the number of calls.
//
//powerapi:hotpath
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	idx := bits.Len64(uint64(ns))
	if idx > 0 {
		idx--
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Counts are
// per-bucket (not cumulative); BucketUpperNs gives each bucket's upper bound.
type HistogramSnapshot struct {
	Counts [histBuckets]uint64
	Count  uint64
	SumNs  int64
}

// Snapshot copies the histogram's counters. Under concurrent Observe calls
// the copy is not a single atomic cut, but each field is individually
// consistent — good enough for diagnostics.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNs = h.sumNs.Load()
	return s
}

// BucketUpperNs returns the exclusive upper bound of bucket i in nanoseconds;
// the last bucket is unbounded (MaxInt64).
func BucketUpperNs(i int) int64 {
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return int64(1) << uint(i+1)
}

// Quantile estimates the q-quantile (0 < q <= 1) in nanoseconds by linear
// interpolation inside the bucket holding the q-th observation. Returns 0 when
// the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := seen + float64(c)
		if next >= rank {
			lower := float64(int64(1) << uint(i))
			if i == 0 {
				lower = 0
			}
			upper := float64(BucketUpperNs(i))
			if i == histBuckets-1 {
				upper = 2 * lower // unbounded bucket: assume one octave
			}
			frac := (rank - seen) / float64(c)
			return lower + frac*(upper-lower)
		}
		seen = next
	}
	return float64(BucketUpperNs(histBuckets - 1))
}

// MeanNs returns the arithmetic mean in nanoseconds, or 0 when empty.
func (s HistogramSnapshot) MeanNs() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}
