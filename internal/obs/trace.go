// Package obs is the pipeline's self-observability layer: per-round stage
// tracing, lock-free latency histograms, and a self-power meter, all with zero
// dependencies beyond the standard library and zero allocations on the record
// path. The pipeline stamps monotonic span timestamps at its existing choke
// points (sensor sample, formula estimate, aggregator merge, fanout, history
// write, reporter drain, bridge publish); the tracer accumulates them into a
// bounded ring of round traces and per-stage histograms that back the
// /api/v1/debug/rounds and /metrics surfaces.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage of a sampling round.
type Stage uint8

const (
	// StageSensor covers a sensor shard sampling its partition and publishing
	// the batch.
	StageSensor Stage = iota
	// StageFormula covers a formula shard turning a sensor batch into power
	// estimates.
	StageFormula
	// StageAggregate covers the aggregator merging one shard's estimates
	// (and, on the final batch, materialising the round's report).
	StageAggregate
	// StageFanout covers completing Collect waiters and publishing the report
	// to every subscription.
	StageFanout
	// StageHistory covers the history subscriber persisting the round.
	StageHistory
	// StageReporter covers a reporter subscriber delivering the round.
	StageReporter
	// StagePublish covers the VM bridge publisher framing and sending the
	// round to guests.
	StagePublish
	// StageIngest covers the fleet collector decoding one node frame and
	// folding its rows into the node's retained contribution. Ingest happens
	// between fleet rounds, so it feeds the stage histogram only (recorded
	// with a zero timestamp) and never appears in a round trace.
	StageIngest
	// StageRollup covers the fleet collector's sharded rollup of every live
	// node's contribution into one fleet report.
	StageRollup
	// NumStages is the number of stages; it is not itself a stage.
	NumStages
)

var stageNames = [NumStages]string{
	"sensor", "formula", "aggregate", "fanout", "history", "reporter", "publish",
	"ingest", "rollup",
}

// String returns the stable span name used in /metrics labels and debug JSON.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// coreStages are the stages every monitor round passes through regardless of
// which optional consumers (history, reporters, bridge) are configured; a
// round trace is complete once all of them have stamped and the round has
// finished. Pipelines with a different shape (the fleet collector) override
// the set with SetRequiredStages.
var coreStages = []Stage{StageSensor, StageFormula, StageAggregate, StageFanout}

// span accumulates the stamps of one stage within one round. Shards stamp
// concurrently, so every field is atomic: first/last converge by CAS min/max,
// slowest packs duration<<8|shard so one CAS race decides both fields
// together.
type span struct {
	firstNs atomic.Int64 // earliest start stamp (0 = never stamped)
	lastNs  atomic.Int64 // latest end stamp
	busyNs  atomic.Int64 // summed per-shard durations
	count   atomic.Int64
	slowest atomic.Uint64 // durationNs<<8 | shard
}

func (sp *span) reset() {
	sp.firstNs.Store(0)
	sp.lastNs.Store(0)
	sp.busyNs.Store(0)
	sp.count.Store(0)
	sp.slowest.Store(0)
}

//powerapi:hotpath
func (sp *span) record(shard int, startNs, endNs int64) {
	if endNs < startNs {
		endNs = startNs
	}
	for {
		cur := sp.firstNs.Load()
		if cur != 0 && cur <= startNs {
			break
		}
		if sp.firstNs.CompareAndSwap(cur, startNs) {
			break
		}
	}
	for {
		cur := sp.lastNs.Load()
		if cur >= endNs {
			break
		}
		if sp.lastNs.CompareAndSwap(cur, endNs) {
			break
		}
	}
	sp.busyNs.Add(endNs - startNs)
	sp.count.Add(1)
	if shard < 0 {
		shard = 0
	}
	packed := uint64(endNs-startNs)<<8 | uint64(shard&0xff)
	for {
		cur := sp.slowest.Load()
		if cur>>8 >= packed>>8 {
			break
		}
		if sp.slowest.CompareAndSwap(cur, packed) {
			break
		}
	}
}

// traceSlot is one ring entry: the trace of a single round, keyed by the
// round's simulated timestamp. ts==0 marks the slot empty or mid-reset, so
// stages looking up an evicted round simply miss and drop their stamp.
type traceSlot struct {
	ts      atomic.Int64 // round timestamp in simulated ns; 0 = empty
	seq     atomic.Uint64
	beginNs atomic.Int64 // monotonic stamp of the round broadcast
	endNs   atomic.Int64 // monotonic stamp of fanout completion; 0 in flight
	spans   [NumStages]span
}

// DefaultTraceRing is the number of recent round traces retained when the
// ring size is not configured.
const DefaultTraceRing = 64

// Tracer owns the round-trace ring and the per-stage histograms. All record
// methods are lock-free, allocation-free and safe on a nil receiver (no-ops),
// so pipeline code can stamp unconditionally.
type Tracer struct {
	epoch         time.Time
	seq           atomic.Uint64
	ring          []traceSlot
	stageHists    [NumStages]Histogram
	roundHist     Histogram
	pendingRounds atomic.Int64
	// required is the stage set a round must have stamped to count as
	// complete (coreStages unless overridden by SetRequiredStages).
	required []Stage
}

// NewTracer returns a tracer retaining the last capacity round traces
// (DefaultTraceRing when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceRing
	}
	return &Tracer{
		epoch:    time.Now(),
		ring:     make([]traceSlot, capacity),
		required: coreStages,
	}
}

// SetRequiredStages overrides which stages a round must have stamped before
// Rounds reports it complete — the monitor pipeline's sensor→fanout chain by
// default; the fleet collector's rollup→fanout chain when it owns the tracer.
// Call before the first Begin; stages must be valid.
func (t *Tracer) SetRequiredStages(stages ...Stage) {
	if t == nil || len(stages) == 0 {
		return
	}
	required := make([]Stage, 0, len(stages))
	for _, s := range stages {
		if s < NumStages {
			required = append(required, s)
		}
	}
	t.required = required
}

// Capacity returns the ring size.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Now returns the tracer's monotonic clock: nanoseconds since the tracer was
// created. time.Since reads the monotonic clock and allocates nothing.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// Begin claims a ring slot for the round with the given simulated timestamp.
// It must be called from the single round-origination point (Collect's tick
// broadcast) before any stage can stamp; the slot it recycles belongs to the
// round capacity rounds ago, whose late stamps are dropped by the ts reset.
func (t *Tracer) Begin(ts time.Duration) {
	if t == nil || ts <= 0 {
		return
	}
	seq := t.seq.Add(1)
	slot := &t.ring[seq%uint64(len(t.ring))]
	slot.ts.Store(0) // invalidate first: late stamps for the evicted round miss
	for i := range slot.spans {
		slot.spans[i].reset()
	}
	slot.seq.Store(seq)
	slot.beginNs.Store(t.Now())
	slot.endNs.Store(0)
	slot.ts.Store(int64(ts))
}

// findSlot locates the live slot of a round by timestamp with a linear scan —
// the ring is small and the scan touches one atomic per entry.
func (t *Tracer) findSlot(ts time.Duration) *traceSlot {
	if t == nil || ts <= 0 {
		return nil
	}
	want := int64(ts)
	for i := range t.ring {
		if t.ring[i].ts.Load() == want {
			return &t.ring[i]
		}
	}
	return nil
}

// Record stamps one stage execution for the round with the given timestamp.
// startNs/endNs are tracer-monotonic stamps from Now. Stamps for rounds no
// longer in the ring are dropped; the stage histogram observes the duration
// either way, so aggregate latencies never lose samples.
//
//powerapi:hotpath
func (t *Tracer) Record(ts time.Duration, stage Stage, shard int, startNs, endNs int64) {
	if t == nil || stage >= NumStages {
		return
	}
	if endNs < startNs {
		endNs = startNs
	}
	t.stageHists[stage].Observe(endNs - startNs)
	if slot := t.findSlot(ts); slot != nil {
		slot.spans[stage].record(shard, startNs, endNs)
		checkSpanOrder(slot, stage, startNs, endNs)
	}
}

// FinishRound marks the round complete (stamped at the end of fanout, when
// every synchronous consumer has the report) and feeds the round-duration
// histogram. It returns the round's wall duration in nanoseconds, or 0 if the
// round had already left the ring.
func (t *Tracer) FinishRound(ts time.Duration) int64 {
	slot := t.findSlot(ts)
	if slot == nil {
		return 0
	}
	end := t.Now()
	slot.endNs.Store(end)
	dur := end - slot.beginNs.Load()
	t.roundHist.Observe(dur)
	return dur
}

// SetPendingRounds publishes the aggregator's in-flight round count.
func (t *Tracer) SetPendingRounds(n int) {
	if t != nil {
		t.pendingRounds.Store(int64(n))
	}
}

// PendingRounds returns the last published in-flight round count.
func (t *Tracer) PendingRounds() int {
	if t == nil {
		return 0
	}
	return int(t.pendingRounds.Load())
}

// SpanView is the per-stage slice of a RoundView. Start/End are offsets from
// the round's begin stamp, so a timeline renders directly.
type SpanView struct {
	Stage          string  `json:"stage"`
	Count          int64   `json:"count"`
	StartSeconds   float64 `json:"startSeconds"`
	EndSeconds     float64 `json:"endSeconds"`
	SpanSeconds    float64 `json:"spanSeconds"`
	BusySeconds    float64 `json:"busySeconds"`
	SlowestShard   int     `json:"slowestShard"`
	SlowestSeconds float64 `json:"slowestSeconds"`
}

// RoundView is the trace of one round as served by /api/v1/debug/rounds.
type RoundView struct {
	Seq              uint64     `json:"seq"`
	TimestampSeconds float64    `json:"timestampSeconds"`
	DurationSeconds  float64    `json:"durationSeconds"`
	Complete         bool       `json:"complete"`
	Stages           []SpanView `json:"stages"`
}

// Rounds snapshots the ring, oldest round first. Slots that are concurrently
// recycled mid-read are dropped rather than served torn. This is a cold-path
// call and allocates freely.
func (t *Tracer) Rounds() []RoundView {
	if t == nil {
		return nil
	}
	out := make([]RoundView, 0, len(t.ring))
	for i := range t.ring {
		slot := &t.ring[i]
		ts := slot.ts.Load()
		if ts == 0 {
			continue
		}
		view := RoundView{
			Seq:              slot.seq.Load(),
			TimestampSeconds: time.Duration(ts).Seconds(),
			Stages:           make([]SpanView, 0, NumStages),
		}
		begin := slot.beginNs.Load()
		if end := slot.endNs.Load(); end != 0 {
			view.DurationSeconds = float64(end-begin) / 1e9
		}
		complete := view.DurationSeconds > 0
		for st := Stage(0); st < NumStages; st++ {
			sp := &slot.spans[st]
			count := sp.count.Load()
			if count == 0 {
				continue
			}
			first, last := sp.firstNs.Load(), sp.lastNs.Load()
			packed := sp.slowest.Load()
			view.Stages = append(view.Stages, SpanView{
				Stage:          st.String(),
				Count:          count,
				StartSeconds:   float64(first-begin) / 1e9,
				EndSeconds:     float64(last-begin) / 1e9,
				SpanSeconds:    float64(last-first) / 1e9,
				BusySeconds:    float64(sp.busyNs.Load()) / 1e9,
				SlowestShard:   int(packed & 0xff),
				SlowestSeconds: float64(packed>>8) / 1e9,
			})
		}
		for _, st := range t.required {
			if slot.spans[st].count.Load() == 0 {
				complete = false
			}
		}
		view.Complete = complete
		if slot.ts.Load() != ts {
			continue // recycled while reading: drop the torn view
		}
		out = append(out, view)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// BucketCount is one cumulative histogram bucket of a StageStats.
type BucketCount struct {
	UpperSeconds float64 `json:"upperSeconds"`
	Count        uint64  `json:"count"`
}

// MarshalJSON spells the terminal bucket's bound as the string "+Inf":
// encoding/json rejects IEEE infinities, and Prometheus uses that spelling.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.UpperSeconds, 1) {
		return fmt.Appendf(nil, `{"upperSeconds":"+Inf","count":%d}`, b.Count), nil
	}
	return fmt.Appendf(nil, `{"upperSeconds":%g,"count":%d}`, b.UpperSeconds, b.Count), nil
}

// StageStats summarises one stage's latency distribution since startup.
type StageStats struct {
	Stage      string        `json:"stage"`
	Count      uint64        `json:"count"`
	SumSeconds float64       `json:"sumSeconds"`
	P50Seconds float64       `json:"p50Seconds"`
	P90Seconds float64       `json:"p90Seconds"`
	P99Seconds float64       `json:"p99Seconds"`
	Buckets    []BucketCount `json:"buckets"`
}

// StatsFromHistogram summarises any standalone Histogram under a caller-chosen
// name, in the same shape the tracer reports its stage histograms — so ad-hoc
// distributions (the collector's end-to-end fleet latency, say) surface through
// the same JSON and Prometheus plumbing as pipeline stages.
func StatsFromHistogram(name string, h *Histogram) StageStats {
	return statsFrom(name, h)
}

func statsFrom(name string, h *Histogram) StageStats {
	snap := h.Snapshot()
	st := StageStats{
		Stage:      name,
		Count:      snap.Count,
		SumSeconds: float64(snap.SumNs) / 1e9,
		P50Seconds: snap.Quantile(0.50) / 1e9,
		P90Seconds: snap.Quantile(0.90) / 1e9,
		P99Seconds: snap.Quantile(0.99) / 1e9,
	}
	last := -1
	for i, c := range snap.Counts {
		if c != 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += snap.Counts[i]
		st.Buckets = append(st.Buckets, BucketCount{
			UpperSeconds: float64(BucketUpperNs(i)) / 1e9,
			Count:        cum,
		})
	}
	if last >= 0 {
		st.Buckets = append(st.Buckets, BucketCount{UpperSeconds: math.Inf(1), Count: snap.Count})
	}
	return st
}

// StageStats summarises every stage that has recorded at least one span.
func (t *Tracer) StageStats() []StageStats {
	if t == nil {
		return nil
	}
	out := make([]StageStats, 0, NumStages)
	for st := Stage(0); st < NumStages; st++ {
		stats := statsFrom(st.String(), &t.stageHists[st])
		if stats.Count == 0 {
			continue
		}
		out = append(out, stats)
	}
	return out
}

// RoundStats summarises the end-to-end round duration distribution.
func (t *Tracer) RoundStats() StageStats {
	if t == nil {
		return StageStats{Stage: "round"}
	}
	return statsFrom("round", &t.roundHist)
}
