//go:build !powerapidebug

package obs

// checkSpanOrder is compiled out by default; build with -tags powerapidebug
// to enable the span-ordering assertions.
func checkSpanOrder(*traceSlot, Stage, int64, int64) {}
