package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations at ~1µs, 10 at ~1ms, 1 at ~1s.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	h.Observe(1_000_000_000)
	s := h.Snapshot()
	if s.Count != 111 {
		t.Fatalf("count = %d, want 111", s.Count)
	}
	if got := s.SumNs; got != 100*1000+10*1_000_000+1_000_000_000 {
		t.Fatalf("sum = %d", got)
	}
	p50 := s.Quantile(0.50)
	if p50 < 512 || p50 > 2048 {
		t.Fatalf("p50 = %.0fns, want within the 1µs octave", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 512*1024 || p99 > 4*1024*1024 {
		t.Fatalf("p99 = %.0fns, want within the 1ms octave", p99)
	}
	if q := s.Quantile(1.0); q < p99 {
		t.Fatalf("q100 %.0f < p99 %.0f", q, p99)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	h.Observe(math.MaxInt64) // lands in the unbounded bucket
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Counts[0] != 2 || s.Counts[histBuckets-1] != 1 {
		t.Fatalf("bucket spread = %v", s.Counts)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestTracerRoundLifecycle(t *testing.T) {
	tr := NewTracer(4)
	ts := time.Second
	tr.Begin(ts)
	s0 := tr.Now()
	tr.Record(ts, StageSensor, 2, s0, s0+1000)
	tr.Record(ts, StageSensor, 1, s0+100, s0+5000) // slowest shard
	tr.Record(ts, StageFormula, 0, s0+5000, s0+6000)
	tr.Record(ts, StageAggregate, 0, s0+6000, s0+7000)
	tr.Record(ts, StageFanout, 0, s0+7000, s0+8000)
	if d := tr.FinishRound(ts); d <= 0 {
		t.Fatalf("round duration = %d", d)
	}
	rounds := tr.Rounds()
	if len(rounds) != 1 {
		t.Fatalf("rounds = %d, want 1", len(rounds))
	}
	r := rounds[0]
	if !r.Complete {
		t.Fatalf("round not complete: %+v", r)
	}
	if r.TimestampSeconds != 1.0 {
		t.Fatalf("timestamp = %v", r.TimestampSeconds)
	}
	var sensor *SpanView
	for i := range r.Stages {
		if r.Stages[i].Stage == "sensor" {
			sensor = &r.Stages[i]
		}
	}
	if sensor == nil {
		t.Fatal("no sensor span")
	}
	if sensor.Count != 2 {
		t.Fatalf("sensor count = %d", sensor.Count)
	}
	if sensor.SlowestShard != 1 {
		t.Fatalf("slowest shard = %d, want 1", sensor.SlowestShard)
	}
	if sensor.SlowestSeconds < 4e-6 {
		t.Fatalf("slowest duration = %v", sensor.SlowestSeconds)
	}
	if sensor.EndSeconds < sensor.StartSeconds {
		t.Fatalf("span inverted: %+v", sensor)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		ts := time.Duration(i) * time.Second
		tr.Begin(ts)
		s := tr.Now()
		tr.Record(ts, StageSensor, 0, s, s+100)
		tr.FinishRound(ts)
	}
	rounds := tr.Rounds()
	if len(rounds) != 4 {
		t.Fatalf("ring holds %d rounds, want 4", len(rounds))
	}
	for i, r := range rounds {
		if want := uint64(7 + i); r.Seq != want {
			t.Fatalf("rounds[%d].Seq = %d, want %d", i, r.Seq, want)
		}
	}
	// A stamp for an evicted round must drop silently.
	tr.Record(time.Second, StageSensor, 0, 0, 100)
	if got := len(tr.Rounds()); got != 4 {
		t.Fatalf("late stamp changed ring to %d rounds", got)
	}
}

func TestTracerIncompleteRound(t *testing.T) {
	tr := NewTracer(4)
	ts := 2 * time.Second
	tr.Begin(ts)
	s := tr.Now()
	tr.Record(ts, StageSensor, 0, s, s+100)
	rounds := tr.Rounds()
	if len(rounds) != 1 || rounds[0].Complete {
		t.Fatalf("in-flight round should be present and incomplete: %+v", rounds)
	}
}

func TestTracerConcurrentStamping(t *testing.T) {
	tr := NewTracer(8)
	var wg sync.WaitGroup
	for round := 1; round <= 50; round++ {
		ts := time.Duration(round) * time.Millisecond
		tr.Begin(ts)
		for shard := 0; shard < 4; shard++ {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				s := tr.Now()
				tr.Record(ts, StageSensor, shard, s, tr.Now())
				tr.Record(ts, StageFormula, shard, s, tr.Now())
			}(shard)
		}
		wg.Wait()
		tr.Record(ts, StageAggregate, 0, tr.Now(), tr.Now())
		tr.Record(ts, StageFanout, 0, tr.Now(), tr.Now())
		tr.FinishRound(ts)
	}
	rounds := tr.Rounds()
	if len(rounds) != 8 {
		t.Fatalf("ring = %d rounds, want 8", len(rounds))
	}
	for _, r := range rounds {
		if !r.Complete {
			t.Fatalf("round %d incomplete under concurrency", r.Seq)
		}
	}
	stats := tr.StageStats()
	var sawSensor bool
	for _, st := range stats {
		if st.Stage == "sensor" {
			sawSensor = true
			if st.Count != 200 {
				t.Fatalf("sensor stamps = %d, want 200", st.Count)
			}
			if len(st.Buckets) == 0 || !math.IsInf(st.Buckets[len(st.Buckets)-1].UpperSeconds, 1) {
				t.Fatalf("buckets must end with +Inf: %+v", st.Buckets)
			}
		}
	}
	if !sawSensor {
		t.Fatal("no sensor stage stats")
	}
	if rs := tr.RoundStats(); rs.Count != 50 {
		t.Fatalf("round stats count = %d, want 50", rs.Count)
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Begin(time.Second)
	tr.Record(time.Second, StageSensor, 0, 0, 1)
	tr.FinishRound(time.Second)
	tr.SetPendingRounds(3)
	if tr.PendingRounds() != 0 || tr.Capacity() != 0 || tr.Now() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	if tr.Rounds() != nil || tr.StageStats() != nil {
		t.Fatal("nil tracer snapshots must be empty")
	}
}

func TestPendingRoundsGauge(t *testing.T) {
	tr := NewTracer(0)
	if tr.Capacity() != DefaultTraceRing {
		t.Fatalf("default capacity = %d", tr.Capacity())
	}
	tr.SetPendingRounds(5)
	if tr.PendingRounds() != 5 {
		t.Fatal("pending gauge lost")
	}
}

func TestStageStringNames(t *testing.T) {
	want := map[Stage]string{
		StageSensor: "sensor", StageFormula: "formula", StageAggregate: "aggregate",
		StageFanout: "fanout", StageHistory: "history", StageReporter: "reporter",
		StagePublish: "publish", NumStages: "unknown",
	}
	for st, name := range want {
		if st.String() != name {
			t.Fatalf("%d.String() = %q, want %q", st, st.String(), name)
		}
	}
}
