//go:build powerapidebug

package obs

import "fmt"

// checkSpanOrder (powerapidebug builds only) asserts the invariants the
// release-mode tracer merely assumes: a stage stamp never precedes the
// round's begin stamp, and its interval is well-formed. Violations indicate a
// stage reading timestamps from the wrong round or a non-monotonic clock, and
// panic loudly rather than corrupting a trace silently.
func checkSpanOrder(slot *traceSlot, stage Stage, startNs, endNs int64) {
	begin := slot.beginNs.Load()
	if startNs < begin {
		panic(fmt.Sprintf("obs: stage %s stamped start %dns before round begin %dns", stage, startNs, begin))
	}
	if endNs < startNs {
		panic(fmt.Sprintf("obs: stage %s stamped end %dns before start %dns", stage, endNs, startNs))
	}
}
