package obs

import (
	"testing"
	"time"
)

func TestSelfMeterSamplesNonzeroUnderLoad(t *testing.T) {
	m := NewSelfMeter(65, 1)
	if !m.Supported() {
		t.Skip("platform without process CPU accounting")
	}
	// Burn CPU long enough that utilisation over the window is measurable.
	deadline := time.Now().Add(50 * time.Millisecond)
	x := 0
	for time.Now().Before(deadline) {
		x++
	}
	_ = x
	w := m.Sample()
	if w <= 0 {
		t.Fatalf("self watts = %v, want > 0 after busy loop", w)
	}
	if w > 65 {
		t.Fatalf("self watts = %v exceeds reference power", w)
	}
	if m.Watts() != w {
		t.Fatal("Watts() should return the last sample")
	}
	if m.CPUSeconds() <= 0 {
		t.Fatal("CPUSeconds should be positive")
	}
}

func TestSelfMeterFirstSampleIsImmediate(t *testing.T) {
	m := NewSelfMeter(65, 1)
	if !m.Supported() {
		t.Skip("platform without process CPU accounting")
	}
	time.Sleep(2 * time.Millisecond)
	// The first sample must compute even though the window is shorter than
	// selfMinWindow — the daemon's first report needs a nonzero figure.
	_ = m.Sample()
	if !m.primed {
		t.Fatal("first sample did not prime the meter")
	}
}

func TestSelfMeterHoldsBetweenWindows(t *testing.T) {
	m := NewSelfMeter(65, 1)
	if !m.Supported() {
		t.Skip("platform without process CPU accounting")
	}
	time.Sleep(2 * time.Millisecond)
	first := m.Sample()
	// Immediately re-sampling inside the minimum window returns the held
	// figure rather than a noisy near-zero one.
	if again := m.Sample(); again != first {
		t.Fatalf("sample inside window changed: %v -> %v", first, again)
	}
}

func TestSelfMeterNilAndDefaults(t *testing.T) {
	var m *SelfMeter
	if m.Sample() != 0 || m.Watts() != 0 || m.CPUSeconds() != 0 || m.Supported() {
		t.Fatal("nil meter must be inert")
	}
	if mm := NewSelfMeter(65, 0); mm.cpus != 1 {
		t.Fatalf("cpus floor = %v, want 1", mm.cpus)
	}
}
