//go:build linux || darwin

package obs

import "syscall"

const selfMeterSupported = true

// rusageBuf is the reusable getrusage buffer embedded in SelfMeter.
type rusageBuf = syscall.Rusage

// processCPUNs returns the calling process's cumulative CPU time (user +
// system) in nanoseconds.
func processCPUNs(ru *rusageBuf) (int64, bool) {
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, ru); err != nil {
		return 0, false
	}
	return ru.Utime.Nano() + ru.Stime.Nano(), true
}
