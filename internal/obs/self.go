package obs

import (
	"sync"
	"time"
)

// selfMinWindow is the minimum wall window a utilisation figure is computed
// over. Sampling rounds can be far shorter than this (simulated time runs
// faster than wall time); between full windows the meter holds the last
// figure, so the reported self-watts stay stable instead of jittering with
// scheduler noise.
const selfMinWindow = 25 * time.Millisecond

// SelfMeter attributes the meter's own cost: it reads the current process's
// cumulative CPU time from the OS and converts utilisation into watts with
// the same TDP-proportional proxy the simulated machine uses for its targets
// (watts = refWatts × cpuTime/(wallTime×cpus), capped at refWatts). On
// platforms without rusage support the meter reports zero and Supported()
// is false. Sample is allocation-free: the rusage buffer is reused under the
// meter's lock.
type SelfMeter struct {
	mu        sync.Mutex
	refWatts  float64
	cpus      float64
	epoch     time.Time
	ru        rusageBuf
	primed    bool
	lastWall  int64
	lastCPUNs int64
	cpuNs     int64
	watts     float64
}

// NewSelfMeter returns a meter that scales utilisation by refWatts (typically
// the host CPU's TDP) across cpus logical CPUs. The construction instant is
// the baseline: CPU burned from here on — calibration included — is the
// meter's own.
func NewSelfMeter(refWatts float64, cpus int) *SelfMeter {
	if cpus <= 0 {
		cpus = 1
	}
	m := &SelfMeter{refWatts: refWatts, cpus: float64(cpus), epoch: time.Now()}
	if ns, ok := processCPUNs(&m.ru); ok {
		m.lastCPUNs, m.cpuNs = ns, ns
	}
	return m
}

// Supported reports whether the platform exposes process CPU time.
func (m *SelfMeter) Supported() bool {
	return m != nil && selfMeterSupported
}

// Sample refreshes and returns the meter's current self-power estimate in
// watts. Called once per round from the aggregator; windows shorter than
// selfMinWindow return the previous figure (except the very first, so the
// meter is nonzero from round one).
func (m *SelfMeter) Sample() float64 {
	if m == nil || !selfMeterSupported {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := int64(time.Since(m.epoch))
	cpuNs, ok := processCPUNs(&m.ru)
	if !ok {
		return m.watts
	}
	m.cpuNs = cpuNs
	wallDelta := now - m.lastWall
	if wallDelta <= 0 || (m.primed && wallDelta < int64(selfMinWindow)) {
		return m.watts
	}
	cpuDelta := cpuNs - m.lastCPUNs
	if cpuDelta < 0 {
		cpuDelta = 0
	}
	util := float64(cpuDelta) / (float64(wallDelta) * m.cpus)
	if util > 1 {
		util = 1
	}
	m.watts = m.refWatts * util
	m.primed = true
	m.lastWall, m.lastCPUNs = now, cpuNs
	return m.watts
}

// Watts returns the last sampled self-power figure without refreshing it.
func (m *SelfMeter) Watts() float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.watts
}

// CPUSeconds returns the process's cumulative CPU time in seconds (user +
// system), refreshed on every call.
func (m *SelfMeter) CPUSeconds() float64 {
	if m == nil || !selfMeterSupported {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if ns, ok := processCPUNs(&m.ru); ok {
		m.cpuNs = ns
	}
	return float64(m.cpuNs) / 1e9
}
