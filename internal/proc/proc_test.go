package proc

import (
	"testing"
	"time"

	"powerapi/internal/workload"
)

func mustCPUStress(t *testing.T, level float64, d time.Duration) workload.Generator {
	t.Helper()
	g, err := workload.CPUStress(level, d)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSpawnAssignsIncreasingPIDs(t *testing.T) {
	table := NewTable()
	p1, err := table.Spawn(mustCPUStress(t, 0.5, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := table.Spawn(mustCPUStress(t, 0.5, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2.PID() <= p1.PID() {
		t.Fatalf("PIDs not increasing: %d then %d", p1.PID(), p2.PID())
	}
	if p1.PID() < 1000 {
		t.Fatalf("PID %d looks like a kernel thread", p1.PID())
	}
}

func TestSpawnNilGenerator(t *testing.T) {
	table := NewTable()
	if _, err := table.Spawn(nil, 0); err == nil {
		t.Fatal("nil generator should fail")
	}
}

func TestSpawnOptions(t *testing.T) {
	table := NewTable()
	p, err := table.Spawn(mustCPUStress(t, 0.5, 0), 0, WithAffinity(0, 2), WithName("renamed"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "renamed" {
		t.Fatalf("Name = %q, want renamed", p.Name())
	}
	aff := p.Affinity()
	if len(aff) != 2 || aff[0] != 0 || aff[1] != 2 {
		t.Fatalf("Affinity = %v, want [0 2]", aff)
	}
	// The returned affinity must be a copy.
	aff[0] = 99
	if p.Affinity()[0] == 99 {
		t.Fatal("Affinity returned internal slice")
	}
	// Empty name option keeps the generator name.
	p2, _ := table.Spawn(mustCPUStress(t, 0.5, 0), 0, WithName(""))
	if p2.Name() == "" {
		t.Fatal("empty WithName erased the default name")
	}
}

func TestGetAndList(t *testing.T) {
	table := NewTable()
	p, _ := table.Spawn(mustCPUStress(t, 0.5, 0), 0)
	got, err := table.Get(p.PID())
	if err != nil {
		t.Fatal(err)
	}
	if got.PID() != p.PID() {
		t.Fatal("Get returned a different process")
	}
	if _, err := table.Get(1); err == nil {
		t.Fatal("Get of unknown pid should fail")
	}
	if len(table.List()) != 1 {
		t.Fatalf("List() = %d entries, want 1", len(table.List()))
	}
}

func TestKillAndRunnable(t *testing.T) {
	table := NewTable()
	p1, _ := table.Spawn(mustCPUStress(t, 0.5, 0), 0)
	p2, _ := table.Spawn(mustCPUStress(t, 0.5, 0), 0)
	if err := table.Kill(p1.PID(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := table.Kill(12345, 0); err == nil {
		t.Fatal("killing unknown pid should fail")
	}
	if p1.State() != StateExited {
		t.Fatalf("state = %v, want exited", p1.State())
	}
	if p1.ExitedAt() != 5*time.Second {
		t.Fatalf("ExitedAt = %v, want 5s", p1.ExitedAt())
	}
	runnable := table.Runnable()
	if len(runnable) != 1 || runnable[0].PID() != p2.PID() {
		t.Fatalf("Runnable = %v", runnable)
	}
	pids := table.PIDs()
	if len(pids) != 1 || pids[0] != p2.PID() {
		t.Fatalf("PIDs = %v", pids)
	}
	// Killing twice is harmless and the exit time is preserved.
	if err := table.Kill(p1.PID(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if p1.ExitedAt() != 5*time.Second {
		t.Fatal("second Kill overwrote the exit time")
	}
}

func TestDemandRespectsLifetime(t *testing.T) {
	table := NewTable()
	// Spawned at t=10s with a 5s workload.
	p, _ := table.Spawn(mustCPUStress(t, 0.8, 5*time.Second), 10*time.Second)
	if got := p.Demand(12 * time.Second).Utilization; got != 0.8 {
		t.Fatalf("demand inside lifetime = %v, want 0.8", got)
	}
	if !p.WorkloadDone(15 * time.Second) {
		t.Fatal("workload should be done 5s after spawn")
	}
	if p.WorkloadDone(14 * time.Second) {
		t.Fatal("workload done too early")
	}
}

func TestDemandOfExitedProcessIsZero(t *testing.T) {
	table := NewTable()
	p, _ := table.Spawn(mustCPUStress(t, 0.8, 0), 0)
	_ = table.Kill(p.PID(), time.Second)
	if !p.Demand(2 * time.Second).IsIdle() {
		t.Fatal("exited process should not demand CPU")
	}
}

func TestReap(t *testing.T) {
	table := NewTable()
	short, _ := table.Spawn(mustCPUStress(t, 0.5, 2*time.Second), 0)
	long, _ := table.Spawn(mustCPUStress(t, 0.5, 0), 0)

	if reaped := table.Reap(time.Second); len(reaped) != 0 {
		t.Fatalf("nothing should be reaped at 1s, got %v", reaped)
	}
	reaped := table.Reap(3 * time.Second)
	if len(reaped) != 1 || reaped[0] != short.PID() {
		t.Fatalf("Reap = %v, want [%d]", reaped, short.PID())
	}
	if short.State() != StateExited {
		t.Fatal("short process should be exited")
	}
	if long.State() != StateRunnable {
		t.Fatal("long process should still be runnable")
	}
}

func TestCPUTimeAccrual(t *testing.T) {
	table := NewTable()
	p, _ := table.Spawn(mustCPUStress(t, 0.5, 0), 0)
	p.AddCPUTime(30 * time.Millisecond)
	p.AddCPUTime(20 * time.Millisecond)
	p.AddCPUTime(-time.Second) // ignored
	if got := p.CPUTime(); got != 50*time.Millisecond {
		t.Fatalf("CPUTime = %v, want 50ms", got)
	}
}

func TestStateString(t *testing.T) {
	if StateRunnable.String() != "runnable" || StateExited.String() != "exited" {
		t.Fatal("unexpected state strings")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state should render")
	}
}

func TestListOrderedByPID(t *testing.T) {
	table := NewTable()
	for i := 0; i < 10; i++ {
		_, _ = table.Spawn(mustCPUStress(t, 0.1, 0), 0)
	}
	list := table.List()
	for i := 1; i < len(list); i++ {
		if list[i-1].PID() >= list[i].PID() {
			t.Fatal("List not ordered by PID")
		}
	}
}
