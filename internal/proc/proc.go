// Package proc models the operating-system process abstraction the paper's
// toolkit monitors: every workload runs as a process with a PID, and the
// PowerAPI Sensor attributes hardware-counter activity (and therefore power)
// to PIDs.
package proc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"powerapi/internal/workload"
)

// State is the lifecycle state of a process.
type State int

// Process states.
const (
	// StateRunnable means the process is alive and may be scheduled.
	StateRunnable State = iota + 1
	// StateExited means the process has finished (workload done or killed).
	StateExited
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateRunnable:
		return "runnable"
	case StateExited:
		return "exited"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Process is one simulated OS process.
type Process struct {
	mu        sync.RWMutex
	pid       int
	name      string
	generator workload.Generator
	state     State
	affinity  []int
	startedAt time.Duration
	cpuTime   time.Duration
	exitedAt  time.Duration
}

// PID returns the process identifier.
func (p *Process) PID() int { return p.pid }

// Name returns the process name (derived from its workload by default).
func (p *Process) Name() string { return p.name }

// State returns the current lifecycle state.
func (p *Process) State() State {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.state
}

// Affinity returns the logical CPUs the process may run on (nil = any).
func (p *Process) Affinity() []int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.affinity == nil {
		return nil
	}
	return append([]int(nil), p.affinity...)
}

// StartedAt returns the simulated instant the process was spawned.
func (p *Process) StartedAt() time.Duration { return p.startedAt }

// CPUTime returns the accumulated CPU time consumed by the process.
func (p *Process) CPUTime() time.Duration {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.cpuTime
}

// AddCPUTime accrues CPU time (called by the machine engine).
func (p *Process) AddCPUTime(d time.Duration) {
	if d <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cpuTime += d
}

// Demand returns the workload demand of the process at the given simulated
// instant relative to the machine epoch (the process translates it to its own
// lifetime).
func (p *Process) Demand(at time.Duration) workload.Demand {
	// Snapshot under the lock, call the generator after releasing it: the
	// generator is caller-provided code and must not run under p.mu.
	// generator and startedAt are immutable after Spawn, so the unlocked call
	// observes a consistent pair.
	p.mu.RLock()
	state := p.state
	gen, startedAt := p.generator, p.startedAt
	p.mu.RUnlock()
	if state != StateRunnable {
		return workload.Demand{}
	}
	return gen.Demand(at - startedAt)
}

// WorkloadDone reports whether the underlying workload has completed at the
// given machine instant.
func (p *Process) WorkloadDone(at time.Duration) bool {
	p.mu.RLock()
	gen, startedAt := p.generator, p.startedAt
	p.mu.RUnlock()
	return gen.Done(at - startedAt)
}

// exit marks the process as exited at the given instant.
func (p *Process) exit(at time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == StateExited {
		return
	}
	p.state = StateExited
	p.exitedAt = at
}

// ExitedAt returns when the process exited (zero if still runnable).
func (p *Process) ExitedAt() time.Duration {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.exitedAt
}

// SpawnOption customises a spawned process.
type SpawnOption func(*Process)

// WithAffinity pins the process to a set of logical CPUs.
func WithAffinity(cpus ...int) SpawnOption {
	return func(p *Process) {
		p.affinity = append([]int(nil), cpus...)
	}
}

// WithName overrides the process name.
func WithName(name string) SpawnOption {
	return func(p *Process) {
		if name != "" {
			p.name = name
		}
	}
}

// Table is the process table of the simulated machine.
type Table struct {
	mu      sync.RWMutex
	nextPID int
	procs   map[int]*Process
	// sorted caches every process in PID order. PIDs are handed out
	// monotonically, so Spawn appends in order; the cache never needs a
	// re-sort, which keeps the per-tick Runnable scan O(n) instead of
	// O(n log n) at 100k processes.
	sorted []*Process
}

// NewTable creates an empty process table. PIDs start at 1000 to look like a
// user session rather than kernel threads.
func NewTable() *Table {
	return &Table{nextPID: 1000, procs: make(map[int]*Process)}
}

// Spawn creates a runnable process driving the given workload generator.
func (t *Table) Spawn(gen workload.Generator, at time.Duration, opts ...SpawnOption) (*Process, error) {
	if gen == nil {
		return nil, errors.New("proc: nil workload generator")
	}
	name := gen.Name() // caller-provided code; call it before taking t.mu
	t.mu.Lock()
	defer t.mu.Unlock()
	pid := t.nextPID
	t.nextPID++
	p := &Process{
		pid:       pid,
		name:      name,
		generator: gen,
		state:     StateRunnable,
		startedAt: at,
	}
	for _, opt := range opts {
		opt(p)
	}
	t.procs[pid] = p
	t.sorted = append(t.sorted, p)
	return p, nil
}

// Get returns the process with the given PID.
func (t *Table) Get(pid int) (*Process, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	p, ok := t.procs[pid]
	if !ok {
		return nil, fmt.Errorf("proc: no such process %d", pid)
	}
	return p, nil
}

// Kill marks a process as exited.
func (t *Table) Kill(pid int, at time.Duration) error {
	p, err := t.Get(pid)
	if err != nil {
		return err
	}
	p.exit(at)
	return nil
}

// List returns every process (any state) ordered by PID.
func (t *Table) List() []*Process {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*Process(nil), t.sorted...)
}

// Runnable returns the runnable processes ordered by PID.
func (t *Table) Runnable() []*Process {
	return t.RunnableAppend(nil)
}

// RunnableAppend appends the runnable processes in PID order to dst and
// returns the extended slice. Passing a slice retained across ticks makes the
// scan allocation-free, which is what the machine simulator's tick loop does.
func (t *Table) RunnableAppend(dst []*Process) []*Process {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, p := range t.sorted {
		if p.State() == StateRunnable {
			dst = append(dst, p)
		}
	}
	return dst
}

// PIDs returns the PIDs of runnable processes.
func (t *Table) PIDs() []int {
	runnable := t.Runnable()
	out := make([]int, 0, len(runnable))
	for _, p := range runnable {
		out = append(out, p.PID())
	}
	return out
}

// Reap transitions processes whose workload has completed to the exited
// state and returns the PIDs reaped.
func (t *Table) Reap(at time.Duration) []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var reaped []int
	for _, p := range t.sorted {
		if p.State() == StateRunnable && p.WorkloadDone(at) {
			p.exit(at)
			reaped = append(reaped, p.pid)
		}
	}
	return reaped
}
