// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md:
//
//	Table 1      — the Intel Core i3-2120 specification table;
//	Model (§4)   — the per-frequency power-model equations learned by the
//	               Figure 1 calibration process;
//	Figure 3     — the SPECjbb2013 trace comparing PowerSpy measurements with
//	               PowerAPI estimations, and its median error;
//	Comparison   — the error of comparator models (Bertran-style, CPU-load,
//	               RAPL) on their respective setups, next to the values the
//	               paper quotes;
//	Ablation     — counter-selection strategies (fixed paper counters,
//	               Pearson, Spearman, CPU-load only).
package experiments

import (
	"fmt"
	"time"

	"powerapi/internal/calibration"
	"powerapi/internal/cpu"
	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/model"
	"powerapi/internal/report"
	"powerapi/internal/workload"
)

// Scale bundles the knobs that trade fidelity for runtime. The full scale
// reproduces the paper's durations (a ~2 500 s SPECjbb run); the quick scale
// keeps every code path but shrinks the simulated durations so the whole
// suite runs in seconds (used by tests and benchmarks).
type Scale struct {
	// Spec is the processor of the main testbed (Table 1's i3-2120).
	Spec cpu.Spec
	// Calibration configures the Figure 1 sweep.
	Calibration calibration.Options
	// SPECjbb configures the Figure 3 workload.
	SPECjbb workload.SPECjbbConfig
	// EvaluationDuration bounds the monitored part of the Figure 3 run.
	EvaluationDuration time.Duration
	// SampleInterval is the monitoring period (1 s in the paper's trace).
	SampleInterval time.Duration
	// Workers is the number of SPECjbb worker processes (the benchmark's
	// backend threads).
	Workers int
	// Seed keeps runs reproducible.
	Seed int64
}

// DefaultScale mirrors the paper's experiment dimensions.
func DefaultScale() Scale {
	jbb := workload.DefaultSPECjbbConfig()
	return Scale{
		Spec:               cpu.IntelCorei3_2120(),
		Calibration:        calibration.DefaultOptions(),
		SPECjbb:            jbb,
		EvaluationDuration: jbb.Duration,
		SampleInterval:     time.Second,
		Workers:            4,
		Seed:               2014,
	}
}

// QuickScale shrinks the durations for tests and benchmarks while keeping the
// full pipeline (all frequencies, all stages).
func QuickScale() Scale {
	s := DefaultScale()
	s.Calibration = calibration.QuickOptions()
	s.SPECjbb.Duration = 180 * time.Second
	s.EvaluationDuration = 150 * time.Second
	s.SampleInterval = time.Second
	s.Workers = 2
	// A narrower DVFS ladder keeps the sweep proportional to the reduced
	// evaluation length.
	s.Spec.MinFrequencyMHz = 2100
	s.Spec.FrequencyStepMHz = 600
	return s
}

// Validate checks the scale.
func (s Scale) Validate() error {
	if err := s.Spec.Validate(); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	if err := s.Calibration.Validate(); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	if err := s.SPECjbb.Validate(); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	if s.EvaluationDuration <= 0 || s.SampleInterval <= 0 {
		return fmt.Errorf("experiments: non-positive evaluation duration or sample interval")
	}
	if s.EvaluationDuration > s.SPECjbb.Duration {
		return fmt.Errorf("experiments: evaluation duration %v exceeds the SPECjbb run %v",
			s.EvaluationDuration, s.SPECjbb.Duration)
	}
	if s.Workers <= 0 {
		return fmt.Errorf("experiments: need at least one SPECjbb worker")
	}
	return nil
}

// Table1Result is the regenerated Table 1.
type Table1Result struct {
	Spec cpu.Spec
	Rows []cpu.SpecTableRow
}

// Table renders the result as a text table.
func (r Table1Result) Table() *report.Table {
	t := report.NewTable(fmt.Sprintf("Table 1: %s %s %s specifications", r.Spec.Vendor, r.Spec.Family, r.Spec.Model),
		"Attribute", "Value")
	for _, row := range r.Rows {
		t.AddRow(row.Attribute, row.Value)
	}
	return t
}

// Table1 regenerates the paper's Table 1 from the simulated processor
// catalogue.
func Table1(spec cpu.Spec) (Table1Result, error) {
	if err := spec.Validate(); err != nil {
		return Table1Result{}, fmt.Errorf("experiments: %w", err)
	}
	return Table1Result{Spec: spec, Rows: spec.TableRows()}, nil
}

// CoefficientComparison relates a learned coefficient to the paper's
// published value for the same counter at the top frequency.
type CoefficientComparison struct {
	Event        string  `json:"event"`
	LearnedWatts float64 `json:"learnedWattsPerEventPerSecond"`
	PaperWatts   float64 `json:"paperWattsPerEventPerSecond"`
	Ratio        float64 `json:"ratio"`
}

// ModelResult is the outcome of the power-model learning experiment (§4's
// equations).
type ModelResult struct {
	Model       *model.CPUPowerModel
	Report      *calibration.Report
	Equation    string
	Comparisons []CoefficientComparison
}

// Table renders the per-frequency fit quality.
func (r ModelResult) Table() *report.Table {
	t := report.NewTable("Power model learning (Figure 1 process)", "Frequency (MHz)", "R2", "Samples")
	for _, fit := range r.Report.PerFrequency {
		t.AddRow(fmt.Sprintf("%d", fit.FrequencyMHz), fmt.Sprintf("%.3f", fit.R2), fmt.Sprintf("%d", fit.Samples))
	}
	return t
}

// LearnModel runs the Figure 1 calibration on the scale's testbed and
// compares the learned top-frequency coefficients with the paper's published
// equation.
func LearnModel(scale Scale) (ModelResult, error) {
	if err := scale.Validate(); err != nil {
		return ModelResult{}, err
	}
	cfg := machine.DefaultConfig()
	cfg.Spec = scale.Spec
	cfg.Seed = scale.Seed
	opts := scale.Calibration
	if len(opts.FixedEvents) == 0 {
		// The headline experiment uses the paper's final counter choice; the
		// ablation experiment explores the selection strategies.
		opts.FixedEvents = hpc.PaperEvents()
	}
	cal, err := calibration.New(cfg, opts)
	if err != nil {
		return ModelResult{}, err
	}
	learned, calReport, err := cal.Run()
	if err != nil {
		return ModelResult{}, err
	}
	result := ModelResult{
		Model:    learned,
		Report:   calReport,
		Equation: learned.Equation(),
	}
	paper := model.PaperReferenceModel()
	paperTop := paper.Frequencies[len(paper.Frequencies)-1]
	learnedTop, err := learned.ModelForFrequency(scale.Spec.MaxFrequencyMHz())
	if err != nil {
		return ModelResult{}, err
	}
	paperByEvent := make(map[string]float64, len(paperTop.Terms))
	for _, term := range paperTop.Terms {
		paperByEvent[term.Event] = term.WattsPerEventPerSecond
	}
	for _, term := range learnedTop.Terms {
		paperValue, ok := paperByEvent[term.Event]
		if !ok {
			continue
		}
		ratio := 0.0
		if paperValue != 0 {
			ratio = term.WattsPerEventPerSecond / paperValue
		}
		result.Comparisons = append(result.Comparisons, CoefficientComparison{
			Event:        term.Event,
			LearnedWatts: term.WattsPerEventPerSecond,
			PaperWatts:   paperValue,
			Ratio:        ratio,
		})
	}
	return result, nil
}
