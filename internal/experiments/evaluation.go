package experiments

import (
	"fmt"
	"time"

	"powerapi/internal/baseline"
	"powerapi/internal/calibration"
	"powerapi/internal/core"
	"powerapi/internal/cpu"
	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/model"
	"powerapi/internal/powermeter"
	"powerapi/internal/report"
	"powerapi/internal/stats"
	"powerapi/internal/workload"
)

// Figure3Result is the regenerated Figure 3: the PowerSpy vs PowerAPI trace
// over a SPECjbb2013-like run, and its error statistics.
type Figure3Result struct {
	Points []report.TimePoint
	Errors stats.ErrorReport
	Model  *model.CPUPowerModel
}

// Table summarises the error statistics.
func (r Figure3Result) Table() *report.Table {
	t := report.NewTable("Figure 3: SPECjbb vs PowerSpy", "Metric", "Value")
	t.AddRow("Samples", fmt.Sprintf("%d", r.Errors.N))
	t.AddRow("Median error", fmt.Sprintf("%.1f%%", r.Errors.MedianAPE*100))
	t.AddRow("Mean error", fmt.Sprintf("%.1f%%", r.Errors.MAPE*100))
	t.AddRow("RMSE", fmt.Sprintf("%.2f W", r.Errors.RMSE))
	t.AddRow("Bias", fmt.Sprintf("%+.2f W", r.Errors.Bias))
	return t
}

// newEvaluationMachine builds the machine the evaluation runs on.
func newEvaluationMachine(scale Scale) (*machine.Machine, error) {
	cfg := machine.DefaultConfig()
	cfg.Spec = scale.Spec
	cfg.Seed = scale.Seed + 1
	cfg.Governor = cpu.GovernorOndemand
	return machine.New(cfg)
}

// spawnSPECjbb starts the SPECjbb worker processes on m.
func spawnSPECjbb(m *machine.Machine, scale Scale) ([]int, error) {
	pids := make([]int, 0, scale.Workers)
	for i := 0; i < scale.Workers; i++ {
		jbb, err := workload.NewSPECjbb(scale.SPECjbb)
		if err != nil {
			return nil, err
		}
		p, err := m.Spawn(jbb)
		if err != nil {
			return nil, err
		}
		pids = append(pids, p.PID())
	}
	return pids, nil
}

// runSPECjbbMonitored runs the monitored SPECjbb evaluation with the given
// power model and returns the measured/estimated trace.
func runSPECjbbMonitored(scale Scale, powerModel *model.CPUPowerModel) ([]report.TimePoint, error) {
	m, err := newEvaluationMachine(scale)
	if err != nil {
		return nil, err
	}
	spy, err := powermeter.NewPowerSpy(m, powermeter.DefaultPowerSpyConfig())
	if err != nil {
		return nil, err
	}
	if _, err := spawnSPECjbb(m, scale); err != nil {
		return nil, err
	}
	api, err := core.New(m, powerModel)
	if err != nil {
		return nil, err
	}
	defer api.Shutdown()
	if err := api.AttachAllRunnable(); err != nil {
		return nil, err
	}
	var points []report.TimePoint
	_, err = api.RunMonitored(scale.EvaluationDuration, scale.SampleInterval, func(r core.AggregatedReport) {
		points = append(points, report.TimePoint{
			Time:      r.Timestamp,
			Measured:  spy.Sample().Watts,
			Estimated: r.TotalWatts,
		})
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// Figure3 learns (or reuses) a power model and regenerates the Figure 3
// trace. Pass a nil model to let the experiment run the calibration itself.
func Figure3(scale Scale, powerModel *model.CPUPowerModel) (Figure3Result, error) {
	if err := scale.Validate(); err != nil {
		return Figure3Result{}, err
	}
	if powerModel == nil {
		learned, err := LearnModel(scale)
		if err != nil {
			return Figure3Result{}, fmt.Errorf("experiments: figure 3 calibration: %w", err)
		}
		powerModel = learned.Model
	}
	points, err := runSPECjbbMonitored(scale, powerModel)
	if err != nil {
		return Figure3Result{}, fmt.Errorf("experiments: figure 3 run: %w", err)
	}
	estimated := make([]float64, len(points))
	measured := make([]float64, len(points))
	for i, p := range points {
		estimated[i] = p.Estimated
		measured[i] = p.Measured
	}
	errs, err := stats.CompareSeries(estimated, measured)
	if err != nil {
		return Figure3Result{}, err
	}
	return Figure3Result{Points: points, Errors: errs, Model: powerModel}, nil
}

// ComparisonRow is one line of the §4 comparison: a power model evaluated on
// its own setup, next to the error the corresponding paper reports.
type ComparisonRow struct {
	Model         string  `json:"model"`
	Architecture  string  `json:"architecture"`
	Workload      string  `json:"workload"`
	MedianError   float64 `json:"medianError"`
	MeanError     float64 `json:"meanError"`
	PaperReported float64 `json:"paperReported"` // negative when the paper gives no figure
	Note          string  `json:"note"`
}

// ComparisonResult gathers every comparison row.
type ComparisonResult struct {
	Rows []ComparisonRow
}

// Table renders the comparison.
func (r ComparisonResult) Table() *report.Table {
	t := report.NewTable("Section 4 comparison", "Model", "Architecture", "Workload", "Median err", "Mean err", "Paper")
	percent := func(v float64) string {
		if v < 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.1f%%", v*100)
	}
	for _, row := range r.Rows {
		t.AddRow(row.Model, row.Architecture, row.Workload,
			percent(row.MedianError), percent(row.MeanError), percent(row.PaperReported))
	}
	return t
}

// specCPUSuite is a SPEC CPU2006-like suite: six single-threaded steady
// workloads with distinct instruction mixes, run one after the other.
func specCPUSuite(duration time.Duration) ([]workload.Generator, error) {
	weights := []float64{1.0, 0.85, 0.7, 0.5, 0.3, 0.1}
	out := make([]workload.Generator, 0, len(weights))
	for i, w := range weights {
		gen, err := workload.MixedStress(w, 0.95, duration)
		if err != nil {
			return nil, err
		}
		named, err := workload.NewTrace(fmt.Sprintf("speccpu-%d", i+1), time.Second, traceOf(gen, duration))
		if err != nil {
			return nil, err
		}
		out = append(out, named)
	}
	return out, nil
}

// traceOf samples a generator into a fixed trace (1 s resolution).
func traceOf(gen workload.Generator, duration time.Duration) []workload.Demand {
	n := int(duration / time.Second)
	if n <= 0 {
		n = 1
	}
	samples := make([]workload.Demand, n)
	for i := range samples {
		samples[i] = gen.Demand(time.Duration(i) * time.Second)
	}
	return samples
}

// evaluateBertran runs the Bertran-style model on the simple architecture
// with the SPEC-CPU-like suite and returns its error statistics.
func evaluateBertran(scale Scale) (stats.ErrorReport, error) {
	cfg := machine.DefaultConfig()
	cfg.Spec = cpu.IntelCore2DuoE6600()
	cfg.Seed = scale.Seed + 11
	opts := baseline.DefaultBertranOptions()
	opts.Levels = scale.Calibration.Levels
	opts.StepDuration = scale.Calibration.StepDuration
	opts.SettleDuration = scale.Calibration.SettleDuration
	opts.SampleInterval = scale.Calibration.SampleInterval
	bModel, err := baseline.CalibrateBertranModel(cfg, opts)
	if err != nil {
		return stats.ErrorReport{}, err
	}

	perBench := scale.EvaluationDuration / 6
	if perBench < 10*time.Second {
		perBench = 10 * time.Second
	}
	suite, err := specCPUSuite(perBench)
	if err != nil {
		return stats.ErrorReport{}, err
	}
	m, err := machine.New(cfg)
	if err != nil {
		return stats.ErrorReport{}, err
	}
	if err := m.PinAllFrequencies(m.Spec().BaseFrequencyMHz); err != nil {
		return stats.ErrorReport{}, err
	}
	spy, err := powermeter.NewPowerSpy(m, powermeter.DefaultPowerSpyConfig())
	if err != nil {
		return stats.ErrorReport{}, err
	}
	var estimated, measured []float64
	for _, bench := range suite {
		p, err := m.Spawn(bench)
		if err != nil {
			return stats.ErrorReport{}, err
		}
		set, err := hpc.OpenCounterSet(m.Registry(), bModel.Events, hpc.AllPIDs, hpc.AllCPUs)
		if err != nil {
			return stats.ErrorReport{}, err
		}
		if err := set.Enable(); err != nil {
			return stats.ErrorReport{}, err
		}
		steps := int(perBench / scale.SampleInterval)
		for s := 0; s < steps; s++ {
			if _, err := m.Run(scale.SampleInterval); err != nil {
				return stats.ErrorReport{}, err
			}
			deltas, err := set.ReadDelta()
			if err != nil {
				return stats.ErrorReport{}, err
			}
			est, err := bModel.EstimateTotalWatts(deltas, scale.SampleInterval)
			if err != nil {
				return stats.ErrorReport{}, err
			}
			estimated = append(estimated, est)
			measured = append(measured, spy.Sample().Watts)
		}
		if err := set.Close(); err != nil {
			return stats.ErrorReport{}, err
		}
		if err := m.Kill(p.PID()); err != nil {
			return stats.ErrorReport{}, err
		}
	}
	return stats.CompareSeries(estimated, measured)
}

// evaluateCPULoad runs the CPU-load baseline against a SPECjbb run.
func evaluateCPULoad(scale Scale) (stats.ErrorReport, error) {
	cfg := machine.DefaultConfig()
	cfg.Spec = scale.Spec
	cfg.Seed = scale.Seed + 21
	loadModel, err := baseline.CalibrateCPULoadModel(cfg, scale.Calibration.SettleDuration, scale.Calibration.StepDuration)
	if err != nil {
		return stats.ErrorReport{}, err
	}
	m, err := newEvaluationMachine(scale)
	if err != nil {
		return stats.ErrorReport{}, err
	}
	spy, err := powermeter.NewPowerSpy(m, powermeter.DefaultPowerSpyConfig())
	if err != nil {
		return stats.ErrorReport{}, err
	}
	if _, err := spawnSPECjbb(m, scale); err != nil {
		return stats.ErrorReport{}, err
	}
	steps := int(scale.EvaluationDuration / scale.SampleInterval)
	var estimated, measured []float64
	for s := 0; s < steps; s++ {
		if _, err := m.Run(scale.SampleInterval); err != nil {
			return stats.ErrorReport{}, err
		}
		est, err := loadModel.EstimateWatts(m.TotalUtilization())
		if err != nil {
			return stats.ErrorReport{}, err
		}
		estimated = append(estimated, est)
		measured = append(measured, spy.Sample().Watts)
	}
	return stats.CompareSeries(estimated, measured)
}

// evaluateRAPL runs the RAPL wall baseline against a SPECjbb run.
func evaluateRAPL(scale Scale, platformWatts float64) (stats.ErrorReport, error) {
	m, err := newEvaluationMachine(scale)
	if err != nil {
		return stats.ErrorReport{}, err
	}
	spy, err := powermeter.NewPowerSpy(m, powermeter.DefaultPowerSpyConfig())
	if err != nil {
		return stats.ErrorReport{}, err
	}
	raplModel, err := baseline.NewRAPLWallModel(m, platformWatts)
	if err != nil {
		return stats.ErrorReport{}, err
	}
	if _, err := spawnSPECjbb(m, scale); err != nil {
		return stats.ErrorReport{}, err
	}
	steps := int(scale.EvaluationDuration / scale.SampleInterval)
	var estimated, measured []float64
	for s := 0; s < steps; s++ {
		if _, err := m.Run(scale.SampleInterval); err != nil {
			return stats.ErrorReport{}, err
		}
		est, err := raplModel.EstimateWatts()
		if err != nil {
			return stats.ErrorReport{}, err
		}
		estimated = append(estimated, est)
		measured = append(measured, spy.Sample().Watts)
	}
	return stats.CompareSeries(estimated, measured)
}

// Comparison reproduces the Section 4 discussion: PowerAPI on its testbed
// next to the comparator models on theirs. The fig3 argument lets the caller
// reuse an already-computed Figure 3 result (pass nil to recompute).
func Comparison(scale Scale, fig3 *Figure3Result) (ComparisonResult, error) {
	if err := scale.Validate(); err != nil {
		return ComparisonResult{}, err
	}
	var result ComparisonResult

	if fig3 == nil {
		r, err := Figure3(scale, nil)
		if err != nil {
			return ComparisonResult{}, fmt.Errorf("experiments: comparison figure 3: %w", err)
		}
		fig3 = &r
	}
	result.Rows = append(result.Rows, ComparisonRow{
		Model:         "PowerAPI (3 counters, per-frequency)",
		Architecture:  scale.Spec.String(),
		Workload:      "SPECjbb2013-like",
		MedianError:   fig3.Errors.MedianAPE,
		MeanError:     fig3.Errors.MAPE,
		PaperReported: 0.15,
		Note:          "paper reports a 15% median error on SPECjbb2013",
	})

	bertran, err := evaluateBertran(scale)
	if err != nil {
		return ComparisonResult{}, fmt.Errorf("experiments: comparison bertran: %w", err)
	}
	result.Rows = append(result.Rows, ComparisonRow{
		Model:         "Bertran et al. (decomposable, fixed frequency)",
		Architecture:  cpu.IntelCore2DuoE6600().String(),
		Workload:      "SPEC CPU2006-like suite",
		MedianError:   bertran.MedianAPE,
		MeanError:     bertran.MAPE,
		PaperReported: 0.0463,
		Note:          "paper quotes 4.63% average error on a simple architecture",
	})

	cpuLoad, err := evaluateCPULoad(scale)
	if err != nil {
		return ComparisonResult{}, fmt.Errorf("experiments: comparison cpu-load: %w", err)
	}
	result.Rows = append(result.Rows, ComparisonRow{
		Model:         "CPU-load model (Versick et al.)",
		Architecture:  scale.Spec.String(),
		Workload:      "SPECjbb2013-like",
		MedianError:   cpuLoad.MedianAPE,
		MeanError:     cpuLoad.MAPE,
		PaperReported: -1,
		Note:          "coarse baseline the paper argues against",
	})

	rapl, err := evaluateRAPL(scale, fig3.Model.IdleWatts)
	if err != nil {
		return ComparisonResult{}, fmt.Errorf("experiments: comparison rapl: %w", err)
	}
	result.Rows = append(result.Rows, ComparisonRow{
		Model:         "RAPL package + platform constant",
		Architecture:  scale.Spec.String(),
		Workload:      "SPECjbb2013-like",
		MedianError:   rapl.MedianAPE,
		MeanError:     rapl.MAPE,
		PaperReported: -1,
		Note:          "architecture dependent; no per-process attribution",
	})

	result.Rows = append(result.Rows, ComparisonRow{
		Model:         "HaPPy (HyperThread-aware)",
		Architecture:  "private Google benchmarks",
		Workload:      "not reproducible",
		MedianError:   -1,
		MeanError:     -1,
		PaperReported: 0.075,
		Note:          "the paper notes neither the experiments nor the model can be reproduced",
	})
	return result, nil
}

// AblationRow is one counter-selection strategy evaluated on the SPECjbb run.
type AblationRow struct {
	Strategy    string   `json:"strategy"`
	Events      []string `json:"events"`
	MedianError float64  `json:"medianError"`
	MeanError   float64  `json:"meanError"`
}

// AblationResult gathers the ablation rows.
type AblationResult struct {
	Rows []AblationRow
}

// Table renders the ablation.
func (r AblationResult) Table() *report.Table {
	t := report.NewTable("Counter-selection ablation", "Strategy", "Counters", "Median err", "Mean err")
	for _, row := range r.Rows {
		t.AddRow(row.Strategy, fmt.Sprintf("%v", row.Events),
			fmt.Sprintf("%.1f%%", row.MedianError*100),
			fmt.Sprintf("%.1f%%", row.MeanError*100))
	}
	return t
}

// Ablation compares counter-selection strategies (the paper's fixed trio,
// Pearson ranking, Spearman ranking — the planned improvement — and the
// CPU-load-only model) on identical SPECjbb runs.
func Ablation(scale Scale) (AblationResult, error) {
	if err := scale.Validate(); err != nil {
		return AblationResult{}, err
	}
	var result AblationResult

	type strategy struct {
		name   string
		mutate func(*calibration.Options)
	}
	strategies := []strategy{
		{name: "fixed paper counters", mutate: func(o *calibration.Options) { o.FixedEvents = hpc.PaperEvents() }},
		{name: "pearson top-3", mutate: func(o *calibration.Options) {
			o.FixedEvents = nil
			o.SelectionMethod = stats.MethodPearson
			o.TopK = 3
		}},
		{name: "spearman top-3", mutate: func(o *calibration.Options) {
			o.FixedEvents = nil
			o.SelectionMethod = stats.MethodSpearman
			o.TopK = 3
		}},
	}
	for _, strat := range strategies {
		opts := scale.Calibration
		strat.mutate(&opts)
		cfg := machine.DefaultConfig()
		cfg.Spec = scale.Spec
		cfg.Seed = scale.Seed
		cal, err := calibration.New(cfg, opts)
		if err != nil {
			return AblationResult{}, err
		}
		learned, calReport, err := cal.Run()
		if err != nil {
			return AblationResult{}, fmt.Errorf("experiments: ablation %q: %w", strat.name, err)
		}
		points, err := runSPECjbbMonitored(scale, learned)
		if err != nil {
			return AblationResult{}, fmt.Errorf("experiments: ablation %q run: %w", strat.name, err)
		}
		estimated := make([]float64, len(points))
		measured := make([]float64, len(points))
		for i, p := range points {
			estimated[i] = p.Estimated
			measured[i] = p.Measured
		}
		errs, err := stats.CompareSeries(estimated, measured)
		if err != nil {
			return AblationResult{}, err
		}
		result.Rows = append(result.Rows, AblationRow{
			Strategy:    strat.name,
			Events:      calReport.SelectedNames,
			MedianError: errs.MedianAPE,
			MeanError:   errs.MAPE,
		})
	}

	cpuLoad, err := evaluateCPULoad(scale)
	if err != nil {
		return AblationResult{}, err
	}
	result.Rows = append(result.Rows, AblationRow{
		Strategy:    "cpu-load only (no counters)",
		Events:      []string{"utilization"},
		MedianError: cpuLoad.MedianAPE,
		MeanError:   cpuLoad.MAPE,
	})
	return result, nil
}
