package experiments

import (
	"strings"
	"testing"
	"time"

	"powerapi/internal/cpu"
	"powerapi/internal/hpc"
)

func TestScaleValidate(t *testing.T) {
	if err := DefaultScale().Validate(); err != nil {
		t.Fatalf("default scale invalid: %v", err)
	}
	if err := QuickScale().Validate(); err != nil {
		t.Fatalf("quick scale invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Scale)
	}{
		{name: "bad spec", mutate: func(s *Scale) { s.Spec.TDPWatts = -1 }},
		{name: "bad calibration", mutate: func(s *Scale) { s.Calibration.Levels = nil }},
		{name: "bad specjbb", mutate: func(s *Scale) { s.SPECjbb.Steps = 0 }},
		{name: "zero interval", mutate: func(s *Scale) { s.SampleInterval = 0 }},
		{name: "eval longer than workload", mutate: func(s *Scale) { s.EvaluationDuration = s.SPECjbb.Duration * 2 }},
		{name: "zero workers", mutate: func(s *Scale) { s.Workers = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := QuickScale()
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	res, err := Table1(cpu.IntelCorei3_2120())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 13 {
		t.Fatalf("Table 1 has %d rows, want 13", len(res.Rows))
	}
	rendered := res.Table().String()
	for _, want := range []string{"Intel", "2120", "4 threads", "3.30 GHz", "65 W", "TurboBoost"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("Table 1 rendering missing %q:\n%s", want, rendered)
		}
	}
	bad := cpu.IntelCorei3_2120()
	bad.Sockets = 0
	if _, err := Table1(bad); err == nil {
		t.Fatal("invalid spec should fail")
	}
}

func TestLearnModelQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is too slow for -short")
	}
	scale := QuickScale()
	res, err := LearnModel(scale)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Model.Validate(); err != nil {
		t.Fatalf("learned model invalid: %v", err)
	}
	if res.Model.IdleWatts < 28 || res.Model.IdleWatts > 36 {
		t.Fatalf("idle constant %.2f W outside the expected band around the paper's 31.48 W", res.Model.IdleWatts)
	}
	if len(res.Model.Frequencies) != len(scale.Spec.FrequenciesMHz()) {
		t.Fatalf("model covers %d frequencies, want %d", len(res.Model.Frequencies), len(scale.Spec.FrequenciesMHz()))
	}
	if len(res.Comparisons) != 3 {
		t.Fatalf("expected 3 coefficient comparisons, got %d", len(res.Comparisons))
	}
	for _, cmp := range res.Comparisons {
		if cmp.Ratio < 0.1 || cmp.Ratio > 10 {
			t.Fatalf("learned coefficient for %s is %.2fx the paper's value, outside [0.1, 10]", cmp.Event, cmp.Ratio)
		}
	}
	if !strings.Contains(res.Equation, "Power =") {
		t.Fatalf("equation rendering unexpected: %q", res.Equation)
	}
	if res.Table().Rows() == 0 {
		t.Fatal("fit table is empty")
	}
}

func TestFigure3QuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation run is too slow for -short")
	}
	scale := QuickScale()
	res, err := Figure3(scale, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSamples := int(scale.EvaluationDuration / scale.SampleInterval)
	if len(res.Points) != wantSamples {
		t.Fatalf("trace has %d points, want %d", len(res.Points), wantSamples)
	}
	for _, p := range res.Points {
		if p.Measured <= 0 || p.Estimated <= 0 {
			t.Fatalf("non-positive power at %v: measured %.1f estimated %.1f", p.Time, p.Measured, p.Estimated)
		}
	}
	// The paper reports a 15% median error; the simulated reproduction must
	// stay in the same qualitative band (single- to low-double-digit
	// percent), and certainly below 35%.
	if res.Errors.MedianAPE > 0.35 {
		t.Fatalf("median error %.1f%% too large", res.Errors.MedianAPE*100)
	}
	if res.Errors.MedianAPE <= 0 {
		t.Fatal("median error should be positive (the estimate is not exact)")
	}
	if res.Table().Rows() == 0 {
		t.Fatal("figure 3 table empty")
	}
}

func TestComparisonQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison runs several calibrations; too slow for -short")
	}
	scale := QuickScale()
	scale.EvaluationDuration = 90 * time.Second
	fig3, err := Figure3(scale, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Comparison(scale, &fig3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("comparison has %d rows, want 5", len(res.Rows))
	}
	byModel := make(map[string]ComparisonRow, len(res.Rows))
	for _, row := range res.Rows {
		byModel[row.Model] = row
	}
	bertran := byModel["Bertran et al. (decomposable, fixed frequency)"]
	ours := byModel["PowerAPI (3 counters, per-frequency)"]
	if bertran.MeanError <= 0 {
		t.Fatal("bertran error missing")
	}
	// The qualitative shape of the paper's comparison: the decomposable
	// model on the simple architecture is more accurate than PowerAPI's
	// generic-counter model on the SMT machine.
	if bertran.MeanError >= ours.MeanError {
		t.Fatalf("expected Bertran (%.1f%%) to beat PowerAPI (%.1f%%) as in the paper",
			bertran.MeanError*100, ours.MeanError*100)
	}
	if bertran.MeanError > 0.15 {
		t.Fatalf("bertran error %.1f%% too large for a simple architecture", bertran.MeanError*100)
	}
	rendered := res.Table().String()
	for _, want := range []string{"PowerAPI", "Bertran", "CPU-load", "RAPL", "HaPPy"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("comparison table missing %q:\n%s", want, rendered)
		}
	}
}

func TestAblationQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation runs several calibrations; too slow for -short")
	}
	scale := QuickScale()
	scale.EvaluationDuration = 60 * time.Second
	scale.SPECjbb.Duration = 80 * time.Second
	res, err := Ablation(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("ablation has %d rows, want 4", len(res.Rows))
	}
	var fixedErr, loadErr float64
	for _, row := range res.Rows {
		if row.MedianError <= 0 {
			t.Fatalf("row %q has non-positive error", row.Strategy)
		}
		switch row.Strategy {
		case "fixed paper counters":
			fixedErr = row.MedianError
		case "cpu-load only (no counters)":
			loadErr = row.MedianError
		}
	}
	// The paper's core claim: counter-based models beat the CPU-load-only
	// approach.
	if fixedErr >= loadErr {
		t.Fatalf("counter model (%.1f%%) should beat cpu-load model (%.1f%%)", fixedErr*100, loadErr*100)
	}
	if res.Table().Rows() != 4 {
		t.Fatal("ablation table rendering mismatch")
	}
}

func TestSpecCPUSuite(t *testing.T) {
	suite, err := specCPUSuite(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 6 {
		t.Fatalf("suite has %d benchmarks, want 6", len(suite))
	}
	for _, bench := range suite {
		d := bench.Demand(time.Second)
		if d.IsIdle() {
			t.Fatalf("benchmark %s idle at t=1s", bench.Name())
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("benchmark %s demand invalid: %v", bench.Name(), err)
		}
		if !bench.Done(31 * time.Second) {
			t.Fatalf("benchmark %s should end after its duration", bench.Name())
		}
	}
}

func TestLearnModelUsesPaperEventsByDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is too slow for -short")
	}
	scale := QuickScale()
	res, err := LearnModel(scale)
	if err != nil {
		t.Fatal(err)
	}
	events, err := res.Model.Events()
	if err != nil {
		t.Fatal(err)
	}
	want := map[hpc.Event]bool{hpc.Instructions: true, hpc.CacheReferences: true, hpc.CacheMisses: true}
	if len(events) != 3 {
		t.Fatalf("model uses %d events, want 3", len(events))
	}
	for _, e := range events {
		if !want[e] {
			t.Fatalf("unexpected event %v in the headline model", e)
		}
	}
}
