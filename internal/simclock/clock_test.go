package simclock

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewDefaults(t *testing.T) {
	tests := []struct {
		name string
		tick time.Duration
		want time.Duration
	}{
		{name: "zero tick falls back to default", tick: 0, want: DefaultTick},
		{name: "negative tick falls back to default", tick: -time.Second, want: DefaultTick},
		{name: "explicit tick is kept", tick: 25 * time.Millisecond, want: 25 * time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := New(tt.tick)
			if got := c.Tick(); got != tt.want {
				t.Fatalf("Tick() = %v, want %v", got, tt.want)
			}
			if got := c.Now(); got != 0 {
				t.Fatalf("Now() = %v, want 0", got)
			}
		})
	}
}

func TestAdvance(t *testing.T) {
	c := New(10 * time.Millisecond)
	for i := 1; i <= 100; i++ {
		got := c.Advance()
		want := time.Duration(i) * 10 * time.Millisecond
		if got != want {
			t.Fatalf("Advance() #%d = %v, want %v", i, got, want)
		}
	}
	if got := c.Seconds(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Seconds() = %v, want 1.0", got)
	}
}

func TestAdvanceBy(t *testing.T) {
	c := New(time.Millisecond)
	if _, err := c.AdvanceBy(-time.Second); err == nil {
		t.Fatal("AdvanceBy(-1s) should return an error")
	}
	got, err := c.AdvanceBy(2 * time.Second)
	if err != nil {
		t.Fatalf("AdvanceBy: %v", err)
	}
	if got != 2*time.Second {
		t.Fatalf("AdvanceBy = %v, want 2s", got)
	}
}

func TestReset(t *testing.T) {
	c := New(time.Second)
	c.Advance()
	c.Advance()
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() after Reset = %v, want 0", got)
	}
}

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("sources with same seed diverged at draw %d", i)
		}
	}
}

func TestSourceIntnBounds(t *testing.T) {
	s := NewSource(7)
	if got := s.Intn(0); got != 0 {
		t.Fatalf("Intn(0) = %d, want 0", got)
	}
	if got := s.Intn(-5); got != 0 {
		t.Fatalf("Intn(-5) = %d, want 0", got)
	}
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
	}
}

func TestSourcePerm(t *testing.T) {
	s := NewSource(3)
	if got := s.Perm(0); got != nil {
		t.Fatalf("Perm(0) = %v, want nil", got)
	}
	p := s.Perm(16)
	seen := make(map[int]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= 16 {
			t.Fatalf("Perm value out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("Perm repeated value %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 16 {
		t.Fatalf("Perm covered %d values, want 16", len(seen))
	}
}

func TestJitterBounds(t *testing.T) {
	s := NewSource(11)
	f := func(raw float64, amp float64) bool {
		value := math.Abs(math.Mod(raw, 1000))
		amplitude := math.Abs(math.Mod(amp, 1))
		got := s.Jitter(value, amplitude)
		lo := value * (1 - amplitude)
		hi := value * (1 + amplitude)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitterClampsAmplitude(t *testing.T) {
	s := NewSource(13)
	for i := 0; i < 100; i++ {
		got := s.Jitter(10, 5) // amplitude clamped to 1
		if got < 0 || got > 20+1e-9 {
			t.Fatalf("Jitter with clamped amplitude out of range: %v", got)
		}
		if got := s.Jitter(10, -3); got != 10 {
			t.Fatalf("Jitter with negative amplitude = %v, want 10", got)
		}
	}
}

func TestGaussianMean(t *testing.T) {
	s := NewSource(17)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Gaussian(50, 2)
	}
	mean := sum / n
	if math.Abs(mean-50) > 0.1 {
		t.Fatalf("Gaussian sample mean = %v, want ~50", mean)
	}
}

func TestClockConcurrentAccess(t *testing.T) {
	c := New(time.Millisecond)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			c.Advance()
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = c.Now()
		_ = c.Tick()
	}
	<-done
	if got := c.Now(); got != time.Second {
		t.Fatalf("Now() = %v, want 1s", got)
	}
}
