// Package simclock provides a deterministic, discrete simulated clock and
// seeded random sources used by every simulated substrate in this repository.
//
// All simulation components share a single Clock instance so that hardware
// counters, power-meter samples and scheduler decisions agree on the notion
// of "now". The clock only moves when Advance is called by the simulation
// engine, which makes every experiment and test fully reproducible.
package simclock

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Clock is a discrete simulated clock. The zero value is not usable; create
// instances with New.
type Clock struct {
	mu   sync.RWMutex
	now  time.Duration
	tick time.Duration
}

// DefaultTick is the default simulation quantum.
const DefaultTick = 10 * time.Millisecond

// New returns a clock starting at zero with the given tick duration. A
// non-positive tick falls back to DefaultTick.
func New(tick time.Duration) *Clock {
	if tick <= 0 {
		tick = DefaultTick
	}
	return &Clock{tick: tick}
}

// Now returns the current simulated time, expressed as the elapsed duration
// since the start of the simulation.
func (c *Clock) Now() time.Duration {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Tick returns the simulation quantum.
func (c *Clock) Tick() time.Duration {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tick
}

// Advance moves the clock forward by one tick and returns the new time.
func (c *Clock) Advance() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += c.tick
	return c.now
}

// AdvanceBy moves the clock forward by d (which must be non-negative) and
// returns the new time.
func (c *Clock) AdvanceBy(d time.Duration) (time.Duration, error) {
	if d < 0 {
		return 0, fmt.Errorf("simclock: cannot advance by negative duration %v", d)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now, nil
}

// Reset rewinds the clock to zero.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}

// Seconds returns the current simulated time in seconds.
func (c *Clock) Seconds() float64 {
	return c.Now().Seconds()
}

// Source is a deterministic random source scoped to one simulation component.
// Components must not share Sources: each owns its own stream so that adding
// randomness to one component does not perturb another.
type Source struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewSource returns a deterministic random source seeded with seed.
func NewSource(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Float64 returns a pseudo-random number in [0, 1).
func (s *Source) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64()
}

// NormFloat64 returns a normally distributed pseudo-random number with mean 0
// and standard deviation 1.
func (s *Source) NormFloat64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.NormFloat64()
}

// Intn returns a pseudo-random integer in [0, n). It returns 0 when n <= 0
// rather than panicking, so callers can pass untrusted sizes safely.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Intn(n)
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (s *Source) Perm(n int) []int {
	if n <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Perm(n)
}

// Gaussian returns a normally distributed value with the given mean and
// standard deviation.
func (s *Source) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*s.NormFloat64()
}

// Jitter returns value multiplied by a factor uniformly drawn from
// [1-amplitude, 1+amplitude]. Amplitude is clamped to [0, 1].
func (s *Source) Jitter(value, amplitude float64) float64 {
	if amplitude < 0 {
		amplitude = 0
	}
	if amplitude > 1 {
		amplitude = 1
	}
	f := 1 + amplitude*(2*s.Float64()-1)
	return value * f
}
