package machine

import (
	"testing"
	"time"

	"powerapi/internal/cpu"
	"powerapi/internal/hpc"
	"powerapi/internal/proc"
	"powerapi/internal/sched"
	"powerapi/internal/workload"
)

func newTestMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewFillsDefaults(t *testing.T) {
	m := newTestMachine(t, Config{})
	if m.Spec().Model != "2120" {
		t.Fatalf("default spec = %v, want i3-2120", m.Spec().Model)
	}
	if m.Tick() != 10*time.Millisecond {
		t.Fatalf("default tick = %v", m.Tick())
	}
	if m.Topology().NumLogical() != 4 {
		t.Fatalf("logical cpus = %d, want 4", m.Topology().NumLogical())
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	bad := cpu.IntelCorei3_2120()
	bad.TDPWatts = -1
	if _, err := New(Config{Spec: bad}); err == nil {
		t.Fatal("invalid spec should be rejected")
	}
	if _, err := New(Config{PowerNoiseStdDevWatts: -1}); err == nil {
		t.Fatal("negative noise should be rejected")
	}
}

func TestIdleMachinePowerNearPlatformIdle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PowerNoiseStdDevWatts = 0
	m := newTestMachine(t, cfg)
	if _, err := m.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	p := m.TruePowerWatts()
	// The paper isolates ~31.48 W of idle power on this platform; the
	// simulated idle should be in the same region.
	if p < 28 || p > 36 {
		t.Fatalf("idle power = %.2f W, want ~31.5 W", p)
	}
	if m.TotalUtilization() > 0.01 {
		t.Fatalf("idle machine reports utilisation %v", m.TotalUtilization())
	}
}

func TestLoadIncreasesPowerMonotonically(t *testing.T) {
	levels := []float64{0.25, 0.5, 0.75, 1.0}
	var previous float64
	for _, level := range levels {
		cfg := DefaultConfig()
		cfg.PowerNoiseStdDevWatts = 0
		cfg.Governor = cpu.GovernorPerformance
		m := newTestMachine(t, cfg)
		gen, err := workload.CPUStress(level, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Spawn(gen); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(3 * time.Second); err != nil {
			t.Fatal(err)
		}
		p := m.TruePowerWatts()
		if p <= previous {
			t.Fatalf("power at load %v (%.2f W) not above previous (%.2f W)", level, p, previous)
		}
		previous = p
	}
}

func TestFullLoadPowerBelowTDPPlusPlatform(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PowerNoiseStdDevWatts = 0
	cfg.Governor = cpu.GovernorPerformance
	m := newTestMachine(t, cfg)
	for i := 0; i < 4; i++ {
		gen, _ := workload.MemoryStress(1.0, 0)
		if _, err := m.Spawn(gen); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	p := m.TruePowerWatts()
	spec := m.Spec()
	limit := spec.TDPWatts + 35 // platform idle + TDP is a generous ceiling
	if p > limit {
		t.Fatalf("full load power %.2f W above plausible ceiling %.2f W", p, limit)
	}
	if p < 40 {
		t.Fatalf("full load power %.2f W suspiciously low", p)
	}
}

func TestCountersAccrueUnderLoad(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	gen, _ := workload.CPUStress(0.8, 0)
	p, err := m.Spawn(gen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	counts := m.Registry().ReadPID(p.PID())
	if counts[hpc.Instructions] == 0 {
		t.Fatal("no instructions recorded for the busy process")
	}
	if counts[hpc.Cycles] == 0 {
		t.Fatal("no cycles recorded")
	}
	if counts[hpc.CacheReferences] == 0 {
		t.Fatal("no cache references recorded")
	}
	// CPU time should be roughly share * elapsed.
	if p.CPUTime() < 500*time.Millisecond {
		t.Fatalf("CPU time %v too low for a 0.8-utilisation process over 1s", p.CPUTime())
	}
}

func TestMemoryWorkloadHasMoreMissesThanCPUWorkload(t *testing.T) {
	run := func(gen workload.Generator) hpc.Counts {
		cfg := DefaultConfig()
		cfg.PowerNoiseStdDevWatts = 0
		m := newTestMachine(t, cfg)
		p, err := m.Spawn(gen)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		return m.Registry().ReadPID(p.PID())
	}
	cpuGen, _ := workload.CPUStress(0.9, 0)
	memGen, _ := workload.MemoryStress(0.9, 0)
	cpuCounts := run(cpuGen)
	memCounts := run(memGen)

	cpuMissRate := float64(cpuCounts[hpc.CacheMisses]) / float64(cpuCounts[hpc.Instructions])
	memMissRate := float64(memCounts[hpc.CacheMisses]) / float64(memCounts[hpc.Instructions])
	if memMissRate <= cpuMissRate {
		t.Fatalf("memory workload miss rate %v not above cpu workload %v", memMissRate, cpuMissRate)
	}
}

func TestCountersMonotonic(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	gen, _ := workload.CPUStress(0.6, 0)
	if _, err := m.Spawn(gen); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 200; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
		v := m.Registry().ReadSystem()[hpc.Instructions]
		if v < last {
			t.Fatalf("system instruction counter went backwards at step %d", i)
		}
		last = v
	}
}

func TestOndemandGovernorDropsFrequencyWhenIdle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Governor = cpu.GovernorOndemand
	m := newTestMachine(t, cfg)
	if _, err := m.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if f := m.DominantFrequencyMHz(); f != 1600 {
		t.Fatalf("idle ondemand frequency = %d, want 1600", f)
	}
	// Load drives it back up.
	gen, _ := workload.CPUStress(1.0, 0)
	if _, err := m.Spawn(gen); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if f := m.DominantFrequencyMHz(); f != 3300 {
		t.Fatalf("loaded ondemand frequency = %d, want 3300", f)
	}
}

func TestPinAllFrequencies(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	if err := m.PinAllFrequencies(2000); err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.CPUStress(1.0, 0)
	if _, err := m.Spawn(gen); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if f := m.DominantFrequencyMHz(); f != 2000 {
		t.Fatalf("pinned frequency = %d, want 2000", f)
	}
	if err := m.PinAllFrequencies(123); err == nil {
		t.Fatal("off-ladder pin should fail")
	}
	for core := 0; core < m.Topology().NumCores(); core++ {
		f, err := m.FrequencyOfCoreMHz(core)
		if err != nil {
			t.Fatal(err)
		}
		if f != 2000 {
			t.Fatalf("core %d frequency = %d, want 2000", core, f)
		}
	}
	if _, err := m.FrequencyOfCoreMHz(99); err == nil {
		t.Fatal("unknown core should fail")
	}
}

func TestProcessLifecycleAndExitHook(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	var exited []int
	m.SetProcessExitHook(func(pid int) { exited = append(exited, pid) })

	gen, _ := workload.CPUStress(0.5, 500*time.Millisecond)
	p, err := m.Spawn(gen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(exited) != 1 || exited[0] != p.PID() {
		t.Fatalf("exit hook got %v, want [%d]", exited, p.PID())
	}
	if len(m.Processes().Runnable()) != 0 {
		t.Fatal("finished process still runnable")
	}
}

func TestKill(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	gen, _ := workload.CPUStress(0.5, 0)
	p, _ := m.Spawn(gen)
	if err := m.Kill(p.PID()); err != nil {
		t.Fatal(err)
	}
	if err := m.Kill(99999); err == nil {
		t.Fatal("killing unknown pid should fail")
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if counts := m.Registry().ReadPID(p.PID()); counts[hpc.Instructions] != 0 {
		t.Fatal("killed process kept executing")
	}
}

func TestEnergyAccumulates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PowerNoiseStdDevWatts = 0
	m := newTestMachine(t, cfg)
	if _, err := m.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	e := m.EnergyJoules()
	// ~31.5 W for 2 s is ~63 J.
	if e < 55 || e > 75 {
		t.Fatalf("idle energy over 2s = %.1f J, want ~63 J", e)
	}
	if m.CPUEnergyJoules() <= 0 || m.CPUEnergyJoules() >= e {
		t.Fatalf("cpu energy %v should be positive and below wall energy %v", m.CPUEnergyJoules(), e)
	}
}

func TestRunNegativeDuration(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	if _, err := m.Run(-time.Second); err == nil {
		t.Fatal("negative duration should fail")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (float64, uint64) {
		cfg := DefaultConfig()
		cfg.Seed = 7
		m := newTestMachine(t, cfg)
		gen, _ := workload.MemoryStress(0.7, 0)
		if _, err := m.Spawn(gen); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		return m.EnergyJoules(), m.Registry().ReadSystem()[hpc.Instructions]
	}
	e1, i1 := run()
	e2, i2 := run()
	if e1 != e2 || i1 != i2 {
		t.Fatalf("same seed produced different results: %v/%v vs %v/%v", e1, i1, e2, i2)
	}
}

func TestSMTContentionReducesThroughput(t *testing.T) {
	// Two full-load processes pinned to the two hyperthreads of core 0 must
	// retire fewer instructions than two processes on separate cores.
	runPinned := func(cpus [][]int) uint64 {
		cfg := DefaultConfig()
		cfg.PowerNoiseStdDevWatts = 0
		cfg.Governor = cpu.GovernorPerformance
		m := newTestMachine(t, cfg)
		for _, affinity := range cpus {
			gen, _ := workload.CPUStress(1.0, 0)
			if _, err := m.Spawn(gen, proc.WithAffinity(affinity...)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		return m.Registry().ReadSystem()[hpc.Instructions]
	}
	// cpu0 and cpu2 share physical core 0 on the i3-2120 topology.
	sameCore := runPinned([][]int{{0}, {2}})
	separateCores := runPinned([][]int{{0}, {1}})
	if sameCore >= separateCores {
		t.Fatalf("SMT-shared throughput %d not below separate-core throughput %d", sameCore, separateCores)
	}
}

func TestPackingSchedulerUsesFewerCores(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheduler = sched.NewPacking()
	cfg.PowerNoiseStdDevWatts = 0
	m := newTestMachine(t, cfg)
	for i := 0; i < 2; i++ {
		gen, _ := workload.CPUStress(0.3, 0)
		if _, err := m.Spawn(gen); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if m.ActiveCores() != 1 {
		t.Fatalf("packing left %d cores active, want 1", m.ActiveCores())
	}
}

func TestUtilizationAccessorsAreCopies(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	gen, _ := workload.CPUStress(0.5, 0)
	_, _ = m.Spawn(gen)
	_, _ = m.Run(200 * time.Millisecond)
	cu := m.CoreUtilization()
	lu := m.LogicalUtilization()
	if len(cu) != 2 || len(lu) != 4 {
		t.Fatalf("unexpected utilisation lengths %d/%d", len(cu), len(lu))
	}
	cu[0] = 99
	lu[0] = 99
	if m.CoreUtilization()[0] == 99 || m.LogicalUtilization()[0] == 99 {
		t.Fatal("utilisation accessors leaked internal slices")
	}
}
