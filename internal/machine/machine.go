// Package machine ties the CPU model, the process table, the scheduler, the
// workload generators and the HPC registry into a discrete-time simulation of
// a complete host.
//
// The machine also owns the *hidden ground-truth power function*. Nothing in
// the estimation stack reads it directly: the calibration pipeline and the
// PowerAPI middleware only observe hardware counters (internal/hpc) and the
// wall power reported by the simulated PowerSpy meter (internal/powermeter),
// exactly as the paper's toolchain only observes libpfm4 counters and the
// physical power meter. That separation keeps the learning problem honest.
package machine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"powerapi/internal/cpu"
	"powerapi/internal/hpc"
	"powerapi/internal/proc"
	"powerapi/internal/sched"
	"powerapi/internal/simclock"
	"powerapi/internal/workload"
)

// Config assembles a simulated host.
type Config struct {
	// Spec selects the processor (defaults to the paper's Intel Core i3-2120).
	Spec cpu.Spec
	// Governor selects the DVFS policy (defaults to ondemand).
	Governor cpu.Governor
	// Scheduler selects the scheduling policy (defaults to load balancing).
	Scheduler sched.Scheduler
	// Tick is the simulation quantum (defaults to 10 ms).
	Tick time.Duration
	// Seed makes every stochastic component reproducible.
	Seed int64
	// PowerNoiseStdDevWatts is the standard deviation of the measurement and
	// electrical noise added to the true wall power each tick.
	PowerNoiseStdDevWatts float64
}

// DefaultConfig returns the configuration of the paper's testbed: an Intel
// Core i3-2120 with the ondemand governor.
func DefaultConfig() Config {
	return Config{
		Spec:                  cpu.IntelCorei3_2120(),
		Governor:              cpu.GovernorOndemand,
		Scheduler:             sched.NewLoadBalancer(),
		Tick:                  10 * time.Millisecond,
		Seed:                  42,
		PowerNoiseStdDevWatts: 0.45,
	}
}

// Machine is a running simulated host.
type Machine struct {
	cfg       Config
	clock     *simclock.Clock
	topo      *cpu.Topology
	dvfs      *cpu.DVFS
	registry  *hpc.Registry
	procs     *proc.Table
	scheduler sched.Scheduler
	rng       *simclock.Source
	truth     truthModel

	mu           sync.RWMutex
	truePowerW   float64
	cpuPowerW    float64
	dramPowerW   float64
	energyJ      float64
	cpuEnergyJ   float64
	dramEnergyJ  float64
	coreUtil     []float64
	logicalUtil  []float64
	coreIdleFor  []time.Duration
	ticks        uint64
	activeCores  int
	lastFreqMHz  []int
	thermalState float64
	procExitHook func(pid int)

	// scratch holds per-tick buffers reused across Step calls so that a
	// steady-state tick allocates nothing. Step is single-threaded (the
	// simulation loop), so the scratch needs no locking; the committed
	// per-core slices are double-buffered through it (see Step).
	scratch stepScratch
}

// New builds a machine from cfg, filling in defaults for zero fields.
func New(cfg Config) (*Machine, error) {
	if cfg.Spec.Model == "" {
		cfg.Spec = cpu.IntelCorei3_2120()
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	if cfg.Governor == 0 {
		cfg.Governor = cpu.GovernorOndemand
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = sched.NewLoadBalancer()
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 10 * time.Millisecond
	}
	if cfg.PowerNoiseStdDevWatts < 0 {
		return nil, errors.New("machine: negative power noise")
	}
	topo, err := cpu.NewTopology(cfg.Spec)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	dvfs, err := cpu.NewDVFS(cfg.Spec, cfg.Governor)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	m := &Machine{
		cfg:         cfg,
		clock:       simclock.New(cfg.Tick),
		topo:        topo,
		dvfs:        dvfs,
		registry:    hpc.NewRegistry(),
		procs:       proc.NewTable(),
		scheduler:   cfg.Scheduler,
		rng:         simclock.NewSource(cfg.Seed),
		truth:       deriveTruthModel(cfg.Spec),
		coreUtil:    make([]float64, cfg.Spec.PhysicalCores()),
		logicalUtil: make([]float64, cfg.Spec.LogicalCPUs()),
		coreIdleFor: make([]time.Duration, cfg.Spec.PhysicalCores()),
		lastFreqMHz: make([]int, cfg.Spec.PhysicalCores()),
	}
	for core := range m.lastFreqMHz {
		f, err := dvfs.FrequencyOfCore(core)
		if err != nil {
			return nil, fmt.Errorf("machine: %w", err)
		}
		m.lastFreqMHz[core] = f
	}
	// Seed the idle power so that a never-stepped machine still reports a
	// plausible wall power.
	m.truePowerW, m.cpuPowerW = m.truth.idlePower(cfg.Spec, m.coreIdleFor)
	m.dramPowerW = m.truth.dramRefreshW * float64(cfg.Spec.Sockets)
	return m, nil
}

// Spec returns the processor specification of the machine.
func (m *Machine) Spec() cpu.Spec { return m.cfg.Spec }

// Clock returns the machine's simulated clock.
func (m *Machine) Clock() *simclock.Clock { return m.clock }

// Now returns the current simulated time.
func (m *Machine) Now() time.Duration { return m.clock.Now() }

// Tick returns the simulation quantum.
func (m *Machine) Tick() time.Duration { return m.cfg.Tick }

// Topology returns the CPU topology.
func (m *Machine) Topology() *cpu.Topology { return m.topo }

// DVFS returns the frequency manager (the simulated cpufreq subsystem).
func (m *Machine) DVFS() *cpu.DVFS { return m.dvfs }

// Registry returns the hardware-counter registry (the simulated perf
// subsystem). Monitoring code opens hpc.Counters against it.
func (m *Machine) Registry() *hpc.Registry { return m.registry }

// Processes returns the process table.
func (m *Machine) Processes() *proc.Table { return m.procs }

// Spawn starts a new process running the given workload.
func (m *Machine) Spawn(gen workload.Generator, opts ...proc.SpawnOption) (*proc.Process, error) {
	return m.procs.Spawn(gen, m.clock.Now(), opts...)
}

// Kill terminates a process.
func (m *Machine) Kill(pid int) error {
	return m.procs.Kill(pid, m.clock.Now())
}

// SetProcessExitHook registers a callback invoked (synchronously, during
// Step) whenever a process is reaped because its workload completed.
func (m *Machine) SetProcessExitHook(hook func(pid int)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.procExitHook = hook
}

// TruePowerWatts returns the instantaneous ground-truth wall power of the
// machine (what a physical power meter at the socket would see, before the
// meter's own sampling noise). Estimation code must not call this; it exists
// for the power-meter simulator and for evaluation reports.
func (m *Machine) TruePowerWatts() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.truePowerW
}

// CPUPowerWatts returns the ground-truth power of the CPU package alone,
// which is what the RAPL package domain exposes on RAPL-capable specs.
func (m *Machine) CPUPowerWatts() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cpuPowerW
}

// EnergyJoules returns the cumulative wall energy since the machine started.
func (m *Machine) EnergyJoules() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.energyJ
}

// CPUEnergyJoules returns the cumulative CPU-package energy since start.
func (m *Machine) CPUEnergyJoules() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cpuEnergyJ
}

// DRAMPowerWatts returns the ground-truth power of the DRAM subsystem during
// the last tick, the quantity the RAPL DRAM domain integrates. Like the other
// ground-truth accessors it must not be read by estimation code.
func (m *Machine) DRAMPowerWatts() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.dramPowerW
}

// DRAMEnergyJoules returns the cumulative DRAM-subsystem energy since start.
func (m *Machine) DRAMEnergyJoules() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.dramEnergyJ
}

// CoreUtilization returns the per-physical-core utilisation observed during
// the last tick.
func (m *Machine) CoreUtilization() []float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]float64(nil), m.coreUtil...)
}

// LogicalUtilization returns the per-logical-CPU utilisation observed during
// the last tick.
func (m *Machine) LogicalUtilization() []float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]float64(nil), m.logicalUtil...)
}

// TotalUtilization returns the machine-wide CPU utilisation in [0, 1].
func (m *Machine) TotalUtilization() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.logicalUtil) == 0 {
		return 0
	}
	var sum float64
	for _, u := range m.logicalUtil {
		sum += u
	}
	return sum / float64(len(m.logicalUtil))
}

// Ticks returns the number of simulation steps executed.
func (m *Machine) Ticks() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ticks
}

// DominantFrequencyMHz returns the frequency (ladder value) most cores were
// running at during the last tick. It mirrors what monitoring code can read
// from cpufreq's scaling_cur_freq.
func (m *Machine) DominantFrequencyMHz() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	counts := make(map[int]int)
	best, bestCount := 0, -1
	for _, f := range m.lastFreqMHz {
		counts[f]++
		if counts[f] > bestCount || (counts[f] == bestCount && f > best) {
			best, bestCount = f, counts[f]
		}
	}
	return best
}

// FrequencyOfCoreMHz returns the frequency a core ran at during the last
// tick.
func (m *Machine) FrequencyOfCoreMHz(core int) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if core < 0 || core >= len(m.lastFreqMHz) {
		return 0, fmt.Errorf("machine: unknown core %d", core)
	}
	return m.lastFreqMHz[core], nil
}

// Run advances the simulation by d (rounded down to whole ticks) and returns
// the number of ticks executed.
func (m *Machine) Run(d time.Duration) (int, error) {
	if d < 0 {
		return 0, fmt.Errorf("machine: cannot run for negative duration %v", d)
	}
	steps := int(d / m.cfg.Tick)
	for i := 0; i < steps; i++ {
		if err := m.Step(); err != nil {
			return i, err
		}
	}
	return steps, nil
}
