package machine

import (
	"fmt"
	"time"

	"powerapi/internal/cpu"
	"powerapi/internal/hpc"
	"powerapi/internal/proc"
	"powerapi/internal/sched"
	"powerapi/internal/workload"
)

// housekeepingUtilization is the tiny background activity (kernel ticks,
// interrupts) charged to no particular PID on every logical CPU.
const housekeepingUtilization = 0.002

// execution captures the work one assignment performed during a tick.
type execution struct {
	pid          int
	logicalCPU   int
	core         int
	share        float64
	demand       workload.Demand
	instructions float64
	cacheRefs    float64
	cacheMisses  float64
	cycles       float64
	smtShared    bool
	freqMHz      int
}

// stepScratch is the per-tick working set of Step, retained on the Machine so
// steady-state ticks reuse it instead of reallocating. The spare slices
// double-buffer the per-core state committed under the mutex: Step writes the
// next tick into the spare, then swaps it with the committed slice, so
// concurrent readers (which copy under the same mutex) never observe a slice
// being rewritten.
type stepScratch struct {
	runnable           []*proc.Process
	candidates         []sched.Candidate
	demands            map[int]workload.Demand
	processes          map[int]*proc.Process
	busyThreadsPerCore []int
	executions         []execution
	logicalUtilSpare   []float64
	coreUtilSpare      []float64
	idleForSpare       []time.Duration
	freqsSpare         []int
}

// Step advances the simulation by one tick: it schedules runnable processes,
// executes their demands (accruing hardware counters), lets the DVFS governor
// and the C-state logic react, and updates the hidden ground-truth power.
// Step must not be called concurrently with itself.
func (m *Machine) Step() error {
	now := m.clock.Now()
	tickSec := m.cfg.Tick.Seconds()
	s := &m.scratch

	// 1. Reap workloads that finished before this tick.
	reaped := m.procs.Reap(now)
	if len(reaped) > 0 {
		m.mu.RLock()
		hook := m.procExitHook
		m.mu.RUnlock()
		if hook != nil {
			for _, pid := range reaped {
				hook(pid)
			}
		}
	}

	// 2. Collect demands and schedule.
	runnable := m.procs.RunnableAppend(s.runnable[:0])
	s.runnable = runnable
	candidates := s.candidates[:0]
	if s.demands == nil {
		s.demands = make(map[int]workload.Demand, len(runnable))
		s.processes = make(map[int]*proc.Process, len(runnable))
	} else {
		clear(s.demands)
		clear(s.processes)
	}
	demands, processes := s.demands, s.processes
	for _, p := range runnable {
		d := p.Demand(now)
		demands[p.PID()] = d
		processes[p.PID()] = p
		candidates = append(candidates, sched.Candidate{
			PID:         p.PID(),
			Utilization: d.Utilization,
			Affinity:    p.Affinity(),
		})
	}
	s.candidates = candidates
	assignments, err := m.scheduler.Assign(candidates, m.topo)
	if err != nil {
		return fmt.Errorf("machine: schedule at %v: %w", now, err)
	}

	// 3. Determine SMT sharing: which physical cores have more than one busy
	// hyperthread this tick.
	coreOf := m.topo.CoreMap()
	if len(s.busyThreadsPerCore) < m.topo.NumCores() {
		s.busyThreadsPerCore = make([]int, m.topo.NumCores())
	}
	busyThreadsPerCore := s.busyThreadsPerCore[:m.topo.NumCores()]
	for i := range busyThreadsPerCore {
		busyThreadsPerCore[i] = 0
	}
	for _, a := range assignments {
		if a.LogicalCPU < 0 || a.LogicalCPU >= len(coreOf) {
			return fmt.Errorf("machine: cpu: unknown logical cpu %d", a.LogicalCPU)
		}
		if a.Share > 0 {
			busyThreadsPerCore[coreOf[a.LogicalCPU]]++
		}
	}

	// 4. Execute the assignments.
	executions := s.executions[:0]
	if len(s.logicalUtilSpare) < m.topo.NumLogical() {
		s.logicalUtilSpare = make([]float64, m.topo.NumLogical())
	}
	logicalUtil := s.logicalUtilSpare[:m.topo.NumLogical()]
	for i := range logicalUtil {
		logicalUtil[i] = 0
	}
	var counts hpc.CountsVec
	for _, a := range assignments {
		if a.Share <= 0 {
			continue
		}
		d := demands[a.PID]
		core := coreOf[a.LogicalCPU]
		freqMHz, err := m.dvfs.FrequencyOfCore(core)
		if err != nil {
			return fmt.Errorf("machine: %w", err)
		}
		smtShared := busyThreadsPerCore[core] > 1
		ipc := d.IPC
		if smtShared {
			ipc *= m.truth.smtThroughputFactor
		}
		cycles := float64(freqMHz) * 1e6 * tickSec * a.Share
		instructions := cycles * ipc
		cacheRefs := instructions * d.CacheRefsPerKiloInstr / 1000
		cacheMisses := cacheRefs * d.CacheMissRatio
		branches := instructions * d.BranchesPerKiloInstr / 1000
		branchMisses := branches * d.BranchMissRatio
		stalledBackend := cycles * d.MemoryBoundFraction
		stalledFrontend := cycles * 0.04
		busCycles := cycles * (0.02 + 0.25*d.MemoryBoundFraction)
		refCycles := float64(m.cfg.Spec.BaseFrequencyMHz) * 1e6 * tickSec * a.Share

		counts = hpc.CountsVec{}
		counts[hpc.Instructions] = uint64(instructions)
		counts[hpc.CacheReferences] = uint64(cacheRefs)
		counts[hpc.CacheMisses] = uint64(cacheMisses)
		counts[hpc.Cycles] = uint64(cycles)
		counts[hpc.RefCycles] = uint64(refCycles)
		counts[hpc.BranchInstructions] = uint64(branches)
		counts[hpc.BranchMisses] = uint64(branchMisses)
		counts[hpc.BusCycles] = uint64(busCycles)
		counts[hpc.StalledCyclesFrontend] = uint64(stalledFrontend)
		counts[hpc.StalledCyclesBackend] = uint64(stalledBackend)
		if err := m.registry.AccumulateVec(a.PID, a.LogicalCPU, &counts); err != nil {
			return fmt.Errorf("machine: %w", err)
		}
		if p := processes[a.PID]; p != nil {
			p.AddCPUTime(time.Duration(a.Share * float64(m.cfg.Tick)))
		}
		logicalUtil[a.LogicalCPU] += a.Share
		executions = append(executions, execution{
			pid:          a.PID,
			logicalCPU:   a.LogicalCPU,
			core:         core,
			share:        a.Share,
			demand:       d,
			instructions: instructions,
			cacheRefs:    cacheRefs,
			cacheMisses:  cacheMisses,
			cycles:       cycles,
			smtShared:    smtShared,
			freqMHz:      freqMHz,
		})
	}
	s.executions = executions

	// 5. Kernel housekeeping on every logical CPU (charged to no PID).
	for lcpuID := 0; lcpuID < m.topo.NumLogical(); lcpuID++ {
		core := coreOf[lcpuID]
		freqMHz, err := m.dvfs.FrequencyOfCore(core)
		if err != nil {
			return fmt.Errorf("machine: %w", err)
		}
		cycles := float64(freqMHz) * 1e6 * tickSec * housekeepingUtilization
		instr := cycles * 1.0
		counts = hpc.CountsVec{}
		counts[hpc.Instructions] = uint64(instr)
		counts[hpc.Cycles] = uint64(cycles)
		counts[hpc.CacheReferences] = uint64(instr * 0.004)
		counts[hpc.CacheMisses] = uint64(instr * 0.001)
		if err := m.registry.AccumulateVec(hpc.AllPIDs, lcpuID, &counts); err != nil {
			return fmt.Errorf("machine: %w", err)
		}
	}

	// 6. Per-core utilisation, C-state residency and DVFS reaction.
	// A core's utilisation is the utilisation of its busiest hyperthread,
	// which is what the ondemand governor reacts to.
	if len(s.coreUtilSpare) < m.topo.NumCores() {
		s.coreUtilSpare = make([]float64, m.topo.NumCores())
		s.idleForSpare = make([]time.Duration, m.topo.NumCores())
		s.freqsSpare = make([]int, m.topo.NumCores())
	}
	coreUtil := s.coreUtilSpare[:m.topo.NumCores()]
	for i := range coreUtil {
		coreUtil[i] = 0
	}
	for lcpuID, u := range logicalUtil {
		if core := coreOf[lcpuID]; u > coreUtil[core] {
			coreUtil[core] = u
		}
	}
	newIdleFor := s.idleForSpare[:m.topo.NumCores()]
	freqs := s.freqsSpare[:m.topo.NumCores()]
	activeCores := 0
	for core := 0; core < m.topo.NumCores(); core++ {
		if coreUtil[core] > 1 {
			coreUtil[core] = 1
		}
		if coreUtil[core] > 0.005 {
			activeCores++
			newIdleFor[core] = 0
		} else {
			m.mu.RLock()
			prev := m.coreIdleFor[core]
			m.mu.RUnlock()
			newIdleFor[core] = prev + m.cfg.Tick
		}
		f, err := m.dvfs.Adjust(core, coreUtil[core])
		if err != nil {
			return fmt.Errorf("machine: %w", err)
		}
		freqs[core] = f
	}

	// 7. Ground-truth power for this tick.
	idleWall, idlePkg := m.truth.idlePower(m.cfg.Spec, newIdleFor)
	var dynamicJ, dramDynJ float64
	for _, e := range executions {
		dynamicJ += m.truth.dynamicEnergyJoules(m.cfg.Spec, e.freqMHz, e.instructions, e.cacheRefs, e.cacheMisses, e.smtShared)
		dramDynJ += m.truth.dramDynamicEnergyJoules(e.cacheMisses)
	}
	dynamicW := dynamicJ / tickSec
	uncoreW := m.truth.uncorePower(activeCores)
	m.mu.RLock()
	thermalState := m.thermalState
	m.mu.RUnlock()
	thermalState = m.truth.advanceThermal(thermalState, dynamicW, m.cfg.Spec.TDPWatts, m.cfg.Tick)
	thermalW := m.truth.thermalLeakage(thermalState)
	noiseW := m.rng.Gaussian(0, m.cfg.PowerNoiseStdDevWatts)

	// The share of the cache-miss energy dissipated in the DRAM devices
	// belongs to the RAPL DRAM domain, not the package domain — so the
	// package power excludes it, exactly like real RAPL splits the two. The
	// wall power is unaffected: both domains (and the DRAM refresh floor,
	// which lives inside the platform idle) are accounting views of energy
	// already in the wall figure.
	dramDynW := dramDynJ / tickSec
	cpuPower := idlePkg + dynamicW - dramDynW + uncoreW + thermalW
	wallPower := idleWall + dynamicW + uncoreW + thermalW + noiseW
	if wallPower < 0 {
		wallPower = 0
	}
	dramPower := m.truth.dramRefreshW*float64(m.cfg.Spec.Sockets) + dramDynW

	// 8. Commit state and advance the clock. The freshly written per-core
	// slices swap with the previously committed ones, which become next
	// tick's spares; readers copy under the same mutex, so the swap never
	// exposes a slice mid-write.
	m.mu.Lock()
	m.truePowerW = wallPower
	m.cpuPowerW = cpuPower
	m.energyJ += wallPower * tickSec
	m.cpuEnergyJ += cpuPower * tickSec
	m.dramEnergyJ += dramPower * tickSec
	m.dramPowerW = dramPower
	m.coreUtil, s.coreUtilSpare = coreUtil, m.coreUtil
	m.logicalUtil, s.logicalUtilSpare = logicalUtil, m.logicalUtil
	m.coreIdleFor, s.idleForSpare = newIdleFor, m.coreIdleFor
	m.lastFreqMHz, s.freqsSpare = freqs, m.lastFreqMHz
	m.activeCores = activeCores
	m.thermalState = thermalState
	m.ticks++
	m.mu.Unlock()

	m.clock.Advance()
	return nil
}

// ActiveCores returns the number of physical cores that executed work during
// the last tick.
func (m *Machine) ActiveCores() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.activeCores
}

// PinAllFrequencies switches the machine to the userspace governor and pins
// every core to the given ladder frequency. The calibration sweep (Figure 1)
// uses this to learn one power model per frequency.
func (m *Machine) PinAllFrequencies(freqMHz int) error {
	if err := m.dvfs.SetGovernor(cpu.GovernorUserspace); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	if err := m.dvfs.SetAllFrequencies(freqMHz); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	return nil
}

// SetGovernor switches the DVFS governor at runtime.
func (m *Machine) SetGovernor(g cpu.Governor) error {
	return m.dvfs.SetGovernor(g)
}
