package machine

import (
	"math"
	"time"

	"powerapi/internal/cpu"
)

// truthModel is the hidden ground-truth power function of the simulated
// host. Its coefficients for the Intel i3-2120 are anchored on the figures
// the paper publishes for that processor (≈ 31.5 W platform idle, ≈ 2.2 nJ
// per instruction, ≈ 25 nJ per LLC reference, ≈ 190 nJ per LLC miss at
// 3.3 GHz), but the function also contains effects that a per-frequency
// linear counter model cannot capture — uncore activation, C-state
// residency, SMT energy sharing, measurement noise — which is what produces
// the realistic estimation error the evaluation reports.
type truthModel struct {
	// platformIdleW is the wall power of the machine with the CPU fully idle
	// in deep C-states (motherboard, RAM refresh, disk, fans, PSU losses and
	// the CPU's own deep-idle floor).
	platformIdleW float64
	// corePassiveW is the per-core power drawn in C0 while not executing
	// (clock running, no instructions retiring).
	corePassiveW float64
	// uncoreActiveW is added as soon as at least one core is active (LLC,
	// memory controller and ring bus wake up).
	uncoreActiveW float64
	// uncorePerActiveCoreW is added per additional active core.
	uncorePerActiveCoreW float64
	// njPerInstr, njPerCacheRef, njPerCacheMiss are the dynamic energy costs
	// (nanojoules) at the base frequency.
	njPerInstr     float64
	njPerCacheRef  float64
	njPerCacheMiss float64
	// freqExponent scales the core-bound energy per operation with
	// (f/base)^freqExponent, approximating voltage scaling.
	freqExponent float64
	// smtEnergyFactor multiplies the dynamic energy of work executed on a
	// hyperthread whose sibling is simultaneously busy (shared front-end
	// means the marginal energy of the second thread is lower).
	smtEnergyFactor float64
	// smtThroughputFactor multiplies the IPC of a thread whose sibling is
	// simultaneously busy.
	smtThroughputFactor float64
	// dramRefreshW is the background power of the DRAM subsystem (refresh,
	// PLLs) per socket, drawn even when no memory traffic flows. It is an
	// accounting view of energy already contained in platformIdleW: the RAPL
	// DRAM domain exposes it separately, the wall meter cannot.
	dramRefreshW float64
	// dramMissFraction is the fraction of the per-cache-miss energy that is
	// dissipated in the DRAM devices and counted by the RAPL DRAM domain (the
	// rest is spent in the on-package memory controller and interconnect).
	dramMissFraction float64
	// thermalTimeConstant is the time constant of the package heating up
	// under sustained load; thermalLeakageMaxW is the extra leakage power
	// drawn at full thermal saturation. Short calibration bursts barely warm
	// the package, long production runs do — a systematic effect no counter
	// model captures, and one reason the paper observes noticeably higher
	// errors on long benchmarks than the per-frequency fits would suggest.
	thermalTimeConstant time.Duration
	thermalLeakageMaxW  float64
}

// deriveTruthModel derives ground-truth coefficients from a CPU spec. Only
// the machine package uses it.
func deriveTruthModel(spec cpu.Spec) truthModel {
	t := truthModel{
		platformIdleW:        12 + 0.29*spec.TDPWatts,
		corePassiveW:         1.5,
		uncoreActiveW:        1.8,
		uncorePerActiveCoreW: 0.6,
		njPerInstr:           2.22,
		njPerCacheRef:        24.8,
		njPerCacheMiss:       187,
		freqExponent:         1.85,
		smtEnergyFactor:      0.62,
		smtThroughputFactor:  0.62,
		dramRefreshW:         1.1,
		dramMissFraction:     0.6,
		thermalTimeConstant:  90 * time.Second,
		thermalLeakageMaxW:   0.085 * spec.TDPWatts,
	}
	if !spec.HasSMT {
		t.smtEnergyFactor = 1
		t.smtThroughputFactor = 1
	}
	// Older (pre-Nehalem) and non-Intel parts pay more energy per operation;
	// large server parts have a heavier uncore.
	switch {
	case spec.Vendor == "AMD":
		t.njPerInstr *= 1.35
		t.njPerCacheRef *= 1.2
		t.njPerCacheMiss *= 1.15
		t.uncoreActiveW = 2.6
	case spec.L3KB == 0: // pre-Nehalem Intel (Core 2 family)
		t.njPerInstr *= 1.5
		t.njPerCacheRef *= 0.8
		t.njPerCacheMiss *= 1.25
		t.uncoreActiveW = 1.0
	case spec.PhysicalCores() >= 8:
		t.uncoreActiveW = 5.5
		t.uncorePerActiveCoreW = 0.9
	}
	return t
}

// idlePower returns the wall power and CPU-package power of a machine whose
// cores have been idle for the durations given in coreIdleFor.
func (t truthModel) idlePower(spec cpu.Spec, coreIdleFor []time.Duration) (wall, pkg float64) {
	pkg = 0
	for _, idleFor := range coreIdleFor {
		pkg += t.corePassiveW * cpu.IdlePowerFraction(spec, idleFor)
	}
	wall = t.platformIdleW + pkg
	return wall, pkg
}

// dynamicEnergyJoules returns the energy consumed by executing the given
// counter deltas on a core running at freqMHz, with smtShared indicating
// whether the sibling hyperthread was simultaneously busy.
func (t truthModel) dynamicEnergyJoules(spec cpu.Spec, freqMHz int, instructions, cacheRefs, cacheMisses float64, smtShared bool) float64 {
	freqRatio := float64(freqMHz) / float64(spec.BaseFrequencyMHz)
	coreScale := math.Pow(freqRatio, t.freqExponent)
	// Core-bound energy scales with frequency/voltage; memory-bound energy
	// (LLC misses hitting DRAM) does not.
	coreJ := (t.njPerInstr*instructions + t.njPerCacheRef*cacheRefs) * 1e-9 * coreScale
	memJ := t.njPerCacheMiss * cacheMisses * 1e-9
	if smtShared {
		coreJ *= t.smtEnergyFactor
	}
	return coreJ + memJ
}

// dramDynamicEnergyJoules returns the part of the cache-miss energy that the
// DRAM devices dissipate — the dynamic component of the RAPL DRAM domain.
func (t truthModel) dramDynamicEnergyJoules(cacheMisses float64) float64 {
	return t.njPerCacheMiss * cacheMisses * 1e-9 * t.dramMissFraction
}

// uncorePower returns the uncore (LLC, memory controller, interconnect)
// power given the number of active cores during the tick.
func (t truthModel) uncorePower(activeCores int) float64 {
	if activeCores <= 0 {
		return 0
	}
	return t.uncoreActiveW + t.uncorePerActiveCoreW*float64(activeCores-1)
}

// advanceThermal updates the package thermal state (0 = cold, 1 = saturated)
// after one tick during which dynamicW of dynamic power was drawn, and
// returns the new state. The target state is proportional to how close the
// dynamic power is to half the TDP.
func (t truthModel) advanceThermal(state float64, dynamicW float64, tdpWatts float64, tick time.Duration) float64 {
	if t.thermalTimeConstant <= 0 {
		return 0
	}
	target := dynamicW / (0.5 * tdpWatts)
	if target > 1 {
		target = 1
	}
	if target < 0 {
		target = 0
	}
	alpha := tick.Seconds() / t.thermalTimeConstant.Seconds()
	if alpha > 1 {
		alpha = 1
	}
	state += (target - state) * alpha
	if state < 0 {
		state = 0
	}
	if state > 1 {
		state = 1
	}
	return state
}

// thermalLeakage returns the extra leakage power drawn at the given thermal
// state.
func (t truthModel) thermalLeakage(state float64) float64 {
	return t.thermalLeakageMaxW * state
}
