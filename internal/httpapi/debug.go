package httpapi

import (
	"fmt"
	"math"
	"net/http"
	"strings"

	"powerapi/internal/core"
	"powerapi/internal/obs"
)

// This file is the debugging surface of the serving layer: the JSON round
// timeline (/api/v1/debug/rounds), the raw stats snapshot
// (/api/v1/debug/stats) and the observability families appended to /metrics.
// Everything renders from the monitor's shared collector (Stats) and tracer,
// so the numbers here are exactly what a headless daemon would snapshot.

// handleDebugRounds serves the per-round stage timeline of the last rounds
// retained by the trace ring, oldest first: per stage the first/last span
// instants relative to round begin, busy time, span count and the slowest
// shard's attribution.
func (s *Server) handleDebugRounds(w http.ResponseWriter, r *http.Request) {
	tracer := s.mon.Tracer()
	writeJSON(w, map[string]any{
		"capacity": tracer.Capacity(),
		"rounds":   tracer.Rounds(),
	})
}

// handleDebugStats serves the monitor's full observability snapshot — the
// same core.MonitorStats a headless deployment reads via Monitor.Stats().
func (s *Server) handleDebugStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.mon.Stats())
}

// promBound renders a histogram bucket bound the way Prometheus spells it.
func promBound(upperSeconds float64) string {
	if math.IsInf(upperSeconds, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", upperSeconds)
}

// writeHistogramSeries emits the _bucket/_sum/_count series of one histogram
// metric. labels is either empty or a trailing-comma'd label prefix
// (`stage="sensor",`).
func writeHistogramSeries(b *strings.Builder, name, labels string, st obs.StageStats) {
	for _, bucket := range st.Buckets {
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", name, labels, promBound(bucket.UpperSeconds), bucket.Count)
	}
	if len(st.Buckets) == 0 {
		// A histogram always carries its +Inf bucket, even before any sample.
		fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, st.Count)
	}
	sumName, countName := name+"_sum", name+"_count"
	if labels != "" {
		sumName += "{" + strings.TrimSuffix(labels, ",") + "}"
		countName += "{" + strings.TrimSuffix(labels, ",") + "}"
	}
	fmt.Fprintf(b, "%s %g\n", sumName, st.SumSeconds)
	fmt.Fprintf(b, "%s %d\n", countName, st.Count)
}

// writeQuantileSeries emits p50/p90/p99 gauges for one latency summary.
func writeQuantileSeries(b *strings.Builder, name, labels string, st obs.StageStats) {
	for _, q := range [...]struct {
		label string
		value float64
	}{{"0.5", st.P50Seconds}, {"0.9", st.P90Seconds}, {"0.99", st.P99Seconds}} {
		fmt.Fprintf(b, "%s{%squantile=%q} %g\n", name, labels, q.label, q.value)
	}
}

// writeObsMetrics appends the pipeline self-observability families to the
// /metrics exposition: pending/slot/pool gauges, the end-to-end round
// duration histogram, per-stage latency histograms and quantiles, and the
// self-power meter readings.
func writeObsMetrics(b *strings.Builder, stats core.MonitorStats) {
	b.WriteString("# HELP powerapi_pending_rounds Sampling rounds in flight inside the aggregator.\n")
	b.WriteString("# TYPE powerapi_pending_rounds gauge\n")
	fmt.Fprintf(b, "powerapi_pending_rounds %d\n", stats.PendingRounds)
	b.WriteString("# HELP powerapi_slot_index_live Targets attached to the dense round-slot index.\n")
	b.WriteString("# TYPE powerapi_slot_index_live gauge\n")
	fmt.Fprintf(b, "powerapi_slot_index_live %d\n", stats.SlotsLive)
	b.WriteString("# HELP powerapi_slot_index_capacity Backing-array length of the round-slot index (live plus not-yet-compacted free slots).\n")
	b.WriteString("# TYPE powerapi_slot_index_capacity gauge\n")
	fmt.Fprintf(b, "powerapi_slot_index_capacity %d\n", stats.SlotsCapacity)
	b.WriteString("# HELP powerapi_trace_ring_capacity Rounds retained by the debug trace ring.\n")
	b.WriteString("# TYPE powerapi_trace_ring_capacity gauge\n")
	fmt.Fprintf(b, "powerapi_trace_ring_capacity %d\n", stats.TraceCapacity)
	b.WriteString("# HELP powerapi_report_pool_gets_total Pooled reports leased, process-wide.\n")
	b.WriteString("# TYPE powerapi_report_pool_gets_total counter\n")
	fmt.Fprintf(b, "powerapi_report_pool_gets_total %d\n", stats.ReportPool.Gets)
	b.WriteString("# HELP powerapi_report_pool_misses_total Report-pool misses (fresh allocations), process-wide.\n")
	b.WriteString("# TYPE powerapi_report_pool_misses_total counter\n")
	fmt.Fprintf(b, "powerapi_report_pool_misses_total %d\n", stats.ReportPool.Misses)
	b.WriteString("# HELP powerapi_report_pool_puts_total Pooled reports recycled, process-wide.\n")
	b.WriteString("# TYPE powerapi_report_pool_puts_total counter\n")
	fmt.Fprintf(b, "powerapi_report_pool_puts_total %d\n", stats.ReportPool.Puts)
	b.WriteString("# HELP powerapi_report_pool_outstanding Leased reports not yet released: in-flight rounds plus leaked leases.\n")
	b.WriteString("# TYPE powerapi_report_pool_outstanding gauge\n")
	fmt.Fprintf(b, "powerapi_report_pool_outstanding %d\n", stats.ReportPool.Outstanding)

	b.WriteString("# HELP powerapi_round_duration_seconds End-to-end duration of one sampling round, sensor tick to fanout.\n")
	b.WriteString("# TYPE powerapi_round_duration_seconds histogram\n")
	writeHistogramSeries(b, "powerapi_round_duration_seconds", "", stats.Round)
	b.WriteString("# HELP powerapi_round_duration_quantile_seconds Round-duration quantiles since startup.\n")
	b.WriteString("# TYPE powerapi_round_duration_quantile_seconds gauge\n")
	writeQuantileSeries(b, "powerapi_round_duration_quantile_seconds", "", stats.Round)

	if len(stats.Stages) > 0 {
		b.WriteString("# HELP powerapi_stage_duration_seconds Latency of one pipeline stage span since startup.\n")
		b.WriteString("# TYPE powerapi_stage_duration_seconds histogram\n")
		for _, st := range stats.Stages {
			writeHistogramSeries(b, "powerapi_stage_duration_seconds", fmt.Sprintf("stage=%q,", st.Stage), st)
		}
		b.WriteString("# HELP powerapi_stage_duration_quantile_seconds Per-stage latency quantiles since startup.\n")
		b.WriteString("# TYPE powerapi_stage_duration_quantile_seconds gauge\n")
		for _, st := range stats.Stages {
			writeQuantileSeries(b, "powerapi_stage_duration_quantile_seconds", fmt.Sprintf("stage=%q,", st.Stage), st)
		}
	}

	if stats.Self.Enabled {
		b.WriteString("# HELP powerapi_self_watts Power attributed to the monitoring process itself.\n")
		b.WriteString("# TYPE powerapi_self_watts gauge\n")
		fmt.Fprintf(b, "powerapi_self_watts %g\n", stats.Self.Watts)
		b.WriteString("# HELP powerapi_self_cpu_seconds_total CPU time consumed by the monitoring process.\n")
		b.WriteString("# TYPE powerapi_self_cpu_seconds_total counter\n")
		fmt.Fprintf(b, "powerapi_self_cpu_seconds_total %g\n", stats.Self.CPUSeconds)
	}
}
