package httpapi

import (
	"fmt"
	"strings"
	"sync"

	"powerapi/internal/vmbridge"
)

// This file exposes the VM-bridge transports of a daemon on its /metrics
// exposition: per-connection sent/dropped counters of every registered
// publisher (one row per downstream collector or guest, labelled by remote
// address and negotiated codec) and decode-error/drop counters of every
// registered receiver. Registration is explicit — the daemon wires in the
// transports it actually opened — so a daemon without bridges pays nothing.

// bridgeSet is the registered bridge transports of one server, scraped on
// every /metrics render.
type bridgeSet struct {
	mu        sync.Mutex
	pubs      []namedPublisher
	receivers []namedReceiver
}

type namedPublisher struct {
	name string
	pub  *vmbridge.TCPPublisher
}

type namedReceiver struct {
	name string
	recv *vmbridge.TCPReceiver
}

// RegisterBridgePublisher adds one TCP publisher's per-connection counters to
// the /metrics exposition under the given name ("vm-publish",
// "fleet-publish", ...).
func (s *Server) RegisterBridgePublisher(name string, p *vmbridge.TCPPublisher) {
	if p == nil {
		return
	}
	s.bridges.mu.Lock()
	s.bridges.pubs = append(s.bridges.pubs, namedPublisher{name: name, pub: p})
	s.bridges.mu.Unlock()
}

// RegisterBridgeReceiver adds one TCP receiver's decode-error and drop
// counters to the /metrics exposition under the given name.
func (s *Server) RegisterBridgeReceiver(name string, r *vmbridge.TCPReceiver) {
	if r == nil {
		return
	}
	s.bridges.mu.Lock()
	s.bridges.receivers = append(s.bridges.receivers, namedReceiver{name: name, recv: r})
	s.bridges.mu.Unlock()
}

// writeBridgeMetrics appends the bridge transport families to a /metrics
// exposition.
func (bs *bridgeSet) writeBridgeMetrics(b *strings.Builder) {
	bs.mu.Lock()
	pubs := append([]namedPublisher(nil), bs.pubs...)
	receivers := append([]namedReceiver(nil), bs.receivers...)
	bs.mu.Unlock()
	if len(pubs) > 0 {
		b.WriteString("# HELP powerapi_bridge_connections Live downstream connections on one bridge publisher.\n")
		b.WriteString("# TYPE powerapi_bridge_connections gauge\n")
		for _, np := range pubs {
			fmt.Fprintf(b, "powerapi_bridge_connections{publisher=%q} %d\n", escapeLabel(np.name), np.pub.Connections())
		}
		b.WriteString("# HELP powerapi_bridge_published_frames_total Frames handed to one bridge publisher for delivery.\n")
		b.WriteString("# TYPE powerapi_bridge_published_frames_total counter\n")
		for _, np := range pubs {
			fmt.Fprintf(b, "powerapi_bridge_published_frames_total{publisher=%q} %d\n", escapeLabel(np.name), np.pub.Sent())
		}
		b.WriteString("# HELP powerapi_bridge_conn_sent_frames_total Frames written to one downstream connection.\n")
		b.WriteString("# TYPE powerapi_bridge_conn_sent_frames_total counter\n")
		for _, np := range pubs {
			for _, cs := range np.pub.ConnStats() {
				fmt.Fprintf(b, "powerapi_bridge_conn_sent_frames_total{publisher=%q,remote=%q,codec=%q} %d\n",
					escapeLabel(np.name), escapeLabel(cs.Remote), cs.Codec, cs.SentFrames)
			}
		}
		b.WriteString("# HELP powerapi_bridge_conn_dropped_batches_total Frame batches evicted unsent from one slow downstream connection's queue.\n")
		b.WriteString("# TYPE powerapi_bridge_conn_dropped_batches_total counter\n")
		for _, np := range pubs {
			for _, cs := range np.pub.ConnStats() {
				fmt.Fprintf(b, "powerapi_bridge_conn_dropped_batches_total{publisher=%q,remote=%q,codec=%q} %d\n",
					escapeLabel(np.name), escapeLabel(cs.Remote), cs.Codec, cs.DroppedBatches)
			}
		}
	}
	if len(receivers) > 0 {
		b.WriteString("# HELP powerapi_bridge_decode_errors_total Wire messages one bridge receiver failed to decode.\n")
		b.WriteString("# TYPE powerapi_bridge_decode_errors_total counter\n")
		for _, nr := range receivers {
			fmt.Fprintf(b, "powerapi_bridge_decode_errors_total{receiver=%q,codec=%q} %d\n",
				escapeLabel(nr.name), nr.recv.Codec(), nr.recv.DecodeErrors())
		}
		b.WriteString("# HELP powerapi_bridge_receiver_dropped_frames_total Decoded frames one bridge receiver's buffer evicted unread.\n")
		b.WriteString("# TYPE powerapi_bridge_receiver_dropped_frames_total counter\n")
		for _, nr := range receivers {
			fmt.Fprintf(b, "powerapi_bridge_receiver_dropped_frames_total{receiver=%q,codec=%q} %d\n",
				escapeLabel(nr.name), nr.recv.Codec(), nr.recv.DroppedFrames())
		}
	}
}
