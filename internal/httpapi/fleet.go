package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"powerapi/internal/collector"
	"powerapi/internal/core"
	"powerapi/internal/history"
)

// FleetServer serves one fleet collector over HTTP — the cluster tier's
// counterpart of Server. The endpoint shape deliberately mirrors the daemon
// so the same tooling scrapes both:
//
//	GET /metrics              fleet totals, per-node watts and link health,
//	                          fleet-wide per-route-key watts, rollup latency,
//	                          node health states and event counters
//	GET /api/v1/fleet         the latest fleet round as JSON
//	GET /api/v1/nodes         per-node link state (the gather health surface)
//	POST /api/v1/nodes        join a daemon address to the gather set
//	                          (body: {"addr":"host:port"})
//	DELETE /api/v1/nodes      retire a daemon address (?addr=host:port)
//	GET /api/v1/health        the node health model: states, lag/skew
//	                          estimates, end-to-end latency distribution
//	GET /api/v1/events        the event journal (?since=SEQ&limit=N)
//	GET /api/v1/query         windowed avg/max/p95 over fleet history
//	                          (kind=node selects per-node series)
//	GET /api/v1/debug/rounds  rollup/fanout stage timeline per fleet round
//	GET /api/v1/debug/stats   the full collector.Stats snapshot
//
// Like Server, it keeps the latest round through its own Conflate
// subscription, so scrape traffic never touches the rollup hot path.
type FleetServer struct {
	col    *collector.Collector
	sub    *collector.Subscription
	latest atomic.Pointer[collector.FleetReport]
	mux    *http.ServeMux
	wg     sync.WaitGroup
}

// NewFleet wires a fleet server onto a collector; Close releases its
// subscription.
func NewFleet(col *collector.Collector) (*FleetServer, error) {
	if col == nil {
		return nil, errors.New("httpapi: nil collector")
	}
	sub, err := col.Subscribe(collector.SubscribeOptions{Name: "httpapi-fleet", Policy: core.Conflate})
	if err != nil {
		return nil, fmt.Errorf("httpapi: %w", err)
	}
	f := &FleetServer{col: col, sub: sub, mux: http.NewServeMux()}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for rep := range sub.C() {
			// Handlers read the stored round concurrently; keep a private deep
			// copy and give the pooled buffer straight back to the collector.
			clone := rep.Clone()
			rep.Release()
			f.latest.Store(clone)
		}
	}()
	f.mux.HandleFunc("GET /metrics", f.handleMetrics)
	f.mux.HandleFunc("GET /api/v1/fleet", f.handleFleet)
	f.mux.HandleFunc("GET /api/v1/nodes", f.handleNodes)
	f.mux.HandleFunc("POST /api/v1/nodes", f.handleNodeAdd)
	f.mux.HandleFunc("DELETE /api/v1/nodes", f.handleNodeRemove)
	f.mux.HandleFunc("GET /api/v1/health", f.handleHealth)
	f.mux.HandleFunc("GET /api/v1/events", f.handleEvents)
	f.mux.HandleFunc("GET /api/v1/query", f.handleQuery)
	f.mux.HandleFunc("GET /api/v1/debug/rounds", f.handleDebugRounds)
	f.mux.HandleFunc("GET /api/v1/debug/stats", f.handleDebugStats)
	return f, nil
}

// Handler returns the HTTP handler serving every fleet endpoint.
func (f *FleetServer) Handler() http.Handler { return f.mux }

// Close releases the server's subscription; the last stored round keeps
// serving. Safe to call more than once.
func (f *FleetServer) Close() {
	f.sub.Close()
	f.wg.Wait()
}

// Latest returns the most recent fleet round the server has observed (nil
// before the first completed round). The returned report is a private clone;
// callers may read it freely and must not mutate it.
func (f *FleetServer) Latest() *FleetReport { return f.latest.Load() }

// FleetReport re-exports the collector's round type for Latest's callers.
type FleetReport = collector.FleetReport

// sortedKeys returns a map's keys in stable order (scrape output must be
// deterministic; this is the cold serving path, allocation is fine here).
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// handleMetrics serves the Prometheus text exposition of the latest fleet
// round plus the gather-link and rollup-latency families.
func (f *FleetServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	//powerapi:allow leasecheck stored round is a private clone owned by this server, not a pooled lease
	rep := f.latest.Load()
	if rep == nil {
		jsonError(w, http.StatusServiceUnavailable, errors.New("no completed fleet round yet"))
		return
	}
	stats := f.col.Stats()
	var b strings.Builder
	b.WriteString("# HELP powerapi_fleet_total_watts Fleet-wide power of the latest round (sum of live node totals).\n")
	b.WriteString("# TYPE powerapi_fleet_total_watts gauge\n")
	fmt.Fprintf(&b, "powerapi_fleet_total_watts %g\n", rep.TotalWatts)
	b.WriteString("# HELP powerapi_fleet_nodes Nodes by rollup state in the latest round.\n")
	b.WriteString("# TYPE powerapi_fleet_nodes gauge\n")
	fmt.Fprintf(&b, "powerapi_fleet_nodes{state=\"live\"} %d\n", rep.Nodes)
	fmt.Fprintf(&b, "powerapi_fleet_nodes{state=\"stale\"} %d\n", rep.StaleNodes)
	b.WriteString("# HELP powerapi_fleet_rounds_total Completed fleet rollup rounds.\n")
	b.WriteString("# TYPE powerapi_fleet_rounds_total counter\n")
	fmt.Fprintf(&b, "powerapi_fleet_rounds_total %d\n", stats.Rounds)
	b.WriteString("# HELP powerapi_fleet_round_timestamp_seconds Instant of the latest fleet round since collector start.\n")
	b.WriteString("# TYPE powerapi_fleet_round_timestamp_seconds gauge\n")
	fmt.Fprintf(&b, "powerapi_fleet_round_timestamp_seconds %g\n", rep.Timestamp.Seconds())
	b.WriteString("# HELP powerapi_fleet_keys Distinct route keys the fleet has ever reported.\n")
	b.WriteString("# TYPE powerapi_fleet_keys gauge\n")
	fmt.Fprintf(&b, "powerapi_fleet_keys %d\n", stats.Keys)

	b.WriteString("# HELP powerapi_node_watts Power of one node in the latest fleet round.\n")
	b.WriteString("# TYPE powerapi_node_watts gauge\n")
	for _, name := range sortedKeys(rep.PerNode) {
		fmt.Fprintf(&b, "powerapi_node_watts{node=%q} %g\n", escapeLabel(name), rep.PerNode[name])
	}
	b.WriteString("# HELP powerapi_fleet_target_watts Power of one route key summed across every node reporting it.\n")
	b.WriteString("# TYPE powerapi_fleet_target_watts gauge\n")
	for _, key := range sortedKeys(rep.PerTarget) {
		fmt.Fprintf(&b, "powerapi_fleet_target_watts{key=%q} %g\n", escapeLabel(key), rep.PerTarget[key])
	}
	if stats.Self.Enabled {
		// The collector's own cost as a first-class row next to the fleet it
		// rolls up — the same continuously-verified overhead claim the daemon
		// makes for its pipeline.
		fmt.Fprintf(&b, "powerapi_fleet_target_watts{key=\"self:powerapi-self\"} %g\n", rep.SelfWatts)
	}

	writeNodeLinkMetrics(&b, stats.Nodes)
	writeNodeHealthMetrics(&b, stats)
	writeEventMetrics(&b, stats)
	if e2e := f.col.E2EStats(); e2e.Count > 0 {
		b.WriteString("# HELP powerapi_fleet_e2e_latency_seconds End-to-end fleet latency: daemon frame emit to collector rollup, provenance-stamped frames only.\n")
		b.WriteString("# TYPE powerapi_fleet_e2e_latency_seconds histogram\n")
		writeHistogramSeries(&b, "powerapi_fleet_e2e_latency_seconds", "", e2e)
		b.WriteString("# HELP powerapi_fleet_e2e_latency_quantile_seconds End-to-end fleet latency quantiles since startup.\n")
		b.WriteString("# TYPE powerapi_fleet_e2e_latency_quantile_seconds gauge\n")
		writeQuantileSeries(&b, "powerapi_fleet_e2e_latency_quantile_seconds", "", e2e)
	}

	fmt.Fprintf(&b, "# HELP powerapi_subscriptions Live fleet-report subscriptions on the fanout.\n")
	fmt.Fprintf(&b, "# TYPE powerapi_subscriptions gauge\n")
	fmt.Fprintf(&b, "powerapi_subscriptions %d\n", len(stats.Subscriptions))
	if len(stats.Subscriptions) > 0 {
		b.WriteString("# HELP powerapi_subscription_delivered_total Reports placed into one subscription's channel.\n")
		b.WriteString("# TYPE powerapi_subscription_delivered_total counter\n")
		for _, st := range stats.Subscriptions {
			fmt.Fprintf(&b, "powerapi_subscription_delivered_total{id=\"%d\",name=%q,policy=\"%s\"} %d\n",
				st.ID, escapeLabel(st.Name), st.Policy, st.Delivered)
		}
		b.WriteString("# HELP powerapi_subscription_dropped_total Delivered reports evicted unread from one subscription's channel.\n")
		b.WriteString("# TYPE powerapi_subscription_dropped_total counter\n")
		for _, st := range stats.Subscriptions {
			fmt.Fprintf(&b, "powerapi_subscription_dropped_total{id=\"%d\",name=%q,policy=\"%s\"} %d\n",
				st.ID, escapeLabel(st.Name), st.Policy, st.Dropped)
		}
	}

	tracer := f.col.Tracer()
	b.WriteString("# HELP powerapi_fleet_round_duration_seconds End-to-end duration of one fleet rollup round.\n")
	b.WriteString("# TYPE powerapi_fleet_round_duration_seconds histogram\n")
	writeHistogramSeries(&b, "powerapi_fleet_round_duration_seconds", "", tracer.RoundStats())
	b.WriteString("# HELP powerapi_fleet_round_duration_quantile_seconds Fleet round-duration quantiles since startup.\n")
	b.WriteString("# TYPE powerapi_fleet_round_duration_quantile_seconds gauge\n")
	writeQuantileSeries(&b, "powerapi_fleet_round_duration_quantile_seconds", "", tracer.RoundStats())
	if stages := tracer.StageStats(); len(stages) > 0 {
		b.WriteString("# HELP powerapi_stage_duration_seconds Latency of one collector stage span since startup.\n")
		b.WriteString("# TYPE powerapi_stage_duration_seconds histogram\n")
		for _, st := range stages {
			writeHistogramSeries(&b, "powerapi_stage_duration_seconds", fmt.Sprintf("stage=%q,", st.Stage), st)
		}
		b.WriteString("# HELP powerapi_stage_duration_quantile_seconds Per-stage latency quantiles since startup.\n")
		b.WriteString("# TYPE powerapi_stage_duration_quantile_seconds gauge\n")
		for _, st := range stages {
			writeQuantileSeries(&b, "powerapi_stage_duration_quantile_seconds", fmt.Sprintf("stage=%q,", st.Stage), st)
		}
	}
	if stats.Self.Enabled {
		b.WriteString("# HELP powerapi_self_watts Power attributed to the collector process itself.\n")
		b.WriteString("# TYPE powerapi_self_watts gauge\n")
		fmt.Fprintf(&b, "powerapi_self_watts %g\n", stats.Self.Watts)
		b.WriteString("# HELP powerapi_self_cpu_seconds_total CPU time consumed by the collector process.\n")
		b.WriteString("# TYPE powerapi_self_cpu_seconds_total counter\n")
		fmt.Fprintf(&b, "powerapi_self_cpu_seconds_total %g\n", stats.Self.CPUSeconds)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// writeNodeLinkMetrics appends the per-link gather health families: one row
// per joined node, labelled by dial address and learned node name.
func writeNodeLinkMetrics(b *strings.Builder, nodes []collector.NodeStats) {
	if len(nodes) == 0 {
		return
	}
	row := func(name string, value func(collector.NodeStats) string) {
		for _, n := range nodes {
			fmt.Fprintf(b, "%s{addr=%q,node=%q} %s\n", name, escapeLabel(n.Addr), escapeLabel(n.Name), value(n))
		}
	}
	bool01 := func(v bool) string {
		if v {
			return "1"
		}
		return "0"
	}
	b.WriteString("# HELP powerapi_node_link_connected Whether the gather link to one node is up.\n")
	b.WriteString("# TYPE powerapi_node_link_connected gauge\n")
	row("powerapi_node_link_connected", func(n collector.NodeStats) string { return bool01(n.Connected) })
	b.WriteString("# HELP powerapi_node_link_stale Whether the rollup is currently skipping one node.\n")
	b.WriteString("# TYPE powerapi_node_link_stale gauge\n")
	row("powerapi_node_link_stale", func(n collector.NodeStats) string { return bool01(n.Stale) })
	b.WriteString("# HELP powerapi_node_link_frames_total Frames committed from one node.\n")
	b.WriteString("# TYPE powerapi_node_link_frames_total counter\n")
	row("powerapi_node_link_frames_total", func(n collector.NodeStats) string { return fmt.Sprintf("%d", n.Frames) })
	b.WriteString("# HELP powerapi_node_link_bytes_total Wire bytes read from one node.\n")
	b.WriteString("# TYPE powerapi_node_link_bytes_total counter\n")
	row("powerapi_node_link_bytes_total", func(n collector.NodeStats) string { return fmt.Sprintf("%d", n.Bytes) })
	b.WriteString("# HELP powerapi_node_link_decode_errors_total Undecodable payloads received from one node.\n")
	b.WriteString("# TYPE powerapi_node_link_decode_errors_total counter\n")
	row("powerapi_node_link_decode_errors_total", func(n collector.NodeStats) string { return fmt.Sprintf("%d", n.DecodeErrors) })
	b.WriteString("# HELP powerapi_node_link_dropped_payloads_total Payloads shed by one node's drop-oldest ingest ring.\n")
	b.WriteString("# TYPE powerapi_node_link_dropped_payloads_total counter\n")
	row("powerapi_node_link_dropped_payloads_total", func(n collector.NodeStats) string { return fmt.Sprintf("%d", n.DroppedPayloads) })
	b.WriteString("# HELP powerapi_node_link_reconnects_total Times the gather link to one node was re-established.\n")
	b.WriteString("# TYPE powerapi_node_link_reconnects_total counter\n")
	row("powerapi_node_link_reconnects_total", func(n collector.NodeStats) string { return fmt.Sprintf("%d", n.Reconnects) })
	b.WriteString("# HELP powerapi_node_link_stale_skips_total Fleet rounds that skipped one node as stale.\n")
	b.WriteString("# TYPE powerapi_node_link_stale_skips_total counter\n")
	row("powerapi_node_link_stale_skips_total", func(n collector.NodeStats) string { return fmt.Sprintf("%d", n.StaleSkips) })
}

// writeNodeHealthMetrics appends the health model's families: one 0/1 row
// per node per state (the conventional state-set encoding, so dashboards sum
// by state without knowing node names) plus the per-node provenance gauges.
func writeNodeHealthMetrics(b *strings.Builder, stats collector.Stats) {
	if len(stats.Nodes) == 0 {
		return
	}
	b.WriteString("# HELP powerapi_fleet_node_state Node health state (1 on the node's current state, 0 elsewhere).\n")
	b.WriteString("# TYPE powerapi_fleet_node_state gauge\n")
	for _, n := range stats.Nodes {
		for _, state := range collector.NodeStateNames() {
			v := 0
			if n.State == state {
				v = 1
			}
			fmt.Fprintf(b, "powerapi_fleet_node_state{addr=%q,node=%q,state=%q} %d\n",
				escapeLabel(n.Addr), escapeLabel(n.Name), state, v)
		}
	}
	row := func(name string, value func(collector.NodeStats) string) {
		for _, n := range stats.Nodes {
			fmt.Fprintf(b, "%s{addr=%q,node=%q} %s\n", name, escapeLabel(n.Addr), escapeLabel(n.Name), value(n))
		}
	}
	b.WriteString("# HELP powerapi_node_link_lag_seconds Provenance-estimated ingest lag of one node's last frame over its best-ever delivery.\n")
	b.WriteString("# TYPE powerapi_node_link_lag_seconds gauge\n")
	row("powerapi_node_link_lag_seconds", func(n collector.NodeStats) string { return fmt.Sprintf("%g", n.LagSeconds) })
	b.WriteString("# HELP powerapi_node_link_skew_seconds Provenance-estimated clock drift of one node since connect (EWMA offset minus baseline).\n")
	b.WriteString("# TYPE powerapi_node_link_skew_seconds gauge\n")
	row("powerapi_node_link_skew_seconds", func(n collector.NodeStats) string { return fmt.Sprintf("%g", n.SkewSeconds) })
	b.WriteString("# HELP powerapi_node_link_seq_gaps_total Frames lost to sequence gaps on one node's link.\n")
	b.WriteString("# TYPE powerapi_node_link_seq_gaps_total counter\n")
	row("powerapi_node_link_seq_gaps_total", func(n collector.NodeStats) string { return fmt.Sprintf("%d", n.SeqGaps) })
	b.WriteString("# HELP powerapi_node_link_violations_total Contract violation edges detected on one node (conservation drift, power spikes, malformed rows, gaps).\n")
	b.WriteString("# TYPE powerapi_node_link_violations_total counter\n")
	row("powerapi_node_link_violations_total", func(n collector.NodeStats) string { return fmt.Sprintf("%d", n.Violations) })
}

// writeEventMetrics appends the journal counters: per-type append totals over
// the journal's lifetime plus the overflow count of its bounded ring.
func writeEventMetrics(b *strings.Builder, stats collector.Stats) {
	b.WriteString("# HELP powerapi_fleet_events_total Journal events recorded, by type.\n")
	b.WriteString("# TYPE powerapi_fleet_events_total counter\n")
	for _, typ := range collector.EventTypeNames() {
		fmt.Fprintf(b, "powerapi_fleet_events_total{type=%q} %d\n", typ, stats.Events[typ])
	}
	b.WriteString("# HELP powerapi_fleet_events_dropped_total Journal events evicted by the bounded ring.\n")
	b.WriteString("# TYPE powerapi_fleet_events_dropped_total counter\n")
	fmt.Fprintf(b, "powerapi_fleet_events_dropped_total %d\n", stats.EventsDropped)
}

// handleHealth serves the node health model.
func (f *FleetServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, f.col.Health())
}

// handleEvents serves the event journal: every retained event with sequence
// number above ?since (0 by default), capped at ?limit, oldest first. The
// response carries lastSeq so a poller can resume exactly where it stopped.
func (f *FleetServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	var since uint64
	limit := 0
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			jsonError(w, http.StatusBadRequest, fmt.Errorf("bad since: %w", err))
			return
		}
		since = n
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			jsonError(w, http.StatusBadRequest, errors.New("bad limit"))
			return
		}
		limit = n
	}
	j := f.col.Journal()
	events := j.Since(since, limit)
	views := make([]collector.EventView, 0, len(events))
	for _, e := range events {
		views = append(views, e.View())
	}
	writeJSON(w, map[string]any{
		"events":  views,
		"lastSeq": j.LastSeq(),
		"dropped": j.Dropped(),
	})
}

// handleNodeAdd joins one daemon address to the gather set.
func (f *FleetServer) handleNodeAdd(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Addr string `json:"addr"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	if req.Addr == "" {
		jsonError(w, http.StatusBadRequest, errors.New("missing addr"))
		return
	}
	if err := f.col.AddNode(req.Addr); err != nil {
		jsonError(w, http.StatusConflict, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(map[string]any{"status": "added", "addr": req.Addr})
}

// handleNodeRemove retires one daemon address (?addr=host:port).
func (f *FleetServer) handleNodeRemove(w http.ResponseWriter, r *http.Request) {
	addr := r.URL.Query().Get("addr")
	if addr == "" {
		jsonError(w, http.StatusBadRequest, errors.New("missing addr"))
		return
	}
	if err := f.col.RemoveNode(addr); err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, map[string]any{"status": "removed", "addr": addr})
}

// handleFleet serves the latest fleet round as JSON.
func (f *FleetServer) handleFleet(w http.ResponseWriter, r *http.Request) {
	rep := f.latest.Load()
	if rep == nil {
		jsonError(w, http.StatusServiceUnavailable, errors.New("no completed fleet round yet"))
		return
	}
	writeJSON(w, rep)
}

// handleNodes serves the per-link gather state.
func (f *FleetServer) handleNodes(w http.ResponseWriter, r *http.Request) {
	stats := f.col.Stats()
	writeJSON(w, map[string]any{
		"nodes":      stats.Nodes,
		"liveNodes":  stats.LiveNodes,
		"staleNodes": stats.StaleNodes,
		"keys":       stats.Keys,
		"rounds":     stats.Rounds,
	})
}

// handleQuery answers windowed aggregate queries over fleet history — the
// daemon's query surface with node targets joining the kind set
// (kind=node, target=node:NAME).
func (f *FleetServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	stats, err := f.col.Query(q)
	switch {
	case errors.Is(err, history.ErrDisabled):
		jsonError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	rows := make([]queryStatsRow, 0, len(stats))
	for _, st := range stats {
		rows = append(rows, queryStatsRow{
			Target:       st.Target.String(),
			Kind:         st.Target.Kind.String(),
			Samples:      st.Samples,
			FirstSeconds: st.First.Seconds(),
			LastSeconds:  st.Last.Seconds(),
			AvgWatts:     st.AvgWatts,
			MaxWatts:     st.MaxWatts,
			P95Watts:     st.P95Watts,
			LastWatts:    st.LastWatts,
		})
	}
	writeJSON(w, map[string]any{"results": rows})
}

// handleDebugRounds serves the per-round stage timeline of the last fleet
// rounds retained by the trace ring.
func (f *FleetServer) handleDebugRounds(w http.ResponseWriter, r *http.Request) {
	tracer := f.col.Tracer()
	writeJSON(w, map[string]any{
		"capacity": tracer.Capacity(),
		"rounds":   tracer.Rounds(),
	})
}

// handleDebugStats serves the collector's full observability snapshot.
func (f *FleetServer) handleDebugStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, f.col.Stats())
}
