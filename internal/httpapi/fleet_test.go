package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"powerapi/internal/collector"
	"powerapi/internal/vmbridge"
)

// newServedFleet builds a one-node fleet: a TCP publisher standing in for a
// daemon's fleet-publish socket, a binary-codec collector gathering from it,
// and a FleetServer on top.
func newServedFleet(t *testing.T) (*vmbridge.TCPPublisher, *collector.Collector, *FleetServer) {
	t.Helper()
	pub, err := vmbridge.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pub.Close() })
	col, err := collector.New(collector.Config{
		Nodes:      []string{pub.Addr().String()},
		Codec:      vmbridge.CodecBinary,
		StaleAfter: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { col.Close() })
	srv, err := NewFleet(col)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return pub, col, srv
}

// publishNodeRound pushes one committed node frame through the wire and waits
// for the collector to ingest it.
func publishNodeRound(t *testing.T, pub *vmbridge.TCPPublisher, col *collector.Collector, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for pub.Connections() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("collector never connected")
		}
		time.Sleep(time.Millisecond)
	}
	err := pub.SendBatch([]vmbridge.VMPowerFrame{{
		VM: "node-a", Seq: seq, Timestamp: time.Duration(seq) * time.Second,
		Watts: 40, HostTotalWatts: 40, SourceMode: "simulated",
		Rows: []vmbridge.TargetRow{
			{Key: "cgroup:web", Watts: 25},
			{Key: "cgroup:web/api", Watts: 15},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for {
		st := col.Stats()
		if len(st.Nodes) == 1 && st.Nodes[0].LastSeq >= seq {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("frame %d never committed: %+v", seq, col.Stats().Nodes)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitLatest waits until the fleet server's conflate subscription has stored
// the given round.
func waitLatest(t *testing.T, srv *FleetServer, seq uint64) *FleetReport {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if rep := srv.Latest(); rep != nil && rep.Seq >= seq {
			return rep
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet server never observed the round")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFleetMetricsExposition(t *testing.T) {
	pub, col, srv := newServedFleet(t)

	rec, _ := get(t, srv.Handler(), "/metrics")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-round /metrics status %d, want 503", rec.Code)
	}

	publishNodeRound(t, pub, col, 1)
	col.Rollup().Release()
	waitLatest(t, srv, 1)

	rec, body := get(t, srv.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", rec.Code, body)
	}
	for _, want := range []string{
		"powerapi_fleet_total_watts 40",
		`powerapi_fleet_nodes{state="live"} 1`,
		`powerapi_fleet_nodes{state="stale"} 0`,
		`powerapi_node_watts{node="node-a"} 40`,
		`powerapi_fleet_target_watts{key="cgroup:web"} 25`,
		`powerapi_fleet_target_watts{key="cgroup:web/api"} 15`,
		`powerapi_node_link_connected{addr=`,
		`powerapi_node_link_frames_total{`,
		"powerapi_fleet_rounds_total 1",
		"powerapi_fleet_keys 2",
		"# TYPE powerapi_fleet_round_duration_seconds histogram",
		`stage="rollup"`,
		"powerapi_subscriptions 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestFleetJSONEndpoints(t *testing.T) {
	pub, col, srv := newServedFleet(t)
	publishNodeRound(t, pub, col, 1)
	col.Rollup().Release()
	publishNodeRound(t, pub, col, 2)
	col.Rollup().Release()
	waitLatest(t, srv, 2)

	rec, body := get(t, srv.Handler(), "/api/v1/fleet")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/v1/fleet status %d: %s", rec.Code, body)
	}
	var rep FleetReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Seq != 2 || rep.TotalWatts != 40 || rep.PerNode["node-a"] != 40 {
		t.Fatalf("fleet round = %+v", rep)
	}

	rec, body = get(t, srv.Handler(), "/api/v1/nodes")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/v1/nodes status %d: %s", rec.Code, body)
	}
	var nodes struct {
		Nodes     []collector.NodeStats `json:"nodes"`
		LiveNodes int                   `json:"liveNodes"`
		Rounds    uint64                `json:"rounds"`
	}
	if err := json.Unmarshal([]byte(body), &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes.Nodes) != 1 || nodes.Nodes[0].Name != "node-a" || !nodes.Nodes[0].Connected {
		t.Fatalf("nodes = %+v", nodes)
	}
	if nodes.LiveNodes != 1 || nodes.Rounds != 2 {
		t.Fatalf("live=%d rounds=%d", nodes.LiveNodes, nodes.Rounds)
	}

	// Fleet history query: node series selectable by the new kind.
	rec, body = get(t, srv.Handler(), "/api/v1/query?kind=node")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/v1/query status %d: %s", rec.Code, body)
	}
	var q struct {
		Results []queryStatsRow `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &q); err != nil {
		t.Fatal(err)
	}
	if len(q.Results) != 1 || q.Results[0].Target != "node:node-a" || q.Results[0].Kind != "node" {
		t.Fatalf("query results = %+v", q.Results)
	}
	if q.Results[0].Samples != 2 || q.Results[0].LastWatts != 40 {
		t.Fatalf("node series = %+v", q.Results[0])
	}

	rec, body = get(t, srv.Handler(), "/api/v1/query?kind=bogus")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bogus kind status %d: %s", rec.Code, body)
	}

	rec, body = get(t, srv.Handler(), "/api/v1/debug/rounds")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/v1/debug/rounds status %d: %s", rec.Code, body)
	}
	if !strings.Contains(body, `"rollup"`) {
		t.Fatalf("debug rounds missing rollup stage: %s", body)
	}
	rec, body = get(t, srv.Handler(), "/api/v1/debug/stats")
	if rec.Code != http.StatusOK || !strings.Contains(body, `"node-a"`) {
		t.Fatalf("/api/v1/debug/stats status %d: %s", rec.Code, body)
	}
}

// TestBridgeMetricsRegistration checks the daemon-side satellite: a
// registered vm-bridge publisher and receiver surface their per-connection
// counters on the daemon's /metrics.
func TestBridgeMetricsRegistration(t *testing.T) {
	_, mon, srv, _ := newServedMonitor(t)

	pub, err := vmbridge.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pub.Close() })
	recv, err := vmbridge.DialTCPCodec(pub.Addr().String(), vmbridge.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })
	srv.RegisterBridgePublisher("fleet-publish", pub)
	srv.RegisterBridgeReceiver("guest-power", recv)

	deadline := time.Now().Add(5 * time.Second)
	for pub.Connections() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("receiver never connected")
		}
		time.Sleep(time.Millisecond)
	}
	if err := pub.Send(vmbridge.VMPowerFrame{VM: "node-a", Seq: 1, Watts: 5}); err != nil {
		t.Fatal(err)
	}

	if _, err := mon.RunMonitored(time.Second, time.Second, nil); err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := srv.Latest(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never observed a round")
		}
		time.Sleep(time.Millisecond)
	}

	// The sent counter updates after the write lands; poll the exposition.
	var body string
	for {
		var rec *httptest.ResponseRecorder
		rec, body = get(t, srv.Handler(), "/metrics")
		if rec.Code != http.StatusOK {
			t.Fatalf("/metrics status %d: %s", rec.Code, body)
		}
		if strings.Contains(body, `powerapi_bridge_conn_sent_frames_total{publisher="fleet-publish",remote=`) &&
			strings.Contains(body, `codec="binary"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bridge families never appeared in:\n%s", body)
		}
		time.Sleep(time.Millisecond)
	}
	for _, want := range []string{
		`powerapi_bridge_connections{publisher="fleet-publish"} 1`,
		`powerapi_bridge_published_frames_total{publisher="fleet-publish"} 1`,
		`powerapi_bridge_conn_dropped_batches_total{publisher="fleet-publish",remote=`,
		`powerapi_bridge_decode_errors_total{receiver="guest-power",codec="binary"} 0`,
		`powerapi_bridge_receiver_dropped_frames_total{receiver="guest-power",codec="binary"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestFleetObservabilityEndpoints covers the fleet-wide observability
// surface: health and event documents, dynamic membership over HTTP, and the
// new metric families they feed.
func TestFleetObservabilityEndpoints(t *testing.T) {
	pub, col, srv := newServedFleet(t)
	publishNodeRound(t, pub, col, 1)
	col.Rollup().Release()
	waitLatest(t, srv, 1)

	rec, body := get(t, srv.Handler(), "/api/v1/health")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/v1/health status %d: %s", rec.Code, body)
	}
	var hv collector.HealthView
	if err := json.Unmarshal([]byte(body), &hv); err != nil {
		t.Fatal(err)
	}
	if len(hv.Nodes) != 1 || hv.Nodes[0].Name != "node-a" || hv.Nodes[0].State != "healthy" {
		t.Fatalf("health view = %+v, want one healthy node-a", hv)
	}
	if hv.States["healthy"] != 1 {
		t.Fatalf("health tally = %+v", hv.States)
	}

	// Membership: add a second (never-answering) address, then remove it.
	// Both moves must land in the node set and the event journal.
	spare, err := vmbridge.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { spare.Close() })
	addr := spare.Addr().String()

	req := httptest.NewRequest(http.MethodPost, "/api/v1/nodes", strings.NewReader(`{"addr":"`+addr+`"}`))
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST /api/v1/nodes status %d: %s", rec.Code, rec.Body.String())
	}
	if got := len(col.Stats().Nodes); got != 2 {
		t.Fatalf("node set holds %d nodes after add, want 2", got)
	}
	req = httptest.NewRequest(http.MethodPost, "/api/v1/nodes", strings.NewReader(`{"addr":"`+addr+`"}`))
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusConflict {
		t.Fatalf("duplicate add status %d, want 409", rec.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/api/v1/nodes", strings.NewReader(`{"addr":""}`))
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty addr status %d, want 400", rec.Code)
	}

	req = httptest.NewRequest(http.MethodDelete, "/api/v1/nodes?addr="+addr, nil)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE /api/v1/nodes status %d: %s", rec.Code, rec.Body.String())
	}
	if got := len(col.Stats().Nodes); got != 1 {
		t.Fatalf("node set holds %d nodes after remove, want 1", got)
	}
	req = httptest.NewRequest(http.MethodDelete, "/api/v1/nodes?addr=no-such-node:1", nil)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("removing an unknown node status %d, want 404", rec.Code)
	}

	// The journal heard the membership churn and the health transition; the
	// events endpoint serves it with resume semantics.
	rec, body = get(t, srv.Handler(), "/api/v1/events")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/v1/events status %d: %s", rec.Code, body)
	}
	var events struct {
		Events []collector.EventView `json:"events"`
		Last   uint64                `json:"lastSeq"`
	}
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, e := range events.Events {
		kinds[e.Type]++
	}
	if kinds["node_join"] < 2 || kinds["node_leave"] < 1 || kinds["node_state_change"] < 1 {
		t.Fatalf("event kinds = %v, want joins, a leave and a state change in:\n%s", kinds, body)
	}
	if events.Last == 0 || events.Events[len(events.Events)-1].Seq != events.Last {
		t.Fatalf("lastSeq=%d does not match the tail of %v", events.Last, events.Events)
	}
	rec, body = get(t, srv.Handler(), fmt.Sprintf("/api/v1/events?since=%d", events.Last))
	if rec.Code != http.StatusOK {
		t.Fatalf("resumed /api/v1/events status %d: %s", rec.Code, body)
	}
	var tail struct {
		Events []collector.EventView `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &tail); err != nil {
		t.Fatal(err)
	}
	if len(tail.Events) != 0 {
		t.Fatalf("resume from the tail returned %d events, want 0", len(tail.Events))
	}

	// The new metric families ride the same exposition.
	rec, body = get(t, srv.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	for _, want := range []string{
		`powerapi_fleet_node_state{addr=`,
		`state="healthy"} 1`,
		`powerapi_fleet_events_total{type="node_join"}`,
		`powerapi_fleet_events_total{type="node_state_change"}`,
		"powerapi_fleet_events_dropped_total 0",
		`powerapi_node_link_lag_seconds{`,
		`powerapi_node_link_skew_seconds{`,
		`powerapi_node_link_seq_gaps_total{`,
		`powerapi_node_link_violations_total{`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}
