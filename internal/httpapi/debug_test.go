package httpapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"powerapi/internal/core"
	"powerapi/internal/cpu"
	"powerapi/internal/machine"
	"powerapi/internal/workload"
)

// newObservedMonitor builds a self-powered, history-enabled monitor with a
// served debug surface and runs it for a few rounds.
func newObservedMonitor(t *testing.T) (*core.PowerAPI, *Server) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Governor = cpu.GovernorPerformance
	cfg.PowerNoiseStdDevWatts = 0
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.CPUStress(0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Spawn(gen)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := core.New(m, testModel(), core.WithHistory(32), core.WithSelfPower(), core.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mon.Shutdown)
	if err := mon.Attach(p.PID()); err != nil {
		t.Fatal(err)
	}
	srv, err := New(mon)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	reports, err := mon.RunMonitored(3*time.Second, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	final := reports[len(reports)-1]
	deadline := time.Now().Add(2 * time.Second)
	for {
		if r, ok := srv.Latest(); ok && r.Timestamp == final.Timestamp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never observed the final round")
		}
		time.Sleep(time.Millisecond)
	}
	return mon, srv
}

// debugRoundsResponse mirrors the /api/v1/debug/rounds JSON schema.
type debugRoundsResponse struct {
	Capacity int `json:"capacity"`
	Rounds   []struct {
		Seq              uint64  `json:"seq"`
		TimestampSeconds float64 `json:"timestampSeconds"`
		DurationSeconds  float64 `json:"durationSeconds"`
		Complete         bool    `json:"complete"`
		Stages           []struct {
			Stage          string  `json:"stage"`
			Count          int64   `json:"count"`
			StartSeconds   float64 `json:"startSeconds"`
			EndSeconds     float64 `json:"endSeconds"`
			BusySeconds    float64 `json:"busySeconds"`
			SlowestShard   int     `json:"slowestShard"`
			SlowestSeconds float64 `json:"slowestSeconds"`
		} `json:"stages"`
	} `json:"rounds"`
}

func TestDebugRoundsTimeline(t *testing.T) {
	_, srv := newObservedMonitor(t)

	rec, body := get(t, srv.Handler(), "/api/v1/debug/rounds")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/v1/debug/rounds status %d: %s", rec.Code, body)
	}
	var resp debugRoundsResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("decode: %v in %s", err, body)
	}
	if resp.Capacity <= 0 {
		t.Fatalf("capacity %d, want > 0", resp.Capacity)
	}
	if len(resp.Rounds) != 3 {
		t.Fatalf("traced rounds %d, want 3", len(resp.Rounds))
	}
	for _, round := range resp.Rounds {
		if !round.Complete {
			t.Fatalf("round seq %d incomplete: %+v", round.Seq, round)
		}
		if round.DurationSeconds <= 0 {
			t.Fatalf("round seq %d duration %g, want > 0", round.Seq, round.DurationSeconds)
		}
		seen := map[string]bool{}
		for _, span := range round.Stages {
			seen[span.Stage] = true
			if span.Count <= 0 {
				t.Fatalf("round %d stage %s count %d", round.Seq, span.Stage, span.Count)
			}
			if span.StartSeconds < 0 || span.EndSeconds < span.StartSeconds {
				t.Fatalf("round %d stage %s misordered span [%g, %g]",
					round.Seq, span.Stage, span.StartSeconds, span.EndSeconds)
			}
		}
		for _, stage := range []string{"sensor", "formula", "aggregate", "fanout"} {
			if !seen[stage] {
				t.Fatalf("round %d missing stage %s (have %v)", round.Seq, stage, seen)
			}
		}
	}
}

func TestDebugStatsSnapshot(t *testing.T) {
	mon, srv := newObservedMonitor(t)

	rec, body := get(t, srv.Handler(), "/api/v1/debug/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/v1/debug/stats status %d: %s", rec.Code, body)
	}
	// The body must be one valid JSON document (the +Inf histogram bound must
	// not leak as a bare IEEE infinity).
	var decoded map[string]any
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatalf("decode: %v in %s", err, body)
	}
	stats := mon.Stats()
	if stats.Round.Count < 3 {
		t.Fatalf("round histogram count %d, want >= 3", stats.Round.Count)
	}
	if len(stats.Stages) == 0 {
		t.Fatal("no stage stats recorded")
	}
	if stats.ReportPool.Gets == 0 {
		t.Fatal("report pool gets is zero")
	}
	if stats.History.Enabled != true || stats.History.Targets == 0 {
		t.Fatalf("history stats %+v, want enabled with targets", stats.History)
	}
	if !stats.Self.Enabled {
		t.Skip("self meter unsupported on this platform")
	}
	if stats.Self.Watts <= 0 {
		t.Fatalf("self watts %g, want > 0", stats.Self.Watts)
	}
	if stats.Self.CPUSeconds <= 0 {
		t.Fatalf("self CPU seconds %g, want > 0", stats.Self.CPUSeconds)
	}
}

func TestMetricsObservabilityFamilies(t *testing.T) {
	mon, srv := newObservedMonitor(t)

	rec, body := get(t, srv.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", rec.Code, body)
	}
	wants := []string{
		"# TYPE powerapi_round_duration_seconds histogram",
		"powerapi_round_duration_seconds_count 3",
		`powerapi_round_duration_seconds_bucket{le="+Inf"} 3`,
		`powerapi_round_duration_quantile_seconds{quantile="0.99"} `,
		"# TYPE powerapi_stage_duration_seconds histogram",
		`powerapi_stage_duration_seconds_bucket{stage="sensor",le="+Inf"} `,
		`powerapi_stage_duration_seconds_sum{stage="aggregate"} `,
		`powerapi_stage_duration_quantile_seconds{stage="fanout",quantile="0.5"} `,
		"powerapi_pending_rounds 0",
		"powerapi_slot_index_live 1",
		"powerapi_trace_ring_capacity ",
		"powerapi_report_pool_gets_total ",
		"powerapi_report_pool_misses_total ",
		"powerapi_report_pool_outstanding ",
		"powerapi_history_targets ",
	}
	if mon.SelfPowered() {
		wants = append(wants,
			`powerapi_target_watts{kind="self",id="powerapi-self"} `,
			"powerapi_self_watts ",
			"powerapi_self_cpu_seconds_total ",
		)
	}
	for _, want := range wants {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
	if mon.SelfPowered() && strings.Contains(body, `id="powerapi-self"} 0`+"\n") {
		t.Fatalf("powerapi-self row is zero watts:\n%s", body)
	}
}
