package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"powerapi/internal/core"
	"powerapi/internal/cpu"
	"powerapi/internal/machine"
	"powerapi/internal/target"
	"powerapi/internal/workload"
)

func bodyRequest(t *testing.T, handler http.Handler, method, url, body string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	req := httptest.NewRequest(method, url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	return rec, rec.Body.String()
}

// TestAttachTargetSpecRoundTrip drives the spec-based dynamic attach: a
// cgroup target posted as its string form attaches, lists back under the
// same string (the parse round-trip), and detaches again.
func TestAttachTargetSpecRoundTrip(t *testing.T) {
	_, mon, srv, _ := newServedMonitor(t)

	// The monitor starts with only process targets; "cgroup:web" is dynamic.
	rec, body := bodyRequest(t, srv.Handler(), http.MethodPost, "/api/v1/targets", `{"target":"cgroup:web"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("attach cgroup status %d: %s", rec.Code, body)
	}
	var attached struct {
		Attached string `json:"attached"`
		Kind     string `json:"kind"`
	}
	if err := json.Unmarshal([]byte(body), &attached); err != nil {
		t.Fatal(err)
	}
	if attached.Attached != "cgroup:web" || attached.Kind != "cgroup" {
		t.Fatalf("attach response %s", body)
	}

	// Round-trip: every listed target's string form parses back to itself.
	rec, body = get(t, srv.Handler(), "/api/v1/targets")
	if rec.Code != http.StatusOK {
		t.Fatalf("targets status %d: %s", rec.Code, body)
	}
	var listing struct {
		Targets []struct {
			Name string `json:"name"`
		} `json:"targets"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range listing.Targets {
		parsed, err := target.Parse(row.Name)
		if err != nil {
			t.Fatalf("listed target %q does not parse: %v", row.Name, err)
		}
		if got := parsed.String(); got != row.Name {
			t.Fatalf("round trip %q -> %q", row.Name, got)
		}
		if row.Name == "cgroup:web" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cgroup:web missing from listing %s", body)
	}

	// Detach by spec; a second detach is 404.
	rec, body = bodyRequest(t, srv.Handler(), http.MethodDelete, "/api/v1/targets", `{"target":"cgroup:web"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("detach cgroup status %d: %s", rec.Code, body)
	}
	rec, _ = bodyRequest(t, srv.Handler(), http.MethodDelete, "/api/v1/targets", `{"target":"cgroup:web"}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("double detach status %d", rec.Code)
	}

	// Malformed bodies and specs are 400s; an unknown cgroup is a 409.
	for _, bad := range []string{``, `{`, `{"target":"nonsense"}`, `{"target":"cgroup:"}`} {
		rec, _ = bodyRequest(t, srv.Handler(), http.MethodPost, "/api/v1/targets", bad)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q status %d, want 400", bad, rec.Code)
		}
	}
	rec, _ = bodyRequest(t, srv.Handler(), http.MethodPost, "/api/v1/targets", `{"target":"cgroup:no-such-group"}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("unknown cgroup status %d, want 409", rec.Code)
	}
	_ = mon
}

// TestMetricsVMRowsAndObservabilityGauges covers the new exposition: per-VM
// watts, per-subscription delivered/dropped counters and history ring
// occupancy.
func TestMetricsVMRowsAndObservabilityGauges(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Governor = cpu.GovernorPerformance
	cfg.PowerNoiseStdDevWatts = 0
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pids := make([]int, 0, 2)
	for _, level := range []float64{0.9, 0.4} {
		gen, gerr := workload.CPUStress(level, 0)
		if gerr != nil {
			t.Fatal(gerr)
		}
		p, serr := m.Spawn(gen)
		if serr != nil {
			t.Fatal(serr)
		}
		pids = append(pids, p.PID())
	}
	mon, err := core.New(m, testModel(),
		core.WithHistory(16),
		core.WithVMs(core.VMDef{Name: "vm-a", PIDs: pids}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mon.Shutdown)
	if err := mon.Attach(pids...); err != nil {
		t.Fatal(err)
	}
	srv, err := New(mon)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	reports, err := mon.RunMonitored(3*time.Second, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	final := reports[len(reports)-1]
	deadline := time.Now().Add(2 * time.Second)
	for {
		if r, ok := srv.Latest(); ok && r.Timestamp == final.Timestamp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never observed the final round")
		}
		time.Sleep(time.Millisecond)
	}
	// The history writer is its own asynchronous subscriber; wait until it
	// has recorded every round (machine + 2 processes + 1 vm per round)
	// before asserting the occupancy gauges.
	for {
		targets, samples := mon.History().Occupancy()
		if targets == 4 && samples == 4*len(reports) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("history never filled: %d targets, %d samples", targets, samples)
		}
		time.Sleep(time.Millisecond)
	}

	rec, body := get(t, srv.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", rec.Code, body)
	}
	for _, want := range []string{
		`powerapi_target_watts{kind="vm",id="vm-a"}`,
		"# TYPE powerapi_subscription_delivered_total counter",
		`name="httpapi",policy="conflate"`,
		`name="history",policy="block"`,
		"# TYPE powerapi_subscription_dropped_total counter",
		"powerapi_history_targets 4\n", // machine + 2 processes + 1 vm
		"powerapi_history_samples 12\n",
		"powerapi_history_capacity 16\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// The history subscriber is lossless: it must have delivered every round
	// with zero drops.
	if !strings.Contains(body, fmt.Sprintf(`name="history",policy="block"} %d`, len(reports))) {
		t.Fatalf("history subscription counters missing in:\n%s", body)
	}
}
