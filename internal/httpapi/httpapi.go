// Package httpapi is the HTTP serving layer of the monitoring middleware: it
// mounts a PowerAPI monitor behind a Prometheus-style /metrics text
// exposition and a JSON API for target listing, windowed history queries and
// dynamic attach/detach — what a production deployment scrapes and operates
// against (the daemon's -listen flag serves it).
//
// Endpoints:
//
//	GET    /metrics                 per-target watts, totals, pipeline and
//	                                subscription counters, history occupancy
//	GET    /api/v1/targets          monitored targets and shard placement
//	GET    /api/v1/query            windowed avg/max/p95 per target (WithHistory)
//	POST   /api/v1/targets          attach one target by spec ("pid:12",
//	                                "cgroup:web/api", "vm:vma")
//	DELETE /api/v1/targets          detach one target by spec
//	POST   /api/v1/targets/{pid}    attach one process
//	DELETE /api/v1/targets/{pid}    detach one process
//
// The server keeps the latest round through its own Conflate subscription of
// the monitor's fanout, so serving /metrics under heavy scrape traffic never
// touches the pipeline hot path.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"powerapi/internal/core"
	"powerapi/internal/history"
	"powerapi/internal/target"
)

// Server serves one monitor over HTTP. Create it with New and mount
// Handler(); Close releases its subscription.
type Server struct {
	mon     *core.PowerAPI
	sub     *core.Subscription
	latest  atomic.Pointer[core.AggregatedReport]
	mux     *http.ServeMux
	wg      sync.WaitGroup
	bridges bridgeSet
}

// New wires a server onto a monitor. The server subscribes to the monitor's
// report fanout (Conflate policy: /metrics always exposes the latest
// completed round) and is live until Close — or until the monitor shuts
// down, which closes the subscription with every other one.
func New(mon *core.PowerAPI) (*Server, error) {
	if mon == nil {
		return nil, errors.New("httpapi: nil monitor")
	}
	sub, err := mon.Subscribe(core.SubscribeOptions{Name: "httpapi", Policy: core.Conflate})
	if err != nil {
		return nil, fmt.Errorf("httpapi: %w", err)
	}
	s := &Server{mon: mon, sub: sub, mux: http.NewServeMux()}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for report := range sub.C() {
			// Handlers read the stored round concurrently and unboundedly, so
			// take a private deep copy and give the pooled buffer straight back.
			r := report.Clone()
			report.Release()
			s.latest.Store(&r)
		}
	}()
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/v1/debug/rounds", s.handleDebugRounds)
	s.mux.HandleFunc("GET /api/v1/debug/stats", s.handleDebugStats)
	s.mux.HandleFunc("GET /api/v1/targets", s.handleTargets)
	s.mux.HandleFunc("GET /api/v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /api/v1/targets", s.handleAttachTarget)
	s.mux.HandleFunc("DELETE /api/v1/targets", s.handleDetachTarget)
	s.mux.HandleFunc("POST /api/v1/targets/{pid}", s.handleAttach)
	s.mux.HandleFunc("DELETE /api/v1/targets/{pid}", s.handleDetach)
	return s, nil
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// Close releases the server's subscription. The last retained round keeps
// serving /metrics; it is safe to call Close more than once.
func (s *Server) Close() {
	s.sub.Close()
	s.wg.Wait()
}

// Latest returns the most recent round the server has observed (zero report
// and false before the first completed round).
func (s *Server) Latest() (core.AggregatedReport, bool) {
	if r := s.latest.Load(); r != nil {
		return *r, true
	}
	return core.AggregatedReport{}, false
}

// jsonError writes a JSON error body with the given status.
func jsonError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// An encode failure here means the connection died mid-response; the
	// header is already out, so there is nothing sensible left to do.
	_ = json.NewEncoder(w).Encode(v)
}

// escapeLabel escapes a Prometheus label value (backslash, quote, newline).
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// handleMetrics serves the Prometheus text exposition of the latest round.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	//powerapi:allow leasecheck Latest returns a private clone owned by this server, not a pooled lease
	report, ok := s.Latest()
	if !ok {
		jsonError(w, http.StatusServiceUnavailable, errors.New("no completed monitoring round yet"))
		return
	}
	var b strings.Builder
	b.WriteString("# HELP powerapi_target_watts Active power attributed to one monitoring target.\n")
	b.WriteString("# TYPE powerapi_target_watts gauge\n")
	pids := make([]int, 0, len(report.PerPID))
	for pid := range report.PerPID {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		fmt.Fprintf(&b, "powerapi_target_watts{kind=\"process\",id=\"%d\"} %g\n", pid, report.PerPID[pid])
	}
	paths := make([]string, 0, len(report.PerCgroup))
	for path := range report.PerCgroup {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		fmt.Fprintf(&b, "powerapi_target_watts{kind=\"cgroup\",id=\"%s\"} %g\n", escapeLabel(path), report.PerCgroup[path])
	}
	vmNames := make([]string, 0, len(report.PerVM))
	for name := range report.PerVM {
		vmNames = append(vmNames, name)
	}
	sort.Strings(vmNames)
	for _, name := range vmNames {
		fmt.Fprintf(&b, "powerapi_target_watts{kind=\"vm\",id=\"%s\"} %g\n", escapeLabel(name), report.PerVM[name])
	}
	stats := s.mon.Stats()
	if stats.Self.Enabled {
		// The meter's own cost as a first-class target row: the paper's
		// overhead claim, continuously verified next to the targets it meters.
		fmt.Fprintf(&b, "powerapi_target_watts{kind=\"self\",id=\"powerapi-self\"} %g\n", report.SelfWatts)
	}
	groups := make([]string, 0, len(report.PerGroup))
	for group := range report.PerGroup {
		groups = append(groups, group)
	}
	sort.Strings(groups)
	if len(groups) > 0 {
		b.WriteString("# HELP powerapi_group_watts Active power aggregated by the configured grouping dimension.\n")
		b.WriteString("# TYPE powerapi_group_watts gauge\n")
		for _, group := range groups {
			fmt.Fprintf(&b, "powerapi_group_watts{group=\"%s\"} %g\n", escapeLabel(group), report.PerGroup[group])
		}
	}
	b.WriteString("# HELP powerapi_total_watts Estimated machine power (idle + active) of the latest round.\n")
	b.WriteString("# TYPE powerapi_total_watts gauge\n")
	fmt.Fprintf(&b, "powerapi_total_watts %g\n", report.TotalWatts)
	b.WriteString("# HELP powerapi_idle_watts Constant idle power of the model.\n")
	b.WriteString("# TYPE powerapi_idle_watts gauge\n")
	fmt.Fprintf(&b, "powerapi_idle_watts %g\n", report.IdleWatts)
	b.WriteString("# HELP powerapi_active_watts Sum of per-target active power of the latest round.\n")
	b.WriteString("# TYPE powerapi_active_watts gauge\n")
	fmt.Fprintf(&b, "powerapi_active_watts %g\n", report.ActiveWatts)
	if report.MeasuredWatts != 0 {
		b.WriteString("# HELP powerapi_measured_watts Machine-level measurement (RAPL or utilisation proxy) of the latest round.\n")
		b.WriteString("# TYPE powerapi_measured_watts gauge\n")
		fmt.Fprintf(&b, "powerapi_measured_watts %g\n", report.MeasuredWatts)
	}
	b.WriteString("# HELP powerapi_round_timestamp_seconds Simulated instant of the latest round.\n")
	b.WriteString("# TYPE powerapi_round_timestamp_seconds gauge\n")
	fmt.Fprintf(&b, "powerapi_round_timestamp_seconds %g\n", report.Timestamp.Seconds())
	b.WriteString("# HELP powerapi_pipeline_errors_total Errors observed by the monitoring pipeline.\n")
	b.WriteString("# TYPE powerapi_pipeline_errors_total counter\n")
	fmt.Fprintf(&b, "powerapi_pipeline_errors_total %d\n", stats.Errors)
	b.WriteString("# HELP powerapi_subscriptions Live report subscriptions on the fanout.\n")
	b.WriteString("# TYPE powerapi_subscriptions gauge\n")
	fmt.Fprintf(&b, "powerapi_subscriptions %d\n", len(stats.Subscriptions))
	if len(stats.Subscriptions) > 0 {
		b.WriteString("# HELP powerapi_subscription_delivered_total Reports placed into one subscription's channel.\n")
		b.WriteString("# TYPE powerapi_subscription_delivered_total counter\n")
		for _, st := range stats.Subscriptions {
			fmt.Fprintf(&b, "powerapi_subscription_delivered_total{id=\"%d\",name=\"%s\",policy=\"%s\"} %d\n",
				st.ID, escapeLabel(st.Name), st.Policy, st.Delivered)
		}
		b.WriteString("# HELP powerapi_subscription_dropped_total Delivered reports evicted unread from one subscription's channel.\n")
		b.WriteString("# TYPE powerapi_subscription_dropped_total counter\n")
		for _, st := range stats.Subscriptions {
			fmt.Fprintf(&b, "powerapi_subscription_dropped_total{id=\"%d\",name=\"%s\",policy=\"%s\"} %d\n",
				st.ID, escapeLabel(st.Name), st.Policy, st.Dropped)
		}
	}
	if stats.History.Enabled {
		b.WriteString("# HELP powerapi_history_targets Targets with retained samples in the history store.\n")
		b.WriteString("# TYPE powerapi_history_targets gauge\n")
		fmt.Fprintf(&b, "powerapi_history_targets %d\n", stats.History.Targets)
		b.WriteString("# HELP powerapi_history_samples Retained samples across all history rings.\n")
		b.WriteString("# TYPE powerapi_history_samples gauge\n")
		fmt.Fprintf(&b, "powerapi_history_samples %d\n", stats.History.Samples)
		b.WriteString("# HELP powerapi_history_capacity Ring capacity per target (the occupancy ceiling is targets times this).\n")
		b.WriteString("# TYPE powerapi_history_capacity gauge\n")
		fmt.Fprintf(&b, "powerapi_history_capacity %d\n", stats.History.CapacityPerTarget)
	}
	writeObsMetrics(&b, stats)
	s.bridges.writeBridgeMetrics(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// targetRow is one entry of the /api/v1/targets response.
type targetRow struct {
	Target target.Target `json:"target"`
	Name   string        `json:"name"`
	Shard  int           `json:"shard"`
}

// handleTargets lists the explicitly attached targets and the full monitored
// PID set (cgroup members included).
func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	monitored := s.mon.MonitoredTargets()
	rows := make([]targetRow, 0, len(monitored))
	for _, t := range monitored {
		rows = append(rows, targetRow{Target: t, Name: t.String(), Shard: s.mon.ShardOfTarget(t)})
	}
	writeJSON(w, map[string]any{
		"targets":       rows,
		"monitoredPids": s.mon.Monitored(),
		"shards":        s.mon.Shards(),
		"sourceMode":    s.mon.SourceMode().String(),
	})
}

// queryStatsRow is one row of the /api/v1/query response: history.Stats with
// human-readable target naming and seconds instead of durations.
type queryStatsRow struct {
	Target       string  `json:"target"`
	Kind         string  `json:"kind"`
	Samples      int     `json:"samples"`
	FirstSeconds float64 `json:"firstSeconds"`
	LastSeconds  float64 `json:"lastSeconds"`
	AvgWatts     float64 `json:"avgWatts"`
	MaxWatts     float64 `json:"maxWatts"`
	P95Watts     float64 `json:"p95Watts"`
	LastWatts    float64 `json:"lastWatts"`
}

// handleQuery answers windowed aggregate queries over the retained history.
// Parameters: from/to (seconds), target (repeatable: "pid:1", "cgroup:web",
// "machine"), kind (repeatable: process|cgroup|machine), cgroup (subtree
// path), minWatts.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	stats, err := s.mon.Query(q)
	switch {
	case errors.Is(err, history.ErrDisabled):
		jsonError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	rows := make([]queryStatsRow, 0, len(stats))
	for _, st := range stats {
		rows = append(rows, queryStatsRow{
			Target:       st.Target.String(),
			Kind:         st.Target.Kind.String(),
			Samples:      st.Samples,
			FirstSeconds: st.First.Seconds(),
			LastSeconds:  st.Last.Seconds(),
			AvgWatts:     st.AvgWatts,
			MaxWatts:     st.MaxWatts,
			P95Watts:     st.P95Watts,
			LastWatts:    st.LastWatts,
		})
	}
	writeJSON(w, map[string]any{"results": rows})
}

// parseQuery maps the URL parameters onto a history query.
func parseQuery(r *http.Request) (core.QueryOptions, error) {
	var q core.QueryOptions
	params := r.URL.Query()
	if v := params.Get("from"); v != "" {
		seconds, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return q, fmt.Errorf("invalid from %q", v)
		}
		q.From = time.Duration(seconds * float64(time.Second))
	}
	if v := params.Get("to"); v != "" {
		seconds, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return q, fmt.Errorf("invalid to %q", v)
		}
		q.To = time.Duration(seconds * float64(time.Second))
	}
	for _, v := range params["target"] {
		t, err := target.Parse(v)
		if err != nil {
			return q, err
		}
		q.Targets = append(q.Targets, t)
	}
	for _, v := range params["kind"] {
		switch v {
		case "process":
			q.Kinds = append(q.Kinds, target.KindProcess)
		case "cgroup":
			q.Kinds = append(q.Kinds, target.KindCgroup)
		case "machine":
			q.Kinds = append(q.Kinds, target.KindMachine)
		case "vm":
			q.Kinds = append(q.Kinds, target.KindVM)
		case "node":
			q.Kinds = append(q.Kinds, target.KindNode)
		default:
			return q, fmt.Errorf("invalid kind %q (want process, cgroup, vm, node or machine)", v)
		}
	}
	q.CgroupSubtree = params.Get("cgroup")
	if v := params.Get("minWatts"); v != "" {
		minWatts, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return q, fmt.Errorf("invalid minWatts %q", v)
		}
		q.MinWatts = minWatts
	}
	return q, nil
}

// targetSpecRequest is the body of POST/DELETE /api/v1/targets: one target
// in its string form ("pid:12", "cgroup:web/api", "vm:vma").
type targetSpecRequest struct {
	Target string `json:"target"`
}

// parseTargetSpec decodes and parses the request body's target spec.
func parseTargetSpec(r *http.Request) (target.Target, error) {
	var req targetSpecRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return target.Target{}, fmt.Errorf("invalid body (want {\"target\": \"cgroup:PATH\"}): %w", err)
	}
	return target.Parse(req.Target)
}

// handleAttachTarget starts monitoring one target given by spec — the
// dynamic-attach path for cgroup and vm targets, which the {pid} endpoint
// cannot express. Attaching a cgroup monitors its member processes
// (descendants included), re-synchronised every round.
func (s *Server) handleAttachTarget(w http.ResponseWriter, r *http.Request) {
	t, err := parseTargetSpec(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.mon.AttachTargets(t); err != nil {
		jsonError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, map[string]any{"attached": t.String(), "kind": t.Kind.String()})
}

// handleDetachTarget stops monitoring one target given by spec.
func (s *Server) handleDetachTarget(w http.ResponseWriter, r *http.Request) {
	t, err := parseTargetSpec(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.mon.DetachTargets(t); err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, map[string]any{"detached": t.String(), "kind": t.Kind.String()})
}

// handleAttach starts monitoring one process.
func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request) {
	pid, err := parsePID(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.mon.Attach(pid); err != nil {
		jsonError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, map[string]any{"attached": pid, "shard": s.mon.ShardOf(pid)})
}

// handleDetach stops monitoring one process.
func (s *Server) handleDetach(w http.ResponseWriter, r *http.Request) {
	pid, err := parsePID(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.mon.Detach(pid); err != nil {
		jsonError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, map[string]any{"detached": pid})
}

func parsePID(r *http.Request) (int, error) {
	raw := r.PathValue("pid")
	pid, err := strconv.Atoi(raw)
	if err != nil || pid <= 0 {
		return 0, fmt.Errorf("invalid pid %q", raw)
	}
	return pid, nil
}
