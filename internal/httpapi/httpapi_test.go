package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"powerapi/internal/cgroup"
	"powerapi/internal/core"
	"powerapi/internal/cpu"
	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/model"
	"powerapi/internal/workload"
)

func testModel() *model.CPUPowerModel {
	m := model.PaperReferenceModel()
	m.AddFrequencyModel(model.FrequencyModel{
		FrequencyMHz: 1600,
		Terms: []model.Term{
			{Event: hpc.Instructions.String(), WattsPerEventPerSecond: 1.1e-9},
			{Event: hpc.CacheReferences.String(), WattsPerEventPerSecond: 1.3e-8},
			{Event: hpc.CacheMisses.String(), WattsPerEventPerSecond: 1.8e-7},
		},
	})
	return m
}

// newServedMonitor builds a machine with three workloads grouped under a
// small cgroup hierarchy, a history-enabled monitor and a Server on top.
func newServedMonitor(t *testing.T) (*machine.Machine, *core.PowerAPI, *Server, []int) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Governor = cpu.GovernorPerformance
	cfg.PowerNoiseStdDevWatts = 0
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pids := make([]int, 0, 3)
	for _, level := range []float64{0.9, 0.6, 0.3} {
		gen, err := workload.CPUStress(level, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.Spawn(gen)
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, p.PID())
	}
	h := cgroup.NewHierarchy()
	if err := h.Add("web", pids[0]); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("web/api", pids[1]); err != nil {
		t.Fatal(err)
	}
	mon, err := core.New(m, testModel(), core.WithCgroups(h), core.WithHistory(32))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mon.Shutdown)
	if err := mon.Attach(pids...); err != nil {
		t.Fatal(err)
	}
	srv, err := New(mon)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return m, mon, srv, pids
}

func get(t *testing.T, handler http.Handler, url string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	return rec, rec.Body.String()
}

func TestMetricsExposition(t *testing.T) {
	_, mon, srv, pids := newServedMonitor(t)

	// Before the first completed round /metrics has nothing to serve.
	rec, _ := get(t, srv.Handler(), "/metrics")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-round /metrics status %d, want 503", rec.Code)
	}

	reports, err := mon.RunMonitored(3*time.Second, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The Conflate subscription delivers asynchronously; wait for the final
	// round to land.
	final := reports[len(reports)-1]
	deadline := time.Now().Add(2 * time.Second)
	for {
		if r, ok := srv.Latest(); ok && r.Timestamp == final.Timestamp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never observed the final round")
		}
		time.Sleep(time.Millisecond)
	}

	rec, body := get(t, srv.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", rec.Code, body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	for _, want := range []string{
		fmt.Sprintf(`powerapi_target_watts{kind="process",id="%d"}`, pids[0]),
		`powerapi_target_watts{kind="cgroup",id="web"}`,
		`powerapi_target_watts{kind="cgroup",id="web/api"}`,
		"powerapi_total_watts ",
		"powerapi_idle_watts ",
		"powerapi_active_watts ",
		"powerapi_round_timestamp_seconds 3",
		"powerapi_pipeline_errors_total 0",
		"powerapi_subscriptions ",
		"# TYPE powerapi_target_watts gauge",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestTargetsEndpointAndDynamicAttachDetach(t *testing.T) {
	m, mon, srv, pids := newServedMonitor(t)
	if _, err := mon.RunMonitored(2*time.Second, time.Second, nil); err != nil {
		t.Fatal(err)
	}

	rec, body := get(t, srv.Handler(), "/api/v1/targets")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/v1/targets status %d: %s", rec.Code, body)
	}
	var listing struct {
		Targets       []json.RawMessage `json:"targets"`
		MonitoredPids []int             `json:"monitoredPids"`
		Shards        int               `json:"shards"`
		SourceMode    string            `json:"sourceMode"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Targets) != len(pids) || len(listing.MonitoredPids) != len(pids) {
		t.Fatalf("targets listing %s", body)
	}
	if listing.Shards != 1 || listing.SourceMode != "hpc" {
		t.Fatalf("targets listing metadata %s", body)
	}

	// Attach a newly spawned process over HTTP.
	gen, err := workload.CPUStress(0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Spawn(gen)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, fmt.Sprintf("/api/v1/targets/%d", p.PID()), nil)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("attach status %d: %s", rec.Code, rec.Body.String())
	}
	if got := len(mon.Monitored()); got != len(pids)+1 {
		t.Fatalf("after HTTP attach Monitored() has %d pids", got)
	}

	// Detach it again.
	req = httptest.NewRequest(http.MethodDelete, fmt.Sprintf("/api/v1/targets/%d", p.PID()), nil)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("detach status %d: %s", rec.Code, rec.Body.String())
	}
	// Detaching twice is a 404; a malformed PID a 400; attaching an unknown
	// PID a 409.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("double detach status %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/api/v1/targets/zero", nil)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed pid status %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/api/v1/targets/424242", nil)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusConflict {
		t.Fatalf("unknown pid status %d", rec.Code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	_, mon, srv, pids := newServedMonitor(t)
	if _, err := mon.RunMonitored(4*time.Second, time.Second, nil); err != nil {
		t.Fatal(err)
	}
	mon.Shutdown() // drain the history subscriber so samples are all retained

	type row struct {
		Target       string  `json:"target"`
		Kind         string  `json:"kind"`
		Samples      int     `json:"samples"`
		FirstSeconds float64 `json:"firstSeconds"`
		LastSeconds  float64 `json:"lastSeconds"`
		AvgWatts     float64 `json:"avgWatts"`
		MaxWatts     float64 `json:"maxWatts"`
		P95Watts     float64 `json:"p95Watts"`
	}
	decode := func(body string) []row {
		var resp struct {
			Results []row `json:"results"`
		}
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("decode %q: %v", body, err)
		}
		return resp.Results
	}

	rec, body := get(t, srv.Handler(), "/api/v1/query")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/v1/query status %d: %s", rec.Code, body)
	}
	rows := decode(body)
	// One row per PID, per cgroup (web, web/api) and the machine total.
	if len(rows) != len(pids)+3 {
		t.Fatalf("query returned %d rows: %s", len(rows), body)
	}
	for _, r := range rows {
		if r.Samples != 4 {
			t.Fatalf("row %+v, want 4 samples", r)
		}
		if r.MaxWatts < r.AvgWatts {
			t.Fatalf("row %+v: max < avg", r)
		}
	}

	// Windowed + filtered query.
	rec, body = get(t, srv.Handler(), "/api/v1/query?from=3&kind=process&target=pid:"+fmt.Sprint(pids[0]))
	if rec.Code != http.StatusOK {
		t.Fatalf("filtered query status %d: %s", rec.Code, body)
	}
	rows = decode(body)
	if len(rows) != 1 || rows[0].Samples != 2 || rows[0].FirstSeconds != 3 || rows[0].LastSeconds != 4 {
		t.Fatalf("filtered query rows %s", body)
	}

	// Cgroup subtree query.
	rec, body = get(t, srv.Handler(), "/api/v1/query?cgroup=web")
	if rec.Code != http.StatusOK {
		t.Fatalf("cgroup query status %d", rec.Code)
	}
	rows = decode(body)
	if len(rows) != 2 {
		t.Fatalf("cgroup subtree query rows %s", body)
	}

	// Bad parameters are 400s.
	for _, u := range []string{
		"/api/v1/query?from=abc",
		"/api/v1/query?to=xyz",
		"/api/v1/query?kind=container",
		"/api/v1/query?target=nope",
		"/api/v1/query?minWatts=low",
		"/api/v1/query?from=9&to=1",
	} {
		rec, _ = get(t, srv.Handler(), u)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("GET %s status %d, want 400", u, rec.Code)
		}
	}
}

func TestQueryEndpointWithoutHistory(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Governor = cpu.GovernorPerformance
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := core.New(m, testModel())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mon.Shutdown)
	srv, err := New(mon)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	rec, _ := get(t, srv.Handler(), "/api/v1/query")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query without history status %d, want 503", rec.Code)
	}
	if _, err := New(nil); err == nil {
		t.Fatal("New(nil) should fail")
	}
}
