package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"powerapi/internal/machine"
	"powerapi/internal/workload"
)

func sampleReport(ts time.Duration) AggregatedReport {
	return AggregatedReport{
		Timestamp:   ts,
		IdleWatts:   31.5,
		ActiveWatts: 12,
		TotalWatts:  43.5,
		PerPID:      map[int]float64{1001: 8, 1002: 4},
		PerGroup:    map[string]float64{"web": 8, "batch": 4},
	}
}

func TestCSVReporter(t *testing.T) {
	if _, err := NewCSVReporter(nil, nil); err == nil {
		t.Fatal("nil writer should fail")
	}
	var b strings.Builder
	r, err := NewCSVReporter(&b, func(pid int) string {
		if pid == 1001 {
			return "web"
		}
		return "batch"
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Report(sampleReport(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := r.Report(sampleReport(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 5 { // header + 2 pids * 2 rounds
		t.Fatalf("csv has %d lines, want 5:\n%s", len(lines), b.String())
	}
	if lines[0] != "seconds,pid,group,watts,total_watts" {
		t.Fatalf("unexpected header %q", lines[0])
	}
	if !strings.Contains(lines[1], "1001,web,8.000") {
		t.Fatalf("unexpected first row %q", lines[1])
	}
}

func TestJSONLinesReporter(t *testing.T) {
	if _, err := NewJSONLinesReporter(nil); err == nil {
		t.Fatal("nil writer should fail")
	}
	var b strings.Builder
	r, err := NewJSONLinesReporter(&b)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Report(sampleReport(time.Second)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("expected one JSON line, got %q", out)
	}
	for _, want := range []string{"\"totalWatts\":43.5", "\"1001\":8", "\"perGroup\"", "\"web\":8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("json line missing %q: %s", want, out)
		}
	}
}

func TestCSVReporterTargetRows(t *testing.T) {
	var b strings.Builder
	r, err := NewCSVReporter(&b, func(int) string { return "app" }, WithTargetRows())
	if err != nil {
		t.Fatal(err)
	}
	report := sampleReport(time.Second)
	report.PerCgroup = map[string]float64{"web": 10, "web/api": 2}
	if err := r.Report(report); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 5 { // header + 2 pids + 2 cgroups
		t.Fatalf("csv has %d lines, want 5:\n%s", len(lines), b.String())
	}
	if lines[0] != "seconds,kind,target,group,watts,total_watts" {
		t.Fatalf("unexpected header %q", lines[0])
	}
	for i, want := range []string{
		"1.000,process,1001,app,8.000,43.500",
		"1.000,process,1002,app,4.000,43.500",
		"1.000,cgroup,web,,10.000,43.500",
		"1.000,cgroup,web/api,,2.000,43.500",
	} {
		if lines[i+1] != want {
			t.Fatalf("row %d = %q, want %q", i+1, lines[i+1], want)
		}
	}
}

func TestBufferedReportersFlushExplicitly(t *testing.T) {
	var b strings.Builder
	r, err := NewCSVReporter(&b, nil, WithBufferedWrites())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Report(sampleReport(time.Second)); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("buffered csv reporter wrote %d bytes before Flush", b.Len())
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "seconds,pid,group") {
		t.Fatalf("flushed csv missing rows: %q", b.String())
	}

	var jb strings.Builder
	j, err := NewJSONLinesReporter(&jb, WithBufferedWrites())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Report(sampleReport(time.Second)); err != nil {
		t.Fatal(err)
	}
	if jb.Len() != 0 {
		t.Fatalf("buffered json reporter wrote %d bytes before Flush", jb.Len())
	}
	if err := j.Close(); err != nil { // Close is the flush of shutdown paths
		t.Fatal(err)
	}
	if strings.Count(jb.String(), "\n") != 1 {
		t.Fatalf("flushed json = %q", jb.String())
	}
}

// failingWriter rejects every write, standing in for a full disk.
type failingWriter struct{ writes int }

func (w *failingWriter) Write([]byte) (int, error) {
	w.writes++
	return 0, errors.New("disk full")
}

// TestFlushSurfacesWriteErrors is the flush-on-error regression test: a
// buffered reporter accepts rows without touching the underlying writer, and
// the Flush of the shutdown path must surface the writer's error instead of
// dropping the rows silently.
func TestFlushSurfacesWriteErrors(t *testing.T) {
	w := &failingWriter{}
	r, err := NewCSVReporter(w, nil, WithBufferedWrites())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Report(sampleReport(time.Second)); err != nil {
		t.Fatalf("buffered report must not touch the writer: %v", err)
	}
	if w.writes != 0 {
		t.Fatalf("buffered report performed %d writes", w.writes)
	}
	if err := r.Flush(); err == nil {
		t.Fatal("flush into a failing writer must surface the error")
	}

	jw := &failingWriter{}
	j, err := NewJSONLinesReporter(jw, WithBufferedWrites())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Report(sampleReport(time.Second)); err != nil {
		t.Fatalf("buffered report must not touch the writer: %v", err)
	}
	if err := j.Flush(); err == nil {
		t.Fatal("flush into a failing writer must surface the error")
	}
}

// TestShutdownFlushesBufferedReporters wires a buffered reporter into the
// pipeline through WithFlushingReporter: Shutdown drains the reporter actor
// and then flushes, so every accepted row reaches the sink — and a failing
// flush lands on the pipeline's error counter rather than vanishing.
func TestShutdownFlushesBufferedReporters(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.PowerNoiseStdDevWatts = 0
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.CPUStress(0.7, 0)
	p, _ := m.Spawn(gen)

	var buf strings.Builder
	rep, err := NewJSONLinesReporter(&buf, WithBufferedWrites())
	if err != nil {
		t.Fatal(err)
	}
	api, err := New(m, testModel(), WithFlushingReporter("jsonl", rep.Report, rep.Flush))
	if err != nil {
		t.Fatal(err)
	}
	if err := api.Attach(p.PID()); err != nil {
		t.Fatal(err)
	}
	reports, err := api.RunMonitored(2*time.Second, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	api.Shutdown()
	if got := strings.Count(buf.String(), "\n"); got != len(reports) {
		t.Fatalf("sink holds %d lines after Shutdown, want %d", got, len(reports))
	}

	failing, err := NewJSONLinesReporter(&failingWriter{}, WithBufferedWrites())
	if err != nil {
		t.Fatal(err)
	}
	api2, err := New(m, testModel(), WithFlushingReporter("jsonl", failing.Report, failing.Flush))
	if err != nil {
		t.Fatal(err)
	}
	if err := api2.Attach(p.PID()); err != nil {
		t.Fatal(err)
	}
	if _, err := api2.RunMonitored(2*time.Second, time.Second, nil); err != nil {
		t.Fatal(err)
	}
	api2.Shutdown()
	if api2.ErrorCount() == 0 || api2.LastError() == nil {
		t.Fatal("failing flush must surface through the pipeline's error counter")
	}
	if !strings.Contains(api2.LastError().Error(), "flush") {
		t.Fatalf("LastError = %v, want a flush error", api2.LastError())
	}
}

func TestEnergyAccumulator(t *testing.T) {
	acc := NewEnergyAccumulator()
	if err := acc.Report(sampleReport(time.Second)); err != nil {
		t.Fatal(err)
	}
	// First report only anchors the timestamp.
	if acc.TotalEnergyJoules() != 0 {
		t.Fatalf("energy after first report = %v, want 0", acc.TotalEnergyJoules())
	}
	if err := acc.Report(sampleReport(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// 2 seconds at 43.5 W total, 8 W for pid 1001.
	if got := acc.TotalEnergyJoules(); got != 87 {
		t.Fatalf("total energy = %v, want 87", got)
	}
	if got := acc.EnergyByPID()[1001]; got != 16 {
		t.Fatalf("pid 1001 energy = %v, want 16", got)
	}
	if got := acc.EnergyByGroup()["batch"]; got != 8 {
		t.Fatalf("batch group energy = %v, want 8", got)
	}
	// Non-monotonic timestamps are rejected.
	if err := acc.Report(sampleReport(2 * time.Second)); err == nil {
		t.Fatal("non-monotonic report should fail")
	}
}

func TestPipelineWithGroupingAndExtraReporters(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.PowerNoiseStdDevWatts = 0
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	web, _ := workload.MemoryStress(0.8, 0)
	batch, _ := workload.CPUStress(0.6, 0)
	p1, _ := m.Spawn(web)
	p2, _ := m.Spawn(batch)

	var csvBuf, jsonBuf strings.Builder
	csvReporter, err := NewCSVReporter(&csvBuf, nil)
	if err != nil {
		t.Fatal(err)
	}
	jsonReporter, err := NewJSONLinesReporter(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewEnergyAccumulator()

	api, err := New(m, testModel(),
		WithProcessNameGrouping(m),
		WithReporter("csv", csvReporter.Report),
		WithReporter("jsonl", jsonReporter.Report),
		WithReporter("energy", acc.Report),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer api.Shutdown()
	if err := api.Attach(p1.PID(), p2.PID()); err != nil {
		t.Fatal(err)
	}
	reports, err := api.RunMonitored(3*time.Second, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := reports[len(reports)-1]
	if len(last.PerGroup) != 2 {
		t.Fatalf("PerGroup = %v, want 2 groups", last.PerGroup)
	}
	if last.PerGroup[p1.Name()] <= 0 {
		t.Fatalf("no power attributed to group %q", p1.Name())
	}
	// Shut down to flush the extra reporter actors before inspecting output.
	api.Shutdown()
	if !strings.Contains(csvBuf.String(), "seconds,pid,group") {
		t.Fatal("csv reporter produced no output")
	}
	if strings.Count(jsonBuf.String(), "\n") != len(reports) {
		t.Fatalf("json reporter wrote %d lines, want %d", strings.Count(jsonBuf.String(), "\n"), len(reports))
	}
	if acc.TotalEnergyJoules() <= 0 {
		t.Fatal("energy accumulator saw no energy")
	}
	if api.ErrorCount() != 0 {
		t.Fatalf("pipeline errors: %v", api.LastError())
	}
}

func TestWithGroupResolverUnknownPID(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.CPUStress(0.5, 0)
	p, _ := m.Spawn(gen)
	api, err := New(m, testModel(), WithGroupResolver(func(int) string { return "everything" }))
	if err != nil {
		t.Fatal(err)
	}
	defer api.Shutdown()
	if err := api.Attach(p.PID()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	report, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.PerGroup) != 1 || report.PerGroup["everything"] <= 0 {
		t.Fatalf("PerGroup = %v", report.PerGroup)
	}
}
