package core

import (
	"strings"
	"testing"
	"time"

	"powerapi/internal/machine"
	"powerapi/internal/workload"
)

func sampleReport(ts time.Duration) AggregatedReport {
	return AggregatedReport{
		Timestamp:   ts,
		IdleWatts:   31.5,
		ActiveWatts: 12,
		TotalWatts:  43.5,
		PerPID:      map[int]float64{1001: 8, 1002: 4},
		PerGroup:    map[string]float64{"web": 8, "batch": 4},
	}
}

func TestCSVReporter(t *testing.T) {
	if _, err := NewCSVReporter(nil, nil); err == nil {
		t.Fatal("nil writer should fail")
	}
	var b strings.Builder
	r, err := NewCSVReporter(&b, func(pid int) string {
		if pid == 1001 {
			return "web"
		}
		return "batch"
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Report(sampleReport(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := r.Report(sampleReport(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 5 { // header + 2 pids * 2 rounds
		t.Fatalf("csv has %d lines, want 5:\n%s", len(lines), b.String())
	}
	if lines[0] != "seconds,pid,group,watts,total_watts" {
		t.Fatalf("unexpected header %q", lines[0])
	}
	if !strings.Contains(lines[1], "1001,web,8.000") {
		t.Fatalf("unexpected first row %q", lines[1])
	}
}

func TestJSONLinesReporter(t *testing.T) {
	if _, err := NewJSONLinesReporter(nil); err == nil {
		t.Fatal("nil writer should fail")
	}
	var b strings.Builder
	r, err := NewJSONLinesReporter(&b)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Report(sampleReport(time.Second)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("expected one JSON line, got %q", out)
	}
	for _, want := range []string{"\"totalWatts\":43.5", "\"1001\":8", "\"perGroup\"", "\"web\":8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("json line missing %q: %s", want, out)
		}
	}
}

func TestEnergyAccumulator(t *testing.T) {
	acc := NewEnergyAccumulator()
	if err := acc.Report(sampleReport(time.Second)); err != nil {
		t.Fatal(err)
	}
	// First report only anchors the timestamp.
	if acc.TotalEnergyJoules() != 0 {
		t.Fatalf("energy after first report = %v, want 0", acc.TotalEnergyJoules())
	}
	if err := acc.Report(sampleReport(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// 2 seconds at 43.5 W total, 8 W for pid 1001.
	if got := acc.TotalEnergyJoules(); got != 87 {
		t.Fatalf("total energy = %v, want 87", got)
	}
	if got := acc.EnergyByPID()[1001]; got != 16 {
		t.Fatalf("pid 1001 energy = %v, want 16", got)
	}
	if got := acc.EnergyByGroup()["batch"]; got != 8 {
		t.Fatalf("batch group energy = %v, want 8", got)
	}
	// Non-monotonic timestamps are rejected.
	if err := acc.Report(sampleReport(2 * time.Second)); err == nil {
		t.Fatal("non-monotonic report should fail")
	}
}

func TestPipelineWithGroupingAndExtraReporters(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.PowerNoiseStdDevWatts = 0
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	web, _ := workload.MemoryStress(0.8, 0)
	batch, _ := workload.CPUStress(0.6, 0)
	p1, _ := m.Spawn(web)
	p2, _ := m.Spawn(batch)

	var csvBuf, jsonBuf strings.Builder
	csvReporter, err := NewCSVReporter(&csvBuf, nil)
	if err != nil {
		t.Fatal(err)
	}
	jsonReporter, err := NewJSONLinesReporter(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewEnergyAccumulator()

	api, err := New(m, testModel(),
		WithProcessNameGrouping(m),
		WithReporter("csv", csvReporter.Report),
		WithReporter("jsonl", jsonReporter.Report),
		WithReporter("energy", acc.Report),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer api.Shutdown()
	if err := api.Attach(p1.PID(), p2.PID()); err != nil {
		t.Fatal(err)
	}
	reports, err := api.RunMonitored(3*time.Second, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := reports[len(reports)-1]
	if len(last.PerGroup) != 2 {
		t.Fatalf("PerGroup = %v, want 2 groups", last.PerGroup)
	}
	if last.PerGroup[p1.Name()] <= 0 {
		t.Fatalf("no power attributed to group %q", p1.Name())
	}
	// Shut down to flush the extra reporter actors before inspecting output.
	api.Shutdown()
	if !strings.Contains(csvBuf.String(), "seconds,pid,group") {
		t.Fatal("csv reporter produced no output")
	}
	if strings.Count(jsonBuf.String(), "\n") != len(reports) {
		t.Fatalf("json reporter wrote %d lines, want %d", strings.Count(jsonBuf.String(), "\n"), len(reports))
	}
	if acc.TotalEnergyJoules() <= 0 {
		t.Fatal("energy accumulator saw no energy")
	}
	if api.ErrorCount() != 0 {
		t.Fatalf("pipeline errors: %v", api.LastError())
	}
}

func TestWithGroupResolverUnknownPID(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.CPUStress(0.5, 0)
	p, _ := m.Spawn(gen)
	api, err := New(m, testModel(), WithGroupResolver(func(int) string { return "everything" }))
	if err != nil {
		t.Fatal(err)
	}
	defer api.Shutdown()
	if err := api.Attach(p.PID()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	report, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.PerGroup) != 1 || report.PerGroup["everything"] <= 0 {
		t.Fatalf("PerGroup = %v", report.PerGroup)
	}
}
