package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"powerapi/internal/cpu"
	"powerapi/internal/machine"
	"powerapi/internal/rapl"
	"powerapi/internal/source"
	"powerapi/internal/workload"
)

// spawnMix starts a few distinct workloads and returns their PIDs.
func spawnMix(t *testing.T, m *machine.Machine, levels ...float64) []int {
	t.Helper()
	pids := make([]int, 0, len(levels))
	for _, level := range levels {
		gen, err := workload.CPUStress(level, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.Spawn(gen)
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, p.PID())
	}
	return pids
}

func TestWithSourcesValidation(t *testing.T) {
	m := newTestMachine(t)
	if _, err := New(m, testModel(), WithSources(source.Mode(99))); err == nil {
		t.Fatal("invalid mode should fail")
	}
	api, err := New(m, testModel(), WithSources(source.ModeRAPL))
	if err != nil {
		t.Fatal(err)
	}
	defer api.Shutdown()
	if api.SourceMode() != source.ModeRAPL {
		t.Fatalf("SourceMode() = %v, want rapl", api.SourceMode())
	}
}

func TestWithCollectTimeoutValidation(t *testing.T) {
	m := newTestMachine(t)
	if _, err := New(m, testModel(), WithCollectTimeout(0)); err == nil {
		t.Fatal("zero collect timeout should fail")
	}
	if _, err := New(m, testModel(), WithCollectTimeout(-time.Second)); err == nil {
		t.Fatal("negative collect timeout should fail")
	}
	api, err := New(m, testModel(), WithCollectTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer api.Shutdown()
	if api.CollectTimeout() != 30*time.Second {
		t.Fatalf("CollectTimeout() = %v, want 30s", api.CollectTimeout())
	}
	apiDefault := newTestAPI(t, newTestMachine(t))
	if apiDefault.CollectTimeout() != DefaultCollectTimeout {
		t.Fatalf("default CollectTimeout() = %v, want %v", apiDefault.CollectTimeout(), DefaultCollectTimeout)
	}
}

// TestBlendedRoundTripSumsToRAPLPackagePower is the blended-attribution
// contract: one full pipeline round trip must attribute exactly the RAPL
// package power across the monitored PIDs (Kepler-style ratio split).
func TestBlendedRoundTripSumsToRAPLPackagePower(t *testing.T) {
	for _, shards := range []int{1, 4} {
		m := newTestMachine(t)
		// An independent RAPL counter opened at the same simulated instant as
		// the pipeline's source reads identical registers: it is the test's
		// ground-truth view of what the pipeline should have attributed.
		meter, err := rapl.NewMachineMeter(m)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := meter.OpenCounter(0, rapl.DomainPackage)
		if err != nil {
			t.Fatal(err)
		}
		api, err := New(m, testModel(), WithShards(shards), WithSources(source.ModeBlended))
		if err != nil {
			t.Fatal(err)
		}
		pids := spawnMix(t, m, 1.0, 0.7, 0.4, 0.2, 0.9)
		if err := api.Attach(pids...); err != nil {
			t.Fatal(err)
		}
		lastTS := m.Now()
		for round := 0; round < 3; round++ {
			if _, err := m.Run(time.Second); err != nil {
				t.Fatal(err)
			}
			report, err := api.Collect()
			if err != nil {
				t.Fatal(err)
			}
			window := (report.Timestamp - lastTS).Seconds()
			lastTS = report.Timestamp
			joules, err := pkg.DeltaJoules()
			if err != nil {
				t.Fatal(err)
			}
			raplWatts := joules / window

			var sum float64
			for _, watts := range report.PerPID {
				sum += watts
			}
			if len(report.PerPID) != len(pids) {
				t.Fatalf("shards=%d round %d: PerPID has %d entries, want %d", shards, round, len(report.PerPID), len(pids))
			}
			if math.Abs(sum-raplWatts) > 1e-6 {
				t.Fatalf("shards=%d round %d: per-PID sum %.9f W != RAPL package power %.9f W", shards, round, sum, raplWatts)
			}
			if math.Abs(sum-report.ActiveWatts) > 1e-6 || math.Abs(report.MeasuredWatts-raplWatts) > 1e-6 {
				t.Fatalf("shards=%d round %d: active %.9f measured %.9f rapl %.9f", shards, round, report.ActiveWatts, report.MeasuredWatts, raplWatts)
			}
			// RAPL measures the idle floor too, so the model's idle constant
			// must not be stacked on top.
			if report.IdleWatts != 0 {
				t.Fatalf("blended IdleWatts = %v, want 0", report.IdleWatts)
			}
			if report.TotalWatts != report.ActiveWatts {
				t.Fatal("blended TotalWatts must equal ActiveWatts")
			}
			if report.SourceMode != "blended" {
				t.Fatalf("SourceMode = %q", report.SourceMode)
			}
			// The attribution key is counter activity: the flat-out process
			// must get more of the budget than the barely-loaded one.
			if report.PerPID[pids[0]] <= report.PerPID[pids[3]] {
				t.Fatalf("shards=%d round %d: 100%% load got %.3f W, 20%% load %.3f W", shards, round, report.PerPID[pids[0]], report.PerPID[pids[3]])
			}
		}
		if api.ErrorCount() != 0 {
			t.Fatalf("pipeline reported %d errors: %v", api.ErrorCount(), api.LastError())
		}
		api.Shutdown()
	}
}

func TestRAPLModeAttributesByCPUTimeShare(t *testing.T) {
	m := newTestMachine(t)
	api, err := New(m, testModel(), WithSources(source.ModeRAPL))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	pids := spawnMix(t, m, 1.0, 0.25)
	if err := api.Attach(pids...); err != nil {
		t.Fatal(err)
	}
	start := m.CPUEnergyJoules() + m.DRAMEnergyJoules()
	if _, err := m.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	report, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	truth := (m.CPUEnergyJoules() + m.DRAMEnergyJoules() - start) / 2.0
	var sum float64
	for _, watts := range report.PerPID {
		sum += watts
	}
	if math.Abs(sum-report.MeasuredWatts) > 1e-6 {
		t.Fatalf("per-PID sum %.9f != measured %.9f", sum, report.MeasuredWatts)
	}
	// Package+DRAM energy over the window, modulo counter quantization.
	if math.Abs(report.MeasuredWatts-truth) > 0.05 {
		t.Fatalf("measured %.3f W, ground truth %.3f W", report.MeasuredWatts, truth)
	}
	if report.PerPID[pids[0]] <= report.PerPID[pids[1]] {
		t.Fatalf("busy pid got %.3f W, light pid %.3f W", report.PerPID[pids[0]], report.PerPID[pids[1]])
	}
	if report.IdleWatts != 0 {
		t.Fatalf("rapl IdleWatts = %v, want 0", report.IdleWatts)
	}
}

func TestProcfsModeFallsBackToUtilization(t *testing.T) {
	m := newTestMachine(t)
	api, err := New(m, testModel(), WithSources(source.ModeProcfs))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	pids := spawnMix(t, m, 0.9, 0.3)
	if err := api.Attach(pids...); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	report, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if report.SourceMode != "procfs" {
		t.Fatalf("SourceMode = %q", report.SourceMode)
	}
	// The utilisation proxy only measures active power: the model's idle
	// constant still applies.
	if report.IdleWatts != testModel().IdleWatts {
		t.Fatalf("procfs IdleWatts = %v, want model idle %v", report.IdleWatts, testModel().IdleWatts)
	}
	if report.ActiveWatts <= 0 || report.ActiveWatts > m.Spec().TDPWatts {
		t.Fatalf("active watts %.3f outside (0, TDP]", report.ActiveWatts)
	}
	if report.PerPID[pids[0]] <= report.PerPID[pids[1]] {
		t.Fatalf("heavier pid got %.3f W, lighter pid %.3f W", report.PerPID[pids[0]], report.PerPID[pids[1]])
	}
	var sum float64
	for _, watts := range report.PerPID {
		sum += watts
	}
	if math.Abs(sum-report.ActiveWatts) > 1e-6 {
		t.Fatalf("per-PID sum %.9f != active %.9f", sum, report.ActiveWatts)
	}
}

// TestGroupResolverAggregatesAcrossShards pins the satellite requirement:
// WithGroupResolver must produce identical group totals no matter how many
// shards the PIDs are spread over, in the formula mode and in an attributed
// mode.
func TestGroupResolverAggregatesAcrossShards(t *testing.T) {
	for _, mode := range []source.Mode{source.ModeHPC, source.ModeBlended} {
		groups := func(pid int) string {
			if pid%2 == 0 {
				return "even"
			}
			return "odd"
		}
		run := func(shards int) (map[string]float64, map[int]float64) {
			m := newTestMachine(t)
			api, err := New(m, testModel(), WithShards(shards), WithSources(mode), WithGroupResolver(groups))
			if err != nil {
				t.Fatal(err)
			}
			defer api.Shutdown()
			pids := spawnMix(t, m, 1.0, 0.8, 0.6, 0.4, 0.2, 0.9, 0.7, 0.5)
			if err := api.Attach(pids...); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(2 * time.Second); err != nil {
				t.Fatal(err)
			}
			report, err := api.Collect()
			if err != nil {
				t.Fatal(err)
			}
			if api.ErrorCount() != 0 {
				t.Fatalf("mode %v shards %d: %d errors: %v", mode, shards, api.ErrorCount(), api.LastError())
			}
			return report.PerGroup, report.PerPID
		}
		g1, p1 := run(1)
		g4, p4 := run(4)
		if len(g1) != 2 || len(g4) != 2 {
			t.Fatalf("mode %v: groups %v vs %v, want even+odd in both", mode, g1, g4)
		}
		for name, watts := range g1 {
			if math.Abs(g4[name]-watts) > 1e-9 {
				t.Fatalf("mode %v: group %q diverges across shard counts: %.9f vs %.9f", mode, name, watts, g4[name])
			}
		}
		// Group totals must tie out to the per-PID attribution.
		var groupSum, pidSum float64
		for _, watts := range g4 {
			groupSum += watts
		}
		for _, watts := range p4 {
			pidSum += watts
		}
		if math.Abs(groupSum-pidSum) > 1e-9 {
			t.Fatalf("mode %v: group sum %.9f != pid sum %.9f", mode, groupSum, pidSum)
		}
		_ = p1
	}
}

// TestAttributedModeWithNothingMonitored checks the degenerate rounds: a
// measured total with no attribution targets is still reported, and an
// all-idle window with targets splits evenly instead of dividing by zero.
func TestAttributedModeWithNothingMonitored(t *testing.T) {
	m := newTestMachine(t)
	api, err := New(m, testModel(), WithSources(source.ModeRAPL))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	report, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.PerPID) != 0 {
		t.Fatalf("nothing monitored but PerPID = %v", report.PerPID)
	}
	if report.ActiveWatts <= 0 {
		t.Fatalf("machine-level measurement lost: active = %v", report.ActiveWatts)
	}

	// Idle processes: zero CPU-time weights, even split.
	idle1, err := m.Spawn(workload.Idle(0))
	if err != nil {
		t.Fatal(err)
	}
	idle2, err := m.Spawn(workload.Idle(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := api.Attach(idle1.PID(), idle2.PID()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	report, err = api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.PerPID) != 2 {
		t.Fatalf("PerPID = %v", report.PerPID)
	}
	if math.Abs(report.PerPID[idle1.PID()]-report.PerPID[idle2.PID()]) > 1e-9 {
		t.Fatalf("even split expected, got %v", report.PerPID)
	}
	var sum float64
	for _, watts := range report.PerPID {
		sum += watts
	}
	if math.Abs(sum-report.ActiveWatts) > 1e-6 {
		t.Fatalf("per-PID sum %.9f != active %.9f", sum, report.ActiveWatts)
	}
}

// TestRAPLModesRejectUnsupportedSpecs mirrors powermeter.NewRAPL: a
// processor generation without RAPL MSRs cannot drive the rapl or blended
// modes, reproducing the architecture dependence the paper criticises.
func TestRAPLModesRejectUnsupportedSpecs(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Spec = cpu.IntelCore2DuoE6600()
	cfg.Governor = cpu.GovernorPerformance
	cfg.PowerNoiseStdDevWatts = 0
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []source.Mode{source.ModeRAPL, source.ModeBlended} {
		if _, err := New(m, testModel(), WithSources(mode)); !errors.Is(err, rapl.ErrUnsupported) {
			t.Fatalf("mode %v on a pre-RAPL spec: err = %v, want rapl.ErrUnsupported", mode, err)
		}
	}
	// The counter- and procfs-based modes keep working on the same spec.
	api, err := New(m, testModel(), WithSources(source.ModeProcfs))
	if err != nil {
		t.Fatal(err)
	}
	api.Shutdown()
}

// TestCustomTotalSourceSurfacesMeasurementInHPCMode pins that a machine-scope
// source plugged into the formula-driven mode still reports its measurement,
// without driving the attribution.
func TestCustomTotalSourceSurfacesMeasurementInHPCMode(t *testing.T) {
	m := newTestMachine(t)
	api, err := New(m, testModel(), WithSourceFactories(SourceFactories{
		Total: func() (source.Source, error) { return source.NewUtilizationTotal(m) },
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	pids := spawnMix(t, m, 0.8)
	if err := api.Attach(pids...); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	report, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if report.SourceMode != "hpc" {
		t.Fatalf("SourceMode = %q", report.SourceMode)
	}
	if report.MeasuredWatts <= 0 {
		t.Fatalf("custom total source's measurement was discarded: MeasuredWatts = %v", report.MeasuredWatts)
	}
	// The attribution stays formula-driven: active power comes from the
	// model, not from the measurement.
	if report.IdleWatts != testModel().IdleWatts {
		t.Fatalf("IdleWatts = %v, want model idle", report.IdleWatts)
	}
	if report.ActiveWatts == report.MeasuredWatts {
		t.Fatal("hpc-mode attribution must not be driven by the measurement")
	}
}

// closeTrackingSource wraps a Source and records whether Close was called.
type closeTrackingSource struct {
	source.Source
	closed *bool
}

func (c closeTrackingSource) Close() error {
	*c.closed = true
	return c.Source.Close()
}

// TestNewCleansUpOnConstructorFailure pins that a half-built pipeline does
// not leak: sources opened before a later factory fails are closed again and
// the already-spawned actors are shut down.
func TestNewCleansUpOnConstructorFailure(t *testing.T) {
	m := newTestMachine(t)
	closed := false
	_, err := New(m, testModel(), WithShards(2), WithSources(source.ModeProcfs),
		WithSourceFactories(SourceFactories{
			Attribution: func(shard int) (source.Source, error) {
				if shard == 1 {
					return nil, errors.New("boom")
				}
				inner, err := source.NewProcfs(m)
				if err != nil {
					return nil, err
				}
				return closeTrackingSource{Source: inner, closed: &closed}, nil
			},
		}))
	if err == nil {
		t.Fatal("failing attribution factory must fail New")
	}
	if !closed {
		t.Fatal("shard 0's already-opened source was not closed on constructor failure")
	}
}

// TestSourceFactoriesOverride checks that a custom Source implementation can
// be plugged into the pipeline wholesale.
func TestSourceFactoriesOverride(t *testing.T) {
	m := newTestMachine(t)
	built := 0
	api, err := New(m, testModel(),
		WithShards(2),
		WithSources(source.ModeProcfs),
		WithSourceFactories(SourceFactories{
			Attribution: func(shard int) (source.Source, error) {
				built++
				return source.NewProcfs(m)
			},
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	if built != 2 {
		t.Fatalf("attribution factory invoked %d times, want once per shard", built)
	}
	pids := spawnMix(t, m, 0.8)
	if err := api.Attach(pids...); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := api.Collect(); err != nil {
		t.Fatal(err)
	}
}
