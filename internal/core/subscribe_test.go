package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"powerapi/internal/cgroup"
	"powerapi/internal/history"
	"powerapi/internal/source"
	"powerapi/internal/target"
)

// drainAll consumes a subscription channel until it is closed, returning the
// received reports in order. An optional perReport delay simulates a slow
// consumer.
func drainAll(sub *Subscription, perReport time.Duration, out *[]AggregatedReport, done *sync.WaitGroup) {
	done.Add(1)
	go func() {
		defer done.Done()
		for report := range sub.C() {
			if perReport > 0 {
				time.Sleep(perReport)
			}
			*out = append(*out, report)
		}
	}()
}

// TestSubscribeBackpressureMatrix exercises the three policies against fast
// and slow consumers on the unsharded and 4-way-sharded pipelines: no combo
// may deadlock, Block subscribers see every round exactly once, Conflate and
// DropOldest subscribers see a strictly increasing subsequence ending on the
// final round, and the Delivered/Dropped counters reconcile with what each
// consumer actually received.
func TestSubscribeBackpressureMatrix(t *testing.T) {
	const rounds = 25
	for _, shards := range []int{1, 4} {
		for _, policy := range []BackpressurePolicy{Conflate, DropOldest, Block} {
			for _, slow := range []bool{false, true} {
				name := fmt.Sprintf("shards=%d/%v/slow=%v", shards, policy, slow)
				t.Run(name, func(t *testing.T) {
					m := newTestMachine(t)
					api, err := New(m, testModel(), WithShards(shards))
					if err != nil {
						t.Fatal(err)
					}
					pids := spawnMix(t, m, 0.9, 0.5, 0.3, 0.7)
					if err := api.Attach(pids...); err != nil {
						t.Fatal(err)
					}
					sub, err := api.Subscribe(SubscribeOptions{Name: name, Policy: policy, Buffer: 4})
					if err != nil {
						t.Fatal(err)
					}
					delay := time.Duration(0)
					if slow {
						delay = 2 * time.Millisecond
					}
					var received []AggregatedReport
					var wg sync.WaitGroup
					drainAll(sub, delay, &received, &wg)

					reports, err := api.RunMonitored(rounds*time.Second, time.Second, nil)
					if err != nil {
						t.Fatal(err)
					}
					if len(reports) != rounds {
						t.Fatalf("run produced %d rounds, want %d", len(reports), rounds)
					}
					api.Shutdown() // closes the subscription; the drain goroutine exits
					wg.Wait()

					last := reports[len(reports)-1].Timestamp
					for i := 1; i < len(received); i++ {
						if received[i].Timestamp <= received[i-1].Timestamp {
							t.Fatalf("non-monotonic delivery: %v after %v", received[i].Timestamp, received[i-1].Timestamp)
						}
					}
					if len(received) == 0 {
						t.Fatal("no reports delivered")
					}
					if got := received[len(received)-1].Timestamp; got != last {
						t.Fatalf("last delivered round %v, want the final round %v", got, last)
					}
					// Every delivered report conserves its own attribution.
					for _, r := range received {
						sum := 0.0
						for _, watts := range r.PerPID {
							sum += watts
						}
						if math.Abs(sum-r.ActiveWatts) > 1e-6 {
							t.Fatalf("delivered report not conserved: sum %.9f active %.9f", sum, r.ActiveWatts)
						}
					}
					delivered, dropped := sub.Delivered(), sub.Dropped()
					if uint64(len(received)) != delivered-dropped {
						t.Fatalf("received %d reports, counters say delivered %d - dropped %d", len(received), delivered, dropped)
					}
					if policy == Block {
						if delivered != rounds || dropped != 0 {
							t.Fatalf("Block subscriber: delivered %d dropped %d, want %d/0", delivered, dropped, rounds)
						}
						if len(received) != rounds {
							t.Fatalf("Block subscriber received %d of %d rounds", len(received), rounds)
						}
					}
				})
			}
		}
	}
}

// TestManySubscribersMixedPoliciesConservation is the acceptance scenario: a
// 4-way-sharded blended-attribution monitor with 128 concurrent subscribers
// of mixed policies completes a 100-round run; Block subscribers miss zero
// ticks, Conflate subscribers end on the exact latest round, and every
// delivered report conserves the measured RAPL watts across its PIDs.
func TestManySubscribersMixedPoliciesConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("128 subscribers x 100 rounds is too slow for -short")
	}
	const (
		subscribers = 128
		rounds      = 100
	)
	m := newTestMachine(t)
	api, err := New(m, testModel(), WithShards(4), WithSources(source.ModeBlended))
	if err != nil {
		t.Fatal(err)
	}
	pids := spawnMix(t, m, 1.0, 0.7, 0.4, 0.2, 0.9, 0.6)
	if err := api.Attach(pids...); err != nil {
		t.Fatal(err)
	}

	subs := make([]*Subscription, subscribers)
	received := make([][]AggregatedReport, subscribers)
	var wg sync.WaitGroup
	for i := range subs {
		policy := []BackpressurePolicy{Block, Conflate, DropOldest}[i%3]
		sub, err := api.Subscribe(SubscribeOptions{Name: fmt.Sprintf("sub-%d", i), Policy: policy, Buffer: 8})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
		drainAll(sub, 0, &received[i], &wg)
	}
	if got := api.Subscriptions(); got != subscribers {
		t.Fatalf("Subscriptions() = %d, want %d", got, subscribers)
	}

	reports, err := api.RunMonitored(rounds*time.Second, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != rounds {
		t.Fatalf("run produced %d rounds, want %d", len(reports), rounds)
	}
	api.Shutdown()
	wg.Wait()

	last := reports[len(reports)-1].Timestamp
	for i, sub := range subs {
		got := received[i]
		if len(got) == 0 {
			t.Fatalf("subscriber %d received nothing", i)
		}
		if gotLast := got[len(got)-1].Timestamp; gotLast != last {
			t.Fatalf("subscriber %d (%v) ended on round %v, want %v", i, sub.Policy(), gotLast, last)
		}
		if sub.Policy() == Block {
			if len(got) != rounds || sub.Dropped() != 0 {
				t.Fatalf("Block subscriber %d missed ticks: received %d of %d (dropped %d)", i, len(got), rounds, sub.Dropped())
			}
		}
		for _, r := range got {
			sum := 0.0
			for _, watts := range r.PerPID {
				sum += watts
			}
			if math.Abs(sum-r.MeasuredWatts) > 1e-6 {
				t.Fatalf("subscriber %d: per-PID sum %.9f != measured %.9f", i, sum, r.MeasuredWatts)
			}
		}
	}
}

// TestSubscriptionFiltersAndDecimation covers the breakdown filters (kind,
// target set, cgroup subtree, min-watts) and interval decimation.
func TestSubscriptionFiltersAndDecimation(t *testing.T) {
	const rounds = 6
	m := newTestMachine(t)
	h := cgroup.NewHierarchy()
	pids := spawnMix(t, m, 0.9, 0.6, 0.4)
	if err := h.Add("web", pids[0]); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("web/api", pids[1]); err != nil {
		t.Fatal(err)
	}
	api, err := New(m, testModel(), WithCgroups(h))
	if err != nil {
		t.Fatal(err)
	}
	defer api.Shutdown()
	if err := api.AttachTargets(target.Cgroup("web")); err != nil {
		t.Fatal(err)
	}
	if err := api.Attach(pids[2]); err != nil {
		t.Fatal(err)
	}

	processOnly, err := api.Subscribe(SubscribeOptions{Policy: Block, Kinds: []target.Kind{target.KindProcess}})
	if err != nil {
		t.Fatal(err)
	}
	webSubtree, err := api.Subscribe(SubscribeOptions{Policy: Block, CgroupSubtree: "web"})
	if err != nil {
		t.Fatal(err)
	}
	onePID, err := api.Subscribe(SubscribeOptions{Policy: Block, Targets: []target.Target{target.Process(pids[2])}})
	if err != nil {
		t.Fatal(err)
	}
	tooHot, err := api.Subscribe(SubscribeOptions{Policy: Block, MinWatts: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	everyThird, err := api.Subscribe(SubscribeOptions{Policy: Block, Every: 3})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var fromProcessOnly, fromWebSubtree, fromOnePID, fromTooHot, fromEveryThird []AggregatedReport
	drainAll(processOnly, 0, &fromProcessOnly, &wg)
	drainAll(webSubtree, 0, &fromWebSubtree, &wg)
	drainAll(onePID, 0, &fromOnePID, &wg)
	drainAll(tooHot, 0, &fromTooHot, &wg)
	drainAll(everyThird, 0, &fromEveryThird, &wg)

	if _, err := api.RunMonitored(rounds*time.Second, time.Second, nil); err != nil {
		t.Fatal(err)
	}
	api.Shutdown()
	wg.Wait()

	if len(fromProcessOnly) != rounds {
		t.Fatalf("kind filter delivered %d rounds, want %d", len(fromProcessOnly), rounds)
	}
	for _, r := range fromProcessOnly {
		if len(r.PerCgroup) != 0 {
			t.Fatalf("kind=process report still carries cgroup rows: %v", r.PerCgroup)
		}
		if len(r.PerPID) != 3 {
			t.Fatalf("kind=process report has %d PIDs, want 3", len(r.PerPID))
		}
	}
	for _, r := range fromWebSubtree {
		for path := range r.PerCgroup {
			if path != "web" && !strings.HasPrefix(path, "web/") {
				t.Fatalf("subtree filter leaked cgroup %q", path)
			}
		}
		for pid := range r.PerPID {
			if pid != pids[0] && pid != pids[1] {
				t.Fatalf("subtree filter leaked pid %d", pid)
			}
		}
		if len(r.PerPID) != 2 {
			t.Fatalf("subtree report has %d PIDs, want the 2 web members", len(r.PerPID))
		}
	}
	for _, r := range fromOnePID {
		if len(r.PerPID) != 1 || len(r.PerCgroup) != 0 {
			t.Fatalf("target-set filter delivered %v / %v", r.PerPID, r.PerCgroup)
		}
		if _, ok := r.PerPID[pids[2]]; !ok {
			t.Fatalf("target-set filter lost pid %d: %v", pids[2], r.PerPID)
		}
	}
	if len(fromTooHot) != 0 {
		t.Fatalf("min-watts filter delivered %d rounds, want 0", len(fromTooHot))
	}
	if tooHot.Delivered() != 0 {
		t.Fatalf("min-watts Delivered() = %d, want 0", tooHot.Delivered())
	}
	// Every=3 over 6 rounds delivers rounds 1 and 4.
	if len(fromEveryThird) != 2 {
		t.Fatalf("decimation delivered %d rounds, want 2", len(fromEveryThird))
	}
}

// TestSubscribeValidation rejects malformed subscription options.
func TestSubscribeValidation(t *testing.T) {
	m := newTestMachine(t)
	api := newTestAPI(t, m)
	bad := []SubscribeOptions{
		{Policy: BackpressurePolicy(42)},
		{Buffer: -1},
		{Every: -2},
		{MinWatts: -1},
		{Targets: []target.Target{target.Machine()}},
		{Kinds: []target.Kind{target.KindMachine}},
		{CgroupSubtree: "web//api"},
		// A subtree filter on a monitor with neither a cgroup hierarchy nor
		// a cgroup-scope source could never deliver anything.
		{CgroupSubtree: "web"},
	}
	for _, opts := range bad {
		if _, err := api.Subscribe(opts); err == nil {
			t.Fatalf("Subscribe(%+v) should fail", opts)
		}
	}
	sub, err := api.Subscribe(SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
	sub.Close() // idempotent
	api.Shutdown()
	if _, err := api.Subscribe(SubscribeOptions{}); err == nil {
		t.Fatal("Subscribe after Shutdown should fail")
	}
	// Reports() first called after Shutdown yields one stable closed channel.
	ch := api.Reports()
	if api.Reports() != ch {
		t.Fatal("post-shutdown Reports() must keep returning the same channel")
	}
	if _, ok := <-ch; ok {
		t.Fatal("post-shutdown Reports() channel must be closed")
	}
}

// TestReportsLegacyChannel is the regression test of the deprecated
// single-channel API: Reports() returns one stable channel backed by a lazy
// DropOldest subscription sized by WithReportBuffer, an unconsumed channel
// never blocks the pipeline, the latest rounds survive, and Shutdown closes
// the channel.
func TestReportsLegacyChannel(t *testing.T) {
	const rounds = 6
	m := newTestMachine(t)
	api, err := New(m, testModel(), WithReportBuffer(2))
	if err != nil {
		t.Fatal(err)
	}
	pids := spawnMix(t, m, 0.8, 0.4)
	if err := api.Attach(pids...); err != nil {
		t.Fatal(err)
	}
	ch := api.Reports()
	if api.Reports() != ch {
		t.Fatal("Reports() must return the same channel on every call")
	}
	// Nobody consumes the channel during the run: the pipeline must not block.
	reports, err := api.RunMonitored(rounds*time.Second, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	api.Shutdown()
	var got []AggregatedReport
	for r := range ch { // Shutdown closed the channel
		got = append(got, r)
	}
	if len(got) != 2 {
		t.Fatalf("legacy channel retained %d reports, want its buffer of 2", len(got))
	}
	want := reports[len(reports)-1].Timestamp
	if got[len(got)-1].Timestamp != want {
		t.Fatalf("legacy channel ends on %v, want the final round %v", got[len(got)-1].Timestamp, want)
	}
	// A second Reports call after shutdown still yields a closed channel.
	if _, ok := <-api.Reports(); ok {
		t.Fatal("Reports() after Shutdown should be closed")
	}
	// A bad buffer fails loudly at construction, never as a silent stream.
	if _, err := New(m, testModel(), WithReportBuffer(-1)); err == nil {
		t.Fatal("negative report buffer should fail")
	}
}

// TestSubscribeCloseDuringActiveTicks churns subscriptions while rounds are
// in flight on a sharded pipeline: Subscribe and Close must be safe at any
// instant (run under -race in CI).
func TestSubscribeCloseDuringActiveTicks(t *testing.T) {
	m := newTestMachine(t)
	api, err := New(m, testModel(), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer api.Shutdown()
	pids := spawnMix(t, m, 0.9, 0.5, 0.3)
	if err := api.Attach(pids...); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var churn sync.WaitGroup
	for i := 0; i < 8; i++ {
		churn.Add(1)
		go func(i int) {
			defer churn.Done()
			policy := []BackpressurePolicy{Conflate, DropOldest, Block}[i%3]
			for ctx.Err() == nil {
				sub, err := api.Subscribe(SubscribeOptions{Policy: policy, Buffer: 2})
				if err != nil {
					return // monitor shut down
				}
				// Consume at most a few reports, then drop the subscription
				// mid-stream.
				for j := 0; j < 3; j++ {
					select {
					case <-sub.C():
					case <-time.After(time.Millisecond):
					}
				}
				sub.Close()
			}
		}(i)
	}

	if _, err := api.RunMonitored(20*time.Second, time.Second, nil); err != nil {
		t.Fatal(err)
	}
	cancel()
	churn.Wait()
}

// TestSubscriberErrorsSurface verifies that a failing WithReporter delivery
// lands in ErrorCount and LastError (not just flush errors).
func TestSubscriberErrorsSurface(t *testing.T) {
	m := newTestMachine(t)
	boom := errors.New("disk full")
	api, err := New(m, testModel(), WithReporter("flaky", func(AggregatedReport) error { return boom }))
	if err != nil {
		t.Fatal(err)
	}
	pids := spawnMix(t, m, 0.6)
	if err := api.Attach(pids...); err != nil {
		t.Fatal(err)
	}
	if _, err := api.RunMonitored(2*time.Second, time.Second, nil); err != nil {
		t.Fatal(err)
	}
	api.Shutdown()
	if api.ErrorCount() < 2 {
		t.Fatalf("ErrorCount = %d, want one per round", api.ErrorCount())
	}
	last := api.LastError()
	if last == nil || !errors.Is(last, boom) || !strings.Contains(last.Error(), "flaky") {
		t.Fatalf("LastError = %v, want the named reporter failure", last)
	}
}

// TestPanickingReporterIsRecovered keeps the invariant the supervised
// reporter actors used to provide: a panicking WithReporter callback is
// recovered into ErrorCount/LastError and later rounds are still delivered,
// instead of the panic killing the process.
func TestPanickingReporterIsRecovered(t *testing.T) {
	m := newTestMachine(t)
	calls := 0
	api, err := New(m, testModel(), WithReporter("explosive", func(AggregatedReport) error {
		calls++
		if calls == 1 {
			panic("boom")
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	pids := spawnMix(t, m, 0.6)
	if err := api.Attach(pids...); err != nil {
		t.Fatal(err)
	}
	if _, err := api.RunMonitored(3*time.Second, time.Second, nil); err != nil {
		t.Fatal(err)
	}
	api.Shutdown() // waits out the drain goroutine, so calls is settled
	if calls != 3 {
		t.Fatalf("reporter saw %d rounds, want all 3 despite the panic", calls)
	}
	if api.ErrorCount() == 0 {
		t.Fatal("the panic should be counted")
	}
	last := api.LastError()
	if last == nil || !strings.Contains(last.Error(), "explosive") || !strings.Contains(last.Error(), "panicked") {
		t.Fatalf("LastError = %v, want the recovered panic", last)
	}
}

// TestRunMonitoredRetention caps the report slice RunMonitored returns while
// the callback still observes every round.
func TestRunMonitoredRetention(t *testing.T) {
	m := newTestMachine(t)
	api, err := New(m, testModel(), WithReportRetention(3))
	if err != nil {
		t.Fatal(err)
	}
	defer api.Shutdown()
	pids := spawnMix(t, m, 0.7)
	if err := api.Attach(pids...); err != nil {
		t.Fatal(err)
	}
	seen := 0
	reports, err := api.RunMonitored(6*time.Second, time.Second, func(AggregatedReport) { seen++ })
	if err != nil {
		t.Fatal(err)
	}
	if seen != 6 {
		t.Fatalf("callback observed %d rounds, want 6", seen)
	}
	if len(reports) != 3 {
		t.Fatalf("retention kept %d rounds, want 3", len(reports))
	}
	for i, want := range []time.Duration{4 * time.Second, 5 * time.Second, 6 * time.Second} {
		if reports[i].Timestamp != want {
			t.Fatalf("retained round %d at %v, want %v", i, reports[i].Timestamp, want)
		}
	}
	if _, err := New(m, testModel(), WithReportRetention(-1)); err == nil {
		t.Fatal("negative retention should fail")
	}
}

// TestHistoryQueryThroughMonitor drives WithHistory end to end: the dedicated
// subscriber retains every round and Query aggregates per target over time
// windows.
func TestHistoryQueryThroughMonitor(t *testing.T) {
	const rounds = 5
	m := newTestMachine(t)
	api, err := New(m, testModel(), WithHistory(16))
	if err != nil {
		t.Fatal(err)
	}
	defer api.Shutdown()
	pids := spawnMix(t, m, 0.8, 0.5)
	if err := api.Attach(pids...); err != nil {
		t.Fatal(err)
	}
	reports, err := api.RunMonitored(rounds*time.Second, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	api.Shutdown() // drain the history subscriber before querying

	stats, err := api.Query(QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One row per PID plus the machine total.
	if len(stats) != len(pids)+1 {
		t.Fatalf("Query returned %d rows, want %d", len(stats), len(pids)+1)
	}
	byTarget := make(map[target.Target]TargetStats, len(stats))
	for _, st := range stats {
		if st.Samples != rounds {
			t.Fatalf("%v retained %d samples, want %d", st.Target, st.Samples, rounds)
		}
		if st.MaxWatts < st.AvgWatts || st.P95Watts > st.MaxWatts {
			t.Fatalf("%v aggregate ordering broken: avg %.3f p95 %.3f max %.3f", st.Target, st.AvgWatts, st.P95Watts, st.MaxWatts)
		}
		byTarget[st.Target] = st
	}
	machineStats, ok := byTarget[target.Machine()]
	if !ok {
		t.Fatal("Query lost the machine total row")
	}
	if machineStats.LastWatts != reports[len(reports)-1].TotalWatts {
		t.Fatalf("machine LastWatts %.3f, want final TotalWatts %.3f", machineStats.LastWatts, reports[len(reports)-1].TotalWatts)
	}

	// Windowed query: only the last two rounds.
	windowed, err := api.Query(QueryOptions{From: 4 * time.Second, Kinds: []target.Kind{target.KindProcess}})
	if err != nil {
		t.Fatal(err)
	}
	if len(windowed) != len(pids) {
		t.Fatalf("windowed query returned %d rows, want %d", len(windowed), len(pids))
	}
	for _, st := range windowed {
		if st.Samples != 2 || st.First != 4*time.Second || st.Last != 5*time.Second {
			t.Fatalf("windowed stats %+v, want the last 2 rounds", st)
		}
	}

	// Query without history is a typed error.
	plain := newTestAPI(t, newTestMachine(t))
	if _, err := plain.Query(QueryOptions{}); !errors.Is(err, history.ErrDisabled) {
		t.Fatalf("Query without WithHistory = %v, want history.ErrDisabled", err)
	}
}

// TestDetachCgroupDropsSubtreeHistory: detaching a cgroup target forgets the
// rings of the whole subtree the rollup recorded (nested groups included),
// plus the member processes detached by the membership sync.
func TestDetachCgroupDropsSubtreeHistory(t *testing.T) {
	const rounds = 3
	m := newTestMachine(t)
	h := cgroup.NewHierarchy()
	pids := spawnMix(t, m, 0.8, 0.5)
	if err := h.Add("web", pids[0]); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("web/api", pids[1]); err != nil {
		t.Fatal(err)
	}
	api, err := New(m, testModel(), WithCgroups(h), WithHistory(8))
	if err != nil {
		t.Fatal(err)
	}
	defer api.Shutdown()
	if err := api.AttachTargets(target.Cgroup("web")); err != nil {
		t.Fatal(err)
	}
	if _, err := api.RunMonitored(rounds*time.Second, time.Second, nil); err != nil {
		t.Fatal(err)
	}
	// Wait until the async history writer has drained every round.
	deadline := time.Now().Add(2 * time.Second)
	for {
		stats, err := api.Query(QueryOptions{CgroupSubtree: "web"})
		if err != nil {
			t.Fatal(err)
		}
		if len(stats) == 2 && stats[0].Samples == rounds {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("history never drained: %v", stats)
		}
		time.Sleep(time.Millisecond)
	}
	if err := api.DetachTargets(target.Cgroup("web")); err != nil {
		t.Fatal(err)
	}
	stats, err := api.Query(QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Only the machine total survives: web, web/api and both member
	// processes were dropped with the detach.
	if len(stats) != 1 || stats[0].Target != target.Machine() {
		t.Fatalf("after cgroup detach Query returned %v, want only the machine row", stats)
	}
}

// TestDetachDropsHistory keeps the retained store bounded by the live target
// set: detaching a process forgets its samples.
func TestDetachDropsHistory(t *testing.T) {
	const rounds = 3
	m := newTestMachine(t)
	api, err := New(m, testModel(), WithHistory(8))
	if err != nil {
		t.Fatal(err)
	}
	defer api.Shutdown()
	pids := spawnMix(t, m, 0.8, 0.5)
	if err := api.Attach(pids...); err != nil {
		t.Fatal(err)
	}
	if _, err := api.RunMonitored(rounds*time.Second, time.Second, nil); err != nil {
		t.Fatal(err)
	}
	// The history subscriber records asynchronously; wait until it has
	// drained every round before detaching, so the removal cannot race an
	// in-flight write.
	deadline := time.Now().Add(2 * time.Second)
	for {
		stats, err := api.Query(QueryOptions{Targets: []target.Target{target.Machine()}})
		if err != nil {
			t.Fatal(err)
		}
		if len(stats) == 1 && stats[0].Samples == rounds {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("history never drained: %v", stats)
		}
		time.Sleep(time.Millisecond)
	}
	if err := api.Detach(pids[1]); err != nil {
		t.Fatal(err)
	}
	stats, err := api.Query(QueryOptions{Kinds: []target.Kind{target.KindProcess}})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Target != target.Process(pids[0]) {
		t.Fatalf("after detach Query returned %v, want only pid %d", stats, pids[0])
	}
}
