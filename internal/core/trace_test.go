package core

import (
	"runtime"
	"testing"
	"time"

	"powerapi/internal/obs"
	"powerapi/internal/workload"
)

// TestTraceRingChurn runs a 4-shard pipeline over 10 000 targets with tracing
// at its defaults and checks the observability layer holds its bargain: every
// retained round trace is complete (all synchronous stages present, spans
// ordered inside the round), the ring never exceeds its capacity, and the
// steady-state allocation budget of the hot path is unchanged — the tracer's
// atomic stamping must stay invisible to the allocator.
func TestTraceRingChurn(t *testing.T) {
	const (
		targets     = 10_000
		shards      = 4
		warmup      = 8
		measured    = 10
		allocBudget = 350.0 // BENCH_BUDGET.json's 10k×4 cap; PR 6 measured ~61
	)
	m := newTestMachine(t)
	api, err := New(m, testModel(), WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	pids := make([]int, 0, targets)
	for i := 0; i < targets; i++ {
		gen, err := workload.CPUStress(0.1+0.8*float64(i%9)/8, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.Spawn(gen)
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, p.PID())
	}
	if err := api.Attach(pids...); err != nil {
		t.Fatal(err)
	}
	tick := func() {
		t.Helper()
		if _, err := m.Run(m.Tick()); err != nil {
			t.Fatal(err)
		}
		if _, err := api.Collect(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < warmup; i++ {
		tick()
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < measured; i++ {
		tick()
	}
	runtime.ReadMemStats(&after)
	if perRound := float64(after.Mallocs-before.Mallocs) / measured; perRound > allocBudget {
		t.Fatalf("tracing hot path allocates %.1f/round, budget %.1f", perRound, allocBudget)
	}

	tracer := api.Tracer()
	rounds := tracer.Rounds()
	if len(rounds) > tracer.Capacity() {
		t.Fatalf("ring serves %d rounds, capacity %d", len(rounds), tracer.Capacity())
	}
	if want := warmup + measured; len(rounds) != want {
		t.Fatalf("ring serves %d rounds, want %d", len(rounds), want)
	}
	for _, round := range rounds {
		if !round.Complete {
			t.Fatalf("round seq %d (t=%gs) incomplete: %+v", round.Seq, round.TimestampSeconds, round.Stages)
		}
		if round.DurationSeconds <= 0 {
			t.Fatalf("round seq %d duration %g", round.Seq, round.DurationSeconds)
		}
		byStage := make(map[string]obs.SpanView, len(round.Stages))
		for _, span := range round.Stages {
			byStage[span.Stage] = span
			if span.Count <= 0 {
				t.Fatalf("round %d stage %s span count %d", round.Seq, span.Stage, span.Count)
			}
			if span.StartSeconds < 0 || span.EndSeconds < span.StartSeconds {
				t.Fatalf("round %d stage %s misordered span [%g, %g]",
					round.Seq, span.Stage, span.StartSeconds, span.EndSeconds)
			}
			if span.SlowestShard < 0 || span.SlowestShard >= shards {
				t.Fatalf("round %d stage %s slowest shard %d out of range", round.Seq, span.Stage, span.SlowestShard)
			}
		}
		// The sharded stages must carry one span per shard; the single-actor
		// stages exactly one.
		for stage, want := range map[string]int64{"sensor": shards, "formula": shards, "aggregate": shards, "fanout": 1} {
			span, ok := byStage[stage]
			if !ok {
				t.Fatalf("round %d missing stage %s", round.Seq, stage)
			}
			if span.Count != want {
				t.Fatalf("round %d stage %s count %d, want %d", round.Seq, stage, span.Count, want)
			}
		}
	}

	// The aggregate latency distributions saw every round, evicted or not.
	stats := api.Stats()
	if stats.Round.Count != uint64(warmup+measured) {
		t.Fatalf("round histogram count %d, want %d", stats.Round.Count, warmup+measured)
	}
	if len(stats.Stages) < 4 {
		t.Fatalf("stage stats %v, want at least the four synchronous stages", stats.Stages)
	}
}

// TestTraceHistoryStageAppears checks the asynchronous history subscriber
// stamps its span into the round traces it persists.
func TestTraceHistoryStageAppears(t *testing.T) {
	m := newTestMachine(t)
	api, err := New(m, testModel(), WithHistory(8))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	gen, err := workload.CPUStress(0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Spawn(gen)
	if err != nil {
		t.Fatal(err)
	}
	if err := api.Attach(p.PID()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Run(m.Tick()); err != nil {
			t.Fatal(err)
		}
		if _, err := api.Collect(); err != nil {
			t.Fatal(err)
		}
	}
	// The history write happens after fanout on the subscriber goroutine; give
	// it a moment to stamp the older rounds.
	deadline := time.Now().Add(2 * time.Second)
	for {
		stamped := 0
		for _, round := range api.Tracer().Rounds() {
			for _, span := range round.Stages {
				if span.Stage == "history" {
					stamped++
					break
				}
			}
		}
		if stamped >= 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("history spans never appeared (stamped %d rounds)", stamped)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
