package core

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"

	"powerapi/internal/cgroup"
	"powerapi/internal/target"
)

// This file implements the report-consumption API of the pipeline: first-class
// runtime subscriptions. Instead of one hard-coded Reports channel, the
// Reporter stage fans every AggregatedReport out to a registry of
// subscriptions, each with its own channel, filters, decimation and an
// explicit backpressure policy. All built-in consumers — the legacy Reports()
// channel, WithReporter/WithFlushingReporter reporters, the retained-history
// writer, the HTTP serving layer — are ordinary subscribers of this registry.

// BackpressurePolicy tells the fanout what to do when a subscriber's channel
// is full: monitoring must either stay lossless for that subscriber (Block)
// or shed load in a defined way (Conflate, DropOldest).
type BackpressurePolicy int

const (
	// Conflate keeps only the most recent report: the subscription's buffer
	// is a single slot and a newer report displaces an unread older one.
	// A consumer always observes the latest round, never a stale backlog.
	// This is the default policy.
	Conflate BackpressurePolicy = iota
	// DropOldest buffers up to Buffer reports and evicts the oldest unread
	// one to make room for a new round (the legacy Reports() behaviour).
	DropOldest
	// Block makes the fanout wait until the subscriber has drained space:
	// the subscriber sees every round exactly once, at the price of
	// backpressuring the whole pipeline. An abandoned Block subscription
	// stalls monitoring — Close it (or keep consuming) at all times.
	Block
)

// String implements fmt.Stringer.
func (p BackpressurePolicy) String() string {
	switch p {
	case Conflate:
		return "conflate"
	case DropOldest:
		return "drop-oldest"
	case Block:
		return "block"
	default:
		return fmt.Sprintf("BackpressurePolicy(%d)", int(p))
	}
}

// Valid reports whether the policy is one of the defined values.
func (p BackpressurePolicy) Valid() bool {
	return p == Conflate || p == DropOldest || p == Block
}

// DefaultSubscriptionBuffer is the channel capacity of DropOldest/Block
// subscriptions that do not set SubscribeOptions.Buffer.
const DefaultSubscriptionBuffer = 16

// SubscribeOptions configures one subscription. The zero value is valid: a
// conflating, unfiltered subscription that always holds the latest report.
type SubscribeOptions struct {
	// Name labels the subscription in diagnostics (optional).
	Name string
	// Policy is the backpressure policy (Conflate by default).
	Policy BackpressurePolicy
	// Buffer is the channel capacity of DropOldest and Block subscriptions
	// (DefaultSubscriptionBuffer when zero). Conflate always uses one slot.
	Buffer int
	// Every delivers only every n-th round (interval decimation): 1 or 0
	// delivers all rounds, 5 delivers the first round and then every fifth.
	Every int

	// Targets restricts the report breakdown to an explicit target set:
	// process rows must match a process target's PID, cgroup rows a cgroup
	// target's path, VM rows a vm target's name. Empty means no target
	// filter.
	Targets []target.Target
	// Kinds restricts which breakdown rows survive (process, cgroup and/or
	// vm). Empty means no kind filter.
	Kinds []target.Kind
	// CgroupSubtree keeps only the cgroup rows inside the given subtree
	// (the path itself and its descendants) and, when the monitor has a
	// cgroup hierarchy, the process rows whose leaf group lies inside it.
	CgroupSubtree string
	// MinWatts drops breakdown rows attributed less than this many watts.
	MinWatts float64
}

// filtering reports whether any breakdown filter is configured.
func (o SubscribeOptions) filtering() bool {
	return len(o.Targets) > 0 || len(o.Kinds) > 0 || o.CgroupSubtree != "" || o.MinWatts > 0
}

// Subscription is one consumer of the pipeline's aggregated reports. Reports
// arrive on C(); Close releases the subscription and closes the channel, so
// consumers may simply range over it. Delivered/Dropped expose the
// subscription's fanout counters.
type Subscription struct {
	name string
	opts SubscribeOptions
	id   uint64
	reg  *subscriptionRegistry

	ch   chan AggregatedReport
	done chan struct{}

	// sendMu serialises the fanout's sends against Close, so the channel is
	// only ever closed with no send in flight.
	sendMu    sync.Mutex
	closeOnce sync.Once

	delivered atomic.Uint64
	dropped   atomic.Uint64

	// rounds counts the reports offered so far (decimation); only the fanout
	// goroutine touches it.
	rounds uint64

	// pidSet/pathSet/vmSet are the precomputed Targets filter.
	pidSet  map[int]bool
	pathSet map[string]bool
	vmSet   map[string]bool
	// kindSet is the precomputed Kinds filter.
	kindSet map[target.Kind]bool
}

// C returns the subscription's report channel. It is closed by Close (and by
// the monitor's Shutdown), so `for report := range sub.C()` terminates.
func (s *Subscription) C() <-chan AggregatedReport { return s.ch }

// Name returns the subscription's diagnostic label.
func (s *Subscription) Name() string { return s.name }

// Policy returns the subscription's backpressure policy.
func (s *Subscription) Policy() BackpressurePolicy { return s.opts.Policy }

// Delivered returns how many reports were placed into the subscription's
// channel so far (including reports later evicted by Conflate/DropOldest).
func (s *Subscription) Delivered() uint64 { return s.delivered.Load() }

// Dropped returns how many delivered reports were evicted unread to make room
// for newer ones. Always zero for Block subscriptions.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription from the fanout and closes its channel.
// Buffered reports stay receivable; a consumer ranging over C() terminates
// once it has drained them. Close is idempotent and safe to call while the
// pipeline is mid-round: an in-flight blocking delivery is aborted.
func (s *Subscription) Close() {
	s.closeOnce.Do(func() {
		if s.reg != nil {
			s.reg.remove(s.id)
		}
		// Aborts a blocked delivery and marks the subscription dead for the
		// fanout; taking sendMu then waits out any send already in flight, so
		// closing the channel cannot race a send.
		close(s.done)
		s.sendMu.Lock()
		close(s.ch)
		s.sendMu.Unlock()
	})
}

// offer runs on the fanout goroutine: it applies decimation and filters, then
// delivers the report according to the backpressure policy. A delivery placed
// into the channel carries one reference on the pooled round (released again
// when Conflate/DropOldest evict it unread); the consumer releases the rest.
func (s *Subscription) offer(report AggregatedReport) {
	s.rounds++
	if every := s.opts.Every; every > 1 && (s.rounds-1)%uint64(every) != 0 {
		return
	}
	filtered, ok := s.filter(report)
	if !ok {
		return
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	select {
	case <-s.done:
		return
	default:
	}
	// The channel's reference on the pooled round (a no-op for filtered
	// copies, which own their maps).
	filtered.retain()
	if s.opts.Policy == Block {
		select {
		case s.ch <- filtered:
			s.delivered.Add(1)
		case <-s.done:
			filtered.Release()
		}
		return
	}
	// Conflate and DropOldest: evict the oldest unread report until the new
	// one fits. The fanout is the only sender, so the loop terminates — the
	// consumer can only make room, never fill it. Evicted rounds hand their
	// reference straight back, so an unconsumed conflating subscription never
	// pins more than one pooled buffer.
	for {
		select {
		case s.ch <- filtered:
			s.delivered.Add(1)
			return
		default:
		}
		select {
		case old := <-s.ch:
			old.Release()
			s.dropped.Add(1)
		default:
		}
	}
}

// filter projects the report through the subscription's breakdown filters.
// Round-level figures (timestamps, totals, PerGroup) pass through untouched;
// PerPID and PerCgroup are reduced to the rows every configured filter
// accepts. When filters are configured and no row survives, the round is
// skipped entirely (ok is false).
//
// The filtered copy owns its maps outright (it is never recycled), and it is
// built from only the accepted rows: a subscription filtering on an explicit
// target set iterates its own small filter sets instead of copying the full
// report, so a narrow subscriber costs the fanout a few lookups per round
// even at 100k monitored targets.
func (s *Subscription) filter(report AggregatedReport) (AggregatedReport, bool) {
	if !s.opts.filtering() {
		return report, true
	}
	out := report
	out.lease, out.gen = nil, 0
	targeted := s.pidSet != nil || s.pathSet != nil || s.vmSet != nil
	out.PerPID = make(map[int]float64)
	switch {
	case targeted && s.pidSet == nil:
		// A target filter without process targets rejects every process row.
	case s.pidSet != nil && len(s.pidSet) < len(report.PerPID):
		for pid := range s.pidSet {
			if watts, ok := report.PerPID[pid]; ok && s.acceptProcess(pid, watts) {
				out.PerPID[pid] = watts
			}
		}
	default:
		for pid, watts := range report.PerPID {
			if s.acceptProcess(pid, watts) {
				out.PerPID[pid] = watts
			}
		}
	}
	if len(report.PerCgroup) > 0 {
		out.PerCgroup = make(map[string]float64)
		switch {
		case targeted && s.pathSet == nil:
		case s.pathSet != nil && len(s.pathSet) < len(report.PerCgroup):
			for path := range s.pathSet {
				if watts, ok := report.PerCgroup[path]; ok && s.acceptCgroup(path, watts) {
					out.PerCgroup[path] = watts
				}
			}
		default:
			for path, watts := range report.PerCgroup {
				if s.acceptCgroup(path, watts) {
					out.PerCgroup[path] = watts
				}
			}
		}
	}
	if len(report.PerVM) > 0 {
		out.PerVM = make(map[string]float64)
		switch {
		case targeted && s.vmSet == nil:
		case s.vmSet != nil && len(s.vmSet) < len(report.PerVM):
			for name := range s.vmSet {
				if watts, ok := report.PerVM[name]; ok && s.acceptVM(name, watts) {
					out.PerVM[name] = watts
				}
			}
		default:
			for name, watts := range report.PerVM {
				if s.acceptVM(name, watts) {
					out.PerVM[name] = watts
				}
			}
		}
	}
	if len(out.PerPID) == 0 && len(out.PerCgroup) == 0 && len(out.PerVM) == 0 {
		return AggregatedReport{}, false
	}
	return out, true
}

func (s *Subscription) acceptProcess(pid int, watts float64) bool {
	if s.kindSet != nil && !s.kindSet[target.KindProcess] {
		return false
	}
	if s.pidSet != nil || s.pathSet != nil || s.vmSet != nil {
		if !s.pidSet[pid] {
			return false
		}
	}
	if prefix := s.opts.CgroupSubtree; prefix != "" {
		hierarchy := s.reg.hierarchy
		if hierarchy == nil {
			return false
		}
		leaf, ok := hierarchy.LeafOf(pid)
		if !ok || !cgroup.InSubtree(leaf, prefix) {
			return false
		}
	}
	return watts >= s.opts.MinWatts
}

func (s *Subscription) acceptCgroup(path string, watts float64) bool {
	if s.kindSet != nil && !s.kindSet[target.KindCgroup] {
		return false
	}
	if s.pidSet != nil || s.pathSet != nil || s.vmSet != nil {
		if !s.pathSet[path] {
			return false
		}
	}
	if prefix := s.opts.CgroupSubtree; prefix != "" && !cgroup.InSubtree(path, prefix) {
		return false
	}
	return watts >= s.opts.MinWatts
}

func (s *Subscription) acceptVM(name string, watts float64) bool {
	if s.kindSet != nil && !s.kindSet[target.KindVM] {
		return false
	}
	if s.pidSet != nil || s.pathSet != nil || s.vmSet != nil {
		if !s.vmSet[name] {
			return false
		}
	}
	// A VM row is not a cgroup row: a cgroup-subtree filter keeps only the
	// subtree's own breakdown.
	if s.opts.CgroupSubtree != "" {
		return false
	}
	return watts >= s.opts.MinWatts
}

// subscriptionRegistry is the fanout's set of live subscriptions. Subscribe
// and Close mutate it from arbitrary goroutines while the Reporter actor
// publishes each round to a snapshot of it.
type subscriptionRegistry struct {
	hierarchy *cgroup.Hierarchy
	// logger carries the registry's lifecycle events (subscription added,
	// removed, registry closed) as structured debug logs — never raw stderr
	// writes. Set once at pipeline construction, before any subscriber exists.
	logger *slog.Logger

	mu     sync.RWMutex
	nextID uint64
	subs   map[uint64]*Subscription
	closed bool

	// snap is publish's reusable snapshot buffer. Only the Reporter actor
	// goroutine calls publish, so the buffer needs no further guarding.
	snap []*Subscription
}

func newSubscriptionRegistry(hierarchy *cgroup.Hierarchy) *subscriptionRegistry {
	return &subscriptionRegistry{
		hierarchy: hierarchy,
		subs:      make(map[uint64]*Subscription),
	}
}

// add validates opts, builds the subscription and registers it.
func (r *subscriptionRegistry) add(opts SubscribeOptions) (*Subscription, error) {
	if !opts.Policy.Valid() {
		return nil, fmt.Errorf("core: invalid backpressure policy %v", opts.Policy)
	}
	if opts.Buffer < 0 {
		return nil, fmt.Errorf("core: subscription buffer must not be negative, got %d", opts.Buffer)
	}
	if opts.Every < 0 {
		return nil, fmt.Errorf("core: subscription decimation must not be negative, got %d", opts.Every)
	}
	if opts.MinWatts < 0 {
		return nil, fmt.Errorf("core: subscription min-watts must not be negative, got %g", opts.MinWatts)
	}
	buffer := opts.Buffer
	if buffer == 0 {
		buffer = DefaultSubscriptionBuffer
	}
	if opts.Policy == Conflate {
		buffer = 1
	}
	s := &Subscription{
		name: opts.Name,
		opts: opts,
		reg:  r,
		ch:   make(chan AggregatedReport, buffer),
		done: make(chan struct{}),
	}
	for _, t := range opts.Targets {
		switch t.Kind {
		case target.KindProcess:
			if s.pidSet == nil {
				s.pidSet = make(map[int]bool)
			}
			s.pidSet[t.PID] = true
		case target.KindCgroup:
			if s.pathSet == nil {
				s.pathSet = make(map[string]bool)
			}
			s.pathSet[t.Path] = true
		case target.KindVM:
			if s.vmSet == nil {
				s.vmSet = make(map[string]bool)
			}
			s.vmSet[t.Name] = true
		default:
			return nil, fmt.Errorf("core: cannot filter a subscription by target %v", t)
		}
	}
	for _, k := range opts.Kinds {
		if k != target.KindProcess && k != target.KindCgroup && k != target.KindVM {
			return nil, fmt.Errorf("core: cannot filter a subscription by kind %v", k)
		}
		if s.kindSet == nil {
			s.kindSet = make(map[target.Kind]bool)
		}
		s.kindSet[k] = true
	}
	if opts.CgroupSubtree != "" {
		if err := cgroup.ValidatePath(opts.CgroupSubtree); err != nil {
			return nil, fmt.Errorf("core: subscription cgroup subtree: %w", err)
		}
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, errors.New("core: powerapi is shut down")
	}
	r.nextID++
	s.id = r.nextID
	r.subs[s.id] = s
	live := len(r.subs)
	r.mu.Unlock()
	r.log().Debug("subscription added",
		"id", s.id, "name", s.name, "policy", opts.Policy.String(), "live", live)
	return s, nil
}

// log returns the registry's logger, falling back to slog.Default so events
// stay routable even on a registry built outside New (tests).
func (r *subscriptionRegistry) log() *slog.Logger {
	if r.logger != nil {
		return r.logger
	}
	return slog.Default()
}

func (r *subscriptionRegistry) remove(id uint64) {
	r.mu.Lock()
	_, existed := r.subs[id]
	delete(r.subs, id)
	live := len(r.subs)
	r.mu.Unlock()
	if existed {
		r.log().Debug("subscription removed", "id", id, "live", live)
	}
}

// publish fans one report out to every live subscription. It runs on the
// Reporter actor goroutine (which owns the reusable snapshot buffer); the
// snapshot keeps Subscribe/Close concurrent with an in-flight round race-free
// (a subscription added mid-round starts with the next one).
func (r *subscriptionRegistry) publish(report AggregatedReport) {
	r.mu.RLock()
	snapshot := r.snap[:0]
	for _, s := range r.subs {
		snapshot = append(snapshot, s)
	}
	r.snap = snapshot
	r.mu.RUnlock()
	for i, s := range snapshot {
		s.offer(report)
		snapshot[i] = nil // no stale *Subscription pins past the round
	}
}

// size returns the number of live subscriptions.
func (r *subscriptionRegistry) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.subs)
}

// SubscriptionInfo is one live subscription's diagnostic snapshot: its
// identity plus the fanout's delivery counters (see Subscription.Delivered
// and Dropped).
type SubscriptionInfo struct {
	// ID is the registry-unique subscription id (stable for its lifetime).
	ID uint64 `json:"id"`
	// Name is the subscription's diagnostic label (may be empty).
	Name string `json:"name,omitempty"`
	// Policy is the subscription's backpressure policy.
	Policy BackpressurePolicy `json:"-"`
	// Delivered counts reports placed into the subscription's channel.
	Delivered uint64 `json:"delivered"`
	// Dropped counts delivered reports evicted unread (Conflate/DropOldest).
	Dropped uint64 `json:"dropped"`
}

// stats snapshots every live subscription's counters, ordered by id.
func (r *subscriptionRegistry) stats() []SubscriptionInfo {
	r.mu.RLock()
	out := make([]SubscriptionInfo, 0, len(r.subs))
	for _, s := range r.subs {
		out = append(out, SubscriptionInfo{
			ID:        s.id,
			Name:      s.name,
			Policy:    s.opts.Policy,
			Delivered: s.delivered.Load(),
			Dropped:   s.dropped.Load(),
		})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// closeAll marks the registry closed and closes every remaining subscription,
// so consumers ranging over their channels terminate on monitor shutdown.
func (r *subscriptionRegistry) closeAll() {
	r.mu.Lock()
	r.closed = true
	remaining := make([]*Subscription, 0, len(r.subs))
	for _, s := range r.subs {
		remaining = append(remaining, s)
	}
	r.mu.Unlock()
	if len(remaining) > 0 {
		r.log().Debug("closing subscriptions on shutdown", "count", len(remaining))
	}
	for _, s := range remaining {
		s.Close()
	}
}
