package core

import (
	"math"
	"testing"
	"time"

	"powerapi/internal/target"
	"powerapi/internal/workload"
)

func TestSparseSetAccumulatesAndResets(t *testing.T) {
	var s SparseSet
	s.Reset()
	s.Add(3, 1.5)
	s.Add(3, 0.5)
	s.Add(0, 2)
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if s.values[3] != 2 || s.values[0] != 2 {
		t.Fatalf("values = %v", s.values[:4])
	}
	// A reset must invalidate every slot without clearing the arrays.
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("len after reset = %d", s.Len())
	}
	s.Add(3, 7)
	if s.values[3] != 7 {
		t.Fatalf("slot 3 after reset = %v, want the new round's value", s.values[3])
	}
}

func TestSlotIndexAssignReleaseCompaction(t *testing.T) {
	ix := newSlotIndex()
	a, b, c := target.Process(1), target.Process(2), target.Cgroup("web")
	sa, existed := ix.assign(a)
	if existed {
		t.Fatal("fresh assign reported an existing slot")
	}
	sb, _ := ix.assign(b)
	ix.assign(c)
	if again, existed := ix.assign(a); !existed || again != sa {
		t.Fatalf("re-assign = (%d, %v), want (%d, true)", again, existed, sa)
	}
	if ix.size() != 3 || ix.capacity() != 3 {
		t.Fatalf("size=%d capacity=%d, want 3/3", ix.size(), ix.capacity())
	}
	// Releasing the middle slot keeps capacity (no trailing free run)...
	ix.release(b)
	if ix.size() != 2 || ix.capacity() != 3 {
		t.Fatalf("after middle release size=%d capacity=%d, want 2/3", ix.size(), ix.capacity())
	}
	// ...and the freed slot is reused before the index grows.
	sd, _ := ix.assign(target.Process(4))
	if sd != sb {
		t.Fatalf("freed slot not reused: got %d, want %d", sd, sb)
	}
	// Releasing a trailing run compacts the backing arrays.
	ix.release(target.Process(4))
	ix.release(c)
	if ix.capacity() != 1 {
		t.Fatalf("capacity after trailing release = %d, want 1 (compacted)", ix.capacity())
	}
	ix.release(a)
	if ix.capacity() != 0 || ix.size() != 0 {
		t.Fatalf("empty index capacity=%d size=%d", ix.capacity(), ix.size())
	}
}

func TestPooledReportUseAfterRelease(t *testing.T) {
	p := getPooledReport(4)
	p.report.PerPID[42] = 3.5
	p.report.TotalWatts = 10

	holder := p.report // a subscriber's copy of the published round
	holder.retain()
	keep := holder.Clone()

	if holder.Expired() {
		t.Fatal("live round reported Expired")
	}
	p.report.Release() // the producer's reference
	if holder.Expired() {
		t.Fatal("round expired while a holder still retains it")
	}
	holder.Release() // last reference: the buffer is recycled
	if !holder.Expired() {
		t.Fatal("released round not detected as expired")
	}
	// Releasing an expired copy again must not corrupt the recycled buffer.
	holder.Release()

	if keep.Expired() {
		t.Fatal("clone reported Expired")
	}
	if keep.PerPID[42] != 3.5 || keep.TotalWatts != 10 {
		t.Fatalf("clone lost data: %+v", keep)
	}
}

func TestCollectReportExpiresAtNextCollect(t *testing.T) {
	m := newTestMachine(t)
	api := newTestAPI(t, m)
	gen, err := workload.CPUStress(0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Spawn(gen)
	if err != nil {
		t.Fatal(err)
	}
	if err := api.Attach(p.PID()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	first, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if first.Expired() {
		t.Fatal("freshly collected round is expired")
	}
	clone := first.Clone()
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	second, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// The next Collect released the previous round (its buffer may already
	// serve the new one): the stale copy must say so, the clone must not.
	if !first.Expired() {
		t.Fatal("previous round not expired after the next Collect")
	}
	if clone.Expired() {
		t.Fatal("clone expired")
	}
	if clone.PerPID[p.PID()] <= 0 {
		t.Fatalf("clone lost the attribution: %v", clone.PerPID)
	}
	if second.Expired() || second.PerPID[p.PID()] <= 0 {
		t.Fatalf("current round unusable: expired=%v perPid=%v", second.Expired(), second.PerPID)
	}
}

// TestSlotIndexChurn drives the dense route-key index through sustained
// attach/detach churn — 10 000 distinct process targets cycled through a
// 4-shard pipeline in waves while rounds keep ticking — and checks the three
// invariants the slot machinery must hold: detached targets never leak watts
// into later rounds, the per-round attribution stays conserved against the
// report's own total, and the index compacts back to nothing once the churn
// drains.
func TestSlotIndexChurn(t *testing.T) {
	const (
		totalTargets = 10_000
		waveSize     = 500
	)
	m := newTestMachine(t)
	api, err := New(m, testModel(), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)

	spawn := func(n int) []int {
		pids := make([]int, 0, n)
		for i := 0; i < n; i++ {
			gen, err := workload.CPUStress(0.2+0.6*float64(i%7)/6, 0)
			if err != nil {
				t.Fatal(err)
			}
			p, err := m.Spawn(gen)
			if err != nil {
				t.Fatal(err)
			}
			pids = append(pids, p.PID())
		}
		return pids
	}
	collect := func() AggregatedReport {
		t.Helper()
		if _, err := m.Run(m.Tick()); err != nil {
			t.Fatal(err)
		}
		report, err := api.Collect()
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	checkRound := func(report AggregatedReport, live, gone map[int]bool) {
		t.Helper()
		sum := 0.0
		for pid, watts := range report.PerPID {
			if gone[pid] {
				t.Fatalf("round %v attributes %v W to detached pid %d (stale slot)", report.Timestamp, watts, pid)
			}
			if !live[pid] {
				t.Fatalf("round %v attributes pid %d that was never attached", report.Timestamp, pid)
			}
			sum += watts
		}
		if len(report.PerPID) != len(live) {
			t.Fatalf("round %v attributed %d pids, want %d", report.Timestamp, len(report.PerPID), len(live))
		}
		// Conservation: the per-target breakdown must re-add to the round's
		// active power exactly (to float tolerance), whatever slots were
		// recycled underneath it.
		if tol := 1e-6 * math.Max(1, report.ActiveWatts); math.Abs(sum-report.ActiveWatts) > tol {
			t.Fatalf("round %v: sum(PerPID) = %v, ActiveWatts = %v (drift %g)", report.Timestamp, sum, report.ActiveWatts, sum-report.ActiveWatts)
		}
	}

	gone := make(map[int]bool)
	var prev []int
	for churned := 0; churned < totalTargets; churned += waveSize {
		wave := spawn(waveSize)
		if err := api.Attach(wave...); err != nil {
			t.Fatal(err)
		}
		live := make(map[int]bool, len(prev)+len(wave))
		for _, pid := range prev {
			live[pid] = true
		}
		for _, pid := range wave {
			live[pid] = true
		}
		checkRound(collect(), live, gone)
		// Detach the previous wave mid-flight: its slots go back on the
		// freelist and must be reused by the next wave without bleeding its
		// watts into the next round.
		if len(prev) > 0 {
			for _, pid := range prev {
				if err := api.Detach(pid); err != nil {
					t.Fatal(err)
				}
				gone[pid] = true
				delete(live, pid)
			}
			checkRound(collect(), live, gone)
		}
		prev = wave
	}
	for _, pid := range prev {
		if err := api.Detach(pid); err != nil {
			t.Fatal(err)
		}
		gone[pid] = true
	}
	checkRound(collect(), map[int]bool{}, gone)

	// Every slot was released: the index must have compacted its backing
	// arrays away entirely, not just marked 10 000 slots free.
	if size := api.slots.size(); size != 0 {
		t.Fatalf("index still holds %d live slots after full detach", size)
	}
	if capacity := api.slots.capacity(); capacity != 0 {
		t.Fatalf("index capacity = %d after full detach, want 0 (compaction)", capacity)
	}
}
