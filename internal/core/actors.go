package core

import (
	"context"
	"fmt"
	"time"

	"powerapi/internal/actor"
	"powerapi/internal/cgroup"
	"powerapi/internal/model"
	"powerapi/internal/obs"
	"powerapi/internal/source"
	"powerapi/internal/target"
)

// sensorShardBehavior monitors the targets routed to one shard of the Sensor
// pool through a pluggable attribution source; shard 0 additionally owns the
// machine-scope source of the sensing mode (RAPL, utilisation proxy) when
// one exists. All state is owned by the actor goroutine; attach/detach flow
// through the mailbox (via actor.Ask) and a tick makes the shard publish one
// batched report for all its targets.
type sensorShardBehavior struct {
	attr          source.Source // per-target attribution source, owned by this shard
	total         source.Source // machine-scope source (shard 0 only, may be nil)
	shard         int
	shards        int
	topic         string // per-shard sensor topic feeding the paired formula shard
	sampleTimeout time.Duration
	tracer        *obs.Tracer

	// pidSlots/otherSlots remember the round slot (+1; 0 means none) the
	// facade assigned to each attached target, so every tick can stamp the
	// source's samples without the facade on the hot path.
	pidSlots   map[int]int32
	otherSlots map[target.Target]int32
}

func newSensorShardBehavior(attr, total source.Source, shard, shards int, sampleTimeout time.Duration, tracer *obs.Tracer) *sensorShardBehavior {
	return &sensorShardBehavior{
		attr:          attr,
		total:         total,
		shard:         shard,
		shards:        shards,
		topic:         SensorShardTopic(shard),
		sampleTimeout: sampleTimeout,
		tracer:        tracer,
		pidSlots:      make(map[int]int32),
		otherSlots:    make(map[target.Target]int32),
	}
}

// Receive implements actor.Behavior.
func (s *sensorShardBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case attachRequest:
		m.Reply <- s.attach(m)
	case detachRequest:
		m.Reply <- s.detach(m.Target)
	case tickRequest:
		s.tick(ctx, m)
	default:
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "sensor",
			Err:   fmt.Errorf("core: sensor received unexpected message %T", msg),
		})
	}
}

func (s *sensorShardBehavior) attach(req attachRequest) error {
	dyn, ok := s.attr.(source.Dynamic)
	if !ok {
		return fmt.Errorf("core: %s source does not support attaching targets", s.attr.Name())
	}
	if err := dyn.Add(req.Target); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if req.Slot >= 0 {
		if req.Target.Kind == target.KindProcess {
			s.pidSlots[req.Target.PID] = req.Slot + 1
		} else {
			s.otherSlots[req.Target] = req.Slot + 1
		}
	}
	return nil
}

func (s *sensorShardBehavior) detach(t target.Target) error {
	dyn, ok := s.attr.(source.Dynamic)
	if !ok {
		return fmt.Errorf("core: %s source does not support detaching targets", s.attr.Name())
	}
	if err := dyn.Remove(t); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if t.Kind == target.KindProcess {
		delete(s.pidSlots, t.PID)
	} else {
		delete(s.otherSlots, t)
	}
	return nil
}

// tick samples the shard's sources and publishes ONE batch. An idle shard
// publishes an empty batch so the Aggregator can still complete the round.
// The batch's sample slice is pooled: the paired formula shard (the topic's
// sole consumer) hands it back through source.PutTargetSlice once estimated.
func (s *sensorShardBehavior) tick(ctx *actor.Context, req tickRequest) {
	traceStart := s.tracer.Now()
	batch := SensorReportBatch{
		Timestamp: req.Timestamp,
		Window:    req.Window,
		Shard:     s.shard,
		NumShards: s.shards,
	}
	// The collect timeout bounds the whole round, so it also bounds each
	// source sample: a hanging custom backend cancels instead of wedging
	// the shard's mailbox forever.
	sampleCtx, cancel := context.WithTimeout(context.Background(), s.sampleTimeout)
	defer cancel()
	sample, err := s.attr.Sample(sampleCtx)
	if err != nil {
		// The sample stays usable on partial failures; surface the error
		// either way.
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "sensor",
			Err:   fmt.Errorf("core: sample %s source: %w", s.attr.Name(), err),
		})
	}
	batch.FrequencyMHz = sample.FrequencyMHz
	// The source already sized its sample to the shard's attached-target
	// count and hands the slice over (it never reuses it), so the batch can
	// adopt it wholesale instead of reallocating and copying per tick.
	batch.Samples = sample.Targets
	// Stamp each sample with its round slot; a target the facade never
	// assigned one (a custom source emitting extra targets) keeps 0 and flows
	// through the aggregator's map fallback.
	for i := range batch.Samples {
		ts := &batch.Samples[i]
		if ts.Target.Kind == target.KindProcess {
			ts.Slot = s.pidSlots[ts.Target.PID]
		} else {
			ts.Slot = s.otherSlots[ts.Target]
		}
	}
	if s.total != nil {
		ts, err := s.total.Sample(sampleCtx)
		if err != nil {
			ctx.Publish(TopicErrors, PipelineError{
				Stage: "sensor",
				Err:   fmt.Errorf("core: sample %s source: %w", s.total.Name(), err),
			})
		} else {
			batch.MeasuredWatts = ts.MeasuredWatts
			batch.HasMeasured = ts.HasMeasured
			if batch.FrequencyMHz == 0 {
				batch.FrequencyMHz = ts.FrequencyMHz
			}
		}
	}
	if delivered := ctx.Publish(s.topic, batch); delivered == 0 {
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "sensor",
			Err:   fmt.Errorf("core: sensor shard %d has no formula subscriber", s.shard),
		})
	}
	s.tracer.Record(req.Timestamp, obs.StageSensor, s.shard, traceStart, s.tracer.Now())
}

// formulaShardBehavior converts one shard's batched sensor reports into a
// batched partial power estimation. In ModeHPC it applies the learned CPU
// power model to the counter deltas (the paper's Formula); in ModeBlended it
// evaluates the model too, but only as the *attribution key* the Aggregator
// scales against the RAPL total (the Kepler-style ratio split); in the
// share-based modes it forwards the source weights untouched. The behaviour
// is stateless, so its supervisor restarts it from a fresh instance after a
// panic.
//
// The model is compiled once at construction: the per-batch frequency resolves
// to a pre-parsed formula a single time, and each target evaluates it on the
// dense counter vector — no string parsing or map materialisation per sample.
type formulaShardBehavior struct {
	model    *model.CPUPowerModel
	compiled *model.Compiled
	mode     source.Mode
	tracer   *obs.Tracer
}

func newFormulaShardBehavior(m *model.CPUPowerModel, mode source.Mode, tracer *obs.Tracer) *formulaShardBehavior {
	f := &formulaShardBehavior{model: m, mode: mode, tracer: tracer}
	// A model that validates but fails to compile falls back to the original
	// per-sample evaluation path below.
	if compiled, err := m.Compile(); err == nil {
		f.compiled = compiled
	}
	return f
}

// Receive implements actor.Behavior.
func (f *formulaShardBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case SensorReportBatch:
		f.estimateBatch(ctx, m)
	default:
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "formula",
			Err:   fmt.Errorf("core: formula received unexpected message %T", msg),
		})
	}
}

func (f *formulaShardBehavior) estimateBatch(ctx *actor.Context, batch SensorReportBatch) {
	traceStart := f.tracer.Now()
	out := PowerEstimateBatch{
		Timestamp:     batch.Timestamp,
		FrequencyMHz:  batch.FrequencyMHz,
		Shard:         batch.Shard,
		NumShards:     batch.NumShards,
		MeasuredWatts: batch.MeasuredWatts,
		HasMeasured:   batch.HasMeasured,
	}
	counterMode := f.mode == source.ModeHPC || f.mode == source.ModeBlended || f.mode == source.ModeDelegated
	// Resolve the round's frequency to its compiled formula once per batch
	// instead of once per target.
	var cf *model.CompiledFrequency
	if counterMode && f.compiled != nil && len(batch.Samples) > 0 {
		var err error
		if cf, err = f.compiled.ForFrequency(batch.FrequencyMHz); err != nil {
			ctx.Publish(TopicErrors, PipelineError{
				Stage: "formula",
				Err:   fmt.Errorf("core: resolve frequency %d MHz: %w", batch.FrequencyMHz, err),
			})
		}
	}
	if n := len(batch.Samples); n > 0 {
		// One pooled estimate per sampled target; the aggregator (the
		// estimates topic's sole consumer) hands the slice back once merged.
		out.Estimates = getEstimateSlice(n)
	}
	for i := range batch.Samples {
		sample := &batch.Samples[i]
		est := TargetEstimate{Target: sample.Target, Slot: sample.Slot}
		if counterMode {
			var watts float64
			var err error
			switch {
			case cf != nil:
				watts, err = cf.EstimateActiveWatts(&sample.Deltas, batch.Window)
			case f.compiled == nil:
				watts, err = f.model.EstimateActiveWatts(batch.FrequencyMHz, sample.Deltas.Counts(), batch.Window)
			default:
				// ForFrequency failed (already reported); estimates are zero.
			}
			if err != nil {
				ctx.Publish(TopicErrors, PipelineError{
					Stage: "formula",
					Err:   fmt.Errorf("core: estimate %v: %w", sample.Target, err),
				})
				watts = 0
			}
			if f.mode == source.ModeHPC {
				est.Watts = watts
			} else {
				est.Weight = watts
			}
		} else {
			est.Weight = sample.Weight
		}
		out.Estimates = append(out.Estimates, est)
	}
	ctx.Publish(TopicPowerEstimates, out)
	// The sample batch is fully consumed: hand its slice back to the source
	// pool so the next tick reuses the backing array.
	source.PutTargetSlice(batch.Samples)
	f.tracer.Record(batch.Timestamp, obs.StageFormula, batch.Shard, traceStart, f.tracer.Now())
}

// aggregatorBehavior merges the per-shard partial estimates of each sampling
// round into one AggregatedReport and emits it once every shard has
// reported. In attributed sensing modes it additionally normalizes the
// per-target weights of the whole round against the measured machine total —
// attribution must be global, a single shard only ever sees its own targets.
// When a cgroup hierarchy is configured it performs the hierarchical rollup:
// every group's power is the sum of its member processes' estimates
// (descendants included), so nested groups roll up to their parents and the
// per-PID and per-cgroup views are two projections of the same conserved
// attribution. When a group resolver is configured it also aggregates along
// that dimension (for example the application name), as the paper's
// Aggregator description allows.
//
// The per-round hot path is allocation-free in steady state: slotted
// estimates accumulate into an epoch-stamped sparse set (no per-round map
// rebuild), round scratch is recycled through an aggregator-local freelist,
// and published reports live in pooled buffers whose maps keep their buckets
// across rounds (see round.go). Only slotless estimates — targets a custom
// source emitted without ever being attached — fall back to direct map
// merging.
type aggregatorBehavior struct {
	idleWatts float64
	mode      source.Mode
	resolve   func(pid int) string
	hierarchy *cgroup.Hierarchy
	// vms are the host's VM definitions in name order; every round the
	// per-VM rollup projects the per-process estimates onto them.
	vms    []VMDef
	index  *slotIndex
	tracer *obs.Tracer
	// self attributes the monitoring process's own power into each report
	// (WithSelfPower); nil when disabled.
	self    *obs.SelfMeter
	pending map[time.Duration]*roundState
	// spare recycles roundState scratch; the aggregator is a single goroutine
	// so no locking is needed.
	spare []*roundState
	// prev* remember the previous round's breakdown cardinalities, presizing
	// the maps a pool miss has to allocate.
	prevPIDs, prevCgroups, prevVMs, prevGroups int
}

// roundState tracks one in-flight sampling round. Slotted estimates
// accumulate in set; slotless ones go straight into the report's maps (raw
// weights until finish scales them, in attributed modes).
type roundState struct {
	buf *pooledReport
	set SparseSet
	// cgroupDirect holds the estimates cgroup-scope sources produced for
	// whole groups (path → watts or raw weight). Kept apart from the rollup
	// so the two cannot double-count each other. Never published; recycled
	// with the round.
	cgroupDirect map[string]float64
	// claimed is the vmRollup's per-round duplicate-PID guard, recycled with
	// the round.
	claimed map[int]string
	// batches counts PowerEstimateBatch arrivals; the round completes when
	// all NumShards have reported.
	batches int
	// measuredWatts accumulates the machine-scope measurement of the round
	// (at most one batch carries it).
	measuredWatts float64
	hasMeasured   bool
	// sumWeight accumulates the raw attribution weights of every shard
	// (attributed modes); activeSum accumulates the estimated watts
	// (formula-driven mode).
	sumWeight float64
	activeSum float64
}

func newAggregatorBehavior(idleWatts float64, mode source.Mode, resolve func(pid int) string, hierarchy *cgroup.Hierarchy, vms []VMDef, index *slotIndex, tracer *obs.Tracer, self *obs.SelfMeter) *aggregatorBehavior {
	if index == nil {
		index = newSlotIndex()
	}
	return &aggregatorBehavior{
		idleWatts: idleWatts,
		mode:      mode,
		resolve:   resolve,
		hierarchy: hierarchy,
		vms:       vms,
		index:     index,
		tracer:    tracer,
		self:      self,
		pending:   make(map[time.Duration]*roundState),
	}
}

// Receive implements actor.Behavior.
func (a *aggregatorBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case PowerEstimateBatch:
		traceStart := a.tracer.Now()
		round := a.round(m.Timestamp)
		if m.HasMeasured {
			round.measuredWatts += m.MeasuredWatts
			round.hasMeasured = true
		}
		for i := range m.Estimates {
			a.merge(ctx, round, &m.Estimates[i])
		}
		putEstimateSlice(m.Estimates)
		round.batches++
		if round.batches >= m.NumShards {
			a.finish(ctx, m.Timestamp, round)
		}
		a.tracer.Record(m.Timestamp, obs.StageAggregate, m.Shard, traceStart, a.tracer.Now())
		a.tracer.SetPendingRounds(len(a.pending))
	default:
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "aggregator",
			Err:   fmt.Errorf("core: aggregator received unexpected message %T", msg),
		})
	}
}

// maxPendingRounds bounds the aggregator's in-flight round map. A round can
// be stranded forever when a shard's batch is lost (e.g. consumed by a
// panicking behaviour before its restart); without a bound every such
// incident would leak a roundState in a long-running daemon.
const maxPendingRounds = 64

func (a *aggregatorBehavior) round(ts time.Duration) *roundState {
	round, exists := a.pending[ts]
	if !exists {
		if len(a.pending) >= maxPendingRounds {
			a.evictOldest()
		}
		round = a.getRoundState()
		round.buf = getPooledReport(a.prevPIDs)
		report := &round.buf.report
		report.Timestamp = ts
		report.IdleWatts = a.idleWatts
		report.SourceMode = a.mode.String()
		a.pending[ts] = round
	}
	return round
}

// getRoundState pops recycled round scratch (or makes fresh) ready for a new
// round: counters zeroed, sparse set reset, scratch maps cleared.
func (a *aggregatorBehavior) getRoundState() *roundState {
	var round *roundState
	if n := len(a.spare); n > 0 {
		round = a.spare[n-1]
		a.spare = a.spare[:n-1]
	} else {
		round = &roundState{}
	}
	round.set.Reset()
	return round
}

// putRoundState recycles a finished (or evicted) round's scratch. The report
// buffer is NOT touched: ownership has moved to the published report's
// holders (or was released by the caller).
func (a *aggregatorBehavior) putRoundState(round *roundState) {
	round.buf = nil
	clear(round.cgroupDirect)
	clear(round.claimed)
	round.batches = 0
	round.measuredWatts, round.sumWeight, round.activeSum = 0, 0, 0
	round.hasMeasured = false
	if len(a.spare) < maxPendingRounds {
		a.spare = append(a.spare, round)
	}
}

// evictOldest drops the stalest incomplete round. Its partial estimates are
// lost, which matches the behaviour a consumer already observes for a
// stranded round: Collect times out on it either way.
func (a *aggregatorBehavior) evictOldest() {
	var oldest time.Duration
	first := true
	for ts := range a.pending {
		if first || ts < oldest {
			oldest = ts
			first = false
		}
	}
	if !first {
		round := a.pending[oldest]
		delete(a.pending, oldest)
		round.buf.report.Release()
		a.putRoundState(round)
	}
}

func (a *aggregatorBehavior) merge(ctx *actor.Context, round *roundState, est *TargetEstimate) {
	value := est.Watts
	if a.mode.Attributed() {
		value = est.Weight
	}
	if est.Slot > 0 {
		// The dense path: targets attached through the facade carry a round
		// slot; kinds resolve at materialisation time from the slot index.
		round.set.Add(est.Slot-1, value)
	} else {
		switch est.Target.Kind {
		case target.KindProcess:
			round.buf.report.PerPID[est.Target.PID] += value
		case target.KindCgroup:
			if round.cgroupDirect == nil {
				round.cgroupDirect = make(map[string]float64)
			}
			round.cgroupDirect[est.Target.Path] += value
		default:
			ctx.Publish(TopicErrors, PipelineError{
				Stage: "aggregator",
				Err:   fmt.Errorf("core: aggregator received estimate for unexpected target %v", est.Target),
			})
			return
		}
	}
	if a.mode.Attributed() {
		round.sumWeight += value
	} else {
		round.activeSum += value
	}
}

func (a *aggregatorBehavior) finish(ctx *actor.Context, ts time.Duration, round *roundState) {
	report := &round.buf.report
	// The raw measurement is surfaced in every mode: a custom machine-scope
	// source plugged into the formula-driven pipeline still reports what it
	// measured, it just does not drive the attribution there.
	if round.hasMeasured {
		report.MeasuredWatts = round.measuredWatts
	}
	// scale/even turn the dense raw values into published watts during
	// materialisation; the slotless map entries are rewritten in place first.
	scale, even := 1.0, false
	if a.mode.Attributed() {
		total := round.measuredWatts
		if !round.hasMeasured {
			total = 0
		}
		report.ActiveWatts = total
		entries := round.set.Len() + len(report.PerPID) + len(round.cgroupDirect)
		switch {
		case round.sumWeight > 0:
			scale = total / round.sumWeight
			for pid, weight := range report.PerPID {
				report.PerPID[pid] = weight * scale
			}
			for path, weight := range round.cgroupDirect {
				round.cgroupDirect[path] = weight * scale
			}
		case entries > 0:
			// An all-idle window splits the measurement evenly. With nothing
			// monitored at all there is no map to re-iterate: the measurement
			// is still reported as ActiveWatts, unattributed.
			scale = total / float64(entries)
			even = true
			for pid := range report.PerPID {
				report.PerPID[pid] = scale
			}
			for path := range round.cgroupDirect {
				round.cgroupDirect[path] = scale
			}
		}
	} else {
		report.ActiveWatts = round.activeSum
	}
	// Materialise the dense slots into the published breakdown, resolving
	// every slot of the round under a single index lock.
	if round.set.Len() > 0 {
		lost := 0
		a.index.view(func(targets []target.Target) {
			for _, slot := range round.set.touched {
				v := round.set.values[slot]
				if a.mode.Attributed() {
					if even {
						v = scale
					} else {
						v *= scale
					}
				}
				if int(slot) >= len(targets) {
					// Detached and compacted away while the round was in
					// flight: the owner is unknown, the row is dropped.
					lost++
					continue
				}
				t := targets[slot]
				switch t.Kind {
				case target.KindProcess:
					report.PerPID[t.PID] += v
				case target.KindCgroup:
					if round.cgroupDirect == nil {
						round.cgroupDirect = make(map[string]float64)
					}
					round.cgroupDirect[t.Path] += v
				}
			}
		})
		if lost > 0 {
			ctx.Publish(TopicErrors, PipelineError{
				Stage: "aggregator",
				Err:   fmt.Errorf("core: dropped %d estimate(s) whose slots were recycled mid-round", lost),
			})
		}
	}
	a.rollup(round)
	a.vmRollup(ctx, round)
	if a.resolve != nil && len(report.PerPID) > 0 {
		perGroup := ensureStringMap(round.buf.perGroup, a.prevGroups)
		round.buf.perGroup = perGroup
		for pid, watts := range report.PerPID {
			perGroup[a.resolve(pid)] += watts
		}
		report.PerGroup = perGroup
		a.prevGroups = len(perGroup)
	}
	report.TotalWatts = report.IdleWatts + report.ActiveWatts
	// Self-power attribution: what the meter process itself cost this round,
	// kept out of TotalWatts (the simulated machine's figure).
	report.SelfWatts = a.self.Sample()
	a.prevPIDs = len(report.PerPID)
	// The published copy carries the round's lease with one reference, owned
	// by the reports topic's consumer (the facade's fanout releases it after
	// delivering to every subscription). With no consumer the round strands
	// to the garbage collector, which is merely the pre-pooling behaviour.
	if delivered := ctx.Publish(TopicAggregatedReports, *report); delivered == 0 {
		report.Release()
	}
	delete(a.pending, ts)
	a.putRoundState(round)
}

// rollup fills report.PerCgroup: every hierarchy group's power is the sum of
// the per-PID estimates of its recursive members, and every direct estimate
// a cgroup-scope source produced is credited to its group and all its
// ancestors. Each PID's watts are read from the single PerPID entry, so a
// process reported both standalone and inside a group is counted once in
// ActiveWatts and merely projected into the group view; nested groups roll
// up to their parents by construction.
func (a *aggregatorBehavior) rollup(round *roundState) {
	report := &round.buf.report
	if a.hierarchy == nil && len(round.cgroupDirect) == 0 {
		return
	}
	perCgroup := ensureStringMap(round.buf.perCgroup, a.prevCgroups)
	round.buf.perCgroup = perCgroup
	if a.hierarchy != nil {
		for _, path := range a.hierarchy.Paths() {
			sum := 0.0
			counted := false
			for _, pid := range a.hierarchy.MembersRecursive(path) {
				if watts, ok := report.PerPID[pid]; ok {
					sum += watts
					counted = true
				}
			}
			if counted {
				perCgroup[path] = sum
			}
		}
	}
	for path, watts := range round.cgroupDirect {
		perCgroup[path] += watts
		for _, anc := range cgroup.Ancestors(path) {
			perCgroup[anc] += watts
		}
	}
	if len(perCgroup) > 0 {
		report.PerCgroup = perCgroup
		a.prevCgroups = len(perCgroup)
	}
}

// vmRollup fills report.PerVM: each defined VM's power is the sum of the
// per-process estimates of its designated members — a cgroup subtree's
// recursive members or an explicit PID set. Every PID's watts come from its
// single PerPID entry, so the per-VM view is a projection of the same
// conserved attribution: VM figures sum into the machine total exactly once.
// A PID dynamically claimed by two VMs (a pid-set member that joined another
// VM's cgroup subtree) is counted for the first VM in name order and
// reported on the error topic instead of silently double-counted.
func (a *aggregatorBehavior) vmRollup(ctx *actor.Context, round *roundState) {
	if len(a.vms) == 0 {
		return
	}
	report := &round.buf.report
	perVM := ensureStringMap(round.buf.perVM, a.prevVMs)
	round.buf.perVM = perVM
	if round.claimed == nil {
		round.claimed = make(map[int]string)
	}
	for _, def := range a.vms {
		pids := def.PIDs
		if def.cgroupBacked() {
			pids = a.hierarchy.MembersRecursive(def.CgroupPath)
		}
		sum := 0.0
		counted := false
		for _, pid := range pids {
			watts, ok := report.PerPID[pid]
			if !ok {
				continue // not monitored this round
			}
			if owner, dup := round.claimed[pid]; dup {
				ctx.Publish(TopicErrors, PipelineError{
					Stage: "aggregator",
					Err:   fmt.Errorf("core: pid %d belongs to both VM %q and VM %q; counted for %q only", pid, owner, def.Name, owner),
				})
				continue
			}
			round.claimed[pid] = def.Name
			sum += watts
			counted = true
		}
		if counted {
			perVM[def.Name] = sum
		}
	}
	if len(perVM) > 0 {
		report.PerVM = perVM
		a.prevVMs = len(perVM)
	}
}

// reporterBehavior forwards aggregated reports to a delivery function (a
// channel writer in the facade, a file/console writer in the CLI tools).
type reporterBehavior struct {
	deliver func(AggregatedReport)
}

func newReporterBehavior(deliver func(AggregatedReport)) *reporterBehavior {
	return &reporterBehavior{deliver: deliver}
}

// Receive implements actor.Behavior.
func (r *reporterBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	report, ok := msg.(AggregatedReport)
	if !ok {
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "reporter",
			Err:   fmt.Errorf("core: reporter received unexpected message %T", msg),
		})
		return
	}
	if r.deliver != nil {
		r.deliver(report)
	}
}
