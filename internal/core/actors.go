package core

import (
	"fmt"
	"time"

	"powerapi/internal/actor"
	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/model"
)

// sensorShardBehavior monitors the hardware counters of the PIDs routed to
// one shard of the Sensor pool. All state is owned by the actor goroutine;
// attach/detach flow through the mailbox (via actor.Ask) and a tick makes the
// shard publish one batched report for all its PIDs.
type sensorShardBehavior struct {
	machine *machine.Machine
	events  []hpc.Event
	shard   int
	shards  int
	topic   string // per-shard sensor topic feeding the paired formula shard
	sets    map[int]*hpc.CounterSet
}

func newSensorShardBehavior(m *machine.Machine, events []hpc.Event, shard, shards int) *sensorShardBehavior {
	return &sensorShardBehavior{
		machine: m,
		events:  events,
		shard:   shard,
		shards:  shards,
		topic:   SensorShardTopic(shard),
		sets:    make(map[int]*hpc.CounterSet),
	}
}

// Receive implements actor.Behavior.
func (s *sensorShardBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case attachRequest:
		m.Reply <- s.attach(m.PID)
	case detachRequest:
		m.Reply <- s.detach(m.PID)
	case tickRequest:
		s.tick(ctx, m)
	default:
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "sensor",
			Err:   fmt.Errorf("core: sensor received unexpected message %T", msg),
		})
	}
}

func (s *sensorShardBehavior) attach(pid int) error {
	if _, exists := s.sets[pid]; exists {
		return nil
	}
	if _, err := s.machine.Processes().Get(pid); err != nil {
		return fmt.Errorf("core: attach: %w", err)
	}
	set, err := hpc.OpenCounterSet(s.machine.Registry(), s.events, pid, hpc.AllCPUs)
	if err != nil {
		return fmt.Errorf("core: attach pid %d: %w", pid, err)
	}
	if err := set.Enable(); err != nil {
		return fmt.Errorf("core: enable counters for pid %d: %w", pid, err)
	}
	s.sets[pid] = set
	return nil
}

func (s *sensorShardBehavior) detach(pid int) error {
	set, exists := s.sets[pid]
	if !exists {
		return fmt.Errorf("core: detach: pid %d is not monitored", pid)
	}
	delete(s.sets, pid)
	if err := set.Close(); err != nil {
		return fmt.Errorf("core: detach pid %d: %w", pid, err)
	}
	return nil
}

// tick reads every counter set the shard owns and publishes ONE batch. An
// idle shard publishes an empty batch so the Aggregator can still complete
// the round.
func (s *sensorShardBehavior) tick(ctx *actor.Context, req tickRequest) {
	batch := SensorReportBatch{
		Timestamp:    req.Timestamp,
		Window:       req.Window,
		FrequencyMHz: s.machine.DominantFrequencyMHz(),
		Shard:        s.shard,
		NumShards:    s.shards,
	}
	if n := len(s.sets); n > 0 {
		batch.Samples = make([]SensorSample, 0, n)
	}
	for pid, set := range s.sets {
		deltas, err := set.ReadDelta()
		if err != nil {
			ctx.Publish(TopicErrors, PipelineError{
				Stage: "sensor",
				Err:   fmt.Errorf("core: read counters for pid %d: %w", pid, err),
			})
			deltas = hpc.Counts{}
		}
		batch.Samples = append(batch.Samples, SensorSample{PID: pid, Deltas: deltas})
	}
	if delivered := ctx.Publish(s.topic, batch); delivered == 0 {
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "sensor",
			Err:   fmt.Errorf("core: sensor shard %d has no formula subscriber", s.shard),
		})
	}
}

// formulaShardBehavior converts one shard's batched sensor reports into a
// batched partial power estimation with the learned CPU power model. The
// behaviour is stateless, so its supervisor restarts it from a fresh instance
// after a panic.
type formulaShardBehavior struct {
	model *model.CPUPowerModel
}

func newFormulaShardBehavior(m *model.CPUPowerModel) *formulaShardBehavior {
	return &formulaShardBehavior{model: m}
}

// Receive implements actor.Behavior.
func (f *formulaShardBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case SensorReportBatch:
		f.estimateBatch(ctx, m)
	default:
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "formula",
			Err:   fmt.Errorf("core: formula received unexpected message %T", msg),
		})
	}
}

func (f *formulaShardBehavior) estimateBatch(ctx *actor.Context, batch SensorReportBatch) {
	out := PowerEstimateBatch{
		Timestamp:    batch.Timestamp,
		FrequencyMHz: batch.FrequencyMHz,
		Shard:        batch.Shard,
		NumShards:    batch.NumShards,
	}
	if n := len(batch.Samples); n > 0 {
		out.Estimates = make([]PIDEstimate, 0, n)
	}
	for _, sample := range batch.Samples {
		watts, err := f.model.EstimateActiveWatts(batch.FrequencyMHz, sample.Deltas, batch.Window)
		if err != nil {
			ctx.Publish(TopicErrors, PipelineError{
				Stage: "formula",
				Err:   fmt.Errorf("core: estimate pid %d: %w", sample.PID, err),
			})
			watts = 0
		}
		out.Estimates = append(out.Estimates, PIDEstimate{PID: sample.PID, Watts: watts})
	}
	ctx.Publish(TopicPowerEstimates, out)
}

// aggregatorBehavior merges the per-shard partial estimates of each sampling
// round into one AggregatedReport and emits it once every shard has reported.
// When a group resolver is configured it additionally aggregates along that
// dimension (for example the application name), as the paper's Aggregator
// description allows.
type aggregatorBehavior struct {
	idleWatts float64
	resolve   func(pid int) string
	pending   map[time.Duration]*roundState
}

// roundState tracks one in-flight sampling round.
type roundState struct {
	report *AggregatedReport
	// batches counts PowerEstimateBatch arrivals; the round completes when
	// all NumShards have reported.
	batches int
}

func newAggregatorBehavior(idleWatts float64, resolve func(pid int) string) *aggregatorBehavior {
	return &aggregatorBehavior{
		idleWatts: idleWatts,
		resolve:   resolve,
		pending:   make(map[time.Duration]*roundState),
	}
}

// Receive implements actor.Behavior.
func (a *aggregatorBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case PowerEstimateBatch:
		round := a.round(m.Timestamp)
		for _, est := range m.Estimates {
			a.merge(round.report, est.PID, est.Watts)
		}
		round.batches++
		if round.batches >= m.NumShards {
			a.finish(ctx, m.Timestamp, round)
		}
	default:
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "aggregator",
			Err:   fmt.Errorf("core: aggregator received unexpected message %T", msg),
		})
	}
}

// maxPendingRounds bounds the aggregator's in-flight round map. A round can
// be stranded forever when a shard's batch is lost (e.g. consumed by a
// panicking behaviour before its restart); without a bound every such
// incident would leak a roundState in a long-running daemon.
const maxPendingRounds = 64

func (a *aggregatorBehavior) round(ts time.Duration) *roundState {
	round, exists := a.pending[ts]
	if !exists {
		if len(a.pending) >= maxPendingRounds {
			a.evictOldest()
		}
		round = &roundState{report: &AggregatedReport{
			Timestamp: ts,
			IdleWatts: a.idleWatts,
			PerPID:    make(map[int]float64),
		}}
		a.pending[ts] = round
	}
	return round
}

// evictOldest drops the stalest incomplete round. Its partial estimates are
// lost, which matches the behaviour a consumer already observes for a
// stranded round: Collect times out on it either way.
func (a *aggregatorBehavior) evictOldest() {
	var oldest time.Duration
	first := true
	for ts := range a.pending {
		if first || ts < oldest {
			oldest = ts
			first = false
		}
	}
	if !first {
		delete(a.pending, oldest)
	}
}

func (a *aggregatorBehavior) merge(report *AggregatedReport, pid int, watts float64) {
	report.PerPID[pid] += watts
	report.ActiveWatts += watts
	if a.resolve != nil {
		if report.PerGroup == nil {
			report.PerGroup = make(map[string]float64)
		}
		report.PerGroup[a.resolve(pid)] += watts
	}
}

func (a *aggregatorBehavior) finish(ctx *actor.Context, ts time.Duration, round *roundState) {
	round.report.TotalWatts = round.report.IdleWatts + round.report.ActiveWatts
	ctx.Publish(TopicAggregatedReports, *round.report)
	delete(a.pending, ts)
}

// reporterBehavior forwards aggregated reports to a delivery function (a
// channel writer in the facade, a file/console writer in the CLI tools).
type reporterBehavior struct {
	deliver func(AggregatedReport)
}

func newReporterBehavior(deliver func(AggregatedReport)) *reporterBehavior {
	return &reporterBehavior{deliver: deliver}
}

// Receive implements actor.Behavior.
func (r *reporterBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	report, ok := msg.(AggregatedReport)
	if !ok {
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "reporter",
			Err:   fmt.Errorf("core: reporter received unexpected message %T", msg),
		})
		return
	}
	if r.deliver != nil {
		r.deliver(report)
	}
}
