package core

import (
	"context"
	"fmt"
	"time"

	"powerapi/internal/actor"
	"powerapi/internal/cgroup"
	"powerapi/internal/model"
	"powerapi/internal/source"
	"powerapi/internal/target"
)

// sensorShardBehavior monitors the targets routed to one shard of the Sensor
// pool through a pluggable attribution source; shard 0 additionally owns the
// machine-scope source of the sensing mode (RAPL, utilisation proxy) when
// one exists. All state is owned by the actor goroutine; attach/detach flow
// through the mailbox (via actor.Ask) and a tick makes the shard publish one
// batched report for all its targets.
type sensorShardBehavior struct {
	attr          source.Source // per-target attribution source, owned by this shard
	total         source.Source // machine-scope source (shard 0 only, may be nil)
	shard         int
	shards        int
	topic         string // per-shard sensor topic feeding the paired formula shard
	sampleTimeout time.Duration
}

func newSensorShardBehavior(attr, total source.Source, shard, shards int, sampleTimeout time.Duration) *sensorShardBehavior {
	return &sensorShardBehavior{
		attr:          attr,
		total:         total,
		shard:         shard,
		shards:        shards,
		topic:         SensorShardTopic(shard),
		sampleTimeout: sampleTimeout,
	}
}

// Receive implements actor.Behavior.
func (s *sensorShardBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case attachRequest:
		m.Reply <- s.attach(m.Target)
	case detachRequest:
		m.Reply <- s.detach(m.Target)
	case tickRequest:
		s.tick(ctx, m)
	default:
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "sensor",
			Err:   fmt.Errorf("core: sensor received unexpected message %T", msg),
		})
	}
}

func (s *sensorShardBehavior) attach(t target.Target) error {
	dyn, ok := s.attr.(source.Dynamic)
	if !ok {
		return fmt.Errorf("core: %s source does not support attaching targets", s.attr.Name())
	}
	if err := dyn.Add(t); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

func (s *sensorShardBehavior) detach(t target.Target) error {
	dyn, ok := s.attr.(source.Dynamic)
	if !ok {
		return fmt.Errorf("core: %s source does not support detaching targets", s.attr.Name())
	}
	if err := dyn.Remove(t); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// tick samples the shard's sources and publishes ONE batch. An idle shard
// publishes an empty batch so the Aggregator can still complete the round.
func (s *sensorShardBehavior) tick(ctx *actor.Context, req tickRequest) {
	batch := SensorReportBatch{
		Timestamp: req.Timestamp,
		Window:    req.Window,
		Shard:     s.shard,
		NumShards: s.shards,
	}
	// The collect timeout bounds the whole round, so it also bounds each
	// source sample: a hanging custom backend cancels instead of wedging
	// the shard's mailbox forever.
	sampleCtx, cancel := context.WithTimeout(context.Background(), s.sampleTimeout)
	defer cancel()
	sample, err := s.attr.Sample(sampleCtx)
	if err != nil {
		// The sample stays usable on partial failures; surface the error
		// either way.
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "sensor",
			Err:   fmt.Errorf("core: sample %s source: %w", s.attr.Name(), err),
		})
	}
	batch.FrequencyMHz = sample.FrequencyMHz
	// The source already sized its sample to the shard's attached-target
	// count and hands the slice over (it never reuses it), so the batch can
	// adopt it wholesale instead of reallocating and copying per tick.
	batch.Samples = sample.Targets
	if s.total != nil {
		ts, err := s.total.Sample(sampleCtx)
		if err != nil {
			ctx.Publish(TopicErrors, PipelineError{
				Stage: "sensor",
				Err:   fmt.Errorf("core: sample %s source: %w", s.total.Name(), err),
			})
		} else {
			batch.MeasuredWatts = ts.MeasuredWatts
			batch.HasMeasured = ts.HasMeasured
			if batch.FrequencyMHz == 0 {
				batch.FrequencyMHz = ts.FrequencyMHz
			}
		}
	}
	if delivered := ctx.Publish(s.topic, batch); delivered == 0 {
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "sensor",
			Err:   fmt.Errorf("core: sensor shard %d has no formula subscriber", s.shard),
		})
	}
}

// formulaShardBehavior converts one shard's batched sensor reports into a
// batched partial power estimation. In ModeHPC it applies the learned CPU
// power model to the counter deltas (the paper's Formula); in ModeBlended it
// evaluates the model too, but only as the *attribution key* the Aggregator
// scales against the RAPL total (the Kepler-style ratio split); in the
// share-based modes it forwards the source weights untouched. The behaviour
// is stateless, so its supervisor restarts it from a fresh instance after a
// panic.
type formulaShardBehavior struct {
	model *model.CPUPowerModel
	mode  source.Mode
}

func newFormulaShardBehavior(m *model.CPUPowerModel, mode source.Mode) *formulaShardBehavior {
	return &formulaShardBehavior{model: m, mode: mode}
}

// Receive implements actor.Behavior.
func (f *formulaShardBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case SensorReportBatch:
		f.estimateBatch(ctx, m)
	default:
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "formula",
			Err:   fmt.Errorf("core: formula received unexpected message %T", msg),
		})
	}
}

func (f *formulaShardBehavior) estimateBatch(ctx *actor.Context, batch SensorReportBatch) {
	out := PowerEstimateBatch{
		Timestamp:     batch.Timestamp,
		FrequencyMHz:  batch.FrequencyMHz,
		Shard:         batch.Shard,
		NumShards:     batch.NumShards,
		MeasuredWatts: batch.MeasuredWatts,
		HasMeasured:   batch.HasMeasured,
	}
	if n := len(batch.Samples); n > 0 {
		// Pre-sized to the batch: one estimate per sampled target, no growth
		// reallocation on the hot path.
		out.Estimates = make([]TargetEstimate, 0, n)
	}
	for _, sample := range batch.Samples {
		est := TargetEstimate{Target: sample.Target}
		switch f.mode {
		case source.ModeHPC, source.ModeBlended, source.ModeDelegated:
			watts, err := f.model.EstimateActiveWatts(batch.FrequencyMHz, sample.Deltas, batch.Window)
			if err != nil {
				ctx.Publish(TopicErrors, PipelineError{
					Stage: "formula",
					Err:   fmt.Errorf("core: estimate %v: %w", sample.Target, err),
				})
				watts = 0
			}
			if f.mode == source.ModeHPC {
				est.Watts = watts
			} else {
				est.Weight = watts
			}
		default:
			est.Weight = sample.Weight
		}
		out.Estimates = append(out.Estimates, est)
	}
	ctx.Publish(TopicPowerEstimates, out)
}

// aggregatorBehavior merges the per-shard partial estimates of each sampling
// round into one AggregatedReport and emits it once every shard has
// reported. In attributed sensing modes it additionally normalizes the
// per-target weights of the whole round against the measured machine total —
// attribution must be global, a single shard only ever sees its own targets.
// When a cgroup hierarchy is configured it performs the hierarchical rollup:
// every group's power is the sum of its member processes' estimates
// (descendants included), so nested groups roll up to their parents and the
// per-PID and per-cgroup views are two projections of the same conserved
// attribution. When a group resolver is configured it also aggregates along
// that dimension (for example the application name), as the paper's
// Aggregator description allows.
type aggregatorBehavior struct {
	idleWatts float64
	mode      source.Mode
	resolve   func(pid int) string
	hierarchy *cgroup.Hierarchy
	// vms are the host's VM definitions in name order; every round the
	// per-VM rollup projects the per-process estimates onto them.
	vms     []VMDef
	pending map[time.Duration]*roundState
}

// roundState tracks one in-flight sampling round. In attributed modes the
// per-target maps temporarily hold raw weights until finish scales them.
type roundState struct {
	report *AggregatedReport
	// cgroupDirect holds the estimates cgroup-scope sources produced for
	// whole groups (path → watts or raw weight). Kept apart from the rollup
	// so the two cannot double-count each other.
	cgroupDirect map[string]float64
	// batches counts PowerEstimateBatch arrivals; the round completes when
	// all NumShards have reported.
	batches int
	// measuredWatts accumulates the machine-scope measurement of the round
	// (at most one batch carries it).
	measuredWatts float64
	hasMeasured   bool
	// sumWeight accumulates the raw attribution weights of every shard.
	sumWeight float64
}

func newAggregatorBehavior(idleWatts float64, mode source.Mode, resolve func(pid int) string, hierarchy *cgroup.Hierarchy, vms []VMDef) *aggregatorBehavior {
	return &aggregatorBehavior{
		idleWatts: idleWatts,
		mode:      mode,
		resolve:   resolve,
		hierarchy: hierarchy,
		vms:       vms,
		pending:   make(map[time.Duration]*roundState),
	}
}

// Receive implements actor.Behavior.
func (a *aggregatorBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case PowerEstimateBatch:
		round := a.round(m.Timestamp)
		if m.HasMeasured {
			round.measuredWatts += m.MeasuredWatts
			round.hasMeasured = true
		}
		for _, est := range m.Estimates {
			a.merge(ctx, round, est)
		}
		round.batches++
		if round.batches >= m.NumShards {
			a.finish(ctx, m.Timestamp, round)
		}
	default:
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "aggregator",
			Err:   fmt.Errorf("core: aggregator received unexpected message %T", msg),
		})
	}
}

// maxPendingRounds bounds the aggregator's in-flight round map. A round can
// be stranded forever when a shard's batch is lost (e.g. consumed by a
// panicking behaviour before its restart); without a bound every such
// incident would leak a roundState in a long-running daemon.
const maxPendingRounds = 64

func (a *aggregatorBehavior) round(ts time.Duration) *roundState {
	round, exists := a.pending[ts]
	if !exists {
		if len(a.pending) >= maxPendingRounds {
			a.evictOldest()
		}
		round = &roundState{report: &AggregatedReport{
			Timestamp:  ts,
			IdleWatts:  a.idleWatts,
			SourceMode: a.mode.String(),
			PerPID:     make(map[int]float64),
		}}
		a.pending[ts] = round
	}
	return round
}

// evictOldest drops the stalest incomplete round. Its partial estimates are
// lost, which matches the behaviour a consumer already observes for a
// stranded round: Collect times out on it either way.
func (a *aggregatorBehavior) evictOldest() {
	var oldest time.Duration
	first := true
	for ts := range a.pending {
		if first || ts < oldest {
			oldest = ts
			first = false
		}
	}
	if !first {
		delete(a.pending, oldest)
	}
}

func (a *aggregatorBehavior) merge(ctx *actor.Context, round *roundState, est TargetEstimate) {
	value := est.Watts
	if a.mode.Attributed() {
		value = est.Weight
		round.sumWeight += est.Weight
	}
	switch est.Target.Kind {
	case target.KindProcess:
		round.report.PerPID[est.Target.PID] += value
	case target.KindCgroup:
		if round.cgroupDirect == nil {
			round.cgroupDirect = make(map[string]float64)
		}
		round.cgroupDirect[est.Target.Path] += value
	default:
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "aggregator",
			Err:   fmt.Errorf("core: aggregator received estimate for unexpected target %v", est.Target),
		})
		if a.mode.Attributed() {
			round.sumWeight -= est.Weight
		}
		return
	}
	if !a.mode.Attributed() {
		round.report.ActiveWatts += value
	}
}

func (a *aggregatorBehavior) finish(ctx *actor.Context, ts time.Duration, round *roundState) {
	report := round.report
	// The raw measurement is surfaced in every mode: a custom machine-scope
	// source plugged into the formula-driven pipeline still reports what it
	// measured, it just does not drive the attribution there.
	if round.hasMeasured {
		report.MeasuredWatts = round.measuredWatts
	}
	if a.mode.Attributed() {
		a.attribute(round)
	}
	a.rollup(round)
	a.vmRollup(ctx, round)
	if a.resolve != nil && len(report.PerPID) > 0 {
		report.PerGroup = make(map[string]float64)
		for pid, watts := range report.PerPID {
			report.PerGroup[a.resolve(pid)] += watts
		}
	}
	report.TotalWatts = report.IdleWatts + report.ActiveWatts
	ctx.Publish(TopicAggregatedReports, *report)
	delete(a.pending, ts)
}

// attribute distributes the round's measured machine power across the
// monitored targets proportionally to their weights, so the per-target
// estimates sum exactly to the measurement. Zero total weight (an all-idle
// window) splits the measurement evenly; with nothing monitored the
// measurement is still reported as the machine's active power, unattributed.
func (a *aggregatorBehavior) attribute(round *roundState) {
	report := round.report
	total := round.measuredWatts
	if !round.hasMeasured {
		total = 0
	}
	report.ActiveWatts = total
	entries := len(report.PerPID) + len(round.cgroupDirect)
	switch {
	case round.sumWeight > 0:
		scale := total / round.sumWeight
		for pid, weight := range report.PerPID {
			report.PerPID[pid] = weight * scale
		}
		for path, weight := range round.cgroupDirect {
			round.cgroupDirect[path] = weight * scale
		}
	case entries > 0:
		even := total / float64(entries)
		for pid := range report.PerPID {
			report.PerPID[pid] = even
		}
		for path := range round.cgroupDirect {
			round.cgroupDirect[path] = even
		}
	}
}

// rollup fills report.PerCgroup: every hierarchy group's power is the sum of
// the per-PID estimates of its recursive members, and every direct estimate
// a cgroup-scope source produced is credited to its group and all its
// ancestors. Each PID's watts are read from the single PerPID entry, so a
// process reported both standalone and inside a group is counted once in
// ActiveWatts and merely projected into the group view; nested groups roll
// up to their parents by construction.
func (a *aggregatorBehavior) rollup(round *roundState) {
	report := round.report
	if a.hierarchy == nil && len(round.cgroupDirect) == 0 {
		return
	}
	perCgroup := make(map[string]float64)
	if a.hierarchy != nil {
		for _, path := range a.hierarchy.Paths() {
			sum := 0.0
			counted := false
			for _, pid := range a.hierarchy.MembersRecursive(path) {
				if watts, ok := report.PerPID[pid]; ok {
					sum += watts
					counted = true
				}
			}
			if counted {
				perCgroup[path] = sum
			}
		}
	}
	for path, watts := range round.cgroupDirect {
		perCgroup[path] += watts
		for _, anc := range cgroup.Ancestors(path) {
			perCgroup[anc] += watts
		}
	}
	if len(perCgroup) > 0 {
		report.PerCgroup = perCgroup
	}
}

// vmRollup fills report.PerVM: each defined VM's power is the sum of the
// per-process estimates of its designated members — a cgroup subtree's
// recursive members or an explicit PID set. Every PID's watts come from its
// single PerPID entry, so the per-VM view is a projection of the same
// conserved attribution: VM figures sum into the machine total exactly once.
// A PID dynamically claimed by two VMs (a pid-set member that joined another
// VM's cgroup subtree) is counted for the first VM in name order and
// reported on the error topic instead of silently double-counted.
func (a *aggregatorBehavior) vmRollup(ctx *actor.Context, round *roundState) {
	if len(a.vms) == 0 {
		return
	}
	report := round.report
	perVM := make(map[string]float64, len(a.vms))
	claimed := make(map[int]string)
	for _, def := range a.vms {
		pids := def.PIDs
		if def.cgroupBacked() {
			pids = a.hierarchy.MembersRecursive(def.CgroupPath)
		}
		sum := 0.0
		counted := false
		for _, pid := range pids {
			watts, ok := report.PerPID[pid]
			if !ok {
				continue // not monitored this round
			}
			if owner, dup := claimed[pid]; dup {
				ctx.Publish(TopicErrors, PipelineError{
					Stage: "aggregator",
					Err:   fmt.Errorf("core: pid %d belongs to both VM %q and VM %q; counted for %q only", pid, owner, def.Name, owner),
				})
				continue
			}
			claimed[pid] = def.Name
			sum += watts
			counted = true
		}
		if counted {
			perVM[def.Name] = sum
		}
	}
	if len(perVM) > 0 {
		report.PerVM = perVM
	}
}

// reporterBehavior forwards aggregated reports to a delivery function (a
// channel writer in the facade, a file/console writer in the CLI tools).
type reporterBehavior struct {
	deliver func(AggregatedReport)
}

func newReporterBehavior(deliver func(AggregatedReport)) *reporterBehavior {
	return &reporterBehavior{deliver: deliver}
}

// Receive implements actor.Behavior.
func (r *reporterBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	report, ok := msg.(AggregatedReport)
	if !ok {
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "reporter",
			Err:   fmt.Errorf("core: reporter received unexpected message %T", msg),
		})
		return
	}
	if r.deliver != nil {
		r.deliver(report)
	}
}
