package core

import (
	"fmt"
	"time"

	"powerapi/internal/actor"
	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/model"
)

// sensorBehavior monitors the hardware counters of attached PIDs. All state
// is owned by the actor goroutine; attach/detach flow through the mailbox.
type sensorBehavior struct {
	machine *machine.Machine
	events  []hpc.Event
	sets    map[int]*hpc.CounterSet
}

func newSensorBehavior(m *machine.Machine, events []hpc.Event) *sensorBehavior {
	return &sensorBehavior{
		machine: m,
		events:  events,
		sets:    make(map[int]*hpc.CounterSet),
	}
}

// Receive implements actor.Behavior.
func (s *sensorBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case attachRequest:
		m.Reply <- s.attach(m.PID)
	case detachRequest:
		m.Reply <- s.detach(m.PID)
	case tickRequest:
		s.tick(ctx, m)
	default:
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "sensor",
			Err:   fmt.Errorf("core: sensor received unexpected message %T", msg),
		})
	}
}

func (s *sensorBehavior) attach(pid int) error {
	if _, exists := s.sets[pid]; exists {
		return nil
	}
	if _, err := s.machine.Processes().Get(pid); err != nil {
		return fmt.Errorf("core: attach: %w", err)
	}
	set, err := hpc.OpenCounterSet(s.machine.Registry(), s.events, pid, hpc.AllCPUs)
	if err != nil {
		return fmt.Errorf("core: attach pid %d: %w", pid, err)
	}
	if err := set.Enable(); err != nil {
		return fmt.Errorf("core: enable counters for pid %d: %w", pid, err)
	}
	s.sets[pid] = set
	return nil
}

func (s *sensorBehavior) detach(pid int) error {
	set, exists := s.sets[pid]
	if !exists {
		return fmt.Errorf("core: detach: pid %d is not monitored", pid)
	}
	delete(s.sets, pid)
	if err := set.Close(); err != nil {
		return fmt.Errorf("core: detach pid %d: %w", pid, err)
	}
	return nil
}

func (s *sensorBehavior) tick(ctx *actor.Context, req tickRequest) {
	freq := s.machine.DominantFrequencyMHz()
	targets := len(s.sets)
	if targets == 0 {
		// Nothing monitored: publish an empty report directly so the
		// aggregator still emits a round.
		ctx.Publish(TopicPowerEstimates, PowerEstimate{
			Timestamp:    req.Timestamp,
			PID:          -1,
			Watts:        0,
			FrequencyMHz: freq,
			Targets:      1,
		})
		return
	}
	for pid, set := range s.sets {
		deltas, err := set.ReadDelta()
		if err != nil {
			ctx.Publish(TopicErrors, PipelineError{
				Stage: "sensor",
				Err:   fmt.Errorf("core: read counters for pid %d: %w", pid, err),
			})
			deltas = hpc.Counts{}
		}
		ctx.Publish(TopicSensorReports, SensorReport{
			Timestamp:    req.Timestamp,
			Window:       req.Window,
			PID:          pid,
			FrequencyMHz: freq,
			Deltas:       deltas,
			Targets:      targets,
		})
	}
}

// formulaBehavior converts sensor reports into power estimations with the
// learned CPU power model.
type formulaBehavior struct {
	model *model.CPUPowerModel
}

func newFormulaBehavior(m *model.CPUPowerModel) *formulaBehavior {
	return &formulaBehavior{model: m}
}

// Receive implements actor.Behavior.
func (f *formulaBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	report, ok := msg.(SensorReport)
	if !ok {
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "formula",
			Err:   fmt.Errorf("core: formula received unexpected message %T", msg),
		})
		return
	}
	watts, err := f.model.EstimateActiveWatts(report.FrequencyMHz, report.Deltas, report.Window)
	if err != nil {
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "formula",
			Err:   fmt.Errorf("core: estimate pid %d: %w", report.PID, err),
		})
		watts = 0
	}
	ctx.Publish(TopicPowerEstimates, PowerEstimate{
		Timestamp:    report.Timestamp,
		PID:          report.PID,
		Watts:        watts,
		FrequencyMHz: report.FrequencyMHz,
		Targets:      report.Targets,
	})
}

// aggregatorBehavior groups per-process estimations by timestamp and emits
// one AggregatedReport per sampling round. When a group resolver is
// configured it additionally aggregates along that dimension (for example the
// application name), as the paper's Aggregator description allows.
type aggregatorBehavior struct {
	idleWatts float64
	resolve   func(pid int) string
	pending   map[time.Duration]*AggregatedReport
	counts    map[time.Duration]int
}

func newAggregatorBehavior(idleWatts float64, resolve func(pid int) string) *aggregatorBehavior {
	return &aggregatorBehavior{
		idleWatts: idleWatts,
		resolve:   resolve,
		pending:   make(map[time.Duration]*AggregatedReport),
		counts:    make(map[time.Duration]int),
	}
}

// Receive implements actor.Behavior.
func (a *aggregatorBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	est, ok := msg.(PowerEstimate)
	if !ok {
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "aggregator",
			Err:   fmt.Errorf("core: aggregator received unexpected message %T", msg),
		})
		return
	}
	report, exists := a.pending[est.Timestamp]
	if !exists {
		report = &AggregatedReport{
			Timestamp: est.Timestamp,
			IdleWatts: a.idleWatts,
			PerPID:    make(map[int]float64),
		}
		a.pending[est.Timestamp] = report
	}
	if est.PID >= 0 {
		report.PerPID[est.PID] += est.Watts
		report.ActiveWatts += est.Watts
		if a.resolve != nil {
			if report.PerGroup == nil {
				report.PerGroup = make(map[string]float64)
			}
			report.PerGroup[a.resolve(est.PID)] += est.Watts
		}
	}
	a.counts[est.Timestamp]++
	if a.counts[est.Timestamp] >= est.Targets {
		report.TotalWatts = report.IdleWatts + report.ActiveWatts
		ctx.Publish(TopicAggregatedReports, *report)
		delete(a.pending, est.Timestamp)
		delete(a.counts, est.Timestamp)
	}
}

// reporterBehavior forwards aggregated reports to a delivery function (a
// channel writer in the facade, a file/console writer in the CLI tools).
type reporterBehavior struct {
	deliver func(AggregatedReport)
}

func newReporterBehavior(deliver func(AggregatedReport)) *reporterBehavior {
	return &reporterBehavior{deliver: deliver}
}

// Receive implements actor.Behavior.
func (r *reporterBehavior) Receive(ctx *actor.Context, msg actor.Message) {
	report, ok := msg.(AggregatedReport)
	if !ok {
		ctx.Publish(TopicErrors, PipelineError{
			Stage: "reporter",
			Err:   fmt.Errorf("core: reporter received unexpected message %T", msg),
		})
		return
	}
	if r.deliver != nil {
		r.deliver(report)
	}
}
