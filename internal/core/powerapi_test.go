package core

import (
	"math"
	"testing"
	"time"

	"powerapi/internal/calibration"
	"powerapi/internal/cpu"
	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/model"
	"powerapi/internal/workload"
)

// testModel returns a usable power model without running a full calibration:
// the paper's published reference model extended to the low end of the ladder
// so frequency fallback has something to work with.
func testModel() *model.CPUPowerModel {
	m := model.PaperReferenceModel()
	m.AddFrequencyModel(model.FrequencyModel{
		FrequencyMHz: 1600,
		Terms: []model.Term{
			{Event: hpc.Instructions.String(), WattsPerEventPerSecond: 1.1e-9},
			{Event: hpc.CacheReferences.String(), WattsPerEventPerSecond: 1.3e-8},
			{Event: hpc.CacheMisses.String(), WattsPerEventPerSecond: 1.8e-7},
		},
	})
	return m
}

func newTestMachine(t *testing.T) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Governor = cpu.GovernorPerformance
	cfg.PowerNoiseStdDevWatts = 0
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newTestAPI(t *testing.T, m *machine.Machine) *PowerAPI {
	t.Helper()
	api, err := New(m, testModel())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	return api
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, testModel()); err == nil {
		t.Fatal("nil machine should fail")
	}
	m := newTestMachine(t)
	if _, err := New(m, &model.CPUPowerModel{}); err == nil {
		t.Fatal("invalid model should fail")
	}
	api, err := New(m, testModel(), WithEvents(hpc.PaperEvents()), WithReportBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	defer api.Shutdown()
	names := api.ActorNames()
	want := map[string]bool{"sensor-0": true, "formula-0": true, "aggregator": true, "reporter": true, "error-sink": true}
	if len(names) != len(want) {
		t.Fatalf("ActorNames = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected actor %q", n)
		}
	}
	if api.Shards() != 1 {
		t.Fatalf("default Shards() = %d, want 1", api.Shards())
	}
	if _, err := New(m, testModel(), WithShards(0)); err == nil {
		t.Fatal("zero shards should fail")
	}
}

func TestAttachValidation(t *testing.T) {
	m := newTestMachine(t)
	api := newTestAPI(t, m)
	if err := api.Attach(424242); err == nil {
		t.Fatal("attaching an unknown pid should fail")
	}
	gen, _ := workload.CPUStress(0.5, 0)
	p, _ := m.Spawn(gen)
	if err := api.Attach(p.PID()); err != nil {
		t.Fatal(err)
	}
	// Attaching twice is idempotent.
	if err := api.Attach(p.PID()); err != nil {
		t.Fatal(err)
	}
	got := api.Monitored()
	if len(got) != 1 || got[0] != p.PID() {
		t.Fatalf("Monitored = %v", got)
	}
	if err := api.Detach(p.PID()); err != nil {
		t.Fatal(err)
	}
	if err := api.Detach(p.PID()); err == nil {
		t.Fatal("detaching twice should fail")
	}
	if len(api.Monitored()) != 0 {
		t.Fatal("Monitored should be empty after detach")
	}
}

func TestCollectWithoutElapsedTime(t *testing.T) {
	m := newTestMachine(t)
	api := newTestAPI(t, m)
	if _, err := api.Collect(); err == nil {
		t.Fatal("collect with no elapsed simulated time should fail")
	}
}

func TestCollectEstimatesBusyProcess(t *testing.T) {
	m := newTestMachine(t)
	api := newTestAPI(t, m)

	gen, _ := workload.MemoryStress(0.9, 0)
	p, err := m.Spawn(gen)
	if err != nil {
		t.Fatal(err)
	}
	if err := api.Attach(p.PID()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	report, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if report.Timestamp != m.Now() {
		t.Fatalf("report timestamp %v, want %v", report.Timestamp, m.Now())
	}
	if report.IdleWatts != testModel().IdleWatts {
		t.Fatalf("idle watts %v, want %v", report.IdleWatts, testModel().IdleWatts)
	}
	perPID, ok := report.PerPID[p.PID()]
	if !ok {
		t.Fatalf("report has no entry for pid %d: %v", p.PID(), report.PerPID)
	}
	if perPID <= 0 {
		t.Fatalf("busy process estimated at %v W, want > 0", perPID)
	}
	if math.Abs(report.TotalWatts-(report.IdleWatts+report.ActiveWatts)) > 1e-9 {
		t.Fatal("TotalWatts must equal IdleWatts + ActiveWatts")
	}
	// The total should be in a plausible wall-power range for this machine.
	if report.TotalWatts < 30 || report.TotalWatts > 90 {
		t.Fatalf("total estimate %.1f W implausible", report.TotalWatts)
	}
	if api.ErrorCount() != 0 {
		t.Fatalf("pipeline reported %d errors: %v", api.ErrorCount(), api.LastError())
	}
}

func TestCollectIdleProcessNearZero(t *testing.T) {
	m := newTestMachine(t)
	api := newTestAPI(t, m)
	p, err := m.Spawn(workload.Idle(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := api.Attach(p.PID()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	report, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if report.PerPID[p.PID()] > 1.0 {
		t.Fatalf("idle process estimated at %v W, want ~0", report.PerPID[p.PID()])
	}
}

func TestCollectSeparatesHeavyAndLightProcesses(t *testing.T) {
	m := newTestMachine(t)
	api := newTestAPI(t, m)
	heavyGen, _ := workload.CPUStress(1.0, 0)
	lightGen, _ := workload.CPUStress(0.2, 0)
	heavy, _ := m.Spawn(heavyGen)
	light, _ := m.Spawn(lightGen)
	if err := api.Attach(heavy.PID(), light.PID()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	report, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if report.PerPID[heavy.PID()] <= report.PerPID[light.PID()] {
		t.Fatalf("heavy process (%.2f W) not above light process (%.2f W)",
			report.PerPID[heavy.PID()], report.PerPID[light.PID()])
	}
}

func TestCollectWithNothingMonitored(t *testing.T) {
	m := newTestMachine(t)
	api := newTestAPI(t, m)
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	report, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if report.ActiveWatts != 0 {
		t.Fatalf("nothing monitored but active watts = %v", report.ActiveWatts)
	}
	if report.TotalWatts != report.IdleWatts {
		t.Fatal("total should equal idle when nothing is monitored")
	}
}

func TestRunMonitored(t *testing.T) {
	m := newTestMachine(t)
	api := newTestAPI(t, m)
	gen, _ := workload.CPUStress(0.8, 0)
	p, _ := m.Spawn(gen)
	if err := api.AttachAllRunnable(); err != nil {
		t.Fatal(err)
	}
	var callbackCount int
	reports, err := api.RunMonitored(2*time.Second, 500*time.Millisecond, func(AggregatedReport) {
		callbackCount++
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("got %d reports, want 4", len(reports))
	}
	if callbackCount != 4 {
		t.Fatalf("callback invoked %d times, want 4", callbackCount)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].Timestamp <= reports[i-1].Timestamp {
			t.Fatal("report timestamps not increasing")
		}
	}
	for _, r := range reports {
		if r.PerPID[p.PID()] <= 0 {
			t.Fatalf("report at %v attributes no power to the busy process", r.Timestamp)
		}
	}
	if _, err := api.RunMonitored(0, time.Second, nil); err == nil {
		t.Fatal("zero duration should fail")
	}
	if _, err := api.RunMonitored(time.Second, 2*time.Second, nil); err == nil {
		t.Fatal("interval above duration should fail")
	}
}

// newShardedWorkload builds a machine with several distinct workloads and an
// API with the given shard count, returning the PIDs monitored.
func newShardedWorkload(t *testing.T, shards int) (*machine.Machine, *PowerAPI, []int) {
	t.Helper()
	m := newTestMachine(t)
	api, err := New(m, testModel(), WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	levels := []float64{1.0, 0.8, 0.6, 0.4, 0.2, 0.9, 0.7, 0.5, 0.3, 0.1}
	pids := make([]int, 0, len(levels))
	for _, level := range levels {
		gen, err := workload.CPUStress(level, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.Spawn(gen)
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, p.PID())
	}
	if err := api.Attach(pids...); err != nil {
		t.Fatal(err)
	}
	return m, api, pids
}

func TestShardedCollectMatchesSingleShard(t *testing.T) {
	// The simulation is deterministic (no power noise in the test config), so
	// two identical machines monitored with different shard counts must
	// attribute identical watts to every PID.
	m1, api1, pids := newShardedWorkload(t, 1)
	m8, api8, pids8 := newShardedWorkload(t, 8)
	if len(pids) != len(pids8) {
		t.Fatal("test machines diverged")
	}
	if api8.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", api8.Shards())
	}
	for round := 0; round < 3; round++ {
		if _, err := m1.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := m8.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		r1, err := api1.Collect()
		if err != nil {
			t.Fatal(err)
		}
		r8, err := api8.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.PerPID) != len(pids) || len(r8.PerPID) != len(pids) {
			t.Fatalf("round %d: PerPID sizes %d/%d, want %d", round, len(r1.PerPID), len(r8.PerPID), len(pids))
		}
		for pid, watts := range r1.PerPID {
			if r8.PerPID[pid] != watts {
				t.Fatalf("round %d: pid %d estimated at %v W with 8 shards, %v W with 1", round, pid, r8.PerPID[pid], watts)
			}
		}
		if math.Abs(r1.ActiveWatts-r8.ActiveWatts) > 1e-9 {
			t.Fatalf("round %d: active watts %v vs %v", round, r1.ActiveWatts, r8.ActiveWatts)
		}
		if math.Abs(r8.TotalWatts-(r8.IdleWatts+r8.ActiveWatts)) > 1e-9 {
			t.Fatal("sharded TotalWatts must equal IdleWatts + ActiveWatts")
		}
	}
	if api8.ErrorCount() != 0 {
		t.Fatalf("sharded pipeline reported %d errors: %v", api8.ErrorCount(), api8.LastError())
	}
}

func TestShardedAttachDetach(t *testing.T) {
	_, api, pids := newShardedWorkload(t, 4)
	// PIDs must be spread deterministically over the pool.
	for _, pid := range pids {
		shard := api.ShardOf(pid)
		if shard < 0 || shard >= 4 {
			t.Fatalf("pid %d routed to shard %d", pid, shard)
		}
		if again := api.ShardOf(pid); again != shard {
			t.Fatalf("pid %d moved from shard %d to %d", pid, shard, again)
		}
	}
	// Detach must reach the same shard that attached the PID.
	for _, pid := range pids {
		if err := api.Detach(pid); err != nil {
			t.Fatalf("detach pid %d: %v", pid, err)
		}
	}
	if len(api.Monitored()) != 0 {
		t.Fatal("Monitored should be empty after detaching everything")
	}
	if err := api.Detach(pids[0]); err == nil {
		t.Fatal("detaching twice should fail")
	}
}

func TestShardedCollectWithNothingMonitored(t *testing.T) {
	m := newTestMachine(t)
	api, err := New(m, testModel(), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	report, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if report.ActiveWatts != 0 || report.TotalWatts != report.IdleWatts {
		t.Fatalf("idle sharded round reported %+v", report)
	}
}

func TestShutdownStopsOperations(t *testing.T) {
	m := newTestMachine(t)
	api, err := New(m, testModel())
	if err != nil {
		t.Fatal(err)
	}
	api.Shutdown()
	api.Shutdown() // idempotent
	if err := api.Attach(1); err == nil {
		t.Fatal("attach after shutdown should fail")
	}
	if err := api.Detach(1); err == nil {
		t.Fatal("detach after shutdown should fail")
	}
	if _, err := api.Collect(); err == nil {
		t.Fatal("collect after shutdown should fail")
	}
}

func TestEndToEndAccuracyAgainstCalibratedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is too slow for -short")
	}
	// Learn a model with the quick calibration sweep, then monitor a mixed
	// workload and compare the PowerAPI estimate against the machine's true
	// power. The paper reports a median error of ~15% on SPECjbb; here we
	// only assert the estimate is in a sane band (< 35% median error) since
	// the quick sweep uses far fewer samples.
	spec := cpu.IntelCorei3_2120()
	spec.MinFrequencyMHz = 2100
	spec.FrequencyStepMHz = 600
	calCfg := machine.DefaultConfig()
	calCfg.Spec = spec
	cal, err := calibration.New(calCfg, calibration.QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	powerModel, _, err := cal.Run()
	if err != nil {
		t.Fatal(err)
	}

	runCfg := machine.DefaultConfig()
	runCfg.Spec = spec
	runCfg.Governor = cpu.GovernorPerformance
	m, err := machine.New(runCfg)
	if err != nil {
		t.Fatal(err)
	}
	api, err := New(m, powerModel)
	if err != nil {
		t.Fatal(err)
	}
	defer api.Shutdown()

	jbbCfg := workload.DefaultSPECjbbConfig()
	jbbCfg.Duration = 60 * time.Second
	jbb, err := workload.NewSPECjbb(jbbCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(jbb); err != nil {
		t.Fatal(err)
	}
	if err := api.AttachAllRunnable(); err != nil {
		t.Fatal(err)
	}

	var apes []float64
	reports, err := api.RunMonitored(40*time.Second, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		truth := m.TruePowerWatts()
		_ = truth // the truth at collect time is close enough tick-to-tick
		if r.TotalWatts <= 0 {
			t.Fatal("non-positive estimate")
		}
	}
	// Compare the mean estimate against the mean true power over the run.
	var meanEst float64
	for _, r := range reports {
		meanEst += r.TotalWatts
	}
	meanEst /= float64(len(reports))
	truth := m.TruePowerWatts()
	ape := math.Abs(meanEst-truth) / truth
	apes = append(apes, ape)
	if ape > 0.5 {
		t.Fatalf("mean estimate %.1f W deviates %.0f%% from true power %.1f W", meanEst, ape*100, truth)
	}
}
