// Package core implements PowerAPI itself — the paper's middleware toolkit
// (Figure 2). Four actor components cooperate over an event bus:
//
//	Sensor     monitors the hardware counters of each watched process and
//	           publishes sensor messages;
//	Formula    turns sensor messages into power estimations using the learned
//	           CPU power model;
//	Aggregator groups the estimations by timestamp (and keeps the per-PID
//	           breakdown);
//	Reporter   converts aggregated estimations into a consumable format
//	           (callback, channel, io.Writer).
//
// The package exposes the PowerAPI facade, which wires the pipeline to a
// simulated machine and drives sampling rounds in simulated time.
package core

import (
	"time"

	"powerapi/internal/hpc"
)

// Topic names of the PowerAPI event bus.
const (
	// TopicSensorReports carries SensorReport messages from Sensors to the
	// Formula.
	TopicSensorReports = "powerapi.sensor"
	// TopicPowerEstimates carries PowerEstimate messages from the Formula to
	// the Aggregator.
	TopicPowerEstimates = "powerapi.formula"
	// TopicAggregatedReports carries AggregatedReport messages from the
	// Aggregator to Reporters.
	TopicAggregatedReports = "powerapi.reports"
	// TopicErrors carries pipeline errors.
	TopicErrors = "powerapi.errors"
)

// tickRequest asks the Sensor to perform one sampling round.
type tickRequest struct {
	// Timestamp is the simulated instant of the round.
	Timestamp time.Duration
	// Window is the simulated duration covered since the previous round.
	Window time.Duration
}

// attachRequest asks the Sensor to start monitoring a PID.
type attachRequest struct {
	PID int
	// Reply receives nil on success or the error encountered.
	Reply chan error
}

// detachRequest asks the Sensor to stop monitoring a PID.
type detachRequest struct {
	PID   int
	Reply chan error
}

// SensorReport is the message a Sensor publishes for one monitored process
// during one sampling round.
type SensorReport struct {
	// Timestamp is the simulated instant of the round.
	Timestamp time.Duration `json:"timestamp"`
	// Window is the duration the deltas were accumulated over.
	Window time.Duration `json:"window"`
	// PID identifies the monitored process.
	PID int `json:"pid"`
	// FrequencyMHz is the dominant core frequency during the round, used to
	// select the per-frequency formula.
	FrequencyMHz int `json:"frequencyMHz"`
	// Deltas are the hardware-counter increments of the process.
	Deltas hpc.Counts `json:"-"`
	// Targets is the number of processes reported in this round, letting the
	// Aggregator know when a round is complete.
	Targets int `json:"targets"`
}

// PowerEstimate is the Formula's output for one process and one round.
type PowerEstimate struct {
	Timestamp    time.Duration `json:"timestamp"`
	PID          int           `json:"pid"`
	Watts        float64       `json:"watts"`
	FrequencyMHz int           `json:"frequencyMHz"`
	Targets      int           `json:"targets"`
}

// AggregatedReport is the per-round output of the Aggregator: the total
// machine power estimate plus its per-process breakdown.
type AggregatedReport struct {
	// Timestamp is the simulated instant of the round.
	Timestamp time.Duration `json:"timestamp"`
	// IdleWatts is the constant part of the model.
	IdleWatts float64 `json:"idleWatts"`
	// ActiveWatts is the sum of per-process active power estimations.
	ActiveWatts float64 `json:"activeWatts"`
	// TotalWatts is IdleWatts + ActiveWatts, comparable to a wall power
	// measurement.
	TotalWatts float64 `json:"totalWatts"`
	// PerPID is the active power attributed to each monitored process.
	PerPID map[int]float64 `json:"perPid"`
	// PerGroup is the active power aggregated by the configured grouping
	// dimension (application name, tenant, …). Empty when no group resolver
	// was configured. This is the paper's "aggregates the power estimations
	// according to a dimension" beyond PID and timestamp.
	PerGroup map[string]float64 `json:"perGroup,omitempty"`
}

// PipelineError is published on TopicErrors when a stage fails.
type PipelineError struct {
	Stage string
	Err   error
}
