// Package core implements PowerAPI itself — the paper's middleware toolkit
// (Figure 2). Four actor components cooperate over an event bus:
//
//	Sensor     monitors the hardware counters of each watched process and
//	           publishes sensor messages;
//	Formula    turns sensor messages into power estimations using the learned
//	           CPU power model;
//	Aggregator groups the estimations by timestamp (and keeps the per-PID
//	           breakdown);
//	Reporter   converts aggregated estimations into a consumable format
//	           (callback, channel, io.Writer).
//
// The Sensor and Formula stages are N-way sharded (WithShards): the monitored
// PIDs are partitioned across a pool of Sensor shards by a consistent-hash
// router, a sampling tick fans out to every shard, and each shard emits one
// batched report to its paired Formula shard. The Aggregator merges the
// per-shard partial estimates back into a single AggregatedReport per round,
// so Reporters are oblivious to the sharding. The default of one shard
// degenerates to the paper's original single-actor-per-stage pipeline.
//
// What the Sensor shards sample is pluggable (WithSources): each shard owns a
// process-scope source from internal/source (hardware counters, procfs
// CPU-time shares) and shard 0 additionally owns the machine-scope source of
// the sensing mode (the simulated RAPL meter or a utilisation proxy). In the
// attributed modes the Aggregator normalizes the per-PID weights of the whole
// round against the measured machine total, so the per-PID estimates sum
// exactly to the measurement (Kepler-style blended attribution).
//
// The pipeline is keyed by monitoring targets (internal/target), not raw
// PIDs: a target is a process, a control group or the machine itself. Cgroup
// targets attached over a hierarchy (WithCgroups) are expanded to their
// member processes for sampling, and the Aggregator rolls the per-process
// estimates back up the hierarchy, so a group's power is the exact sum of
// its members, nested groups roll up to their parents, and nothing is
// double-counted when a PID is reported both standalone and inside a group.
//
// The package exposes the PowerAPI facade, which wires the pipeline to a
// simulated machine and drives sampling rounds in simulated time.
package core

import (
	"fmt"
	"time"

	"powerapi/internal/actor"
	"powerapi/internal/source"
	"powerapi/internal/target"
)

// Topic names of the PowerAPI event bus.
const (
	// TopicSensorReports is the prefix of the per-shard topics carrying
	// SensorReportBatch messages from each Sensor shard to its paired Formula
	// shard (see SensorShardTopic).
	TopicSensorReports = "powerapi.sensor"
	// TopicPowerEstimates carries PowerEstimateBatch messages from the
	// Formula shards to the Aggregator.
	TopicPowerEstimates = "powerapi.formula"
	// TopicAggregatedReports carries AggregatedReport messages from the
	// Aggregator to Reporters.
	TopicAggregatedReports = "powerapi.reports"
	// TopicErrors carries pipeline errors.
	TopicErrors = "powerapi.errors"
)

// SensorShardTopic returns the event-bus topic shard i of the Sensor pool
// publishes its batches on. Partitioning the sensor topic keeps every batch
// on a single Formula shard instead of fanning it out to the whole pool.
func SensorShardTopic(shard int) string {
	return fmt.Sprintf("%s.%d", TopicSensorReports, shard)
}

// tickRequest asks the Sensor to perform one sampling round.
type tickRequest struct {
	// Timestamp is the simulated instant of the round.
	Timestamp time.Duration
	// Window is the simulated duration covered since the previous round.
	Window time.Duration
}

// attachRequest asks a Sensor shard to start monitoring a target. It is sent
// through actor.Ask; Reply receives nil on success or the error encountered.
// Slot is the dense round slot the facade's slot index assigned to the target;
// the shard remembers it and stamps every sample of the target with it.
type attachRequest struct {
	Target target.Target
	Slot   int32
	Reply  chan<- actor.Message
}

// detachRequest asks a Sensor shard to stop monitoring a target.
type detachRequest struct {
	Target target.Target
	Reply  chan<- actor.Message
}

// SensorSample is one monitored target within a SensorReportBatch. It is the
// source's sample entry verbatim: the Sensor shard hands the slice produced
// by its source straight to the batch, so the hot path copies nothing.
type SensorSample = source.TargetSample

// SensorReportBatch is the single message one Sensor shard publishes per
// sampling round: every target the shard owns, batched. Batching amortizes
// the per-target channel sends and message allocations of the unsharded
// pipeline.
type SensorReportBatch struct {
	// Timestamp is the simulated instant of the round.
	Timestamp time.Duration `json:"timestamp"`
	// Window is the duration the deltas were accumulated over.
	Window time.Duration `json:"window"`
	// FrequencyMHz is the dominant core frequency during the round.
	FrequencyMHz int `json:"frequencyMHz"`
	// Shard is the index of the emitting Sensor shard.
	Shard int `json:"shard"`
	// NumShards is the size of the Sensor pool; the Aggregator uses it to
	// know when a round is complete.
	NumShards int `json:"numShards"`
	// MeasuredWatts is the machine-level power a machine-scope source
	// measured for the round. Only shard 0 owns such a source, so at most
	// one batch per round carries a measurement (HasMeasured).
	MeasuredWatts float64 `json:"measuredWatts,omitempty"`
	// HasMeasured reports whether MeasuredWatts is a real measurement.
	HasMeasured bool `json:"hasMeasured,omitempty"`
	// Samples holds one entry per monitored target of this shard (possibly
	// empty: an idle shard still reports so the round can complete).
	Samples []SensorSample `json:"samples"`
}

// TargetEstimate is one target's power estimate within a PowerEstimateBatch.
// In the formula-driven mode Watts is the final per-target power; in
// attributed modes Weight is the raw attribution key the Aggregator
// normalizes against the round's measured total. Slot carries the sample's
// dense round slot through the formula stage, encoded as slot+1 so the zero
// value means "no slot" (messages built outside the pipeline safely take the
// map path); the Aggregator subtracts one and accumulates into its
// slot-indexed sparse sets.
type TargetEstimate struct {
	Target target.Target `json:"target"`
	Slot   int32         `json:"-"`
	Watts  float64       `json:"watts"`
	Weight float64       `json:"weight,omitempty"`
}

// PowerEstimateBatch is one Formula shard's partial result for a round. The
// Aggregator merges the partials of all shards into one AggregatedReport.
type PowerEstimateBatch struct {
	Timestamp    time.Duration `json:"timestamp"`
	FrequencyMHz int           `json:"frequencyMHz"`
	Shard        int           `json:"shard"`
	NumShards    int           `json:"numShards"`
	// MeasuredWatts/HasMeasured forward the machine-scope measurement of the
	// round (see SensorReportBatch).
	MeasuredWatts float64          `json:"measuredWatts,omitempty"`
	HasMeasured   bool             `json:"hasMeasured,omitempty"`
	Estimates     []TargetEstimate `json:"estimates"`
}

// AggregatedReport is the per-round output of the Aggregator: the total
// machine power estimate plus its per-process breakdown.
//
// Retention contract: reports delivered through subscriptions, reporter
// callbacks and Collect are POOLED — their breakdown maps live in a recycled
// buffer that is reused for a later round once every holder has released it.
// A report is a stable read-only view for the natural lifetime of its
// delivery: a subscription handler may read it until it releases it (or
// returns, for WithReporter callbacks), a Collect caller until the next
// Collect on the same monitor. To keep a round beyond that, Clone it; to hand
// a round back early (enabling buffer reuse), Release it. Mutating a
// delivered report's maps is never allowed. Expired reports whether a copy
// outlived its buffer.
type AggregatedReport struct {
	// Timestamp is the simulated instant of the round.
	Timestamp time.Duration `json:"timestamp"`
	// IdleWatts is the constant part of the model.
	IdleWatts float64 `json:"idleWatts"`
	// ActiveWatts is the sum of per-process active power estimations.
	ActiveWatts float64 `json:"activeWatts"`
	// TotalWatts is IdleWatts + ActiveWatts, comparable to a wall power
	// measurement.
	TotalWatts float64 `json:"totalWatts"`
	// PerPID is the active power attributed to each monitored process.
	PerPID map[int]float64 `json:"perPid"`
	// PerCgroup is the active power attributed to each control group, keyed
	// by hierarchy path ("web", "web/api"). A group's power is the exact sum
	// of its member processes (descendants included) plus any estimate a
	// cgroup-scope source produced for it directly; nested groups roll up to
	// their parents. Empty when no cgroup hierarchy is configured and no
	// cgroup targets are monitored.
	PerCgroup map[string]float64 `json:"perCgroup,omitempty"`
	// PerVM is the active power attributed to each defined virtual machine
	// (WithVMs), keyed by VM name. A VM's power is the exact sum of the
	// per-process estimates of its designated members — a cgroup subtree's
	// recursive members or an explicit PID set — so every PID is counted into
	// the machine total exactly once and the per-VM view is a projection of
	// the same conserved attribution. The VM bridge publishes these figures
	// to nested guest-side PowerAPI instances. Empty when no VMs are defined.
	PerVM map[string]float64 `json:"perVm,omitempty"`
	// PerGroup is the active power aggregated by the configured grouping
	// dimension (application name, tenant, …). Empty when no group resolver
	// was configured. This is the paper's "aggregates the power estimations
	// according to a dimension" beyond PID and timestamp.
	PerGroup map[string]float64 `json:"perGroup,omitempty"`
	// SourceMode names the sensing mode that produced the round ("hpc",
	// "procfs", "rapl", "blended").
	SourceMode string `json:"sourceMode,omitempty"`
	// MeasuredWatts is the raw machine-level measurement of the round (RAPL
	// energy or the utilisation proxy). Zero in the formula-driven hpc mode
	// unless a custom machine-scope source was installed, in which case the
	// measurement is reported but does not drive the attribution.
	MeasuredWatts float64 `json:"measuredWatts,omitempty"`
	// SelfWatts is the power the meter itself cost during the round: the
	// monitoring process's real CPU utilisation scaled by the host CPU's
	// reference power (WithSelfPower). It attributes the middleware's own
	// overhead — the paper's "lightweight enough for production" claim,
	// continuously verified — and is NOT part of TotalWatts, which only
	// covers the simulated machine. Zero when self-power is disabled.
	SelfWatts float64 `json:"selfWatts,omitempty"`

	// lease/gen tie this copy to its pooled buffer (nil/0 for clones and
	// filtered copies, which own their maps). See Release, Clone, Expired.
	lease *reportLease
	gen   uint64
}

// PipelineError is published on TopicErrors when a stage fails.
type PipelineError struct {
	Stage string
	Err   error
}
