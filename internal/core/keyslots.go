package core

// KeySlots maps string keys to dense int32 slots, the string-keyed counterpart
// of the pipeline's target slot index. It exists for consumers one tier up
// from a single host — the fleet collector keys rollup slots by route strings
// ("cgroup:web/api", "node:n42") arriving as wire bytes — so the lookup path
// accepts a byte slice and allocates only the first time a key is seen: the
// map probe m[string(b)] does not copy its key, and the key string is
// materialised once, on assignment. Slots are grow-only; the collector's
// population (cgroup routes across a fleet) is small and stable, so recycling
// slots would buy nothing and cost the free-list bookkeeping.
type KeySlots struct {
	slots map[string]int32
	keys  []string
}

// AssignBytes returns the slot of the key, assigning the next free slot the
// first time the key is seen. Steady state (key already assigned) performs no
// allocation: the byte-slice map probe is free, and the byte slice is only
// copied into a string on first sight.
func (k *KeySlots) AssignBytes(key []byte) int32 {
	if slot, ok := k.slots[string(key)]; ok {
		return slot
	}
	return k.assign(string(key))
}

// Assign is AssignBytes for callers that already hold a string.
func (k *KeySlots) Assign(key string) int32 {
	if slot, ok := k.slots[key]; ok {
		return slot
	}
	return k.assign(key)
}

func (k *KeySlots) assign(key string) int32 {
	if k.slots == nil {
		k.slots = make(map[string]int32)
	}
	slot := int32(len(k.keys))
	k.slots[key] = slot
	k.keys = append(k.keys, key)
	return slot
}

// Lookup returns the slot of the key without assigning, and whether it exists.
// Allocation-free for byte-derived keys via LookupBytes.
func (k *KeySlots) Lookup(key string) (int32, bool) {
	slot, ok := k.slots[key]
	return slot, ok
}

// LookupBytes is Lookup with a byte-slice key; the probe does not copy it.
func (k *KeySlots) LookupBytes(key []byte) (int32, bool) {
	slot, ok := k.slots[string(key)]
	return slot, ok
}

// Key returns the key assigned to the slot. It panics on an unassigned slot,
// matching slice indexing semantics.
func (k *KeySlots) Key(slot int32) string { return k.keys[slot] }

// Len returns how many keys have been assigned.
func (k *KeySlots) Len() int { return len(k.keys) }
