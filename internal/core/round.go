package core

import (
	"sync"
	"sync/atomic"
)

// This file holds the allocation machinery of the per-round hot path: the
// slot-indexed sparse accumulator the aggregator merges shard batches into,
// the pooled report buffers aggregated rounds are published from (recycled by
// reference counting once the last holder releases a round), and the pooled
// estimate slices the formula shards hand to the aggregator.

// SparseSet accumulates one float64 per slot for a single round without
// clearing its backing arrays between rounds: an epoch stamp per slot tells
// stale values from live ones, so reset is O(1) and only the slots actually
// touched by a round are ever visited again. The aggregator merges shard
// batches into one; the fleet collector reuses it (keyed by KeySlots slots) to
// roll nodes up without per-round map churn.
type SparseSet struct {
	epoch   uint32
	epochs  []uint32
	values  []float64
	touched []int32
}

// Reset starts a new round. Amortised O(1): the epoch bump invalidates every
// stale slot at once (with a full wipe every 2^32 rounds when it wraps).
//
//powerapi:hotpath
func (s *SparseSet) Reset() {
	s.touched = s.touched[:0]
	s.epoch++
	if s.epoch == 0 {
		clear(s.epochs)
		s.epoch = 1
	}
}

// Add accumulates v into the slot, growing the backing arrays on demand.
//
//powerapi:hotpath
func (s *SparseSet) Add(slot int32, v float64) {
	if int(slot) >= len(s.epochs) {
		grown := int(slot) + 1
		if grown < 2*len(s.epochs) {
			grown = 2 * len(s.epochs)
		}
		//powerapi:allow hotpath amortized doubling growth, same argument as append
		epochs := make([]uint32, grown)
		//powerapi:allow hotpath amortized doubling growth, same argument as append
		values := make([]float64, grown)
		copy(epochs, s.epochs)
		copy(values, s.values)
		s.epochs, s.values = epochs, values
	}
	if s.epochs[slot] != s.epoch {
		s.epochs[slot] = s.epoch
		s.values[slot] = v
		s.touched = append(s.touched, slot)
		return
	}
	s.values[slot] += v
}

// Len returns how many distinct slots the current round touched.
//
//powerapi:hotpath
func (s *SparseSet) Len() int { return len(s.touched) }

// ForEach visits every slot the current round touched, in touch order, without
// allocating.
//
//powerapi:hotpath
func (s *SparseSet) ForEach(fn func(slot int32, v float64)) {
	for _, slot := range s.touched {
		fn(slot, s.values[slot])
	}
}

// Touched returns the slots the current round touched, in touch order. The
// slice aliases the set's internals and is invalidated by Reset; together with
// Value it lets a merge loop iterate without a closure.
//
//powerapi:hotpath
func (s *SparseSet) Touched() []int32 { return s.touched }

// Value returns the accumulated value of a slot returned by Touched.
//
//powerapi:hotpath
func (s *SparseSet) Value(slot int32) float64 { return s.values[slot] }

// reportLease is the shared recycling state behind every copy of a pooled
// AggregatedReport. refs counts the holders that promised to release the
// round; gen increments when the buffer is recycled, expiring every
// outstanding copy (Expired detects use-after-release).
type reportLease struct {
	refs atomic.Int32
	gen  atomic.Uint64
	home *pooledReport
}

// pooledReport is one recyclable report buffer: the report struct plus the
// maps it publishes. The maps are retained across rounds (clearing a map
// keeps its buckets), so a steady-state round repopulates warm buckets
// instead of growing fresh maps from scratch.
type pooledReport struct {
	report    AggregatedReport
	lease     reportLease
	perPID    map[int]float64
	perCgroup map[string]float64
	perVM     map[string]float64
	perGroup  map[string]float64
}

// Report-pool traffic counters, process-wide like the sync.Pool they meter:
// gets/misses give the hit rate, gets-puts the outstanding leases. A steadily
// growing outstanding figure is a lease leak — holders that never Release —
// though buffers the GC reclaimed from the pool also show up here (puts only
// counts explicit recycles).
var (
	reportPoolGets   atomic.Uint64
	reportPoolMisses atomic.Uint64
	reportPoolPuts   atomic.Uint64
)

// reportPoolCounters snapshots the process-wide pool counters.
func reportPoolCounters() (gets, misses, puts uint64) {
	return reportPoolGets.Load(), reportPoolMisses.Load(), reportPoolPuts.Load()
}

var reportPool = sync.Pool{New: func() any {
	reportPoolMisses.Add(1)
	p := &pooledReport{}
	p.lease.home = p
	return p
}}

// getPooledReport leases a report buffer for one round with one reference (the
// producer's). The hint presizes the per-PID map on a pool miss so the first
// round at a given scale grows it once instead of doubling up.
//
//powerapi:hotpath
func getPooledReport(hintPID int) *pooledReport {
	reportPoolGets.Add(1)
	p := reportPool.Get().(*pooledReport)
	p.lease.refs.Store(1)
	p.report = AggregatedReport{lease: &p.lease, gen: p.lease.gen.Load()}
	if p.perPID == nil {
		//powerapi:allow hotpath pool-miss presize; steady state reuses the warm map
		p.perPID = make(map[int]float64, hintPID)
	} else {
		clear(p.perPID)
	}
	p.report.PerPID = p.perPID
	clear(p.perCgroup)
	clear(p.perVM)
	clear(p.perGroup)
	return p
}

// ensureStringMap returns a cleared map ready for reuse, allocating a presized
// one on first use.
func ensureStringMap(m map[string]float64, hint int) map[string]float64 {
	if m == nil {
		return make(map[string]float64, hint)
	}
	clear(m)
	return m
}

// retain registers one more holder of a pooled round. A no-op for unpooled
// reports (filtered copies, clones).
//
//powerapi:hotpath
func (r AggregatedReport) retain() {
	if r.lease != nil {
		r.lease.refs.Add(1)
	}
}

// Release hands this copy of the report back to the pipeline. Every report
// received from a subscription channel or returned through a waiter holds one
// reference on its pooled round; releasing the last one recycles the buffer
// for a future round. Releasing is optional — a holder that never releases
// merely strands the round to the garbage collector (the pre-pooling
// behaviour) — but a holder MUST NOT touch the report's maps after releasing
// it: the buffer may be serving a newer round already (see Expired). Release
// each received copy at most once; it is a no-op on clones and filtered
// copies, which own their maps outright.
//
//powerapi:hotpath
func (r AggregatedReport) Release() {
	l := r.lease
	if l == nil || l.gen.Load() != r.gen {
		return // unpooled, or a stale copy of an already-recycled round
	}
	if l.refs.Add(-1) == 0 {
		l.gen.Add(1) // expire every outstanding copy before the buffer is reused
		reportPoolPuts.Add(1)
		reportPool.Put(l.home)
	}
}

// Expired reports whether this copy's pooled round has been recycled — i.e.
// the copy was released (by this holder or the pipeline) and its maps may now
// carry a different round's data. It is the debug check behind the retention
// contract: a subscriber that keeps a report past its handler without Clone
// can assert !report.Expired() before reading. Always false for clones and
// filtered copies.
//
//powerapi:hotpath
func (r AggregatedReport) Expired() bool {
	return r.lease != nil && r.lease.gen.Load() != r.gen
}

// Clone returns a deep copy of the report that is safe to retain forever: the
// copy owns its maps and is never recycled. Cloning is how a consumer opts out
// of the pooling contract for rounds it wants to keep.
func (r AggregatedReport) Clone() AggregatedReport {
	out := r
	out.lease, out.gen = nil, 0
	out.PerPID = cloneMap(r.PerPID)
	out.PerCgroup = cloneMap(r.PerCgroup)
	out.PerVM = cloneMap(r.PerVM)
	out.PerGroup = cloneMap(r.PerGroup)
	return out
}

func cloneMap[K comparable](m map[K]float64) map[K]float64 {
	if m == nil {
		return nil
	}
	out := make(map[K]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// estimatePool recycles the per-round estimate slices flowing from the
// formula shards to the aggregator. The aggregator is the sole consumer of
// TopicPowerEstimates, so it hands each batch's slice back once merged.
var estimatePool = sync.Pool{New: func() any { return new([]TargetEstimate) }}

// getEstimateSlice returns an empty estimate slice with at least the given
// capacity, reusing a pooled backing array when one is available.
//
//powerapi:hotpath
func getEstimateSlice(capacity int) []TargetEstimate {
	s := *estimatePool.Get().(*[]TargetEstimate)
	if cap(s) < capacity {
		//powerapi:allow hotpath pool-miss growth; steady state reuses the pooled array
		return make([]TargetEstimate, 0, capacity)
	}
	return s[:0]
}

// putEstimateSlice hands an estimate slice back for reuse. The caller must be
// the batch's final consumer.
//
//powerapi:hotpath
func putEstimateSlice(s []TargetEstimate) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	estimatePool.Put(&s)
}
