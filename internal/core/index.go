package core

import (
	"sync"

	"powerapi/internal/target"
)

// slotIndex assigns every attached target a small dense integer — its round
// slot — at attach time. The hot path is keyed by these slots instead of by
// target identity: sensor shards stamp each sample with its slot, and the
// aggregator accumulates per-round watts into slice-backed sparse sets indexed
// by slot, so a steady-state round rebuilds no per-target maps at all.
//
// Slots are recycled through a LIFO freelist when targets detach, keeping the
// index dense under churn, and the backing arrays shrink when a trailing run
// of slots is free (compaction), so a burst of 100k short-lived targets does
// not pin 100k slots forever.
//
// The facade mutates the index under its own lock ordering (assign before the
// shard attach, release after the shard detach); the aggregator only reads.
type slotIndex struct {
	mu sync.RWMutex
	// pidSlots indexes process targets by raw PID (the common case — integer
	// hashing, no string work); otherSlots carries cgroup/vm targets.
	pidSlots   map[int]int32
	otherSlots map[target.Target]int32
	// targets[slot] is the owner of a slot. Entries of freed slots keep their
	// last owner until reuse, so an in-flight round can still materialise a
	// sample of a just-detached target instead of dropping its watts.
	targets []target.Target
	used    []bool
	free    []int32 // LIFO freelist of released slots below len(targets)
	count   int     // slots currently in use
}

func newSlotIndex() *slotIndex {
	return &slotIndex{
		pidSlots:   make(map[int]int32),
		otherSlots: make(map[target.Target]int32),
	}
}

// assign returns the slot of t, allocating one if the target has none, and
// reports whether the target already had a slot. Assigning an already-assigned
// target is idempotent.
func (ix *slotIndex) assign(t target.Target) (int32, bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if slot, ok := ix.lookupLocked(t); ok {
		return slot, true
	}
	var slot int32
	if n := len(ix.free); n > 0 {
		slot = ix.free[n-1]
		ix.free = ix.free[:n-1]
	} else {
		slot = int32(len(ix.targets))
		ix.targets = append(ix.targets, target.Target{})
		ix.used = append(ix.used, false)
	}
	ix.targets[slot] = t
	ix.used[slot] = true
	ix.count++
	if t.Kind == target.KindProcess {
		ix.pidSlots[t.PID] = slot
	} else {
		ix.otherSlots[t] = slot
	}
	return slot, false
}

// release frees the slot of t (a no-op for unknown targets) and compacts the
// trailing run of free slots so the index capacity tracks the live set.
func (ix *slotIndex) release(t target.Target) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	slot, ok := ix.lookupLocked(t)
	if !ok {
		return
	}
	if t.Kind == target.KindProcess {
		delete(ix.pidSlots, t.PID)
	} else {
		delete(ix.otherSlots, t)
	}
	ix.used[slot] = false
	ix.count--
	ix.free = append(ix.free, slot)
	// Compaction: drop every trailing free slot. The freelist is filtered in
	// the same pass, so it never hands out a slot beyond the shrunk capacity.
	n := len(ix.used)
	for n > 0 && !ix.used[n-1] {
		n--
	}
	if n < len(ix.used) {
		ix.targets = ix.targets[:n]
		ix.used = ix.used[:n]
		kept := ix.free[:0]
		for _, s := range ix.free {
			if int(s) < n {
				kept = append(kept, s)
			}
		}
		ix.free = kept
	}
}

// lookup returns the slot of t, or -1 when the target has none.
//
//powerapi:hotpath
func (ix *slotIndex) lookup(t target.Target) int32 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if slot, ok := ix.lookupLocked(t); ok {
		return slot
	}
	return -1
}

//powerapi:hotpath
func (ix *slotIndex) lookupLocked(t target.Target) (int32, bool) {
	if t.Kind == target.KindProcess {
		slot, ok := ix.pidSlots[t.PID]
		return slot, ok
	}
	slot, ok := ix.otherSlots[t]
	return slot, ok
}

// capacity returns the current slot-array length (live slots plus not-yet
// compacted free ones); size returns the number of live slots.
func (ix *slotIndex) capacity() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.targets)
}

func (ix *slotIndex) size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.count
}

// view calls f with the slot→target table while holding the read lock, so a
// consumer (the aggregator's per-round materialisation) resolves every slot of
// a round under one lock acquisition. f must not retain the slices.
//
//powerapi:hotpath
func (ix *slotIndex) view(f func(targets []target.Target)) {
	ix.mu.RLock()
	f(ix.targets)
	ix.mu.RUnlock()
}
