package core

import (
	"powerapi/internal/obs"
)

// This file is the pipeline's shared stats collector: one snapshot every
// surface renders from — the HTTP /metrics endpoint, the /api/v1/debug
// handlers, and headless daemons that scrape Monitor.Stats() directly — so
// enabling or disabling the HTTP server never changes which gauges exist.

// ReportPoolStats snapshots the pooled-report traffic. The counters are
// process-wide (the pool is shared by every monitor in the process): Gets
// counts rounds leased, Misses pool misses (fresh allocations), Puts explicit
// recycles. Outstanding = Gets − Puts counts leases not yet released —
// in-flight rounds plus any leaked by holders that never Release.
type ReportPoolStats struct {
	Gets        uint64 `json:"gets"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	Outstanding uint64 `json:"outstanding"`
}

// HistoryStats snapshots the retained-history store's occupancy gauges.
// Zero-valued (Enabled false) without WithHistory.
type HistoryStats struct {
	Enabled bool `json:"enabled"`
	// Targets and Samples are the store's current occupancy: distinct targets
	// retained and total samples across their rings.
	Targets int `json:"targets"`
	Samples int `json:"samples"`
	// CapacityPerTarget is the ring capacity of each target.
	CapacityPerTarget int `json:"capacityPerTarget"`
}

// SelfStats snapshots the self-power meter (WithSelfPower).
type SelfStats struct {
	// Enabled reports whether self-power attribution is on and supported.
	Enabled bool `json:"enabled"`
	// Watts is the last computed self-power figure.
	Watts float64 `json:"watts"`
	// CPUSeconds is the monitoring process's cumulative CPU time.
	CPUSeconds float64 `json:"cpuSeconds"`
}

// MonitorStats is the one-call observability snapshot of a monitor: pipeline
// shape, error and subscription counters, slot-index and history occupancy,
// report-pool traffic, per-stage latency distributions and the end-to-end
// round distribution, plus the self-power figures.
type MonitorStats struct {
	Shards     int    `json:"shards"`
	SourceMode string `json:"sourceMode"`
	// Errors is the pipeline error count (ErrorCount).
	Errors int64 `json:"errors"`
	// PendingRounds is the aggregator's in-flight round count.
	PendingRounds int `json:"pendingRounds"`
	// SlotsLive/SlotsCapacity are the round-slot index occupancy: live
	// attached targets and the backing-array length (live plus
	// not-yet-compacted free slots).
	SlotsLive     int `json:"slotsLive"`
	SlotsCapacity int `json:"slotsCapacity"`
	// TraceCapacity is the round-trace ring size (WithTraceRing).
	TraceCapacity int                `json:"traceCapacity"`
	Subscriptions []SubscriptionInfo `json:"subscriptions,omitempty"`
	ReportPool    ReportPoolStats    `json:"reportPool"`
	History       HistoryStats       `json:"history"`
	// Stages holds one latency summary per pipeline stage that has recorded
	// spans; Round is the end-to-end round-duration summary.
	Stages []obs.StageStats `json:"stages,omitempty"`
	Round  obs.StageStats   `json:"round"`
	Self   SelfStats        `json:"self"`
}

// Stats snapshots the monitor's observability state. It is safe to call at
// any time, including while rounds are in flight, and works identically with
// or without the HTTP serving layer.
func (p *PowerAPI) Stats() MonitorStats {
	gets, misses, puts := reportPoolCounters()
	outstanding := uint64(0)
	if gets > puts {
		outstanding = gets - puts
	}
	stats := MonitorStats{
		Shards:        p.shards,
		SourceMode:    p.mode.String(),
		Errors:        p.errCount.Load(),
		PendingRounds: p.tracer.PendingRounds(),
		SlotsLive:     p.slots.size(),
		SlotsCapacity: p.slots.capacity(),
		TraceCapacity: p.tracer.Capacity(),
		Subscriptions: p.subs.stats(),
		ReportPool:    ReportPoolStats{Gets: gets, Misses: misses, Puts: puts, Outstanding: outstanding},
		Stages:        p.tracer.StageStats(),
		Round:         p.tracer.RoundStats(),
	}
	if p.history != nil {
		targets, samples := p.history.Occupancy()
		stats.History = HistoryStats{
			Enabled:           true,
			Targets:           targets,
			Samples:           samples,
			CapacityPerTarget: p.history.Capacity(),
		}
	}
	if p.self != nil {
		stats.Self = SelfStats{
			Enabled:    p.self.Supported(),
			Watts:      p.self.Watts(),
			CPUSeconds: p.self.CPUSeconds(),
		}
	}
	return stats
}

// Tracer returns the pipeline's round tracer (never nil): the backing store
// of the debug-rounds surface and the per-stage latency histograms. External
// pipeline extensions (the VM bridge publisher) stamp their spans into it.
func (p *PowerAPI) Tracer() *obs.Tracer { return p.tracer }

// SelfPowered reports whether self-power attribution is enabled and the
// platform supports it.
func (p *PowerAPI) SelfPowered() bool { return p.self.Supported() }
