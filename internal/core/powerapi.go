package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"powerapi/internal/actor"
	"powerapi/internal/cgroup"
	"powerapi/internal/history"
	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/model"
	"powerapi/internal/obs"
	"powerapi/internal/proc"
	"powerapi/internal/rapl"
	"powerapi/internal/source"
	"powerapi/internal/target"
)

// DefaultCollectTimeout bounds how long a synchronous sampling round may
// wait for the actor pipeline (wall-clock, not simulated time) unless
// WithCollectTimeout overrides it.
const DefaultCollectTimeout = 5 * time.Second

// Option customises a PowerAPI instance.
type Option func(*options)

// SourceFactories builds the sensing backends of a pipeline: one
// process-scope attribution source per Sensor shard, plus at most one
// machine-scope total source for the whole pipeline (owned by shard 0). A
// nil factory means the mode's default.
type SourceFactories struct {
	// Attribution builds the per-shard process-scope source.
	Attribution func(shard int) (source.Source, error)
	// Total builds the machine-scope source; it may return (nil, nil) for
	// modes without one.
	Total func() (source.Source, error)
}

type options struct {
	events          []hpc.Event
	reportBuffer    int
	shards          int
	mode            source.Mode
	factories       SourceFactories
	collectTimeout  time.Duration
	groupResolver   func(pid int) string
	hierarchy       *cgroup.Hierarchy
	vms             []VMDef
	bridgeInstalled bool
	// bridgeCleanup closes the WithVMBridge source when New fails before the
	// pipeline adopts it (the generic teardown only covers opened sources).
	bridgeCleanup   func()
	extraReporters  []namedReporter
	retention       int
	historyEnabled  bool
	historyCapacity int
	traceRing       int
	selfPower       bool
	logger          *slog.Logger
}

type namedReporter struct {
	name    string
	deliver func(AggregatedReport) error
	// flush (optional) is invoked during Shutdown after the reporter actor
	// has drained, so buffered writers end up on disk before the pipeline
	// reports completion.
	flush func() error
}

// WithEvents overrides the hardware events the Sensor monitors (defaults to
// the events used by the power model).
func WithEvents(events []hpc.Event) Option {
	return func(o *options) { o.events = append([]hpc.Event(nil), events...) }
}

// WithReportBuffer sets the capacity of the legacy Reports() channel (the
// buffer of the default subscription Reports lazily creates).
func WithReportBuffer(n int) Option {
	return func(o *options) { o.reportBuffer = n }
}

// WithReportRetention caps how many rounds RunMonitored and
// RunMonitoredContext keep in the slice they return: only the most recent n
// reports survive, so a long-running daemon loop holds bounded memory
// instead of accumulating every round forever. Zero (the default) keeps all
// rounds, preserving the historical behaviour; use WithHistory for a
// queryable per-target retention window.
func WithReportRetention(n int) Option {
	return func(o *options) { o.retention = n }
}

// WithHistory retains the most recent rounds in a queryable per-target
// history store (internal/history): a dedicated internal subscriber writes
// every report into fixed-capacity ring buffers — one per process, cgroup
// and the machine total — and Query answers windowed avg/max/p95 aggregates
// over them. capacity bounds the samples retained per target; non-positive
// selects history.DefaultCapacity. Targets that stop being monitored — an
// explicit Detach, or a process leaving its monitored cgroup — are dropped
// from the store, so a long-lived daemon's history stays bounded by the live
// target set rather than by every PID that ever existed.
func WithHistory(capacity int) Option {
	return func(o *options) {
		o.historyEnabled = true
		o.historyCapacity = capacity
	}
}

// WithShards splits the Sensor and Formula stages into n PID-partitioned
// shards each. Monitored PIDs are spread over the Sensor pool by a
// consistent-hash router, every sampling tick fans out to all shards in
// parallel, and each shard contributes one batched partial result that the
// Aggregator merges back into a single report. The default of 1 preserves the
// paper's one-actor-per-stage pipeline.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithSources selects the sensing mode of the pipeline — which backends the
// Sensor shards sample and how their outputs combine into per-PID power:
//
//	hpc      counter deltas through the learned formula (the default);
//	procfs   utilisation-proxy total attributed by CPU-time share;
//	rapl     RAPL package+DRAM total attributed by CPU-time share;
//	blended  RAPL package total attributed by counter activity (Kepler-style).
//
// Use WithSourceFactories to swap in custom Source implementations.
func WithSources(mode source.Mode) Option {
	return func(o *options) { o.mode = mode }
}

// WithSourceFactories overrides how the pipeline constructs its sensing
// backends (custom or instrumented Source implementations). Factories left
// nil fall back to the mode's defaults.
func WithSourceFactories(f SourceFactories) Option {
	return func(o *options) {
		if f.Attribution != nil {
			o.factories.Attribution = f.Attribution
		}
		if f.Total != nil {
			o.factories.Total = f.Total
		}
	}
}

// WithCollectTimeout overrides how long a synchronous operation (Attach,
// Detach, Collect) waits for the actor pipeline before giving up. The
// timeout is wall-clock time and must be positive.
func WithCollectTimeout(d time.Duration) Option {
	return func(o *options) { o.collectTimeout = d }
}

// WithGroupResolver aggregates power along an extra dimension: the resolver
// maps a PID to a group label (application, tenant, VM, …) and the
// Aggregator fills AggregatedReport.PerGroup accordingly.
func WithGroupResolver(resolve func(pid int) string) Option {
	return func(o *options) { o.groupResolver = resolve }
}

// WithProcessNameGrouping aggregates power by process name as known to the
// monitored machine's process table.
func WithProcessNameGrouping(m *machine.Machine) Option {
	return WithGroupResolver(func(pid int) string {
		p, err := m.Processes().Get(pid)
		if err != nil {
			return "unknown"
		}
		return p.Name()
	})
}

// WithReporter registers an additional Reporter component (CSV, JSON lines,
// energy accumulator, …) as its own actor subscribed to the aggregated
// reports topic. Errors returned by the reporter are routed to the pipeline's
// error topic.
func WithReporter(name string, deliver func(AggregatedReport) error) Option {
	return func(o *options) {
		o.extraReporters = append(o.extraReporters, namedReporter{name: name, deliver: deliver})
	}
}

// WithFlushingReporter is WithReporter for buffered reporters: flush is
// invoked during Shutdown, after the reporter actor has drained its mailbox,
// so every buffered row reaches the underlying writer before the pipeline
// reports completion. A flush failure is surfaced through the pipeline's
// error counter and LastError.
func WithFlushingReporter(name string, deliver func(AggregatedReport) error, flush func() error) Option {
	return func(o *options) {
		o.extraReporters = append(o.extraReporters, namedReporter{name: name, deliver: deliver, flush: flush})
	}
}

// WithTraceRing sets how many recent round traces the pipeline's tracer
// retains for the debug surfaces (obs.DefaultTraceRing when n <= 0). Tracing
// itself is always on — its record path is lock-free and allocation-free —
// so this only sizes the /api/v1/debug/rounds window.
func WithTraceRing(n int) Option {
	return func(o *options) { o.traceRing = n }
}

// WithSelfPower enables self-power attribution: every report's SelfWatts is
// the power the monitoring process itself cost during the round, computed
// from its real CPU utilisation (getrusage) scaled by the simulated CPU's
// TDP. The daemon enables it by default so every report states what the
// meter costs; it is opt-in for library use.
func WithSelfPower() Option {
	return func(o *options) { o.selfPower = true }
}

// WithLogger routes the pipeline's structured log events (supervisor
// restarts, subscription lifecycle) through the given slog logger instead of
// slog.Default(). Library code never writes to stderr unconditionally: the
// handler and level of the configured logger decide what surfaces.
func WithLogger(l *slog.Logger) Option {
	return func(o *options) { o.logger = l }
}

// WithCgroups attaches a control-group hierarchy to the pipeline. Cgroup
// targets become attachable (AttachTargets): attaching a group monitors its
// member processes (descendants included) and every sampling round the
// Aggregator rolls the per-process estimates back up the hierarchy into
// AggregatedReport.PerCgroup, so a group's power is the exact sum of its
// members, nested groups roll up to their parents, and a PID reported both
// standalone and inside a group is never double-counted. Membership is
// re-synchronised on every Collect: members that exit are pruned from the
// hierarchy and detached from their Sensor shard, members that join are
// attached.
func WithCgroups(h *cgroup.Hierarchy) Option {
	return func(o *options) { o.hierarchy = h }
}

// VMDef designates a named virtual machine on the host: either a cgroup
// subtree (the VM's slice — recursive members are the VM's processes) or an
// explicit PID set (the VM's vCPU threads). Exactly one of CgroupPath and
// PIDs must be set. The Aggregator sums each VM's member estimates into
// AggregatedReport.PerVM every round, and the VM bridge delegates those
// figures to nested guest-side PowerAPI instances.
type VMDef struct {
	// Name identifies the VM ("vm-web"); it is the target.VM identity and
	// the key the bridge's frames carry.
	Name string
	// CgroupPath designates a cgroup subtree as the VM (requires
	// WithCgroups); its recursive members are the VM's processes.
	CgroupPath string
	// PIDs designates an explicit process set as the VM.
	PIDs []int
}

// cgroupBacked reports whether the VM is designated by a cgroup subtree.
func (d VMDef) cgroupBacked() bool { return d.CgroupPath != "" }

// WithVMs designates named VMs on the host (cgroup subtrees or PID sets).
// Every sampling round the Aggregator fills AggregatedReport.PerVM with each
// VM's power — the exact sum of its members' per-process estimates, each PID
// counted once — and vm targets become attachable: attaching target.VM(name)
// monitors the VM's member processes, re-synchronised on every Collect.
// Definitions must not overlap (a PID or subtree claimed by two VMs would
// double-count), which New validates.
func WithVMs(defs ...VMDef) Option {
	return func(o *options) { o.vms = append(o.vms, defs...) }
}

// WithVMBridge plugs the guest side of the host↔guest VM bridge into the
// pipeline: the sensing mode becomes delegated — the machine total of every
// round is whatever the given source reports, which for a
// vmbridge.DelegatedSource is the latest power figure the host-side instance
// delegated for this VM — and the per-process attribution conserves to that
// total exactly as the blended mode conserves to a RAPL measurement. The
// pipeline owns the source: it is opened at construction and closed on
// Shutdown.
func WithVMBridge(delegated source.Source) Option {
	return func(o *options) {
		o.mode = source.ModeDelegated
		o.bridgeInstalled = true
		o.factories.Total = func() (source.Source, error) {
			if delegated == nil {
				return nil, errors.New("core: nil delegated source")
			}
			return delegated, nil
		}
		o.bridgeCleanup = func() {
			if delegated != nil {
				_ = delegated.Close()
			}
		}
	}
}

// PowerAPI is the middleware facade: it owns the actor system implementing
// the Figure 2 pipeline and exposes process-level power monitoring over a
// simulated machine.
type PowerAPI struct {
	machine        *machine.Machine
	model          *model.CPUPowerModel
	system         *actor.System
	sensors        *actor.Router
	slots          *slotIndex
	shards         int
	mode           source.Mode
	collectTimeout time.Duration
	sources        []source.Source
	hierarchy      *cgroup.Hierarchy
	vms            map[string]VMDef
	attrScope      source.Scope
	flushes        []func() error
	// tracer is the self-observability layer every stage stamps its spans
	// into; it is always present (never nil). self attributes the meter's own
	// power (nil unless WithSelfPower). logger carries the pipeline's
	// structured log events.
	tracer *obs.Tracer
	self   *obs.SelfMeter
	logger *slog.Logger

	// subs is the fanout registry every aggregated report is published to;
	// all consumers — Subscribe callers, the legacy Reports channel, the
	// WithReporter shims, the history writer — are subscriptions in it.
	subs         *subscriptionRegistry
	reportBuffer int
	retention    int
	history      *history.Store
	// drainWG tracks the internal subscriber goroutines (reporter shims,
	// history writer); Shutdown waits for them before flushing.
	drainWG sync.WaitGroup

	// collectMu guards the per-round waiters Collect registers before
	// broadcasting a tick; the fanout completes them ahead of subscriptions.
	collectMu      sync.Mutex
	collectWaiters map[time.Duration]chan AggregatedReport

	errCount    atomic.Int64
	lastErr     atomic.Value // errBox
	mu          sync.Mutex
	defaultSub  *Subscription // lazy Reports() subscription
	lastCollect time.Duration
	// monitored holds the explicitly attached targets (processes and cgroups);
	// members holds the PIDs attached to shards because a monitored cgroup
	// contains them. A PID present in both stays attached until it leaves both.
	monitored map[target.Target]bool
	members   map[int]bool
	closed    bool
	// lastReport is the pooled round the most recent Collect returned; it is
	// released when the next Collect replaces it (the Collect retention
	// contract) or on Shutdown.
	lastReport AggregatedReport
	hasLast    bool
}

// New wires a PowerAPI pipeline onto a machine using the given power model.
func New(m *machine.Machine, powerModel *model.CPUPowerModel, opts ...Option) (api *PowerAPI, err error) {
	if m == nil {
		return nil, errors.New("core: nil machine")
	}
	if verr := powerModel.Validate(); verr != nil {
		return nil, fmt.Errorf("core: %w", verr)
	}
	cfg := options{reportBuffer: 64, shards: 1, mode: source.ModeHPC, collectTimeout: DefaultCollectTimeout}
	for _, opt := range opts {
		opt(&cfg)
	}
	// A failed constructor must not leak the bridge source handed over by
	// WithVMBridge: its frame-consuming receiver stays alive with no handle
	// the caller could close ("the pipeline owns the source"). The generic
	// teardown below only covers sources the pipeline already opened, so the
	// bridge gets its own failure hook.
	defer func() {
		if err != nil && cfg.bridgeCleanup != nil {
			cfg.bridgeCleanup()
		}
	}()
	if cfg.shards < 1 {
		return nil, fmt.Errorf("core: shard count must be at least 1, got %d", cfg.shards)
	}
	if !cfg.mode.Valid() {
		return nil, fmt.Errorf("core: invalid source mode %v", cfg.mode)
	}
	if cfg.collectTimeout <= 0 {
		return nil, fmt.Errorf("core: collect timeout must be positive, got %v", cfg.collectTimeout)
	}
	if cfg.retention < 0 {
		return nil, fmt.Errorf("core: report retention must not be negative, got %d", cfg.retention)
	}
	if cfg.reportBuffer < 0 {
		return nil, fmt.Errorf("core: report buffer must not be negative, got %d", cfg.reportBuffer)
	}
	vms, err := validateVMs(cfg.vms, cfg.hierarchy)
	if err != nil {
		return nil, err
	}
	if cfg.mode == source.ModeDelegated && cfg.factories.Total == nil {
		return nil, errors.New("core: delegated mode needs the guest side of a VM bridge (WithVMBridge)")
	}
	if cfg.bridgeInstalled && cfg.mode != source.ModeDelegated {
		// A later WithSources must not silently repurpose the bridge's
		// delegated frames as another mode's machine measurement.
		return nil, fmt.Errorf("core: WithVMBridge selects the delegated mode; it cannot combine with WithSources(%v)", cfg.mode)
	}
	if len(cfg.events) == 0 {
		events, err := powerModel.Events()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		cfg.events = events
	}
	fillDefaultFactories(&cfg, m)

	api = &PowerAPI{
		machine:        m,
		model:          powerModel,
		system:         actor.NewSystem("powerapi"),
		slots:          newSlotIndex(),
		shards:         cfg.shards,
		mode:           cfg.mode,
		collectTimeout: cfg.collectTimeout,
		hierarchy:      cfg.hierarchy,
		vms:            vms,
		subs:           newSubscriptionRegistry(cfg.hierarchy),
		reportBuffer:   cfg.reportBuffer,
		retention:      cfg.retention,
		collectWaiters: make(map[time.Duration]chan AggregatedReport),
		monitored:      make(map[target.Target]bool),
		members:        make(map[int]bool),
		lastCollect:    m.Now(),
		tracer:         obs.NewTracer(cfg.traceRing),
		logger:         cfg.logger,
	}
	if api.logger == nil {
		api.logger = slog.Default()
	}
	api.subs.logger = api.logger
	if cfg.selfPower {
		// The meter's baseline is construction time, so the pipeline's own
		// setup cost is attributed to it from round one.
		api.self = obs.NewSelfMeter(m.Spec().TDPWatts, runtime.NumCPU())
	}
	for _, extra := range cfg.extraReporters {
		if extra.flush != nil {
			api.flushes = append(api.flushes, extra.flush)
		}
	}
	// A failed constructor must not leak what it built so far: actors already
	// spawned keep goroutines alive, internal subscribers run drain
	// goroutines, and opened sources hold registrations in the machine's
	// counter registry, so retrying callers would accumulate all three. The
	// defer tears everything down unless construction completes. The defer
	// captures the pipeline in its own variable: error returns reset the
	// named return to nil before defers run.
	built := false
	pipeline := api
	defer func() {
		if built {
			return
		}
		pipeline.system.Shutdown()
		pipeline.subs.closeAll()
		pipeline.drainWG.Wait()
		for _, src := range pipeline.sources {
			_ = src.Close()
		}
	}()

	// Pipeline stage failures are supervised: a panicking shard is restarted
	// and the failure lands on the error topic instead of killing the system.
	supervised := func(stage string) actor.RestartPolicy {
		return actor.RestartPolicy{
			MaxRestarts: -1,
			OnPanic: func(info actor.PanicInfo) {
				api.errCount.Add(1)
				api.lastErr.Store(errBox{fmt.Errorf("core: %s actor %s panicked (restart %d): %v", stage, info.Actor, info.Restarts, info.Value)})
				api.logger.Warn("pipeline actor panicked, restarting",
					"stage", stage, "actor", info.Actor, "restarts", info.Restarts, "panic", info.Value)
			},
		}
	}

	// The machine-scope source of the mode (RAPL meter, utilisation proxy)
	// exists once per pipeline and is owned by Sensor shard 0; attribution
	// sources are per shard, each owning the sampling state of its PIDs.
	var totalSrc source.Source
	if cfg.factories.Total != nil {
		src, err := cfg.factories.Total()
		if err != nil {
			return nil, fmt.Errorf("core: build total source: %w", err)
		}
		if src != nil {
			if err := src.Open(nil); err != nil {
				return nil, fmt.Errorf("core: open %s source: %w", src.Name(), err)
			}
			totalSrc = src
			api.sources = append(api.sources, src)
		}
	}

	bus := api.system.Bus()
	sensorRefs := make([]*actor.Ref, cfg.shards)
	for i := 0; i < cfg.shards; i++ {
		// The formula shard is stateless: restart from a fresh instance.
		formula, err := api.system.SpawnSupervised(fmt.Sprintf("formula-%d", i),
			func() actor.Behavior { return newFormulaShardBehavior(powerModel, cfg.mode, api.tracer) }, 0, supervised("formula"))
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if err := bus.Subscribe(SensorShardTopic(i), formula); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		attrSrc, err := cfg.factories.Attribution(i)
		if err != nil {
			return nil, fmt.Errorf("core: build attribution source for shard %d: %w", i, err)
		}
		if attrSrc == nil {
			return nil, fmt.Errorf("core: attribution source factory returned nil for shard %d", i)
		}
		if err := attrSrc.Open(nil); err != nil {
			return nil, fmt.Errorf("core: open %s source for shard %d: %w", attrSrc.Name(), i, err)
		}
		api.sources = append(api.sources, attrSrc)
		if i == 0 {
			// The shard pool is homogeneous (one factory), so shard 0 tells the
			// facade whether attribution samples processes or whole cgroups.
			api.attrScope = attrSrc.Scope()
		}
		var shardTotal source.Source
		if i == 0 {
			shardTotal = totalSrc
		}
		// The sensor shard owns the sampling state of its PIDs, so a restart
		// keeps the same behaviour instance (state preserved).
		sensorShard := newSensorShardBehavior(attrSrc, shardTotal, i, cfg.shards, cfg.collectTimeout, api.tracer)
		sensor, err := api.system.SpawnSupervised(fmt.Sprintf("sensor-%d", i),
			func() actor.Behavior { return sensorShard }, 0, supervised("sensor"))
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		sensorRefs[i] = sensor
	}
	sensors, err := actor.NewRouter(actor.ConsistentHash, sensorRefs...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(vms) > 0 && api.attrScope == source.ScopeCgroup {
		// The per-VM rollup sums per-process rows; a cgroup-scope attribution
		// source produces none (it samples whole groups as single units).
		return nil, errors.New("core: VM definitions require a process-scope attribution source")
	}
	// The aggregator keeps in-flight round state across restarts; reporters
	// wrap externally supplied delivery functions. Both keep their instance
	// on restart but still record the panic like the shard pools do.
	//
	// The RAPL-measured modes attribute the full package power — idle floor
	// included — so stacking the model's idle constant on top would double
	// count it; the hpc and procfs modes only estimate active power and keep
	// the constant.
	// The delegated mode likewise attributes the full host-delegated figure
	// — the VM's share of idle power is already inside it, so the guest must
	// not stack its own idle constant on top.
	idleWatts := powerModel.IdleWatts
	if cfg.mode == source.ModeRAPL || cfg.mode == source.ModeBlended || cfg.mode == source.ModeDelegated {
		idleWatts = 0
	}
	aggregatorBhv := newAggregatorBehavior(idleWatts, cfg.mode, cfg.groupResolver, cfg.hierarchy, sortedVMDefs(vms), api.slots, api.tracer, api.self)
	aggregator, err := api.system.SpawnSupervised("aggregator",
		func() actor.Behavior { return aggregatorBhv }, 0, supervised("aggregator"))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// The Reporter stage is the fanout: one actor consumes the aggregated
	// reports topic and publishes every round to the subscription registry
	// (after completing any waiter a synchronous Collect registered).
	reporterBhv := newReporterBehavior(api.fanout)
	reporter, err := api.system.SpawnSupervised("reporter",
		func() actor.Behavior { return reporterBhv }, 0, supervised("reporter"))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// WithReporter/WithFlushingReporter reporters are internal subscribers of
	// the registry: a lossless Block subscription drained by its own
	// goroutine, so a slow file writer backpressures the pipeline exactly as
	// its dedicated actor mailbox used to, and a delivery failure lands in
	// ErrorCount/LastError.
	for i, extra := range cfg.extraReporters {
		if err := api.spawnReporterSubscriber(fmt.Sprintf("reporter-%s-%d", extra.name, i), extra.deliver); err != nil {
			return nil, err
		}
	}
	if cfg.historyEnabled {
		api.history = history.NewStore(cfg.historyCapacity)
		if err := api.spawnHistorySubscriber(); err != nil {
			return nil, err
		}
	}
	errorSinkBhv := actor.BehaviorFunc(func(_ *actor.Context, msg actor.Message) {
		if perr, ok := msg.(PipelineError); ok {
			api.errCount.Add(1)
			api.lastErr.Store(errBox{perr.Err})
		}
	})
	errorSink, err := api.system.SpawnSupervised("error-sink",
		func() actor.Behavior { return errorSinkBhv }, 0, supervised("error-sink"))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	if err := bus.Subscribe(TopicPowerEstimates, aggregator); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := bus.Subscribe(TopicAggregatedReports, reporter); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := bus.Subscribe(TopicErrors, errorSink); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	api.sensors = sensors
	built = true
	return api, nil
}

// fillDefaultFactories completes cfg.factories with the standard sources of
// the sensing mode: hpc/blended attribute by hardware counters, procfs/rapl
// by CPU-time share; procfs measures a utilisation proxy, rapl and blended
// measure the simulated RAPL domains (package+DRAM and package-only
// respectively).
func fillDefaultFactories(cfg *options, m *machine.Machine) {
	if cfg.factories.Attribution == nil {
		switch cfg.mode {
		case source.ModeHPC, source.ModeBlended, source.ModeDelegated:
			events := cfg.events
			cfg.factories.Attribution = func(int) (source.Source, error) {
				return source.NewHPC(m, events)
			}
		default:
			cfg.factories.Attribution = func(int) (source.Source, error) {
				return source.NewProcfs(m)
			}
		}
	}
	if cfg.factories.Total == nil {
		switch cfg.mode {
		case source.ModeProcfs:
			cfg.factories.Total = func() (source.Source, error) {
				return source.NewUtilizationTotal(m)
			}
		case source.ModeRAPL:
			cfg.factories.Total = func() (source.Source, error) {
				return source.NewMachineRAPL(m, rapl.DomainPackage, rapl.DomainDRAM)
			}
		case source.ModeBlended:
			cfg.factories.Total = func() (source.Source, error) {
				return source.NewMachineRAPL(m, rapl.DomainPackage)
			}
		default:
			cfg.factories.Total = func() (source.Source, error) { return nil, nil }
		}
	}
}

// validateVMs checks the WithVMs definitions: names must be valid and
// unique, each VM designates exactly one of a cgroup subtree or a PID set,
// and definitions must not statically overlap — a PID or subtree claimed by
// two VMs would be double-counted in the per-VM rollup. (A pid-set PID that
// later joins a VM's cgroup subtree is a dynamic overlap; the Aggregator
// detects it per round and counts the PID once.)
func validateVMs(defs []VMDef, hierarchy *cgroup.Hierarchy) (map[string]VMDef, error) {
	if len(defs) == 0 {
		return nil, nil
	}
	out := make(map[string]VMDef, len(defs))
	pidOwner := make(map[int]string)
	for _, def := range defs {
		if !target.VM(def.Name).Valid() {
			return nil, fmt.Errorf("core: invalid VM name %q", def.Name)
		}
		if err := cgroup.ValidatePath(def.Name); err != nil || strings.Contains(def.Name, cgroup.Separator) {
			return nil, fmt.Errorf("core: invalid VM name %q (want one segment of letters, digits, '.', '_', '-')", def.Name)
		}
		if _, dup := out[def.Name]; dup {
			return nil, fmt.Errorf("core: VM %q defined twice", def.Name)
		}
		switch {
		case def.cgroupBacked() && len(def.PIDs) > 0:
			return nil, fmt.Errorf("core: VM %q designates both a cgroup subtree and a PID set", def.Name)
		case def.cgroupBacked():
			if hierarchy == nil {
				return nil, fmt.Errorf("core: VM %q designates cgroup %q but no hierarchy is configured (WithCgroups)", def.Name, def.CgroupPath)
			}
			if err := cgroup.ValidatePath(def.CgroupPath); err != nil {
				return nil, fmt.Errorf("core: VM %q: %w", def.Name, err)
			}
			for otherName, other := range out {
				if other.cgroupBacked() && cgroupPathsOverlap(other.CgroupPath, def.CgroupPath) {
					return nil, fmt.Errorf("core: VMs %q and %q designate overlapping cgroup subtrees (%q, %q): their members would be double-counted", otherName, def.Name, other.CgroupPath, def.CgroupPath)
				}
			}
		case len(def.PIDs) > 0:
			for _, pid := range def.PIDs {
				if pid <= 0 {
					return nil, fmt.Errorf("core: VM %q designates invalid pid %d", def.Name, pid)
				}
				if owner, dup := pidOwner[pid]; dup {
					return nil, fmt.Errorf("core: pid %d designated by both VM %q and VM %q: it would be double-counted", pid, owner, def.Name)
				}
				pidOwner[pid] = def.Name
			}
		default:
			return nil, fmt.Errorf("core: VM %q designates neither a cgroup subtree nor a PID set", def.Name)
		}
		def.PIDs = append([]int(nil), def.PIDs...)
		out[def.Name] = def
	}
	return out, nil
}

// sortedVMDefs returns the VM definitions ordered by name (the Aggregator's
// deterministic rollup order).
func sortedVMDefs(vms map[string]VMDef) []VMDef {
	out := make([]VMDef, 0, len(vms))
	for _, def := range vms {
		out = append(out, def)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// fanout runs on the Reporter actor goroutine: it completes the waiter of a
// synchronous Collect (first, so a slow subscriber cannot delay the round's
// own caller) and then publishes the report to every live subscription.
func (p *PowerAPI) fanout(report AggregatedReport) {
	traceStart := p.tracer.Now()
	ts := report.Timestamp
	p.collectMu.Lock()
	if waiter, ok := p.collectWaiters[report.Timestamp]; ok {
		delete(p.collectWaiters, report.Timestamp)
		report.retain()  // the Collect caller's reference (released at its next Collect)
		waiter <- report // buffered one deep; the fanout is the only sender
	}
	p.collectMu.Unlock()
	p.subs.publish(report) // each delivered channel send holds its own reference
	report.Release()       // the aggregator's publishing reference
	p.tracer.Record(ts, obs.StageFanout, 0, traceStart, p.tracer.Now())
	// The fanout is the last synchronous stage: every consumer holds the
	// round now, so this stamp is the round's end-to-end duration.
	p.tracer.FinishRound(ts)
}

// recordError surfaces a failure through the pipeline's error counter and
// LastError (the same place PipelineError messages land).
func (p *PowerAPI) recordError(err error) {
	p.errCount.Add(1)
	p.lastErr.Store(errBox{err})
}

// spawnReporterSubscriber registers one WithReporter delivery function as an
// internal Block subscription drained by its own goroutine. Deliveries are
// panic-recovered: a reporter actor's supervisor used to absorb these, so a
// panicking user callback must keep landing in ErrorCount instead of killing
// the process.
func (p *PowerAPI) spawnReporterSubscriber(name string, deliver func(AggregatedReport) error) error {
	sub, err := p.subs.add(SubscribeOptions{Name: name, Policy: Block, Buffer: actor.DefaultMailboxSize})
	if err != nil {
		return fmt.Errorf("core: subscribe %s: %w", name, err)
	}
	deliverSafely := func(report AggregatedReport) {
		defer func() {
			if v := recover(); v != nil {
				p.recordError(fmt.Errorf("core: reporter %s panicked: %v", name, v))
			}
		}()
		if err := deliver(report); err != nil {
			p.recordError(fmt.Errorf("core: reporter %s: %w", name, err))
		}
	}
	p.drainWG.Add(1)
	go func() {
		defer p.drainWG.Done()
		for report := range sub.C() {
			ts := report.Timestamp
			traceStart := p.tracer.Now()
			deliverSafely(report)
			// The round is pooled: a callback that wants to keep it past its
			// return must Clone (the retention contract on AggregatedReport).
			report.Release()
			p.tracer.Record(ts, obs.StageReporter, 0, traceStart, p.tracer.Now())
		}
	}()
	return nil
}

// spawnHistorySubscriber wires the retained-history store as a dedicated
// internal subscriber: every round's machine total, per-process and
// per-cgroup watts are written into the store's ring buffers — one batched,
// atomic write per round, so queries never observe a torn round and the
// store lock is taken once per round instead of once per target.
func (p *PowerAPI) spawnHistorySubscriber() error {
	sub, err := p.subs.add(SubscribeOptions{Name: "history", Policy: Block, Buffer: actor.DefaultMailboxSize})
	if err != nil {
		return fmt.Errorf("core: subscribe history: %w", err)
	}
	p.drainWG.Add(1)
	go func() {
		defer p.drainWG.Done()
		var batch []history.TargetSample
		for report := range sub.C() {
			ts := report.Timestamp
			traceStart := p.tracer.Now()
			batch = batch[:0]
			batch = append(batch, history.TargetSample{Target: target.Machine(), Watts: report.TotalWatts})
			for pid, watts := range report.PerPID {
				batch = append(batch, history.TargetSample{Target: target.Process(pid), Watts: watts})
			}
			for path, watts := range report.PerCgroup {
				batch = append(batch, history.TargetSample{Target: target.Cgroup(path), Watts: watts})
			}
			for name, watts := range report.PerVM {
				batch = append(batch, history.TargetSample{Target: target.VM(name), Watts: watts})
			}
			p.history.RecordBatch(report.Timestamp, batch)
			report.Release()
			p.tracer.Record(ts, obs.StageHistory, 0, traceStart, p.tracer.Now())
		}
	}()
	return nil
}

// Machine returns the monitored machine.
func (p *PowerAPI) Machine() *machine.Machine { return p.machine }

// Model returns the power model in use.
func (p *PowerAPI) Model() *model.CPUPowerModel { return p.model }

// ActorNames lists the pipeline's actors (diagnostics and tests).
func (p *PowerAPI) ActorNames() []string { return p.system.ActorNames() }

// Shards returns the size of the Sensor/Formula shard pools.
func (p *PowerAPI) Shards() int { return p.shards }

// SourceMode returns the sensing mode of the pipeline.
func (p *PowerAPI) SourceMode() source.Mode { return p.mode }

// CollectTimeout returns the wall-clock budget of synchronous operations.
func (p *PowerAPI) CollectTimeout() time.Duration { return p.collectTimeout }

// ShardOf returns the index of the Sensor shard a PID is routed to.
func (p *PowerAPI) ShardOf(pid int) int {
	return p.ShardOfTarget(target.Process(pid))
}

// ShardOfTarget returns the index of the Sensor shard a target is routed to.
// Process targets keep their raw PID as the routing key, so a pipeline
// without cgroup targets partitions exactly as the per-PID pipeline did.
func (p *PowerAPI) ShardOfTarget(t target.Target) int {
	return p.sensors.IndexFor(t.RouteKey())
}

// Cgroups returns the control-group hierarchy of the pipeline (nil unless
// WithCgroups was used).
func (p *PowerAPI) Cgroups() *cgroup.Hierarchy { return p.hierarchy }

// VMs returns the virtual machines defined on the pipeline (WithVMs), sorted
// by name. Empty without VM definitions.
func (p *PowerAPI) VMs() []VMDef { return sortedVMDefs(p.vms) }

// Subscribe registers a new consumer of the aggregated report stream: every
// sampling round is fanned out to all live subscriptions, each through its
// own channel, with the filters, decimation and backpressure policy of opts.
// Close the subscription when done — an abandoned Block subscription stalls
// the pipeline by design. Subscribing is safe at any time, including while
// rounds are in flight (delivery starts with the next round).
func (p *PowerAPI) Subscribe(opts SubscribeOptions) (*Subscription, error) {
	// A cgroup-subtree filter needs cgroup rows (or a hierarchy to resolve
	// process membership) to ever match; on a pipeline with neither, the
	// subscription would silently never deliver — reject it instead.
	if opts.CgroupSubtree != "" && p.hierarchy == nil && p.attrScope != source.ScopeCgroup {
		return nil, fmt.Errorf("core: subscription filters cgroup subtree %q but the monitor has no cgroup hierarchy (WithCgroups) and no cgroup-scope source", opts.CgroupSubtree)
	}
	return p.subs.add(opts)
}

// Subscriptions returns the number of live subscriptions (diagnostics).
func (p *PowerAPI) Subscriptions() int { return p.subs.size() }

// SubscriptionStats returns one row per live subscription — name, policy and
// the fanout's delivered/dropped counters — ordered by subscription id (the
// /metrics endpoint exposes them as gauges).
func (p *PowerAPI) SubscriptionStats() []SubscriptionInfo { return p.subs.stats() }

// Query answers a windowed aggregate query — avg/max/p95 watts per target —
// over the retained history. It requires WithHistory; without it,
// history.ErrDisabled is returned.
func (p *PowerAPI) Query(q QueryOptions) ([]TargetStats, error) {
	if p.history == nil {
		return nil, history.ErrDisabled
	}
	return p.history.Query(q)
}

// History returns the retained-history store (nil unless WithHistory).
func (p *PowerAPI) History() *history.Store { return p.history }

// QueryOptions selects and aggregates retained history (see history.Query).
type QueryOptions = history.Query

// TargetStats is one per-target row of a Query result (see history.Stats).
type TargetStats = history.Stats

// Reports exposes the asynchronous stream of aggregated reports as a single
// shared channel.
//
// Deprecated: Reports is the legacy single-consumer API, kept as a thin shim:
// the first call lazily creates one DropOldest subscription sized by
// WithReportBuffer (drop-oldest is the faithful legacy buffering — the
// channel always holds the newest rounds) and every call returns that
// subscription's channel. Because the subscription starts with the first
// call, rounds produced before it are not retained — call Reports() before
// monitoring starts, as consuming the old channel required anyway once more
// than the buffer's worth of rounds had passed. New code should call
// Subscribe, which supports multiple consumers, filters and explicit
// backpressure policies.
func (p *PowerAPI) Reports() <-chan AggregatedReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.defaultSub == nil {
		sub, err := p.subs.add(SubscribeOptions{Name: "reports", Policy: DropOldest, Buffer: p.reportBuffer})
		if err != nil {
			// The monitor is shut down: hand out an already-closed
			// subscription so ranging consumers terminate instead of
			// blocking forever. Cached like the live path, so every call
			// keeps returning the same channel.
			sub = &Subscription{name: "reports", ch: make(chan AggregatedReport), done: make(chan struct{})}
			close(sub.done)
			close(sub.ch)
		}
		p.defaultSub = sub
	}
	return p.defaultSub.ch
}

// ErrorCount returns the number of pipeline errors observed so far.
func (p *PowerAPI) ErrorCount() int64 { return p.errCount.Load() }

// errBox wraps pipeline errors for lastErr: atomic.Value panics when stores
// mix concrete types, and errors arrive with many (wrapped and unwrapped).
type errBox struct{ err error }

// LastError returns the most recent pipeline error (nil if none).
func (p *PowerAPI) LastError() error {
	if v := p.lastErr.Load(); v != nil {
		return v.(errBox).err
	}
	return nil
}

// Attach starts monitoring the given PIDs.
func (p *PowerAPI) Attach(pids ...int) error {
	targets := make([]target.Target, len(pids))
	for i, pid := range pids {
		targets[i] = target.Process(pid)
	}
	return p.AttachTargets(targets...)
}

// AttachTargets starts monitoring the given targets. Process targets are
// routed to their Sensor shard directly. Attaching a cgroup target (which
// requires WithCgroups unless the attribution source itself has cgroup scope)
// monitors the group's member processes, descendants included; membership is
// re-synchronised on every Collect. The machine is always monitored through
// the pipeline's machine-scope source, so machine targets are rejected.
func (p *PowerAPI) AttachTargets(targets ...target.Target) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errors.New("core: powerapi is shut down")
	}
	for _, t := range targets {
		if !t.Valid() {
			return fmt.Errorf("core: invalid target %v", t)
		}
		switch t.Kind {
		case target.KindProcess:
			if err := p.askAttach(t); err != nil {
				return err
			}
			p.monitored[t] = true
		case target.KindCgroup:
			if p.attrScope == source.ScopeCgroup {
				// The attribution source samples whole groups as single units,
				// weighting each by its recursive members — so monitoring a
				// group alongside one of its ancestors would count the nested
				// members twice, once per unit. Reject the overlap instead of
				// quietly skewing the attribution.
				for other := range p.monitored {
					if other.Kind == target.KindCgroup && cgroupPathsOverlap(other.Path, t.Path) {
						return fmt.Errorf("core: cannot attach %v: it overlaps monitored %v (a cgroup-scope source would double-count the nested members)", t, other)
					}
				}
				if err := p.askAttach(t); err != nil {
					return err
				}
				p.monitored[t] = true
				continue
			}
			if p.hierarchy == nil {
				return fmt.Errorf("core: cannot attach %v: no cgroup hierarchy configured (WithCgroups)", t)
			}
			if !p.hierarchy.Exists(t.Path) {
				return fmt.Errorf("core: cannot attach %v: no such cgroup", t)
			}
			p.monitored[t] = true
			if err := p.syncCgroupsLocked(); err != nil {
				return err
			}
		case target.KindVM:
			def, ok := p.vms[t.Name]
			if !ok {
				return fmt.Errorf("core: cannot attach %v: no such VM (WithVMs)", t)
			}
			if def.cgroupBacked() && !p.hierarchy.Exists(def.CgroupPath) {
				return fmt.Errorf("core: cannot attach %v: no such cgroup %q", t, def.CgroupPath)
			}
			p.monitored[t] = true
			if err := p.syncCgroupsLocked(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("core: cannot attach %v: the machine is monitored through the pipeline's machine-scope source", t)
		}
	}
	return nil
}

// cgroupPathsOverlap reports whether one hierarchy path is the other (or an
// ancestor of it), i.e. whether their recursive member sets can intersect.
func cgroupPathsOverlap(a, b string) bool {
	if a == b {
		return true
	}
	return strings.HasPrefix(a, b+cgroup.Separator) || strings.HasPrefix(b, a+cgroup.Separator)
}

// askAttach is the single choke point for attaching a target to its sensor
// shard: it assigns the target's dense round slot first, so the shard can
// stamp every sample with it, and gives a newly-assigned slot back if the
// shard rejects the attach.
func (p *PowerAPI) askAttach(t target.Target) error {
	slot, existed := p.slots.assign(t)
	res, err := p.sensors.Ask(t.RouteKey(), func(reply chan<- actor.Message) actor.Message {
		return attachRequest{Target: t, Slot: slot, Reply: reply}
	}, p.collectTimeout)
	if err != nil {
		if !existed {
			p.slots.release(t)
		}
		return fmt.Errorf("core: %w", err)
	}
	if aerr := asError(res); aerr != nil {
		if !existed {
			p.slots.release(t)
		}
		return aerr
	}
	return nil
}

func (p *PowerAPI) askDetach(t target.Target) error {
	res, err := p.sensors.Ask(t.RouteKey(), func(reply chan<- actor.Message) actor.Message {
		return detachRequest{Target: t, Reply: reply}
	}, p.collectTimeout)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if aerr := asError(res); aerr != nil {
		return aerr
	}
	p.slots.release(t)
	return nil
}

// asError converts an Ask reply carrying an error (or nil) back to an error.
func asError(msg actor.Message) error {
	if msg == nil {
		return nil
	}
	err, ok := msg.(error)
	if !ok {
		return fmt.Errorf("core: unexpected reply %T", msg)
	}
	return err
}

// Detach stops monitoring a PID.
func (p *PowerAPI) Detach(pid int) error {
	return p.DetachTargets(target.Process(pid))
}

// DetachTargets stops monitoring the given targets. A process that is also a
// member of a monitored cgroup stays attached to its shard until it leaves
// both roles; detaching a cgroup target detaches its members unless they are
// monitored standalone.
func (p *PowerAPI) DetachTargets(targets ...target.Target) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errors.New("core: powerapi is shut down")
	}
	for _, t := range targets {
		if !p.monitored[t] {
			return fmt.Errorf("core: %v is not attached", t)
		}
		// The bookkeeping entry is removed only once the shard acknowledged
		// (or the membership sync succeeded), so a failed detach stays
		// retryable instead of leaving the target attached but untracked.
		switch {
		case t.Kind == target.KindProcess:
			if !p.members[t.PID] { // otherwise still a member of a monitored cgroup
				if err := p.askDetach(t); err != nil {
					return err
				}
				p.dropHistory(t)
			}
			delete(p.monitored, t)
		case t.Kind == target.KindCgroup && p.attrScope == source.ScopeCgroup:
			if err := p.askDetach(t); err != nil {
				return err
			}
			delete(p.monitored, t)
			p.dropHistory(t)
		default:
			delete(p.monitored, t)
			if err := p.syncCgroupsLocked(); err != nil {
				p.monitored[t] = true // restore so the detach can be retried
				return err
			}
			p.dropHistory(t)
		}
	}
	return nil
}

// dropHistory forgets the retained samples of a target that is no longer
// monitored, keeping the history store bounded by the live target set.
// Callers hold p.mu: the cutoff is the most recent round the target could
// have appeared in (p.lastCollect), so a still-queued report from an earlier
// round cannot resurrect the ring behind the asynchronous history writer.
func (p *PowerAPI) dropHistory(t target.Target) {
	if p.history == nil {
		return
	}
	if t.Kind == target.KindCgroup {
		// The rollup recorded the whole subtree next to this group; nested
		// groups that remain monitored in their own right repopulate from
		// the next round.
		p.history.RemoveSubtree(t.Path, p.lastCollect)
		return
	}
	p.history.Remove(t, p.lastCollect)
}

// syncCgroupsLocked re-synchronises shard attachments with the cgroup
// hierarchy and the VM definitions: members that exited are pruned from the
// hierarchy and detached from their Sensor shard (unless also monitored
// standalone), members that joined a monitored group or VM are attached.
// Callers hold p.mu.
func (p *PowerAPI) syncCgroupsLocked() error {
	if p.hierarchy == nil && len(p.vms) == 0 {
		return nil
	}
	procs := p.machine.Processes()
	alive := func(pid int) bool {
		pr, err := procs.Get(pid)
		return err == nil && pr.State() == proc.StateRunnable
	}
	if p.hierarchy != nil {
		p.hierarchy.Prune(alive)
	}
	if p.attrScope == source.ScopeCgroup {
		return nil // a cgroup-scope source reads memberships live
	}
	desired := make(map[int]bool)
	for t := range p.monitored {
		switch t.Kind {
		case target.KindCgroup:
			for _, pid := range p.hierarchy.MembersRecursive(t.Path) {
				desired[pid] = true
			}
		case target.KindVM:
			def := p.vms[t.Name]
			if def.cgroupBacked() {
				for _, pid := range p.hierarchy.MembersRecursive(def.CgroupPath) {
					desired[pid] = true
				}
				continue
			}
			// A pid-set VM has no hierarchy to prune it: exited members
			// simply leave the desired set, the way Prune drops them from
			// monitored groups.
			for _, pid := range def.PIDs {
				if alive(pid) {
					desired[pid] = true
				}
			}
		}
	}
	for pid := range p.members {
		if desired[pid] {
			continue
		}
		// The members entry is dropped only once the shard acknowledged the
		// detach (mirroring the attach loop below), so a failed detach is
		// retried by the next sync instead of leaking the PID in its source.
		if !p.monitored[target.Process(pid)] {
			if err := p.askDetach(target.Process(pid)); err != nil {
				return err
			}
			p.dropHistory(target.Process(pid))
		}
		delete(p.members, pid)
	}
	for pid := range desired {
		if p.members[pid] {
			continue
		}
		if err := p.askAttach(target.Process(pid)); err != nil {
			return err
		}
		p.members[pid] = true
	}
	return nil
}

// AttachAllRunnable attaches every currently runnable process.
func (p *PowerAPI) AttachAllRunnable() error {
	return p.Attach(p.machine.Processes().PIDs()...)
}

// Monitored returns the PIDs currently attached to the Sensor shards, both
// the explicitly attached ones and the members of monitored cgroups, sorted.
func (p *PowerAPI) Monitored() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	set := make(map[int]bool, len(p.monitored)+len(p.members))
	for t := range p.monitored {
		if t.Kind == target.KindProcess {
			set[t.PID] = true
		}
	}
	for pid := range p.members {
		set[pid] = true
	}
	out := make([]int, 0, len(set))
	for pid := range set {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

// MonitoredTargets returns the explicitly attached targets in stable order.
func (p *PowerAPI) MonitoredTargets() []target.Target {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]target.Target, 0, len(p.monitored))
	for t := range p.monitored {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Collect performs one synchronous sampling round covering the simulated time
// elapsed since the previous round and returns the aggregated report.
//
// The returned report is a pooled read-only view, valid until the next Collect
// on this monitor (which recycles it) or Shutdown. Clone it to keep a round
// longer; see the retention contract on AggregatedReport.
func (p *PowerAPI) Collect() (AggregatedReport, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return AggregatedReport{}, errors.New("core: powerapi is shut down")
	}
	now := p.machine.Now()
	window := now - p.lastCollect
	if window <= 0 {
		p.mu.Unlock()
		return AggregatedReport{}, fmt.Errorf("core: no simulated time elapsed since the previous collection (now %v)", now)
	}
	// Re-partition before the round: cgroup members that exited since the
	// previous Collect leave their shard, members that joined are attached.
	if err := p.syncCgroupsLocked(); err != nil {
		p.mu.Unlock()
		return AggregatedReport{}, err
	}
	p.lastCollect = now
	p.mu.Unlock()

	// Register the round's waiter before broadcasting the tick so the fanout
	// cannot race past it; the waiter is buffered one deep, so a timed-out
	// round's late report never blocks the fanout either.
	waiter := make(chan AggregatedReport, 1)
	p.collectMu.Lock()
	p.collectWaiters[now] = waiter
	p.collectMu.Unlock()
	defer func() {
		p.collectMu.Lock()
		delete(p.collectWaiters, now)
		p.collectMu.Unlock()
	}()

	// Claim the round's trace slot before the tick broadcast: Begin is the
	// single round-origination point, so every stage's stamp finds the slot.
	p.tracer.Begin(now)
	if delivered := p.sensors.Broadcast(tickRequest{Timestamp: now, Window: window}); delivered < p.shards {
		return AggregatedReport{}, fmt.Errorf("core: tick reached %d of %d sensor shards: %w", delivered, p.shards, actor.ErrStopped)
	}
	select {
	case report := <-waiter:
		// Swap the caller's pooled round in for the previous one: releasing the
		// old report here is what bounds a Collect caller's view to "until the
		// next Collect".
		p.mu.Lock()
		if p.hasLast {
			p.lastReport.Release()
		}
		p.lastReport, p.hasLast = report, true
		p.mu.Unlock()
		return report, nil
	case <-time.After(p.collectTimeout):
		return AggregatedReport{}, fmt.Errorf("core: timed out waiting for the report of round %v", now)
	}
}

// RunMonitored advances the machine in interval-sized steps for the given
// simulated duration, collecting one report per step. The callback (optional)
// receives every report as it is produced; all reports are also returned.
func (p *PowerAPI) RunMonitored(duration, interval time.Duration, onReport func(AggregatedReport)) ([]AggregatedReport, error) {
	return p.RunMonitoredContext(context.Background(), duration, interval, onReport)
}

// RunMonitoredContext is RunMonitored with cancellation: when ctx is done the
// loop stops between rounds and the reports collected so far are returned
// alongside ctx.Err(), letting callers (like the daemon's signal handler)
// stop cleanly on a round boundary. With WithReportRetention(n) only the most
// recent n rounds are kept (and returned), so an arbitrarily long run holds
// bounded memory; the callback still observes every round.
func (p *PowerAPI) RunMonitoredContext(ctx context.Context, duration, interval time.Duration, onReport func(AggregatedReport)) ([]AggregatedReport, error) {
	if duration <= 0 || interval <= 0 {
		return nil, errors.New("core: duration and interval must be positive")
	}
	if interval > duration {
		return nil, errors.New("core: interval exceeds duration")
	}
	steps := int(duration / interval)
	capacity := steps
	if p.retention > 0 && p.retention < capacity {
		capacity = p.retention
	}
	out := make([]AggregatedReport, 0, capacity)
	for i := 0; i < steps; i++ {
		select {
		case <-ctx.Done():
			return out, ctx.Err()
		default:
		}
		if _, err := p.machine.Run(interval); err != nil {
			return out, fmt.Errorf("core: advance machine: %w", err)
		}
		report, err := p.Collect()
		if err != nil {
			return out, err
		}
		if p.retention > 0 && len(out) >= p.retention {
			// Slide the retention window: dropping the front and appending is
			// amortised O(1) — append reallocates only once the backing array
			// is exhausted, copying the bounded window, never the full run.
			out = out[1:]
		}
		// The retained run outlives the pooled round (the next Collect recycles
		// it), so keep a deep copy; the callback still sees the pooled view.
		out = append(out, report.Clone())
		if onReport != nil {
			onReport(report)
		}
	}
	return out, nil
}

// Shutdown stops the actor pipeline, closes every subscription (so consumers
// ranging over their channels terminate) and closes the sensing sources
// (after the actors have drained, so no tick samples a closed source). It is
// idempotent. Block subscriptions must still be consumed (or Closed) while
// Shutdown drains the in-flight rounds — an abandoned one stalls the drain
// exactly as it stalls monitoring.
func (p *PowerAPI) Shutdown() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.system.Shutdown()
	// The fanout has delivered every in-flight round. Closing the
	// subscriptions lets the internal drain goroutines (file reporters,
	// history writer) finish the reports still buffered in their channels;
	// only then is it safe to flush.
	p.subs.closeAll()
	p.drainWG.Wait()
	// Reporter subscribers are drained; flush buffered reporters so every row
	// they accepted reaches the underlying writer before Shutdown returns.
	for _, flush := range p.flushes {
		if err := flush(); err != nil {
			p.errCount.Add(1)
			p.lastErr.Store(errBox{fmt.Errorf("core: flush reporter: %w", err)})
		}
	}
	for _, src := range p.sources {
		if err := src.Close(); err != nil {
			p.errCount.Add(1)
			p.lastErr.Store(errBox{fmt.Errorf("core: close %s source: %w", src.Name(), err)})
		}
	}
	// Give the last Collect round back to the pool; no further Collect will.
	p.mu.Lock()
	if p.hasLast {
		p.lastReport.Release()
		p.hasLast = false
	}
	p.mu.Unlock()
}
